(* Machine-readable companion to the textual bench report: every [record]ed
   (experiment id, size, milliseconds) triple is dumped to
   BENCH_<yyyy-mm-dd>.json in the working directory, so timings can be
   diffed across commits without scraping the report. *)

let rows : (string * int * float) list ref = ref []

let record ~id ~n ~ms = rows := (id, n, ms) :: !rows

(* Best-effort re-read of a file this module wrote earlier (one
   ["id": [{"n": N, "ms": M}, ...]] entry per line), so a selective run
   ([bench -- E20]) refreshes only the ids it measured instead of
   clobbering every other experiment's rows. *)
let parse_existing file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let parsed = ref [] in
    (try
       while true do
         let line = input_line ic in
         match String.index_opt line '"' with
         | None -> ()
         | Some i ->
           (match String.index_from_opt line (i + 1) '"' with
            | None -> ()
            | Some j ->
              let id = String.sub line (i + 1) (j - i - 1) in
              let pos = ref (j + 1) in
              let continue = ref true in
              while !continue do
                match String.index_from_opt line !pos '{' with
                | None -> continue := false
                | Some b ->
                  (try
                     Scanf.sscanf
                       (String.sub line b (String.length line - b))
                       "{\"n\": %d, \"ms\": %f}"
                       (fun n ms -> parsed := (id, n, ms) :: !parsed)
                   with Scanf.Scan_failure _ | Failure _ | End_of_file -> ());
                  pos := b + 1
              done)
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !parsed
  end

let write () =
  match List.rev !rows with
  | [] -> ()
  | fresh ->
    let tm = Unix.localtime (Unix.time ()) in
    let file =
      Printf.sprintf "BENCH_%04d-%02d-%02d.json" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
        tm.Unix.tm_mday
    in
    let fresh_ids = List.map (fun (id, _, _) -> id) fresh in
    let kept =
      List.filter (fun (id, _, _) -> not (List.mem id fresh_ids)) (parse_existing file)
    in
    let all = kept @ fresh in
    let ids =
      List.rev
        (List.fold_left
           (fun acc (id, _, _) -> if List.mem id acc then acc else id :: acc)
           [] all)
    in
    let oc = open_out file in
    let out fmt = Printf.fprintf oc fmt in
    out "{\n";
    List.iteri
      (fun i id ->
        let entries = List.filter (fun (id', _, _) -> String.equal id id') all in
        out "  %S: [" id;
        List.iteri
          (fun j (_, n, ms) ->
            out "%s{\"n\": %d, \"ms\": %.3f}" (if j = 0 then "" else ", ") n ms)
          entries;
        out "]%s\n" (if i = List.length ids - 1 then "" else ","))
      ids;
    out "}\n";
    close_out oc;
    Format.printf "@.wrote %s (%d timing rows)@." file (List.length all)
