(* Machine-readable companion to the textual bench report: every [record]ed
   (experiment id, size, milliseconds) triple is dumped to
   BENCH_<yyyy-mm-dd>.json in the working directory, so timings can be
   diffed across commits without scraping the report. *)

let rows : (string * int * float) list ref = ref []

let record ~id ~n ~ms = rows := (id, n, ms) :: !rows

let write () =
  match List.rev !rows with
  | [] -> ()
  | all ->
    let tm = Unix.localtime (Unix.time ()) in
    let file =
      Printf.sprintf "BENCH_%04d-%02d-%02d.json" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
        tm.Unix.tm_mday
    in
    let ids =
      List.rev
        (List.fold_left
           (fun acc (id, _, _) -> if List.mem id acc then acc else id :: acc)
           [] all)
    in
    let oc = open_out file in
    let out fmt = Printf.fprintf oc fmt in
    out "{\n";
    List.iteri
      (fun i id ->
        let entries = List.filter (fun (id', _, _) -> String.equal id id') all in
        out "  %S: [" id;
        List.iteri
          (fun j (_, n, ms) ->
            out "%s{\"n\": %d, \"ms\": %.3f}" (if j = 0 then "" else ", ") n ms)
          entries;
        out "]%s\n" (if i = List.length ids - 1 then "" else ","))
      ids;
    out "}\n";
    close_out oc;
    Format.printf "@.wrote %s (%d timing rows)@." file (List.length all)
