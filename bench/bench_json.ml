(* Machine-readable companion to the textual bench report: every [record]ed
   (experiment id, size, milliseconds) triple is dumped to
   BENCH_<yyyy-mm-dd>.json in the working directory, so timings can be
   diffed across commits without scraping the report.  Rows may carry extra
   flat key/value fields (run-report counters such as steps or draws); the
   values are pre-rendered JSON scalars. *)

let rows : (string * int * float * (string * string) list) list ref = ref []

let record ~id ~n ~ms = rows := (id, n, ms, []) :: !rows

(* Like [record], with extra flat JSON fields (pre-rendered scalar values). *)
let record_extra ~id ~n ~ms extra = rows := (id, n, ms, extra) :: !rows

(* Best-effort re-read of a file this module wrote earlier (one
   ["id": [{"n": N, "ms": M, ...}, ...]] entry per line), so a selective run
   ([bench -- E20]) refreshes only the ids it measured instead of
   clobbering every other experiment's rows.  Extra fields after "ms" are
   kept verbatim; objects are flat, so the next '}' closes the row. *)
let parse_existing file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let parsed = ref [] in
    (try
       while true do
         let line = input_line ic in
         match String.index_opt line '"' with
         | None -> ()
         | Some i ->
           (match String.index_from_opt line (i + 1) '"' with
            | None -> ()
            | Some j ->
              let id = String.sub line (i + 1) (j - i - 1) in
              let pos = ref (j + 1) in
              let continue = ref true in
              while !continue do
                match String.index_from_opt line !pos '{' with
                | None -> continue := false
                | Some b ->
                  (try
                     Scanf.sscanf
                       (String.sub line b (String.length line - b))
                       "{\"n\": %d, \"ms\": %f%s@}"
                       (fun n ms rest ->
                         let extra =
                           (* [rest] is ", \"k\": v, ..." — split on ", \"" *)
                           let parts = ref [] in
                           let p = ref 0 in
                           let len = String.length rest in
                           while !p < len do
                             match String.index_from_opt rest !p '"' with
                             | None -> p := len
                             | Some a ->
                               (match String.index_from_opt rest (a + 1) '"' with
                                | None -> p := len
                                | Some b' ->
                                  let k = String.sub rest (a + 1) (b' - a - 1) in
                                  let vstart = ref (b' + 1) in
                                  while
                                    !vstart < len
                                    && (rest.[!vstart] = ':' || rest.[!vstart] = ' ')
                                  do
                                    incr vstart
                                  done;
                                  let vend =
                                    match String.index_from_opt rest !vstart ',' with
                                    | None -> len
                                    | Some c -> c
                                  in
                                  let v = String.trim (String.sub rest !vstart (vend - !vstart)) in
                                  if v <> "" then parts := (k, v) :: !parts;
                                  p := vend + 1)
                           done;
                           List.rev !parts
                         in
                         parsed := (id, n, ms, extra) :: !parsed)
                   with Scanf.Scan_failure _ | Failure _ | End_of_file -> ());
                  pos := b + 1
              done)
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !parsed
  end

let write () =
  match List.rev !rows with
  | [] -> ()
  | fresh ->
    let tm = Unix.localtime (Unix.time ()) in
    let file =
      Printf.sprintf "BENCH_%04d-%02d-%02d.json" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
        tm.Unix.tm_mday
    in
    let fresh_ids = List.map (fun (id, _, _, _) -> id) fresh in
    let kept =
      List.filter (fun (id, _, _, _) -> not (List.mem id fresh_ids)) (parse_existing file)
    in
    let all = kept @ fresh in
    let ids =
      List.rev
        (List.fold_left
           (fun acc (id, _, _, _) -> if List.mem id acc then acc else id :: acc)
           [] all)
    in
    let oc = open_out file in
    let out fmt = Printf.fprintf oc fmt in
    out "{\n";
    List.iteri
      (fun i id ->
        let entries = List.filter (fun (id', _, _, _) -> String.equal id id') all in
        out "  %S: [" id;
        List.iteri
          (fun j (_, n, ms, extra) ->
            out "%s{\"n\": %d, \"ms\": %.3f" (if j = 0 then "" else ", ") n ms;
            List.iter (fun (k, v) -> out ", %S: %s" k v) extra;
            out "}")
          entries;
        out "]%s\n" (if i = List.length ids - 1 then "" else ","))
      ids;
    out "}\n";
    close_out oc;
    Format.printf "@.wrote %s (%d timing rows)@." file (List.length all)
