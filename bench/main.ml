(* Benchmark harness: regenerates the shape of every claim in the paper's
   complexity table (Table 1) and worked examples.  See DESIGN.md for the
   experiment index (E1..E20) and EXPERIMENTS.md for paper-vs-measured.
   Timing rows are also dumped to BENCH_<date>.json (Bench_json).

     dune exec bench/main.exe              # full report + bechamel timings
     dune exec bench/main.exe -- E4 E5     # selected experiments only
     dune exec bench/main.exe -- report    # report only, no bechamel *)

module Q = Bigq.Q
module Database = Relational.Database
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value

let time_ms f =
  let t0 = Sys.time () in
  let r = f () in
  (r, (Sys.time () -. t0) *. 1000.0)

let header id title =
  Format.printf "@.=== %s: %s ===@." id title

(* --- shared workload builders ------------------------------------------ *)

let inflationary_of parsed db =
  let program = parsed.Lang.Parser.program in
  let event = Option.get parsed.Lang.Parser.event in
  let kernel, init = Lang.Compile.inflationary_kernel program db in
  (Lang.Inflationary.of_forever_unchecked (Lang.Forever.make ~kernel ~event), init)

let noninflationary_of parsed db =
  let program = parsed.Lang.Parser.program in
  let event = Option.get parsed.Lang.Parser.event in
  let kernel, init = Lang.Compile.noninflationary_kernel program db in
  (Lang.Forever.make ~kernel ~event, init)

(* k independent walkers on lazy cycles of the given sizes, each with its
   own edge relation; the event tracks walker 1. *)
let multi_walker_source sizes =
  let rules =
    List.mapi
      (fun i _ -> Printf.sprintf "?C%d(Y) @W :- C%d(X), e%d(X, Y, W)." (i + 1) (i + 1) (i + 1))
      sizes
  in
  String.concat "\n" rules ^ "\n?- C1(n0)."

let multi_walker_db sizes =
  List.fold_left
    (fun (db, i) k ->
      let edges = Workload.Graphs.cycle k in
      let db =
        Database.add
          (Printf.sprintf "e%d" (i + 1))
          (Workload.Graphs.to_relation edges)
          (Database.add
             (Printf.sprintf "C%d" (i + 1))
             (Relation.make [ "x1" ] [ Tuple.of_list [ Value.Str "n0" ] ])
             db)
      in
      (db, i + 1))
    (Database.empty, 0) sizes
  |> fst

(* --- E1: exact inflationary evaluation blows up ------------------------- *)

let e1 () =
  header "E1" "exact inflationary evaluation over pc-tables (Table 1, rows 1-2, exact column)";
  Format.printf "uncertain line graph v0..vn, each edge present w.p. 1/2; Pr[vn reached] = 1/2^n@.";
  Format.printf "%4s %10s %14s %10s@." "n" "worlds" "exact p" "ms";
  List.iter
    (fun n ->
      let ct, program, event = Workload.Uncertain.uncertain_line ~n in
      let p, ms = time_ms (fun () -> Eval.Exact_inflationary.eval_ctable ~program ~event ct) in
      assert (Q.equal p (Workload.Uncertain.expected_line ~n));
      Bench_json.record ~id:"E1/exact-inflationary" ~n ~ms;
      Format.printf "%4d %10d %14s %10.2f@." n (Prob.Ctable.num_worlds ct) (Q.to_string p) ms)
    [ 2; 4; 6; 8; 10; 12 ];
  Format.printf "shape: runtime doubles with every variable (exponential in the database).@."

(* --- E2: randomized absolute approximation is PTIME (Thm 4.3) ----------- *)

let e2 () =
  header "E2" "sampling evaluation stays polynomial (Thm 4.3; Table 1, absolute column)";
  Format.printf "same family, fixed 500 samples; the true probability is ~0 for large n@.";
  Format.printf "%6s %10s %12s %10s@." "n" "samples" "estimate" "ms";
  List.iter
    (fun n ->
      let ct, program, _event = Workload.Uncertain.uncertain_line ~n in
      let parsed_event = Lang.Event.make "R" [ Value.Str (Printf.sprintf "v%d" n) ] in
      let sampler = Eval.Sample_inflationary.ctable_sampler ~program ct in
      let rng = Random.State.make [| n |] in
      let kernel, _ = Lang.Compile.inflationary_kernel program (sampler rng) in
      let q =
        Lang.Inflationary.of_forever_unchecked (Lang.Forever.make ~kernel ~event:parsed_event)
      in
      let est, ms =
        time_ms (fun () ->
            Eval.Sample_inflationary.eval ~init_sampler:sampler ~samples:500 rng q Database.empty)
      in
      Format.printf "%6d %10d %12.4f %10.2f@." n 500 est ms)
    [ 5; 10; 20; 40; 80 ];
  Format.printf "@.error vs sample count on n = 3 (true p = 1/8 = 0.125):@.";
  Format.printf "%8s %12s %12s@." "m" "estimate" "|error|";
  let ct, program, event = Workload.Uncertain.uncertain_line ~n:3 in
  let sampler = Eval.Sample_inflationary.ctable_sampler ~program ct in
  let rng = Random.State.make [| 17 |] in
  let kernel, _ = Lang.Compile.inflationary_kernel program (sampler rng) in
  let q = Lang.Inflationary.of_forever_unchecked (Lang.Forever.make ~kernel ~event) in
  List.iter
    (fun m ->
      let est = Eval.Sample_inflationary.eval ~init_sampler:sampler ~samples:m rng q Database.empty in
      Format.printf "%8d %12.4f %12.4f@." m est (abs_float (est -. 0.125)))
    [ 100; 1_000; 10_000 ];
  Format.printf "shape: error shrinks like 1/sqrt(m); runtime is linear in n and m.@."

(* --- E3: relative approximation is NP-hard (Thm 4.1) -------------------- *)

let e3 () =
  header "E3" "relative approximation separates SAT from UNSAT (Thm 4.1)";
  Format.printf "reduction: query prob = #SAT/2^n; sampling cannot certify p > 0 cheaply@.";
  Format.printf "%-22s %6s %12s %14s %14s@." "formula" "sat?" "true p" "sampled m=200" "rel. verdict";
  let rng = Random.State.make [| 3 |] in
  let instances =
    [ ("unique solution n=6", Reductions.Cnf.make ~num_vars:6 (List.init 6 (fun i -> [ Reductions.Cnf.pos (i + 1) ])));
      ("unsat core n=6", Reductions.Cnf.unsatisfiable_core 6);
      ("random n=6 m=10", Reductions.Cnf.random3 rng ~num_vars:6 ~num_clauses:10);
      ("random n=6 m=30", Reductions.Cnf.random3 rng ~num_vars:6 ~num_clauses:30)
    ]
  in
  List.iter
    (fun (label, f) ->
      let truth = Reductions.Encode_inflationary.expected_probability f in
      let ct, program, event = Reductions.Encode_inflationary.encode_ctable f in
      let sampler = Eval.Sample_inflationary.ctable_sampler ~program ct in
      let rng' = Random.State.make [| 11 |] in
      let kernel, _ = Lang.Compile.inflationary_kernel program (sampler rng') in
      let q = Lang.Inflationary.of_forever_unchecked (Lang.Forever.make ~kernel ~event) in
      let est =
        Eval.Sample_inflationary.eval ~init_sampler:sampler ~samples:200 rng' q Database.empty
      in
      let verdict =
        if Q.is_zero truth then (if est = 0.0 then "ok (both 0)" else "false positive")
        else if est > 0.0 then "detected"
        else "MISSED (rel. approx fails)"
      in
      Format.printf "%-22s %6b %12s %14.4f %14s@." label (Reductions.Dpll.is_satisfiable f)
        (Q.to_string truth) est verdict)
    instances;
  Format.printf
    "shape: a tiny-but-positive p (1/2^6) is indistinguishable from 0 with poly samples,@.";
  Format.printf "while absolute error stays within eps — exactly the Thm 4.1/4.3 split.@."

(* --- E4: exact non-inflationary evaluation (Prop 5.4 / Thm 5.5) --------- *)

let e4 () =
  header "E4" "exact non-inflationary evaluation: state space and Gaussian elimination";
  Format.printf "w independent walkers on lazy cycles: chain states = product of sizes@.";
  Format.printf "%-18s %8s %8s %12s %10s@." "cycles" "tuples" "states" "result" "ms";
  List.iter
    (fun sizes ->
      let parsed = Lang.Parser.parse (multi_walker_source sizes) in
      let db = multi_walker_db sizes in
      let q, init = noninflationary_of parsed db in
      let a, ms = time_ms (fun () -> Eval.Exact_noninflationary.analyse q init) in
      Bench_json.record ~id:"E4/exact-noninflationary" ~n:a.Eval.Exact_noninflationary.num_states
        ~ms;
      Format.printf "%-18s %8d %8d %12s %10.2f@."
        (String.concat "x" (List.map string_of_int sizes))
        (Database.total_tuples db) a.Eval.Exact_noninflationary.num_states
        (Q.to_string a.Eval.Exact_noninflationary.result)
        ms)
    [ [ 3 ]; [ 4 ]; [ 6 ]; [ 3; 3 ]; [ 3; 4 ]; [ 4; 4 ]; [ 3; 3; 3 ]; [ 3; 3; 4 ] ];
  Format.printf
    "shape: states multiply while the database grows additively — exponential blow-up;@.";
  Format.printf "the walker-1 answer stays 1/k (uniform stationary on its lazy cycle).@.";
  (* Thm 5.5 general case: absorbing structure. *)
  Format.printf "@.non-ergodic case (Thm 5.5): start -> two absorbing lazy cycles@.";
  let db =
    Database.of_list
      [ ("C", Relation.make [ "x1" ] [ Tuple.of_list [ Value.Str "s" ] ]);
        ( "e",
          Relational.Table_io.relation_of_rows [ "x1"; "x2"; "x3" ]
            [ [ "s"; "a0"; "1" ]; [ "s"; "b0"; "3" ];
              [ "a0"; "a1"; "1" ]; [ "a1"; "a0"; "1" ]; [ "a0"; "a0"; "1" ];
              [ "b0"; "b0"; "1" ]
            ] )
      ]
  in
  let parsed = Lang.Parser.parse "?C(Y) @W :- C(X), e(X, Y, W).\n?- C(b0)." in
  let q, init = noninflationary_of parsed db in
  let a = Eval.Exact_noninflationary.analyse q init in
  Format.printf "states %d, irreducible %b; Pr[absorbed at b0] = %s (expected 3/4)@."
    a.Eval.Exact_noninflationary.num_states a.Eval.Exact_noninflationary.irreducible
    (Q.to_string a.Eval.Exact_noninflationary.result)

(* --- E5: sampling in mixing time (Thm 5.6) ------------------------------ *)

let e5 () =
  header "E5" "sampling evaluation runs in (database size x mixing time) (Thm 5.6)";
  Format.printf "fast-mixing complete graphs vs the slow-mixing barbell@.";
  Format.printf "%-12s %6s %8s %10s %12s %10s@." "family" "k" "states" "T(0.05)" "estimate" "ms";
  let families =
    [ ("complete", [ 4; 8; 12 ], fun k -> Workload.Graphs.complete k);
      ("barbell", [ 2; 3; 4; 5 ], fun k -> Workload.Graphs.barbell k)
    ]
  in
  List.iter
    (fun (name, ks, build) ->
      List.iter
        (fun k ->
          let edges = build k in
          let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
          let db = Workload.Graphs.walk_database edges ~start:0 in
          let q, init = noninflationary_of parsed db in
          match Eval.Sample_noninflationary.estimate_burn_in ~eps:0.05 q init with
          | None -> Format.printf "%-12s %6d %8s %10s@." name k "-" "no mixing"
          | Some t ->
            let rng = Random.State.make [| k |] in
            let est, ms =
              time_ms (fun () -> Eval.Sample_noninflationary.eval rng ~burn_in:t ~samples:500 q init)
            in
            let states =
              Markov.Chain.num_states (Eval.Exact_noninflationary.build_chain q init)
            in
            Format.printf "%-12s %6d %8d %10d %12.4f %10.2f@." name k states t est ms)
        ks)
    families;
  Format.printf "shape: T stays O(1) on complete graphs and grows steeply on barbells;@.";
  Format.printf "sampler cost tracks T x samples, not the 2^n of exact evaluation.@."

(* --- E6: absolute approximation NP-hard for non-inflationary (Thm 5.1) -- *)

let e6 () =
  header "E6" "non-inflationary reduction: Pr[Done] is exactly 1 (sat) or 0 (unsat) (Thm 5.1)";
  Format.printf "%-22s %6s %14s %12s@." "formula" "sat?" "sampled p" "expected";
  let rng = Random.State.make [| 5 |] in
  let instances =
    [ ("random n=4 m=6", Reductions.Cnf.random3 rng ~num_vars:4 ~num_clauses:6);
      ("random n=5 m=8", Reductions.Cnf.random3 rng ~num_vars:5 ~num_clauses:8);
      ("unsat core n=4", Reductions.Cnf.unsatisfiable_core 4);
      ("unique sol n=5",
       Reductions.Cnf.make ~num_vars:5 (List.init 5 (fun i -> [ Reductions.Cnf.pos (i + 1) ])))
    ]
  in
  List.iter
    (fun (label, f) ->
      let db, program, event = Reductions.Encode_noninflationary.encode f in
      let kernel, init = Lang.Compile.noninflationary_kernel program db in
      let q = Lang.Forever.make ~kernel ~event in
      let rng' = Random.State.make [| 6 |] in
      let burn = 20 * (f.Reductions.Cnf.num_vars + List.length f.Reductions.Cnf.clauses) in
      let est = Eval.Sample_noninflationary.eval rng' ~burn_in:burn ~samples:200 q init in
      Format.printf "%-22s %6b %14.3f %12s@." label (Reductions.Dpll.is_satisfiable f) est
        (Q.to_string (Reductions.Encode_noninflationary.expected_probability f)))
    instances;
  Format.printf "shape: the 1-vs-0 gap means even a 0.5-absolute approximation decides SAT.@."

(* --- E7: partitioning optimisation (Section 5.1) ------------------------- *)

let e7 () =
  header "E7" "partitioned evaluation (Section 5.1) vs direct product chains";
  Format.printf "%-18s %10s %10s %12s %12s %8s@." "cycles" "direct-st" "direct-ms" "part-classes"
    "part-ms" "agree";
  List.iter
    (fun sizes ->
      let parsed = Lang.Parser.parse (multi_walker_source sizes) in
      let db = multi_walker_db sizes in
      let program = parsed.Lang.Parser.program in
      let event = Option.get parsed.Lang.Parser.event in
      let q, init = noninflationary_of parsed db in
      let direct, dms = time_ms (fun () -> Eval.Exact_noninflationary.analyse q init) in
      let parts = Eval.Partition.classes program db in
      let part, pms = time_ms (fun () -> Eval.Partition.eval_noninflationary program db event) in
      Format.printf "%-18s %10d %10.2f %12d %12.2f %8b@."
        (String.concat "x" (List.map string_of_int sizes))
        direct.Eval.Exact_noninflationary.num_states dms (List.length parts) pms
        (Q.equal direct.Eval.Exact_noninflationary.result part))
    [ [ 3; 3 ]; [ 3; 4 ]; [ 4; 4 ]; [ 3; 3; 3 ]; [ 4; 4; 3 ]; [ 4; 4; 4 ] ];
  Format.printf "shape: direct cost follows the state product; partitioned follows the sum.@."

(* --- E8: random walk = stationary distribution (Example 3.3) ------------ *)

let e8 () =
  header "E8" "forever-query random walk equals the chain's stationary distribution (Ex 3.3)";
  Format.printf "%-12s %6s %16s %16s %8s@." "graph" "k" "query Pr[n0]" "direct pi(n0)" "equal";
  let cases =
    [ ("cycle", 5, Workload.Graphs.cycle 5); ("complete", 4, Workload.Graphs.complete 4);
      ("random", 5, Workload.Graphs.random (Random.State.make [| 8 |]) ~nodes:5 ~out_degree:3 ~max_weight:4)
    ]
  in
  List.iter
    (fun (name, k, edges) ->
      let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
      let db = Workload.Graphs.walk_database edges ~start:0 in
      let q, init = noninflationary_of parsed db in
      let from_query = Eval.Exact_noninflationary.eval q init in
      (* Direct: build the node-level chain and solve for pi. *)
      let weights = Hashtbl.create 16 in
      List.iter
        (fun (e : Workload.Graphs.edge) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt weights e.Workload.Graphs.src) in
          Hashtbl.replace weights e.Workload.Graphs.src ((e.Workload.Graphs.dst, e.Workload.Graphs.weight) :: prev))
        edges;
      let rows =
        Array.init k (fun i ->
            let out = Option.value ~default:[] (Hashtbl.find_opt weights i) in
            let total = List.fold_left (fun acc (_, w) -> acc + w) 0 out in
            List.map (fun (j, w) -> (j, Q.of_ints w total)) out)
      in
      let chain = Markov.Chain.of_rows (Array.init k Fun.id) rows in
      let direct =
        if Markov.Classify.is_irreducible chain then (Markov.Stationary.exact chain).(0) else Q.zero
      in
      Format.printf "%-12s %6d %16s %16s %8b@." name k (Q.to_string from_query) (Q.to_string direct)
        (Q.equal from_query direct))
    cases

(* --- E9: PageRank (Example 3.3 variant) --------------------------------- *)

let e9 () =
  header "E9" "PageRank as a forever-query vs power iteration (Ex 3.3 variant)";
  let module P = Prob.Palgebra in
  let edge_rows = [ (0, 1); (1, 0); (2, 0); (2, 1); (3, 2) ] in
  let n = 4 in
  let node i = Value.Str (Printf.sprintf "n%d" i) in
  Format.printf "%-8s %14s %16s@." "alpha" "max |diff|" "chain ergodic";
  List.iter
    (fun alpha ->
      let edges =
        Relation.make [ "I"; "J"; "P" ]
          (List.map (fun (i, j) -> Tuple.of_list [ node i; node j; Value.Int 1 ]) edge_rows)
      in
      let nodes_rel = Relation.make [ "I" ] (List.init n (fun i -> Tuple.of_list [ node i ])) in
      let follow =
        P.Rename
          ([ ("J", "I") ],
           P.Project ([ "J" ], P.repair_key ~weight:"P" [ "I" ] (P.Join (P.Rel "C", P.Rel "E"))))
      in
      let jump = P.Project ([ "I" ], P.repair_key_all (P.Rel "V")) in
      let weighted e w = P.Extend ("P", Relational.Pred.Const (Value.Rat w), e) in
      let choice =
        P.Project
          ([ "I" ],
           P.repair_key_all ~weight:"P"
             (P.Union (weighted follow (Q.sub Q.one alpha), weighted jump alpha)))
      in
      let kernel = Prob.Interp.make [ ("C", choice); Prob.Interp.unchanged "E"; Prob.Interp.unchanged "V" ] in
      let init =
        Database.of_list
          [ ("C", Relation.make [ "I" ] [ Tuple.of_list [ node 0 ] ]); ("E", edges); ("V", nodes_rel) ]
      in
      let query = Lang.Forever.make ~kernel ~event:(Lang.Event.make "C" [ node 0 ]) in
      let a = Eval.Exact_noninflationary.analyse query init in
      let chain = a.Eval.Exact_noninflationary.chain in
      let pi = Markov.Stationary.exact chain in
      (* Power-iteration baseline. *)
      let out = Array.make n [] in
      List.iter (fun (i, j) -> out.(i) <- j :: out.(i)) edge_rows;
      let af = Q.to_float alpha in
      let pr = Array.make n (1.0 /. float_of_int n) in
      for _ = 1 to 20_000 do
        let next = Array.make n (af /. float_of_int n) in
        Array.iteri
          (fun i mass ->
            let d = float_of_int (List.length out.(i)) in
            List.iter (fun j -> next.(j) <- next.(j) +. ((1.0 -. af) *. mass /. d)) out.(i))
          pr;
        Array.blit next 0 pr 0 n
      done;
      let max_diff = ref 0.0 in
      Array.iteri
        (fun si p ->
          let db = Markov.Chain.label chain si in
          match Relation.tuples (Database.find "C" db) with
          | [ t ] ->
            let name = Value.to_string t.(0) in
            let i = int_of_string (String.sub name 1 (String.length name - 1)) in
            max_diff := max !max_diff (abs_float (Q.to_float p -. pr.(i)))
          | _ -> ())
        pi;
      Format.printf "%-8s %14.2e %16b@." (Q.to_string alpha) !max_diff
        a.Eval.Exact_noninflationary.ergodic)
    [ Q.of_ints 1 20; Q.of_ints 3 20; Q.of_ints 3 10 ]

(* --- E10: reachability probabilities (Ex 3.5 / 3.9) ---------------------- *)

let e10 () =
  header "E10" "reachability: exact vs sampled on binary trees (Ex 3.5 / 3.9)";
  Format.printf "complete binary tree of depth d; walker picks one child per node:@.";
  Format.printf "Pr[specific leaf reached] = 1/2^d@.";
  Format.printf "%4s %12s %12s %12s@." "d" "exact" "expected" "sampled";
  List.iter
    (fun d ->
      (* Nodes numbered 1..2^(d+1)-1 heap-style; edges i -> 2i, 2i+1. *)
      let max_internal = (1 lsl d) - 1 in
      let rows =
        List.concat
          (List.init max_internal (fun idx ->
               let i = idx + 1 in
               [ [ Printf.sprintf "n%d" i; Printf.sprintf "n%d" (2 * i); "1" ];
                 [ Printf.sprintf "n%d" i; Printf.sprintf "n%d" ((2 * i) + 1); "1" ]
               ]))
      in
      let db =
        Database.of_list
          [ ("e", Relational.Table_io.relation_of_rows [ "x1"; "x2"; "x3" ] rows) ]
      in
      let leftmost_leaf = 1 lsl d in
      let src =
        Printf.sprintf
          "C(n1) :- .\nC2(<X>, Y) @W :- C(X), e(X, Y, W).\nC(Y) :- C2(X, Y).\n?- C(n%d)."
          leftmost_leaf
      in
      let parsed = Lang.Parser.parse src in
      let q, init = inflationary_of parsed db in
      let exact = Eval.Exact_inflationary.eval q init in
      let rng = Random.State.make [| d |] in
      let sampled = Eval.Sample_inflationary.eval ~samples:2000 rng q init in
      Format.printf "%4d %12s %12s %12.4f@." d (Q.to_string exact)
        (Q.to_string (Q.pow Q.half d)) sampled)
    [ 1; 2; 3; 4 ]

(* --- E11: Bayesian inference (Ex 3.10) ----------------------------------- *)

let e11 () =
  header "E11" "Bayesian networks in datalog vs exact enumeration (Ex 3.10)";
  Format.printf "%6s %10s %10s %8s %12s %12s@." "nodes" "dl-ms" "enum-ms" "agree" "datalog p" "enum p";
  List.iter
    (fun n ->
      let rng = Random.State.make [| n |] in
      let bn = Bayes.Gen.random rng ~num_nodes:n ~max_in_degree:2 in
      let names = Bayes.Bn.node_names bn in
      let query = [ (List.nth names (n - 1), true) ] in
      let db, program, event = Bayes.Encode.marginal_query bn query in
      let (dl, dl_ms) =
        time_ms (fun () ->
            let kernel, init = Lang.Compile.inflationary_kernel program db in
            let q = Lang.Inflationary.of_forever_unchecked (Lang.Forever.make ~kernel ~event) in
            Eval.Exact_inflationary.eval q init)
      in
      let (enum, enum_ms) = time_ms (fun () -> Bayes.Infer.marginal bn query) in
      Format.printf "%6d %10.2f %10.2f %8b %12s %12s@." n dl_ms enum_ms (Q.equal dl enum)
        (Q.to_string dl) (Q.to_string enum))
    [ 3; 4; 5; 6 ]

(* --- E12: repair-key possible worlds (Ex 2.2, Table 2) -------------------- *)

let e12 () =
  header "E12" "repair-key possible worlds (Ex 2.2, Table 2)";
  let players =
    Relational.Table_io.relation_of_rows [ "Player"; "Team"; "Belief" ]
      [ [ "Bryant"; "LALakers"; "17" ]; [ "Bryant"; "NYKnicks"; "3" ];
        [ "Iverson"; "Sixers"; "8" ]; [ "Iverson"; "Grizzlies"; "7" ]
      ]
  in
  let worlds = Prob.Repair_key.repair ~key:[ "Player" ] ~weight:"Belief" players in
  Format.printf "worlds: %d (formula: %d); probabilities:@." (Prob.Dist.size worlds)
    (Prob.Repair_key.num_repairs ~key:[ "Player" ] players);
  List.iter (fun (_, p) -> Format.printf "  %s@." (Q.to_string p)) (Prob.Dist.support worlds);
  Format.printf "expected: 17/20*8/15, 17/20*7/15, 3/20*8/15, 3/20*7/15 (sum = 1: %b)@."
    (Q.is_one (Q.sum (List.map snd (Prob.Dist.support worlds))));
  Format.printf "@.random tables: worlds = product of key-group sizes@.";
  Format.printf "%8s %8s %10s %10s@." "tuples" "groups" "worlds" "enum ok";
  let rng = Random.State.make [| 9 |] in
  List.iter
    (fun (groups, per_group) ->
      let rows =
        List.concat
          (List.init groups (fun g ->
               List.init per_group (fun i ->
                   Tuple.of_list
                     [ Value.Int g; Value.Int i; Value.Int (1 + Random.State.int rng 5) ])))
      in
      let r = Relation.make [ "K"; "V"; "P" ] rows in
      let formula = Prob.Repair_key.num_repairs ~key:[ "K" ] r in
      let enumerated = Prob.Dist.size (Prob.Repair_key.repair ~key:[ "K" ] ~weight:"P" r) in
      Format.printf "%8d %8d %10d %10b@." (Relation.cardinal r) groups formula
        (formula = enumerated))
    [ (2, 2); (3, 2); (3, 3); (4, 3) ]

(* --- E13: algebraic optimisation ablation -------------------------------- *)

let e13 () =
  header "E13" "kernel optimisation ablation (the paper's future-work optimisations)";
  Format.printf "exact non-inflationary walks on random graphs, raw vs optimised kernels@.";
  Format.printf "%6s %12s %12s %10s %8s@." "nodes" "raw ms" "opt ms" "speedup" "agree";
  List.iter
    (fun k ->
      let rng = Random.State.make [| k |] in
      let edges = Workload.Graphs.random rng ~nodes:k ~out_degree:3 ~max_weight:4 in
      let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
      let db = Workload.Graphs.walk_database edges ~start:0 in
      let program = parsed.Lang.Parser.program in
      let event = Option.get parsed.Lang.Parser.event in
      let kernel, init = Lang.Compile.noninflationary_kernel program db in
      let schema_of name = Relation.columns (Database.find name init) in
      let kernel_opt = Prob.Optimize.interp ~schema_of kernel in
      let q = Lang.Forever.make ~kernel ~event in
      let q_opt = Lang.Forever.make ~kernel:kernel_opt ~event in
      (* Average over a few repetitions to stabilise small timings. *)
      let reps = 5 in
      let timed q =
        let r = ref Q.zero in
        let _, ms = time_ms (fun () -> for _ = 1 to reps do r := Eval.Exact_noninflationary.eval q init done) in
        (!r, ms /. float_of_int reps)
      in
      let raw, raw_ms = timed q in
      let opt, opt_ms = timed q_opt in
      Bench_json.record ~id:"E13/kernel-raw" ~n:k ~ms:raw_ms;
      Bench_json.record ~id:"E13/kernel-optimised" ~n:k ~ms:opt_ms;
      Format.printf "%6d %12.2f %12.2f %9.2fx %8b@." k raw_ms opt_ms (raw_ms /. opt_ms)
        (Q.equal raw opt))
    [ 6; 10; 14; 18 ];
  Format.printf "shape: identical exact answers; selection pushdown + column pruning pay off@.";
  Format.printf "as the edge relation grows.@."

(* --- E14: conductance brackets the measured mixing time ------------------- *)

let e14 () =
  header "E14" "conductance (Section 5.1's pointer) brackets the measured mixing time";
  Format.printf "lazy walk chains; 1/(4 phi) <= T(1/4) and T(eps) <= 2/phi^2 ln(1/(eps pi_min))@.";
  Format.printf "%-12s %6s %12s %10s %10s %10s %10s %8s@." "family" "k" "phi" "lower" "T(1/4)"
    "T(0.05)" "upper" "t_rel";
  let eps = 0.05 in
  List.iter
    (fun (name, edges) ->
      let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
      let db = Workload.Graphs.walk_database edges ~start:0 in
      let q, init = noninflationary_of parsed db in
      let chain = Eval.Exact_noninflationary.build_chain q init in
      if Markov.Conductance.is_reversible chain then begin
        let phi = Markov.Conductance.conductance chain in
        let upper = Markov.Conductance.cheeger_mixing_upper_bound ~eps chain in
        let lower = Markov.Conductance.conductance_lower_bound chain in
        match
          (Markov.Mixing.mixing_time ~eps:0.25 chain, Markov.Mixing.mixing_time ~eps chain)
        with
        | Some t_quarter, Some t ->
          let t_rel = Markov.Spectral.relaxation_time chain in
          Format.printf "%-12s %6d %12s %10.2f %10d %10d %10.1f %8.2f@." name
            (Markov.Chain.num_states chain) (Q.to_string phi) lower t_quarter t upper t_rel
        | _ -> Format.printf "%-12s %6d: does not mix@." name (Markov.Chain.num_states chain)
      end
      else Format.printf "%-12s: not reversible, skipped@." name)
    [ ("complete-4", Workload.Graphs.complete 4);
      ("complete-6", Workload.Graphs.complete 6);
      ("barbell-2", Workload.Graphs.barbell 2);
      ("barbell-3", Workload.Graphs.barbell 3);
      ("cycle-6", Workload.Graphs.cycle 6)
    ];
  Format.printf "shape: small conductance <-> slow mixing, exactly the Section 5.1 picture.@."

(* --- E15: MCMC colouring (declarative Glauber dynamics) ------------------- *)

let e15 () =
  header "E15" "MCMC as a forever-query: Glauber dynamics samples colourings uniformly";
  Format.printf "%-14s %8s %10s %14s %14s@." "graph" "states" "ergodic" "query answer" "combinatorial";
  let cases =
    [ ("triangle+4col", [ (0, 1); (1, 2); (0, 2) ], 3, [ "c1"; "c2"; "c3"; "c4" ],
       [ (0, "c1"); (1, "c2"); (2, "c3") ]);
      ("path3+3col", [ (0, 1); (1, 2) ], 3, [ "c1"; "c2"; "c3" ],
       [ (0, "c1"); (1, "c2"); (2, "c1") ]);
      ("star4+3col", [ (0, 1); (0, 2); (0, 3) ], 4, [ "c1"; "c2"; "c3" ],
       [ (0, "c1"); (1, "c2"); (2, "c2"); (3, "c2") ])
    ]
  in
  List.iter
    (fun (name, edges, n, colors, initial) ->
      let kernel, db = Workload.Coloring.glauber ~edges ~num_nodes:n ~colors ~initial in
      let event = Workload.Coloring.color_event ~node:0 ~color:"c1" in
      let a = Eval.Exact_noninflationary.analyse (Lang.Forever.make ~kernel ~event) db in
      let matching = Workload.Coloring.colorings_with ~edges ~num_nodes:n ~colors ~node:0 ~color:"c1" in
      let total = Workload.Coloring.proper_colorings ~edges ~num_nodes:n ~colors in
      Format.printf "%-14s %8d %10b %14s %10d/%d@." name a.Eval.Exact_noninflationary.num_states
        a.Eval.Exact_noninflationary.ergodic
        (Q.to_string a.Eval.Exact_noninflationary.result)
        matching total)
    cases;
  Format.printf "shape: the stationary distribution of the declarative kernel is uniform@.";
  Format.printf "over proper colourings — MCMC programmed as a query (paper's intro).@."

(* --- E16: lumping ablation ------------------------------------------------ *)

let e16 () =
  header "E16" "event-respecting lumping shrinks the database-state chain";
  Format.printf "%-16s %8s %10s %12s %12s %8s@." "workload" "states" "classes" "direct ms" "lumped ms"
    "agree";
  let cases =
    [ ("glauber-K3-4c",
       (fun () ->
         let kernel, db =
           Workload.Coloring.glauber
             ~edges:[ (0, 1); (1, 2); (0, 2) ]
             ~num_nodes:3 ~colors:[ "c1"; "c2"; "c3"; "c4" ]
             ~initial:[ (0, "c1"); (1, "c2"); (2, "c3") ]
         in
         (Lang.Forever.make ~kernel ~event:(Workload.Coloring.color_event ~node:0 ~color:"c1"), db)));
      ("glauber-P3-3c",
       (fun () ->
         let kernel, db =
           Workload.Coloring.glauber
             ~edges:[ (0, 1); (1, 2) ]
             ~num_nodes:3 ~colors:[ "c1"; "c2"; "c3" ]
             ~initial:[ (0, "c1"); (1, "c2"); (2, "c1") ]
         in
         (Lang.Forever.make ~kernel ~event:(Workload.Coloring.color_event ~node:1 ~color:"c2"), db)));
      ("walk-complete-8",
       (fun () ->
         let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
         let db = Workload.Graphs.walk_database (Workload.Graphs.complete 8) ~start:0 in
         noninflationary_of parsed db));
      ("walk-cycle-12",
       (fun () ->
         let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
         let db = Workload.Graphs.walk_database (Workload.Graphs.cycle 12) ~start:0 in
         noninflationary_of parsed db))
    ]
  in
  List.iter
    (fun (name, build) ->
      let q, init = build () in
      let chain = Eval.Exact_noninflationary.build_chain q init in
      let event_at i = Lang.Event.holds q.Lang.Forever.event (Markov.Chain.label chain i) in
      let lumped = Markov.Lumping.lump ~initial:(fun s -> if event_at s then 1 else 0) chain in
      let direct, dms = time_ms (fun () -> Eval.Exact_noninflationary.eval q init) in
      let via_lump, lms = time_ms (fun () -> Eval.Exact_noninflationary.eval_lumped q init) in
      Format.printf "%-16s %8d %10d %12.2f %12.2f %8b@." name (Markov.Chain.num_states chain)
        lumped.Markov.Lumping.num_classes dms lms (Q.equal direct via_lump))
    cases;
  Format.printf
    "shape: lumping pays exactly when the kernel has symmetry the event respects@.";
  Format.printf
    "(complete graphs collapse to 2 classes); directed cycles and the Glauber@.";
  Format.printf
    "node marker break the symmetry and stay unlumped. Answers agree exactly.@."

(* --- E17: memoisation ablation for the Prop 4.4 traversal ------------------ *)

let e17 () =
  header "E17" "memoised vs paper-verbatim (PSPACE) exact inflationary evaluation";
  Format.printf "probabilistic reachability over d chained diamonds@.";
  Format.printf "%4s %14s %14s %10s %8s@." "d" "memoised ms" "pspace ms" "speedup" "agree";
  List.iter
    (fun d ->
      (* v0 -> {a_i, b_i} -> v_i chained d times; both branches re-merge. *)
      let rows =
        List.concat
          (List.init d (fun i ->
               let v = Printf.sprintf "v%d" i and v' = Printf.sprintf "v%d" (i + 1) in
               let a = Printf.sprintf "a%d" i and b = Printf.sprintf "b%d" i in
               [ [ v; a ]; [ v; b ]; [ a; v' ]; [ b; v' ] ]))
      in
      let db =
        Database.of_list
          [ ("e", Relational.Table_io.relation_of_rows [ "x1"; "x2" ] rows) ]
      in
      let src =
        Printf.sprintf
          "C(v0) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\n?- C(v%d)." d
      in
      let parsed = Lang.Parser.parse src in
      let kernel, init = Lang.Compile.inflationary_kernel parsed.Lang.Parser.program db in
      let q =
        Lang.Inflationary.of_forever_unchecked
          (Lang.Forever.make ~kernel ~event:(Option.get parsed.Lang.Parser.event))
      in
      let memo, memo_ms = time_ms (fun () -> Eval.Exact_inflationary.eval q init) in
      let pspace, pspace_ms = time_ms (fun () -> Eval.Exact_inflationary.eval_pspace q init) in
      Format.printf "%4d %14.2f %14.2f %9.1fx %8b@." d memo_ms pspace_ms (pspace_ms /. memo_ms)
        (Q.equal memo pspace))
    [ 1; 2; 3; 4 ];
  Format.printf
    "finding: identical exact answers, and memoisation buys little — inflationary@.";
  Format.printf
    "states accumulate their full history, so distinct choice paths rarely@.";
  Format.printf
    "reconverge; the paper's polynomial-space traversal is the right default.@."

(* --- E18: feed-forward programs mix in their dependency depth -------------- *)

let e18 () =
  header "E18" "syntactic tractability: feed-forward programs mix exactly at their depth";
  Format.printf "(the paper's closing open problem asks for such syntactic classes)@.";
  Format.printf "%-18s %12s %10s %12s %12s@." "program" "feedforward" "bound" "T(exact)" "states";
  let cases =
    [ ("pipeline-d1", "var x = { true: 1/2, false: 1/2 }.\na(p) when x = true.\na(n) when x != true.\n?- a(p).");
      ("pipeline-d2", "var x = { true: 1/2, false: 1/2 }.\na(p) when x = true.\na(n) when x != true.\nB(X) :- a(X).\n?- B(p).");
      ("pipeline-d3", "var x = { true: 1/2, false: 1/2 }.\na(p) when x = true.\na(n) when x != true.\nB(X) :- a(X).\nC(X) :- B(X).\n?- C(p).");
      ("latch (recursive)", "var x = { false: 1/2, true: 1/2 }.\nhit(a) when x = true.\nDone(X) :- hit(X).\nDone(X) :- Done(X).\n?- Done(a).")
    ]
  in
  List.iter
    (fun (name, src) ->
      let parsed = Lang.Parser.parse src in
      let program = parsed.Lang.Parser.program in
      let pc_depth = if Option.is_some (Lang.Parser.ctable_of parsed) then 2 else 0 in
      let bound = Lang.Tractable.mixing_bound program ~pc_table_depth:pc_depth in
      let kernel, init =
        match Lang.Parser.ctable_of parsed with
        | Some ct -> Lang.Compile.noninflationary_kernel_ctable program ct
        | None -> Lang.Compile.noninflationary_kernel program Database.empty
      in
      let query = Lang.Forever.make ~kernel ~event:(Option.get parsed.Lang.Parser.event) in
      let chain = Eval.Exact_noninflationary.build_chain query init in
      (* smallest t with exact stationarity from every state, by exact TV *)
      let exact_mixing =
        let n = Markov.Chain.num_states chain in
        let point i = Array.init n (fun j -> if i = j then Q.one else Q.zero) in
        let rec search t =
          if t > 12 then None
          else begin
            let ref_d = Markov.Mixing.evolve chain (point 0) t in
            let stationary =
              Array.for_all2 Q.equal ref_d (Markov.Mixing.evolve chain ref_d 1)
            in
            let uniform_start =
              List.for_all
                (fun s -> Array.for_all2 Q.equal ref_d (Markov.Mixing.evolve chain (point s) t))
                (List.init n Fun.id)
            in
            if stationary && uniform_start then Some t else search (t + 1)
          end
        in
        search 0
      in
      Format.printf "%-18s %12s %10s %12s %12d@." name
        (if Lang.Tractable.is_feedforward program then "yes" else "no")
        (match bound with Some d -> string_of_int d | None -> "-")
        (match exact_mixing with Some t -> string_of_int t | None -> ">12")
        (Markov.Chain.num_states chain))
    cases;
  Format.printf
    "shape: predicted bounds hold (T(exact) <= bound); the recursive latch never@.";
  Format.printf "reaches exact stationarity in bounded time, as the theory requires.@."

(* --- E19: hashed interning + Domain-parallel sampling --------------------- *)

let e19 () =
  header "E19" "hot-path overhaul: hashed state interning and Domain-parallel sampling";
  (* Part 1: chain construction with the same step function, interned via the
     Map baseline (of_step_ordered) vs the hashed table (of_step). *)
  Format.printf "chain construction on multi-walker product chains:@.";
  Format.printf "%-18s %8s %12s %12s %10s@." "cycles" "states" "map ms" "hash ms" "speedup";
  List.iter
    (fun sizes ->
      let parsed = Lang.Parser.parse (multi_walker_source sizes) in
      let db = multi_walker_db sizes in
      let q, init = noninflationary_of parsed db in
      let step d = Lang.Forever.step q d in
      let reps = 3 in
      let timed build =
        let c = ref None in
        let _, ms = time_ms (fun () -> for _ = 1 to reps do c := Some (build ()) done) in
        (Option.get !c, ms /. float_of_int reps)
      in
      let ordered, oms =
        timed (fun () ->
            Markov.Chain.of_step_ordered ~compare:Database.compare ~init:[ init ] ~step ())
      in
      let hashed, hms =
        timed (fun () ->
            Markov.Chain.of_step ~hash:Database.hash ~equal:Database.equal ~init:[ init ] ~step ())
      in
      let n = Markov.Chain.num_states hashed in
      assert (Markov.Chain.num_states ordered = n);
      Bench_json.record ~id:"E19/chain-build-map" ~n ~ms:oms;
      Bench_json.record ~id:"E19/chain-build-hash" ~n ~ms:hms;
      Format.printf "%-18s %8d %12.2f %12.2f %9.2fx@."
        (String.concat "x" (List.map string_of_int sizes))
        n oms hms (oms /. hms))
    [ [ 4; 4 ]; [ 10; 10 ]; [ 16; 16 ]; [ 3; 3; 3 ]; [ 5; 5; 5 ]; [ 8; 8; 8 ] ];
  (* Part 1b: the intern structure in isolation.  End-to-end build time is
     dominated by the relational step, so replay just the BFS insert/lookup
     pattern of a prebuilt chain against both intern structures. *)
  let module Dbmap = Map.Make (struct
    type t = Database.t

    let compare = Database.compare
  end) in
  let module Dbtbl = Hashtbl.Make (struct
    type t = Database.t

    let equal = Database.equal
    let hash = Database.hash
  end) in
  Format.printf "@.intern-only replay (insert every state, look up every BFS edge, x20):@.";
  Format.printf "%-18s %8s %8s %12s %12s %10s@." "cycles" "states" "edges" "map ms" "hash ms"
    "speedup";
  List.iter
    (fun sizes ->
      let parsed = Lang.Parser.parse (multi_walker_source sizes) in
      let db = multi_walker_db sizes in
      let q, init = noninflationary_of parsed db in
      let chain = Eval.Exact_noninflationary.build_chain q init in
      let n = Markov.Chain.num_states chain in
      let labels = Array.init n (Markov.Chain.label chain) in
      let succs =
        Array.init n (fun i ->
            List.map (fun (j, _) -> Markov.Chain.label chain j) (Markov.Chain.succ chain i))
      in
      let edges = Array.fold_left (fun acc l -> acc + List.length l) 0 succs in
      let reps = 20 in
      let _, map_ms =
        time_ms (fun () ->
            for _ = 1 to reps do
              let m = ref Dbmap.empty in
              Array.iteri (fun i l -> m := Dbmap.add l i !m) labels;
              Array.iter (List.iter (fun s -> ignore (Dbmap.find_opt s !m))) succs
            done)
      in
      let _, tbl_ms =
        time_ms (fun () ->
            for _ = 1 to reps do
              let t = Dbtbl.create (2 * n) in
              Array.iteri (fun i l -> Dbtbl.replace t l i) labels;
              Array.iter (List.iter (fun s -> ignore (Dbtbl.find_opt t s))) succs
            done)
      in
      let map_ms = map_ms /. float_of_int reps and tbl_ms = tbl_ms /. float_of_int reps in
      Bench_json.record ~id:"E19/intern-replay-map" ~n ~ms:map_ms;
      Bench_json.record ~id:"E19/intern-replay-hash" ~n ~ms:tbl_ms;
      Format.printf "%-18s %8d %8d %12.3f %12.3f %9.2fx@."
        (String.concat "x" (List.map string_of_int sizes))
        n edges map_ms tbl_ms (map_ms /. tbl_ms))
    [ [ 10; 10 ]; [ 16; 16 ]; [ 5; 5; 5 ]; [ 8; 8; 8 ] ];
  (* Part 2: sampling throughput sharded over OCaml domains.  The estimate is
     seed-deterministic whatever the domain count; wall-clock scaling needs
     actual cores (recommended_domain_count below reports the budget). *)
  let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
  let db = Workload.Graphs.walk_database (Workload.Graphs.barbell 3) ~start:0 in
  let q, init = noninflationary_of parsed db in
  let samples = 2000 in
  Format.printf "@.sampling throughput (barbell-3 walk, burn-in 40, %d samples; %d core%s available):@."
    samples (Eval.Pool.available ())
    (if Eval.Pool.available () = 1 then "" else "s");
  Format.printf "%8s %10s %12s %12s@." "domains" "ms" "samples/s" "estimate";
  let estimates =
    List.map
      (fun d ->
        let rng = Random.State.make [| 42 |] in
        let est, ms =
          time_ms (fun () ->
              Eval.Sample_noninflationary.eval_par rng ~domains:d ~burn_in:40 ~samples q init)
        in
        Bench_json.record ~id:"E19/sample-throughput-domains" ~n:d ~ms;
        Format.printf "%8d %10.2f %12.0f %12.4f@." d ms (float_of_int samples /. ms *. 1000.0) est;
        est)
      [ 1; 2; 4 ]
  in
  (match estimates with
   | e :: rest -> assert (List.for_all (fun e' -> e' = e) rest)
   | [] -> ());
  Format.printf "shape: hashed interning removes the O(log n) full-database comparisons per@.";
  Format.printf "BFS edge; fixed-seed estimates are bit-identical across domain counts, and@.";
  Format.printf "throughput tracks the number of physical cores backing the domains.@."

(* --- E20: interpreted vs compiled physical plans -------------------------- *)

let e20 () =
  header "E20" "step throughput: AST interpretation vs compiled physical plans";
  let compiled_of init q =
    Lang.Forever.compile ~schema_of:(Lang.Compile.schema_of_database init) q
  in
  (* Timings are best-of-[reps]: the minimum over repeated runs of the same
     pure computation is the least noise-contaminated estimate of its
     intrinsic cost. *)
  let best_of reps f =
    let best = ref infinity and r = ref None in
    for _ = 1 to reps do
      let v, ms = time_ms f in
      r := Some v;
      if ms < !best then best := ms
    done;
    (Option.get !r, !best)
  in
  (* Part 1: the E1 exact inflationary workload — per-world fixpoint
     iteration dominated by kernel steps. *)
  Format.printf "E1 workload (uncertain line, exact over all worlds):@.";
  Format.printf "%4s %12s %12s %10s@." "n" "interp ms" "plan ms" "speedup";
  List.iter
    (fun n ->
      let ct, program, event = Workload.Uncertain.uncertain_line ~n in
      let run plan () = Eval.Exact_inflationary.eval_ctable ~plan ~program ~event ct in
      let pi, ims = best_of 3 (run false) in
      let pc, cms = best_of 3 (run true) in
      assert (Q.equal pi pc);
      Bench_json.record ~id:"E20/e1-interpreted" ~n ~ms:ims;
      Bench_json.record ~id:"E20/e1-compiled" ~n ~ms:cms;
      Format.printf "%4d %12.2f %12.2f %9.2fx@." n ims cms (ims /. cms))
    [ 8; 10; 12 ];
  (* Part 2: the E4 exact non-inflationary workload.  Chain construction is
     one exact kernel step per reached state and nothing else, so it
     isolates step throughput (analyse would bury it under the rational
     Gaussian elimination); a full analyse on a small instance checks the
     answers stay Q-identical. *)
  Format.printf "@.E4 workload (multi-walker product chains, chain construction):@.";
  Format.printf "%-18s %8s %12s %12s %10s@." "cycles" "states" "interp ms" "plan ms" "speedup";
  List.iter
    (fun sizes ->
      let parsed = Lang.Parser.parse (multi_walker_source sizes) in
      let db = multi_walker_db sizes in
      let q, init = noninflationary_of parsed db in
      let qc = compiled_of init q in
      let timed query =
        best_of 5 (fun () -> Eval.Exact_noninflationary.build_chain query init)
      in
      let ci, ims = timed q in
      let cc, cms = timed qc in
      let n = Markov.Chain.num_states ci in
      assert (Markov.Chain.num_states cc = n);
      Bench_json.record ~id:"E20/e4-interpreted" ~n ~ms:ims;
      Bench_json.record ~id:"E20/e4-compiled" ~n ~ms:cms;
      Format.printf "%-18s %8d %12.2f %12.2f %9.2fx@."
        (String.concat "x" (List.map string_of_int sizes))
        n ims cms (ims /. cms))
    [ [ 10; 10 ]; [ 16; 16 ]; [ 5; 5; 5 ]; [ 8; 8; 8 ] ];
  (let parsed = Lang.Parser.parse (multi_walker_source [ 3; 4 ]) in
   let db = multi_walker_db [ 3; 4 ] in
   let q, init = noninflationary_of parsed db in
   let ai = Eval.Exact_noninflationary.analyse q init in
   let ac = Eval.Exact_noninflationary.analyse (compiled_of init q) init in
   assert (Q.equal ai.Eval.Exact_noninflationary.result ac.Eval.Exact_noninflationary.result);
   Format.printf "full 3x4 analysis Q-identical in both modes: %s@."
     (Q.to_string ai.Eval.Exact_noninflationary.result));
  (* Part 3: the E5 sampling workload — sampled kernel steps; fixed-seed
     estimates must be bit-identical with and without plans. *)
  let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
  let db = Workload.Graphs.walk_database (Workload.Graphs.barbell 3) ~start:0 in
  let q, init = noninflationary_of parsed db in
  let qc = compiled_of init q in
  let samples = 4000 in
  Format.printf "@.E5 workload (barbell-3 walk, burn-in 40, %d samples, seed 42):@." samples;
  Format.printf "%-12s %10s %12s %12s@." "mode" "ms" "samples/s" "estimate";
  let sample query =
    best_of 2 (fun () ->
        let rng = Random.State.make [| 42 |] in
        Eval.Sample_noninflationary.eval rng ~burn_in:40 ~samples query init)
  in
  let ei, ims = sample q in
  let ec, cms = sample qc in
  assert (ei = ec);
  Bench_json.record ~id:"E20/e5-interpreted" ~n:samples ~ms:ims;
  Bench_json.record ~id:"E20/e5-compiled" ~n:samples ~ms:cms;
  List.iter
    (fun (mode, ms, est) ->
      Format.printf "%-12s %10.2f %12.0f %12.4f@." mode ms
        (float_of_int samples /. ms *. 1000.0)
        est)
    [ ("interpreted", ims, ei); ("compiled", cms, ec) ];
  Format.printf "shape: plans pay schema resolution and operator selection once per query@.";
  Format.printf "instead of once per step; answers — exact rationals and fixed-seed@.";
  Format.printf "estimates alike — are identical in both modes.@."

(* --- E21: observability overhead ------------------------------------------ *)

let e21 () =
  header "E21" "observability overhead: Obs disabled vs enabled (E20 workloads)";
  (* Instrumentation is bound at closure-build time (Obs.wrap1/wrap2 are the
     identity when disabled), so each measured run rebuilds its plan under
     the Obs state being measured: "off" times the uninstrumented closures,
     "on" the ticking ones.  Off and on runs alternate within each round and
     each mode keeps its minimum, so slow drift in machine load hits both
     modes equally instead of masquerading as (or hiding) overhead. *)
  let measure reps f =
    let mso = ref infinity and mson = ref infinity in
    let vo = ref None and von = ref None in
    for _ = 1 to reps do
      Obs.set_enabled false;
      Gc.compact ();
      let v, ms = time_ms f in
      vo := Some v;
      if ms < !mso then mso := ms;
      Obs.set_enabled true;
      Obs.reset ();
      Gc.compact ();
      let v', ms' = time_ms f in
      von := Some v';
      if ms' < !mson then mson := ms'
    done;
    Obs.set_enabled false;
    (Option.get !vo, !mso, Option.get !von, !mson)
  in
  let row label n mso mson extra =
    Bench_json.record ~id:(Printf.sprintf "E21/%s-off" label) ~n ~ms:mso;
    Bench_json.record_extra ~id:(Printf.sprintf "E21/%s-on" label) ~n ~ms:mson extra;
    Format.printf "%-22s %6d %12.2f %12.2f %+9.1f%%@." label n mso mson
      ((mson /. mso -. 1.0) *. 100.0)
  in
  Format.printf "%-22s %6s %12s %12s %10s@." "workload" "n" "off ms" "on ms" "overhead";
  (* E1 workload: exact inflationary over all worlds, compiled plans. *)
  (let n = 12 in
   let ct, program, event = Workload.Uncertain.uncertain_line ~n in
   let run () = Eval.Exact_inflationary.eval_ctable ~plan:true ~program ~event ct in
   let vo, mso, von, mson = measure 7 run in
   assert (Q.equal vo von);
   row "e1-exact-worlds" n mso mson
     [ ("states", string_of_int (Obs.count_of "engine.states"));
       ("draws", string_of_int (Obs.count_of "repair_key.draws")) ]);
  (* E4 workload: exact non-inflationary chain construction, compiled plans.
     Plan compilation happens inside the measured thunk so the wrapped/
     unwrapped closures match the Obs state. *)
  (let sizes = [ 8; 8; 8 ] in
   let parsed = Lang.Parser.parse (multi_walker_source sizes) in
   let db = multi_walker_db sizes in
   let q, init = noninflationary_of parsed db in
   let run () =
     let qc = Lang.Forever.compile ~schema_of:(Lang.Compile.schema_of_database init) q in
     Eval.Exact_noninflationary.build_chain qc init
   in
   let co, mso, con, mson = measure 7 run in
   let n = Markov.Chain.num_states co in
   assert (Markov.Chain.num_states con = n);
   row "e4-chain-build" n mso mson
     [ ("states", string_of_int (Obs.count_of "chain.states"));
       ("steps", string_of_int (Obs.count_of "chain.expanded"));
       ("draws", string_of_int (Obs.count_of "repair_key.draws")) ]);
  (* E5 workload: fixed-seed sampling; the estimate must be bit-identical
     with instrumentation on (Obs never touches the RNG stream). *)
  (let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
   let db = Workload.Graphs.walk_database (Workload.Graphs.barbell 3) ~start:0 in
   let q, init = noninflationary_of parsed db in
   let samples = 4000 in
   let run () =
     let qc = Lang.Forever.compile ~schema_of:(Lang.Compile.schema_of_database init) q in
     let rng = Random.State.make [| 42 |] in
     Eval.Sample_noninflationary.eval rng ~burn_in:40 ~samples qc init
   in
   let eo, mso, eon, mson = measure 4 run in
   assert (eo = eon);
   row "e5-sampling" samples mso mson
     [ ("steps", string_of_int (Obs.count_of "engine.steps"));
       ("draws", string_of_int (Obs.count_of "repair_key.draws")) ]);
  Format.printf "answers identical in both modes; off-path runs the same closures as@.";
  Format.printf "before the metrics layer existed (wrap chosen at plan build, one bool@.";
  Format.printf "per expanded state in the chain builder).@."

(* --- E22: tracing & series overhead --------------------------------------- *)

let e22 () =
  header "E22" "tracing overhead: Trace+Series disabled vs enabled (E21 workloads)";
  (* Same interleaved best-of-reps discipline as E21, toggling the Trace and
     Series recorders instead of the Obs counters (which stay off in both
     modes).  Sites latch [Trace.enabled]/[Series.enabled] when they build
     their closures or tasks, so the "off" runs execute byte-identical code
     to a binary without the telemetry layer; "on" pays ring-buffer appends
     plus the per-level/per-stride series points. *)
  let measure reps f =
    let mso = ref infinity and mson = ref infinity in
    let vo = ref None and von = ref None in
    Obs.set_enabled false;
    for _ = 1 to reps do
      Obs.Trace.set_enabled false;
      Obs.Series.set_enabled false;
      Gc.compact ();
      let v, ms = time_ms f in
      vo := Some v;
      if ms < !mso then mso := ms;
      Obs.Trace.reset ();
      Obs.Series.reset ();
      Obs.Trace.set_enabled true;
      Obs.Series.set_enabled true;
      Gc.compact ();
      let v', ms' = time_ms f in
      von := Some v';
      if ms' < !mson then mson := ms'
    done;
    Obs.Trace.set_enabled false;
    Obs.Series.set_enabled false;
    (Option.get !vo, !mso, Option.get !von, !mson)
  in
  let telemetry () =
    let events = List.length (Obs.Trace.events ()) in
    let points = List.fold_left (fun acc (_, p) -> acc + p) 0 (Obs.Series.counts ()) in
    [ ("trace_events", string_of_int events); ("series_points", string_of_int points) ]
  in
  let row label n mso mson extra =
    Bench_json.record ~id:(Printf.sprintf "E22/%s-off" label) ~n ~ms:mso;
    Bench_json.record_extra ~id:(Printf.sprintf "E22/%s-on" label) ~n ~ms:mson extra;
    Format.printf "%-22s %6d %12.2f %12.2f %+9.1f%%@." label n mso mson
      ((mson /. mso -. 1.0) *. 100.0)
  in
  Format.printf "%-22s %6s %12s %12s %10s@." "workload" "n" "off ms" "on ms" "overhead";
  (* E1 workload: the exact engine records the per-visit saturation series. *)
  (let n = 12 in
   let ct, program, event = Workload.Uncertain.uncertain_line ~n in
   let run () = Eval.Exact_inflationary.eval_ctable ~plan:true ~program ~event ct in
   let vo, mso, von, mson = measure 7 run in
   assert (Q.equal vo von);
   row "e1-exact-worlds" n mso mson (telemetry ()));
  (* E4 workload: chain construction records one frontier point and one
     instant per BFS level. *)
  (let sizes = [ 8; 8; 8 ] in
   let parsed = Lang.Parser.parse (multi_walker_source sizes) in
   let db = multi_walker_db sizes in
   let q, init = noninflationary_of parsed db in
   let run () =
     let qc = Lang.Forever.compile ~schema_of:(Lang.Compile.schema_of_database init) q in
     Eval.Exact_noninflationary.build_chain qc init
   in
   let co, mso, con, mson = measure 7 run in
   let n = Markov.Chain.num_states co in
   assert (Markov.Chain.num_states con = n);
   row "e4-chain-build" n mso mson (telemetry ()));
  (* E5 workload: the sampler records the Wilson-band estimate every k-th
     sample; the fixed-seed estimate must be bit-identical with recording
     on (the recorders never touch the RNG stream). *)
  (let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
   let db = Workload.Graphs.walk_database (Workload.Graphs.barbell 3) ~start:0 in
   let q, init = noninflationary_of parsed db in
   let samples = 4000 in
   let run () =
     let qc = Lang.Forever.compile ~schema_of:(Lang.Compile.schema_of_database init) q in
     let rng = Random.State.make [| 42 |] in
     Eval.Sample_noninflationary.eval rng ~burn_in:40 ~samples qc init
   in
   let eo, mso, eon, mson = measure 4 run in
   assert (eo = eon);
   row "e5-sampling" samples mso mson (telemetry ()));
  Format.printf "answers identical in both modes; the disabled path re-checks one atomic@.";
  Format.printf "bool per closure build (not per event), so a traced binary at rest runs@.";
  Format.printf "the same instructions as an untraced one.@."

(* --- E23: guard overhead --------------------------------------------------- *)

let e23 () =
  header "E23" "guard overhead: ungoverned vs armed-but-unhit budgets (E21 workloads)";
  (* Same interleaved best-of-reps discipline as E21/E22.  "off" runs with
     [Guard.unlimited] — the latched checkers are [None], so the executed
     hot loop is byte-identical to a binary without the governance layer.
     "on" arms a fresh guard per run with budgets far above the workload
     (deadline + state + sample), so every per-state/per-sample check runs
     and never fires: this is the steady-state price of running governed. *)
  let huge_guard () =
    Guard.make ~deadline_ms:3.6e6 ~max_states:max_int ~max_samples:max_int ()
  in
  let measure reps off on =
    let mso = ref infinity and mson = ref infinity in
    let vo = ref None and von = ref None in
    Obs.set_enabled false;
    for _ = 1 to reps do
      Gc.compact ();
      let v, ms = time_ms off in
      vo := Some v;
      if ms < !mso then mso := ms;
      Gc.compact ();
      let v', ms' = time_ms on in
      von := Some v';
      if ms' < !mson then mson := ms'
    done;
    (Option.get !vo, !mso, Option.get !von, !mson)
  in
  let row label n mso mson =
    Bench_json.record ~id:(Printf.sprintf "E23/%s-off" label) ~n ~ms:mso;
    Bench_json.record ~id:(Printf.sprintf "E23/%s-on" label) ~n ~ms:mson;
    Format.printf "%-22s %6d %12.2f %12.2f %+9.1f%%@." label n mso mson
      ((mson /. mso -. 1.0) *. 100.0)
  in
  Format.printf "%-22s %6s %12s %12s %10s@." "workload" "n" "off ms" "on ms" "overhead";
  (* E1 workload: exact inflationary over all worlds (per-state ticks in the
     memoised fixpoint evaluation). *)
  (let n = 12 in
   let ct, program, event = Workload.Uncertain.uncertain_line ~n in
   let off () = Eval.Exact_inflationary.eval_ctable ~plan:true ~program ~event ct in
   let on () =
     Eval.Exact_inflationary.eval_ctable ~guard:(huge_guard ()) ~plan:true ~program ~event ct
   in
   let vo, mso, von, mson = measure 7 off on in
   assert (Q.equal vo von);
   row "e1-exact-worlds" n mso mson);
  (* E4 workload: chain construction (per-interned-state tick + per-expansion
     deadline/interrupt poll in the BFS). *)
  (let sizes = [ 8; 8; 8 ] in
   let parsed = Lang.Parser.parse (multi_walker_source sizes) in
   let db = multi_walker_db sizes in
   let q, init = noninflationary_of parsed db in
   let build guard () =
     let qc = Lang.Forever.compile ~schema_of:(Lang.Compile.schema_of_database init) q in
     Eval.Exact_noninflationary.build_chain ?guard qc init
   in
   let co, mso, con, mson = measure 7 (build None) (fun () -> build (Some (huge_guard ())) ()) in
   let n = Markov.Chain.num_states co in
   assert (Markov.Chain.num_states con = n);
   row "e4-chain-build" n mso mson);
  (* E5 workload: sequential sampling (per-sample deadline/interrupt poll);
     the fixed-seed estimate must be bit-identical under the armed guard. *)
  (let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
   let db = Workload.Graphs.walk_database (Workload.Graphs.barbell 3) ~start:0 in
   let q, init = noninflationary_of parsed db in
   let samples = 4000 in
   let sample guard () =
     let qc = Lang.Forever.compile ~schema_of:(Lang.Compile.schema_of_database init) q in
     let rng = Random.State.make [| 42 |] in
     let r = Eval.Sample_noninflationary.run_samples ?guard rng ~burn_in:40 ~samples qc init in
     (r.Eval.Pool.hits, r.Eval.Pool.completed, r.Eval.Pool.stopped = None)
   in
   let ro, mso, ron, mson =
     measure 4 (sample None) (fun () -> sample (Some (huge_guard ())) ())
   in
   assert (ro = ron);
   row "e5-sampling" samples mso mson);
  Format.printf "answers identical in both modes; ungoverned runs latch None checkers at@.";
  Format.printf "closure build, so the off column is the pre-guard hot loop unchanged.@."

(* --- E24: goal-directed fixpoint evaluation -------------------------------- *)

let e24 () =
  header "E24" "goal-directed evaluation: naive vs semi-naive deltas vs magic sets";
  (* Deterministic chain reachability: s(a0), e(a_i, a_{i+1}), R = nodes
     reachable from s, event R(a_{n/4}) near the start.  The inflationary
     fixpoint runs n steps whatever the event; the naive stepper re-derives
     all i reachable nodes at step i (Θ(n²) tuple work overall) while the
     semi-naive stepper pushes only the single new node through the join
     (Θ(n) — the speedup ratio should grow with n).  Magic sets instead
     restrict derivation to the demanded prefix, visiting ~n/4 states
     instead of n. *)
  let module D = Lang.Datalog in
  let node i = "a" ^ string_of_int i in
  let chain_db n =
    let e =
      Relation.make [ "x1"; "x2" ]
        (List.init (n - 1) (fun i ->
             Tuple.of_list [ Value.Str (node i); Value.Str (node (i + 1)) ]))
    in
    let s = Relation.make [ "x1" ] [ Tuple.of_list [ Value.Str (node 0) ] ] in
    Database.of_list [ ("e", e); ("s", s) ]
  in
  let atom p args = { D.pred = p; args } in
  let program =
    [ D.rule (D.deterministic_head "R" [ D.Var "X" ]) [ atom "s" [ D.Var "X" ] ];
      D.rule
        (D.deterministic_head "R" [ D.Var "Y" ])
        [ atom "R" [ D.Var "X" ]; atom "e" [ D.Var "X"; D.Var "Y" ] ]
    ]
  in
  let best_of reps f =
    let best = ref infinity and r = ref None in
    for _ = 1 to reps do
      let v, ms = time_ms f in
      r := Some v;
      if ms < !best then best := ms
    done;
    (Option.get !r, !best)
  in
  let eval ?(seminaive = false) program db event () =
    let kernel, init = Lang.Compile.inflationary_kernel program db in
    let schema_of = Lang.Compile.schema_of_database init in
    let fq = Lang.Forever.compile ~schema_of (Lang.Forever.make ~kernel ~event) in
    let fq =
      if seminaive then Lang.Seminaive.install (Lang.Seminaive.compile ~schema_of program) fq
      else fq
    in
    Eval.Exact_inflationary.eval_with_stats (Lang.Inflationary.of_forever_unchecked fq) init
  in
  Format.printf "%6s %8s %12s %12s %10s %12s %8s@." "n" "states" "naive ms" "semi ms"
    "speedup" "magic ms" "m.states";
  List.iter
    (fun n ->
      let db = chain_db n in
      let event = Lang.Event.make "R" [ Value.Str (node (n / 4)) ] in
      let reps = if n >= 64 then 3 else 5 in
      let (pn, ns), nms = best_of reps (eval program db event) in
      let (ps, ss), sms = best_of reps (eval ~seminaive:true program db event) in
      let m = Lang.Magic.rewrite ~event program in
      let (pm, ms_), mms =
        best_of reps (eval ~seminaive:true (Lang.Magic.program m) db (Lang.Magic.event m))
      in
      (* All three strategies must agree exactly; semi-naive visits the same
         states as naive, magic strictly fewer. *)
      assert (Q.equal pn ps);
      assert (Q.equal pn pm);
      assert (ns.Eval.Exact_inflationary.states_visited = ss.Eval.Exact_inflationary.states_visited);
      assert (ms_.Eval.Exact_inflationary.states_visited < ns.Eval.Exact_inflationary.states_visited);
      Bench_json.record ~id:"E24/naive" ~n ~ms:nms;
      Bench_json.record ~id:"E24/seminaive" ~n ~ms:sms;
      Bench_json.record ~id:"E24/magic" ~n ~ms:mms;
      Format.printf "%6d %8d %12.2f %12.2f %9.2fx %12.2f %8d@." n
        ns.Eval.Exact_inflationary.states_visited nms sms (nms /. sms) mms
        ms_.Eval.Exact_inflationary.states_visited)
    [ 8; 16; 32; 64; 128 ];
  Format.printf "speedup = naive/semi-naive; it should grow with n (Θ(n²) vs Θ(n) tuple@.";
  Format.printf "work).  magic answers are Q-identical with ~n/4 visited states.@."

(* --- E25: columnar data plane ------------------------------------------- *)

let e25 () =
  header "E25" "columnar data plane: flat-array relations vs set-based reference";
  let module Ref = Relational.Relation_ref in
  let time_iters iters f =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Sys.time () -. t0) *. 1000.0
  in
  let best_ms reps iters f =
    let best = ref infinity in
    for _ = 1 to reps do
      let ms = time_iters iters f in
      if ms < !best then best := ms
    done;
    !best
  in
  (* --- micros: union / diff / join / intern ---------------------------- *)
  Format.printf "micro-throughput, columnar vs set-based reference (ms per batch of runs)@.";
  Format.printf "%-8s %8s %12s %12s %10s@." "op" "n" "columnar" "reference" "speedup";
  let sizes = [ 1024; 4096; 16384 ] in
  let largest = List.nth sizes (List.length sizes - 1) in
  let largest_speedups = ref [] in
  let row op n cms rms =
    let sp = rms /. cms in
    if n = largest then largest_speedups := (op, sp) :: !largest_speedups;
    Bench_json.record_extra ~id:("E25/" ^ op) ~n ~ms:cms
      [ ("ref_ms", Printf.sprintf "%.3f" rms); ("speedup", Printf.sprintf "%.2f" sp) ];
    Format.printf "%-8s %8d %12.3f %12.3f %9.2fx@." op n cms rms sp
  in
  (* Reference hash join in the pre-refactor style: Tuple_tbl index over the
     build side, fold-probe accumulating through set insertion. *)
  let module T = Relational.Algebra.Tuple_tbl in
  let ref_join ra rb =
    let idx = T.create 512 in
    Ref.iter
      (fun t ->
        let key = [| t.(0) |] in
        let prev = match T.find_opt idx key with Some l -> l | None -> [] in
        T.replace idx key (t :: prev))
      rb;
    Ref.fold
      (fun t acc ->
        match T.find_opt idx [| t.(1) |] with
        | None -> acc
        | Some bucket ->
          List.fold_left (fun acc (tb : Tuple.t) -> Ref.add [| t.(0); t.(1); tb.(1) |] acc) acc bucket)
      ra
      (Ref.empty [ "x1"; "x2"; "x3" ])
  in
  List.iter
    (fun n ->
      let iters = max 3 (200_000 / n) in
      let ta =
        List.init n (fun i -> Tuple.of_list [ Value.Int (i * 7 mod (2 * n)); Value.Int (i mod 97) ])
      in
      let tb =
        List.init n (fun i ->
            Tuple.of_list [ Value.Int ((i * 7) + 3 mod (2 * n)); Value.Int (i mod 89) ])
      in
      let ca = Relation.make [ "x1"; "x2" ] ta and cb = Relation.make [ "x1"; "x2" ] tb in
      let ra = Ref.make [ "x1"; "x2" ] ta and rb = Ref.make [ "x1"; "x2" ] tb in
      row "union" n
        (best_ms 3 iters (fun () -> Relation.union ca cb))
        (best_ms 3 iters (fun () -> Ref.union ra rb));
      row "diff" n
        (best_ms 3 iters (fun () -> Relation.diff ca cb))
        (best_ms 3 iters (fun () -> Ref.diff ra rb));
      (* Join probe side n tuples, build side 499 single-tuple keys. *)
      let tja = List.init n (fun i -> Tuple.of_list [ Value.Int i; Value.Int (i mod 499) ]) in
      let tjb = List.init 499 (fun j -> Tuple.of_list [ Value.Int j; Value.Int (j * 2) ]) in
      let cja = Relation.make [ "x1"; "x2" ] tja and cjb = Relation.make [ "x2"; "x3" ] tjb in
      let rja = Ref.make [ "x1"; "x2" ] tja and rjb = Ref.make [ "x2"; "x3" ] tjb in
      let _, cjoin = Relational.Plan.Ops.join [ "x1"; "x2" ] [ "x2"; "x3" ] in
      assert (Relation.equal (cjoin cja cjb) (Ref.to_relation (ref_join rja rjb)));
      row "join" n
        (best_ms 3 iters (fun () -> cjoin cja cjb))
        (best_ms 3 iters (fun () -> ref_join rja rjb));
      (* Interning settles equality physically; the reference path compares
         freshly-boxed equal strings structurally every time. *)
      let payload i = Printf.sprintf "node-%04d" (i mod 256) in
      let xs = Array.init n (fun i -> Value.Intern.str (payload i)) in
      let ys = Array.init n (fun i -> Value.Intern.str (payload i)) in
      let xs' = Array.init n (fun i -> Value.Str (payload i)) in
      let ys' = Array.init n (fun i -> Value.Str (payload i)) in
      let count_eq (a : Value.t array) b () =
        let c = ref 0 in
        Array.iteri (fun i v -> if Value.equal v b.(i) then incr c) a;
        !c
      in
      assert (count_eq xs ys () = n && count_eq xs' ys' () = n);
      row "intern" n
        (best_ms 3 iters (count_eq xs ys))
        (best_ms 3 iters (count_eq xs' ys')))
    sizes;
  (* The headline claim: union/diff/join micros at the largest size must
     hold a >= 1.5x throughput edge over the set-based reference. *)
  List.iter
    (fun op ->
      let sp = List.assoc op !largest_speedups in
      if sp < 1.5 then
        failwith (Printf.sprintf "E25: %s speedup %.2fx < 1.5x at n=%d" op sp largest))
    [ "union"; "diff"; "join" ];
  (* --- macros: E1 / E4 / E5 shapes end-to-end on the columnar plane ----- *)
  Format.printf "@.macro rows (end-to-end on the columnar plane):@.";
  (let ct, program, event = Workload.Uncertain.uncertain_line ~n:10 in
   let p, ms = time_ms (fun () -> Eval.Exact_inflationary.eval_ctable ~program ~event ct) in
   assert (Q.equal p (Workload.Uncertain.expected_line ~n:10));
   Bench_json.record ~id:"E25/e1-macro" ~n:10 ~ms;
   Format.printf "e1-macro: exact inflationary n=10 in %.2f ms@." ms);
  (let parsed = Lang.Parser.parse (multi_walker_source [ 6; 6 ]) in
   let db = multi_walker_db [ 6; 6 ] in
   let q, init = noninflationary_of parsed db in
   let chain, build_ms = time_ms (fun () -> Eval.Exact_noninflationary.build_chain q init) in
   let nstates = Markov.Chain.num_states chain in
   Gc.compact ();
   let gc_live_words = (Gc.stat ()).Gc.live_words in
   (* Word footprint of every chain state label re-encoded fresh in each
      representation ([Obj.reachable_words], so physically shared tuples and
      values count once per root): identical tuple/value sharing on both
      sides, so the delta is purely flat arrays vs balanced-tree nodes. *)
   let col_copy db =
     List.map
       (fun (nm, r) -> (nm, Relation.make (Relation.columns r) (Relation.tuples r)))
       (Database.bindings db)
   in
   let ref_copy db =
     List.map
       (fun (nm, r) -> (nm, Ref.make (Relation.columns r) (Relation.tuples r)))
       (Database.bindings db)
   in
   let labels enc = Array.init nstates (fun i -> enc (Markov.Chain.label chain i)) in
   let lw_col = Obj.reachable_words (Obj.repr (labels col_copy)) in
   let lw_ref = Obj.reachable_words (Obj.repr (labels ref_copy)) in
   assert (lw_col < lw_ref);
   Bench_json.record_extra ~id:"E25/e4-macro" ~n:nstates ~ms:build_ms
     [ ("gc_live_words", string_of_int gc_live_words);
       ("label_words_columnar", string_of_int lw_col);
       ("label_words_reference", string_of_int lw_ref)
     ];
   Format.printf "e4-macro: chain build 6x6 (%d states) in %.2f ms (%d Gc live words);@." nstates
     build_ms gc_live_words;
   Format.printf "  state labels hold %d words columnar vs %d set-based (%.2fx reduction)@."
     lw_col lw_ref
     (float_of_int lw_ref /. float_of_int lw_col));
  (let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
   let db = Workload.Graphs.walk_database (Workload.Graphs.barbell 3) ~start:0 in
   let q, init = noninflationary_of parsed db in
   let rng = Random.State.make [| 7 |] in
   let est, ms =
     time_ms (fun () -> Eval.Sample_noninflationary.eval rng ~burn_in:50 ~samples:2000 q init)
   in
   Bench_json.record ~id:"E25/e5-macro" ~n:2000 ~ms;
   Format.printf "e5-macro: barbell-3 sampling (2000 samples) est %.4f in %.2f ms@." est ms);
  Format.printf "speedup = reference ms / columnar ms; union/diff/join gate at 1.5x.@."

(* --- E26: daemon load — throughput vs sessions, cold vs warm cache ------- *)

let e26 () =
  header "E26" "daemon: queries/sec vs concurrent sessions, cold vs warm plan cache";
  (* Compile-heavy workload: a long chain of copy rules makes plan
     compilation dominate execution, which is exactly the cost the shared
     plan cache amortises.  Programs are distinct per (session, index) so a
     cold pass is all misses and repeats are all hits. *)
  let program ~session ~index =
    let b = Buffer.create 1024 in
    Buffer.add_string b (Printf.sprintf "q%d_%d_0(a).\n" session index);
    for i = 1 to 40 do
      Buffer.add_string b
        (Printf.sprintf "q%d_%d_%d(X) :- q%d_%d_%d(X).\n" session index i session index (i - 1))
    done;
    Buffer.add_string b (Printf.sprintf "?- q%d_%d_40(a)." session index);
    Buffer.contents b
  in
  let programs_per_session = 8 in
  let warm_rounds = 4 in
  (* Answers from the daemon must match the one-shot engine bit for bit. *)
  let reference =
    (Eval.Engine.run ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact
       (Lang.Parser.parse (program ~session:0 ~index:0)))
      .Eval.Engine.probability
  in
  Format.printf "%-10s %9s %12s %12s %10s@." "pass" "sessions" "queries" "ms/query" "q/s";
  let run_pass sessions =
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "probdbd_bench_%d_%d.sock" (Unix.getpid ()) sessions)
    in
    let t = Serve.Server.create (Serve.Server.default_config (Serve.Server.Unix_sock path)) in
    let server = Domain.spawn (fun () -> Serve.Server.serve_forever t) in
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.shutdown t;
        Domain.join server)
      (fun () ->
        let round pass =
          let t0 = Unix.gettimeofday () in
          let workers =
            List.init sessions (fun s ->
                Domain.spawn (fun () ->
                    let c = Serve.Client.connect_unix ~retry_ms:2000 path in
                    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
                    for i = 0 to programs_per_session - 1 do
                      let resp =
                        Serve.Client.rpc_json c
                          (Obs.Json.Obj
                             [ ("op", Obs.Json.Str "query");
                               ("id", Obs.Json.Str (Printf.sprintf "%s-s%d-q%d" pass s i));
                               ("tenant", Obs.Json.Str (Printf.sprintf "bench%d" s));
                               ("source", Obs.Json.Str (program ~session:s ~index:i));
                               ("stats", Obs.Json.Bool false)
                             ])
                      in
                      match resp with
                      | Obs.Json.Obj o -> (
                        (match List.assoc_opt "ok" o with
                        | Some (Obs.Json.Bool true) -> ()
                        | _ -> failwith ("E26: query failed: " ^ Obs.Json.to_string resp));
                        match
                          List.assoc_opt "report" o
                          |> Option.map (function
                               | Obs.Json.Obj r -> List.assoc_opt "probability" r
                               | _ -> None)
                        with
                        | Some (Some (Obs.Json.Float p)) when p = reference -> ()
                        | Some (Some (Obs.Json.Int p)) when float_of_int p = reference -> ()
                        | _ -> failwith "E26: daemon answer diverged from one-shot engine")
                      | _ -> failwith "E26: malformed response"
                    done))
          in
          List.iter Domain.join workers;
          (Unix.gettimeofday () -. t0) *. 1000.0
        in
        let queries = sessions * programs_per_session in
        let cold_ms = round "cold" in
        (* Several warm rounds; keep the best to damp scheduler noise. *)
        let warm_ms = ref infinity in
        for r = 1 to warm_rounds do
          let ms = round (Printf.sprintf "warm%d" r) in
          if ms < !warm_ms then warm_ms := ms
        done;
        let warm_ms = !warm_ms in
        let per_query pass total_ms =
          let mpq = total_ms /. float_of_int queries in
          Format.printf "%-10s %9d %12d %12.3f %10.0f@." pass sessions queries mpq
            (1000.0 /. mpq);
          mpq
        in
        let cold_pq = per_query "cold" cold_ms in
        let warm_pq = per_query "warm" warm_ms in
        Bench_json.record_extra ~id:(Printf.sprintf "E26/cold-s%d" sessions) ~n:sessions
          ~ms:cold_pq
          [ ("queries", string_of_int queries) ];
        Bench_json.record_extra ~id:(Printf.sprintf "E26/warm-s%d" sessions) ~n:sessions
          ~ms:warm_pq
          [ ("queries", string_of_int queries);
            ("speedup", Printf.sprintf "%.2f" (cold_pq /. warm_pq))
          ];
        (sessions, cold_pq, warm_pq))
  in
  let rows = List.map run_pass [ 1; 2; 4 ] in
  List.iter
    (fun (s, cold, warm) ->
      let sp = cold /. warm in
      Format.printf "sessions=%d: warm is %.2fx faster than cold@." s sp;
      if sp < 1.5 then
        failwith
          (Printf.sprintf
             "E26: warm plan cache must be >= 1.5x faster than cold at %d sessions (got %.2fx)"
             s sp))
    rows

(* --- E27: telemetry plane overhead — daemon on vs off --------------------- *)

let e27 () =
  header "E27" "telemetry plane overhead: full daemon request path, plane on vs off";
  (* Two in-process daemons differing only in [config.telemetry]; rounds
     alternate between them and each mode keeps its minimum, so machine
     drift hits both modes instead of masquerading as overhead.  Answers
     must be bit-identical across modes — the plane may cost time, never
     precision. *)
  let program index =
    Printf.sprintf "r%d_0(a).\nr%d_1(X) :- r%d_0(X).\n?- r%d_1(a)." index index index index
  in
  let programs = 8 in
  let queries_per_round = 800 in
  let reps = 7 in
  let reference =
    (Eval.Engine.run ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact
       (Lang.Parser.parse (program 0)))
      .Eval.Engine.probability
  in
  let start ~telemetry tag =
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "probdbd_e27_%s_%d.sock" tag (Unix.getpid ()))
    in
    let cfg =
      { (Serve.Server.default_config (Serve.Server.Unix_sock path)) with
        Serve.Server.telemetry
      }
    in
    let t = Serve.Server.create cfg in
    let d = Domain.spawn (fun () -> Serve.Server.serve_forever t) in
    (path, t, d)
  in
  let off = start ~telemetry:false "off" in
  let on = start ~telemetry:true "on" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (_, t, d) ->
          Serve.Server.shutdown t;
          Domain.join d)
        [ off; on ])
  @@ fun () ->
  let round (path, _, _) tag r =
    let c = Serve.Client.connect_unix ~retry_ms:2000 path in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    let t0 = Unix.gettimeofday () in
    for i = 0 to queries_per_round - 1 do
      let resp =
        Serve.Client.rpc_json c
          (Obs.Json.Obj
             [ ("op", Obs.Json.Str "query");
               ("id", Obs.Json.Str (Printf.sprintf "%s-%d-%d" tag r i));
               ("tenant", Obs.Json.Str "e27");
               ("source", Obs.Json.Str (program (i mod programs)));
               ("stats", Obs.Json.Bool false)
             ])
      in
      match resp with
      | Obs.Json.Obj o -> (
        (match List.assoc_opt "ok" o with
        | Some (Obs.Json.Bool true) -> ()
        | _ -> failwith ("E27: query failed: " ^ Obs.Json.to_string resp));
        match
          List.assoc_opt "report" o
          |> Option.map (function
               | Obs.Json.Obj rep -> List.assoc_opt "probability" rep
               | _ -> None)
        with
        | Some (Some (Obs.Json.Float p)) when p = reference -> ()
        | Some (Some (Obs.Json.Int p)) when float_of_int p = reference -> ()
        | _ -> failwith "E27: answers diverged between telemetry modes")
      | _ -> failwith "E27: malformed response"
    done;
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  (* Warm both daemons' plan caches so timed rounds are all cache hits. *)
  ignore (round off "warm-off" 0);
  ignore (round on "warm-on" 0);
  let min_off = ref infinity and min_on = ref infinity in
  for r = 1 to reps do
    (* Swap mode order every rep: position in the rep (cache warmth,
       scheduler state) must not masquerade as telemetry overhead. *)
    let passes =
      if r land 1 = 1 then [ (off, "off", min_off); (on, "on", min_on) ]
      else [ (on, "on", min_on); (off, "off", min_off) ]
    in
    List.iter
      (fun (srv, tag, best) ->
        let ms = round srv tag r in
        if ms < !best then best := ms)
      passes
  done;
  let per_query ms = ms /. float_of_int queries_per_round in
  let overhead = ((!min_on /. !min_off) -. 1.0) *. 100.0 in
  Format.printf "%-10s %10s %12s %12s@." "mode" "queries" "round ms" "ms/query";
  Format.printf "%-10s %10d %12.2f %12.4f@." "off" queries_per_round !min_off
    (per_query !min_off);
  Format.printf "%-10s %10d %12.2f %12.4f@." "on" queries_per_round !min_on
    (per_query !min_on);
  Format.printf "telemetry overhead: %+.2f%% (bar: 3%%)@." overhead;
  Bench_json.record ~id:"E27/daemon-off" ~n:queries_per_round ~ms:(per_query !min_off);
  Bench_json.record_extra ~id:"E27/daemon-on" ~n:queries_per_round ~ms:(per_query !min_on)
    [ ("overhead_pct", Printf.sprintf "%.2f" overhead) ];
  (* The exposition stays exact under load: the on-daemon's request
     histogram must count exactly the queries sent to it. *)
  let sent_on = queries_per_round * (reps + 1) in
  let path_on, _, _ = on in
  let c = Serve.Client.connect_unix ~retry_ms:2000 path_on in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  let fields =
    Serve.Client.rpc_fields c
      (Obs.Json.Obj [ ("op", Obs.Json.Str "metrics"); ("id", Obs.Json.Str "e27-m") ])
  in
  (match List.assoc_opt "metrics" fields with
   | Some (Obs.Json.Obj doc) -> (
     match List.assoc_opt "tenants" doc with
     | Some (Obs.Json.Obj tenants) -> (
       match List.assoc_opt "e27" tenants with
       | Some (Obs.Json.Obj row) -> (
         match List.assoc_opt "requests" row with
         | Some (Obs.Json.Int n) when n = sent_on -> ()
         | Some (Obs.Json.Int n) ->
           failwith
             (Printf.sprintf "E27: histogram counted %d requests, %d were sent" n sent_on)
         | _ -> failwith "E27: rollup missing request count")
       | _ -> failwith "E27: tenant e27 missing from rollup")
     | _ -> failwith "E27: metrics document has no tenants")
   | _ -> failwith "E27: metrics op returned no document");
  if overhead > 3.0 then
    failwith (Printf.sprintf "E27: telemetry overhead %.2f%% exceeds the 3%% bar" overhead)

(* --- E28: durability overhead — journal on vs off, plus cold replay ------- *)

let e28 () =
  header "E28" "durability overhead: journaled daemon vs journal-off, plus cold replay";
  (* Two in-process daemons differing only in [config.state_dir]; rounds
     alternate between them and each mode keeps its minimum, so machine
     drift hits both modes instead of masquerading as overhead.  Each round
     is the daemon's steady-state mix: one journaled [load] (framed record
     + fsync before the ack on the on-daemon) followed by queries answered
     by name from the loaded program — the fsync cost is amortised the way
     a resident deployment sees it.  Answers must be bit-identical across
     modes: durability may cost time, never precision. *)
  let program index =
    Printf.sprintf "d%d_0(a).\nd%d_1(X) :- d%d_0(X).\n?- d%d_1(a)." index index index index
  in
  let queries_per_round = 400 in
  let reps = 7 in
  let reference =
    (Eval.Engine.run ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact
       (Lang.Parser.parse (program 0)))
      .Eval.Engine.probability
  in
  let tmp tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "probdbd_e28_%s_%d" tag (Unix.getpid ()))
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  let state_dir = tmp "state" in
  rm_rf state_dir;
  let start ~state_dir tag =
    let path = tmp (tag ^ ".sock") in
    let cfg =
      { (Serve.Server.default_config (Serve.Server.Unix_sock path)) with
        Serve.Server.state_dir
      }
    in
    let t = Serve.Server.create cfg in
    let d = Domain.spawn (fun () -> Serve.Server.serve_forever t) in
    (path, t, d)
  in
  let off = start ~state_dir:None "off" in
  let on = start ~state_dir:(Some state_dir) "on" in
  let on_loads = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (_, t, d) ->
          Serve.Server.shutdown t;
          Domain.join d)
        [ off; on ];
      rm_rf state_dir)
  @@ fun () ->
  let seq = ref 0 in
  let round (path, _, _) tag r =
    let c = Serve.Client.connect_unix ~retry_ms:2000 path in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    incr seq;
    if tag = "on" then incr on_loads;
    let name = Printf.sprintf "p_%s_%d" tag !seq in
    let t0 = Unix.gettimeofday () in
    ignore
      (Serve.Client.rpc_fields c
         (Obs.Json.Obj
            [ ("op", Obs.Json.Str "load");
              ("id", Obs.Json.Str (Printf.sprintf "%s-%d-load" tag r));
              ("tenant", Obs.Json.Str "e28");
              ("name", Obs.Json.Str name);
              ("source", Obs.Json.Str (program (!seq mod 8)))
            ]));
    for i = 0 to queries_per_round - 1 do
      let resp =
        Serve.Client.rpc_json c
          (Obs.Json.Obj
             [ ("op", Obs.Json.Str "query");
               ("id", Obs.Json.Str (Printf.sprintf "%s-%d-%d" tag r i));
               ("tenant", Obs.Json.Str "e28");
               ("name", Obs.Json.Str name);
               ("stats", Obs.Json.Bool false)
             ])
      in
      match resp with
      | Obs.Json.Obj o -> (
        (match List.assoc_opt "ok" o with
        | Some (Obs.Json.Bool true) -> ()
        | _ -> failwith ("E28: query failed: " ^ Obs.Json.to_string resp));
        match
          List.assoc_opt "report" o
          |> Option.map (function
               | Obs.Json.Obj rep -> List.assoc_opt "probability" rep
               | _ -> None)
        with
        | Some (Some (Obs.Json.Float p)) when p = reference -> ()
        | Some (Some (Obs.Json.Int p)) when float_of_int p = reference -> ()
        | _ -> failwith "E28: answers diverged between durability modes")
      | _ -> failwith "E28: malformed response"
    done;
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  (* Warm both daemons (plan cache, allocator) before the timed reps. *)
  ignore (round off "off" 0);
  ignore (round on "on" 0);
  let min_off = ref infinity and min_on = ref infinity in
  for r = 1 to reps do
    let passes =
      if r land 1 = 1 then [ (off, "off", min_off); (on, "on", min_on) ]
      else [ (on, "on", min_on); (off, "off", min_off) ]
    in
    List.iter
      (fun (srv, tag, best) ->
        let ms = round srv tag r in
        if ms < !best then best := ms)
      passes
  done;
  let requests_per_round = queries_per_round + 1 in
  let per_req ms = ms /. float_of_int requests_per_round in
  let overhead = ((!min_on /. !min_off) -. 1.0) *. 100.0 in
  Format.printf "%-12s %9s %12s %12s@." "mode" "requests" "round ms" "ms/request";
  Format.printf "%-12s %9d %12.2f %12.4f@." "journal-off" requests_per_round !min_off
    (per_req !min_off);
  Format.printf "%-12s %9d %12.2f %12.4f@." "journal-on" requests_per_round !min_on
    (per_req !min_on);
  Format.printf "durability overhead: %+.2f%% (bar: 5%%)@." overhead;
  Bench_json.record ~id:"E28/journal-off" ~n:requests_per_round ~ms:(per_req !min_off);
  Bench_json.record_extra ~id:"E28/journal-on" ~n:requests_per_round ~ms:(per_req !min_on)
    [ ("overhead_pct", Printf.sprintf "%.2f" overhead) ];
  (* The journal must have fsynced exactly one record per load sent to the
     on-daemon — fewer means an ack raced durability. *)
  let path_on, _, _ = on in
  let c = Serve.Client.connect_unix ~retry_ms:2000 path_on in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  let fields =
    Serve.Client.rpc_fields c
      (Obs.Json.Obj [ ("op", Obs.Json.Str "stats"); ("id", Obs.Json.Str "e28-s") ])
  in
  (match List.assoc_opt "stats" fields with
   | Some (Obs.Json.Obj doc) -> (
     match List.assoc_opt "journal" doc with
     | Some (Obs.Json.Obj j) -> (
       match (List.assoc_opt "appended" j, List.assoc_opt "fsyncs" j) with
       | Some (Obs.Json.Int a), Some (Obs.Json.Int f) when a = !on_loads && f >= a -> ()
       | Some (Obs.Json.Int a), _ ->
         failwith
           (Printf.sprintf "E28: journal appended %d records, %d loads were acked" a
              !on_loads)
       | _ -> failwith "E28: journal stats missing counters")
     | _ -> failwith "E28: stats op returned no journal document")
   | _ -> failwith "E28: stats op returned no document");
  (* Cold replay: recovery time for K journaled records, measured through
     [Serve.Journal] directly so the row isolates replay from socket setup. *)
  let k = 200 in
  let rdir = tmp "replay" in
  rm_rf rdir;
  let j, _, _ = Serve.Journal.open_ ~compact_every:(k + 1) ~dir:rdir () in
  for i = 0 to k - 1 do
    Serve.Journal.append j
      { Serve.Journal.tenant = "e28";
        name = Printf.sprintf "n%d" i;
        source = program (i mod 8)
      }
  done;
  Serve.Journal.close j;
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let j, entries, rep = Serve.Journal.open_ ~compact_every:(k + 1) ~dir:rdir () in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    Serve.Journal.close j;
    if List.length entries <> k || rep.Serve.Journal.journal_records <> k then
      failwith "E28: cold replay lost records";
    if ms < !best then best := ms
  done;
  rm_rf rdir;
  Format.printf "cold replay of %d records: %.2f ms@." k !best;
  Bench_json.record ~id:(Printf.sprintf "E28/recovery-k%d" k) ~n:k ~ms:!best;
  if overhead > 5.0 then
    failwith (Printf.sprintf "E28: durability overhead %.2f%% exceeds the 5%% bar" overhead)

(* --- bechamel micro-benchmarks ------------------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let e1_test =
    let ct, program, event = Workload.Uncertain.uncertain_line ~n:6 in
    Test.make ~name:"E1/exact-inflationary-n6"
      (Staged.stage (fun () -> Eval.Exact_inflationary.eval_ctable ~program ~event ct))
  in
  let e2_test =
    let ct, program, event = Workload.Uncertain.uncertain_line ~n:20 in
    let sampler = Eval.Sample_inflationary.ctable_sampler ~program ct in
    let rng = Random.State.make [| 1 |] in
    let kernel, _ = Lang.Compile.inflationary_kernel program (sampler rng) in
    let q = Lang.Inflationary.of_forever_unchecked (Lang.Forever.make ~kernel ~event) in
    Test.make ~name:"E2/sample-inflationary-n20-m50"
      (Staged.stage (fun () ->
           Eval.Sample_inflationary.eval ~init_sampler:sampler ~samples:50 rng q Database.empty))
  in
  let e3_test =
    let f = Reductions.Cnf.make ~num_vars:4 (List.init 4 (fun i -> [ Reductions.Cnf.pos (i + 1) ])) in
    let ct, program, event = Reductions.Encode_inflationary.encode_ctable f in
    Test.make ~name:"E3/thm41-exact-n4"
      (Staged.stage (fun () -> Eval.Exact_inflationary.eval_ctable ~program ~event ct))
  in
  let e4_test =
    let parsed = Lang.Parser.parse (multi_walker_source [ 3; 3 ]) in
    let db = multi_walker_db [ 3; 3 ] in
    let q, init = noninflationary_of parsed db in
    Test.make ~name:"E4/exact-noninflationary-3x3"
      (Staged.stage (fun () -> Eval.Exact_noninflationary.eval q init))
  in
  let e5_test =
    let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
    let db = Workload.Graphs.walk_database (Workload.Graphs.barbell 3) ~start:0 in
    let q, init = noninflationary_of parsed db in
    let rng = Random.State.make [| 2 |] in
    Test.make ~name:"E5/sample-noninflationary-barbell3"
      (Staged.stage (fun () -> Eval.Sample_noninflationary.eval rng ~burn_in:40 ~samples:50 q init))
  in
  let e6_test =
    let f = Reductions.Cnf.random3 (Random.State.make [| 4 |]) ~num_vars:4 ~num_clauses:5 in
    let db, program, event = Reductions.Encode_noninflationary.encode f in
    let kernel, init = Lang.Compile.noninflationary_kernel program db in
    let q = Lang.Forever.make ~kernel ~event in
    let rng = Random.State.make [| 5 |] in
    Test.make ~name:"E6/thm51-sample-n4"
      (Staged.stage (fun () -> Eval.Sample_noninflationary.eval rng ~burn_in:40 ~samples:20 q init))
  in
  let e7_test =
    let parsed = Lang.Parser.parse (multi_walker_source [ 3; 4 ]) in
    let db = multi_walker_db [ 3; 4 ] in
    let program = parsed.Lang.Parser.program in
    let event = Option.get parsed.Lang.Parser.event in
    Test.make ~name:"E7/partitioned-3x4"
      (Staged.stage (fun () -> Eval.Partition.eval_noninflationary program db event))
  in
  let e8_test =
    let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
    let db = Workload.Graphs.walk_database (Workload.Graphs.cycle 6) ~start:0 in
    let q, init = noninflationary_of parsed db in
    Test.make ~name:"E8/walk-cycle6" (Staged.stage (fun () -> Eval.Exact_noninflationary.eval q init))
  in
  let e10_test =
    let parsed =
      Lang.Parser.parse "C(n1) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\n?- C(n4)."
    in
    let db =
      Database.of_list
        [ ("e",
           Relational.Table_io.relation_of_rows [ "x1"; "x2" ]
             [ [ "n1"; "n2" ]; [ "n1"; "n3" ]; [ "n2"; "n4" ]; [ "n2"; "n5" ] ])
        ]
    in
    let q, init = inflationary_of parsed db in
    Test.make ~name:"E10/reachability-tree" (Staged.stage (fun () -> Eval.Exact_inflationary.eval q init))
  in
  let e11_test =
    let bn = Bayes.Gen.random (Random.State.make [| 11 |]) ~num_nodes:4 ~max_in_degree:2 in
    let names = Bayes.Bn.node_names bn in
    let db, program, event = Bayes.Encode.marginal_query bn [ (List.nth names 3, true) ] in
    Test.make ~name:"E11/bayes-datalog-n4"
      (Staged.stage (fun () ->
           let kernel, init = Lang.Compile.inflationary_kernel program db in
           let q = Lang.Inflationary.of_forever_unchecked (Lang.Forever.make ~kernel ~event) in
           Eval.Exact_inflationary.eval q init))
  in
  let e12_test =
    let players =
      Relational.Table_io.relation_of_rows [ "Player"; "Team"; "Belief" ]
        [ [ "Bryant"; "LALakers"; "17" ]; [ "Bryant"; "NYKnicks"; "3" ];
          [ "Iverson"; "Sixers"; "8" ]; [ "Iverson"; "Grizzlies"; "7" ]
        ]
    in
    Test.make ~name:"E12/repair-key-basketball"
      (Staged.stage (fun () -> Prob.Repair_key.repair ~key:[ "Player" ] ~weight:"Belief" players))
  in
  let e13_test =
    let rng = Random.State.make [| 10 |] in
    let edges = Workload.Graphs.random rng ~nodes:8 ~out_degree:3 ~max_weight:4 in
    let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
    let db = Workload.Graphs.walk_database edges ~start:0 in
    let kernel, init = Lang.Compile.noninflationary_kernel parsed.Lang.Parser.program db in
    let schema_of name = Relation.columns (Database.find name init) in
    let kernel = Prob.Optimize.interp ~schema_of kernel in
    let q = Lang.Forever.make ~kernel ~event:(Option.get parsed.Lang.Parser.event) in
    Test.make ~name:"E13/optimised-walk-8"
      (Staged.stage (fun () -> Eval.Exact_noninflationary.eval q init))
  in
  let e14_test =
    let parsed = Lang.Parser.parse (Workload.Graphs.walk_source ~target:0) in
    let db = Workload.Graphs.walk_database (Workload.Graphs.barbell 2) ~start:0 in
    let q, init = noninflationary_of parsed db in
    let chain = Eval.Exact_noninflationary.build_chain q init in
    Test.make ~name:"E14/conductance-barbell2"
      (Staged.stage (fun () -> Markov.Conductance.conductance chain))
  in
  let e16_test =
    let kernel, db =
      Workload.Coloring.glauber
        ~edges:[ (0, 1); (1, 2); (0, 2) ]
        ~num_nodes:3 ~colors:[ "c1"; "c2"; "c3"; "c4" ]
        ~initial:[ (0, "c1"); (1, "c2"); (2, "c3") ]
    in
    let q =
      Lang.Forever.make ~kernel ~event:(Workload.Coloring.color_event ~node:0 ~color:"c1")
    in
    Test.make ~name:"E16/lumped-glauber-K3"
      (Staged.stage (fun () -> Eval.Exact_noninflationary.eval_lumped q db))
  in
  let e15_test =
    let kernel, db =
      Workload.Coloring.glauber
        ~edges:[ (0, 1); (1, 2) ]
        ~num_nodes:3 ~colors:[ "c1"; "c2"; "c3" ]
        ~initial:[ (0, "c1"); (1, "c2"); (2, "c1") ]
    in
    let event = Workload.Coloring.color_event ~node:1 ~color:"c2" in
    let q = Lang.Forever.make ~kernel ~event in
    Test.make ~name:"E15/glauber-path3"
      (Staged.stage (fun () -> Eval.Exact_noninflationary.eval q db))
  in
  [ e1_test; e2_test; e3_test; e4_test; e5_test; e6_test; e7_test; e8_test; e10_test; e11_test;
    e12_test; e13_test; e14_test; e15_test; e16_test
  ]

let run_bechamel () =
  let open Bechamel in
  Format.printf "@.=== bechamel timings (one Test.make per experiment) ===@.";
  Format.printf "%-40s %16s@." "benchmark" "time/run";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some (ns :: _) ->
            let pretty =
              if ns > 1e9 then Printf.sprintf "%8.3f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
              else Printf.sprintf "%8.0f ns" ns
            in
            Format.printf "%-40s %16s@." (Test.Elt.name elt) pretty
          | Some [] | None -> Format.printf "%-40s %16s@." (Test.Elt.name elt) "n/a")
        (Test.elements test))
    (bechamel_tests ())

(* --- main ----------------------------------------------------------------- *)

let experiments =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7);
    ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12); ("E13", e13);
    ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17); ("E18", e18); ("E19", e19);
    ("E20", e20); ("E21", e21); ("E22", e22); ("E23", e23); ("E24", e24); ("E25", e25);
    ("E26", e26); ("E27", e27); ("E28", e28)
  ]

(* --- bench compare: regression gate over two BENCH_*.json day files -------- *)

(* [compare OLD NEW [THRESHOLD] [PREFIX...]] diffs the per-(id, n) minimum
   milliseconds of two day files and exits 1 when any row got more than
   THRESHOLD percent slower (default 25%).  PREFIX arguments (e.g. "E20"
   "E21" "E22") restrict the gate to ids starting with one of them, so CI can
   gate the guarded experiments while the rest of the file churns freely.
   Rows present on one side only are reported but never fail the gate —
   otherwise adding an experiment would break the previous day's baseline. *)
let compare_files args =
  let usage () =
    prerr_endline "usage: bench compare OLD.json NEW.json [THRESHOLD%] [PREFIX...]";
    exit 2
  in
  let old_file, new_file, rest =
    match args with
    | o :: n :: rest -> (o, n, rest)
    | _ -> usage ()
  in
  let threshold, prefixes =
    match rest with
    | t :: ps when Option.is_some (float_of_string_opt t) -> (float_of_string t, ps)
    | ps -> (25.0, ps)
  in
  let wanted id =
    prefixes = [] || List.exists (fun p -> String.starts_with ~prefix:p id) prefixes
  in
  (* Per-(id, n) minimum: day files may hold several rows per id (one per
     size), and re-runs append fresh minima for sizes already present. *)
  let minima file =
    if not (Sys.file_exists file) then begin
      Printf.eprintf "bench compare: no such file: %s\n" file;
      exit 2
    end;
    List.fold_left
      (fun acc (id, n, ms, _) ->
        if not (wanted id) then acc
        else begin
          let key = (id, n) in
          match List.assoc_opt key acc with
          | Some ms' when ms' <= ms -> acc
          | _ -> (key, ms) :: List.remove_assoc key acc
        end)
      [] (Bench_json.parse_existing file)
  in
  let old_rows = minima old_file and new_rows = minima new_file in
  if old_rows = [] && new_rows = [] then begin
    Printf.eprintf "bench compare: no matching rows in %s or %s\n" old_file new_file;
    exit 2
  end;
  let keys =
    List.sort_uniq Stdlib.compare (List.map fst old_rows @ List.map fst new_rows)
  in
  let regressions = ref 0 in
  Format.printf "%-28s %6s %12s %12s %10s@." "id" "n" "old ms" "new ms" "delta";
  List.iter
    (fun ((id, n) as key) ->
      match (List.assoc_opt key old_rows, List.assoc_opt key new_rows) with
      | Some oms, Some nms ->
        let pct = (nms /. oms -. 1.0) *. 100.0 in
        let flag = if pct > threshold then " REGRESSION" else "" in
        if pct > threshold then incr regressions;
        Format.printf "%-28s %6d %12.3f %12.3f %+9.1f%%%s@." id n oms nms pct flag
      | Some oms, None -> Format.printf "%-28s %6d %12.3f %12s %10s@." id n oms "-" "gone"
      | None, Some nms -> Format.printf "%-28s %6d %12s %12.3f %10s@." id n "-" nms "new"
      | None, None -> ())
    keys;
  if !regressions > 0 then begin
    Format.printf "@.%d row%s regressed by more than %.1f%%@." !regressions
      (if !regressions = 1 then "" else "s")
      threshold;
    exit 1
  end;
  Format.printf "@.no regressions above %.1f%%@." threshold;
  exit 0

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | "compare" :: rest -> compare_files rest
  | _ ->
    let selected = List.filter (fun a -> List.mem_assoc a experiments) args in
    let report_only = List.mem "report" args in
    let todo = if selected = [] then experiments else List.filter (fun (id, _) -> List.mem id selected) experiments in
    Format.printf "probdb benchmark harness — reproducing Deutch, Koch & Milo (PODS 2010)@.";
    List.iter (fun (_, f) -> f ()) todo;
    if (not report_only) && selected = [] then run_bechamel ();
    Bench_json.write ();
    Format.printf "@.done.@."
