(* Differential testing: random programs evaluated by independent engines
   must agree.  This is the strongest end-to-end evidence that the
   semantics, compiler, and engines implement the same language. *)

module Q = Bigq.Q
module Database = Relational.Database

let case_of seed =
  let rng = Random.State.make [| seed |] in
  Workload.Progen.random_case rng

let arb_case =
  QCheck.make
    ~print:(fun seed -> (case_of seed).Workload.Progen.source)
    QCheck.Gen.(int_bound 100_000)

(* Exact inflationary answer and sampled answer agree within Hoeffding
   tolerance (generous eps; a systematic bug shows up as a gross gap). *)
let prop_exact_vs_sampled_inflationary =
  QCheck.Test.make ~name:"inflationary: exact = sampled (within 0.08)" ~count:30 arb_case
    (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.inflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q =
        Lang.Inflationary.of_forever_unchecked
          (Lang.Forever.make ~kernel ~event:case.Workload.Progen.event)
      in
      let exact = Q.to_float (Eval.Exact_inflationary.eval q init) in
      let rng = Random.State.make [| seed + 1 |] in
      let sampled = Eval.Sample_inflationary.eval ~samples:1500 rng q init in
      abs_float (exact -. sampled) < 0.08)

(* Prop 3.8: the compiled inflationary kernel of ANY probabilistic datalog
   program is syntactically an inflationary query. *)
let prop_compiled_kernel_is_inflationary =
  QCheck.Test.make ~name:"Prop 3.8: compiled kernels pass the inflationary check" ~count:60 arb_case
    (fun seed ->
      let case = case_of seed in
      let kernel, _ =
        Lang.Compile.inflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      match
        Lang.Inflationary.of_forever (Lang.Forever.make ~kernel ~event:case.Workload.Progen.event)
      with
      | _ -> true)

(* Sampled runs only ever grow the state. *)
let prop_sampled_runs_monotone =
  QCheck.Test.make ~name:"inflationary runs are monotone along sampled paths" ~count:30 arb_case
    (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.inflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q = Lang.Forever.make ~kernel ~event:case.Workload.Progen.event in
      let rng = Random.State.make [| seed |] in
      let rec go db steps ok =
        if steps = 0 || not ok then ok
        else begin
          let db' = Lang.Forever.step_sampled rng q db in
          go db' (steps - 1) (Database.subsumes db' db)
        end
      in
      go init 25 true)

(* Optimised kernels agree exactly with raw kernels on random programs. *)
let prop_optimizer_end_to_end =
  QCheck.Test.make ~name:"optimizer preserves exact answers on random programs" ~count:30 arb_case
    (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.inflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let schema_of name = Relational.Relation.columns (Database.find name init) in
      let kernel' = Prob.Optimize.interp ~schema_of kernel in
      let q k = Lang.Inflationary.of_forever_unchecked (Lang.Forever.make ~kernel:k ~event:case.Workload.Progen.event) in
      Q.equal (Eval.Exact_inflationary.eval (q kernel) init) (Eval.Exact_inflationary.eval (q kernel') init))

(* Non-inflationary: exact chain answer vs long time-average sampling.
   Restricted to cases whose chain stays small. *)
let prop_exact_vs_time_average_noninflationary =
  QCheck.Test.make ~name:"noninflationary: exact = time average (within 0.08)" ~count:15 arb_case
    (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.noninflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q = Lang.Forever.make ~kernel ~event:case.Workload.Progen.event in
      match Eval.Exact_noninflationary.analyse ~max_states:400 q init with
      | exception Markov.Chain.Chain_error _ -> QCheck.assume_fail ()
      | a ->
        let exact = Q.to_float a.Eval.Exact_noninflationary.result in
        let rng = Random.State.make [| seed + 2 |] in
        let avg = Eval.Sample_noninflationary.eval_time_average rng ~steps:30_000 q init in
        abs_float (exact -. avg) < 0.08)

(* Lumped evaluation agrees exactly with direct evaluation. *)
let prop_lumped_matches_direct =
  QCheck.Test.make ~name:"lumped = direct on random non-inflationary programs" ~count:15 arb_case
    (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.noninflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q = Lang.Forever.make ~kernel ~event:case.Workload.Progen.event in
      match Eval.Exact_noninflationary.eval ~max_states:400 q init with
      | exception Markov.Chain.Chain_error _ -> QCheck.assume_fail ()
      | direct -> Q.equal direct (Eval.Exact_noninflationary.eval_lumped ~max_states:400 q init))

(* Multi-event evaluation is consistent with one-at-a-time evaluation. *)
let prop_multi_event_consistent =
  QCheck.Test.make ~name:"eval_events agrees with per-event eval" ~count:15 arb_case (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.noninflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q = Lang.Forever.make ~kernel ~event:case.Workload.Progen.event in
      match Eval.Exact_noninflationary.eval ~max_states:400 q init with
      | exception Markov.Chain.Chain_error _ -> QCheck.assume_fail ()
      | direct ->
        let results =
          Eval.Exact_noninflationary.eval_events ~max_states:400 ~kernel
            ~events:[ case.Workload.Progen.event ] init
        in
        Q.equal direct (snd (List.hd results)))

(* Compiled physical plans are a pure mechanism change: on random programs
   they must match the AST interpreter exactly — same rationals from the
   exact engines, bit-identical fixed-seed trajectories and estimates from
   the samplers. *)

let compiled_of init q =
  let schema_of name = Relational.Relation.columns (Database.find name init) in
  Lang.Forever.compile ~schema_of q

let prop_plan_exact_inflationary =
  QCheck.Test.make ~name:"plans: inflationary exact Q-identical" ~count:30 arb_case (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.inflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q = Lang.Forever.make ~kernel ~event:case.Workload.Progen.event in
      let wrap = Lang.Inflationary.of_forever_unchecked in
      Q.equal
        (Eval.Exact_inflationary.eval (wrap q) init)
        (Eval.Exact_inflationary.eval (wrap (compiled_of init q)) init))

let prop_plan_exact_noninflationary =
  QCheck.Test.make ~name:"plans: noninflationary exact Q-identical" ~count:15 arb_case
    (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.noninflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q = Lang.Forever.make ~kernel ~event:case.Workload.Progen.event in
      match Eval.Exact_noninflationary.eval ~max_states:400 q init with
      | exception Markov.Chain.Chain_error _ -> QCheck.assume_fail ()
      | direct ->
        Q.equal direct (Eval.Exact_noninflationary.eval ~max_states:400 (compiled_of init q) init))

let prop_plan_sampled_trajectories_identical =
  QCheck.Test.make ~name:"plans: fixed-seed sampled trajectories bit-identical" ~count:30 arb_case
    (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.noninflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q = Lang.Forever.make ~kernel ~event:case.Workload.Progen.event in
      let qc = compiled_of init q in
      let r1 = Random.State.make [| seed |] and r2 = Random.State.make [| seed |] in
      let rec go a b steps =
        steps = 0
        || Database.equal a b
           && go (Lang.Forever.step_sampled r1 q a) (Lang.Forever.step_sampled r2 qc b) (steps - 1)
      in
      go init init 25)

let prop_plan_sampler_estimates_identical =
  QCheck.Test.make ~name:"plans: fixed-seed sampler estimates bit-identical" ~count:15 arb_case
    (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.inflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q = Lang.Forever.make ~kernel ~event:case.Workload.Progen.event in
      let wrap = Lang.Inflationary.of_forever_unchecked in
      let est q' s = Eval.Sample_inflationary.eval ~samples:300 (Random.State.make [| s |]) (wrap q') init in
      est q (seed + 1) = est (compiled_of init q) (seed + 1))

(* Semi-naive delta stepping is a pure mechanism change: on random
   programs the exact rationals AND the visited-state counts must equal
   the naive stepper's. *)
let prop_seminaive_matches_naive =
  QCheck.Test.make ~name:"semi-naive = naive (answers and visited states)" ~count:40 arb_case
    (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.inflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let schema_of name = Relational.Relation.columns (Database.find name init) in
      let qc =
        Lang.Forever.compile ~schema_of (Lang.Forever.make ~kernel ~event:case.Workload.Progen.event)
      in
      let sn = Lang.Seminaive.compile ~schema_of case.Workload.Progen.program in
      let wrap = Lang.Inflationary.of_forever_unchecked in
      let naive, ns = Eval.Exact_inflationary.eval_with_stats (wrap qc) init in
      let semi, ss =
        Eval.Exact_inflationary.eval_with_stats (wrap (Lang.Seminaive.install sn qc)) init
      in
      Q.equal naive semi
      && ns.Eval.Exact_inflationary.states_visited = ss.Eval.Exact_inflationary.states_visited
      && ns.Eval.Exact_inflationary.fixpoints = ss.Eval.Exact_inflationary.fixpoints)

(* The magic-sets rewrite preserves exact answers on random programs —
   including probabilistic rules, negation and constraints, which exercise
   the total-closure that exempts them from demand restriction. *)
let prop_magic_matches_unrewritten =
  QCheck.Test.make ~name:"magic rewrite preserves exact answers" ~count:40 arb_case (fun seed ->
      let case = case_of seed in
      let eval_with program event =
        let kernel, init = Lang.Compile.inflationary_kernel program case.Workload.Progen.database in
        Eval.Exact_inflationary.eval
          (Lang.Inflationary.of_forever_unchecked (Lang.Forever.make ~kernel ~event))
          init
      in
      let m = Lang.Magic.rewrite ~event:case.Workload.Progen.event case.Workload.Progen.program in
      Q.equal
        (eval_with case.Workload.Progen.program case.Workload.Progen.event)
        (eval_with (Lang.Magic.program m) (Lang.Magic.event m)))

(* Engine front-end and direct pipeline agree. *)
let prop_engine_matches_direct =
  QCheck.Test.make ~name:"Engine.run = direct pipeline" ~count:20 arb_case (fun seed ->
      let case = case_of seed in
      let parsed =
        { Lang.Parser.program = case.Workload.Progen.program;
          facts = [];
          vars = [];
          cond_facts = [];
          event = Some case.Workload.Progen.event;
          events = [ case.Workload.Progen.event ]
        }
      in
      (* Rebuild facts from the database for the engine path. *)
      let facts =
        List.concat_map
          (fun (name, r) ->
            List.map
              (fun t -> (name, Relational.Tuple.to_list t))
              (Relational.Relation.tuples r))
          (Database.bindings case.Workload.Progen.database)
      in
      let parsed = { parsed with Lang.Parser.facts } in
      let report = Eval.Engine.run ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact parsed in
      let kernel, init =
        Lang.Compile.inflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q =
        Lang.Inflationary.of_forever_unchecked
          (Lang.Forever.make ~kernel ~event:case.Workload.Progen.event)
      in
      match report.Eval.Engine.exact with
      | Some p -> Q.equal p (Eval.Exact_inflationary.eval q init)
      | None -> false)

let () =
  Alcotest.run "differential"
    [ ( "random-programs",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compiled_kernel_is_inflationary;
            prop_sampled_runs_monotone;
            prop_optimizer_end_to_end;
            prop_exact_vs_sampled_inflationary;
            prop_exact_vs_time_average_noninflationary;
            prop_lumped_matches_direct;
            prop_multi_event_consistent;
            prop_plan_exact_inflationary;
            prop_plan_exact_noninflationary;
            prop_plan_sampled_trajectories_identical;
            prop_plan_sampler_estimates_identical;
            prop_seminaive_matches_naive;
            prop_magic_matches_unrewritten;
            prop_engine_matches_direct
          ] )
    ]
