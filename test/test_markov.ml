(* Tests for the Markov chain toolkit. *)

open Markov
module Q = Bigq.Q
module Dist = Prob.Dist

let q_t = Alcotest.testable Q.pp Q.equal

let q = Q.of_ints
let q_of_ints = Q.of_ints

(* A two-state chain: 0 -> 1 w.p. 1, 1 -> 0 w.p. 1/2, 1 -> 1 w.p. 1/2.
   Stationary: pi = (1/3, 2/3). *)
let two_state =
  Chain.of_rows [| "s0"; "s1" |] [| [ (1, Q.one) ]; [ (0, Q.half); (1, Q.half) ] |]

(* A directed 3-cycle: periodic with period 3, stationary uniform. *)
let cycle3 =
  Chain.of_rows [| 0; 1; 2 |] [| [ (1, Q.one) ]; [ (2, Q.one) ]; [ (0, Q.one) ] |]

(* Transient state 0 feeding two absorbing states 1 and 2. *)
let absorbing =
  Chain.of_rows [| "t"; "l"; "r" |]
    [| [ (1, q 1 4); (2, q 3 4) ]; [ (1, Q.one) ]; [ (2, Q.one) ] |]

(* Two transient states chained before absorption; tests the linear system. *)
let gambler =
  (* 1 and 3 absorbing; 2 moves left/right with prob 1/2: ruin probability
     from 2 is 1/2. *)
  Chain.of_rows [| "a0"; "mid"; "a1" |]
    [| [ (0, Q.one) ]; [ (0, Q.half); (2, Q.half) ]; [ (2, Q.one) ] |]

let test_chain_construction () =
  Alcotest.(check int) "2 states" 2 (Chain.num_states two_state);
  Alcotest.check q_t "prob" Q.half (Chain.prob two_state 1 0);
  Alcotest.check q_t "missing edge" Q.zero (Chain.prob two_state 0 0)

let test_chain_invalid_row () =
  try
    ignore (Chain.of_rows [| 0 |] [| [ (0, Q.half) ] |]);
    Alcotest.fail "expected Chain_error"
  with Chain.Chain_error _ -> ()

let test_chain_of_step () =
  (* Explore a mod-5 counter: i -> i+1 mod 5 or stay, each 1/2. *)
  let step i =
    Dist.make ~compare:Int.compare [ (i, Q.half); ((i + 1) mod 5, Q.half) ]
  in
  let c = Chain.of_step ~hash:Hashtbl.hash ~equal:Int.equal ~init:[ 0 ] ~step () in
  Alcotest.(check int) "5 states" 5 (Chain.num_states c);
  Alcotest.(check bool) "irreducible" true (Classify.is_irreducible c);
  (* labels map back *)
  (match Chain.index c 3 with
   | Some i -> Alcotest.(check int) "label roundtrip" 3 (Chain.label c i)
   | None -> Alcotest.fail "state 3 not found");
  (* hashed and ordered interning explore the same chain in the same order *)
  let c' = Chain.of_step_ordered ~compare:Int.compare ~init:[ 0 ] ~step () in
  Alcotest.(check int) "ordered: same states" (Chain.num_states c) (Chain.num_states c');
  for i = 0 to Chain.num_states c - 1 do
    Alcotest.(check int) "ordered: same label" (Chain.label c i) (Chain.label c' i)
  done

let test_chain_of_step_max_states () =
  let step i = Dist.return (i + 1) in
  try
    ignore
      (Chain.of_step ~hash:Hashtbl.hash ~equal:Int.equal ~max_states:10 ~init:[ 0 ] ~step ());
    Alcotest.fail "expected blowup error"
  with Chain.Chain_error _ -> ()

let test_scc_structure () =
  let scc = Scc.of_chain absorbing in
  Alcotest.(check int) "3 components" 3 (Scc.num_components scc);
  Alcotest.(check (list int)) "two closed" [ 1; 2 ]
    (List.sort Int.compare
       (List.map (fun c -> List.hd scc.Scc.members.(c)) (Scc.closed_components scc)))

let test_scc_topological () =
  let scc = Scc.of_chain absorbing in
  (* Transient component must precede the closed ones. *)
  let c_t = scc.Scc.component_of.(0) in
  List.iter
    (fun c -> Alcotest.(check bool) "source before sinks" true (c_t < c))
    (Scc.closed_components scc)

let test_scc_single () =
  let scc = Scc.of_chain two_state in
  Alcotest.(check int) "one component" 1 (Scc.num_components scc);
  Alcotest.(check bool) "closed" true (Scc.is_closed scc 0)

let test_classify () =
  Alcotest.(check bool) "two_state irreducible" true (Classify.is_irreducible two_state);
  Alcotest.(check bool) "two_state aperiodic" true (Classify.is_aperiodic two_state);
  Alcotest.(check bool) "two_state ergodic" true (Classify.is_ergodic two_state);
  Alcotest.(check int) "cycle3 period" 3 (Classify.period cycle3);
  Alcotest.(check bool) "cycle3 not aperiodic" false (Classify.is_aperiodic cycle3);
  Alcotest.(check bool) "cycle3 positively recurrent" true (Classify.is_positively_recurrent cycle3);
  Alcotest.(check bool) "absorbing not recurrent" false (Classify.is_positively_recurrent absorbing);
  Alcotest.(check bool) "absorbing not irreducible" false (Classify.is_irreducible absorbing)

let test_linalg_solve () =
  (* x + y = 3, x - y = 1 -> x=2, y=1. *)
  let a = [| [| Q.one; Q.one |]; [| Q.one; Q.neg Q.one |] |] in
  let b = [| Q.of_int 3; Q.one |] in
  (match Linalg.solve a b with
   | Some x ->
     Alcotest.check q_t "x" (Q.of_int 2) x.(0);
     Alcotest.check q_t "y" Q.one x.(1)
   | None -> Alcotest.fail "singular");
  (* Singular system. *)
  let s = [| [| Q.one; Q.one |]; [| Q.of_int 2; Q.of_int 2 |] |] in
  Alcotest.(check bool) "singular detected" true (Option.is_none (Linalg.solve s b))

let test_linalg_solve_permutation () =
  (* Requires a row swap: first pivot entry is zero. *)
  let a = [| [| Q.zero; Q.one |]; [| Q.one; Q.zero |] |] in
  let b = [| Q.of_int 5; Q.of_int 7 |] in
  match Linalg.solve a b with
  | Some x ->
    Alcotest.check q_t "x" (Q.of_int 7) x.(0);
    Alcotest.check q_t "y" (Q.of_int 5) x.(1)
  | None -> Alcotest.fail "singular"

let test_stationary_exact () =
  let pi = Stationary.exact two_state in
  Alcotest.check q_t "pi0 = 1/3" (q 1 3) pi.(0);
  Alcotest.check q_t "pi1 = 2/3" (q 2 3) pi.(1)

let test_stationary_cycle () =
  (* Periodic but irreducible: stationary still uniquely uniform. *)
  let pi = Stationary.exact cycle3 in
  Array.iter (fun p -> Alcotest.check q_t "uniform third" (q 1 3) p) pi

let test_stationary_reducible_raises () =
  try
    ignore (Stationary.exact absorbing);
    Alcotest.fail "expected Chain_error"
  with Chain.Chain_error _ -> ()

let test_stationary_power_iteration () =
  let pi = Stationary.power_iteration two_state in
  Alcotest.(check bool) "pi0 close" true (abs_float (pi.(0) -. (1. /. 3.)) < 1e-9);
  Alcotest.(check bool) "pi1 close" true (abs_float (pi.(1) -. (2. /. 3.)) < 1e-9)

let test_stationary_on_component () =
  let scc = Scc.of_chain absorbing in
  let closed = Scc.closed_components scc in
  List.iter
    (fun c ->
      let pairs = Stationary.exact_on_component absorbing scc.Scc.members.(c) in
      Alcotest.(check int) "singleton component" 1 (List.length pairs);
      Alcotest.check q_t "mass 1" Q.one (snd (List.hd pairs)))
    closed

let test_absorption () =
  let probs = Absorption.into_closed absorbing ~start:0 in
  let scc = Scc.of_chain absorbing in
  let by_state s =
    let c = scc.Scc.component_of.(s) in
    List.assoc c probs
  in
  Alcotest.check q_t "left 1/4" (q 1 4) (by_state 1);
  Alcotest.check q_t "right 3/4" (q 3 4) (by_state 2)

let test_absorption_gambler () =
  let probs = Absorption.into_closed gambler ~start:1 in
  List.iter (fun (_, p) -> Alcotest.check q_t "ruin half" Q.half p) probs;
  Alcotest.check q_t "sums to one" Q.one (Q.sum (List.map snd probs))

let test_absorption_from_closed_state () =
  let probs = Absorption.into_closed absorbing ~start:1 in
  Alcotest.check q_t "already absorbed" Q.one (Q.sum (List.filter_map (fun (c, p) ->
      let scc = Scc.of_chain absorbing in
      if List.mem 1 scc.Scc.members.(c) then Some p else None) probs))

let test_mixing_evolve () =
  let d0 = [| Q.one; Q.zero |] in
  let d1 = Mixing.evolve two_state d0 1 in
  Alcotest.check q_t "one step to s1" Q.one d1.(1);
  let d2 = Mixing.evolve two_state d0 2 in
  Alcotest.check q_t "back half" Q.half d2.(0)

let test_mixing_time () =
  (match Mixing.mixing_time ~eps:0.01 two_state with
   | Some t -> Alcotest.(check bool) "small mixing time" true (t > 0 && t < 50)
   | None -> Alcotest.fail "should mix");
  (* Periodic chain never mixes. *)
  Alcotest.(check bool) "cycle3 does not mix" true
    (Option.is_none (Mixing.mixing_time ~max_steps:100 ~eps:0.01 cycle3))

let test_mixing_monotone () =
  let pi = Stationary.exact two_state in
  let tv1 = Mixing.max_tv_at two_state pi 1 in
  let tv5 = Mixing.max_tv_at two_state pi 5 in
  Alcotest.(check bool) "tv decreases" true (Q.compare tv5 tv1 < 0)

(* Non-dyadic transition probabilities make the float TV evolution inexact,
   so a threshold within an ulp of the true TV can fool the float-only
   search into declaring mixing a step early.  Scan small [t] for such an
   eps, then check that the certified search advances past the wrong answer
   and that its own answer satisfies the exact bound. *)
let lazy3 =
  Chain.of_rows [| "x"; "y"; "z" |]
    [| [ (0, q 1 3); (1, q 2 3) ];
       [ (0, q 1 7); (1, q 3 7); (2, q 3 7) ];
       [ (1, q 5 11); (2, q 6 11) ]
    |]

let test_mixing_certified () =
  let pi = Stationary.exact lazy3 in
  let found = ref None in
  for t = 1 to 40 do
    if !found = None then begin
      let f = Q.to_float (Mixing.max_tv_at lazy3 pi t) in
      List.iter
        (fun eps ->
          if !found = None && eps > 0.0 then
            match (Mixing.mixing_time_float ~eps lazy3, Mixing.mixing_time ~eps lazy3) with
            | Some tf, Some tc when tc > tf -> found := Some (eps, tf, tc)
            | _ -> ())
        [ Float.pred f; f; Float.succ f ]
    end
  done;
  match !found with
  | None -> Alcotest.fail "no eps near the TV curve separates float and certified searches"
  | Some (eps, tf, tc) ->
    let eps_q = Q.of_float eps in
    Alcotest.(check bool) "float answer fails the exact bound" true
      (Q.compare (Mixing.max_tv_at lazy3 pi tf) eps_q >= 0);
    Alcotest.(check bool) "certified answer satisfies the exact bound" true
      (Q.compare (Mixing.max_tv_at lazy3 pi tc) eps_q < 0);
    Alcotest.(check bool) "predecessor of certified answer does not" true
      (Q.compare (Mixing.max_tv_at lazy3 pi (tc - 1)) eps_q >= 0)

let test_walk_occupation () =
  let rng = Random.State.make [| 5 |] in
  let occ = Walk.occupation rng two_state ~start:0 ~steps:50_000 in
  Alcotest.(check bool) "occ0 ~ 1/3" true (abs_float (occ.(0) -. (1. /. 3.)) < 0.02);
  Alcotest.(check bool) "occ1 ~ 2/3" true (abs_float (occ.(1) -. (2. /. 3.)) < 0.02)

let test_walk_run_length () =
  let rng = Random.State.make [| 5 |] in
  Alcotest.(check int) "length" 11 (List.length (Walk.run rng two_state ~start:0 ~steps:10))

let test_estimate_stationary () =
  let rng = Random.State.make [| 9 |] in
  let est = Walk.estimate_stationary rng two_state ~start:0 ~burn_in:100 ~samples:20_000 ~thin:3 in
  Alcotest.(check bool) "estimate near stationary" true (abs_float (est.(1) -. (2. /. 3.)) < 0.02)

(* Property: for random small ergodic chains, exact stationary satisfies
   pi P = pi, and absorption probabilities always sum to 1. *)

let arb_chain =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 6 in
      (* Random dense weights guarantee irreducibility and aperiodicity. *)
      let* rows =
        list_repeat n (list_repeat n (int_range 1 9))
      in
      let rows =
        List.map
          (fun ws ->
            let total = List.fold_left ( + ) 0 ws in
            List.mapi (fun j w -> (j, Q.of_ints w total)) ws)
          rows
      in
      return (Chain.of_rows (Array.init n Fun.id) (Array.of_list rows)))
  in
  QCheck.make ~print:(fun c -> string_of_int (Chain.num_states c)) gen

let prop_stationary_fixed_point =
  QCheck.Test.make ~name:"exact stationary is a fixed point of P" ~count:60 arb_chain (fun c ->
      let pi = Stationary.exact c in
      let pi' = Mixing.evolve c pi 1 in
      Array.for_all2 Q.equal pi pi')

let prop_stationary_sums_to_one =
  QCheck.Test.make ~name:"exact stationary sums to 1" ~count:60 arb_chain (fun c ->
      Q.is_one (Q.sum (Array.to_list (Stationary.exact c))))

let prop_power_iteration_agrees =
  QCheck.Test.make ~name:"power iteration agrees with exact" ~count:30 arb_chain (fun c ->
      let exact = Stationary.exact c in
      let approx = Stationary.power_iteration c in
      Array.for_all2 (fun e a -> abs_float (Q.to_float e -. a) < 1e-6) exact approx)

(* --- Hitting times ------------------------------------------------------ *)

let test_hitting_deterministic_cycle () =
  let h = Hitting.expected_steps cycle3 ~targets:[ 2 ] in
  Alcotest.(check (option string)) "from 0: 2 steps" (Some "2") (Option.map Q.to_string h.(0));
  Alcotest.(check (option string)) "from 1: 1 step" (Some "1") (Option.map Q.to_string h.(1));
  Alcotest.(check (option string)) "target: 0" (Some "0") (Option.map Q.to_string h.(2))

let test_hitting_two_state () =
  (* From s0: one step to s1.  From s1 to s0: geometric with p = 1/2 -> 2. *)
  let h = Hitting.expected_steps two_state ~targets:[ 0 ] in
  Alcotest.(check (option string)) "s1 -> s0 takes 2" (Some "2") (Option.map Q.to_string h.(1))

let test_hitting_unreachable () =
  (* In the absorbing chain, from the right sink the left sink is
     unreachable; from the transient start it is reached only w.p. 1/4. *)
  let h = Hitting.expected_steps absorbing ~targets:[ 1 ] in
  Alcotest.(check bool) "start: infinite expectation" true (h.(0) = None);
  Alcotest.(check bool) "other sink: infinite" true (h.(2) = None);
  Alcotest.(check (option string)) "target itself 0" (Some "0") (Option.map Q.to_string h.(1))

let test_return_time_is_inverse_stationary () =
  let pi = Stationary.exact two_state in
  List.iter
    (fun i ->
      Alcotest.check q_t
        (Printf.sprintf "return time to %d = 1/pi" i)
        (Q.inv pi.(i))
        (Hitting.expected_return_time two_state i))
    [ 0; 1 ];
  (* And on the deterministic cycle: return time = 3 everywhere. *)
  List.iter
    (fun i -> Alcotest.check q_t "cycle return = 3" (Q.of_int 3) (Hitting.expected_return_time cycle3 i))
    [ 0; 1; 2 ]

(* --- Conductance ---------------------------------------------------------- *)

let lazy_two_cycle =
  Chain.of_rows [| 0; 1 |]
    [| [ (0, Q.half); (1, Q.half) ]; [ (0, Q.half); (1, Q.half) ] |]

(* Lazy random walk on the path 0-1-2-3 (birth-death: reversible). *)
let lazy_path4 =
  let q = Q.of_ints 1 4 in
  Chain.of_rows [| 0; 1; 2; 3 |]
    [| [ (0, Q.of_ints 3 4); (1, q) ];
       [ (0, q); (1, Q.half); (2, q) ];
       [ (1, q); (2, Q.half); (3, q) ];
       [ (2, q); (3, Q.of_ints 3 4) ]
    |]

let test_reversibility () =
  Alcotest.(check bool) "lazy two-cycle reversible" true (Conductance.is_reversible lazy_two_cycle);
  Alcotest.(check bool) "birth-death reversible" true (Conductance.is_reversible lazy_path4);
  Alcotest.(check bool) "directed cycle not reversible" false (Conductance.is_reversible cycle3)

let test_conductance_values () =
  Alcotest.check q_t "two_state phi = 1" Q.one (Conductance.conductance two_state);
  Alcotest.check q_t "lazy two-cycle phi = 1/2" Q.half (Conductance.conductance lazy_two_cycle);
  (* path: bottleneck cut in the middle: S = {0,1}, pi(S) = 1/2,
     Q(S, S-bar) = pi(1) P(1,2) = 1/4 * 1/4 = 1/16 -> phi = 1/8. *)
  Alcotest.check q_t "lazy path phi = 1/8" (Q.of_ints 1 8) (Conductance.conductance lazy_path4)

let test_conductance_guards () =
  (try
     ignore (Conductance.conductance absorbing);
     Alcotest.fail "reducible accepted"
   with Chain.Chain_error _ -> ());
  try
    ignore (Conductance.conductance ~max_states:1 two_state);
    Alcotest.fail "size guard ignored"
  with Chain.Chain_error _ -> ()

let test_cheeger_bounds_bracket_mixing () =
  List.iter
    (fun chain ->
      let eps = 0.05 in
      match Mixing.mixing_time ~eps chain with
      | None -> Alcotest.fail "lazy reversible chain should mix"
      | Some t ->
        let upper = Conductance.cheeger_mixing_upper_bound ~eps chain in
        Alcotest.(check bool)
          (Printf.sprintf "measured %d <= cheeger %.1f" t upper)
          true
          (float_of_int t <= upper +. 1.0))
    [ lazy_two_cycle; lazy_path4 ]

(* --- Lumping ---------------------------------------------------------------- *)

let test_lump_symmetric_cycle () =
  (* Lazy 4-cycle with an event on one state: symmetry lets the two
     off-event neighbours lump together. *)
  let h = Q.half and q = Q.of_ints 1 4 in
  let lazy4 =
    Chain.of_rows [| 0; 1; 2; 3 |]
      [| [ (0, h); (1, q); (3, q) ];
         [ (1, h); (2, q); (0, q) ];
         [ (2, h); (3, q); (1, q) ];
         [ (3, h); (0, q); (2, q) ]
      |]
  in
  let r = Lumping.lump ~initial:(fun s -> if s = 0 then 1 else 0) lazy4 in
  Alcotest.(check bool) "fewer classes" true (r.Lumping.num_classes < 4);
  Alcotest.check q_t "event mass = 1/4" (q_of_ints 1 4)
    (Lumping.stationary_event_mass lazy4 ~event:(fun s -> s = 0))

let test_lump_trivial_labelling () =
  (* With everything labelled alike and a doubly-stochastic chain, one class
     suffices. *)
  let h = Q.half in
  let c = Chain.of_rows [| 0; 1 |] [| [ (0, h); (1, h) ]; [ (0, h); (1, h) ] |] in
  let r = Lumping.lump ~initial:(fun _ -> 0) c in
  Alcotest.(check int) "single class" 1 r.Lumping.num_classes

let test_lump_heterogeneous_not_merged () =
  (* With uniform labels ANY chain lumps to one class (all mass flows to
     the universe); with event labels two_state stays split and the mass
     matches the direct computation. *)
  let r = Lumping.lump ~initial:(fun _ -> 0) two_state in
  Alcotest.(check int) "uniform labels collapse" 1 r.Lumping.num_classes;
  let r' = Lumping.lump ~initial:(fun s -> s) two_state in
  Alcotest.(check int) "event labels stay split" 2 r'.Lumping.num_classes;
  Alcotest.check q_t "event mass matches direct" (q_of_ints 2 3)
    (Lumping.stationary_event_mass two_state ~event:(fun s -> s = 1))

let prop_lumping_matches_direct =
  QCheck.Test.make ~name:"lumped stationary event mass = direct" ~count:40 arb_chain (fun c ->
      let pi = Stationary.exact c in
      let event s = s mod 2 = 0 in
      let direct = Q.sum (List.filteri (fun i _ -> event i) (Array.to_list pi)) in
      Q.equal direct (Lumping.stationary_event_mass c ~event))

(* --- Chain_io ----------------------------------------------------------------- *)

let test_chain_io_roundtrip () =
  let text = "s0 s1 1\ns1 s0 1/2\ns1 s1 1/2\n" in
  let c = Chain_io.parse text in
  Alcotest.(check int) "2 states" 2 (Chain.num_states c);
  let printed = Format.asprintf "%a" Chain_io.print c in
  let c2 = Chain_io.parse printed in
  Alcotest.(check int) "roundtrip states" 2 (Chain.num_states c2);
  Alcotest.check q_t "roundtrip prob" Q.half
    (Chain.prob c2 (Option.get (Chain.index c2 "s1")) (Option.get (Chain.index c2 "s0")))

let test_chain_io_errors () =
  List.iter
    (fun text ->
      try
        ignore (Chain_io.parse text);
        Alcotest.fail ("accepted: " ^ text)
      with Chain_io.Parse_error _ -> ())
    [ ""; "a b"; "a b xyz"; "a b 1/2" (* row does not sum to 1 *) ]

let test_chain_io_comments () =
  let c = Chain_io.parse "# comment\na a 1 # absorbing\n" in
  Alcotest.(check int) "1 state" 1 (Chain.num_states c)

(* --- Spectral ----------------------------------------------------------------- *)

let test_slem_two_state () =
  (* Eigenvalues of [[0,1],[1/2,1/2]] are {1, -1/2}: SLEM = 1/2. *)
  Alcotest.(check bool) "slem = 1/2" true (abs_float (Spectral.slem two_state -. 0.5) < 1e-9);
  Alcotest.(check bool) "t_rel = 2" true (abs_float (Spectral.relaxation_time two_state -. 2.0) < 1e-8)

let test_slem_lazy_uniform () =
  (* [[1/2,1/2],[1/2,1/2]]: eigenvalues {1, 0}: SLEM = 0, t_rel = 1. *)
  Alcotest.(check bool) "slem = 0" true (Spectral.slem lazy_two_cycle < 1e-9);
  Alcotest.(check bool) "t_rel = 1" true (abs_float (Spectral.relaxation_time lazy_two_cycle -. 1.0) < 1e-8)

let test_slem_requires_reversible () =
  try
    ignore (Spectral.slem cycle3);
    Alcotest.fail "non-reversible accepted"
  with Chain.Chain_error _ -> ()

let check_spectral_bracket (type a) (chain : a Chain.t) =
  let eps = 0.05 in
  match Mixing.mixing_time ~eps chain with
  | None -> Alcotest.fail "chain should mix"
  | Some t ->
    let lower, upper = Spectral.mixing_bounds ~eps chain in
    Alcotest.(check bool)
      (Printf.sprintf "%.2f <= %d <= %.2f" lower t upper)
      true
      (lower <= float_of_int t +. 1.0 && float_of_int t <= upper +. 1.0)

let test_spectral_bounds_bracket_mixing () =
  check_spectral_bracket two_state;
  check_spectral_bracket lazy_two_cycle;
  check_spectral_bracket lazy_path4

(* --- Diagnostics ----------------------------------------------------------- *)

let test_autocorrelation () =
  let alternating = [| 0.; 1.; 0.; 1.; 0.; 1.; 0.; 1. |] in
  Alcotest.(check bool) "alternating lag-1 negative" true (Diagnostics.autocorrelation alternating 1 < 0.0);
  let constant = Array.make 10 1.0 in
  Alcotest.(check (float 0.0)) "constant trace rho 0" 0.0 (Diagnostics.autocorrelation constant 1);
  let block = Array.append (Array.make 10 0.0) (Array.make 10 1.0) in
  Alcotest.(check bool) "blocky lag-1 positive" true (Diagnostics.autocorrelation block 1 > 0.5)

let test_effective_sample_size () =
  let block = Array.append (Array.make 50 0.0) (Array.make 50 1.0) in
  let rng = Random.State.make [| 1 |] in
  let iid = Array.init 100 (fun _ -> if Random.State.bool rng then 1.0 else 0.0) in
  Alcotest.(check bool) "blocky trace has tiny ESS" true
    (Diagnostics.effective_sample_size block < Diagnostics.effective_sample_size iid /. 2.0)

let test_gelman_rubin () =
  let rng = Random.State.make [| 2 |] in
  let noisy mu = Array.init 200 (fun _ -> mu +. Random.State.float rng 0.2) in
  let same = Diagnostics.gelman_rubin [ noisy 0.5; noisy 0.5; noisy 0.5 ] in
  Alcotest.(check bool) "converged chains R ~ 1" true (same < 1.1);
  let split = Diagnostics.gelman_rubin [ noisy 0.1; noisy 0.9 ] in
  Alcotest.(check bool) "diverged chains R >> 1" true (split > 2.0)

let test_diagnostics_on_real_walk () =
  (* Traces from the two_state chain: ESS positive, R-hat near 1. *)
  let trace seed =
    let rng = Random.State.make [| seed |] in
    Diagnostics.indicator_trace (Walk.run rng two_state ~start:0 ~steps:2000) (fun s -> s = 1)
  in
  let t1 = trace 1 and t2 = trace 2 and t3 = trace 3 in
  Alcotest.(check bool) "mean near 2/3" true (abs_float (Diagnostics.mean t1 -. (2. /. 3.)) < 0.05);
  Alcotest.(check bool) "ess positive" true (Diagnostics.effective_sample_size t1 > 100.0);
  Alcotest.(check bool) "r-hat near 1" true (Diagnostics.gelman_rubin [ t1; t2; t3 ] < 1.05)

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "markov"
    [ ( "chain",
        [ Alcotest.test_case "construction" `Quick test_chain_construction;
          Alcotest.test_case "invalid row" `Quick test_chain_invalid_row;
          Alcotest.test_case "of_step exploration" `Quick test_chain_of_step;
          Alcotest.test_case "of_step max_states" `Quick test_chain_of_step_max_states
        ] );
      ( "scc",
        [ Alcotest.test_case "structure" `Quick test_scc_structure;
          Alcotest.test_case "topological ids" `Quick test_scc_topological;
          Alcotest.test_case "single component" `Quick test_scc_single
        ] );
      ("classify", [ Alcotest.test_case "classification" `Quick test_classify ]);
      ( "linalg",
        [ Alcotest.test_case "solve" `Quick test_linalg_solve;
          Alcotest.test_case "solve with pivoting" `Quick test_linalg_solve_permutation
        ] );
      ( "stationary",
        [ Alcotest.test_case "exact" `Quick test_stationary_exact;
          Alcotest.test_case "cycle" `Quick test_stationary_cycle;
          Alcotest.test_case "reducible raises" `Quick test_stationary_reducible_raises;
          Alcotest.test_case "power iteration" `Quick test_stationary_power_iteration;
          Alcotest.test_case "on component" `Quick test_stationary_on_component
        ] );
      ( "absorption",
        [ Alcotest.test_case "two sinks" `Quick test_absorption;
          Alcotest.test_case "gambler" `Quick test_absorption_gambler;
          Alcotest.test_case "from closed state" `Quick test_absorption_from_closed_state
        ] );
      ( "mixing",
        [ Alcotest.test_case "evolve" `Quick test_mixing_evolve;
          Alcotest.test_case "mixing time" `Quick test_mixing_time;
          Alcotest.test_case "tv monotone" `Quick test_mixing_monotone;
          Alcotest.test_case "certified vs float search" `Quick test_mixing_certified
        ] );
      ( "walk",
        [ Alcotest.test_case "occupation" `Slow test_walk_occupation;
          Alcotest.test_case "run length" `Quick test_walk_run_length;
          Alcotest.test_case "estimate stationary" `Slow test_estimate_stationary
        ] );
      ( "hitting",
        [ Alcotest.test_case "deterministic cycle" `Quick test_hitting_deterministic_cycle;
          Alcotest.test_case "two-state geometric" `Quick test_hitting_two_state;
          Alcotest.test_case "unreachable -> None" `Quick test_hitting_unreachable;
          Alcotest.test_case "return time = 1/pi" `Quick test_return_time_is_inverse_stationary
        ] );
      ( "conductance",
        [ Alcotest.test_case "reversibility" `Quick test_reversibility;
          Alcotest.test_case "known values" `Quick test_conductance_values;
          Alcotest.test_case "guards" `Quick test_conductance_guards;
          Alcotest.test_case "cheeger brackets mixing" `Quick test_cheeger_bounds_bracket_mixing
        ] );
      ( "lumping",
        [ Alcotest.test_case "symmetric cycle" `Quick test_lump_symmetric_cycle;
          Alcotest.test_case "trivial labelling" `Quick test_lump_trivial_labelling;
          Alcotest.test_case "heterogeneous split" `Quick test_lump_heterogeneous_not_merged;
          QCheck_alcotest.to_alcotest prop_lumping_matches_direct
        ] );
      ( "chain-io",
        [ Alcotest.test_case "roundtrip" `Quick test_chain_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_chain_io_errors;
          Alcotest.test_case "comments" `Quick test_chain_io_comments
        ] );
      ( "spectral",
        [ Alcotest.test_case "two-state slem" `Quick test_slem_two_state;
          Alcotest.test_case "lazy uniform slem" `Quick test_slem_lazy_uniform;
          Alcotest.test_case "requires reversible" `Quick test_slem_requires_reversible;
          Alcotest.test_case "bounds bracket mixing" `Quick test_spectral_bounds_bracket_mixing
        ] );
      ( "diagnostics",
        [ Alcotest.test_case "autocorrelation" `Quick test_autocorrelation;
          Alcotest.test_case "effective sample size" `Quick test_effective_sample_size;
          Alcotest.test_case "gelman-rubin" `Quick test_gelman_rubin;
          Alcotest.test_case "on a real walk" `Slow test_diagnostics_on_real_walk
        ] );
      ( "props",
        qsuite [ prop_stationary_fixed_point; prop_stationary_sums_to_one; prop_power_iteration_agrees ] )
    ]
