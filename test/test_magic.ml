(* Goal-directed fixpoint evaluation: unit tests for the magic-sets demand
   rewrite ({!Lang.Magic}) and the semi-naive delta stepper
   ({!Lang.Seminaive}), plus the guarded world-enumeration entry point. *)

module Q = Bigq.Q
module D = Lang.Datalog
module Database = Relational.Database
module Relation = Relational.Relation
module Tuple = Relational.Tuple

let v s = Relational.Value.Str s
let var x = D.Var x
let atom p args = { D.pred = p; args }
let det_rule p args body = D.rule (D.deterministic_head p args) body

(* --- a directed chain: s(a0), e(a_i, a_{i+1}), R = reachable from s ---- *)

let node i = "a" ^ string_of_int i

let chain_db n =
  let e =
    Relation.make [ "x1"; "x2" ]
      (List.init (n - 1) (fun i -> Tuple.of_list [ v (node i); v (node (i + 1)) ]))
  in
  let s = Relation.make [ "x1" ] [ Tuple.of_list [ v (node 0) ] ] in
  Database.of_list [ ("e", e); ("s", s) ]

let chain_program =
  [ det_rule "R" [ var "X" ] [ atom "s" [ var "X" ] ];
    det_rule "R" [ var "Y" ] [ atom "R" [ var "X" ]; atom "e" [ var "X"; var "Y" ] ]
  ]

let eval_stats ?(seminaive = false) program db event =
  let kernel, init = Lang.Compile.inflationary_kernel program db in
  let schema_of name = Relation.columns (Database.find name init) in
  let fq = Lang.Forever.compile ~schema_of (Lang.Forever.make ~kernel ~event) in
  let fq =
    if seminaive then Lang.Seminaive.install (Lang.Seminaive.compile ~schema_of program) fq
    else fq
  in
  Eval.Exact_inflationary.eval_with_stats (Lang.Inflationary.of_forever_unchecked fq) init

(* --- magic sets -------------------------------------------------------- *)

(* Demand near the chain's start: the unrewritten fixpoint derives the
   whole chain, the rewritten one only the demanded prefix — same answer,
   strictly fewer visited states. *)
let test_magic_prunes_chain () =
  let db = chain_db 8 in
  let event = Lang.Event.make "R" [ v (node 2) ] in
  let base, bstats = eval_stats chain_program db event in
  let m = Lang.Magic.rewrite ~event chain_program in
  let s = Lang.Magic.stats m in
  Alcotest.(check bool) "rewritten" true s.Lang.Magic.rewritten;
  Alcotest.(check bool) "adorned something" true (s.Lang.Magic.adorned_predicates > 0);
  let answer, mstats = eval_stats (Lang.Magic.program m) db (Lang.Magic.event m) in
  Alcotest.(check bool) "answers equal" true (Q.equal base answer);
  Alcotest.(check bool) "answer is 1" true (Q.equal base Q.one);
  Alcotest.(check bool) "strictly fewer states" true
    (mstats.Eval.Exact_inflationary.states_visited
    < bstats.Eval.Exact_inflationary.states_visited)

(* The same assertion through the engine front-end: --magic must preserve
   the exact answer and shrink the "states visited" diagnostic. *)
let test_magic_via_engine () =
  let db = chain_db 8 in
  let facts =
    List.concat_map
      (fun (name, r) -> List.map (fun t -> (name, Tuple.to_list t)) (Relation.tuples r))
      (Database.bindings db)
  in
  let event = Lang.Event.make "R" [ v (node 2) ] in
  let parsed =
    { Lang.Parser.program = chain_program;
      facts;
      vars = [];
      cond_facts = [];
      event = Some event;
      events = [ event ]
    }
  in
  let run magic =
    let r =
      Eval.Engine.run ~magic ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact
        parsed
    in
    let states = int_of_string (List.assoc "states visited" r.Eval.Engine.diagnostics) in
    ((match r.Eval.Engine.exact with Some q -> q | None -> Alcotest.fail "no exact answer"), states)
  in
  let base, base_states = run false in
  let magic, magic_states = run true in
  Alcotest.(check bool) "answers equal" true (Q.equal base magic);
  Alcotest.(check bool) "fewer states" true (magic_states < base_states)

(* An event over an EDB predicate: nothing to adorn, but unreachable rules
   are still eliminated. *)
let test_magic_edb_event () =
  let db = chain_db 4 in
  let event = Lang.Event.make "e" [ v (node 0); v (node 1) ] in
  let m = Lang.Magic.rewrite ~event chain_program in
  let s = Lang.Magic.stats m in
  Alcotest.(check int) "no adornment" 0 s.Lang.Magic.adorned_predicates;
  Alcotest.(check int) "both rules dropped" 2 s.Lang.Magic.dropped_rules;
  let base, _ = eval_stats chain_program db event in
  let answer, _ = eval_stats (Lang.Magic.program m) db (Lang.Magic.event m) in
  Alcotest.(check bool) "answers equal" true (Q.equal base answer)

(* A probabilistic rule deriving the event predicate: the total closure
   must exempt it from adornment, and the choice distribution must
   survive the rewrite untouched. *)
let test_magic_probabilistic_total () =
  let db =
    Database.of_list
      [ ("s", Relation.make [ "x1" ] [ Tuple.of_list [ v "a" ]; Tuple.of_list [ v "b" ] ]) ]
  in
  let program =
    [ { D.head = { D.hpred = "T"; hargs = [ { D.term = var "X"; is_key = false } ]; weight = None };
        body = [ atom "s" [ var "X" ] ];
        neg = [];
        constraints = []
      }
    ]
  in
  let event = Lang.Event.make "T" [ v "a" ] in
  let m = Lang.Magic.rewrite ~event program in
  let s = Lang.Magic.stats m in
  Alcotest.(check int) "no adornment" 0 s.Lang.Magic.adorned_predicates;
  Alcotest.(check bool) "T kept total" true (List.mem "T" s.Lang.Magic.total_predicates);
  let base, _ = eval_stats program db event in
  let answer, _ = eval_stats (Lang.Magic.program m) db (Lang.Magic.event m) in
  Alcotest.(check bool) "answer is 1/2" true (Q.equal base (Q.of_ints 1 2));
  Alcotest.(check bool) "answers equal" true (Q.equal base answer)

(* Negation makes derivation timing observable, so the rule with negation
   and everything it reads stay total. *)
let test_magic_negation_total () =
  let db = chain_db 4 in
  let program =
    chain_program
    @ [ det_rule "Cold" [ var "X" ] [ atom "R" [ var "X" ] ];
        D.rule_with_neg
          (D.deterministic_head "F" [ var "X" ])
          [ atom "R" [ var "X" ] ]
          [ atom "Cold" [ var "X" ] ]
      ]
  in
  let event = Lang.Event.make "F" [ v (node 1) ] in
  let m = Lang.Magic.rewrite ~event program in
  let s = Lang.Magic.stats m in
  Alcotest.(check int) "no adornment" 0 s.Lang.Magic.adorned_predicates;
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " kept total") true (List.mem p s.Lang.Magic.total_predicates))
    [ "F"; "Cold"; "R" ];
  let base, _ = eval_stats program db event in
  let answer, _ = eval_stats (Lang.Magic.program m) db (Lang.Magic.event m) in
  Alcotest.(check bool) "answers equal" true (Q.equal base answer)

(* --- semi-naive stepping ----------------------------------------------- *)

let test_seminaive_chain () =
  let db = chain_db 8 in
  let event = Lang.Event.make "R" [ v (node 7) ] in
  let kernel, init = Lang.Compile.inflationary_kernel chain_program db in
  let schema_of name = Relation.columns (Database.find name init) in
  let sn = Lang.Seminaive.compile ~schema_of chain_program in
  Alcotest.(check int) "all rule plans incremental" (Lang.Seminaive.total_rules sn)
    (Lang.Seminaive.incremental_rules sn);
  ignore kernel;
  let naive, nstats = eval_stats chain_program db event in
  let semi, sstats = eval_stats ~seminaive:true chain_program db event in
  Alcotest.(check bool) "answers equal" true (Q.equal naive semi);
  Alcotest.(check int) "same states" nstats.Eval.Exact_inflationary.states_visited
    sstats.Eval.Exact_inflationary.states_visited

(* The semi-naive stepper composes with magic: rewritten program, delta
   stepping, same answer as the plain naive walk. *)
let test_seminaive_with_magic () =
  let db = chain_db 8 in
  let event = Lang.Event.make "R" [ v (node 2) ] in
  let base, _ = eval_stats chain_program db event in
  let m = Lang.Magic.rewrite ~event chain_program in
  let answer, _ = eval_stats ~seminaive:true (Lang.Magic.program m) db (Lang.Magic.event m) in
  Alcotest.(check bool) "answers equal" true (Q.equal base answer)

(* --- guarded world enumeration ----------------------------------------- *)

let test_eval_worlds_guard () =
  let db = chain_db 6 in
  let event = Lang.Event.make "R" [ v (node 5) ] in
  let kernel, init = Lang.Compile.inflationary_kernel chain_program db in
  ignore kernel;
  let schema_of name = Relation.columns (Database.find name init) in
  let fq =
    Lang.Forever.compile ~schema_of (Lang.Forever.make ~kernel ~event)
  in
  let q = Lang.Inflationary.of_forever_unchecked fq in
  let worlds = Prob.Dist.return db in
  let prepare w = Lang.Compile.inflationary_initial chain_program w in
  let full = Eval.Exact_inflationary.eval_worlds ~prepare q worlds in
  Alcotest.(check bool) "answer is 1" true (Q.equal full Q.one);
  let g = Guard.make ~max_states:2 () in
  (try
     ignore (Eval.Exact_inflationary.eval_worlds ~guard:g ~prepare q worlds);
     Alcotest.fail "expected Guard.Exhausted"
   with Guard.Exhausted (Guard.States _) -> ());
  Alcotest.(check bool) "charged states" true (Guard.states_reached g > 2)

let () =
  Alcotest.run "magic"
    [ ( "magic-sets",
        [ Alcotest.test_case "prunes chain states" `Quick test_magic_prunes_chain;
          Alcotest.test_case "engine --magic" `Quick test_magic_via_engine;
          Alcotest.test_case "EDB event: dead rules only" `Quick test_magic_edb_event;
          Alcotest.test_case "probabilistic stays total" `Quick test_magic_probabilistic_total;
          Alcotest.test_case "negation stays total" `Quick test_magic_negation_total
        ] );
      ( "semi-naive",
        [ Alcotest.test_case "chain: equal answers and states" `Quick test_seminaive_chain;
          Alcotest.test_case "composes with magic" `Quick test_seminaive_with_magic
        ] );
      ( "worlds",
        [ Alcotest.test_case "eval_worlds guard" `Quick test_eval_worlds_guard ] )
    ]
