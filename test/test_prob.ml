(* Tests for the probabilistic substrate: Dist, Ctable, Repair_key,
   Palgebra, Interp. *)

open Relational
open Prob
module Q = Bigq.Q

let v_int n = Value.Int n
let v_str s = Value.Str s
let rel cols rows = Relation.make cols (List.map Tuple.of_list rows)

let q_t = Alcotest.testable Q.pp Q.equal
let relation_t = Alcotest.testable Relation.pp Relation.equal

(* --- Dist ------------------------------------------------------------- *)

let test_dist_merge () =
  let d = Dist.make ~compare:Int.compare [ (1, Q.of_ints 1 4); (2, Q.half); (1, Q.of_ints 1 4) ] in
  Alcotest.(check int) "two outcomes" 2 (Dist.size d);
  Alcotest.check q_t "1 has mass 1/2" Q.half (Dist.prob_of ~compare:Int.compare 1 d)

let test_dist_invalid () =
  (try
     ignore (Dist.make ~compare:Int.compare [ (1, Q.half) ]);
     Alcotest.fail "expected Invalid_distribution"
   with Dist.Invalid_distribution _ -> ());
  try
    ignore (Dist.make ~compare:Int.compare [ (1, Q.of_ints (-1) 2); (2, Q.of_ints 3 2) ]);
    Alcotest.fail "expected Invalid_distribution"
  with Dist.Invalid_distribution _ -> ()

let test_dist_unnormalised () =
  let d = Dist.make_unnormalised ~compare:Int.compare [ (1, Q.of_int 17); (2, Q.of_int 3) ] in
  Alcotest.check q_t "17/20" (Q.of_ints 17 20) (Dist.prob_of ~compare:Int.compare 1 d)

let test_dist_bind () =
  (* Two coin flips: probability both heads is 1/4. *)
  let coin = Dist.uniform ~compare:Bool.compare [ true; false ] in
  let both =
    Dist.bind ~compare:Int.compare coin (fun a ->
        Dist.map ~compare:Int.compare (fun b -> if a && b then 1 else 0) coin)
  in
  Alcotest.check q_t "1/4" (Q.of_ints 1 4) (Dist.prob_of ~compare:Int.compare 1 both)

let test_dist_sequence () =
  let coin = Dist.uniform ~compare:Int.compare [ 0; 1 ] in
  let seq = Dist.sequence ~compare:(List.compare Int.compare) [ coin; coin; coin ] in
  Alcotest.(check int) "8 outcomes" 8 (Dist.size seq);
  Alcotest.check q_t "each 1/8" (Q.of_ints 1 8)
    (Dist.prob_of ~compare:(List.compare Int.compare) [ 1; 0; 1 ] seq)

let test_dist_expectation () =
  let die = Dist.uniform ~compare:Int.compare [ 1; 2; 3; 4; 5; 6 ] in
  Alcotest.check q_t "E[die] = 7/2" (Q.of_ints 7 2) (Dist.expectation (fun n -> Q.of_int n) die)

let test_dist_total_variation () =
  let a = Dist.make ~compare:Int.compare [ (1, Q.half); (2, Q.half) ] in
  let b = Dist.make ~compare:Int.compare [ (2, Q.half); (3, Q.half) ] in
  Alcotest.check q_t "tv disjoint half" Q.half (Dist.total_variation ~compare:Int.compare a b);
  Alcotest.check q_t "tv self 0" Q.zero (Dist.total_variation ~compare:Int.compare a a)

let test_dist_sample_frequencies () =
  let d = Dist.make ~compare:Int.compare [ (0, Q.of_ints 1 4); (1, Q.of_ints 3 4) ] in
  let rng = Random.State.make [| 42 |] in
  let n = 20_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if Dist.sample rng d = 1 then incr ones
  done;
  let f = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "frequency close to 3/4" true (abs_float (f -. 0.75) < 0.02)

(* --- Repair_key (Example 2.2, Table 2) -------------------------------- *)

let basketball =
  rel [ "Player"; "Team"; "Belief" ]
    [ [ v_str "Bryant"; v_str "LALakers"; v_int 17 ];
      [ v_str "Bryant"; v_str "NYKnicks"; v_int 3 ];
      [ v_str "Iverson"; v_str "Sixers"; v_int 8 ];
      [ v_str "Iverson"; v_str "Grizzlies"; v_int 7 ]
    ]

let test_repair_key_basketball () =
  let worlds = Repair_key.repair ~key:[ "Player" ] ~weight:"Belief" basketball in
  Alcotest.(check int) "4 possible worlds" 4 (Dist.size worlds);
  let bryant_lakers r =
    Relation.mem (Tuple.of_list [ v_str "Bryant"; v_str "LALakers"; v_int 17 ]) r
  in
  Alcotest.check q_t "Pr[Bryant->Lakers] = 17/20" (Q.of_ints 17 20) (Dist.prob bryant_lakers worlds);
  let world r = bryant_lakers r && Relation.mem (Tuple.of_list [ v_str "Iverson"; v_str "Sixers"; v_int 8 ]) r in
  Alcotest.check q_t "product world = 17/20 * 8/15" (Q.mul (Q.of_ints 17 20) (Q.of_ints 8 15))
    (Dist.prob world worlds)

let test_repair_key_uniform () =
  let r = rel [ "A"; "B" ] [ [ v_int 1; v_int 10 ]; [ v_int 1; v_int 20 ]; [ v_int 2; v_int 30 ] ] in
  let worlds = Repair_key.repair ~key:[ "A" ] r in
  Alcotest.(check int) "2 worlds" 2 (Dist.size worlds);
  List.iter (fun (_, p) -> Alcotest.check q_t "uniform halves" Q.half p) (Dist.support worlds)

let test_repair_key_empty_key () =
  (* repair-key over the empty key picks one tuple out of the relation. *)
  let r = rel [ "A"; "P" ] [ [ v_int 1; v_int 1 ]; [ v_int 2; v_int 3 ] ] in
  let worlds = Repair_key.repair ~key:[] ~weight:"P" r in
  Alcotest.(check int) "2 singleton worlds" 2 (Dist.size worlds);
  let has_two r = Relation.mem (Tuple.of_list [ v_int 2; v_int 3 ]) r in
  Alcotest.check q_t "weighted 3/4" (Q.of_ints 3 4) (Dist.prob has_two worlds)

let test_repair_key_empty_relation () =
  let worlds = Repair_key.repair ~key:[ "A" ] (Relation.empty [ "A" ]) in
  Alcotest.(check int) "one empty world" 1 (Dist.size worlds)

let test_repair_key_bad_weight () =
  let r = rel [ "A"; "P" ] [ [ v_int 1; v_int 0 ] ] in
  try
    ignore (Repair_key.repair ~key:[] ~weight:"P" r);
    Alcotest.fail "expected Repair_error"
  with Repair_key.Repair_error _ -> ()

let test_repair_key_fd_collapse () =
  (* Footnote 1: duplicated non-weight projections merge, weights add. *)
  let r =
    rel [ "A"; "P" ]
      [ [ v_int 1; v_int 1 ]; [ v_int 1; v_int 2 ]; [ v_int 2; v_int 3 ] ]
  in
  let worlds = Repair_key.repair ~key:[] ~weight:"P" r in
  Alcotest.(check int) "2 worlds after collapse" 2 (Dist.size worlds);
  let has_one (r : Relation.t) =
    Relation.exists (fun t -> Value.equal t.(0) (v_int 1)) r
  in
  Alcotest.check q_t "collapsed weight 3/6" Q.half (Dist.prob has_one worlds)

let test_num_repairs () =
  Alcotest.(check int) "4 repairs" 4 (Repair_key.num_repairs ~key:[ "Player" ] basketball)

let test_repair_sample_agrees () =
  let rng = Random.State.make [| 7 |] in
  let n = 20_000 in
  let count = ref 0 in
  for _ = 1 to n do
    let w = Repair_key.sample rng ~key:[ "Player" ] ~weight:"Belief" basketball in
    if Relation.mem (Tuple.of_list [ v_str "Bryant"; v_str "LALakers"; v_int 17 ]) w then incr count
  done;
  let f = float_of_int !count /. float_of_int n in
  Alcotest.(check bool) "sampling matches 17/20" true (abs_float (f -. 0.85) < 0.02)

(* --- Ctable ----------------------------------------------------------- *)

let xy_ctable =
  (* Two independent fair boolean variables guarding two tuples. *)
  Ctable.make
    ~vars:[ Ctable.flag ~p:Q.half "x"; Ctable.flag ~p:(Q.of_ints 1 4) "y" ]
    ~tables:
      [ ( "R",
          [ "A" ],
          [ { Ctable.tuple = Tuple.of_list [ v_int 1 ];
              cond = Ctable.CEq (Ctable.TVar "x", Ctable.TLit (Value.Bool true)) };
            { Ctable.tuple = Tuple.of_list [ v_int 2 ];
              cond = Ctable.CAnd
                  ( Ctable.CEq (Ctable.TVar "x", Ctable.TLit (Value.Bool true)),
                    Ctable.CEq (Ctable.TVar "y", Ctable.TLit (Value.Bool true)) ) }
          ] )
      ]

let test_ctable_worlds () =
  let worlds = Ctable.worlds xy_ctable in
  (* Worlds: {} (x=false, p 1/2), {1} (x,!y, 3/8), {1,2} (x,y, 1/8). *)
  Alcotest.(check int) "3 distinct worlds" 3 (Dist.size worlds);
  let has n db = Relation.mem (Tuple.of_list [ v_int n ]) (Database.find "R" db) in
  Alcotest.check q_t "Pr[1 in R] = 1/2" Q.half (Dist.prob (has 1) worlds);
  Alcotest.check q_t "Pr[2 in R] = 1/8" (Q.of_ints 1 8) (Dist.prob (has 2) worlds)

let test_ctable_num_worlds () = Alcotest.(check int) "4 valuations" 4 (Ctable.num_worlds xy_ctable)

let test_ctable_validation () =
  (try
     ignore (Ctable.make ~vars:[ Ctable.flag ~p:Q.half "x"; Ctable.flag ~p:Q.half "x" ] ~tables:[]);
     Alcotest.fail "expected duplicate var error"
   with Ctable.Ctable_error _ -> ());
  try
    ignore
      (Ctable.make ~vars:[]
         ~tables:
           [ ("R", [ "A" ],
              [ { Ctable.tuple = Tuple.of_list [ v_int 1 ];
                  cond = Ctable.CEq (Ctable.TVar "ghost", Ctable.TLit (Value.Bool true)) } ]) ]);
    Alcotest.fail "expected undeclared var error"
  with Ctable.Ctable_error _ -> ()

let test_ctable_sample_valuation () =
  let rng = Random.State.make [| 3 |] in
  let n = 10_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    let theta = Ctable.sample_valuation rng xy_ctable in
    if Ctable.eval_cond theta (Ctable.CEq (Ctable.TVar "y", Ctable.TLit (Value.Bool true))) then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "y true freq near 1/4" true (abs_float (f -. 0.25) < 0.02)

let test_ctable_certain () =
  let db = Database.of_list [ ("R", rel [ "A" ] [ [ v_int 1 ] ]) ] in
  let worlds = Ctable.worlds (Ctable.certain db) in
  Alcotest.(check int) "single world" 1 (Dist.size worlds);
  match Dist.is_point worlds with
  | Some w -> Alcotest.(check bool) "same db" true (Database.equal db w)
  | None -> Alcotest.fail "not a point mass"

(* --- Palgebra + Interp (Example 3.3 one step) -------------------------- *)

let graph_db =
  Database.of_list
    [ ("C", rel [ "I" ] [ [ v_str "a" ] ]);
      ("E",
       rel [ "I"; "J"; "P" ]
         [ [ v_str "a"; v_str "b"; v_int 1 ];
           [ v_str "a"; v_str "c"; v_int 3 ];
           [ v_str "b"; v_str "a"; v_int 1 ];
           [ v_str "c"; v_str "a"; v_int 1 ]
         ])
    ]

(* C := ρ_I(π_J(repair-key_I@P(C ⋈ E))) — the paper's random-walk kernel. *)
let walk_c_query =
  Palgebra.Rename
    ( [ ("J", "I") ],
      Palgebra.Project
        ([ "J" ],
         Palgebra.repair_key ~weight:"P" [ "I" ] (Palgebra.Join (Palgebra.Rel "C", Palgebra.Rel "E"))) )

let test_palgebra_walk_step () =
  let d = Palgebra.eval walk_c_query graph_db in
  Alcotest.(check int) "two successor worlds" 2 (Dist.size d);
  let at n = Relation.mem (Tuple.of_list [ v_str n ]) in
  Alcotest.check q_t "to b with 1/4" (Q.of_ints 1 4) (Dist.prob (at "b") d);
  Alcotest.check q_t "to c with 3/4" (Q.of_ints 3 4) (Dist.prob (at "c") d)

let test_palgebra_deterministic_fastpath () =
  let q = Palgebra.Join (Palgebra.Rel "C", Palgebra.Rel "E") in
  Alcotest.(check bool) "deterministic" true (Palgebra.is_deterministic q);
  let d = Palgebra.eval q graph_db in
  Alcotest.(check int) "point mass" 1 (Dist.size d)

let test_palgebra_sample_agrees () =
  let rng = Random.State.make [| 11 |] in
  let n = 20_000 in
  let to_c = ref 0 in
  for _ = 1 to n do
    let r = Palgebra.eval_sampled rng walk_c_query graph_db in
    if Relation.mem (Tuple.of_list [ v_str "c" ]) r then incr to_c
  done;
  let f = float_of_int !to_c /. float_of_int n in
  Alcotest.(check bool) "sampled 3/4" true (abs_float (f -. 0.75) < 0.02)

let walk_interp = Interp.make [ ("C", walk_c_query); Interp.unchanged "E" ]

let test_interp_apply () =
  let d = Interp.apply walk_interp graph_db in
  Alcotest.(check int) "two next states" 2 (Dist.size d);
  List.iter
    (fun (db', _) ->
      Alcotest.check relation_t "E unchanged" (Database.find "E" graph_db) (Database.find "E" db'))
    (Dist.support d)

let test_interp_duplicate () =
  try
    ignore (Interp.make [ ("C", Palgebra.Rel "C"); ("C", Palgebra.Rel "C") ]);
    Alcotest.fail "expected Interp_error"
  with Interp.Interp_error _ -> ()

let test_interp_parallel_semantics () =
  (* Swap two relations in one step: both right-hand sides must read the old
     state ("all rules fire in parallel"). *)
  let a = rel [ "X" ] [ [ v_int 1 ] ] and b = rel [ "X" ] [ [ v_int 2 ] ] in
  let db = Database.of_list [ ("A", a); ("B", b) ] in
  let swap = Interp.make [ ("A", Palgebra.Rel "B"); ("B", Palgebra.Rel "A") ] in
  match Dist.is_point (Interp.apply swap db) with
  | Some db' ->
    Alcotest.check relation_t "A got old B" b (Database.find "A" db');
    Alcotest.check relation_t "B got old A" a (Database.find "B" db')
  | None -> Alcotest.fail "swap should be deterministic"

let test_palgebra_aggregate_over_repair () =
  (* Every world of the basketball repair has exactly 2 tuples, so the
     count aggregate of the repaired relation is deterministic. *)
  let q =
    Palgebra.Aggregate
      { group_by = [];
        agg = Relational.Algebra.Count;
        src = None;
        out = "N";
        arg = Palgebra.Repair_key { key = [ "Player" ]; weight = Some "Belief"; arg = Palgebra.Rel "B" }
      }
  in
  let db = Database.of_list [ ("B", basketball) ] in
  let d = Palgebra.eval q db in
  Alcotest.(check int) "count collapses worlds" 1 (Dist.size d);
  match Dist.is_point d with
  | Some r -> Alcotest.check relation_t "count 2" (rel [ "N" ] [ [ v_int 2 ] ]) r
  | None -> Alcotest.fail "expected point mass"

(* --- compiled probabilistic plans (Pplan) ------------------------------- *)

let test_palgebra_schema_of_project_checked () =
  (* Regression: schema_of on Project used to ignore the child schema, so a
     projection onto unknown columns typechecked and only blew up in eval.
     It must raise exactly where eval would. *)
  (try
     ignore (Palgebra.schema_of (Palgebra.Project ([ "ghost" ], Palgebra.Rel "E")) graph_db);
     Alcotest.fail "expected Schema_error from schema_of"
   with Relation.Schema_error _ -> ());
  (try
     ignore (Palgebra.schema_of (Palgebra.Project ([ "J"; "J" ], Palgebra.Rel "E")) graph_db);
     Alcotest.fail "expected Schema_error on duplicate column"
   with Relation.Schema_error _ -> ());
  Alcotest.(check (list string)) "valid project schema" [ "J" ]
    (Palgebra.schema_of (Palgebra.Project ([ "J" ], Palgebra.Rel "E")) graph_db)

let schema_of_db the_db name = Relation.columns (Database.find name the_db)

let same_dist equal da db =
  List.equal (fun (a, p) (b, q) -> equal a b && Q.equal p q) (Dist.support da) (Dist.support db)

let test_pplan_eval_matches () =
  let bdb = Database.of_list [ ("B", basketball) ] in
  let cases =
    [ (walk_c_query, graph_db);
      (Palgebra.Join (Palgebra.Rel "C", Palgebra.Rel "E"), graph_db);
      (Palgebra.Repair_key { key = [ "Player" ]; weight = Some "Belief"; arg = Palgebra.Rel "B" }, bdb);
      (Palgebra.Aggregate
         { group_by = [];
           agg = Relational.Algebra.Count;
           src = None;
           out = "N";
           arg = Palgebra.Repair_key { key = [ "Player" ]; weight = Some "Belief"; arg = Palgebra.Rel "B" }
         },
       bdb)
    ]
  in
  List.iter
    (fun (q, the_db) ->
      let p = Pplan.compile ~schema_of:(schema_of_db the_db) q in
      Alcotest.(check bool) "same exact distribution" true
        (same_dist Relation.equal (Palgebra.eval q the_db) (Pplan.eval p the_db));
      Alcotest.(check (list string)) "schema" (Palgebra.schema_of q the_db) (Pplan.schema p))
    cases

let test_pplan_compile_time_errors () =
  let expect label q =
    try
      ignore (Pplan.compile ~schema_of:(schema_of_db graph_db) q);
      Alcotest.fail (label ^ ": expected Schema_error at compile time")
    with Relation.Schema_error _ -> ()
  in
  expect "project unknown" (Palgebra.Project ([ "ghost" ], Palgebra.Rel "E"));
  expect "repair-key unknown key"
    (Palgebra.Repair_key { key = [ "ghost" ]; weight = None; arg = Palgebra.Rel "E" });
  expect "repair-key unknown weight"
    (Palgebra.Repair_key { key = [ "I" ]; weight = Some "ghost"; arg = Palgebra.Rel "E" })

let test_pplan_sample_bit_identical () =
  let p = Pplan.compile ~schema_of:(schema_of_db graph_db) walk_c_query in
  for seed = 0 to 49 do
    let r1 = Random.State.make [| seed |] and r2 = Random.State.make [| seed |] in
    Alcotest.check relation_t "same fixed-seed draw"
      (Palgebra.eval_sampled r1 walk_c_query graph_db)
      (Pplan.sample r2 p graph_db);
    (* Both paths must consume the RNG stream identically, not just return
       equal worlds: the next raw draw from each state agrees. *)
    Alcotest.(check int) "same stream position" (Random.State.int r1 1_000_000)
      (Random.State.int r2 1_000_000)
  done

let test_pplan_interp_matches () =
  let ip = Pplan.compile_interp ~schema_of:(schema_of_db graph_db) walk_interp in
  Alcotest.(check bool) "apply: same db distribution" true
    (same_dist Database.equal (Interp.apply walk_interp graph_db) (Pplan.apply ip graph_db));
  for seed = 0 to 19 do
    let r1 = Random.State.make [| seed |] and r2 = Random.State.make [| seed |] in
    Alcotest.(check bool) "apply_sampled: same fixed-seed db" true
      (Database.equal
         (Interp.apply_sampled r1 walk_interp graph_db)
         (Pplan.apply_sampled r2 ip graph_db))
  done

let test_repair_at_agrees () =
  (* Positional repair (plan path) and name-based repair produce the same
     world distribution and, per seed, the same sampled world from the same
     number of draws. *)
  let ki = [| 0 |] (* Player *) and wi = 2 (* Belief *) in
  Alcotest.(check bool) "repair_at = repair" true
    (same_dist Relation.equal
       (Repair_key.repair ~key:[ "Player" ] ~weight:"Belief" basketball)
       (Repair_key.repair_at ~key:ki ~weight:wi basketball));
  for seed = 0 to 49 do
    let r1 = Random.State.make [| seed |] and r2 = Random.State.make [| seed |] in
    Alcotest.check relation_t "sample_at = sample"
      (Repair_key.sample r1 ~key:[ "Player" ] ~weight:"Belief" basketball)
      (Repair_key.sample_at r2 ~key:ki ~weight:wi basketball);
    Alcotest.(check int) "same stream position" (Random.State.int r1 1_000_000)
      (Random.State.int r2 1_000_000)
  done

(* --- Confidence (possible/certain/tuple marginals) ---------------------- *)

let basketball_worlds = Repair_key.repair ~key:[ "Player" ] ~weight:"Belief" basketball

let test_confidence_possible_certain () =
  let poss = Confidence.possible basketball_worlds in
  Alcotest.(check int) "possible = all 4 tuples" 4 (Relation.cardinal poss);
  let cert = Confidence.certain basketball_worlds in
  Alcotest.(check int) "nothing certain" 0 (Relation.cardinal cert);
  (* Point mass: possible = certain = the relation. *)
  let point = Dist.return (rel [ "A" ] [ [ v_int 1 ] ]) in
  Alcotest.check relation_t "point possible" (rel [ "A" ] [ [ v_int 1 ] ]) (Confidence.possible point);
  Alcotest.check relation_t "point certain" (rel [ "A" ] [ [ v_int 1 ] ]) (Confidence.certain point)

let test_confidence_tuple_marginals () =
  let conf = Confidence.tuple_confidence basketball_worlds in
  Alcotest.(check int) "4 possible tuples" 4 (List.length conf);
  let find player team =
    List.assoc (Tuple.of_list [ v_str player; v_str team; v_int (if team = "LALakers" then 17 else if team = "NYKnicks" then 3 else if team = "Sixers" then 8 else 7) ])
      conf
  in
  Alcotest.check q_t "Bryant Lakers 17/20" (Q.of_ints 17 20) (find "Bryant" "LALakers");
  Alcotest.check q_t "Iverson Grizzlies 7/15" (Q.of_ints 7 15) (find "Iverson" "Grizzlies");
  (* Marginals per key group sum to 1. *)
  Alcotest.check q_t "sum over all = 2 groups" (Q.of_int 2) (Q.sum (List.map snd conf))

let test_confidence_expected_cardinality () =
  Alcotest.check q_t "always exactly 2 tuples" (Q.of_int 2)
    (Confidence.expected_cardinality basketball_worlds)

let test_confidence_relation_marginal () =
  let d = Interp.apply walk_interp graph_db in
  let c_marginal = Confidence.relation_marginal "C" d in
  Alcotest.(check int) "two C values" 2 (Dist.size c_marginal);
  let e_marginal = Confidence.relation_marginal "E" d in
  Alcotest.(check int) "E constant" 1 (Dist.size e_marginal)

(* --- Dist property tests ---------------------------------------------- *)

let arb_weights =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(list_size (int_range 1 6) (int_range 1 20))

let prop_unnormalised_sums_to_one =
  QCheck.Test.make ~name:"make_unnormalised sums to 1" ~count:200 arb_weights (fun ws ->
      let d = Dist.make_unnormalised ~compare:Int.compare (List.mapi (fun i w -> (i, Q.of_int w)) ws) in
      Q.is_one (Q.sum (List.map snd (Dist.support d))))

let prop_bind_preserves_mass =
  QCheck.Test.make ~name:"bind preserves total mass" ~count:200 arb_weights (fun ws ->
      let d = Dist.make_unnormalised ~compare:Int.compare (List.mapi (fun i w -> (i, Q.of_int w)) ws) in
      let d' = Dist.bind ~compare:Int.compare d (fun n -> Dist.uniform ~compare:Int.compare [ n; n + 1 ]) in
      Q.is_one (Q.sum (List.map snd (Dist.support d'))))

let prop_tv_bounds =
  QCheck.Test.make ~name:"total variation in [0,1]" ~count:200 (QCheck.pair arb_weights arb_weights)
    (fun (ws1, ws2) ->
      let mk ws = Dist.make_unnormalised ~compare:Int.compare (List.mapi (fun i w -> (i, Q.of_int w)) ws) in
      let tv = Dist.total_variation ~compare:Int.compare (mk ws1) (mk ws2) in
      Q.sign tv >= 0 && Q.compare tv Q.one <= 0)

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "prob"
    [ ( "dist",
        [ Alcotest.test_case "merge" `Quick test_dist_merge;
          Alcotest.test_case "invalid" `Quick test_dist_invalid;
          Alcotest.test_case "unnormalised" `Quick test_dist_unnormalised;
          Alcotest.test_case "bind" `Quick test_dist_bind;
          Alcotest.test_case "sequence" `Quick test_dist_sequence;
          Alcotest.test_case "expectation" `Quick test_dist_expectation;
          Alcotest.test_case "total variation" `Quick test_dist_total_variation;
          Alcotest.test_case "sample frequencies" `Slow test_dist_sample_frequencies
        ] );
      ( "repair-key",
        [ Alcotest.test_case "basketball (Table 2)" `Quick test_repair_key_basketball;
          Alcotest.test_case "uniform" `Quick test_repair_key_uniform;
          Alcotest.test_case "empty key" `Quick test_repair_key_empty_key;
          Alcotest.test_case "empty relation" `Quick test_repair_key_empty_relation;
          Alcotest.test_case "bad weight" `Quick test_repair_key_bad_weight;
          Alcotest.test_case "fd collapse" `Quick test_repair_key_fd_collapse;
          Alcotest.test_case "num_repairs" `Quick test_num_repairs;
          Alcotest.test_case "sample agrees" `Slow test_repair_sample_agrees
        ] );
      ( "ctable",
        [ Alcotest.test_case "worlds" `Quick test_ctable_worlds;
          Alcotest.test_case "num worlds" `Quick test_ctable_num_worlds;
          Alcotest.test_case "validation" `Quick test_ctable_validation;
          Alcotest.test_case "sample valuation" `Slow test_ctable_sample_valuation;
          Alcotest.test_case "certain" `Quick test_ctable_certain
        ] );
      ( "palgebra",
        [ Alcotest.test_case "walk step" `Quick test_palgebra_walk_step;
          Alcotest.test_case "deterministic fast path" `Quick test_palgebra_deterministic_fastpath;
          Alcotest.test_case "sampled agrees" `Slow test_palgebra_sample_agrees;
          Alcotest.test_case "aggregate over repair-key" `Quick test_palgebra_aggregate_over_repair
        ] );
      ( "interp",
        [ Alcotest.test_case "apply" `Quick test_interp_apply;
          Alcotest.test_case "duplicate name" `Quick test_interp_duplicate;
          Alcotest.test_case "parallel semantics" `Quick test_interp_parallel_semantics
        ] );
      ( "pplan",
        [ Alcotest.test_case "schema_of Project checked" `Quick test_palgebra_schema_of_project_checked;
          Alcotest.test_case "eval matches Palgebra" `Quick test_pplan_eval_matches;
          Alcotest.test_case "compile-time schema errors" `Quick test_pplan_compile_time_errors;
          Alcotest.test_case "sample bit-identical" `Quick test_pplan_sample_bit_identical;
          Alcotest.test_case "interp apply/apply_sampled" `Quick test_pplan_interp_matches;
          Alcotest.test_case "repair_at/sample_at agree" `Quick test_repair_at_agrees
        ] );
      ( "confidence",
        [ Alcotest.test_case "possible/certain" `Quick test_confidence_possible_certain;
          Alcotest.test_case "tuple marginals" `Quick test_confidence_tuple_marginals;
          Alcotest.test_case "expected cardinality" `Quick test_confidence_expected_cardinality;
          Alcotest.test_case "relation marginal" `Quick test_confidence_relation_marginal
        ] );
      ("dist-props", qsuite [ prop_unnormalised_sums_to_one; prop_bind_preserves_mass; prop_tv_bounds ])
    ]
