(* Tests for the evaluation engines, against hand-computed ground truths
   from the paper's examples. *)

open Relational
open Lang
open Eval
module Q = Bigq.Q
module Dist = Prob.Dist
module P = Prob.Palgebra

let v_int n = Value.Int n
let v_str s = Value.Str s
let rel cols rows = Relation.make cols (List.map Tuple.of_list rows)
let q_t = Alcotest.testable Q.pp Q.equal

let parse = Parser.parse

let inflationary_query src db =
  let parsed = parse src in
  let event = Option.get parsed.Parser.event in
  let kernel, init = Compile.inflationary_kernel parsed.Parser.program db in
  (Inflationary.of_forever (Forever.make ~kernel ~event), init)

let noninflationary_query src db =
  let parsed = parse src in
  let event = Option.get parsed.Parser.event in
  let kernel, init = Compile.noninflationary_kernel parsed.Parser.program db in
  (Forever.make ~kernel ~event, init)

(* --- Example 3.9: reachability in a graph ------------------------------ *)

let reach_src = "C(v) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\n?- C(w)."
let fork_db = Database.of_list [ ("e", rel [ "x1"; "x2" ] [ [ v_str "v"; v_str "w" ]; [ v_str "v"; v_str "u" ] ]) ]

let test_reachability_fork () =
  let q, init = inflationary_query reach_src fork_db in
  Alcotest.check q_t "Pr[w reached] = 1/2" Q.half (Exact_inflationary.eval q init)

let test_reachability_line () =
  (* v -> w -> u: reaching u is certain. *)
  let db = Database.of_list [ ("e", rel [ "x1"; "x2" ] [ [ v_str "v"; v_str "w" ]; [ v_str "w"; v_str "u" ] ]) ] in
  let q, init = inflationary_query "C(v) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\n?- C(u)." db in
  Alcotest.check q_t "certain" Q.one (Exact_inflationary.eval q init)

let test_reachability_two_hops () =
  (* v -> {w, u}, w -> {t}, u -> {}: Pr[t] = 1/2. *)
  let db =
    Database.of_list
      [ ("e", rel [ "x1"; "x2" ]
           [ [ v_str "v"; v_str "w" ]; [ v_str "v"; v_str "u" ]; [ v_str "w"; v_str "t" ] ])
      ]
  in
  let q, init = inflationary_query "C(v) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\n?- C(t)." db in
  Alcotest.check q_t "1/2 via w" Q.half (Exact_inflationary.eval q init)

let test_reachability_weighted () =
  (* Example 3.5 weights: v->w weight 1, v->u weight 3: Pr[w] = 1/4. *)
  let db =
    Database.of_list
      [ ("e", rel [ "x1"; "x2"; "x3" ] [ [ v_str "v"; v_str "w"; v_int 1 ]; [ v_str "v"; v_str "u"; v_int 3 ] ]) ]
  in
  let q, init =
    inflationary_query
      "C(v) :- .\nC2(<X>, Y) @W :- C(X), e(X, Y, W).\nC(Y) :- C2(X, Y).\n?- C(w)." db
  in
  Alcotest.check q_t "1/4" (Q.of_ints 1 4) (Exact_inflationary.eval q init)

let test_reachability_stats () =
  let q, init = inflationary_query reach_src fork_db in
  let p, stats = Exact_inflationary.eval_with_stats q init in
  Alcotest.check q_t "same result" Q.half p;
  Alcotest.(check bool) "two fixpoints" true (stats.Exact_inflationary.fixpoints = 2);
  Alcotest.(check bool) "visited > 2" true (stats.Exact_inflationary.states_visited > 2)

(* --- Example 3.5 in algebra form (C, Cold, repair-key over frontier) --- *)

let algebra_reachability_query db_edges target =
  (* Cold := C; C := C ∪ ρ_I π_J (repair-key_I@P((C − Cold) ⋈ E)). *)
  let fresh = P.Diff (P.Rel "C", P.Rel "Cold") in
  let choice =
    P.Rename
      ([ ("J", "I") ],
       P.Project ([ "J" ], P.repair_key ~weight:"P" [ "I" ] (P.Join (fresh, P.Rel "E"))))
  in
  let kernel =
    Prob.Interp.make
      [ ("Cold", P.Union (P.Rel "Cold", P.Rel "C"));
        ("C", P.Union (P.Rel "C", choice));
        Prob.Interp.unchanged "E"
      ]
  in
  let event = Event.make "C" [ v_str target ] in
  let init =
    Database.of_list
      [ ("C", rel [ "I" ] [ [ v_str "v" ] ]); ("Cold", Relation.empty [ "I" ]); ("E", db_edges) ]
  in
  (Inflationary.of_forever (Forever.make ~kernel ~event), init)

let test_algebra_reachability () =
  let edges =
    rel [ "I"; "J"; "P" ] [ [ v_str "v"; v_str "w"; v_int 1 ]; [ v_str "v"; v_str "u"; v_int 1 ] ]
  in
  let q, init = algebra_reachability_query edges "w" in
  Alcotest.check q_t "1/2 via algebra form" Q.half (Exact_inflationary.eval q init)

(* --- Example 3.6: unrestricted reuse drives probability to 1 ----------- *)

let test_unrestricted_reuse_gives_one () =
  (* C := C ∪ ρ_I(π_J(repair-key_I@P(C ⋈ E))) over E = {(a,b),(a,c)}:
     Pr[b ∈ C] = 1 because the self-loop world has vanishing probability. *)
  let edges = rel [ "I"; "J"; "P" ] [ [ v_str "a"; v_str "b"; v_int 1 ]; [ v_str "a"; v_str "c"; v_int 1 ] ] in
  let choice =
    P.Rename
      ([ ("J", "I") ], P.Project ([ "J" ], P.repair_key ~weight:"P" [ "I" ] (P.Join (P.Rel "C", P.Rel "E"))))
  in
  let kernel =
    Prob.Interp.make [ ("C", P.Union (P.Rel "C", choice)); Prob.Interp.unchanged "E" ]
  in
  let event = Event.make "C" [ v_str "b" ] in
  let init = Database.of_list [ ("C", rel [ "I" ] [ [ v_str "a" ] ]); ("E", edges) ] in
  let q = Inflationary.of_forever (Forever.make ~kernel ~event) in
  Alcotest.check q_t "Pr[b] = 1 (Example 3.6)" Q.one (Exact_inflationary.eval q init)

(* --- Diverging kernel detection ---------------------------------------- *)

let test_diverged_detection () =
  let kernel = Prob.Interp.make [ ("R", P.Rel "S"); ("S", P.Rel "S") ] in
  let event = Event.make "R" [ v_int 1 ] in
  let init = Database.of_list [ ("R", rel [ "A" ] [ [ v_int 1 ] ]); ("S", Relation.empty [ "A" ]) ] in
  let q = Inflationary.of_forever_unchecked (Forever.make ~kernel ~event) in
  try
    ignore (Exact_inflationary.eval q init);
    Alcotest.fail "expected Diverged"
  with Exact_inflationary.Diverged _ -> ()

(* --- c-table evaluation (Theorem 4.1 setting) -------------------------- *)

let test_ctable_inflationary () =
  (* R(X) :- A(X): A is a c-table with one boolean-guarded tuple. *)
  let parsed = parse "R(X) :- A(X). ?- R(t)." in
  let event = Option.get parsed.Parser.event in
  let ct =
    Prob.Ctable.make
      ~vars:[ Prob.Ctable.flag ~p:(Q.of_ints 1 4) "x" ]
      ~tables:
        [ ( "A",
            [ "x1" ],
            [ { Prob.Ctable.tuple = Tuple.of_list [ v_str "t" ];
                cond = Prob.Ctable.CEq (Prob.Ctable.TVar "x", Prob.Ctable.TLit (Value.Bool true)) }
            ] )
        ]
  in
  Alcotest.check q_t "1/4" (Q.of_ints 1 4)
    (Exact_inflationary.eval_ctable ~program:parsed.Parser.program ~event ct)

(* --- Sampling engine (Theorem 4.3) -------------------------------------- *)

let test_samples_needed () =
  (* Hoeffding: eps=0.1, delta=0.05 -> ln(40)/0.02 ≈ 185. *)
  let m = Sample_inflationary.samples_needed ~eps:0.1 ~delta:0.05 in
  Alcotest.(check bool) "near 185" true (m >= 180 && m <= 190);
  (* Quadratic in 1/eps. *)
  let m2 = Sample_inflationary.samples_needed ~eps:0.05 ~delta:0.05 in
  Alcotest.(check bool) "4x samples for eps/2" true (m2 >= (4 * m) - 4 && m2 <= (4 * m) + 4)

let test_sample_inflationary_close () =
  let q, init = inflationary_query reach_src fork_db in
  let rng = Random.State.make [| 1 |] in
  let p = Sample_inflationary.eval ~samples:4000 rng q init in
  Alcotest.(check bool) "close to 1/2" true (abs_float (p -. 0.5) < 0.05)

let test_sample_inflationary_ctable () =
  let parsed = parse "R(X) :- A(X). ?- R(t)." in
  let event = Option.get parsed.Parser.event in
  let ct =
    Prob.Ctable.make
      ~vars:[ Prob.Ctable.flag ~p:(Q.of_ints 1 4) "x" ]
      ~tables:
        [ ( "A",
            [ "x1" ],
            [ { Prob.Ctable.tuple = Tuple.of_list [ v_str "t" ];
                cond = Prob.Ctable.CEq (Prob.Ctable.TVar "x", Prob.Ctable.TLit (Value.Bool true)) }
            ] )
        ]
  in
  let sampler = Sample_inflationary.ctable_sampler ~program:parsed.Parser.program ct in
  let kernel, _ =
    Compile.inflationary_kernel parsed.Parser.program (sampler (Random.State.make [| 0 |]))
  in
  let q = Inflationary.of_forever_unchecked (Forever.make ~kernel ~event) in
  let rng = Random.State.make [| 2 |] in
  let p = Sample_inflationary.eval ~init_sampler:sampler ~samples:4000 rng q Database.empty in
  Alcotest.(check bool) "close to 1/4" true (abs_float (p -. 0.25) < 0.05)

(* --- Non-inflationary exact (Prop 5.4 / Thm 5.5) ------------------------ *)

(* Random walk over a, b where b has a self-loop:
   a -> b; b -> a (w 1), b -> b (w 1).  Stationary: (1/3, 2/3). *)
let walk_src = "?C(Y) @W :- C(X), e(X, Y, W).\n?- C(b)."

let walk_db =
  Database.of_list
    [ ("C", rel [ "x1" ] [ [ v_str "a" ] ]);
      ("e",
       rel [ "x1"; "x2"; "x3" ]
         [ [ v_str "a"; v_str "b"; v_int 1 ];
           [ v_str "b"; v_str "a"; v_int 1 ];
           [ v_str "b"; v_str "b"; v_int 1 ]
         ])
    ]

let test_noninflationary_walk () =
  let q, init = noninflationary_query walk_src walk_db in
  Alcotest.check q_t "stationary mass 2/3" (Q.of_ints 2 3) (Exact_noninflationary.eval q init)

let test_noninflationary_analysis () =
  let q, init = noninflationary_query walk_src walk_db in
  let a = Exact_noninflationary.analyse q init in
  Alcotest.(check int) "2 states" 2 a.Exact_noninflationary.num_states;
  Alcotest.(check bool) "irreducible" true a.Exact_noninflationary.irreducible;
  Alcotest.(check bool) "ergodic" true a.Exact_noninflationary.ergodic

let test_noninflationary_absorbing () =
  (* start -> l or r (uniform); l and r absorb (self-loops). *)
  let db =
    Database.of_list
      [ ("C", rel [ "x1" ] [ [ v_str "s" ] ]);
        ("e",
         rel [ "x1"; "x2"; "x3" ]
           [ [ v_str "s"; v_str "l"; v_int 1 ];
             [ v_str "s"; v_str "r"; v_int 3 ];
             [ v_str "l"; v_str "l"; v_int 1 ];
             [ v_str "r"; v_str "r"; v_int 1 ]
           ])
      ]
  in
  let q, init = noninflationary_query "?C(Y) @W :- C(X), e(X, Y, W).\n?- C(r)." db in
  let a = Exact_noninflationary.analyse q init in
  Alcotest.(check bool) "not irreducible" false a.Exact_noninflationary.irreducible;
  Alcotest.check q_t "absorbed right w.p. 3/4" (Q.of_ints 3 4) a.Exact_noninflationary.result

let test_noninflationary_periodic () =
  (* Two-cycle a <-> b: periodic, irreducible; time-average of C(b) is 1/2. *)
  let db =
    Database.of_list
      [ ("C", rel [ "x1" ] [ [ v_str "a" ] ]);
        ("e", rel [ "x1"; "x2"; "x3" ] [ [ v_str "a"; v_str "b"; v_int 1 ]; [ v_str "b"; v_str "a"; v_int 1 ] ])
      ]
  in
  let q, init = noninflationary_query walk_src db in
  Alcotest.check q_t "half by time average" Q.half (Exact_noninflationary.eval q init)

let test_noninflationary_resampling_coin () =
  (* A(<X>) :- base(X): each step re-flips; long-run Pr[A = {h}] = 1/2. *)
  let db = Database.of_list [ ("base", rel [ "x1" ] [ [ v_str "h" ]; [ v_str "t" ] ]) ] in
  let q, init = noninflationary_query "?A(X) :- base(X). ?- A(h)." db in
  Alcotest.check q_t "1/2" Q.half (Exact_noninflationary.eval q init)

let test_max_states_guard () =
  let q, init = noninflationary_query walk_src walk_db in
  try
    ignore (Exact_noninflationary.eval ~max_states:1 q init);
    Alcotest.fail "expected Chain_error"
  with Markov.Chain.Chain_error _ -> ()

(* --- Non-inflationary sampling (Thm 5.6) -------------------------------- *)

let test_sample_noninflationary () =
  let q, init = noninflationary_query walk_src walk_db in
  let rng = Random.State.make [| 3 |] in
  let burn_in =
    match Sample_noninflationary.estimate_burn_in ~eps:0.01 q init with
    | Some t -> t
    | None -> Alcotest.fail "walk chain should mix"
  in
  Alcotest.(check bool) "small burn-in" true (burn_in < 100);
  let p = Sample_noninflationary.eval rng ~burn_in ~samples:4000 q init in
  Alcotest.(check bool) "close to 2/3" true (abs_float (p -. (2. /. 3.)) < 0.05)

let test_sample_time_average () =
  let q, init = noninflationary_query walk_src walk_db in
  let rng = Random.State.make [| 4 |] in
  let p = Sample_noninflationary.eval_time_average rng ~steps:50_000 q init in
  Alcotest.(check bool) "time average close to 2/3" true (abs_float (p -. (2. /. 3.)) < 0.03)

(* --- Partitioning (§5.1) ------------------------------------------------ *)

let disjoint_db =
  (* Two disconnected components {a,b} and {c,d}. *)
  Database.of_list
    [ ("C", rel [ "x1" ] [ [ v_str "a" ] ]);
      ("e",
       rel [ "x1"; "x2"; "x3" ]
         [ [ v_str "a"; v_str "b"; v_int 1 ];
           [ v_str "b"; v_str "a"; v_int 1 ];
           [ v_str "c"; v_str "d"; v_int 1 ];
           [ v_str "d"; v_str "c"; v_int 1 ]
         ])
    ]

let test_partition_classes () =
  let parsed = parse walk_src in
  let parts = Partition.classes parsed.Parser.program disjoint_db in
  (* The start tuple and the a/b edges interact; the two c/d edges never
     co-fire with anything, so each stays a singleton class. *)
  Alcotest.(check int) "3 classes" 3 (List.length parts);
  let sizes = List.sort Int.compare (List.map List.length parts) in
  Alcotest.(check (list int)) "sizes" [ 1; 1; 3 ] sizes

let test_partition_agrees_with_direct () =
  let parsed = parse walk_src in
  let event = Option.get parsed.Parser.event in
  let direct =
    let kernel, init = Compile.noninflationary_kernel parsed.Parser.program disjoint_db in
    Exact_noninflationary.eval (Forever.make ~kernel ~event) init
  in
  let partitioned = Partition.eval_noninflationary parsed.Parser.program disjoint_db event in
  Alcotest.check q_t "same answer" direct partitioned

let test_partition_saturate () =
  let parsed = parse "R(Y) :- R(X), e(X, Y). R(a) :- ." in
  let db = Database.of_list [ ("e", rel [ "x1"; "x2" ] [ [ v_str "a"; v_str "b" ] ]) ] in
  let facts = Partition.saturate parsed.Parser.program db in
  let derived_b =
    List.exists (fun (p, t, _) -> String.equal p "R" && Tuple.equal t (Tuple.of_list [ v_str "b" ])) facts
  in
  Alcotest.(check bool) "R(b) derived" true derived_b

(* --- Lumped evaluation and hitting times --------------------------------- *)

let test_eval_lumped_agrees () =
  let q, init = noninflationary_query walk_src walk_db in
  Alcotest.check q_t "lumped = direct" (Exact_noninflationary.eval q init)
    (Exact_noninflationary.eval_lumped q init)

let test_eval_lumped_glauber () =
  (* The 72-state Glauber chain lumps dramatically under the colour event
     and gives the same exact answer. *)
  let kernel, db =
    Workload.Coloring.glauber
      ~edges:[ (0, 1); (1, 2); (0, 2) ]
      ~num_nodes:3 ~colors:[ "c1"; "c2"; "c3"; "c4" ]
      ~initial:[ (0, "c1"); (1, "c2"); (2, "c3") ]
  in
  let event = Workload.Coloring.color_event ~node:0 ~color:"c1" in
  let q = Forever.make ~kernel ~event in
  Alcotest.check q_t "lumped Glauber = 1/4" (Q.of_ints 1 4)
    (Exact_noninflationary.eval_lumped q db)

let test_expected_hitting_time () =
  (* Walk a -> b (certain), b -> a/b half: from a, E[reach b] = 1. *)
  let q, init = noninflationary_query walk_src walk_db in
  (match Exact_noninflationary.expected_hitting_time q init with
   | Some t -> Alcotest.check q_t "one step to b" Q.one t
   | None -> Alcotest.fail "expected finite hitting time");
  (* Event already true initially: 0. *)
  let q0, init0 = noninflationary_query "?C(Y) @W :- C(X), e(X, Y, W).\n?- C(a)." walk_db in
  match Exact_noninflationary.expected_hitting_time q0 init0 with
  | Some t -> Alcotest.check q_t "already there" Q.zero t
  | None -> Alcotest.fail "expected 0"

let test_hitting_time_unreachable () =
  (* Event on a node that the walk can never occupy. *)
  let q, init = noninflationary_query "?C(Y) @W :- C(X), e(X, Y, W).\n?- C(zzz)." walk_db in
  Alcotest.(check bool) "no event states" true
    (Option.is_none (Exact_noninflationary.expected_hitting_time q init))

let test_eval_events_shared_chain () =
  (* The full stationary distribution of the walk in one chain build. *)
  let parsed = parse walk_src in
  let kernel, init = Compile.noninflationary_kernel parsed.Parser.program walk_db in
  let events = [ Event.make "C" [ v_str "a" ]; Event.make "C" [ v_str "b" ] ] in
  let results = Exact_noninflationary.eval_events ~kernel ~events init in
  Alcotest.check q_t "pi(a)" (Q.of_ints 1 3) (List.assoc (List.nth events 0) results);
  Alcotest.check q_t "pi(b)" (Q.of_ints 2 3) (List.assoc (List.nth events 1) results);
  Alcotest.check q_t "masses sum to 1" Q.one (Q.sum (List.map snd results))

let test_eval_events_absorbing () =
  (* Multi-event over a reducible chain: shares the Thm 5.5 decomposition. *)
  let db =
    Database.of_list
      [ ("C", rel [ "x1" ] [ [ v_str "s" ] ]);
        ("e",
         rel [ "x1"; "x2"; "x3" ]
           [ [ v_str "s"; v_str "l"; v_int 1 ]; [ v_str "s"; v_str "r"; v_int 3 ];
             [ v_str "l"; v_str "l"; v_int 1 ]; [ v_str "r"; v_str "r"; v_int 1 ]
           ])
      ]
  in
  let parsed = parse "?C(Y) @W :- C(X), e(X, Y, W).\n?- C(l)." in
  let kernel, init = Compile.noninflationary_kernel parsed.Parser.program db in
  let events = [ Event.make "C" [ v_str "l" ]; Event.make "C" [ v_str "r" ]; Event.make "C" [ v_str "s" ] ] in
  let results = Exact_noninflationary.eval_events ~kernel ~events init in
  Alcotest.check q_t "left 1/4" (Q.of_ints 1 4) (List.nth results 0 |> snd);
  Alcotest.check q_t "right 3/4" (Q.of_ints 3 4) (List.nth results 1 |> snd);
  Alcotest.check q_t "transient 0" Q.zero (List.nth results 2 |> snd)

let test_parser_multiple_events () =
  let p = parse "e(a).\n?- e(a).\n?- e(b)." in
  Alcotest.(check int) "two events" 2 (List.length p.Parser.events);
  Alcotest.(check bool) "first is event" true (Option.is_some p.Parser.event)

(* --- pc-table macro semantics (Section 3.1/3.3) -------------------------- *)

let coin_src =
  "var x = { true: 1/3, false: 2/3 }.\nside(heads) when x = true.\nside(tails) when x != true.\nSeen(X) :- side(X).\n?- Seen(heads)."

let test_pctable_inflationary_once () =
  (* Inflationary: the coin is flipped once. *)
  let r = Engine.run ~semantics:Engine.Inflationary ~method_:Engine.Exact (parse coin_src) in
  match r.Engine.exact with
  | Some p -> Alcotest.check q_t "one flip: 1/3" (Q.of_ints 1 3) p
  | None -> Alcotest.fail "exact expected"

let test_pctable_noninflationary_resampled () =
  (* Non-inflationary: re-flipped forever; stationary probability 1/3. *)
  let r = Engine.run ~semantics:Engine.Noninflationary ~method_:Engine.Exact (parse coin_src) in
  match r.Engine.exact with
  | Some p -> Alcotest.check q_t "resampled: 1/3" (Q.of_ints 1 3) p
  | None -> Alcotest.fail "exact expected"

let test_pctable_latch_distinguishes_semantics () =
  (* Done latches: inflationary = 1/4 (one draw), noninflationary = 1
     (eventually a draw succeeds) — the Thm 5.1 mechanism. *)
  let src =
    "var x = { true: 1/4, false: 3/4 }.\nhit(a) when x = true.\nDone(X) :- hit(X).\nDone(X) :- Done(X).\n?- Done(a)."
  in
  let inf = Engine.run ~semantics:Engine.Inflationary ~method_:Engine.Exact (parse src) in
  let noninf = Engine.run ~semantics:Engine.Noninflationary ~method_:Engine.Exact (parse src) in
  Alcotest.check q_t "inflationary 1/4" (Q.of_ints 1 4) (Option.get inf.Engine.exact);
  Alcotest.check q_t "noninflationary 1" Q.one (Option.get noninf.Engine.exact)

let test_pctable_uncertain_line_cli_path () =
  let src =
    "var e1 = { true: 1/2, false: 1/2 }.\nvar e2 = { true: 1/2, false: 1/2 }.\n\
     edge(v0, v1) when e1 = true.\nedge(v1, v2) when e2 = true.\n\
     R(v0) :- .\nR(Y) :- R(X), edge(X, Y).\n?- R(v2)."
  in
  let r = Engine.run ~semantics:Engine.Inflationary ~method_:Engine.Exact (parse src) in
  Alcotest.check q_t "1/4" (Q.of_ints 1 4) (Option.get r.Engine.exact);
  let s = Engine.run ~seed:3 ~semantics:Engine.Inflationary
      ~method_:(Engine.Sampling { eps = 0.05; delta = 0.05; burn_in = 0 }) (parse src)
  in
  Alcotest.(check bool) "sampled close" true (abs_float (s.Engine.probability -. 0.25) < 0.05)

let test_pctable_macro_kernel_direct () =
  (* Direct use of the macro expansion: two-valued variable over a
     three-valued domain relation. *)
  let ct =
    Prob.Ctable.make
      ~vars:[ { Prob.Ctable.vname = "x"; domain = [ (v_int 1, Q.of_ints 1 4); (v_int 2, Q.of_ints 3 4) ] } ]
      ~tables:
        [ ( "A",
            [ "x1" ],
            [ { Prob.Ctable.tuple = Tuple.of_list [ v_str "one" ];
                cond = Prob.Ctable.CEq (Prob.Ctable.TVar "x", Prob.Ctable.TLit (v_int 1)) };
              { Prob.Ctable.tuple = Tuple.of_list [ v_str "two" ];
                cond = Prob.Ctable.CNeq (Prob.Ctable.TVar "x", Prob.Ctable.TLit (v_int 1)) }
            ] )
        ]
  in
  let kernel, init = Compile.noninflationary_kernel_ctable [] ct in
  (* Empty program: the chain just re-samples A forever. *)
  let q = Forever.make ~kernel ~event:(Event.make "A" [ v_str "one" ]) in
  Alcotest.check q_t "stationary 1/4" (Q.of_ints 1 4) (Exact_noninflationary.eval q init)

(* --- Engine front-end ---------------------------------------------------- *)

let test_engine_exact_inflationary () =
  let parsed = parse "C(v) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\ne(v, w).\ne(v, u).\n?- C(w)." in
  let r = Engine.run ~semantics:Engine.Inflationary ~method_:Engine.Exact parsed in
  (match r.Engine.exact with
   | Some p -> Alcotest.check q_t "1/2" Q.half p
   | None -> Alcotest.fail "exact expected");
  Alcotest.(check bool) "diagnostics" true (List.mem_assoc "states visited" r.Engine.diagnostics)

let test_engine_exact_noninflationary () =
  let parsed =
    parse
      "?C(Y) @W :- C(X), e(X, Y, W).\nC(a).\ne(a, b, 1).\ne(b, a, 1).\ne(b, b, 1).\n?- C(b)."
  in
  let r = Engine.run ~semantics:Engine.Noninflationary ~method_:Engine.Exact parsed in
  match r.Engine.exact with
  | Some p -> Alcotest.check q_t "2/3" (Q.of_ints 2 3) p
  | None -> Alcotest.fail "exact expected"

let test_engine_sampling () =
  let parsed = parse "C(v) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\ne(v, w).\ne(v, u).\n?- C(w)." in
  let r =
    Engine.run ~seed:5 ~semantics:Engine.Inflationary
      ~method_:(Engine.Sampling { eps = 0.05; delta = 0.05; burn_in = 0 })
      parsed
  in
  Alcotest.(check bool) "close to 1/2" true (abs_float (r.Engine.probability -. 0.5) < 0.05)

let test_engine_missing_event () =
  let parsed = parse "e(a, b)." in
  try
    ignore (Engine.run ~semantics:Engine.Inflationary ~method_:Engine.Exact parsed);
    Alcotest.fail "expected Engine_error"
  with Engine.Engine_error _ -> ()

(* --- Negation end-to-end ------------------------------------------------ *)

let test_negation_frontier_reachability () =
  (* Example 3.5's frontier written purely in datalog via negation. *)
  let src =
    "C(v) :- .\n\
     Cold(X) :- C(X).\n\
     F(X) :- C(X), !Cold(X).\n\
     C2(<X>, Y) :- F(X), e(X, Y).\n\
     C(Y) :- C2(X, Y).\n\
     ?- C(w)."
  in
  let q, init = inflationary_query src fork_db in
  Alcotest.check q_t "frontier form gives 1/2" Q.half (Exact_inflationary.eval q init)

let test_negation_noninflationary_alternation () =
  (* ?C(Y) :- v(Y), !C(Y): jump to a node the walker is NOT at.  On two
     nodes the walk alternates; time-average of C(b) is 1/2. *)
  let db =
    Database.of_list
      [ ("v", rel [ "x1" ] [ [ v_str "a" ]; [ v_str "b" ] ]);
        ("C", rel [ "x1" ] [ [ v_str "a" ] ])
      ]
  in
  let q, init = noninflationary_query "?C(Y) :- v(Y), !C(Y). ?- C(b)." db in
  Alcotest.check q_t "alternating walk" Q.half (Exact_noninflationary.eval q init)

let test_negation_disables_partitioning () =
  let parsed = parse "?C(Y) :- v(Y), !C(Y). ?- C(b)." in
  let db =
    Database.of_list
      [ ("v", rel [ "x1" ] [ [ v_str "a" ]; [ v_str "b" ] ]);
        ("C", rel [ "x1" ] [ [ v_str "a" ] ])
      ]
  in
  let parts = Partition.classes parsed.Parser.program db in
  Alcotest.(check int) "single class" 1 (List.length parts);
  (* And the partitioned evaluation still agrees (it is just direct). *)
  let event = Option.get parsed.Parser.event in
  Alcotest.check q_t "partitioned = direct" Q.half
    (Partition.eval_noninflationary parsed.Parser.program db event)

(* --- Domain-parallel sampling (Pool) ------------------------------------ *)

let test_pool_map_tasks () =
  let expected = Array.init 37 (fun i -> i * i) in
  List.iter
    (fun d ->
      let got = Pool.map_tasks ~domains:d (Array.init 37 (fun i () -> i * i)) in
      Alcotest.(check (array int)) "results in task order" expected got)
    [ 1; 2; 4; 64 ]

let test_pool_count_hits_deterministic () =
  let run rng = Random.State.float rng 1.0 < 0.3 in
  let hits d = Pool.count_hits ~domains:d ~samples:500 (Random.State.make [| 9 |]) run in
  let h1 = hits 1 in
  Alcotest.(check bool) "plausible count" true (h1 > 80 && h1 < 230);
  List.iter
    (fun d -> Alcotest.(check int) (Printf.sprintf "domains=%d same count" d) h1 (hits d))
    [ 2; 3; 4; 8 ]

let test_par_inflationary_deterministic () =
  let q, init = inflationary_query reach_src fork_db in
  let est d seed =
    Sample_inflationary.eval_par ~domains:d ~samples:400 (Random.State.make [| seed |]) q init
  in
  let e = est 1 3 in
  Alcotest.(check (float 0.0)) "rerun bit-identical" e (est 1 3);
  Alcotest.(check (float 0.0)) "domains=2 identical" e (est 2 3);
  Alcotest.(check (float 0.0)) "domains=4 identical" e (est 4 3);
  Alcotest.(check (float 0.1)) "near exact 1/2" 0.5 e

let test_par_noninflationary_deterministic () =
  (* Fresh uniform choice between a and b every step: long-run Pr[C(b)] = 1/2. *)
  let db =
    Database.of_list
      [ ("v", rel [ "x1"; "x2" ] [ [ v_str "a"; v_int 1 ]; [ v_str "b"; v_int 1 ] ]);
        ("C", rel [ "x1" ] [ [ v_str "a" ] ])
      ]
  in
  let q, init = noninflationary_query "?C(Y) @W :- v(Y, W). ?- C(b)." db in
  let est d =
    Sample_noninflationary.eval_par (Random.State.make [| 5 |]) ~domains:d ~burn_in:7
      ~samples:400 q init
  in
  let e = est 1 in
  Alcotest.(check (float 0.0)) "domains=2 identical" e (est 2);
  Alcotest.(check (float 0.0)) "domains=4 identical" e (est 4);
  Alcotest.(check (float 0.1)) "near exact 1/2" 0.5 e

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_pool_worker_error () =
  (* A run function that starts failing after 7 calls: the pool must surface
     the failure as Worker_error with the shard id and its completed count,
     not let the raw exception escape an anonymous domain. *)
  List.iter
    (fun domains ->
      let calls = Atomic.make 0 in
      let run rng =
        ignore (Random.State.bits rng);
        if Atomic.fetch_and_add calls 1 >= 7 then failwith "boom";
        true
      in
      try
        ignore (Pool.count_hits ~domains ~samples:40 (Random.State.make [| 1 |]) run);
        Alcotest.fail "expected Worker_error"
      with Pool.Worker_error { shard; completed; exn = Failure _; _ } ->
        Alcotest.(check bool) "shard in range" true (shard >= 0 && shard < 32);
        Alcotest.(check bool) "completed below shard size" true (completed >= 0 && completed <= 2);
        if domains = 1 then begin
          (* Sequential execution is deterministic: 40 samples over 32 shards
             give shards 0-7 two samples each, so call 8 (index 7) is shard
             3's second sample. *)
          Alcotest.(check int) "shard 3" 3 shard;
          Alcotest.(check int) "one sample completed" 1 completed
        end)
    [ 1; 4 ]

let test_pool_parity_edges () =
  (* samples < 32 collapses to one shard per sample; samples = 1 is the
     degenerate single-shard case. *)
  List.iter
    (fun samples ->
      let run rng = Random.State.float rng 1.0 < 0.37 in
      let hits d = Pool.count_hits ~domains:d ~samples (Random.State.make [| 13 |]) run in
      let h = hits 1 in
      List.iter
        (fun d ->
          Alcotest.(check int) (Printf.sprintf "samples=%d domains=%d" samples d) h (hits d))
        [ 2; 4 ])
    [ 1; 5; 31; 32; 33 ]

let prop_pool_parity =
  QCheck.Test.make ~name:"count_hits: fixed seed gives equal hits at domains 1/2/4" ~count:60
    (QCheck.make
       ~print:(fun (s, seed) -> Printf.sprintf "samples=%d seed=%d" s seed)
       QCheck.Gen.(pair (int_range 1 80) (int_bound 1000)))
    (fun (samples, seed) ->
      let run rng = Random.State.float rng 1.0 < 0.37 in
      let hits d = Pool.count_hits ~domains:d ~samples (Random.State.make [| seed |]) run in
      let h = hits 1 in
      h = hits 2 && h = hits 4)

let test_engine_domains_deterministic () =
  let parsed =
    parse
      "e(v, w).\ne(v, u).\nC(v) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\n?- C(w)."
  in
  let run d =
    Engine.run ~seed:11 ~domains:d ~semantics:Engine.Inflationary
      ~method_:(Engine.Sampling { eps = 0.1; delta = 0.1; burn_in = 0 })
      parsed
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check (float 0.0)) "1 vs 4 domains identical" r1.Engine.probability
    r4.Engine.probability;
  Alcotest.(check (option string)) "diagnostics report domains" (Some "4")
    (List.assoc_opt "domains" r4.Engine.diagnostics)

(* --- compiled plans vs interpreted kernel ------------------------------- *)

let test_analyse_lumped_diagnostics () =
  let q, init = noninflationary_query walk_src walk_db in
  let a = Exact_noninflationary.analyse_lumped q init in
  Alcotest.check q_t "lumped_result = eval_lumped" (Exact_noninflationary.eval_lumped q init)
    a.Exact_noninflationary.lumped_result;
  Alcotest.(check bool) "lumping never grows the chain" true
    (a.Exact_noninflationary.states_after <= a.Exact_noninflationary.states_before);
  Alcotest.(check int) "walk chain has 2 states" 2 a.Exact_noninflationary.states_before

let test_engine_lumped_diagnostics () =
  let parsed =
    parse
      "?C(Y) @W :- C(X), e(X, Y, W).\nC(a).\ne(a, b, 1).\ne(b, a, 1).\ne(b, b, 1).\n?- C(b)."
  in
  let r = Engine.run ~semantics:Engine.Noninflationary ~method_:Engine.Exact_lumped parsed in
  (match r.Engine.exact with
   | Some p -> Alcotest.check q_t "2/3" (Q.of_ints 2 3) p
   | None -> Alcotest.fail "exact expected");
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " reported") true (List.mem_assoc k r.Engine.diagnostics))
    [ "chain states"; "lumped classes"; "lumped" ]

let test_engine_plan_vs_interpreted () =
  (* The plan flag is pure mechanism: every engine gives the same exact
     rational, and every sampler the same fixed-seed estimate. *)
  let inf = parse "C(v) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\ne(v, w).\ne(v, u).\n?- C(w)." in
  let noninf =
    parse "?C(Y) @W :- C(X), e(X, Y, W).\nC(a).\ne(a, b, 1).\ne(b, a, 1).\ne(b, b, 1).\n?- C(b)."
  in
  let check_exact name ~semantics ~method_ parsed =
    let run plan = Engine.run ~plan ~semantics ~method_ parsed in
    let a = run true and b = run false in
    Alcotest.check q_t name (Option.get b.Engine.exact) (Option.get a.Engine.exact)
  in
  check_exact "inflationary exact" ~semantics:Engine.Inflationary ~method_:Engine.Exact inf;
  check_exact "noninflationary exact" ~semantics:Engine.Noninflationary ~method_:Engine.Exact
    noninf;
  check_exact "noninflationary lumped" ~semantics:Engine.Noninflationary
    ~method_:Engine.Exact_lumped noninf;
  let sampling = Engine.Sampling { eps = 0.1; delta = 0.1; burn_in = 8 } in
  let check_sampled name ?domains ~semantics parsed =
    let run plan = Engine.run ~plan ~seed:13 ?domains ~semantics ~method_:sampling parsed in
    Alcotest.(check (float 0.0)) name (run false).Engine.probability (run true).Engine.probability
  in
  check_sampled "inflationary sampling" ~semantics:Engine.Inflationary inf;
  check_sampled "noninflationary sampling" ~semantics:Engine.Noninflationary noninf;
  check_sampled "inflationary sampling, 2 domains" ~domains:2 ~semantics:Engine.Inflationary inf;
  check_sampled "noninflationary sampling, 4 domains" ~domains:4 ~semantics:Engine.Noninflationary
    noninf;
  let r = Engine.run ~semantics:Engine.Inflationary ~method_:Engine.Exact inf in
  Alcotest.(check (option string)) "plan diagnostic on by default" (Some "true")
    (List.assoc_opt "plan" r.Engine.diagnostics)

(* --- Time-average burn-in (satellite of the metrics layer PR) ----------- *)

(* A deterministic transient prefix s0 -> s1 feeding an ergodic closed class
   {s2, s3}: the event C(s1) holds exactly once, at step 1, so its long-run
   probability is 0 and any averaging window that counts the prefix is
   measurably biased — deterministically so, whatever the seed. *)
let transient_src = "?C(Y) @W :- C(X), e(X, Y, W).\n?- C(s1)."

let transient_db =
  Database.of_list
    [ ("C", rel [ "x1" ] [ [ v_str "s0" ] ]);
      ("e",
       rel [ "x1"; "x2"; "x3" ]
         [ [ v_str "s0"; v_str "s1"; v_int 1 ];
           [ v_str "s1"; v_str "s2"; v_int 1 ];
           [ v_str "s2"; v_str "s3"; v_int 1 ];
           [ v_str "s2"; v_str "s2"; v_int 1 ];
           [ v_str "s3"; v_str "s2"; v_int 1 ]
         ])
    ]

let test_time_average_burn_in () =
  let q, init = noninflationary_query transient_src transient_db in
  let exact = (Exact_noninflationary.analyse q init).Exact_noninflationary.result in
  Alcotest.check q_t "long-run mass is 0" Q.zero exact;
  let biased =
    Sample_noninflationary.eval_time_average (Random.State.make [| 7 |]) ~steps:8 q init
  in
  Alcotest.(check (float 0.0)) "window counts the transient visit" 0.125 biased;
  let corrected =
    Sample_noninflationary.eval_time_average (Random.State.make [| 7 |]) ~burn_in:2 ~steps:8 q
      init
  in
  Alcotest.(check (float 0.0)) "burn-in discounts the prefix" 0.0 corrected

let transient_engine_src =
  "?C(Y) @W :- C(X), e(X, Y, W).\nC(s0).\ne(s0, s1, 1).\ne(s1, s2, 1).\ne(s2, s3, 1).\n\
   e(s2, s2, 1).\ne(s3, s2, 1).\n?- C(s1)."

let test_engine_time_average () =
  let parsed = parse transient_engine_src in
  let run burn_in =
    (Engine.run ~seed:7 ~semantics:Engine.Noninflationary
       ~method_:(Engine.Time_average { steps = 8; burn_in })
       parsed)
      .Engine.probability
  in
  Alcotest.(check (float 0.0)) "no burn-in counts the prefix" 0.125 (run 0);
  Alcotest.(check (float 0.0)) "burn-in corrects the bias" 0.0 (run 2)

(* --- Divergence surfacing at the engine boundary ------------------------ *)

let divergent_src =
  "C(v) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\ne(v, w).\ne(v, u).\n?- C(w)."

let test_engine_divergence_sequential () =
  let parsed = parse divergent_src in
  try
    ignore
      (Engine.run ~seed:1 ~max_steps:1 ~semantics:Engine.Inflationary
         ~method_:(Engine.Sampling { eps = 0.1; delta = 0.1; burn_in = 0 })
         parsed);
    Alcotest.fail "expected Engine_error"
  with Engine.Engine_error msg ->
    Alcotest.(check bool) "names the sequential sampler" true (contains msg "sequential sampler");
    Alcotest.(check bool) "names the step bound" true (contains msg "1 steps")

let test_engine_divergence_parallel () =
  let parsed = parse divergent_src in
  try
    ignore
      (Engine.run ~seed:1 ~max_steps:1 ~domains:4 ~semantics:Engine.Inflationary
         ~method_:(Engine.Sampling { eps = 0.1; delta = 0.1; burn_in = 0 })
         parsed);
    Alcotest.fail "expected Engine_error"
  with Engine.Engine_error msg ->
    Alcotest.(check bool) "names the shard" true (contains msg "shard");
    Alcotest.(check bool) "reports samples completed" true (contains msg "samples completed")

(* --- Structured run reports --------------------------------------------- *)

let test_engine_stats_report () =
  let parsed =
    parse "?C(Y) @W :- C(X), e(X, Y, W).\nC(a).\ne(a, b, 1).\ne(b, a, 1).\ne(b, b, 1).\n?- C(b)."
  in
  let off = Engine.run ~semantics:Engine.Noninflationary ~method_:Engine.Exact parsed in
  Alcotest.(check bool) "no stats unless requested" true (off.Engine.stats = None);
  let r = Engine.run ~stats:true ~semantics:Engine.Noninflationary ~method_:Engine.Exact parsed in
  match r.Engine.stats with
  | None -> Alcotest.fail "stats requested but absent"
  | Some s ->
    Alcotest.(check string) "engine name" "exact-noninflationary" s.Engine.engine;
    Alcotest.(check bool) "counts kernel steps" true (s.Engine.steps > 0);
    Alcotest.(check bool) "counts interned states" true (s.Engine.states > 0);
    Alcotest.(check bool) "per-phase table" true (s.Engine.phases <> []);
    Alcotest.(check bool) "per-operator table" true (s.Engine.operators <> []);
    Alcotest.(check bool) "elapsed measured" true (s.Engine.elapsed_ms >= 0.0);
    (* The answer itself must be unaffected by instrumentation. *)
    Alcotest.(check bool) "same exact answer" true
      (Option.equal Q.equal off.Engine.exact r.Engine.exact)

let () =
  Alcotest.run "eval"
    [ ( "exact-inflationary",
        [ Alcotest.test_case "fork 1/2 (Ex 3.9)" `Quick test_reachability_fork;
          Alcotest.test_case "line certain" `Quick test_reachability_line;
          Alcotest.test_case "two hops" `Quick test_reachability_two_hops;
          Alcotest.test_case "weighted 1/4" `Quick test_reachability_weighted;
          Alcotest.test_case "stats" `Quick test_reachability_stats;
          Alcotest.test_case "algebra form (Ex 3.5)" `Quick test_algebra_reachability;
          Alcotest.test_case "unrestricted reuse (Ex 3.6)" `Quick test_unrestricted_reuse_gives_one;
          Alcotest.test_case "diverged detection" `Quick test_diverged_detection;
          Alcotest.test_case "ctable input" `Quick test_ctable_inflationary
        ] );
      ( "sample-inflationary",
        [ Alcotest.test_case "samples needed" `Quick test_samples_needed;
          Alcotest.test_case "close to exact" `Slow test_sample_inflationary_close;
          Alcotest.test_case "ctable sampler" `Slow test_sample_inflationary_ctable
        ] );
      ( "exact-noninflationary",
        [ Alcotest.test_case "walk stationary (Ex 3.3)" `Quick test_noninflationary_walk;
          Alcotest.test_case "analysis" `Quick test_noninflationary_analysis;
          Alcotest.test_case "absorbing (Thm 5.5)" `Quick test_noninflationary_absorbing;
          Alcotest.test_case "periodic time-average" `Quick test_noninflationary_periodic;
          Alcotest.test_case "resampling coin" `Quick test_noninflationary_resampling_coin;
          Alcotest.test_case "max_states guard" `Quick test_max_states_guard
        ] );
      ( "sample-noninflationary",
        [ Alcotest.test_case "mixing + estimate" `Slow test_sample_noninflationary;
          Alcotest.test_case "time average" `Slow test_sample_time_average
        ] );
      ( "partition",
        [ Alcotest.test_case "classes" `Quick test_partition_classes;
          Alcotest.test_case "agrees with direct" `Quick test_partition_agrees_with_direct;
          Alcotest.test_case "saturation" `Quick test_partition_saturate
        ] );
      ( "negation",
        [ Alcotest.test_case "frontier reachability" `Quick test_negation_frontier_reachability;
          Alcotest.test_case "alternating walk" `Quick test_negation_noninflationary_alternation;
          Alcotest.test_case "disables partitioning" `Quick test_negation_disables_partitioning
        ] );
      ( "multi-event",
        [ Alcotest.test_case "shared chain" `Quick test_eval_events_shared_chain;
          Alcotest.test_case "absorbing decomposition" `Quick test_eval_events_absorbing;
          Alcotest.test_case "parser collects" `Quick test_parser_multiple_events
        ] );
      ( "lumping+hitting",
        [ Alcotest.test_case "lumped agrees" `Quick test_eval_lumped_agrees;
          Alcotest.test_case "lumped Glauber" `Slow test_eval_lumped_glauber;
          Alcotest.test_case "expected hitting time" `Quick test_expected_hitting_time;
          Alcotest.test_case "unreachable event" `Quick test_hitting_time_unreachable
        ] );
      ( "pc-table",
        [ Alcotest.test_case "inflationary flips once" `Quick test_pctable_inflationary_once;
          Alcotest.test_case "noninflationary resamples" `Quick test_pctable_noninflationary_resampled;
          Alcotest.test_case "latch distinguishes semantics" `Quick test_pctable_latch_distinguishes_semantics;
          Alcotest.test_case "uncertain line via engine" `Slow test_pctable_uncertain_line_cli_path;
          Alcotest.test_case "macro kernel direct" `Quick test_pctable_macro_kernel_direct
        ] );
      ( "pool",
        [ Alcotest.test_case "map_tasks order" `Quick test_pool_map_tasks;
          Alcotest.test_case "count_hits deterministic" `Quick test_pool_count_hits_deterministic;
          Alcotest.test_case "worker error surfaces shard" `Quick test_pool_worker_error;
          Alcotest.test_case "parity at sub-shard sizes" `Quick test_pool_parity_edges;
          QCheck_alcotest.to_alcotest prop_pool_parity;
          Alcotest.test_case "inflationary par deterministic" `Slow
            test_par_inflationary_deterministic;
          Alcotest.test_case "noninflationary par deterministic" `Slow
            test_par_noninflationary_deterministic;
          Alcotest.test_case "engine domains deterministic" `Slow
            test_engine_domains_deterministic
        ] );
      ( "engine",
        [ Alcotest.test_case "exact inflationary" `Quick test_engine_exact_inflationary;
          Alcotest.test_case "exact noninflationary" `Quick test_engine_exact_noninflationary;
          Alcotest.test_case "sampling" `Slow test_engine_sampling;
          Alcotest.test_case "missing event" `Quick test_engine_missing_event;
          Alcotest.test_case "lumped diagnostics (analyse)" `Quick test_analyse_lumped_diagnostics;
          Alcotest.test_case "lumped diagnostics (engine)" `Quick test_engine_lumped_diagnostics;
          Alcotest.test_case "plan vs interpreted" `Slow test_engine_plan_vs_interpreted;
          Alcotest.test_case "time-average burn-in" `Quick test_time_average_burn_in;
          Alcotest.test_case "time-average via engine" `Quick test_engine_time_average;
          Alcotest.test_case "divergence (sequential)" `Quick test_engine_divergence_sequential;
          Alcotest.test_case "divergence (shards)" `Quick test_engine_divergence_parallel;
          Alcotest.test_case "stats report" `Quick test_engine_stats_report
        ] )
    ]
