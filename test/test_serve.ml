(* The daemon stack: JSON reader, probdb.proto/2 decoding, the shared plan
   cache, and an in-process server exercised over a real unix socket —
   the telemetry plane (metrics op, correlation ids, request logs, inline
   traces) and the concurrent-session soak asserting daemon answers are
   bit-identical to one-shot Engine.run, under the PROBDB_FAULT matrix. *)

module J = Obs.Json

let json = Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (J.to_string j)) ( = )

(* --- Jsonr ---------------------------------------------------------------- *)

let test_jsonr_roundtrip () =
  let docs =
    [ J.Null;
      J.Bool true;
      J.Int (-42);
      J.Float 2.5;
      J.Str "plain";
      J.Str "esc \" \\ \n \t \r \b \012 end";
      J.Str "caf\xc3\xa9 \xe2\x88\x80x";
      J.List [ J.Int 1; J.Str "two"; J.Null; J.List []; J.Obj [] ];
      J.Obj
        [ ("a", J.Int 1);
          ("nested", J.Obj [ ("xs", J.List [ J.Float 0.125; J.Bool false ]) ]);
          ("s", J.Str "v")
        ]
    ]
  in
  List.iter (fun doc -> Alcotest.check json "roundtrip" doc (Serve.Jsonr.parse (J.to_string doc))) docs

let test_jsonr_literals () =
  Alcotest.check json "unicode escape" (J.Str "A\xc3\xa9")
    (Serve.Jsonr.parse {|"\u0041\u00e9"|});
  Alcotest.check json "surrogate pair" (J.Str "\xf0\x9f\x99\x82")
    (Serve.Jsonr.parse {|"\ud83d\ude42"|});
  Alcotest.check json "whitespace" (J.Obj [ ("k", J.List [ J.Int 1; J.Int 2 ]) ])
    (Serve.Jsonr.parse " { \"k\" : [ 1 , 2 ] } ");
  Alcotest.check json "float forms" (J.List [ J.Float 1e3; J.Float (-0.5); J.Int 7 ])
    (Serve.Jsonr.parse "[1e3, -0.5, 7]");
  List.iter
    (fun bad ->
      match Serve.Jsonr.parse_result bad with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2"; "\"\\ud800\"";
      "{\"a\":1} trailing"
    ]

(* --- Proto ---------------------------------------------------------------- *)

let test_proto_decode () =
  (match
     Serve.Proto.parse_request
       {|{"op":"query","id":"q1","tenant":"ops","class":"batch","source":"e(a). ?- e(a).","semantics":"noninflationary","method":"sample","eps":0.1,"seed":9,"stats":false}|}
   with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok { Serve.Proto.id; tenant; req } -> (
    Alcotest.(check string) "id" "q1" id;
    Alcotest.(check string) "tenant" "ops" tenant;
    match req with
    | Serve.Proto.Query q ->
      Alcotest.(check bool) "batch" true (q.Serve.Proto.q_class = Serve.Proto.Batch);
      Alcotest.(check string) "method" "sample" q.Serve.Proto.q_method;
      Alcotest.(check (float 0.0)) "eps" 0.1 q.Serve.Proto.q_eps;
      Alcotest.(check int) "seed" 9 q.Serve.Proto.q_seed;
      Alcotest.(check bool) "stats opt-out" false q.Serve.Proto.q_stats;
      Alcotest.(check bool) "noninflationary" true
        (q.Serve.Proto.q_semantics = Eval.Engine.Noninflationary);
      (match Serve.Proto.method_of_query q with
       | Ok (Eval.Engine.Sampling { eps; delta; burn_in }) ->
         Alcotest.(check (float 0.0)) "method eps" 0.1 eps;
         Alcotest.(check (float 0.0)) "method delta" 0.05 delta;
         Alcotest.(check int) "method burn-in" 200 burn_in
       | _ -> Alcotest.fail "expected sampling method")
    | _ -> Alcotest.fail "expected Query"));
  (* estimate defaults the method to sampling; query to exact. *)
  (match Serve.Proto.parse_request {|{"op":"estimate","id":"e","source":"x"}|} with
  | Ok { req = Serve.Proto.Query q; _ } ->
    Alcotest.(check string) "estimate method" "sample" q.Serve.Proto.q_method
  | _ -> Alcotest.fail "estimate decodes as Query");
  List.iter
    (fun bad ->
      match Serve.Proto.parse_request bad with
      | Ok _ -> Alcotest.failf "accepted bad request %S" bad
      | Error _ -> ())
    [ {|{"op":"query","id":"x"}|} (* neither source nor name *);
      {|{"op":"nosuch","id":"x"}|};
      {|{"op":"query","source":"y"}|} (* missing id *);
      {|{"op":"query","id":"x","source":"y","class":"vip"}|};
      {|[1,2]|};
      "not json"
    ]

(* --- plan cache ----------------------------------------------------------- *)

let test_plan_cache () =
  let cache = Serve.Request.make_cache ~capacity:8 () in
  let spec =
    Serve.Request.make ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact
      "e(a). p(X) :- e(X). ?- p(a)."
  in
  let _, hit1 = Serve.Request.prepare ~cache spec in
  let prep2, hit2 = Serve.Request.prepare ~cache spec in
  Alcotest.(check bool) "first is a miss" false hit1;
  Alcotest.(check bool) "second is a hit" true hit2;
  let hits, misses, entries = Serve.Request.cache_stats cache in
  Alcotest.(check int) "hits" 1 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "entries" 1 entries;
  (* Differing compile options change the fingerprint. *)
  let _, hit3 = Serve.Request.prepare ~cache { spec with Serve.Request.magic = true } in
  Alcotest.(check bool) "option change misses" false hit3;
  (* A cached prepared value executes and answers correctly. *)
  let report = Eval.Engine.execute prep2 in
  Alcotest.(check (float 0.0)) "cached plan answers" 1.0 report.Eval.Engine.probability;
  (* Failed builds are not cached. *)
  (match Serve.Request.prepare ~cache { spec with Serve.Request.source = "e(a)." } with
   | exception Eval.Engine.Engine_error _ -> ()
   | _ -> Alcotest.fail "expected Engine_error for event-less program");
  let _, _, entries = Serve.Request.cache_stats cache in
  Alcotest.(check int) "failed build not cached" 2 entries

(* --- in-process server over a unix socket --------------------------------- *)

let next_sock = Atomic.make 0

let with_server ?(configure = fun c -> c) f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "probdbd_test_%d_%d.sock" (Unix.getpid ())
         (Atomic.fetch_and_add next_sock 1))
  in
  let cfg = configure (Serve.Server.default_config (Serve.Server.Unix_sock path)) in
  let t = Serve.Server.create cfg in
  let server = Domain.spawn (fun () -> Serve.Server.serve_forever t) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown t;
      Domain.join server;
      Alcotest.(check bool) "socket removed on shutdown" false (Sys.file_exists path))
    (fun () -> f path t)

let obj = function
  | J.Obj o -> o
  | j -> Alcotest.failf "expected object, got %s" (J.to_string j)

let get o k =
  match List.assoc_opt k o with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" k

let check_ok resp =
  let o = obj resp in
  (match get o "ok" with
   | J.Bool true -> ()
   | _ -> Alcotest.failf "response not ok: %s" (J.to_string resp));
  o

let reference_report ?(seed = 0) ?domains ~semantics ~method_ source =
  Eval.Engine.run ~seed ?domains ~semantics ~method_ (Lang.Parser.parse source)

(* Answers must be bit-identical to the one-shot engine: compare the float
   bits and the exact rational rendering. *)
let check_answer ~what (reference : Eval.Engine.report) resp =
  let o = check_ok resp in
  let r = obj (get o "report") in
  (match get r "probability" with
   | (J.Float _ | J.Int _) as j ->
     let got = (match j with J.Int i -> float_of_int i | J.Float f -> f | _ -> 0.0) in
     Alcotest.(check bool)
       (what ^ ": probability bit-identical")
       true
       (Int64.equal (Int64.bits_of_float reference.Eval.Engine.probability)
          (Int64.bits_of_float got))
   | j -> Alcotest.failf "probability not a number: %s" (J.to_string j));
  let exact_str = function
    | None -> J.Null
    | Some q -> J.Str (Bigq.Q.to_string q)
  in
  Alcotest.check json (what ^ ": exact rational identical")
    (exact_str reference.Eval.Engine.exact) (get r "exact")

let test_server_end_to_end () =
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (* load: validated and stored per tenant. *)
      let o =
        check_ok
          (Serve.Client.rpc_json c
             (Serve.Jsonr.parse
                {|{"op":"load","id":"l1","tenant":"t1","name":"reach","source":"edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z). ?- path(a,c)."}|}))
      in
      Alcotest.check json "rules counted" (J.Int 2) (get o "rules");
      (* query by name: exact answer matches Engine.run. *)
      let source =
        "edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z). ?- path(a,c)."
      in
      let reference =
        reference_report ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact source
      in
      let resp =
        Serve.Client.rpc_json c
          (Serve.Jsonr.parse {|{"op":"query","id":"q1","tenant":"t1","name":"reach"}|})
      in
      check_answer ~what:"exact by name" reference resp;
      Alcotest.check json "first query misses the cache" (J.Str "miss")
        (get (check_ok resp) "cache");
      let resp2 =
        Serve.Client.rpc_json c
          (Serve.Jsonr.parse {|{"op":"query","id":"q2","tenant":"t1","name":"reach"}|})
      in
      check_answer ~what:"cached exact" reference resp2;
      Alcotest.check json "repeat hits the cache" (J.Str "hit") (get (check_ok resp2) "cache");
      (* per-request stats ride along by default. *)
      let stats = obj (get (obj (get (check_ok resp2) "report")) "phases") in
      Alcotest.(check bool) "cache-hit request reports no compile phase" true
        (not (List.mem_assoc "compile" stats));
      (* estimate: fixed-seed draws identical to the one-shot sampler. *)
      let est_method = Eval.Engine.Sampling { eps = 0.1; delta = 0.1; burn_in = 200 } in
      let est_ref =
        reference_report ~seed:5 ~semantics:Eval.Engine.Inflationary ~method_:est_method source
      in
      let est =
        Serve.Client.rpc_json c
          (Serve.Jsonr.parse
             {|{"op":"estimate","id":"q3","tenant":"t1","name":"reach","eps":0.1,"delta":0.1,"seed":5}|})
      in
      check_answer ~what:"fixed-seed estimate" est_ref est;
      (* cancel of an unknown request id reports not-found. *)
      let cancel =
        check_ok
          (Serve.Client.rpc_json c
             (Serve.Jsonr.parse {|{"op":"cancel","id":"c1","tenant":"t1","target":"nope"}|}))
      in
      Alcotest.check json "unknown target" (J.Bool false) (get cancel "cancelled");
      (* unknown loaded name and malformed lines are per-request errors. *)
      let err =
        obj
          (Serve.Client.rpc_json c
             (Serve.Jsonr.parse {|{"op":"query","id":"q4","tenant":"t1","name":"nope"}|}))
      in
      Alcotest.check json "unknown program" (J.Bool false) (get err "ok");
      let err2 = obj (Serve.Jsonr.parse (Serve.Client.rpc c "definitely not json")) in
      Alcotest.check json "bad line" (J.Bool false) (get err2 "ok");
      (* stats op: cache totals and tenant counters. *)
      let sdoc = obj (get (check_ok (Serve.Client.rpc_json c
          (Serve.Jsonr.parse {|{"op":"stats","id":"s1","tenant":"t1"}|}))) "stats")
      in
      let cache = obj (get sdoc "plan_cache") in
      Alcotest.(check bool) "cache hits counted" true
        (match get cache "hits" with J.Int h -> h >= 1 | _ -> false);
      let tenants = obj (get sdoc "tenants") in
      Alcotest.(check bool) "tenant t1 served" true
        (match obj (get tenants "t1") with
         | o -> ( match get o "served" with J.Int n -> n >= 3 | _ -> false)))

(* --- per-tenant budgets, cancellation, admission --------------------------- *)

(* A slow request: pool-sharded sampling with an injected per-sample delay
   keeps one tenant's query busy while another connection races it. *)
let slow_query ~id ~tenant =
  Printf.sprintf
    {|{"op":"query","id":%S,"tenant":%S,"method":"sample","eps":0.02,"delta":0.05,"domains":1,"source":"edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z). ?- path(a,c)."}|}
    id tenant

let outcome_status resp =
  let o = check_ok resp in
  let r = obj (get o "report") in
  match obj (get r "outcome") with
  | o -> (
    match get o "status" with
    | J.Str s -> s
    | _ -> Alcotest.fail "outcome status missing")

let test_cancel_inflight () =
  Unix.putenv "PROBDB_FAULT" "delay:shard=0,ms=5";
  Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
  with_server (fun path _t ->
      let a = Serve.Client.connect_unix ~retry_ms:2000 path in
      let b = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          Serve.Client.send a (slow_query ~id:"long" ~tenant:"t1");
          Unix.sleepf 0.1;
          let cancel =
            check_ok
              (Serve.Client.rpc_json b
                 (Serve.Jsonr.parse {|{"op":"cancel","id":"c","tenant":"t1","target":"long"}|}))
          in
          Alcotest.check json "in-flight request found" (J.Bool true) (get cancel "cancelled");
          let resp = Serve.Jsonr.parse (Serve.Client.recv a) in
          Alcotest.(check string) "cancelled run reports partial" "partial"
            (outcome_status resp);
          let r = obj (get (check_ok resp) "report") in
          (match obj (get r "outcome") with
           | o ->
             Alcotest.check json "reason is interruption" (J.Str "interrupted")
               (get o "reason"))))

let test_admission_control () =
  Unix.putenv "PROBDB_FAULT" "delay:shard=0,ms=5";
  Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
  with_server
    ~configure:(fun c ->
      { c with
        Serve.Server.default_tenant =
          { c.Serve.Server.default_tenant with Serve.Server.tp_max_inflight = 1 }
      })
    (fun path _t ->
      let a = Serve.Client.connect_unix ~retry_ms:2000 path in
      let b = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          Serve.Client.send a (slow_query ~id:"one" ~tenant:"t1");
          Unix.sleepf 0.1;
          (* Same tenant: over the in-flight cap, refused immediately. *)
          let refused = obj (Serve.Client.rpc_json b (Serve.Jsonr.parse (slow_query ~id:"two" ~tenant:"t1"))) in
          Alcotest.check json "tenant over cap refused" (J.Bool false) (get refused "ok");
          (match get refused "error" with
           | J.Str m ->
             Alcotest.(check bool) "admission error says so" true
               (String.length m >= 9 && String.sub m 0 9 = "admission")
           | _ -> Alcotest.fail "error message missing");
          (* A different tenant is unaffected by t1's cap. *)
          let other =
            check_ok
              (Serve.Client.rpc_json b
                 (Serve.Jsonr.parse
                    {|{"op":"query","id":"q","tenant":"t2","source":"e(a). ?- e(a)."}|}))
          in
          ignore other;
          (* The first request still completes. *)
          ignore (outcome_status (Serve.Jsonr.parse (Serve.Client.recv a)))))

let test_tenant_budget_degrades () =
  (* A tenant with a tiny sample budget gets a partial (degraded) answer,
     not an error; an unbudgeted tenant completes the same request. *)
  with_server
    ~configure:(fun c ->
      { c with
        Serve.Server.tenants =
          [ { Serve.Server.default_profile with
              Serve.Server.tp_name = "starved";
              tp_sample_budget = Some 10;
              tp_fallback = false
            }
          ]
      })
    (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let q tenant id =
        Printf.sprintf
          {|{"op":"estimate","id":%S,"tenant":%S,"eps":0.05,"delta":0.05,"source":"edge(a,b). path(X,Y) :- edge(X,Y). ?- path(a,b)."}|}
          id tenant
      in
      let starved = Serve.Jsonr.parse (Serve.Client.rpc c (q "starved" "s1")) in
      Alcotest.(check string) "budgeted tenant degrades to partial" "partial"
        (outcome_status starved);
      let free = Serve.Jsonr.parse (Serve.Client.rpc c (q "other" "f1")) in
      Alcotest.(check string) "unbudgeted tenant completes" "complete" (outcome_status free))

(* --- telemetry plane: metrics op, correlation ids, logs, traces ----------- *)

let simple_query ~id ~tenant =
  Printf.sprintf
    {|{"op":"query","id":%S,"tenant":%S,"class":"interactive","source":"e(a). p(X) :- e(X). ?- p(a)."}|}
    id tenant

let family_named fams name =
  match
    List.find_opt
      (fun f -> match get (obj f) "name" with J.Str n -> n = name | _ -> false)
      fams
  with
  | Some f -> obj f
  | None -> Alcotest.failf "family %s missing" name

let labels_of row = obj (get (obj row) "labels")

let test_metrics_op () =
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let issued = [ ("acme", 3); ("zeta", 2) ] in
      List.iter
        (fun (tenant, n) ->
          for i = 1 to n do
            let resp =
              check_ok
                (Serve.Client.rpc_json c
                   (Serve.Jsonr.parse (simple_query ~id:(Printf.sprintf "%s-%d" tenant i) ~tenant)))
            in
            (* Every response carries a server-generated correlation id. *)
            match get resp "corr" with
            | J.Str corr when String.length corr > 0 -> ()
            | j -> Alcotest.failf "bad corr %s" (J.to_string j)
          done)
        issued;
      let m =
        check_ok
          (Serve.Client.rpc_json c
             (Serve.Jsonr.parse {|{"op":"metrics","id":"m1","tenant":"acme"}|}))
      in
      Alcotest.check json "proto rev" (J.Str "probdb.proto/2") (get m "schema");
      let doc = obj (get m "metrics") in
      Alcotest.check json "metrics schema" (J.Str "probdb.metrics/1") (get doc "schema");
      Alcotest.(check bool) "served counted" true
        (match get (obj (get doc "server")) "served" with J.Int n -> n >= 5 | _ -> false);
      let fams = match get doc "families" with J.List fs -> fs | _ -> Alcotest.fail "families" in
      (* The per-(tenant, class, outcome) latency histogram: _count equals
         the number of requests issued for each tenant, exactly. *)
      let hist = family_named fams "probdb_request_seconds" in
      let rows = match get hist "rows" with J.List rs -> rs | _ -> Alcotest.fail "rows" in
      List.iter
        (fun (tenant, n) ->
          match
            List.find_opt
              (fun row ->
                let l = labels_of row in
                get l "tenant" = J.Str tenant
                && get l "class" = J.Str "interactive"
                && get l "outcome" = J.Str "complete")
              rows
          with
          | None -> Alcotest.failf "no histogram row for tenant %s" tenant
          | Some row ->
            Alcotest.check json
              (Printf.sprintf "%s count = queries issued" tenant)
              (J.Int n) (get (obj row) "count"))
        issued;
      (* Sub-phase histograms cover the same request counts per tenant. *)
      List.iter
        (fun fam_name ->
          let fam = family_named fams fam_name in
          let rows = match get fam "rows" with J.List rs -> rs | _ -> [] in
          List.iter
            (fun (tenant, n) ->
              match
                List.find_opt (fun row -> get (labels_of row) "tenant" = J.Str tenant) rows
              with
              | None -> Alcotest.failf "%s: no row for %s" fam_name tenant
              | Some row ->
                Alcotest.check json (fam_name ^ " count") (J.Int n) (get (obj row) "count"))
            issued)
        [ "probdb_request_wait_seconds"; "probdb_request_compile_seconds";
          "probdb_request_eval_seconds"
        ];
      (* GC gauges were sampled. *)
      (match get (family_named fams "probdb_gc_minor_words") "rows" with
       | J.List [ row ] ->
         Alcotest.(check bool) "gc gauge positive" true
           (match get (obj row) "value" with
            | J.Int n -> n > 0
            | J.Float f -> f > 0.0
            | _ -> false)
       | _ -> Alcotest.fail "gc gauge row");
      (* Tenant rollup feeds the top client. *)
      let tenants = obj (get doc "tenants") in
      List.iter
        (fun (tenant, n) ->
          let row = obj (get tenants tenant) in
          Alcotest.check json (tenant ^ " rollup requests") (J.Int n) (get row "requests");
          Alcotest.(check bool) (tenant ^ " p95 positive") true
            (match get row "p95_ms" with J.Float f -> f > 0.0 | _ -> false))
        issued;
      (* Prometheus text: families present with per-tenant labels, buckets
         cumulative and monotone with a +Inf terminal, _count matching. *)
      let text = match get m "prometheus" with J.Str s -> s | _ -> Alcotest.fail "prometheus" in
      let contains needle =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun needle ->
          if not (contains needle) then Alcotest.failf "prometheus text missing %S" needle)
        [ "# TYPE probdb_request_seconds histogram";
          "# TYPE probdb_requests_total counter";
          "# TYPE probdb_uptime_seconds gauge";
          {|probdb_request_seconds_count{tenant="acme",class="interactive",outcome="complete"} 3|};
          {|probdb_request_seconds_count{tenant="zeta",class="interactive",outcome="complete"} 2|};
          {|outcome="complete",le="+Inf"|};
          "probdb_gc_heap_words"
        ];
      (* Per labelled series: bucket counts never decrease and end at +Inf. *)
      let find_sub hay needle from =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = if i + nl > hl then None else if String.sub hay i nl = needle then Some i else go (i + 1) in
        go from
      in
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun line ->
          match (String.index_opt line ' ', find_sub line ",le=" 0) with
          | Some sp, Some le
            when String.length line > 29
                 && String.sub line 0 29 = "probdb_request_seconds_bucket" ->
            let series = String.sub line 0 le in
            let v = float_of_string (String.sub line (sp + 1) (String.length line - sp - 1)) in
            let prev = Option.value ~default:(-1.0) (Hashtbl.find_opt tbl series) in
            if v < prev then Alcotest.failf "bucket counts decreased in %s" series;
            Hashtbl.replace tbl series v
          | _ -> ())
        (String.split_on_char '\n' text);
      Alcotest.(check bool) "some bucket series seen" true (Hashtbl.length tbl > 0))

let test_metrics_disabled_and_refusals () =
  (* telemetry = false: queries answer identically, metrics errors out. *)
  with_server
    ~configure:(fun c -> { c with Serve.Server.telemetry = false })
    (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      ignore (check_ok (Serve.Client.rpc_json c (Serve.Jsonr.parse (simple_query ~id:"q" ~tenant:"t"))));
      let err = obj (Serve.Client.rpc_json c (Serve.Jsonr.parse {|{"op":"metrics","id":"m"}|})) in
      Alcotest.check json "metrics refused when plane off" (J.Bool false) (get err "ok"));
  (* Refused requests land in the refusal counter and the request
     histogram under outcome=refused. *)
  Unix.putenv "PROBDB_FAULT" "delay:shard=0,ms=5";
  Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
  with_server
    ~configure:(fun c ->
      { c with
        Serve.Server.default_tenant =
          { c.Serve.Server.default_tenant with Serve.Server.tp_max_inflight = 1 }
      })
    (fun path _t ->
      let a = Serve.Client.connect_unix ~retry_ms:2000 path in
      let b = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          Serve.Client.send a (slow_query ~id:"one" ~tenant:"t1");
          Unix.sleepf 0.1;
          let refused = obj (Serve.Client.rpc_json b (Serve.Jsonr.parse (slow_query ~id:"two" ~tenant:"t1"))) in
          Alcotest.check json "over cap refused" (J.Bool false) (get refused "ok");
          ignore (Serve.Jsonr.parse (Serve.Client.recv a));
          let m = check_ok (Serve.Client.rpc_json b (Serve.Jsonr.parse {|{"op":"metrics","id":"m"}|})) in
          let doc = obj (get m "metrics") in
          let fams = match get doc "families" with J.List fs -> fs | _ -> [] in
          let refusals = family_named fams "probdb_admission_refusals_total" in
          (match get refusals "rows" with
           | J.List (_ :: _) -> ()
           | _ -> Alcotest.fail "no refusal rows");
          let rollup = obj (get (obj (get doc "tenants")) "t1") in
          Alcotest.(check bool) "rollup counts the refusal" true
            (match get rollup "refused" with J.Int n -> n >= 1 | _ -> false)))

let test_request_log_lines () =
  let mu = Mutex.create () in
  let lines = ref [] in
  Obs.Log.set_sink ~level:Obs.Log.Info
    (Some (fun l -> Mutex.protect mu (fun () -> lines := l :: !lines)));
  Fun.protect ~finally:(fun () -> Obs.Log.set_sink None) @@ fun () ->
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let resp = check_ok (Serve.Client.rpc_json c (Serve.Jsonr.parse (simple_query ~id:"lg" ~tenant:"logged"))) in
      let corr = match get resp "corr" with J.Str s -> s | _ -> Alcotest.fail "no corr" in
      (* A parse error is logged too, at warn. *)
      ignore (Serve.Client.rpc c "not json at all");
      let captured = Mutex.protect mu (fun () -> List.rev !lines) in
      let docs = List.map (fun l -> obj (Serve.Jsonr.parse l)) captured in
      let request_lines =
        List.filter (fun d -> List.assoc_opt "event" d = Some (J.Str "request")) docs
      in
      (match
         List.find_opt (fun d -> List.assoc_opt "corr" d = Some (J.Str corr)) request_lines
       with
       | None -> Alcotest.failf "no request log line with corr %s" corr
       | Some d ->
         Alcotest.check json "log line tenant" (J.Str "logged") (get d "tenant");
         Alcotest.check json "log line op" (J.Str "query") (get d "op");
         Alcotest.check json "log line level" (J.Str "info") (get d "level");
         Alcotest.check json "log line ok" (J.Bool true) (get d "ok");
         (match get d "elapsed_ms" with
          | J.Float f when f >= 0.0 -> ()
          | J.Int i when i >= 0 -> ()
          | j -> Alcotest.failf "bad elapsed_ms %s" (J.to_string j)));
      match
        List.find_opt
          (fun d ->
            List.assoc_opt "op" d = Some (J.Str "parse")
            && List.assoc_opt "level" d = Some (J.Str "warn"))
          docs
      with
      | None -> Alcotest.fail "parse error not logged at warn"
      | Some _ -> ())

let test_query_trace_flag () =
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let plain =
        check_ok
          (Serve.Client.rpc_json c (Serve.Jsonr.parse (simple_query ~id:"p" ~tenant:"t")))
      in
      Alcotest.(check bool) "no trace without the flag" true
        (List.assoc_opt "trace" plain = None);
      let traced =
        check_ok
          (Serve.Client.rpc_json c
             (Serve.Jsonr.parse
                {|{"op":"query","id":"tr","tenant":"t","trace":true,"source":"e(a). p(X) :- e(X). ?- p(a)."}|}))
      in
      let tdoc = obj (get traced "trace") in
      let events =
        match get tdoc "traceEvents" with J.List evs -> evs | _ -> Alcotest.fail "traceEvents"
      in
      match
        List.find_opt
          (fun ev ->
            let o = obj ev in
            List.assoc_opt "name" o = Some (J.Str "request")
            && List.assoc_opt "ph" o = Some (J.Str "X"))
          events
      with
      | None -> Alcotest.fail "no enclosing request span"
      | Some ev ->
        (* The span's args carry the correlation sequence joining it to the
           response's corr id. *)
        (match List.assoc_opt "args" (obj ev) with
         | Some (J.Obj args) ->
           Alcotest.(check bool) "corr_seq stamped into span args" true
             (List.mem_assoc "corr_seq" args)
         | _ -> Alcotest.fail "request span has no args"))

(* --- soak: concurrent sessions, fault matrix, bit-identical answers ------- *)

let progen_sources =
  (* Deterministic workload: enough cases to exercise the cache and several
     sessions, small enough to stay quick. *)
  let rng = Random.State.make [| 77 |] in
  List.init 6 (fun _ -> (Workload.Progen.random_case rng).Workload.Progen.source)

let test_soak_sessions_match_cli () =
  let faults = [ ""; "delay:shard=0,ms=1"; "flaky:shard=0,after=1" ] in
  List.iter
    (fun fault ->
      Unix.putenv "PROBDB_FAULT" fault;
      Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
      (* One-shot engine references, computed under the same fault spec. *)
      let exact_refs =
        List.map
          (fun src ->
            reference_report ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact src)
          progen_sources
      in
      let sample_method = Eval.Engine.Sampling { eps = 0.15; delta = 0.1; burn_in = 50 } in
      let sample_refs =
        List.map
          (fun src ->
            reference_report ~seed:11 ~domains:1 ~semantics:Eval.Engine.Inflationary
              ~method_:sample_method src)
          progen_sources
      in
      with_server (fun path _t ->
          let sessions = 4 in
          let worker s =
            Domain.spawn (fun () ->
                let c = Serve.Client.connect_unix ~retry_ms:2000 path in
                Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
                List.mapi
                  (fun i src ->
                    let exact =
                      Serve.Client.rpc_json c
                        (J.Obj
                           [ ("op", J.Str "query");
                             ("id", J.Str (Printf.sprintf "s%d-e%d" s i));
                             ("tenant", J.Str (Printf.sprintf "tenant%d" s));
                             ("source", J.Str src)
                           ])
                    in
                    let sampled =
                      Serve.Client.rpc_json c
                        (J.Obj
                           [ ("op", J.Str "estimate");
                             ("id", J.Str (Printf.sprintf "s%d-s%d" s i));
                             ("tenant", J.Str (Printf.sprintf "tenant%d" s));
                             ("source", J.Str src);
                             ("eps", J.Float 0.15);
                             ("delta", J.Float 0.1);
                             ("burn_in", J.Int 50);
                             ("seed", J.Int 11);
                             ("domains", J.Int 1)
                           ])
                    in
                    (exact, sampled))
                  progen_sources)
          in
          let domains = List.init sessions worker in
          let per_session = List.map Domain.join domains in
          List.iteri
            (fun s results ->
              List.iteri
                (fun i (exact, sampled) ->
                  let what kind = Printf.sprintf "fault=%S s%d case %d %s" fault s i kind in
                  check_answer ~what:(what "exact") (List.nth exact_refs i) exact;
                  check_answer ~what:(what "sampled") (List.nth sample_refs i) sampled)
                results)
            per_session))
    faults

let test_soak_kill_fault_matches_cli_error () =
  (* A killed shard fails the one-shot run with Engine_error; the daemon
     must surface the same message as a protocol-level error, keep serving,
     and recover once the fault is lifted. *)
  let src = List.hd progen_sources in
  let sample_method = Eval.Engine.Sampling { eps = 0.15; delta = 0.1; burn_in = 50 } in
  Unix.putenv "PROBDB_FAULT" "kill:shard=0,after=1";
  Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
  let reference_error =
    match
      reference_report ~seed:11 ~domains:1 ~semantics:Eval.Engine.Inflationary
        ~method_:sample_method src
    with
    | _ -> Alcotest.fail "one-shot run should fail under the kill fault"
    | exception Eval.Engine.Engine_error m -> m
  in
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let req =
        J.Obj
          [ ("op", J.Str "estimate");
            ("id", J.Str "kill");
            ("source", J.Str src);
            ("eps", J.Float 0.15);
            ("delta", J.Float 0.1);
            ("burn_in", J.Int 50);
            ("seed", J.Int 11);
            ("domains", J.Int 1)
          ]
      in
      let failed = obj (Serve.Client.rpc_json c req) in
      Alcotest.check json "daemon surfaces the failure" (J.Bool false) (get failed "ok");
      Alcotest.check json "same message as the one-shot engine" (J.Str reference_error)
        (get failed "error");
      (* The session survives; lifting the fault recovers the answer. *)
      Unix.putenv "PROBDB_FAULT" "";
      let reference =
        reference_report ~seed:11 ~domains:1 ~semantics:Eval.Engine.Inflationary
          ~method_:sample_method src
      in
      check_answer ~what:"post-fault recovery" reference (Serve.Client.rpc_json c req))

(* --- run ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [ ( "jsonr",
        [ Alcotest.test_case "emit/parse roundtrip" `Quick test_jsonr_roundtrip;
          Alcotest.test_case "literals, escapes, rejects" `Quick test_jsonr_literals
        ] );
      ( "proto",
        [ Alcotest.test_case "request decoding" `Quick test_proto_decode ] );
      ( "cache",
        [ Alcotest.test_case "hits, misses, fingerprints" `Quick test_plan_cache ] );
      ( "server",
        [ Alcotest.test_case "load/query/estimate/stats/cancel" `Quick test_server_end_to_end;
          Alcotest.test_case "cancel an in-flight request" `Quick test_cancel_inflight;
          Alcotest.test_case "per-tenant admission control" `Quick test_admission_control;
          Alcotest.test_case "per-tenant budget degrades per class" `Quick
            test_tenant_budget_degrades
        ] );
      ( "telemetry",
        [ Alcotest.test_case "metrics op: JSON + Prometheus, exact counts" `Quick test_metrics_op;
          Alcotest.test_case "plane off and refusal accounting" `Quick
            test_metrics_disabled_and_refusals;
          Alcotest.test_case "structured request logs with corr ids" `Quick
            test_request_log_lines;
          Alcotest.test_case "per-request inline trace" `Quick test_query_trace_flag
        ] );
      ( "soak",
        [ Alcotest.test_case "4 sessions bit-identical to one-shot (fault matrix)" `Slow
            test_soak_sessions_match_cli;
          Alcotest.test_case "kill fault surfaces the one-shot error" `Quick
            test_soak_kill_fault_matches_cli_error
        ] )
    ]
