(* The daemon stack: JSON reader, probdb.proto/3 decoding, the shared plan
   cache, and an in-process server exercised over a real unix socket —
   the telemetry plane (metrics op, correlation ids, request logs, inline
   traces), the concurrent-session soak asserting daemon answers are
   bit-identical to one-shot Engine.run under the PROBDB_FAULT matrix,
   the durable journal (roundtrip, torn tails, the crash-point matrix,
   restart replay), protocol hardening (decode fuzz, frame bounds, read
   deadlines, error codes, idempotency dedup) and the resilient client
   (backoff policy, reconnect across a server restart, deadlines). *)

module J = Obs.Json

let json = Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (J.to_string j)) ( = )

(* --- Jsonr ---------------------------------------------------------------- *)

let test_jsonr_roundtrip () =
  let docs =
    [ J.Null;
      J.Bool true;
      J.Int (-42);
      J.Float 2.5;
      J.Str "plain";
      J.Str "esc \" \\ \n \t \r \b \012 end";
      J.Str "caf\xc3\xa9 \xe2\x88\x80x";
      J.List [ J.Int 1; J.Str "two"; J.Null; J.List []; J.Obj [] ];
      J.Obj
        [ ("a", J.Int 1);
          ("nested", J.Obj [ ("xs", J.List [ J.Float 0.125; J.Bool false ]) ]);
          ("s", J.Str "v")
        ]
    ]
  in
  List.iter (fun doc -> Alcotest.check json "roundtrip" doc (Serve.Jsonr.parse (J.to_string doc))) docs

let test_jsonr_literals () =
  Alcotest.check json "unicode escape" (J.Str "A\xc3\xa9")
    (Serve.Jsonr.parse {|"\u0041\u00e9"|});
  Alcotest.check json "surrogate pair" (J.Str "\xf0\x9f\x99\x82")
    (Serve.Jsonr.parse {|"\ud83d\ude42"|});
  Alcotest.check json "whitespace" (J.Obj [ ("k", J.List [ J.Int 1; J.Int 2 ]) ])
    (Serve.Jsonr.parse " { \"k\" : [ 1 , 2 ] } ");
  Alcotest.check json "float forms" (J.List [ J.Float 1e3; J.Float (-0.5); J.Int 7 ])
    (Serve.Jsonr.parse "[1e3, -0.5, 7]");
  List.iter
    (fun bad ->
      match Serve.Jsonr.parse_result bad with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2"; "\"\\ud800\"";
      "{\"a\":1} trailing"
    ]

(* --- Proto ---------------------------------------------------------------- *)

let test_proto_decode () =
  (match
     Serve.Proto.parse_request
       {|{"op":"query","id":"q1","tenant":"ops","class":"batch","source":"e(a). ?- e(a).","semantics":"noninflationary","method":"sample","eps":0.1,"seed":9,"stats":false}|}
   with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok { Serve.Proto.id; tenant; idem = _; req } -> (
    Alcotest.(check string) "id" "q1" id;
    Alcotest.(check string) "tenant" "ops" tenant;
    match req with
    | Serve.Proto.Query q ->
      Alcotest.(check bool) "batch" true (q.Serve.Proto.q_class = Serve.Proto.Batch);
      Alcotest.(check string) "method" "sample" q.Serve.Proto.q_method;
      Alcotest.(check (float 0.0)) "eps" 0.1 q.Serve.Proto.q_eps;
      Alcotest.(check int) "seed" 9 q.Serve.Proto.q_seed;
      Alcotest.(check bool) "stats opt-out" false q.Serve.Proto.q_stats;
      Alcotest.(check bool) "noninflationary" true
        (q.Serve.Proto.q_semantics = Eval.Engine.Noninflationary);
      (match Serve.Proto.method_of_query q with
       | Ok (Eval.Engine.Sampling { eps; delta; burn_in }) ->
         Alcotest.(check (float 0.0)) "method eps" 0.1 eps;
         Alcotest.(check (float 0.0)) "method delta" 0.05 delta;
         Alcotest.(check int) "method burn-in" 200 burn_in
       | _ -> Alcotest.fail "expected sampling method")
    | _ -> Alcotest.fail "expected Query"));
  (* estimate defaults the method to sampling; query to exact. *)
  (match Serve.Proto.parse_request {|{"op":"estimate","id":"e","source":"x"}|} with
  | Ok { req = Serve.Proto.Query q; _ } ->
    Alcotest.(check string) "estimate method" "sample" q.Serve.Proto.q_method
  | _ -> Alcotest.fail "estimate decodes as Query");
  List.iter
    (fun bad ->
      match Serve.Proto.parse_request bad with
      | Ok _ -> Alcotest.failf "accepted bad request %S" bad
      | Error _ -> ())
    [ {|{"op":"query","id":"x"}|} (* neither source nor name *);
      {|{"op":"nosuch","id":"x"}|};
      {|{"op":"query","source":"y"}|} (* missing id *);
      {|{"op":"query","id":"x","source":"y","class":"vip"}|};
      {|[1,2]|};
      "not json"
    ]

(* --- plan cache ----------------------------------------------------------- *)

let test_plan_cache () =
  let cache = Serve.Request.make_cache ~capacity:8 () in
  let spec =
    Serve.Request.make ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact
      "e(a). p(X) :- e(X). ?- p(a)."
  in
  let _, hit1 = Serve.Request.prepare ~cache spec in
  let prep2, hit2 = Serve.Request.prepare ~cache spec in
  Alcotest.(check bool) "first is a miss" false hit1;
  Alcotest.(check bool) "second is a hit" true hit2;
  let hits, misses, entries = Serve.Request.cache_stats cache in
  Alcotest.(check int) "hits" 1 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "entries" 1 entries;
  (* Differing compile options change the fingerprint. *)
  let _, hit3 = Serve.Request.prepare ~cache { spec with Serve.Request.magic = true } in
  Alcotest.(check bool) "option change misses" false hit3;
  (* A cached prepared value executes and answers correctly. *)
  let report = Eval.Engine.execute prep2 in
  Alcotest.(check (float 0.0)) "cached plan answers" 1.0 report.Eval.Engine.probability;
  (* Failed builds are not cached. *)
  (match Serve.Request.prepare ~cache { spec with Serve.Request.source = "e(a)." } with
   | exception Eval.Engine.Engine_error _ -> ()
   | _ -> Alcotest.fail "expected Engine_error for event-less program");
  let _, _, entries = Serve.Request.cache_stats cache in
  Alcotest.(check int) "failed build not cached" 2 entries

(* --- in-process server over a unix socket --------------------------------- *)

let next_sock = Atomic.make 0

let with_server ?(configure = fun c -> c) f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "probdbd_test_%d_%d.sock" (Unix.getpid ())
         (Atomic.fetch_and_add next_sock 1))
  in
  let cfg = configure (Serve.Server.default_config (Serve.Server.Unix_sock path)) in
  let t = Serve.Server.create cfg in
  let server = Domain.spawn (fun () -> Serve.Server.serve_forever t) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown t;
      Domain.join server;
      Alcotest.(check bool) "socket removed on shutdown" false (Sys.file_exists path))
    (fun () -> f path t)

let obj = function
  | J.Obj o -> o
  | j -> Alcotest.failf "expected object, got %s" (J.to_string j)

let get o k =
  match List.assoc_opt k o with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" k

let check_ok resp =
  let o = obj resp in
  (match get o "ok" with
   | J.Bool true -> ()
   | _ -> Alcotest.failf "response not ok: %s" (J.to_string resp));
  o

let reference_report ?(seed = 0) ?domains ~semantics ~method_ source =
  Eval.Engine.run ~seed ?domains ~semantics ~method_ (Lang.Parser.parse source)

(* Answers must be bit-identical to the one-shot engine: compare the float
   bits and the exact rational rendering. *)
let check_answer ~what (reference : Eval.Engine.report) resp =
  let o = check_ok resp in
  let r = obj (get o "report") in
  (match get r "probability" with
   | (J.Float _ | J.Int _) as j ->
     let got = (match j with J.Int i -> float_of_int i | J.Float f -> f | _ -> 0.0) in
     Alcotest.(check bool)
       (what ^ ": probability bit-identical")
       true
       (Int64.equal (Int64.bits_of_float reference.Eval.Engine.probability)
          (Int64.bits_of_float got))
   | j -> Alcotest.failf "probability not a number: %s" (J.to_string j));
  let exact_str = function
    | None -> J.Null
    | Some q -> J.Str (Bigq.Q.to_string q)
  in
  Alcotest.check json (what ^ ": exact rational identical")
    (exact_str reference.Eval.Engine.exact) (get r "exact")

let test_server_end_to_end () =
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (* load: validated and stored per tenant. *)
      let o =
        check_ok
          (Serve.Client.rpc_json c
             (Serve.Jsonr.parse
                {|{"op":"load","id":"l1","tenant":"t1","name":"reach","source":"edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z). ?- path(a,c)."}|}))
      in
      Alcotest.check json "rules counted" (J.Int 2) (get o "rules");
      (* query by name: exact answer matches Engine.run. *)
      let source =
        "edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z). ?- path(a,c)."
      in
      let reference =
        reference_report ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact source
      in
      let resp =
        Serve.Client.rpc_json c
          (Serve.Jsonr.parse {|{"op":"query","id":"q1","tenant":"t1","name":"reach"}|})
      in
      check_answer ~what:"exact by name" reference resp;
      Alcotest.check json "first query misses the cache" (J.Str "miss")
        (get (check_ok resp) "cache");
      let resp2 =
        Serve.Client.rpc_json c
          (Serve.Jsonr.parse {|{"op":"query","id":"q2","tenant":"t1","name":"reach"}|})
      in
      check_answer ~what:"cached exact" reference resp2;
      Alcotest.check json "repeat hits the cache" (J.Str "hit") (get (check_ok resp2) "cache");
      (* per-request stats ride along by default. *)
      let stats = obj (get (obj (get (check_ok resp2) "report")) "phases") in
      Alcotest.(check bool) "cache-hit request reports no compile phase" true
        (not (List.mem_assoc "compile" stats));
      (* estimate: fixed-seed draws identical to the one-shot sampler. *)
      let est_method = Eval.Engine.Sampling { eps = 0.1; delta = 0.1; burn_in = 200 } in
      let est_ref =
        reference_report ~seed:5 ~semantics:Eval.Engine.Inflationary ~method_:est_method source
      in
      let est =
        Serve.Client.rpc_json c
          (Serve.Jsonr.parse
             {|{"op":"estimate","id":"q3","tenant":"t1","name":"reach","eps":0.1,"delta":0.1,"seed":5}|})
      in
      check_answer ~what:"fixed-seed estimate" est_ref est;
      (* cancel of an unknown request id reports not-found. *)
      let cancel =
        check_ok
          (Serve.Client.rpc_json c
             (Serve.Jsonr.parse {|{"op":"cancel","id":"c1","tenant":"t1","target":"nope"}|}))
      in
      Alcotest.check json "unknown target" (J.Bool false) (get cancel "cancelled");
      (* unknown loaded name and malformed lines are per-request errors. *)
      let err =
        obj
          (Serve.Client.rpc_json c
             (Serve.Jsonr.parse {|{"op":"query","id":"q4","tenant":"t1","name":"nope"}|}))
      in
      Alcotest.check json "unknown program" (J.Bool false) (get err "ok");
      let err2 = obj (Serve.Jsonr.parse (Serve.Client.rpc c "definitely not json")) in
      Alcotest.check json "bad line" (J.Bool false) (get err2 "ok");
      (* stats op: cache totals and tenant counters. *)
      let sdoc = obj (get (check_ok (Serve.Client.rpc_json c
          (Serve.Jsonr.parse {|{"op":"stats","id":"s1","tenant":"t1"}|}))) "stats")
      in
      let cache = obj (get sdoc "plan_cache") in
      Alcotest.(check bool) "cache hits counted" true
        (match get cache "hits" with J.Int h -> h >= 1 | _ -> false);
      let tenants = obj (get sdoc "tenants") in
      Alcotest.(check bool) "tenant t1 served" true
        (match obj (get tenants "t1") with
         | o -> ( match get o "served" with J.Int n -> n >= 3 | _ -> false)))

(* --- per-tenant budgets, cancellation, admission --------------------------- *)

(* A slow request: pool-sharded sampling with an injected per-sample delay
   keeps one tenant's query busy while another connection races it. *)
let slow_query ~id ~tenant =
  Printf.sprintf
    {|{"op":"query","id":%S,"tenant":%S,"method":"sample","eps":0.02,"delta":0.05,"domains":1,"source":"edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z). ?- path(a,c)."}|}
    id tenant

let outcome_status resp =
  let o = check_ok resp in
  let r = obj (get o "report") in
  match obj (get r "outcome") with
  | o -> (
    match get o "status" with
    | J.Str s -> s
    | _ -> Alcotest.fail "outcome status missing")

let test_cancel_inflight () =
  Unix.putenv "PROBDB_FAULT" "delay:shard=0,ms=5";
  Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
  with_server (fun path _t ->
      let a = Serve.Client.connect_unix ~retry_ms:2000 path in
      let b = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          Serve.Client.send a (slow_query ~id:"long" ~tenant:"t1");
          Unix.sleepf 0.1;
          let cancel =
            check_ok
              (Serve.Client.rpc_json b
                 (Serve.Jsonr.parse {|{"op":"cancel","id":"c","tenant":"t1","target":"long"}|}))
          in
          Alcotest.check json "in-flight request found" (J.Bool true) (get cancel "cancelled");
          let resp = Serve.Jsonr.parse (Serve.Client.recv a) in
          Alcotest.(check string) "cancelled run reports partial" "partial"
            (outcome_status resp);
          let r = obj (get (check_ok resp) "report") in
          (match obj (get r "outcome") with
           | o ->
             Alcotest.check json "reason is interruption" (J.Str "interrupted")
               (get o "reason"))))

let test_admission_control () =
  Unix.putenv "PROBDB_FAULT" "delay:shard=0,ms=5";
  Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
  with_server
    ~configure:(fun c ->
      { c with
        Serve.Server.default_tenant =
          { c.Serve.Server.default_tenant with Serve.Server.tp_max_inflight = 1 }
      })
    (fun path _t ->
      let a = Serve.Client.connect_unix ~retry_ms:2000 path in
      let b = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          Serve.Client.send a (slow_query ~id:"one" ~tenant:"t1");
          Unix.sleepf 0.1;
          (* Same tenant: over the in-flight cap, refused immediately. *)
          let refused = obj (Serve.Client.rpc_json b (Serve.Jsonr.parse (slow_query ~id:"two" ~tenant:"t1"))) in
          Alcotest.check json "tenant over cap refused" (J.Bool false) (get refused "ok");
          (match get refused "error" with
           | J.Str m ->
             Alcotest.(check bool) "admission error says so" true
               (String.length m >= 9 && String.sub m 0 9 = "admission")
           | _ -> Alcotest.fail "error message missing");
          (* A different tenant is unaffected by t1's cap. *)
          let other =
            check_ok
              (Serve.Client.rpc_json b
                 (Serve.Jsonr.parse
                    {|{"op":"query","id":"q","tenant":"t2","source":"e(a). ?- e(a)."}|}))
          in
          ignore other;
          (* The first request still completes. *)
          ignore (outcome_status (Serve.Jsonr.parse (Serve.Client.recv a)))))

let test_tenant_budget_degrades () =
  (* A tenant with a tiny sample budget gets a partial (degraded) answer,
     not an error; an unbudgeted tenant completes the same request. *)
  with_server
    ~configure:(fun c ->
      { c with
        Serve.Server.tenants =
          [ { Serve.Server.default_profile with
              Serve.Server.tp_name = "starved";
              tp_sample_budget = Some 10;
              tp_fallback = false
            }
          ]
      })
    (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let q tenant id =
        Printf.sprintf
          {|{"op":"estimate","id":%S,"tenant":%S,"eps":0.05,"delta":0.05,"source":"edge(a,b). path(X,Y) :- edge(X,Y). ?- path(a,b)."}|}
          id tenant
      in
      let starved = Serve.Jsonr.parse (Serve.Client.rpc c (q "starved" "s1")) in
      Alcotest.(check string) "budgeted tenant degrades to partial" "partial"
        (outcome_status starved);
      let free = Serve.Jsonr.parse (Serve.Client.rpc c (q "other" "f1")) in
      Alcotest.(check string) "unbudgeted tenant completes" "complete" (outcome_status free))

(* --- telemetry plane: metrics op, correlation ids, logs, traces ----------- *)

let simple_query ~id ~tenant =
  Printf.sprintf
    {|{"op":"query","id":%S,"tenant":%S,"class":"interactive","source":"e(a). p(X) :- e(X). ?- p(a)."}|}
    id tenant

let family_named fams name =
  match
    List.find_opt
      (fun f -> match get (obj f) "name" with J.Str n -> n = name | _ -> false)
      fams
  with
  | Some f -> obj f
  | None -> Alcotest.failf "family %s missing" name

let labels_of row = obj (get (obj row) "labels")

let test_metrics_op () =
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let issued = [ ("acme", 3); ("zeta", 2) ] in
      List.iter
        (fun (tenant, n) ->
          for i = 1 to n do
            let resp =
              check_ok
                (Serve.Client.rpc_json c
                   (Serve.Jsonr.parse (simple_query ~id:(Printf.sprintf "%s-%d" tenant i) ~tenant)))
            in
            (* Every response carries a server-generated correlation id. *)
            match get resp "corr" with
            | J.Str corr when String.length corr > 0 -> ()
            | j -> Alcotest.failf "bad corr %s" (J.to_string j)
          done)
        issued;
      let m =
        check_ok
          (Serve.Client.rpc_json c
             (Serve.Jsonr.parse {|{"op":"metrics","id":"m1","tenant":"acme"}|}))
      in
      Alcotest.check json "proto rev" (J.Str "probdb.proto/3") (get m "schema");
      let doc = obj (get m "metrics") in
      Alcotest.check json "metrics schema" (J.Str "probdb.metrics/1") (get doc "schema");
      Alcotest.(check bool) "served counted" true
        (match get (obj (get doc "server")) "served" with J.Int n -> n >= 5 | _ -> false);
      let fams = match get doc "families" with J.List fs -> fs | _ -> Alcotest.fail "families" in
      (* The per-(tenant, class, outcome) latency histogram: _count equals
         the number of requests issued for each tenant, exactly. *)
      let hist = family_named fams "probdb_request_seconds" in
      let rows = match get hist "rows" with J.List rs -> rs | _ -> Alcotest.fail "rows" in
      List.iter
        (fun (tenant, n) ->
          match
            List.find_opt
              (fun row ->
                let l = labels_of row in
                get l "tenant" = J.Str tenant
                && get l "class" = J.Str "interactive"
                && get l "outcome" = J.Str "complete")
              rows
          with
          | None -> Alcotest.failf "no histogram row for tenant %s" tenant
          | Some row ->
            Alcotest.check json
              (Printf.sprintf "%s count = queries issued" tenant)
              (J.Int n) (get (obj row) "count"))
        issued;
      (* Sub-phase histograms cover the same request counts per tenant. *)
      List.iter
        (fun fam_name ->
          let fam = family_named fams fam_name in
          let rows = match get fam "rows" with J.List rs -> rs | _ -> [] in
          List.iter
            (fun (tenant, n) ->
              match
                List.find_opt (fun row -> get (labels_of row) "tenant" = J.Str tenant) rows
              with
              | None -> Alcotest.failf "%s: no row for %s" fam_name tenant
              | Some row ->
                Alcotest.check json (fam_name ^ " count") (J.Int n) (get (obj row) "count"))
            issued)
        [ "probdb_request_wait_seconds"; "probdb_request_compile_seconds";
          "probdb_request_eval_seconds"
        ];
      (* GC gauges were sampled. *)
      (match get (family_named fams "probdb_gc_minor_words") "rows" with
       | J.List [ row ] ->
         Alcotest.(check bool) "gc gauge positive" true
           (match get (obj row) "value" with
            | J.Int n -> n > 0
            | J.Float f -> f > 0.0
            | _ -> false)
       | _ -> Alcotest.fail "gc gauge row");
      (* Tenant rollup feeds the top client. *)
      let tenants = obj (get doc "tenants") in
      List.iter
        (fun (tenant, n) ->
          let row = obj (get tenants tenant) in
          Alcotest.check json (tenant ^ " rollup requests") (J.Int n) (get row "requests");
          Alcotest.(check bool) (tenant ^ " p95 positive") true
            (match get row "p95_ms" with J.Float f -> f > 0.0 | _ -> false))
        issued;
      (* Prometheus text: families present with per-tenant labels, buckets
         cumulative and monotone with a +Inf terminal, _count matching. *)
      let text = match get m "prometheus" with J.Str s -> s | _ -> Alcotest.fail "prometheus" in
      let contains needle =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun needle ->
          if not (contains needle) then Alcotest.failf "prometheus text missing %S" needle)
        [ "# TYPE probdb_request_seconds histogram";
          "# TYPE probdb_requests_total counter";
          "# TYPE probdb_uptime_seconds gauge";
          {|probdb_request_seconds_count{tenant="acme",class="interactive",outcome="complete"} 3|};
          {|probdb_request_seconds_count{tenant="zeta",class="interactive",outcome="complete"} 2|};
          {|outcome="complete",le="+Inf"|};
          "probdb_gc_heap_words"
        ];
      (* Per labelled series: bucket counts never decrease and end at +Inf. *)
      let find_sub hay needle from =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = if i + nl > hl then None else if String.sub hay i nl = needle then Some i else go (i + 1) in
        go from
      in
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun line ->
          match (String.index_opt line ' ', find_sub line ",le=" 0) with
          | Some sp, Some le
            when String.length line > 29
                 && String.sub line 0 29 = "probdb_request_seconds_bucket" ->
            let series = String.sub line 0 le in
            let v = float_of_string (String.sub line (sp + 1) (String.length line - sp - 1)) in
            let prev = Option.value ~default:(-1.0) (Hashtbl.find_opt tbl series) in
            if v < prev then Alcotest.failf "bucket counts decreased in %s" series;
            Hashtbl.replace tbl series v
          | _ -> ())
        (String.split_on_char '\n' text);
      Alcotest.(check bool) "some bucket series seen" true (Hashtbl.length tbl > 0))

let test_metrics_disabled_and_refusals () =
  (* telemetry = false: queries answer identically, metrics errors out. *)
  with_server
    ~configure:(fun c -> { c with Serve.Server.telemetry = false })
    (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      ignore (check_ok (Serve.Client.rpc_json c (Serve.Jsonr.parse (simple_query ~id:"q" ~tenant:"t"))));
      let err = obj (Serve.Client.rpc_json c (Serve.Jsonr.parse {|{"op":"metrics","id":"m"}|})) in
      Alcotest.check json "metrics refused when plane off" (J.Bool false) (get err "ok"));
  (* Refused requests land in the refusal counter and the request
     histogram under outcome=refused. *)
  Unix.putenv "PROBDB_FAULT" "delay:shard=0,ms=5";
  Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
  with_server
    ~configure:(fun c ->
      { c with
        Serve.Server.default_tenant =
          { c.Serve.Server.default_tenant with Serve.Server.tp_max_inflight = 1 }
      })
    (fun path _t ->
      let a = Serve.Client.connect_unix ~retry_ms:2000 path in
      let b = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          Serve.Client.send a (slow_query ~id:"one" ~tenant:"t1");
          Unix.sleepf 0.1;
          let refused = obj (Serve.Client.rpc_json b (Serve.Jsonr.parse (slow_query ~id:"two" ~tenant:"t1"))) in
          Alcotest.check json "over cap refused" (J.Bool false) (get refused "ok");
          ignore (Serve.Jsonr.parse (Serve.Client.recv a));
          let m = check_ok (Serve.Client.rpc_json b (Serve.Jsonr.parse {|{"op":"metrics","id":"m"}|})) in
          let doc = obj (get m "metrics") in
          let fams = match get doc "families" with J.List fs -> fs | _ -> [] in
          let refusals = family_named fams "probdb_admission_refusals_total" in
          (match get refusals "rows" with
           | J.List (_ :: _) -> ()
           | _ -> Alcotest.fail "no refusal rows");
          let rollup = obj (get (obj (get doc "tenants")) "t1") in
          Alcotest.(check bool) "rollup counts the refusal" true
            (match get rollup "refused" with J.Int n -> n >= 1 | _ -> false)))

let test_request_log_lines () =
  let mu = Mutex.create () in
  let lines = ref [] in
  Obs.Log.set_sink ~level:Obs.Log.Info
    (Some (fun l -> Mutex.protect mu (fun () -> lines := l :: !lines)));
  Fun.protect ~finally:(fun () -> Obs.Log.set_sink None) @@ fun () ->
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let resp = check_ok (Serve.Client.rpc_json c (Serve.Jsonr.parse (simple_query ~id:"lg" ~tenant:"logged"))) in
      let corr = match get resp "corr" with J.Str s -> s | _ -> Alcotest.fail "no corr" in
      (* A parse error is logged too, at warn. *)
      ignore (Serve.Client.rpc c "not json at all");
      let captured = Mutex.protect mu (fun () -> List.rev !lines) in
      let docs = List.map (fun l -> obj (Serve.Jsonr.parse l)) captured in
      let request_lines =
        List.filter (fun d -> List.assoc_opt "event" d = Some (J.Str "request")) docs
      in
      (match
         List.find_opt (fun d -> List.assoc_opt "corr" d = Some (J.Str corr)) request_lines
       with
       | None -> Alcotest.failf "no request log line with corr %s" corr
       | Some d ->
         Alcotest.check json "log line tenant" (J.Str "logged") (get d "tenant");
         Alcotest.check json "log line op" (J.Str "query") (get d "op");
         Alcotest.check json "log line level" (J.Str "info") (get d "level");
         Alcotest.check json "log line ok" (J.Bool true) (get d "ok");
         (match get d "elapsed_ms" with
          | J.Float f when f >= 0.0 -> ()
          | J.Int i when i >= 0 -> ()
          | j -> Alcotest.failf "bad elapsed_ms %s" (J.to_string j)));
      match
        List.find_opt
          (fun d ->
            List.assoc_opt "op" d = Some (J.Str "parse")
            && List.assoc_opt "level" d = Some (J.Str "warn"))
          docs
      with
      | None -> Alcotest.fail "parse error not logged at warn"
      | Some _ -> ())

let test_query_trace_flag () =
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let plain =
        check_ok
          (Serve.Client.rpc_json c (Serve.Jsonr.parse (simple_query ~id:"p" ~tenant:"t")))
      in
      Alcotest.(check bool) "no trace without the flag" true
        (List.assoc_opt "trace" plain = None);
      let traced =
        check_ok
          (Serve.Client.rpc_json c
             (Serve.Jsonr.parse
                {|{"op":"query","id":"tr","tenant":"t","trace":true,"source":"e(a). p(X) :- e(X). ?- p(a)."}|}))
      in
      let tdoc = obj (get traced "trace") in
      let events =
        match get tdoc "traceEvents" with J.List evs -> evs | _ -> Alcotest.fail "traceEvents"
      in
      match
        List.find_opt
          (fun ev ->
            let o = obj ev in
            List.assoc_opt "name" o = Some (J.Str "request")
            && List.assoc_opt "ph" o = Some (J.Str "X"))
          events
      with
      | None -> Alcotest.fail "no enclosing request span"
      | Some ev ->
        (* The span's args carry the correlation sequence joining it to the
           response's corr id. *)
        (match List.assoc_opt "args" (obj ev) with
         | Some (J.Obj args) ->
           Alcotest.(check bool) "corr_seq stamped into span args" true
             (List.mem_assoc "corr_seq" args)
         | _ -> Alcotest.fail "request span has no args"))

(* --- soak: concurrent sessions, fault matrix, bit-identical answers ------- *)

let progen_sources =
  (* Deterministic workload: enough cases to exercise the cache and several
     sessions, small enough to stay quick. *)
  let rng = Random.State.make [| 77 |] in
  List.init 6 (fun _ -> (Workload.Progen.random_case rng).Workload.Progen.source)

let test_soak_sessions_match_cli () =
  let faults = [ ""; "delay:shard=0,ms=1"; "flaky:shard=0,after=1" ] in
  List.iter
    (fun fault ->
      Unix.putenv "PROBDB_FAULT" fault;
      Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
      (* One-shot engine references, computed under the same fault spec. *)
      let exact_refs =
        List.map
          (fun src ->
            reference_report ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact src)
          progen_sources
      in
      let sample_method = Eval.Engine.Sampling { eps = 0.15; delta = 0.1; burn_in = 50 } in
      let sample_refs =
        List.map
          (fun src ->
            reference_report ~seed:11 ~domains:1 ~semantics:Eval.Engine.Inflationary
              ~method_:sample_method src)
          progen_sources
      in
      with_server (fun path _t ->
          let sessions = 4 in
          let worker s =
            Domain.spawn (fun () ->
                let c = Serve.Client.connect_unix ~retry_ms:2000 path in
                Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
                List.mapi
                  (fun i src ->
                    let exact =
                      Serve.Client.rpc_json c
                        (J.Obj
                           [ ("op", J.Str "query");
                             ("id", J.Str (Printf.sprintf "s%d-e%d" s i));
                             ("tenant", J.Str (Printf.sprintf "tenant%d" s));
                             ("source", J.Str src)
                           ])
                    in
                    let sampled =
                      Serve.Client.rpc_json c
                        (J.Obj
                           [ ("op", J.Str "estimate");
                             ("id", J.Str (Printf.sprintf "s%d-s%d" s i));
                             ("tenant", J.Str (Printf.sprintf "tenant%d" s));
                             ("source", J.Str src);
                             ("eps", J.Float 0.15);
                             ("delta", J.Float 0.1);
                             ("burn_in", J.Int 50);
                             ("seed", J.Int 11);
                             ("domains", J.Int 1)
                           ])
                    in
                    (exact, sampled))
                  progen_sources)
          in
          let domains = List.init sessions worker in
          let per_session = List.map Domain.join domains in
          List.iteri
            (fun s results ->
              List.iteri
                (fun i (exact, sampled) ->
                  let what kind = Printf.sprintf "fault=%S s%d case %d %s" fault s i kind in
                  check_answer ~what:(what "exact") (List.nth exact_refs i) exact;
                  check_answer ~what:(what "sampled") (List.nth sample_refs i) sampled)
                results)
            per_session))
    faults

let test_soak_kill_fault_matches_cli_error () =
  (* A killed shard fails the one-shot run with Engine_error; the daemon
     must surface the same message as a protocol-level error, keep serving,
     and recover once the fault is lifted. *)
  let src = List.hd progen_sources in
  let sample_method = Eval.Engine.Sampling { eps = 0.15; delta = 0.1; burn_in = 50 } in
  Unix.putenv "PROBDB_FAULT" "kill:shard=0,after=1";
  Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
  let reference_error =
    match
      reference_report ~seed:11 ~domains:1 ~semantics:Eval.Engine.Inflationary
        ~method_:sample_method src
    with
    | _ -> Alcotest.fail "one-shot run should fail under the kill fault"
    | exception Eval.Engine.Engine_error m -> m
  in
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let req =
        J.Obj
          [ ("op", J.Str "estimate");
            ("id", J.Str "kill");
            ("source", J.Str src);
            ("eps", J.Float 0.15);
            ("delta", J.Float 0.1);
            ("burn_in", J.Int 50);
            ("seed", J.Int 11);
            ("domains", J.Int 1)
          ]
      in
      let failed = obj (Serve.Client.rpc_json c req) in
      Alcotest.check json "daemon surfaces the failure" (J.Bool false) (get failed "ok");
      Alcotest.check json "same message as the one-shot engine" (J.Str reference_error)
        (get failed "error");
      (* The session survives; lifting the fault recovers the answer. *)
      Unix.putenv "PROBDB_FAULT" "";
      let reference =
        reference_report ~seed:11 ~domains:1 ~semantics:Eval.Engine.Inflationary
          ~method_:sample_method src
      in
      check_answer ~what:"post-fault recovery" reference (Serve.Client.rpc_json c req))

(* --- proto/3: ping, error codes, idempotency dedup ------------------------ *)

let state_dir_seq = Atomic.make 0

let fresh_state_dir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "probdb_state_%d_%d" (Unix.getpid ())
       (Atomic.fetch_and_add state_dir_seq 1))

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let code_of resp =
  match get (obj resp) "code" with
  | J.Str s -> s
  | j -> Alcotest.failf "code is not a string: %s" (J.to_string j)

let test_ping_and_error_codes () =
  with_server (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let pong = check_ok (Serve.Client.rpc_json c (Serve.Jsonr.parse {|{"op":"ping","id":"p1"}|})) in
      Alcotest.check json "pong" (J.Bool true) (get pong "pong");
      (match get pong "uptime_ms" with
       | J.Float f -> Alcotest.(check bool) "uptime non-negative" true (f >= 0.0)
       | j -> Alcotest.failf "uptime_ms: %s" (J.to_string j));
      (* every error response carries a taxonomy slug *)
      Alcotest.(check string) "parse error" "bad_request"
        (code_of (Serve.Jsonr.parse (Serve.Client.rpc c "definitely not json")));
      Alcotest.(check string) "unknown loaded name" "not_found"
        (code_of
           (Serve.Client.rpc_json c
              (Serve.Jsonr.parse {|{"op":"query","id":"q","tenant":"t","name":"nope"}|})));
      Alcotest.(check string) "missing source and name" "bad_request"
        (code_of
           (Serve.Client.rpc_json c (Serve.Jsonr.parse {|{"op":"query","id":"q2","tenant":"t"}|})));
      Alcotest.(check string) "unparsable program" "eval"
        (code_of
           (Serve.Client.rpc_json c
              (Serve.Jsonr.parse
                 {|{"op":"load","id":"l","tenant":"t","name":"x","source":"not a program ("}|}))))

let test_idem_dedup () =
  let dir = fresh_state_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  with_server
    ~configure:(fun c -> { c with Serve.Server.state_dir = Some dir })
    (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let line =
        {|{"op":"query","id":"q1","tenant":"t","idem":"k-1","source":"e(a). ?- e(a)."}|}
      in
      let r1 = Serve.Jsonr.parse (Serve.Client.rpc c line) in
      let r2 = Serve.Jsonr.parse (Serve.Client.rpc c line) in
      (* The stored response comes back verbatim — same corr id, same
         payload — proving the request did not re-execute. *)
      Alcotest.check json "retry gets the stored response verbatim" r1 r2;
      let r3 =
        Serve.Jsonr.parse
          (Serve.Client.rpc c
             {|{"op":"query","id":"q1","tenant":"t","idem":"k-2","source":"e(a). ?- e(a)."}|})
      in
      Alcotest.(check bool) "a fresh key executes freshly" true
        (get (obj r3) "corr" <> get (obj r1) "corr");
      (* Keys are per tenant: another tenant's identical key is not deduped. *)
      let other =
        Serve.Jsonr.parse
          (Serve.Client.rpc c
             {|{"op":"query","id":"q1","tenant":"u","idem":"k-1","source":"e(a). ?- e(a)."}|})
      in
      Alcotest.(check bool) "tenant-scoped keys" true
        (get (obj other) "corr" <> get (obj r1) "corr");
      (* An app-level load retry journals exactly once. *)
      let load =
        {|{"op":"load","id":"l1","tenant":"t","idem":"k-load","name":"p","source":"e(a). ?- e(a)."}|}
      in
      let l1 = Serve.Jsonr.parse (Serve.Client.rpc c load) in
      let l2 = Serve.Jsonr.parse (Serve.Client.rpc c load) in
      Alcotest.check json "load retry deduped" l1 l2;
      let sdoc =
        obj (get (check_ok (Serve.Client.rpc_json c
            (Serve.Jsonr.parse {|{"op":"stats","id":"s","tenant":"t"}|}))) "stats")
      in
      Alcotest.check json "journaled exactly once" (J.Int 1)
        (get (obj (get sdoc "journal")) "appended"))

(* --- hardening: fuzz, frame bound, read deadline --------------------------- *)

let valid_request_line =
  {|{"op":"query","id":"q1","tenant":"ops","class":"batch","source":"e(a). ?- e(a).","eps":0.1,"seed":9,"idem":"ab-1"}|}

(* Random bytes: the decoder is total — Ok or Error, never an exception. *)
let prop_decode_never_raises =
  QCheck.Test.make ~name:"proto decode is total on random bytes" ~count:500
    QCheck.(string_gen_of_size Gen.(int_bound 200) Gen.(map Char.chr (int_bound 255)))
    (fun s ->
      (match Serve.Proto.parse_request s with Ok _ | Error _ -> true)
      && (match Serve.Jsonr.parse_result s with Ok _ | Error _ -> true))

(* Single-byte mutations of a valid request: decoding stays total. *)
let prop_mutation_never_raises =
  QCheck.Test.make ~name:"proto decode survives mutated valid requests" ~count:500
    QCheck.(pair (int_bound (String.length valid_request_line - 1)) (int_bound 255))
    (fun (pos, byte) ->
      let b = Bytes.of_string valid_request_line in
      Bytes.set b pos (Char.chr byte);
      match Serve.Proto.parse_request (Bytes.to_string b) with Ok _ | Error _ -> true)

(* Mid-frame truncations of a valid request: ditto. *)
let prop_truncation_never_raises =
  QCheck.Test.make ~name:"proto decode survives truncated requests" ~count:200
    QCheck.(int_bound (String.length valid_request_line))
    (fun n ->
      match Serve.Proto.parse_request (String.sub valid_request_line 0 n) with
      | Ok _ | Error _ -> true)

let test_handle_line_fuzz () =
  (* The full request path: whatever bytes arrive, handle_line answers an
     envelope (never raises), and the server still works afterwards. *)
  with_server (fun path t ->
      let rng = Random.State.make [| 42 |] in
      let check_envelope line =
        match Serve.Server.handle_line t line with
        | J.Obj fields ->
          Alcotest.(check bool)
            (Printf.sprintf "envelope has ok for %S" line)
            true
            (List.mem_assoc "ok" fields)
        | j -> Alcotest.failf "non-object response %s for %S" (J.to_string j) line
      in
      for _ = 1 to 300 do
        let len = Random.State.int rng 120 in
        check_envelope (String.init len (fun _ -> Char.chr (Random.State.int rng 256)))
      done;
      for _ = 1 to 300 do
        let b = Bytes.of_string valid_request_line in
        Bytes.set b
          (Random.State.int rng (Bytes.length b))
          (Char.chr (Random.State.int rng 256));
        check_envelope (Bytes.to_string b)
      done;
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      ignore (check_ok (Serve.Client.rpc_json c (Serve.Jsonr.parse {|{"op":"ping","id":"p"}|}))))

let test_oversized_frame () =
  with_server
    ~configure:(fun c -> { c with Serve.Server.max_frame = 256 })
    (fun path _t ->
      let a = Serve.Client.connect_unix ~retry_ms:2000 path in
      let b = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          let resp = Serve.Jsonr.parse (Serve.Client.rpc a (String.make 1000 'x')) in
          Alcotest.check json "refused" (J.Bool false) (get (obj resp) "ok");
          Alcotest.(check string) "frame_too_large" "frame_too_large" (code_of resp);
          (try
             ignore (Serve.Client.recv a);
             Alcotest.fail "oversized session should be closed"
           with End_of_file -> ());
          (* other sessions are unaffected *)
          ignore
            (check_ok (Serve.Client.rpc_json b (Serve.Jsonr.parse {|{"op":"ping","id":"p"}|})))))

(* Reads a full line from a raw fd, with a wall bound so a server bug
   cannot hang the suite. *)
let read_line_fd fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if String.contains (Buffer.contents buf) '\n' then
      List.hd (String.split_on_char '\n' (Buffer.contents buf))
    else
      match Unix.select [ fd ] [] [] 10.0 with
      | [], _, _ -> Alcotest.fail "no response within 10 s"
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Alcotest.fail "connection closed before a response line"
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ())
  in
  go ()

let test_stalled_frame_times_out () =
  with_server
    ~configure:(fun c -> { c with Serve.Server.read_deadline_ms = 150. })
    (fun path _t ->
      (* Session b idles with an empty buffer the whole time: idle
         connections are free, only a started frame is deadlined. *)
      let b = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close b) @@ fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX path);
          let partial = {|{"op":"ping","id|} in
          ignore (Unix.write_substring fd partial 0 (String.length partial));
          let resp = Serve.Jsonr.parse (read_line_fd fd) in
          Alcotest.check json "stall refused" (J.Bool false) (get (obj resp) "ok");
          Alcotest.(check string) "timeout code" "timeout" (code_of resp);
          match Unix.read fd (Bytes.create 64) 0 64 with
          | 0 -> ()
          | _ -> Alcotest.fail "stalled session should be closed after the error");
      ignore (check_ok (Serve.Client.rpc_json b (Serve.Jsonr.parse {|{"op":"ping","id":"p"}|}))))

(* --- journal: roundtrip, torn tails, the crash-point matrix ---------------- *)

let jentry i =
  { Serve.Journal.tenant = "t";
    name = Printf.sprintf "p%d" i;
    source = Printf.sprintf "e(a%d). ?- e(a%d)." i i
  }

(* Last-wins view of a replayed entry list, as the server's program table
   sees it. *)
let final_map entries =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      Hashtbl.replace tbl (e.Serve.Journal.tenant, e.Serve.Journal.name) e.Serve.Journal.source)
    entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let test_journal_roundtrip () =
  let dir = fresh_state_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let j, entries, replay = Serve.Journal.open_ ~dir () in
  Alcotest.(check int) "fresh: no entries" 0 (List.length entries);
  Alcotest.(check int) "fresh: nothing truncated" 0 replay.Serve.Journal.truncated_bytes;
  List.iter (fun i -> Serve.Journal.append j (jentry i)) [ 1; 2; 3 ];
  let stats = Serve.Journal.stats j in
  Alcotest.(check int) "appended" 3 (List.assoc "appended" stats);
  Alcotest.(check bool) "fsync before every ack" true (List.assoc "fsyncs" stats >= 3);
  Serve.Journal.close j;
  let j2, entries2, replay2 = Serve.Journal.open_ ~dir () in
  Serve.Journal.close j2;
  Alcotest.(check int) "replayed records" 3 replay2.Serve.Journal.journal_records;
  Alcotest.(check int) "no snapshot yet" 0 replay2.Serve.Journal.snapshot_entries;
  Alcotest.(check int) "all entries back" 3 (List.length (final_map entries2));
  (* Compaction folds the journal into a snapshot and truncates the wal. *)
  let j3, _, _ = Serve.Journal.open_ ~compact_every:2 ~dir () in
  Serve.Journal.append j3 (jentry 4);
  (* live = 3 replayed + 1 appended >= 2: compacted *)
  let stats3 = Serve.Journal.stats j3 in
  Alcotest.(check bool) "compacted" true (List.assoc "compactions" stats3 >= 1);
  Alcotest.(check int) "wal reset after compaction" 0 (List.assoc "live_records" stats3);
  Serve.Journal.close j3;
  let j4, entries4, replay4 = Serve.Journal.open_ ~dir () in
  Serve.Journal.close j4;
  Alcotest.(check int) "snapshot carries everything" 4 replay4.Serve.Journal.snapshot_entries;
  Alcotest.(check int) "wal empty after compaction" 0 replay4.Serve.Journal.journal_records;
  Alcotest.(check int) "state intact" 4 (List.length (final_map entries4))

let test_journal_torn_tail () =
  let dir = fresh_state_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let j, _, _ = Serve.Journal.open_ ~dir () in
  List.iter (fun i -> Serve.Journal.append j (jentry i)) [ 1; 2 ];
  Serve.Journal.close j;
  let wal = Filename.concat dir "journal.wal" in
  (* A crash mid-write leaves a torn record: here, 7 bytes that are not
     even a complete frame header. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 wal in
  output_string oc "garbage";
  close_out oc;
  let j2, entries2, replay2 = Serve.Journal.open_ ~dir () in
  Serve.Journal.close j2;
  Alcotest.(check int) "valid prefix replayed" 2 replay2.Serve.Journal.journal_records;
  Alcotest.(check int) "torn tail dropped" 7 replay2.Serve.Journal.truncated_bytes;
  Alcotest.(check int) "state is the prefix" 2 (List.length (final_map entries2));
  (* The truncation is physical: a second replay sees a clean file. *)
  let j3, _, replay3 = Serve.Journal.open_ ~dir () in
  Alcotest.(check int) "tail gone on the second open" 0 replay3.Serve.Journal.truncated_bytes;
  (* Appends continue cleanly after a truncated recovery. *)
  Serve.Journal.append j3 (jentry 3);
  Serve.Journal.close j3;
  let j4, entries4, _ = Serve.Journal.open_ ~dir () in
  Serve.Journal.close j4;
  Alcotest.(check int) "append after recovery" 3 (List.length (final_map entries4));
  (* A flipped payload byte fails the CRC: the record and everything after
     it are dropped, never replayed as garbage. *)
  let contents =
    In_channel.with_open_bin wal (fun ic -> really_input_string ic (in_channel_length ic))
  in
  let b = Bytes.of_string contents in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
  Out_channel.with_open_bin wal (fun oc -> Out_channel.output_bytes oc b);
  let j5, entries5, replay5 = Serve.Journal.open_ ~dir () in
  Serve.Journal.close j5;
  Alcotest.(check int) "corrupt record dropped" 2 replay5.Serve.Journal.journal_records;
  Alcotest.(check bool) "corruption counted" true (replay5.Serve.Journal.truncated_bytes > 0);
  Alcotest.(check int) "state is the valid prefix" 2 (List.length (final_map entries5))

(* The crash-point matrix: arm each injected crash point, observe the
   simulated death, replay — the recovered state is exactly the pre-op or
   the post-op database, never a torn third state. *)
let test_journal_crash_matrix () =
  let base = { Serve.Journal.tenant = "t"; name = "base"; source = "e(a). ?- e(a)." } in
  let next = { Serve.Journal.tenant = "t"; name = "next"; source = "e(b). ?- e(b)." } in
  let pre_op = final_map [ base ] in
  let post_op = final_map [ base; next ] in
  List.iter
    (fun (point, expect_post) ->
      let dir = fresh_state_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let j0, _, _ = Serve.Journal.open_ ~dir () in
      Serve.Journal.append j0 base;
      Serve.Journal.close j0;
      let fault = Guard.Fault.of_string ("journal-crash:point=" ^ point) in
      (* compact_every 2 so the rename points actually fire: base (replayed)
         + next reaches the compaction threshold. *)
      let j1, _, _ = Serve.Journal.open_ ~fault ~compact_every:2 ~dir () in
      (try
         Serve.Journal.append j1 next;
         Alcotest.failf "%s: expected the injected crash" point
       with Guard.Fault.Injected _ -> ());
      (* The crashed process never closes cleanly; recovery starts from
         whatever the disk holds. *)
      let j2, entries, _ = Serve.Journal.open_ ~dir () in
      Serve.Journal.close j2;
      let recovered = final_map entries in
      let expected = if expect_post then post_op else pre_op in
      if recovered <> expected then
        Alcotest.failf "%s: recovered a torn third state (%d entries)" point
          (List.length recovered);
      (* No snapshot temp orphans survive recovery. *)
      let orphans =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> String.starts_with ~prefix:"snapshot.bin.tmp." f)
      in
      Alcotest.(check (list string)) (point ^ ": temp orphans swept") [] orphans)
    [ ("pre-write", false);
      ("mid-record", false);
      ("pre-rename", true);
      ("post-rename", true)
    ]

(* --- durability through the server: restart replay, kill/restart soak ------ *)

let reach_source =
  "edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z). ?- path(a,c)."

let test_restart_replays_state () =
  let dir = fresh_state_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let configure c = { c with Serve.Server.state_dir = Some dir } in
  let exact_ref =
    reference_report ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact reach_source
  in
  let est_method = Eval.Engine.Sampling { eps = 0.1; delta = 0.1; burn_in = 200 } in
  let est_ref =
    reference_report ~seed:5 ~semantics:Eval.Engine.Inflationary ~method_:est_method
      reach_source
  in
  with_server ~configure (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      ignore
        (check_ok
           (Serve.Client.rpc_json c
              (J.Obj
                 [ ("op", J.Str "load");
                   ("id", J.Str "l1");
                   ("tenant", J.Str "t1");
                   ("name", J.Str "reach");
                   ("source", J.Str reach_source)
                 ])));
      check_answer ~what:"pre-restart exact" exact_ref
        (Serve.Client.rpc_json c
           (Serve.Jsonr.parse {|{"op":"query","id":"q1","tenant":"t1","name":"reach"}|})));
  (* A brand-new server on the same state dir: the program is back without
     being re-sent, and answers are Q-identical. *)
  with_server ~configure (fun path _t ->
      let c = Serve.Client.connect_unix ~retry_ms:2000 path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      check_answer ~what:"post-restart exact" exact_ref
        (Serve.Client.rpc_json c
           (Serve.Jsonr.parse {|{"op":"query","id":"q2","tenant":"t1","name":"reach"}|}));
      (* fixed-seed estimates are draw-identical across the restart *)
      check_answer ~what:"post-restart estimate" est_ref
        (Serve.Client.rpc_json c
           (Serve.Jsonr.parse
              {|{"op":"estimate","id":"q3","tenant":"t1","name":"reach","eps":0.1,"delta":0.1,"seed":5}|}));
      (* replay counters are exported in stats and the telemetry plane *)
      let sdoc =
        obj (get (check_ok (Serve.Client.rpc_json c
            (Serve.Jsonr.parse {|{"op":"stats","id":"s","tenant":"t1"}|}))) "stats")
      in
      Alcotest.check json "one record replayed" (J.Int 1)
        (get (obj (get sdoc "journal")) "replayed_records");
      let m =
        check_ok
          (Serve.Client.rpc_json c (Serve.Jsonr.parse {|{"op":"metrics","id":"m","tenant":"t1"}|}))
      in
      let text = match get m "prometheus" with J.Str s -> s | _ -> Alcotest.fail "prometheus" in
      List.iter
        (fun needle ->
          let nl = String.length needle and tl = String.length text in
          let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
          if not (go 0) then Alcotest.failf "prometheus text missing %S" needle)
        [ "probdb_journal_replayed_records 1"; "probdb_journal_appends_total" ])

(* The in-process kill/restart soak: generations of the daemon die — one
   of them by an injected crash in the middle of a journal append — and
   every restart replays to a state whose answers equal the fault-free
   run.  (The CI chaos smoke does the same with real SIGKILLs.) *)
let test_kill_restart_soak () =
  let dir = fresh_state_dir () in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PROBDB_FAULT" "";
      rm_rf dir)
    (fun () ->
      let sources = List.filteri (fun i _ -> i < 3) progen_sources in
      let exact_refs =
        List.map
          (fun src ->
            reference_report ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact src)
          sources
      in
      let est_method = Eval.Engine.Sampling { eps = 0.15; delta = 0.1; burn_in = 50 } in
      let est_refs =
        List.map
          (fun src ->
            reference_report ~seed:11 ~domains:1 ~semantics:Eval.Engine.Inflationary
              ~method_:est_method src)
          sources
      in
      let configure c = { c with Serve.Server.state_dir = Some dir } in
      let load_req i src =
        J.Obj
          [ ("op", J.Str "load");
            ("id", J.Str (Printf.sprintf "l%d" i));
            ("tenant", J.Str "soak");
            ("name", J.Str (Printf.sprintf "n%d" i));
            ("source", J.Str src)
          ]
      in
      (* Generation 1: loads n0 and n1, dies (clean shutdown — the state
         must not depend on how the process exits). *)
      with_server ~configure (fun path _t ->
          let c = Serve.Client.connect_unix ~retry_ms:2000 path in
          Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
          ignore (check_ok (Serve.Client.rpc_json c (load_req 0 (List.nth sources 0))));
          ignore (check_ok (Serve.Client.rpc_json c (load_req 1 (List.nth sources 1)))));
      (* Generation 2: crashes in the middle of journaling n2 — the torn
         record hits the disk, the session dies without an ack. *)
      Unix.putenv "PROBDB_FAULT" "journal-crash:point=mid-record";
      with_server ~configure (fun path _t ->
          Unix.putenv "PROBDB_FAULT" "";
          let c = Serve.Client.connect_unix ~retry_ms:2000 path in
          Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
          Serve.Client.send c (Obs.Json.to_string (load_req 2 (List.nth sources 2)));
          (try
             ignore (Serve.Client.recv c);
             Alcotest.fail "the crashed load must not be acked"
           with End_of_file -> ());
          (* the daemon itself survives the simulated crash *)
          let c2 = Serve.Client.connect_unix ~retry_ms:2000 path in
          Fun.protect ~finally:(fun () -> Serve.Client.close c2) @@ fun () ->
          ignore (check_ok (Serve.Client.rpc_json c2 (Serve.Jsonr.parse {|{"op":"ping","id":"p"}|}))));
      (* Generation 3: recovery truncates the torn record; the unacked load
         is re-issued (the client's contract: no ack, no durability). *)
      with_server ~configure (fun path _t ->
          let c = Serve.Client.connect_unix ~retry_ms:2000 path in
          Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
          let sdoc =
            obj (get (check_ok (Serve.Client.rpc_json c
                (Serve.Jsonr.parse {|{"op":"stats","id":"s","tenant":"soak"}|}))) "stats")
          in
          Alcotest.(check bool) "torn record truncated on replay" true
            (match get (obj (get sdoc "journal")) "truncated_bytes" with
             | J.Int n -> n > 0
             | _ -> false);
          ignore (check_ok (Serve.Client.rpc_json c (load_req 2 (List.nth sources 2)))));
      (* Final generation: every answer equals the fault-free references. *)
      with_server ~configure (fun path _t ->
          let c = Serve.Client.connect_unix ~retry_ms:2000 path in
          Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
          List.iteri
            (fun i _src ->
              let what kind = Printf.sprintf "soak case %d %s" i kind in
              let exact =
                Serve.Client.rpc_json c
                  (J.Obj
                     [ ("op", J.Str "query");
                       ("id", J.Str (Printf.sprintf "e%d" i));
                       ("tenant", J.Str "soak");
                       ("name", J.Str (Printf.sprintf "n%d" i))
                     ])
              in
              check_answer ~what:(what "exact") (List.nth exact_refs i) exact;
              let sampled =
                Serve.Client.rpc_json c
                  (J.Obj
                     [ ("op", J.Str "estimate");
                       ("id", J.Str (Printf.sprintf "s%d" i));
                       ("tenant", J.Str "soak");
                       ("name", J.Str (Printf.sprintf "n%d" i));
                       ("eps", J.Float 0.15);
                       ("delta", J.Float 0.1);
                       ("burn_in", J.Int 50);
                       ("seed", J.Int 11);
                       ("domains", J.Int 1)
                     ])
              in
              check_answer ~what:(what "estimate") (List.nth est_refs i) sampled)
            sources))

(* --- resilient client: backoff policy, reconnect, deadlines ---------------- *)

let test_backoff_monotone () =
  let module B = Serve.Client.Backoff in
  let b = B.make ~base_ms:10. ~cap_ms:100. ~budget_ms:100. ~seed:7 () in
  (match B.next b ~now_ns:1_000_000_000 with
   | B.Sleep_ms ms -> Alcotest.(check bool) "first sleep in budget" true (ms > 0. && ms <= 100.)
   | B.Give_up -> Alcotest.fail "fresh policy must sleep");
  (* budget spent by clock advance *)
  (match B.next b ~now_ns:(1_000_000_000 + 200_000_000) with
   | B.Give_up -> ()
   | B.Sleep_ms _ -> Alcotest.fail "budget must be spent after 200 ms");
  (* the monotone regression: a backwards clock reading cannot stretch the
     retry window — the high-water latch keeps the budget spent *)
  (match B.next b ~now_ns:0 with
   | B.Give_up -> ()
   | B.Sleep_ms _ -> Alcotest.fail "backwards reading stretched the retry window");
  Alcotest.(check int) "one attempt granted" 1 (B.attempts b);
  (* sleeps clamp to the remaining budget *)
  let b2 = B.make ~base_ms:1_000. ~cap_ms:5_000. ~budget_ms:50. ~seed:1 () in
  (match B.next b2 ~now_ns:0 with
   | B.Sleep_ms ms -> Alcotest.(check bool) "clamped to remaining budget" true (ms <= 50.)
   | B.Give_up -> Alcotest.fail "fresh policy must sleep");
  (* jitter is deterministic under a fixed seed *)
  let sleeps seed =
    let b = B.make ~base_ms:10. ~cap_ms:100. ~budget_ms:1_000. ~seed () in
    List.init 4 (fun i ->
        match B.next b ~now_ns:(i * 1_000_000) with
        | B.Sleep_ms ms -> ms
        | B.Give_up -> -1.)
  in
  Alcotest.(check (list (float 0.0))) "deterministic jitter" (sleeps 3) (sleeps 3)

let test_connect_retry_monotone () =
  let missing =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "probdbd_nosuch_%d.sock" (Unix.getpid ()))
  in
  (* The window is real: a dead socket stops being retried once the
     budget is spent. *)
  let t0 = Unix.gettimeofday () in
  (try
     ignore (Serve.Client.connect ~retry_ms:200 (Unix.ADDR_UNIX missing));
     Alcotest.fail "expected the connect to fail"
   with Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) -> ());
  Alcotest.(check bool) "window bounded in wall time" true (Unix.gettimeofday () -. t0 < 5.0);
  (* The monotone regression: deadline and polls read the same latched
     clock, so neither the clock's inherent offset from wall time nor a
     forward step collapses the retry window — a server that appears
     150 ms into the window is still reached.  (With the old
     gettimeofday-vs-monotone mix, the deadline compares against a clock
     billions of ns away and the window collapses to a single attempt.) *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "probdbd_test_%d_%d.sock" (Unix.getpid ())
         (Atomic.fetch_and_add next_sock 1))
  in
  Obs.advance_ns 1_000_000_000;
  let srv =
    Domain.spawn (fun () ->
        Unix.sleepf 0.15;
        let t = Serve.Server.create (Serve.Server.default_config (Serve.Server.Unix_sock path)) in
        let d = Domain.spawn (fun () -> Serve.Server.serve_forever t) in
        (t, d))
  in
  let c = Serve.Client.connect ~retry_ms:5_000 (Unix.ADDR_UNIX path) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Client.close c;
      let t, d = Domain.join srv in
      Serve.Server.shutdown t;
      Domain.join d)
    (fun () ->
      ignore (check_ok (Serve.Client.rpc_json c (Serve.Jsonr.parse {|{"op":"ping","id":"p"}|}))))

let resilient_query ~id =
  J.Obj
    [ ("op", J.Str "query");
      ("id", J.Str id);
      ("tenant", J.Str "r");
      ("source", J.Str reach_source)
    ]

let test_resilient_reconnect_across_restart () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "probdbd_test_%d_%d.sock" (Unix.getpid ())
         (Atomic.fetch_and_add next_sock 1))
  in
  let cfg = Serve.Server.default_config (Serve.Server.Unix_sock path) in
  let exact_ref =
    reference_report ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact reach_source
  in
  let t1 = Serve.Server.create cfg in
  let d1 = Domain.spawn (fun () -> Serve.Server.serve_forever t1) in
  let r = Serve.Client.resilient_connect ~retry_budget_ms:5_000. ~seed:3 (Unix.ADDR_UNIX path) in
  Fun.protect ~finally:(fun () -> Serve.Client.resilient_close r) @@ fun () ->
  check_answer ~what:"before the restart" exact_ref
    (Serve.Client.resilient_rpc r (resilient_query ~id:"r1"));
  Serve.Server.shutdown t1;
  Domain.join d1;
  (* A non-idempotent op against the dead server raises instead of being
     re-issued blind. *)
  (try
     ignore
       (Serve.Client.resilient_rpc r
          (J.Obj
             [ ("op", J.Str "load");
               ("id", J.Str "l");
               ("tenant", J.Str "r");
               ("name", J.Str "p");
               ("source", J.Str "e(a). ?- e(a).")
             ]));
     Alcotest.fail "expected the load to raise with the server down"
   with
  | End_of_file | Unix.Unix_error _ | Serve.Client.Unavailable _ -> ());
  (* Server generation 2 on the same address: the idempotent query rides
     an automatic reconnect. *)
  let t2 = Serve.Server.create cfg in
  let d2 = Domain.spawn (fun () -> Serve.Server.serve_forever t2) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown t2;
      Domain.join d2)
    (fun () ->
      check_answer ~what:"after the restart" exact_ref
        (Serve.Client.resilient_rpc r (resilient_query ~id:"r2")));
  (* With no server at all, the retry budget runs out into Unavailable. *)
  let r2 =
    try
      Some
        (Serve.Client.resilient_connect ~retry_budget_ms:200. ~seed:4 (Unix.ADDR_UNIX path))
    with Serve.Client.Unavailable _ -> None
  in
  match r2 with
  | None -> ()
  | Some r2 ->
    Fun.protect ~finally:(fun () -> Serve.Client.resilient_close r2) @@ fun () ->
    (try
       ignore (Serve.Client.resilient_rpc r2 (resilient_query ~id:"r3"));
       Alcotest.fail "expected Unavailable with no server"
     with Serve.Client.Unavailable _ | Unix.Unix_error _ | End_of_file -> ())

let test_resilient_deadline_timeout () =
  Unix.putenv "PROBDB_FAULT" "resp-delay:ms=500";
  Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
  with_server (fun path _t ->
      Unix.putenv "PROBDB_FAULT" "";
      let r =
        Serve.Client.resilient_connect ~deadline_ms:100. ~retry_budget_ms:2_000. ~seed:1
          (Unix.ADDR_UNIX path)
      in
      Fun.protect ~finally:(fun () -> Serve.Client.resilient_close r) @@ fun () ->
      try
        ignore (Serve.Client.resilient_rpc r (J.Obj [ ("op", J.Str "ping"); ("id", J.Str "p") ]));
        Alcotest.fail "expected Timeout under the delayed-response fault"
      with Serve.Client.Timeout _ -> ())

let test_resilient_rides_write_faults () =
  let exact_ref =
    reference_report ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact reach_source
  in
  List.iter
    (fun fault ->
      Unix.putenv "PROBDB_FAULT" fault;
      Fun.protect ~finally:(fun () -> Unix.putenv "PROBDB_FAULT" "") @@ fun () ->
      with_server (fun path _t ->
          Unix.putenv "PROBDB_FAULT" "";
          let r =
            Serve.Client.resilient_connect ~retry_budget_ms:5_000. ~seed:6
              (Unix.ADDR_UNIX path)
          in
          Fun.protect ~finally:(fun () -> Serve.Client.resilient_close r) @@ fun () ->
          (* Every connection serves at most one complete response before the
             fault bites; each query rides a reconnect + idempotent re-issue
             (for the torn write, the server's idem dedup answers the retry
             from its stored-response table). *)
          for i = 1 to 3 do
            check_answer
              ~what:(Printf.sprintf "fault=%s query %d" fault i)
              exact_ref
              (Serve.Client.resilient_rpc r (resilient_query ~id:(Printf.sprintf "w%d" i)))
          done))
    [ "conn-drop:after=1"; "partial-write:after=1" ]

(* --- run ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [ ( "jsonr",
        [ Alcotest.test_case "emit/parse roundtrip" `Quick test_jsonr_roundtrip;
          Alcotest.test_case "literals, escapes, rejects" `Quick test_jsonr_literals
        ] );
      ( "proto",
        [ Alcotest.test_case "request decoding" `Quick test_proto_decode ] );
      ( "cache",
        [ Alcotest.test_case "hits, misses, fingerprints" `Quick test_plan_cache ] );
      ( "server",
        [ Alcotest.test_case "load/query/estimate/stats/cancel" `Quick test_server_end_to_end;
          Alcotest.test_case "cancel an in-flight request" `Quick test_cancel_inflight;
          Alcotest.test_case "per-tenant admission control" `Quick test_admission_control;
          Alcotest.test_case "per-tenant budget degrades per class" `Quick
            test_tenant_budget_degrades
        ] );
      ( "telemetry",
        [ Alcotest.test_case "metrics op: JSON + Prometheus, exact counts" `Quick test_metrics_op;
          Alcotest.test_case "plane off and refusal accounting" `Quick
            test_metrics_disabled_and_refusals;
          Alcotest.test_case "structured request logs with corr ids" `Quick
            test_request_log_lines;
          Alcotest.test_case "per-request inline trace" `Quick test_query_trace_flag
        ] );
      ( "soak",
        [ Alcotest.test_case "4 sessions bit-identical to one-shot (fault matrix)" `Slow
            test_soak_sessions_match_cli;
          Alcotest.test_case "kill fault surfaces the one-shot error" `Quick
            test_soak_kill_fault_matches_cli_error
        ] );
      ( "proto3",
        [ Alcotest.test_case "ping op and error taxonomy codes" `Quick
            test_ping_and_error_codes;
          Alcotest.test_case "idempotency dedup: verbatim stored responses" `Quick
            test_idem_dedup
        ] );
      ( "hardening",
        ([ Alcotest.test_case "handle_line total under byte fuzz" `Quick
             test_handle_line_fuzz;
           Alcotest.test_case "oversized frame refused and closed" `Quick
             test_oversized_frame;
           Alcotest.test_case "mid-frame stall hits the read deadline" `Quick
             test_stalled_frame_times_out
         ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_decode_never_raises; prop_mutation_never_raises;
              prop_truncation_never_raises
            ]) );
      ( "journal",
        [ Alcotest.test_case "append/replay roundtrip and compaction" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "torn tails and CRC failures truncate cleanly" `Quick
            test_journal_torn_tail;
          Alcotest.test_case "crash-point matrix: pre-op or post-op, never torn" `Quick
            test_journal_crash_matrix
        ] );
      ( "durability",
        [ Alcotest.test_case "restart replays state Q-identically" `Quick
            test_restart_replays_state;
          Alcotest.test_case "kill/restart soak equals the fault-free run" `Slow
            test_kill_restart_soak
        ] );
      ( "resilient",
        [ Alcotest.test_case "backoff: latched clock, budget, jitter" `Quick
            test_backoff_monotone;
          Alcotest.test_case "connect retry window on the monotone clock" `Quick
            test_connect_retry_monotone;
          Alcotest.test_case "reconnect across a server restart" `Quick
            test_resilient_reconnect_across_restart;
          Alcotest.test_case "per-request deadline raises Timeout" `Quick
            test_resilient_deadline_timeout;
          Alcotest.test_case "rides conn-drop and partial-write faults" `Quick
            test_resilient_rides_write_faults
        ] )
    ]
