(* Tests for the Obs telemetry layer: the monotonic clock, JSON escaping
   round-tripped against a reference parser, Chrome trace-event format
   invariants, and Series merge determinism across domain counts. *)

module J = Obs.Json

(* --- reference JSON parser ---------------------------------------------- *)

(* Independent recursive-descent parser used to validate what [Obs.Json]
   emits — deliberately not sharing any code with the emitter.  Numbers with
   a '.', 'e' or 'E' parse as [Float], everything else as [Int]; [\uXXXX]
   escapes below 0x100 decode to the raw byte (the emitter only produces
   them for control bytes). *)
exception Parse_error of string

let parse_json (s : string) : J.t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let code =
             (hex s.[!pos] lsl 12) lor (hex s.[!pos + 1] lsl 8) lor (hex s.[!pos + 2] lsl 4)
             lor hex s.[!pos + 3]
           in
           pos := !pos + 4;
           if code < 0x100 then Buffer.add_char b (Char.chr code)
           else fail "non-byte \\u escape"
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c when Char.code c < 0x20 -> fail "raw control byte in string"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_num_char c =
      match c with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      J.Float (float_of_string tok)
    else J.Int (int_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" J.Null
    | Some 't' -> literal "true" (J.Bool true)
    | Some 'f' -> literal "false" (J.Bool false)
    | Some '"' -> J.Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J.List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        J.List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J.Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        J.Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let rec pp_json fmt (j : J.t) =
  match j with
  | J.Null -> Format.fprintf fmt "null"
  | J.Bool b -> Format.fprintf fmt "%b" b
  | J.Int i -> Format.fprintf fmt "%d" i
  | J.Float f -> Format.fprintf fmt "%g" f
  | J.Str s -> Format.fprintf fmt "%S" s
  | J.List xs ->
    Format.fprintf fmt "[%a]" (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_json) xs
  | J.Obj fs ->
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f "; ")
         (fun f (k, v) -> Format.fprintf f "%S: %a" k pp_json v))
      fs

let json_t = Alcotest.testable pp_json ( = )

let assoc_exn k = function
  | J.Obj fields ->
    (match List.assoc_opt k fields with
     | Some v -> v
     | None -> Alcotest.failf "missing key %S" k)
  | _ -> Alcotest.failf "not an object while looking for %S" k

(* --- clock ---------------------------------------------------------------- *)

let test_now_ns_monotone () =
  let prev = ref (Obs.now_ns ()) in
  for _ = 1 to 50_000 do
    let t = Obs.now_ns () in
    if t < !prev then Alcotest.failf "clock went backwards: %d after %d" t !prev;
    prev := t
  done

let test_durations_nonneg () =
  let was = Obs.enabled () in
  Obs.reset ();
  Obs.set_enabled true;
  (* > 64 applications so wrap1's 1-in-64 sampling clocks at least one. *)
  let f = Obs.wrap1 "test.wrapped" (fun x -> x + 1) in
  for i = 1 to 200 do
    ignore (f i)
  done;
  Obs.phase "test.phase" (fun () -> ignore (Sys.opaque_identity (Array.make 64 0)));
  Alcotest.(check int) "ticks exact" 200 (Obs.count_of "test.wrapped");
  if Obs.ms_of "test.wrapped" < 0.0 then
    Alcotest.failf "negative wrapped ms: %f" (Obs.ms_of "test.wrapped");
  (match List.assoc_opt "test.phase" (Obs.phases ()) with
   | None -> Alcotest.fail "phase not recorded"
   | Some ms -> if ms < 0.0 then Alcotest.failf "negative phase ms: %f" ms);
  Obs.reset ();
  Obs.set_enabled was

(* --- JSON escaping -------------------------------------------------------- *)

let test_escape_corner_cases () =
  List.iter
    (fun s ->
      let round = parse_json (J.to_string (J.Str s)) in
      Alcotest.check json_t (Printf.sprintf "round-trip %S" s) (J.Str s) round)
    [ "";
      "plain";
      "\"";
      "\\";
      "\"\\\"";
      "\n\r\t\b\012";
      "\000\001\031";
      "a\"b\\c\nd";
      "h\xc3\xa9llo";  (* UTF-8 bytes pass through *)
      "trailing backslash \\";
      "/slashes//";
      String.init 32 Char.chr
    ]

let arb_byte_string =
  QCheck.string_gen_of_size (QCheck.Gen.int_bound 60) (QCheck.Gen.map Char.chr (QCheck.Gen.int_bound 255))

let escape_roundtrip =
  QCheck.Test.make ~name:"Json escaping round-trips arbitrary byte strings" ~count:500
    arb_byte_string (fun s -> parse_json (J.to_string (J.Str s)) = J.Str s)

(* Float-free values so round-trip equality is exact (the emitter prints
   floats with %.6g, which is lossy by design). *)
let arb_json =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun s -> J.Str s) (string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 20))
      ]
  in
  let tree =
    fix (fun self depth ->
        if depth = 0 then leaf
        else
          frequency
            [ (3, leaf);
              (1, map (fun xs -> J.List xs) (list_size (int_bound 4) (self (depth - 1))));
              ( 1,
                map
                  (fun kvs -> J.Obj kvs)
                  (list_size (int_bound 4)
                     (pair (string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 12))
                        (self (depth - 1)))) )
            ])
      2
  in
  QCheck.make ~print:(fun j -> J.to_string j) tree

let json_roundtrip =
  QCheck.Test.make ~name:"Json documents round-trip through the reference parser" ~count:300
    arb_json (fun j -> parse_json (J.to_string j) = j)

(* --- trace format --------------------------------------------------------- *)

let with_trace f =
  Obs.Trace.reset ();
  Obs.Series.reset ();
  Obs.Trace.set_enabled true;
  Obs.Series.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Series.set_enabled false;
      Obs.Trace.reset ();
      Obs.Series.reset ())
    f

let check_balanced_and_monotone events =
  (* Per tid: B/E obey stack discipline and close, ts never decreases, and
     the groups come out tid-ascending. *)
  let last_tid = ref min_int in
  let depth = ref 0 in
  let last_ts = ref 0 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      if e.tid < !last_tid then
        Alcotest.failf "tid groups out of order: %d after %d" e.tid !last_tid;
      if e.tid > !last_tid then begin
        if !depth <> 0 then Alcotest.failf "unbalanced spans on tid %d" !last_tid;
        last_tid := e.tid;
        last_ts := 0
      end;
      if e.ts < !last_ts then
        Alcotest.failf "ts went backwards on tid %d: %d after %d" e.tid e.ts !last_ts;
      last_ts := e.ts;
      if e.ts < 0 then Alcotest.failf "negative ts %d" e.ts;
      if e.dur < 0 then Alcotest.failf "negative dur %d" e.dur;
      match e.ph with
      | 'B' -> incr depth
      | 'E' ->
        decr depth;
        if !depth < 0 then Alcotest.failf "E without B on tid %d" e.tid
      | 'X' | 'i' -> ()
      | c -> Alcotest.failf "unknown ph %c" c)
    events;
  if !depth <> 0 then Alcotest.failf "unbalanced spans on tid %d" !last_tid

let test_trace_spans_balanced () =
  with_trace (fun () ->
      Obs.Trace.begin_span "outer";
      Obs.Trace.instant "mark" ~args:[ ("k", 1) ];
      Obs.Trace.begin_span "inner";
      Obs.Trace.end_span "inner";
      Obs.Trace.end_span "outer";
      Obs.Trace.begin_span ~tid:3 "shard";
      Obs.Trace.instant ~tid:3 "tick";
      Obs.Trace.end_span ~tid:3 "shard";
      let t0 = Obs.now_ns () in
      Obs.Trace.complete ~tid:1 ~t0 ~dur:(Obs.now_ns () - t0) "done";
      let events = Obs.Trace.events () in
      Alcotest.(check int) "all events recorded" 9 (List.length events);
      check_balanced_and_monotone events)

let test_trace_json_shape () =
  with_trace (fun () ->
      Obs.Trace.with_span "work" (fun () -> Obs.Trace.instant "inside");
      Obs.Series.add "s" ~it:0 1.0;
      let doc = parse_json (J.to_string (Obs.Trace.json ())) in
      let events =
        match assoc_exn "traceEvents" doc with
        | J.List evs -> evs
        | _ -> Alcotest.fail "traceEvents is not a list"
      in
      Alcotest.(check int) "two events" 2 (List.length events);
      List.iter
        (fun ev ->
          (match assoc_exn "ph" ev with
           | J.Str ("B" | "E" | "X" | "i") -> ()
           | v -> Alcotest.failf "bad ph %s" (J.to_string v));
          (match assoc_exn "ts" ev with
           | J.Int ts when ts >= 0 -> ()
           | v -> Alcotest.failf "bad ts %s" (J.to_string v));
          (match (assoc_exn "pid" ev, assoc_exn "tid" ev) with
           | J.Int p, J.Int t when p = t -> ()
           | _ -> Alcotest.fail "pid <> tid");
          match assoc_exn "ph" ev with
          | J.Str "X" ->
            (match assoc_exn "dur" ev with
             | J.Int d when d >= 0 -> ()
             | v -> Alcotest.failf "bad dur %s" (J.to_string v))
          | J.Str "i" ->
            (match assoc_exn "s" ev with
             | J.Str "t" -> ()
             | v -> Alcotest.failf "bad instant scope %s" (J.to_string v))
          | _ -> ())
        events;
      match assoc_exn "schema" (assoc_exn "series" doc) with
      | J.Str "probdb.series/1" -> ()
      | v -> Alcotest.failf "bad series schema %s" (J.to_string v))

let test_trace_disabled_records_nothing () =
  Obs.Trace.reset ();
  Obs.Trace.begin_span "ghost";
  Obs.Trace.end_span "ghost";
  Obs.Trace.instant "ghost";
  Alcotest.(check int) "no events" 0 (List.length (Obs.Trace.events ()))

(* --- series determinism --------------------------------------------------- *)

let pool_run ~domains =
  Obs.Series.reset ();
  Obs.Series.set_enabled true;
  let rng = Random.State.make [| 11 |] in
  let hits =
    Eval.Pool.count_hits ~domains ~samples:500 rng (fun rng -> Random.State.float rng 1.0 < 0.3)
  in
  let merged = Obs.Series.merged () in
  Obs.Series.set_enabled false;
  Obs.Series.reset ();
  (hits, merged)

let test_pool_series_domain_independent () =
  let h1, m1 = pool_run ~domains:1 in
  let h2, m2 = pool_run ~domains:2 in
  let h4, m4 = pool_run ~domains:4 in
  Alcotest.(check int) "hits 1 vs 2 domains" h1 h2;
  Alcotest.(check int) "hits 1 vs 4 domains" h1 h4;
  if m1 = [] then Alcotest.fail "no series recorded";
  if m1 <> m2 then Alcotest.fail "merged series differ between 1 and 2 domains";
  if m1 <> m4 then Alcotest.fail "merged series differ between 1 and 4 domains"

let test_pool_series_estimates_sane () =
  Obs.Series.reset ();
  Obs.Series.set_enabled true;
  let rng = Random.State.make [| 5 |] in
  ignore (Eval.Pool.count_hits ~domains:2 ~samples:400 rng (fun rng -> Random.State.bool rng));
  let merged = Obs.Series.merged () in
  Obs.Series.set_enabled false;
  Obs.Series.reset ();
  let streams name = List.filter (fun (n, _, _) -> String.equal n name) merged in
  if streams "sampler.estimate" = [] then Alcotest.fail "no estimate streams";
  List.iter
    (fun (name, shard, points) ->
      ignore shard;
      if String.equal name "sampler.estimate" || String.equal name "sampler.ci_low"
         || String.equal name "sampler.ci_high"
      then
        List.iter
          (fun (it, v) ->
            if it <= 0 then Alcotest.failf "%s: non-positive iteration %d" name it;
            if v < 0.0 || v > 1.0 then Alcotest.failf "%s: value %f outside [0,1]" name v)
          points)
    merged

(* Interleaving streams' points in any cross-stream order yields the same
   merged view: merged sorts by (name, shard) and each stream keeps its own
   recording order, which we preserve by construction. *)
let series_merge_order_insensitive =
  let arb =
    QCheck.make
      ~print:QCheck.Print.(list (pair int (list int)))
      QCheck.Gen.(
        list_size (int_range 1 4)
          (pair (int_bound 3) (list_size (int_range 1 6) (int_bound 100))))
  in
  QCheck.Test.make ~name:"Series merge is insensitive to cross-stream interleaving" ~count:100
    arb (fun streams ->
      (* streams: (shard, values) — names derived from the index so streams
         are distinct even when shards collide. *)
      let streams =
        List.mapi (fun i (shard, vals) -> (Printf.sprintf "s%d" (i mod 2), shard, vals)) streams
      in
      let record_stream (name, shard, vals) =
        List.iteri (fun it v -> Obs.Series.add name ~shard ~it (float_of_int v)) vals
      in
      let sequential () =
        Obs.Series.reset ();
        Obs.Series.set_enabled true;
        List.iter record_stream streams;
        let m = Obs.Series.merged () in
        Obs.Series.set_enabled false;
        m
      in
      let interleaved () =
        Obs.Series.reset ();
        Obs.Series.set_enabled true;
        (* Round-robin across streams, preserving each stream's own order. *)
        let queues =
          List.map (fun (name, shard, vals) -> (name, shard, ref (List.mapi (fun i v -> (i, v)) vals)))
            streams
        in
        let progressed = ref true in
        while !progressed do
          progressed := false;
          List.iter
            (fun (name, shard, q) ->
              match !q with
              | [] -> ()
              | (it, v) :: rest ->
                q := rest;
                progressed := true;
                Obs.Series.add name ~shard ~it (float_of_int v))
            queues
        done;
        let m = Obs.Series.merged () in
        Obs.Series.set_enabled false;
        m
      in
      let a = sequential () in
      let b = interleaved () in
      Obs.Series.reset ();
      (* Same-key streams concatenate in recording order, so compare as
         per-key point multisets: sort each key's points. *)
      let canon m =
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (name, shard, points) ->
            let key = (name, shard) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
            Hashtbl.replace tbl key (prev @ points))
          m;
        Hashtbl.fold (fun k v acc -> (k, List.sort compare v) :: acc) tbl []
        |> List.sort compare
      in
      canon a = canon b)

(* --- wilson interval ------------------------------------------------------ *)

let test_wilson_bounds () =
  Alcotest.(check (pair (float 0.0) (float 0.0)))
    "degenerate total" (0.0, 1.0)
    (Obs.wilson_interval ~hits:0 ~total:0);
  List.iter
    (fun (hits, total) ->
      let lo, hi = Obs.wilson_interval ~hits ~total in
      let p = float_of_int hits /. float_of_int total in
      (* The algebra puts p inside [lo, hi] exactly; allow rounding slack at
         the clamped endpoints (hits = 0 or hits = total). *)
      if not (0.0 <= lo && lo <= p +. 1e-9 && p <= hi +. 1e-9 && hi <= 1.0) then
        Alcotest.failf "wilson(%d,%d) = (%f, %f) not bracketing %f" hits total lo hi p;
      if total > 1 && hi -. lo >= 1.0 then
        Alcotest.failf "wilson(%d,%d) interval degenerate" hits total)
    [ (0, 10); (5, 10); (10, 10); (1, 1); (0, 1); (50, 400); (399, 400) ]

let test_wilson_narrows () =
  let width ~total =
    let lo, hi = Obs.wilson_interval ~hits:(total / 2) ~total in
    hi -. lo
  in
  if not (width ~total:1000 < width ~total:10) then
    Alcotest.fail "interval did not narrow with more samples"

(* --- chain-level series --------------------------------------------------- *)

let test_chain_level_series () =
  with_trace (fun () ->
      (* Lazy random walk on Z/8: every state reaches every other, explored
         breadth-first from state 0 — several BFS levels. *)
      let step s =
        Prob.Dist.make ~compare:Int.compare
          [ (s, Bigq.Q.half); ((s + 1) mod 8, Bigq.Q.half) ]
      in
      let chain =
        Markov.Chain.of_step ~hash:Hashtbl.hash ~equal:Int.equal ~init:[ 0 ] ~step ()
      in
      Alcotest.(check int) "eight states" 8 (Markov.Chain.num_states chain);
      let merged = Obs.Series.merged () in
      let points name =
        match List.find_opt (fun (n, _, _) -> String.equal n name) merged with
        | Some (_, _, pts) -> pts
        | None -> Alcotest.failf "series %s missing" name
      in
      let frontier = points "chain.frontier" in
      let states = points "chain.states" in
      Alcotest.(check int) "one frontier point per level" (List.length states)
        (List.length frontier);
      let rec non_decreasing = function
        | (_, a) :: ((_, b) :: _ as rest) ->
          if b < a then Alcotest.fail "interned-state count decreased";
          non_decreasing rest
        | _ -> ()
      in
      non_decreasing states;
      (match List.rev states with
       | (_, last) :: _ ->
         Alcotest.(check (float 0.0)) "final states count" 8.0 last
       | [] -> Alcotest.fail "no state points");
      let levels =
        List.filter (fun (e : Obs.Trace.event) -> String.equal e.name "chain.level")
          (Obs.Trace.events ())
      in
      Alcotest.(check int) "instants mirror series" (List.length frontier) (List.length levels))

(* --- histograms ----------------------------------------------------------- *)

let bucket_factor = sqrt (sqrt 2.0)

let hist_of obs =
  let h = Obs.Hist.make () in
  List.iter (Obs.Hist.observe h) obs;
  h

(* Heavy-tailed non-negative observations spanning many decades of the
   bucket grid: uniform mantissa shifted by a random magnitude. *)
let arb_obs =
  QCheck.make
    ~print:QCheck.Print.(list int)
    QCheck.Gen.(
      list_size (int_range 1 200) (map2 (fun mag v -> v lsl mag) (int_bound 30) (int_bound 1000)))

let hist_merge_exact =
  QCheck.Test.make ~name:"Hist.merge of shard-local histograms = histogram of concatenation"
    ~count:200
    QCheck.(pair arb_obs (int_range 1 8))
    (fun (obs, shards) ->
      let parts = Array.make shards [] in
      List.iteri (fun i v -> parts.(i mod shards) <- v :: parts.(i mod shards)) obs;
      let merged =
        Array.fold_left (fun acc part -> Obs.Hist.merge acc (hist_of part)) (Obs.Hist.make ())
          parts
      in
      let whole = hist_of obs in
      Obs.Hist.equal merged whole
      && Obs.Hist.total merged = List.length obs
      && Obs.Hist.sum merged = Obs.Hist.sum whole
      && Obs.Hist.cumulative merged = Obs.Hist.cumulative whole)

let hist_quantile_bound =
  QCheck.Test.make ~name:"Hist.quantile within one bucket width of the true order statistic"
    ~count:200 arb_obs (fun obs ->
      let sorted = List.sort compare obs in
      let n = List.length sorted in
      let h = hist_of obs in
      List.for_all
        (fun q ->
          let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
          let true_v = List.nth sorted (rank - 1) in
          let est = Obs.Hist.quantile h q in
          (* The estimate is the upper bound of the true value's bucket:
             never below it, and at most one grid step (rounded) above. *)
          true_v <= est
          && float_of_int est <= (float_of_int (max true_v 1) *. bucket_factor) +. 1.0)
        [ 0.0; 0.5; 0.9; 0.95; 0.99; 1.0 ])

let hist_cumulative_shape =
  QCheck.Test.make ~name:"Hist.cumulative is monotone with a +Inf terminal" ~count:200 arb_obs
    (fun obs ->
      let h = hist_of obs in
      let rec check prev_bound prev_cum = function
        | [] -> false (* the +Inf entry is mandatory *)
        | [ (None, total) ] -> prev_cum <= total && total = Obs.Hist.total h
        | (Some b, c) :: rest -> prev_bound < b && prev_cum < c && check b c rest
        | (None, _) :: _ :: _ -> false
      in
      check min_int 0 (Obs.Hist.cumulative h))

let test_hist_empty () =
  let h = Obs.Hist.make () in
  Alcotest.(check int) "empty total" 0 (Obs.Hist.total h);
  Alcotest.(check int) "empty sum" 0 (Obs.Hist.sum h);
  Alcotest.(check int) "empty quantile" 0 (Obs.Hist.quantile h 0.99);
  (match Obs.Hist.cumulative h with
   | [ (None, 0) ] -> ()
   | c -> Alcotest.failf "empty cumulative has %d entries" (List.length c));
  Obs.Hist.observe h (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (Obs.Hist.sum h);
  Alcotest.(check int) "clamped observation counted" 1 (Obs.Hist.total h)

(* --- counters under concurrent writers ------------------------------------ *)

(* Four domains hammering the same scope's counters with no coordination:
   lane-striped cells mean no increment is ever lost — the merged totals
   are exact after the joins, the regression for the documented
   lost-increment race of the old shared-cell counters. *)
let test_counter_race_exact () =
  let scope = Obs.Scope.make () in
  Obs.Scope.run scope (fun () -> Obs.set_enabled true);
  let domains = 4 and per = 50_000 in
  let barrier = Atomic.make 0 in
  let worker i =
    Domain.spawn (fun () ->
        Obs.Scope.run scope (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < domains do
              Domain.cpu_relax ()
            done;
            let ticks = Obs.counter "race.ticks" in
            let bytes = Obs.counter "race.bytes" in
            for _ = 1 to per do
              Obs.incr ticks;
              Obs.add bytes 3
            done;
            Obs.record_max (Obs.counter "race.hwm") (i + 1)))
  in
  let ds = List.init domains worker in
  List.iter Domain.join ds;
  Obs.Scope.run scope (fun () ->
      Alcotest.(check int) "no lost increments" (domains * per) (Obs.count_of "race.ticks");
      Alcotest.(check int) "adds exact" (domains * per * 3) (Obs.count_of "race.bytes");
      Alcotest.(check int) "record_max merges with max" domains (Obs.count_of "race.hwm"))

(* --- structured logging --------------------------------------------------- *)

let test_log_sink_and_levels () =
  let lines = ref [] in
  Obs.Log.set_sink ~level:Obs.Log.Warn (Some (fun l -> lines := l :: !lines));
  Alcotest.(check bool) "warn enabled" true (Obs.Log.enabled Obs.Log.Warn);
  Alcotest.(check bool) "error enabled" true (Obs.Log.enabled Obs.Log.Error);
  Alcotest.(check bool) "info filtered" false (Obs.Log.enabled Obs.Log.Info);
  Obs.Log.log Obs.Log.Debug "noise" [];
  Obs.Log.log Obs.Log.Info "noise" [];
  Obs.Log.log Obs.Log.Warn "slow" [ ("ms", J.Float 12.5) ];
  Obs.Log.log Obs.Log.Error "boom" [ ("corr", J.Str "abc-1") ];
  Obs.Log.set_sink None;
  Obs.Log.log Obs.Log.Error "after-close" [];
  Alcotest.(check bool) "cleared sink disables" false (Obs.Log.enabled Obs.Log.Error);
  let captured = List.rev !lines in
  Alcotest.(check int) "only at-or-above min level" 2 (List.length captured);
  List.iter2
    (fun line (lvl, event) ->
      let doc = parse_json line in
      Alcotest.check json_t "level" (J.Str lvl) (assoc_exn "level" doc);
      Alcotest.check json_t "event" (J.Str event) (assoc_exn "event" doc);
      (match assoc_exn "ts_ns" doc with
       | J.Int t when t > 0 -> ()
       | v -> Alcotest.failf "bad ts_ns %s" (J.to_string v));
      match assoc_exn "ts" doc with
      | J.Str ts ->
        if String.length ts <> 24 || ts.[4] <> '-' || ts.[10] <> 'T' || ts.[23] <> 'Z' then
          Alcotest.failf "ts not ISO-8601 UTC ms: %s" ts
      | v -> Alcotest.failf "ts not a string: %s" (J.to_string v))
    captured
    [ ("warn", "slow"); ("error", "boom") ];
  Alcotest.check json_t "custom field verbatim" (J.Str "abc-1")
    (assoc_exn "corr" (parse_json (List.nth captured 1)))

(* --- scopes --------------------------------------------------------------- *)

(* Two concurrent sessions (domains) running in their own scopes, ticking
   the same counter names in lockstep: each scope must see exactly its own
   counts and the global registry none of them — the regression for the
   process-global registry that bled stats between a resident server's
   tenants. *)
let test_scope_isolation () =
  Obs.reset ();
  let turn = Atomic.make 0 in
  let rounds = 200 in
  let session my_turn ticks =
    let scope = Obs.Scope.make () in
    Obs.Scope.run scope (fun () ->
        Obs.set_enabled true;
        for i = 0 to rounds - 1 do
          (* Strict alternation forces genuine interleaving of the two
             sessions' increments. *)
          while Atomic.get turn land 1 <> my_turn do
            Domain.cpu_relax ()
          done;
          for _ = 1 to ticks do
            Obs.incr (Obs.counter "tenant.requests")
          done;
          if i land 7 = 0 then Obs.phase (Printf.sprintf "round-%d" i) (fun () -> ());
          Atomic.incr turn
        done;
        (Obs.count_of "tenant.requests", List.length (Obs.phases ())))
  in
  let d1 = Domain.spawn (fun () -> session 0 1) in
  let d2 = Domain.spawn (fun () -> session 1 3) in
  let c1, p1 = Domain.join d1 in
  let c2, p2 = Domain.join d2 in
  Alcotest.(check int) "session 1 sees its own ticks" rounds c1;
  Alcotest.(check int) "session 2 sees its own ticks" (3 * rounds) c2;
  Alcotest.(check int) "session 1 phases" (rounds / 8) p1;
  Alcotest.(check int) "session 2 phases" (rounds / 8) p2;
  (* The calling domain still sits in the global scope: untouched. *)
  Alcotest.(check int) "global scope untouched" 0 (Obs.count_of "tenant.requests");
  Alcotest.(check int) "global phases untouched" 0 (List.length (Obs.phases ()))

(* Two interleaved sessions, each tracing in its own scope: the span-name
   sets must come out disjoint and the global scope empty — the regression
   for the process-global Trace/Series buffers that interleaved concurrent
   sessions' spans into one trace. *)
let test_scoped_trace_isolation () =
  let turn = Atomic.make 0 in
  let rounds = 100 in
  let session my_turn name =
    let scope = Obs.Scope.make () in
    Obs.Scope.run scope (fun () ->
        Obs.Trace.set_enabled true;
        Obs.Series.set_enabled true;
        for i = 0 to rounds - 1 do
          while Atomic.get turn land 1 <> my_turn do
            Domain.cpu_relax ()
          done;
          Obs.Trace.with_span name (fun () -> Obs.Trace.instant (name ^ ".tick"));
          Obs.Series.add (name ^ ".series") ~it:i (float_of_int i);
          Atomic.incr turn
        done;
        ( List.map (fun (e : Obs.Trace.event) -> e.name) (Obs.Trace.events ()),
          List.map (fun (n, _, _) -> n) (Obs.Series.merged ()) ))
  in
  let d1 = Domain.spawn (fun () -> session 0 "alice") in
  let d2 = Domain.spawn (fun () -> session 1 "bob") in
  let e1, s1 = Domain.join d1 in
  let e2, s2 = Domain.join d2 in
  Alcotest.(check int) "session 1 keeps all its events" (2 * rounds) (List.length e1);
  Alcotest.(check int) "session 2 keeps all its events" (2 * rounds) (List.length e2);
  let module SS = Set.Make (String) in
  Alcotest.(check bool) "span-name sets disjoint" true
    (SS.is_empty (SS.inter (SS.of_list e1) (SS.of_list e2)));
  Alcotest.(check bool) "session 1 sees only its spans" true
    (SS.subset (SS.of_list e1) (SS.of_list [ "alice"; "alice.tick" ]));
  Alcotest.(check bool) "session 2 sees only its spans" true
    (SS.subset (SS.of_list e2) (SS.of_list [ "bob"; "bob.tick" ]));
  Alcotest.(check (list string)) "session 1 series isolated" [ "alice.series" ] s1;
  Alcotest.(check (list string)) "session 2 series isolated" [ "bob.series" ] s2;
  Alcotest.(check int) "global trace untouched" 0 (List.length (Obs.Trace.events ()))

let test_scope_reset_is_scoped () =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.incr (Obs.counter "outer.count");
  let scope = Obs.Scope.make () in
  Obs.Scope.run scope (fun () ->
      Obs.set_enabled true;
      Obs.incr (Obs.counter "inner.count");
      Obs.reset ();
      Alcotest.(check int) "inner reset clears inner" 0 (Obs.count_of "inner.count"));
  Alcotest.(check int) "inner reset leaves outer" 1 (Obs.count_of "outer.count");
  (* Scope.run restores the previous scope even on exceptions. *)
  (try
     Obs.Scope.run (Obs.Scope.make ()) (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "previous scope restored after raise" true
    (Obs.Scope.current () == Obs.Scope.global);
  Obs.set_enabled false;
  Obs.reset ()

(* --- run ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [ ( "clock",
        [ Alcotest.test_case "now_ns monotone" `Quick test_now_ns_monotone;
          Alcotest.test_case "durations non-negative" `Quick test_durations_nonneg
        ] );
      ( "json",
        [ Alcotest.test_case "escape corner cases" `Quick test_escape_corner_cases;
          QCheck_alcotest.to_alcotest escape_roundtrip;
          QCheck_alcotest.to_alcotest json_roundtrip
        ] );
      ( "trace",
        [ Alcotest.test_case "spans balanced, ts monotone" `Quick test_trace_spans_balanced;
          Alcotest.test_case "chrome trace shape" `Quick test_trace_json_shape;
          Alcotest.test_case "disabled records nothing" `Quick test_trace_disabled_records_nothing
        ] );
      ( "series",
        [ Alcotest.test_case "pool series domain-independent" `Slow
            test_pool_series_domain_independent;
          Alcotest.test_case "pool estimates within bounds" `Quick test_pool_series_estimates_sane;
          QCheck_alcotest.to_alcotest series_merge_order_insensitive
        ] );
      ( "wilson",
        [ Alcotest.test_case "bounds bracket the estimate" `Quick test_wilson_bounds;
          Alcotest.test_case "narrows with samples" `Quick test_wilson_narrows
        ] );
      ( "chain",
        [ Alcotest.test_case "per-level frontier series" `Quick test_chain_level_series ] );
      ( "hist",
        [ QCheck_alcotest.to_alcotest hist_merge_exact;
          QCheck_alcotest.to_alcotest hist_quantile_bound;
          QCheck_alcotest.to_alcotest hist_cumulative_shape;
          Alcotest.test_case "empty and clamped observations" `Quick test_hist_empty
        ] );
      ( "counters",
        [ Alcotest.test_case "4-domain hammer loses nothing" `Slow test_counter_race_exact ] );
      ( "log",
        [ Alcotest.test_case "sink capture, levels, JSON shape" `Quick test_log_sink_and_levels ] );
      ( "scopes",
        [ Alcotest.test_case "two sessions never bleed counters" `Quick test_scope_isolation;
          Alcotest.test_case "two sessions never bleed spans" `Quick test_scoped_trace_isolation;
          Alcotest.test_case "reset is scoped, exit restores" `Quick test_scope_reset_is_scoped
        ] )
    ]
