(* Resource governance: budgets, graceful degradation, checkpoint/resume
   and deterministic fault injection (Guard + the governed Pool paths). *)

module Pool = Eval.Pool
module Engine = Eval.Engine

let parse = Lang.Parser.parse

(* --- guard basics ------------------------------------------------------- *)

let test_unlimited_is_free () =
  let g = Guard.unlimited in
  Alcotest.(check bool) "inactive" false (Guard.active g);
  Alcotest.(check bool) "no state tick" true (Guard.state_tick g = None);
  Alcotest.(check bool) "no sample tick" true (Guard.sample_tick g = None);
  Alcotest.(check bool) "no stop check" true (Guard.stop_check g = None);
  Alcotest.(check int) "nothing reached" 0 (Guard.states_reached g)

let test_state_budget () =
  let g = Guard.make ~max_states:5 () in
  let tick = Option.get (Guard.state_tick g) in
  for _ = 1 to 5 do
    tick ()
  done;
  Alcotest.(check int) "five charged" 5 (Guard.states_reached g);
  (try
     tick ();
     Alcotest.fail "expected Exhausted"
   with Guard.Exhausted (Guard.States { budget; reached }) ->
     Alcotest.(check int) "budget" 5 budget;
     Alcotest.(check int) "reached" 6 reached);
  Alcotest.(check string) "slug" "state-budget"
    (Guard.reason_slug (Guard.States { budget = 5; reached = 6 }))

let test_sample_budget () =
  let g = Guard.make ~max_samples:3 () in
  let tick = Option.get (Guard.sample_tick g) in
  for _ = 1 to 3 do
    tick ()
  done;
  (try
     tick ();
     Alcotest.fail "expected Exhausted"
   with Guard.Exhausted (Guard.Samples { budget; completed }) ->
     Alcotest.(check int) "budget" 3 budget;
     (* The overflowing draw is not a completed sample. *)
     Alcotest.(check int) "completed" 3 completed);
  Alcotest.(check string) "slug" "sample-budget"
    (Guard.reason_slug (Guard.Samples { budget = 3; completed = 4 }))

let test_deadline () =
  let g = Guard.make ~deadline_ms:0.0 () in
  (* A zero deadline is already past by the first poll. *)
  Unix.sleepf 0.002;
  Alcotest.(check bool) "exceeded" true (Guard.deadline_exceeded g);
  let check = Option.get (Guard.stop_check g) in
  (try
     check ();
     Alcotest.fail "expected Exhausted"
   with Guard.Exhausted (Guard.Deadline { budget_ms; elapsed_ms }) ->
     Alcotest.(check (float 0.0)) "budget" 0.0 budget_ms;
     Alcotest.(check bool) "elapsed positive" true (elapsed_ms > 0.0));
  Alcotest.(check string) "slug" "deadline" (Guard.reason_slug (Guard.deadline_reason g))

(* The deadline clock must be the latched monotone Obs.now_ns, not
   gettimeofday: advancing the high-water clock (as an NTP step landing on
   a resident server would) fires the deadline, and remaining budget is
   clamped at zero rather than ever reading negative. *)
let test_monotonic_deadline () =
  let g = Guard.make ~deadline_ms:50.0 () in
  (match Guard.remaining_ms g with
   | None -> Alcotest.fail "guard has a deadline"
   | Some r ->
     Alcotest.(check bool) "fresh budget in [0, 50]" true (r >= 0.0 && r <= 50.0));
  Alcotest.(check bool) "not yet exceeded" false (Guard.deadline_exceeded g);
  (* Step the latched clock 5 s forward — far past the 50 ms budget. *)
  Obs.advance_ns 5_000_000_000;
  Alcotest.(check bool) "latched step fires the deadline" true (Guard.deadline_exceeded g);
  (match Guard.remaining_ms g with
   | None -> Alcotest.fail "guard has a deadline"
   | Some r -> Alcotest.(check (float 0.0)) "remaining clamps at zero" 0.0 r);
  (try
     (Option.get (Guard.stop_check g)) ();
     Alcotest.fail "expected Exhausted"
   with Guard.Exhausted (Guard.Deadline { budget_ms; elapsed_ms }) ->
     Alcotest.(check (float 0.0)) "budget" 50.0 budget_ms;
     Alcotest.(check bool) "elapsed covers the step" true (elapsed_ms >= 4000.0));
  (* A guard born after the step sees a fresh, non-negative budget: two
     monotone readings can never produce a negative difference. *)
  let g2 = Guard.make ~deadline_ms:1_000_000.0 () in
  (match Guard.remaining_ms g2 with
   | None -> Alcotest.fail "guard has a deadline"
   | Some r ->
     Alcotest.(check bool) "post-step guard non-negative" true (r >= 0.0 && r <= 1_000_000.0));
  Alcotest.(check bool) "post-step guard not exceeded" false (Guard.deadline_exceeded g2)

let test_cancel () =
  Guard.clear_interrupt ();
  let g = Guard.make () in
  Alcotest.(check bool) "fresh guard not cancelled" false (Guard.cancelled g);
  (Option.get (Guard.stop_check g)) ();
  Guard.cancel g;
  Alcotest.(check bool) "cancelled" true (Guard.cancelled g);
  (try
     (Option.get (Guard.stop_check g)) ();
     Alcotest.fail "expected Exhausted"
   with Guard.Exhausted Guard.Interrupted -> ());
  (* Per-guard: the process-global flag and other guards are untouched. *)
  Alcotest.(check bool) "global flag untouched" false (Guard.interrupted ());
  let g2 = Guard.make () in
  (Option.get (Guard.stop_check g2)) ()

let test_interrupt_flag () =
  Guard.clear_interrupt ();
  Alcotest.(check bool) "clear" false (Guard.interrupted ());
  Guard.request_interrupt ();
  Alcotest.(check bool) "set" true (Guard.interrupted ());
  let g = Guard.make () in
  Alcotest.(check bool) "budgetless guard is active" true (Guard.active g);
  (try
     (Option.get (Guard.stop_check g)) ();
     Alcotest.fail "expected Exhausted"
   with Guard.Exhausted Guard.Interrupted -> ());
  Guard.clear_interrupt ();
  (Option.get (Guard.stop_check g)) ();
  Alcotest.(check string) "slug" "interrupted" (Guard.reason_slug Guard.Interrupted)

(* --- chain exploration under a state budget ----------------------------- *)

(* A deterministic line chain 0 -> 1 -> ... -> 9 -> 9: eleven interned
   states would be needed; a budget of 4 must stop exploration recoverably
   (Guard.Exhausted), unlike the hard max_states Chain_error. *)
let line_step i = Prob.Dist.return (min (i + 1) 9)

let test_chain_state_budget () =
  let build guard =
    Markov.Chain.of_step ~hash:Hashtbl.hash ~equal:Int.equal ?guard ~init:[ 0 ]
      ~step:line_step ()
  in
  let full = build None in
  Alcotest.(check int) "full chain" 10 (Markov.Chain.num_states full);
  let g = Guard.make ~max_states:4 () in
  (try
     ignore (build (Some g));
     Alcotest.fail "expected Exhausted"
   with Guard.Exhausted (Guard.States { budget; _ }) ->
     Alcotest.(check int) "budget" 4 budget);
  Alcotest.(check bool) "progress recorded" true (Guard.states_reached g > 0)

(* --- fault specs -------------------------------------------------------- *)

let test_fault_parse () =
  Alcotest.(check bool) "none" true Guard.Fault.(is_none none);
  let spec = Guard.Fault.of_string "kill:shard=3,after=1;flaky:shard=2,after=0" in
  Alcotest.(check bool) "not none" false (Guard.Fault.is_none spec);
  Alcotest.(check string) "roundtrip" "kill:shard=3,after=1;flaky:shard=2,after=0"
    (Guard.Fault.to_string spec);
  Alcotest.(check bool) "untargeted shard has no hook" true
    (Guard.Fault.hook spec ~shard:7 = None);
  (match Guard.Fault.hook spec ~shard:3 with
   | None -> Alcotest.fail "expected a hook for shard 3"
   | Some h ->
     h ~attempt:0 ~completed:0;
     (try
        h ~attempt:0 ~completed:1;
        Alcotest.fail "expected Injected"
      with Guard.Fault.Injected _ -> ()));
  (match Guard.Fault.hook spec ~shard:2 with
   | None -> Alcotest.fail "expected a hook for shard 2"
   | Some h ->
     (try
        h ~attempt:0 ~completed:0;
        Alcotest.fail "expected Transient"
      with Guard.Fault.Transient _ -> ());
     (* The retry attempt runs clean. *)
     h ~attempt:1 ~completed:0);
  List.iter
    (fun bad ->
      try
        ignore (Guard.Fault.of_string bad);
        Alcotest.fail (Printf.sprintf "expected Invalid_argument for %S" bad)
      with Invalid_argument _ -> ())
    [ "boom"; "kill:shard=x,after=1"; "kill:after=1"; "delay:shard=0"; "kill:shard=0" ]

let test_serve_fault_parse () =
  (* The serve-layer fault kinds: parse, roundtrip, accessors. *)
  let spec =
    Guard.Fault.of_string
      "conn-drop:after=2;partial-write:after=1;resp-delay:ms=3.5;journal-crash:point=pre-rename"
  in
  Alcotest.(check string) "roundtrip"
    "conn-drop:after=2;partial-write:after=1;resp-delay:ms=3.5;journal-crash:point=pre-rename"
    (Guard.Fault.to_string spec);
  Alcotest.(check (option int)) "conn_drop" (Some 2) (Guard.Fault.conn_drop spec);
  Alcotest.(check (option int)) "partial_write" (Some 1) (Guard.Fault.partial_write spec);
  Alcotest.(check (option (float 0.0))) "resp_delay_ms" (Some 3.5)
    (Guard.Fault.resp_delay_ms spec);
  Alcotest.(check bool) "armed point" true
    (Guard.Fault.journal_crash spec ~point:"pre-rename");
  Alcotest.(check bool) "unarmed point" false
    (Guard.Fault.journal_crash spec ~point:"post-rename");
  (* A pool-fault spec answers None/false on every serve accessor. *)
  let pool_spec = Guard.Fault.of_string "kill:shard=0,after=1" in
  Alcotest.(check (option int)) "no conn_drop" None (Guard.Fault.conn_drop pool_spec);
  Alcotest.(check (option int)) "no partial_write" None (Guard.Fault.partial_write pool_spec);
  Alcotest.(check bool) "no crash point" false
    (Guard.Fault.journal_crash pool_spec ~point:"pre-write");
  (* Serve faults never fire in pool workers: real shards (numbered from
     0) have no hook for them, and even the sentinel shard -1 they map to
     yields only an inert hook. *)
  List.iter
    (fun shard ->
      Alcotest.(check bool)
        (Printf.sprintf "no hook for shard %d" shard)
        true
        (Guard.Fault.hook spec ~shard = None))
    [ 0; 1; 7 ];
  (match Guard.Fault.hook spec ~shard:(-1) with
   | None -> ()
   | Some h ->
     (* an inert hook: serve faults are consumed by the daemon, not here *)
     h ~attempt:0 ~completed:0;
     h ~attempt:1 ~completed:99);
  let mixed = Guard.Fault.of_string "conn-drop:after=1;kill:shard=0,after=0" in
  (match Guard.Fault.hook mixed ~shard:0 with
   | None -> Alcotest.fail "expected a hook for the pool fault"
   | Some h -> (
     try
       h ~attempt:0 ~completed:0;
       Alcotest.fail "expected Injected"
     with Guard.Fault.Injected _ -> ()));
  (* Every valid journal crash point parses; anything else is rejected. *)
  List.iter
    (fun point ->
      let s = Guard.Fault.of_string ("journal-crash:point=" ^ point) in
      Alcotest.(check bool) point true (Guard.Fault.journal_crash s ~point))
    [ "pre-write"; "mid-record"; "pre-rename"; "post-rename" ];
  List.iter
    (fun bad ->
      try
        ignore (Guard.Fault.of_string bad);
        Alcotest.fail (Printf.sprintf "expected Invalid_argument for %S" bad)
      with Invalid_argument _ -> ())
    [ "journal-crash:point=nowhere"; "journal-crash:after=1"; "conn-drop:ms=1";
      "resp-delay:after=1"; "partial-write:point=pre-write"
    ]

(* --- pool: failure collection and retry --------------------------------- *)

let test_pool_two_kills () =
  (* Regression for the all-failures contract: two independently killed
     shards must BOTH be collected, with the lowest shard at top level and
     its original backtrace preserved. *)
  let fault = Guard.Fault.of_string "kill:shard=3,after=1;kill:shard=5,after=0" in
  List.iter
    (fun domains ->
      try
        ignore
          (Pool.run_samples ~fault ~domains ~samples:40 (Random.State.make [| 1 |])
             (fun rng -> Random.State.bool rng));
        Alcotest.fail "expected Worker_error"
      with Pool.Worker_error { shard; completed; exn = Guard.Fault.Injected _; failures } ->
        Alcotest.(check int) "first failed shard at top level" 3 shard;
        Alcotest.(check int) "one sample before the kill" 1 completed;
        Alcotest.(check (list int)) "all failed shards collected" [ 3; 5 ]
          (List.map (fun f -> f.Pool.shard) failures);
        let f5 = List.nth failures 1 in
        Alcotest.(check int) "shard 5 killed before its first sample" 0 f5.Pool.completed)
    [ 1; 4 ]

let test_pool_flaky_retry_is_transparent () =
  (* A transient fault is retried once, replaying the shard from its last
     published state: the result must equal the fault-free run exactly. *)
  let run rng = Random.State.float rng 1.0 < 0.37 in
  let clean =
    Pool.run_samples ~domains:4 ~samples:64 (Random.State.make [| 9 |]) run
  in
  let fault = Guard.Fault.of_string "flaky:shard=2,after=3" in
  let flaky =
    Pool.run_samples ~fault ~domains:4 ~samples:64 (Random.State.make [| 9 |]) run
  in
  Alcotest.(check int) "hits identical" clean.Pool.hits flaky.Pool.hits;
  Alcotest.(check int) "all samples completed" 64 flaky.Pool.completed;
  Alcotest.(check bool) "complete" true (flaky.Pool.stopped = None)

(* --- checkpoints -------------------------------------------------------- *)

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_checkpoint_roundtrip () =
  let path = tmp_path "guard_test_roundtrip.ckpt" in
  let rng = Random.State.make [| 5 |] in
  let ck =
    {
      Guard.Checkpoint.key = "k1";
      samples = 40;
      shards =
        [| { Guard.Checkpoint.shard = 0; todo = 20; completed = 7; hits = 3; rng };
           { Guard.Checkpoint.shard = 1; todo = 20; completed = 20; hits = 11;
             rng = Random.State.copy rng }
        |];
    }
  in
  Guard.Checkpoint.save path ck;
  let ck' = Guard.Checkpoint.load path in
  Alcotest.(check string) "key" ck.Guard.Checkpoint.key ck'.Guard.Checkpoint.key;
  Alcotest.(check int) "samples" 40 ck'.Guard.Checkpoint.samples;
  Alcotest.(check int) "shards" 2 (Array.length ck'.Guard.Checkpoint.shards);
  Alcotest.(check int) "hits survive" 11 ck'.Guard.Checkpoint.shards.(1).Guard.Checkpoint.hits;
  (* The marshalled RNG state drives the same stream. *)
  Alcotest.(check int) "rng stream restored"
    (Random.State.bits ck.Guard.Checkpoint.shards.(0).Guard.Checkpoint.rng)
    (Random.State.bits ck'.Guard.Checkpoint.shards.(0).Guard.Checkpoint.rng);
  Sys.remove path

let test_checkpoint_bad_files () =
  (try
     ignore (Guard.Checkpoint.load (tmp_path "guard_test_does_not_exist.ckpt"));
     Alcotest.fail "expected Error on missing file"
   with Guard.Checkpoint.Error _ -> ());
  let path = tmp_path "guard_test_bad_magic.ckpt" in
  Out_channel.with_open_bin path (fun oc -> output_string oc "not a checkpoint\n");
  (try
     ignore (Guard.Checkpoint.load path);
     Alcotest.fail "expected Error on bad magic"
   with Guard.Checkpoint.Error _ -> ());
  Sys.remove path

(* Two domains checkpointing to the same target concurrently (two resident
   sessions sharing a configured checkpoint path): with unique temp files
   every save must land atomically, so every concurrent load sees a
   complete snapshot — one writer's or the other's, never a torn file —
   and no save may fail on a raced rename. *)
let test_checkpoint_concurrent_savers () =
  let path = tmp_path "guard_test_concurrent.ckpt" in
  let snapshot tag =
    let rng = Random.State.make [| tag |] in
    { Guard.Checkpoint.key = "concurrent";
      samples = tag;
      shards = [| { Guard.Checkpoint.shard = 0; todo = tag; completed = tag; hits = tag; rng } |]
    }
  in
  Guard.Checkpoint.save path (snapshot 0);
  let rounds = 150 in
  let writer tag =
    Domain.spawn (fun () ->
        for i = 1 to rounds do
          Guard.Checkpoint.save path (snapshot ((tag * 1_000_000) + i))
        done)
  in
  let d1 = writer 1 and d2 = writer 2 in
  (* Concurrent reads while both writers race the rename. *)
  for _ = 1 to 200 do
    let ck = Guard.Checkpoint.load path in
    Alcotest.(check string) "complete snapshot" "concurrent" ck.Guard.Checkpoint.key;
    let s = ck.Guard.Checkpoint.samples in
    Alcotest.(check int) "self-consistent shard" s
      ck.Guard.Checkpoint.shards.(0).Guard.Checkpoint.completed
  done;
  (* A failed save (shared temp truncated or renamed away underneath a
     writer) raises here. *)
  Domain.join d1;
  Domain.join d2;
  let final = Guard.Checkpoint.load path in
  Alcotest.(check string) "final snapshot intact" "concurrent" final.Guard.Checkpoint.key;
  (* No temp-file litter: every unique temp was renamed or unlinked. *)
  let dir = Filename.get_temp_dir_name () in
  let leftovers =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f ->
           String.starts_with ~prefix:(Filename.basename path ^ ".tmp") f)
  in
  Alcotest.(check (list string)) "no stale temp files" [] leftovers;
  Sys.remove path

let test_resume_equals_uninterrupted () =
  (* The acceptance property: interrupt (here: a sample budget) + resume is
     bit-identical to the uninterrupted run, at every domain count. *)
  let run rng = Random.State.float rng 1.0 < 0.42 in
  let samples = 50 in
  List.iter
    (fun domains ->
      let full =
        Pool.run_samples ~domains ~samples (Random.State.make [| 21 |]) run
      in
      Alcotest.(check bool) "full run complete" true (full.Pool.stopped = None);
      let path = tmp_path (Printf.sprintf "guard_test_resume_%d.ckpt" domains) in
      let ckpt = { Pool.path; key = "resume-test"; resume = None } in
      let guard = Guard.make ~max_samples:17 () in
      let partial =
        Pool.run_samples ~guard ~ckpt ~domains ~samples (Random.State.make [| 21 |]) run
      in
      Alcotest.(check int) "budget honoured" 17 partial.Pool.completed;
      Alcotest.(check bool) "stopped on the sample budget" true
        (match partial.Pool.stopped with Some (Guard.Samples _) -> true | _ -> false);
      let saved = Guard.Checkpoint.load path in
      let resumed =
        Pool.run_samples
          ~ckpt:{ Pool.path; key = "resume-test"; resume = Some saved }
          ~domains ~samples (Random.State.make [| 21 |]) run
      in
      Alcotest.(check int)
        (Printf.sprintf "domains=%d resumed hits = uninterrupted hits" domains)
        full.Pool.hits resumed.Pool.hits;
      Alcotest.(check int) "resumed completes everything" samples resumed.Pool.completed;
      Alcotest.(check bool) "resumed run is complete" true (resumed.Pool.stopped = None);
      Sys.remove path)
    [ 1; 2; 4 ]

let test_resume_key_mismatch () =
  let run rng = Random.State.bool rng in
  let path = tmp_path "guard_test_key.ckpt" in
  let _ =
    Pool.run_samples
      ~ckpt:{ Pool.path; key = "key-a"; resume = None }
      ~domains:1 ~samples:10 (Random.State.make [| 2 |]) run
  in
  let saved = Guard.Checkpoint.load path in
  (try
     ignore
       (Pool.run_samples
          ~ckpt:{ Pool.path; key = "key-b"; resume = Some saved }
          ~domains:1 ~samples:10 (Random.State.make [| 2 |]) run);
     Alcotest.fail "expected Checkpoint.Error on key mismatch"
   with Guard.Checkpoint.Error _ -> ());
  (try
     ignore
       (Pool.run_samples
          ~ckpt:{ Pool.path; key = "key-a"; resume = Some saved }
          ~domains:1 ~samples:99 (Random.State.make [| 2 |]) run);
     Alcotest.fail "expected Checkpoint.Error on sample-count mismatch"
   with Guard.Checkpoint.Error _ -> ());
  Sys.remove path

(* --- engine: outcomes, fallback, stats/3 -------------------------------- *)

let walk_src = "?C(Y) @W :- C(X), e(X, Y, W).\nC(a).\ne(a, b, 1).\ne(b, a, 1).\n?- C(b)."

let test_engine_partial_sampling () =
  let parsed = parse walk_src in
  let guard = Guard.make ~max_samples:25 () in
  let r =
    Engine.run ~seed:4 ~guard ~semantics:Engine.Noninflationary
      ~method_:(Engine.Sampling { eps = 0.1; delta = 0.1; burn_in = 10 })
      parsed
  in
  match r.Engine.outcome with
  | Engine.Complete -> Alcotest.fail "expected a partial outcome"
  | Engine.Partial { completed; requested; ci; reason } ->
    Alcotest.(check int) "completed = budget" 25 completed;
    Alcotest.(check bool) "requested larger" true (requested > 25);
    Alcotest.(check string) "reason" "sample-budget" (Guard.reason_slug reason);
    (match ci with
     | None -> Alcotest.fail "expected a Wilson interval"
     | Some (lo, hi) ->
       Alcotest.(check bool) "valid interval" true (0.0 <= lo && lo <= hi && hi <= 1.0);
       Alcotest.(check bool) "estimate inside" true
         (lo <= r.Engine.probability && r.Engine.probability <= hi))

let test_engine_partial_agrees_with_prefix () =
  (* Soundness: the partial estimate IS the deterministic prefix estimate —
     the same run with samples = budget, not some silently different answer. *)
  let parsed = parse walk_src in
  let guard = Guard.make ~max_samples:25 () in
  let partial =
    Engine.run ~seed:4 ~domains:2 ~guard ~semantics:Engine.Noninflationary
      ~method_:(Engine.Sampling { eps = 0.1; delta = 0.1; burn_in = 10 })
      parsed
  in
  (* A budgeted pool run completes shard quotas clamped by the same
     deterministic split, so re-running with the clamped total reproduces
     the partial estimate bit-for-bit. *)
  let kernel, init =
    Lang.Compile.noninflationary_kernel parsed.Lang.Parser.program
      (Lang.Parser.database_of_facts parsed.Lang.Parser.facts)
  in
  let query =
    Lang.Forever.compile
      ~schema_of:(Lang.Compile.schema_of_database init)
      (Lang.Forever.make ~kernel ~event:(Option.get parsed.Lang.Parser.event))
  in
  let r =
    Eval.Sample_noninflationary.run_samples_par (Random.State.make [| 4 |]) ~domains:2
      ~burn_in:10 ~samples:25 query init
  in
  Alcotest.(check (float 0.0)) "prefix estimate"
    (float_of_int r.Pool.hits /. float_of_int r.Pool.completed)
    partial.Engine.probability

let test_engine_fallback_downgrade () =
  let parsed = parse walk_src in
  let guard = Guard.make ~max_states:1 () in
  let r =
    Engine.run ~seed:4 ~guard
      ~on_budget:(Engine.Fallback { eps = 0.1; delta = 0.1; burn_in = 10 })
      ~semantics:Engine.Noninflationary ~method_:Engine.Exact parsed
  in
  (match r.Engine.downgrade with
   | None -> Alcotest.fail "expected a recorded downgrade"
   | Some d ->
     Alcotest.(check string) "from" "exact" d.Engine.from_;
     Alcotest.(check string) "to" "sampling" d.Engine.to_;
     Alcotest.(check string) "trigger" "state-budget" d.Engine.trigger);
  (match r.Engine.outcome with
   | Engine.Complete -> ()
   | Engine.Partial _ -> Alcotest.fail "fallback run should complete");
  Alcotest.(check bool) "sampled answer in range" true
    (0.0 <= r.Engine.probability && r.Engine.probability <= 1.0)

let test_engine_degrade_exact () =
  let parsed = parse walk_src in
  let guard = Guard.make ~max_states:1 () in
  let r =
    Engine.run ~seed:4 ~guard ~semantics:Engine.Noninflationary ~method_:Engine.Exact parsed
  in
  (match r.Engine.outcome with
   | Engine.Partial { reason = Guard.States _; ci = None; _ } -> ()
   | _ -> Alcotest.fail "expected an exact partial outcome");
  Alcotest.(check bool) "no answer is nan, not a guess" true (Float.is_nan r.Engine.probability)

let test_engine_fail_policy () =
  let parsed = parse walk_src in
  let guard = Guard.make ~max_states:1 () in
  try
    ignore
      (Engine.run ~seed:4 ~guard ~on_budget:Engine.Fail ~semantics:Engine.Noninflationary
         ~method_:Engine.Exact parsed);
    Alcotest.fail "expected Engine_error"
  with Engine.Engine_error _ -> ()

let test_stats3_json_shape () =
  let parsed = parse walk_src in
  let r =
    Engine.run ~seed:4 ~stats:true ~semantics:Engine.Noninflationary ~method_:Engine.Exact
      parsed
  in
  match Engine.json_of_report ~tool:"test" r with
  | Obs.Json.Obj fields ->
    Alcotest.(check bool) "schema /3" true
      (List.assoc_opt "schema" fields = Some (Obs.Json.Str "probdb.stats/3"));
    (match List.assoc_opt "outcome" fields with
     | Some (Obs.Json.Obj o) ->
       Alcotest.(check bool) "complete" true
         (List.assoc_opt "status" o = Some (Obs.Json.Str "complete"))
     | _ -> Alcotest.fail "outcome object missing");
    Alcotest.(check bool) "downgrade null" true
      (List.assoc_opt "downgrade" fields = Some Obs.Json.Null)
  | _ -> Alcotest.fail "expected a JSON object"

(* --- qcheck: budget soundness on random programs ------------------------ *)

let case_of seed =
  let rng = Random.State.make [| seed |] in
  Workload.Progen.random_case rng

let arb_case_budget =
  QCheck.make
    ~print:(fun (seed, budget) ->
      Printf.sprintf "budget=%d %s" budget (case_of seed).Workload.Progen.source)
    QCheck.Gen.(pair (int_bound 100_000) (int_range 1 120))

(* A budgeted run is never silently wrong: either it reports Partial with
   completed <= budget, or it completed everything and its estimate equals
   the ungoverned run's bit-for-bit. *)
let prop_budget_soundness =
  QCheck.Test.make ~name:"governed sampler: partial or exactly the ungoverned answer"
    ~count:40 arb_case_budget (fun (seed, budget) ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.inflationary_kernel case.Workload.Progen.program
          case.Workload.Progen.database
      in
      let q =
        Lang.Inflationary.of_forever_unchecked
          (Lang.Forever.make ~kernel ~event:case.Workload.Progen.event)
      in
      let samples = 100 in
      let clean d =
        Eval.Sample_inflationary.run_samples_par ~domains:d ~samples
          (Random.State.make [| seed |])
          q init
      in
      let guard = Guard.make ~max_samples:budget () in
      let governed d =
        Eval.Sample_inflationary.run_samples_par ~guard ~domains:d ~samples
          (Random.State.make [| seed |])
          q init
      in
      List.for_all
        (fun d ->
          let c = clean d and g = governed d in
          match g.Pool.stopped with
          | None -> g.Pool.hits = c.Pool.hits && g.Pool.completed = samples
          | Some (Guard.Samples _) ->
            g.Pool.completed <= budget && g.Pool.completed < samples
          | Some _ -> false)
        [ 1; 4 ])

(* Resume identity on random programs: budget-stop + resume completes with
   the uninterrupted run's exact hit count. *)
let prop_resume_identity =
  QCheck.Test.make ~name:"checkpoint resume = uninterrupted on random programs" ~count:15
    (QCheck.make
       ~print:(fun seed -> (case_of seed).Workload.Progen.source)
       QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let case = case_of seed in
      let kernel, init =
        Lang.Compile.inflationary_kernel case.Workload.Progen.program
          case.Workload.Progen.database
      in
      let q =
        Lang.Inflationary.of_forever_unchecked
          (Lang.Forever.make ~kernel ~event:case.Workload.Progen.event)
      in
      let samples = 60 in
      let path = tmp_path (Printf.sprintf "guard_prop_resume_%d.ckpt" seed) in
      let full =
        Eval.Sample_inflationary.run_samples_par ~domains:2 ~samples
          (Random.State.make [| seed |])
          q init
      in
      let guard = Guard.make ~max_samples:23 () in
      let _ =
        Eval.Sample_inflationary.run_samples_par ~guard
          ~ckpt:{ Pool.path; key = "prop"; resume = None }
          ~domains:2 ~samples
          (Random.State.make [| seed |])
          q init
      in
      let saved = Guard.Checkpoint.load path in
      let resumed =
        Eval.Sample_inflationary.run_samples_par
          ~ckpt:{ Pool.path; key = "prop"; resume = Some saved }
          ~domains:2 ~samples
          (Random.State.make [| seed |])
          q init
      in
      Sys.remove path;
      resumed.Pool.stopped = None && resumed.Pool.hits = full.Pool.hits
      && resumed.Pool.completed = samples)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "guard"
    [ ( "guard",
        [ Alcotest.test_case "unlimited guard is free" `Quick test_unlimited_is_free;
          Alcotest.test_case "state budget" `Quick test_state_budget;
          Alcotest.test_case "sample budget" `Quick test_sample_budget;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "monotonic latched deadline clock" `Quick test_monotonic_deadline;
          Alcotest.test_case "per-guard cancel" `Quick test_cancel;
          Alcotest.test_case "interrupt flag" `Quick test_interrupt_flag
        ] );
      ( "chain",
        [ Alcotest.test_case "state budget stops BFS recoverably" `Quick
            test_chain_state_budget
        ] );
      ( "fault",
        [ Alcotest.test_case "spec parsing and hooks" `Quick test_fault_parse;
          Alcotest.test_case "serve-layer fault kinds and accessors" `Quick
            test_serve_fault_parse;
          Alcotest.test_case "two killed shards are both collected" `Quick test_pool_two_kills;
          Alcotest.test_case "flaky retry is transparent" `Quick
            test_pool_flaky_retry_is_transparent
        ] );
      ( "checkpoint",
        [ Alcotest.test_case "save/load roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "missing file and bad magic" `Quick test_checkpoint_bad_files;
          Alcotest.test_case "concurrent savers never tear the target" `Quick
            test_checkpoint_concurrent_savers;
          Alcotest.test_case "resume = uninterrupted at domains 1/2/4" `Quick
            test_resume_equals_uninterrupted;
          Alcotest.test_case "key and shape mismatches refused" `Quick test_resume_key_mismatch
        ] );
      ( "engine",
        [ Alcotest.test_case "sampling partial with Wilson CI" `Quick
            test_engine_partial_sampling;
          Alcotest.test_case "partial estimate is the prefix estimate" `Quick
            test_engine_partial_agrees_with_prefix;
          Alcotest.test_case "fallback records the downgrade" `Quick
            test_engine_fallback_downgrade;
          Alcotest.test_case "exact degrade reports progress, answers nan" `Quick
            test_engine_degrade_exact;
          Alcotest.test_case "fail policy raises" `Quick test_engine_fail_policy;
          Alcotest.test_case "stats/3 document shape" `Quick test_stats3_json_shape
        ] );
      qsuite "qcheck" [ prop_budget_soundness; prop_resume_identity ]
    ]
