(* Tests for the relational algebra substrate. *)

open Relational

let v_int n = Value.Int n
let v_str s = Value.Str s

let rel cols rows = Relation.make cols (List.map (fun r -> Tuple.of_list r) rows)

let relation_t = Alcotest.testable Relation.pp Relation.equal

(* A small graph database used across tests. *)
let edges =
  rel [ "I"; "J" ]
    [ [ v_str "a"; v_str "b" ]; [ v_str "b"; v_str "c" ]; [ v_str "a"; v_str "c" ]; [ v_str "c"; v_str "a" ] ]

let db = Database.of_list [ ("E", edges); ("C", rel [ "I" ] [ [ v_str "a" ] ]) ]

(* --- Value ------------------------------------------------------------ *)

let test_value_order () =
  Alcotest.(check bool) "int < str by tag" true (Value.compare (v_int 5) (v_str "a") < 0);
  Alcotest.(check int) "int order" (-1) (Value.compare (v_int 1) (v_int 2));
  Alcotest.(check bool) "rat eq int differs" false (Value.equal (v_int 1) (Value.Rat Bigq.Q.one))

let test_value_of_string () =
  Alcotest.(check bool) "int" true (Value.equal (v_int 42) (Value.of_string "42"));
  Alcotest.(check bool) "neg int" true (Value.equal (v_int (-7)) (Value.of_string "-7"));
  Alcotest.(check bool) "bool" true (Value.equal (Value.Bool true) (Value.of_string "true"));
  Alcotest.(check bool) "rat" true (Value.equal (Value.Rat (Bigq.Q.of_ints 1 2)) (Value.of_string "1/2"));
  Alcotest.(check bool) "decimal" true (Value.equal (Value.Rat (Bigq.Q.of_ints 1 4)) (Value.of_string "0.25"));
  Alcotest.(check bool) "ident is string" true (Value.equal (v_str "abc") (Value.of_string "abc"));
  Alcotest.(check bool) "quoted" true (Value.equal (v_str "x y") (Value.of_string "\"x y\""))

let test_value_to_q () =
  Alcotest.(check bool) "int" true (Bigq.Q.equal (Bigq.Q.of_int 3) (Value.to_q (v_int 3)));
  Alcotest.check_raises "string" (Invalid_argument "Value.to_q: string") (fun () ->
      ignore (Value.to_q (v_str "x")))

(* --- Relation --------------------------------------------------------- *)

let test_relation_set_semantics () =
  let r = rel [ "A" ] [ [ v_int 1 ]; [ v_int 1 ]; [ v_int 2 ] ] in
  Alcotest.(check int) "duplicates merged" 2 (Relation.cardinal r)

let test_relation_schema_checks () =
  Alcotest.check_raises "dup columns"
    (Relation.Schema_error "duplicate column in schema: A,A") (fun () -> ignore (Relation.empty [ "A"; "A" ]));
  (try
     ignore (rel [ "A"; "B" ] [ [ v_int 1 ] ]);
     Alcotest.fail "expected arity error"
   with Relation.Schema_error _ -> ())

let test_relation_ops () =
  let a = rel [ "A" ] [ [ v_int 1 ]; [ v_int 2 ] ] in
  let b = rel [ "A" ] [ [ v_int 2 ]; [ v_int 3 ] ] in
  Alcotest.check relation_t "union" (rel [ "A" ] [ [ v_int 1 ]; [ v_int 2 ]; [ v_int 3 ] ]) (Relation.union a b);
  Alcotest.check relation_t "inter" (rel [ "A" ] [ [ v_int 2 ] ]) (Relation.inter a b);
  Alcotest.check relation_t "diff" (rel [ "A" ] [ [ v_int 1 ] ]) (Relation.diff a b);
  Alcotest.(check bool) "subset" true (Relation.subset (rel [ "A" ] [ [ v_int 1 ] ]) a)

let test_relation_schema_mismatch () =
  let a = rel [ "A" ] [] and b = rel [ "B" ] [] in
  try
    ignore (Relation.union a b);
    Alcotest.fail "expected schema error"
  with Relation.Schema_error _ -> ()

(* --- Database --------------------------------------------------------- *)

let test_database_subsumes () =
  let small = Database.of_list [ ("R", rel [ "A" ] [ [ v_int 1 ] ]) ] in
  let big = Database.of_list [ ("R", rel [ "A" ] [ [ v_int 1 ]; [ v_int 2 ] ]); ("S", rel [ "B" ] []) ] in
  Alcotest.(check bool) "subsumes" true (Database.subsumes big small);
  Alcotest.(check bool) "not subsumes" false (Database.subsumes small big)

let test_database_order () =
  let d1 = Database.of_list [ ("R", rel [ "A" ] [ [ v_int 1 ] ]) ] in
  let d2 = Database.of_list [ ("R", rel [ "A" ] [ [ v_int 2 ] ]) ] in
  Alcotest.(check bool) "total order" true (Database.compare d1 d2 <> 0);
  Alcotest.(check bool) "reflexive" true (Database.equal d1 d1)

(* --- Algebra ---------------------------------------------------------- *)

let eval e = Algebra.eval e db

let test_select () =
  let q = Algebra.Select (Pred.eq (Pred.col "I") (Pred.const (v_str "a")), Algebra.Rel "E") in
  Alcotest.check relation_t "edges from a"
    (rel [ "I"; "J" ] [ [ v_str "a"; v_str "b" ]; [ v_str "a"; v_str "c" ] ])
    (eval q)

let test_project () =
  let q = Algebra.Project ([ "J" ], Algebra.Rel "E") in
  Alcotest.check relation_t "targets" (rel [ "J" ] [ [ v_str "a" ]; [ v_str "b" ]; [ v_str "c" ] ]) (eval q)

let test_project_reorder () =
  let q = Algebra.Project ([ "J"; "I" ], Algebra.Rel "E") in
  Alcotest.(check (list string)) "schema order" [ "J"; "I" ] (Relation.columns (eval q))

let test_rename () =
  let q = Algebra.Rename ([ ("I", "X") ], Algebra.Rel "C") in
  Alcotest.check relation_t "renamed" (rel [ "X" ] [ [ v_str "a" ] ]) (eval q)

let test_join () =
  (* C(I) join E(I,J): edges leaving a. *)
  let q = Algebra.Join (Algebra.Rel "C", Algebra.Rel "E") in
  Alcotest.check relation_t "join"
    (rel [ "I"; "J" ] [ [ v_str "a"; v_str "b" ]; [ v_str "a"; v_str "c" ] ])
    (eval q)

let test_join_no_shared_is_product () =
  let q = Algebra.Join (Algebra.Rename ([ ("I", "X") ], Algebra.Rel "C"), Algebra.Rel "C") in
  Alcotest.check relation_t "product-like" (rel [ "X"; "I" ] [ [ v_str "a"; v_str "a" ] ]) (eval q)

let test_product_clash () =
  try
    ignore (eval (Algebra.Product (Algebra.Rel "C", Algebra.Rel "C")));
    Alcotest.fail "expected clash"
  with Relation.Schema_error _ -> ()

let test_union_diff () =
  let c2 = Algebra.Const (rel [ "I" ] [ [ v_str "b" ] ]) in
  Alcotest.check relation_t "union" (rel [ "I" ] [ [ v_str "a" ]; [ v_str "b" ] ])
    (eval (Algebra.Union (Algebra.Rel "C", c2)));
  Alcotest.check relation_t "diff" (rel [ "I" ] [ [ v_str "a" ] ]) (eval (Algebra.Diff (Algebra.Rel "C", c2)))

let test_singleton () =
  Alcotest.check relation_t "rho_P({1})" (rel [ "P" ] [ [ v_int 1 ] ])
    (eval (Algebra.singleton [ "P" ] [ v_int 1 ]))

let test_schema_of_matches_eval () =
  let qs =
    [ Algebra.Rel "E";
      Algebra.Select (Pred.True, Algebra.Rel "E");
      Algebra.Project ([ "I" ], Algebra.Rel "E");
      Algebra.Join (Algebra.Rel "C", Algebra.Rel "E");
      Algebra.Product (Algebra.Rename ([ ("I", "X") ], Algebra.Rel "C"), Algebra.Rel "C");
      Algebra.Union (Algebra.Rel "C", Algebra.Rel "C")
    ]
  in
  List.iter
    (fun q ->
      Alcotest.(check (list string)) "schema" (Relation.columns (eval q)) (Algebra.schema_of q db))
    qs

let test_transitive_closure_by_iteration () =
  (* One step of C := C ∪ π_J(C ⋈ E) renamed back to I. *)
  let step db =
    let q =
      Algebra.Union
        (Algebra.Rel "C",
         Algebra.Rename ([ ("J", "I") ], Algebra.Project ([ "J" ], Algebra.Join (Algebra.Rel "C", Algebra.Rel "E"))))
    in
    Database.add "C" (Algebra.eval q db) db
  in
  let rec fix db = let db' = step db in if Database.equal db db' then db else fix db' in
  let final = fix db in
  Alcotest.check relation_t "all reachable" (rel [ "I" ] [ [ v_str "a" ]; [ v_str "b" ]; [ v_str "c" ] ])
    (Database.find "C" final)

(* --- Aggregates --------------------------------------------------------- *)

let weighted =
  rel [ "I"; "J"; "W" ]
    [ [ v_str "a"; v_str "b"; v_int 2 ];
      [ v_str "a"; v_str "c"; v_int 3 ];
      [ v_str "b"; v_str "a"; v_int 5 ]
    ]

let agg_db = Database.of_list [ ("G", weighted) ]

let test_aggregate_count_group () =
  let q =
    Algebra.Aggregate { group_by = [ "I" ]; agg = Algebra.Count; src = None; out = "N"; arg = Algebra.Rel "G" }
  in
  Alcotest.check relation_t "out-degrees"
    (rel [ "I"; "N" ] [ [ v_str "a"; v_int 2 ]; [ v_str "b"; v_int 1 ] ])
    (Algebra.eval q agg_db)

let test_aggregate_sum () =
  let q =
    Algebra.Aggregate { group_by = [ "I" ]; agg = Algebra.Sum; src = Some "W"; out = "S"; arg = Algebra.Rel "G" }
  in
  Alcotest.check relation_t "weighted out-degrees"
    (rel [ "I"; "S" ]
       [ [ v_str "a"; Value.Rat (Bigq.Q.of_int 5) ]; [ v_str "b"; Value.Rat (Bigq.Q.of_int 5) ] ])
    (Algebra.eval q agg_db)

let test_aggregate_min_max () =
  let qmin =
    Algebra.Aggregate { group_by = []; agg = Algebra.Min; src = Some "W"; out = "M"; arg = Algebra.Rel "G" }
  in
  let qmax =
    Algebra.Aggregate { group_by = []; agg = Algebra.Max; src = Some "W"; out = "M"; arg = Algebra.Rel "G" }
  in
  Alcotest.check relation_t "min" (rel [ "M" ] [ [ v_int 2 ] ]) (Algebra.eval qmin agg_db);
  Alcotest.check relation_t "max" (rel [ "M" ] [ [ v_int 5 ] ]) (Algebra.eval qmax agg_db)

let test_aggregate_empty_input () =
  let empty_db = Database.of_list [ ("G", Relation.empty [ "I"; "J"; "W" ]) ] in
  let count =
    Algebra.Aggregate { group_by = []; agg = Algebra.Count; src = None; out = "N"; arg = Algebra.Rel "G" }
  in
  Alcotest.check relation_t "count 0 row" (rel [ "N" ] [ [ v_int 0 ] ]) (Algebra.eval count empty_db);
  let m =
    Algebra.Aggregate { group_by = []; agg = Algebra.Min; src = Some "W"; out = "M"; arg = Algebra.Rel "G" }
  in
  Alcotest.(check int) "min empty: no row" 0 (Relation.cardinal (Algebra.eval m empty_db));
  let grouped =
    Algebra.Aggregate { group_by = [ "I" ]; agg = Algebra.Count; src = None; out = "N"; arg = Algebra.Rel "G" }
  in
  Alcotest.(check int) "grouped empty: no rows" 0 (Relation.cardinal (Algebra.eval grouped empty_db))

let test_aggregate_schema_errors () =
  let bad_src =
    Algebra.Aggregate { group_by = []; agg = Algebra.Sum; src = Some "ghost"; out = "S"; arg = Algebra.Rel "G" }
  in
  (try
     ignore (Algebra.eval bad_src agg_db);
     Alcotest.fail "unknown src accepted"
   with Relation.Schema_error _ -> ());
  let clash =
    Algebra.Aggregate { group_by = [ "I" ]; agg = Algebra.Count; src = None; out = "I"; arg = Algebra.Rel "G" }
  in
  try
    ignore (Algebra.eval clash agg_db);
    Alcotest.fail "clashing out column accepted"
  with Relation.Schema_error _ -> ()

let test_aggregate_schema_of () =
  let q =
    Algebra.Aggregate { group_by = [ "I" ]; agg = Algebra.Sum; src = Some "W"; out = "S"; arg = Algebra.Rel "G" }
  in
  Alcotest.(check (list string)) "schema" [ "I"; "S" ] (Algebra.schema_of q agg_db)

(* --- index_by (hashed key index) --------------------------------------- *)

let test_index_by_bucket_order () =
  (* Relation iteration is ascending Tuple.compare; buckets accumulate by
     consing, so each bucket lists its tuples in DESCENDING source order —
     the behaviour the algebra.mli comment documents. *)
  let r =
    rel [ "K"; "V" ]
      [ [ v_int 1; v_str "x" ]; [ v_int 2; v_str "x" ]; [ v_int 3; v_str "y" ] ]
  in
  let idx = Algebra.index_by (fun t -> [| t.(1) |]) r in
  let bucket_x = Algebra.Tuple_tbl.find idx [| v_str "x" |] in
  Alcotest.(check int) "bucket size" 2 (List.length bucket_x);
  Alcotest.(check bool) "descending source order" true
    (List.equal Tuple.equal bucket_x
       [ Tuple.of_list [ v_int 2; v_str "x" ]; Tuple.of_list [ v_int 1; v_str "x" ] ]);
  Alcotest.(check int) "singleton bucket" 1
    (List.length (Algebra.Tuple_tbl.find idx [| v_str "y" |]))

let test_join_aggregate_output_order () =
  (* Bucket order must never leak: operator results are relations, whose
     tuple lists are canonically ascending whatever order the hash index
     produced matches in. *)
  let join = Algebra.eval (Algebra.Join (Algebra.Rel "C", Algebra.Rel "E")) db in
  Alcotest.(check bool) "join tuples ascending" true
    (List.equal Tuple.equal (Relation.tuples join)
       [ Tuple.of_list [ v_str "a"; v_str "b" ]; Tuple.of_list [ v_str "a"; v_str "c" ] ]);
  let agg =
    Algebra.eval
      (Algebra.Aggregate
         { group_by = [ "I" ]; agg = Algebra.Count; src = None; out = "N"; arg = Algebra.Rel "G" })
      agg_db
  in
  Alcotest.(check bool) "aggregate tuples ascending" true
    (List.equal Tuple.equal (Relation.tuples agg)
       [ Tuple.of_list [ v_str "a"; v_int 2 ]; Tuple.of_list [ v_str "b"; v_int 1 ] ])

(* --- compiled physical plans ------------------------------------------- *)

let schema_of_db the_db name = Relation.columns (Database.find name the_db)

let plan_cases =
  [ Algebra.Rel "E";
    Algebra.Select (Pred.eq (Pred.col "I") (Pred.const (v_str "a")), Algebra.Rel "E");
    Algebra.Project ([ "J"; "I" ], Algebra.Rel "E");
    Algebra.Rename ([ ("I", "X") ], Algebra.Rel "C");
    Algebra.Join (Algebra.Rel "C", Algebra.Rel "E");
    Algebra.Join (Algebra.Rename ([ ("I", "X") ], Algebra.Rel "C"), Algebra.Rel "C");
    Algebra.Product (Algebra.Rename ([ ("I", "X") ], Algebra.Rel "C"), Algebra.Rel "C");
    Algebra.Union (Algebra.Rel "C", Algebra.Const (rel [ "I" ] [ [ v_str "b" ] ]));
    Algebra.Diff (Algebra.Rel "C", Algebra.Const (rel [ "I" ] [ [ v_str "b" ] ]));
    Algebra.Extend ("K", Pred.Const (v_int 7), Algebra.Rel "E");
    Algebra.Extend ("K", Pred.Col "I", Algebra.Rel "E");
    Algebra.Select
      (Pred.eq (Pred.col "I") (Pred.col "J"),
       Algebra.Extend ("K", Pred.Col "J", Algebra.Rel "E"))
  ]

let test_plan_matches_eval () =
  List.iter
    (fun q ->
      let p = Plan.compile ~schema_of:(schema_of_db db) q in
      Alcotest.check relation_t "plan = eval" (Algebra.eval q db) (Plan.run p db);
      Alcotest.(check (list string)) "plan schema" (Algebra.schema_of q db) (Plan.schema p))
    plan_cases

(* Delta contract over an inflationary growth old_db → db with delta d:
   run(old) ∪ run_delta(db, d) = run(db) and run_delta(db, d) ⊆ run(db),
   for both the minimal delta and an oversized one (d need only cover the
   growth and stay inside db). *)
let test_plan_delta_contract () =
  let old_edges =
    rel [ "I"; "J" ] [ [ v_str "a"; v_str "b" ]; [ v_str "b"; v_str "c" ]; [ v_str "a"; v_str "c" ] ]
  in
  let old_db = Database.add "E" old_edges db in
  let minimal = Database.of_list [ ("E", rel [ "I"; "J" ] [ [ v_str "c"; v_str "a" ] ]) ] in
  let oversized =
    Database.of_list
      [ ("E", rel [ "I"; "J" ] [ [ v_str "c"; v_str "a" ]; [ v_str "a"; v_str "b" ] ]);
        ("C", rel [ "I" ] [])
      ]
  in
  List.iter
    (fun q ->
      let dp = Plan.Delta.compile ~schema_of:(schema_of_db db) q in
      let full_new = Plan.run (Plan.Delta.plan dp) db in
      let full_old = Plan.run (Plan.Delta.plan dp) old_db in
      List.iter
        (fun d ->
          let delta = Plan.Delta.run_delta dp db d in
          Alcotest.(check bool) "delta ⊆ full" true (Relation.subset delta full_new);
          Alcotest.check relation_t "old ∪ delta = new" full_new (Relation.union full_old delta))
        [ minimal; oversized ])
    plan_cases;
  (* Empty delta at a stationary state contributes nothing new. *)
  List.iter
    (fun q ->
      let dp = Plan.Delta.compile ~schema_of:(schema_of_db db) q in
      let delta = Plan.Delta.run_delta dp db Database.empty in
      Alcotest.(check bool) "stationary delta ⊆ full" true
        (Relation.subset delta (Plan.run (Plan.Delta.plan dp) db)))
    plan_cases

let test_plan_delta_incremental_flags () =
  let inc q = Plan.Delta.incremental (Plan.Delta.compile ~schema_of:(schema_of_db db) q) in
  Alcotest.(check bool) "rel" true (inc (Algebra.Rel "E"));
  Alcotest.(check bool) "join" true (inc (Algebra.Join (Algebra.Rel "C", Algebra.Rel "E")));
  Alcotest.(check bool) "select/project" true
    (inc
       (Algebra.Project
          ([ "J" ], Algebra.Select (Pred.eq (Pred.col "I") (Pred.const (v_str "a")), Algebra.Rel "E"))));
  Alcotest.(check bool) "diff reevaluates" false
    (inc (Algebra.Diff (Algebra.Rel "C", Algebra.Const (rel [ "I" ] [ [ v_str "b" ] ]))));
  Alcotest.(check bool) "union over diff reevaluates" false
    (inc
       (Algebra.Union
          (Algebra.Rel "C", Algebra.Diff (Algebra.Rel "C", Algebra.Const (rel [ "I" ] [ [ v_str "b" ] ])))))

let test_plan_aggregates () =
  let aggs =
    [ Algebra.Aggregate
        { group_by = [ "I" ]; agg = Algebra.Count; src = None; out = "N"; arg = Algebra.Rel "G" };
      Algebra.Aggregate
        { group_by = [ "I" ]; agg = Algebra.Sum; src = Some "W"; out = "S"; arg = Algebra.Rel "G" };
      Algebra.Aggregate
        { group_by = []; agg = Algebra.Min; src = Some "W"; out = "M"; arg = Algebra.Rel "G" };
      Algebra.Aggregate
        { group_by = []; agg = Algebra.Max; src = Some "W"; out = "M"; arg = Algebra.Rel "G" }
    ]
  in
  List.iter
    (fun q ->
      let p = Plan.compile ~schema_of:(schema_of_db agg_db) q in
      Alcotest.check relation_t "plan = eval" (Algebra.eval q agg_db) (Plan.run p agg_db))
    aggs;
  (* The zero-row rule on empty input survives compilation. *)
  let empty_db = Database.of_list [ ("G", Relation.empty [ "I"; "J"; "W" ]) ] in
  let count0 =
    Algebra.Aggregate { group_by = []; agg = Algebra.Count; src = None; out = "N"; arg = Algebra.Rel "G" }
  in
  let p = Plan.compile ~schema_of:(schema_of_db empty_db) count0 in
  Alcotest.check relation_t "count zero row" (rel [ "N" ] [ [ v_int 0 ] ]) (Plan.run p empty_db);
  let min0 =
    Algebra.Aggregate { group_by = []; agg = Algebra.Min; src = Some "W"; out = "M"; arg = Algebra.Rel "G" }
  in
  let p = Plan.compile ~schema_of:(schema_of_db empty_db) min0 in
  Alcotest.(check int) "min empty: no row" 0 (Relation.cardinal (Plan.run p empty_db))

let test_plan_compile_time_errors () =
  (* Every schema violation surfaces at Plan.compile, before any database
     is touched. *)
  let expect_schema_error label q =
    try
      ignore (Plan.compile ~schema_of:(schema_of_db db) q);
      Alcotest.fail (label ^ ": expected Schema_error at compile time")
    with Relation.Schema_error _ -> ()
  in
  expect_schema_error "project unknown" (Algebra.Project ([ "ghost" ], Algebra.Rel "E"));
  expect_schema_error "project dup" (Algebra.Project ([ "I"; "I" ], Algebra.Rel "E"));
  expect_schema_error "select unknown"
    (Algebra.Select (Pred.eq (Pred.col "ghost") (Pred.const (v_int 0)), Algebra.Rel "E"));
  expect_schema_error "rename dup" (Algebra.Rename ([ ("I", "J") ], Algebra.Rel "E"));
  expect_schema_error "product clash" (Algebra.Product (Algebra.Rel "C", Algebra.Rel "C"));
  expect_schema_error "union mismatch" (Algebra.Union (Algebra.Rel "C", Algebra.Rel "E"));
  expect_schema_error "extend dup" (Algebra.Extend ("I", Pred.Const (v_int 1), Algebra.Rel "E"));
  expect_schema_error "extend unknown src" (Algebra.Extend ("K", Pred.Col "ghost", Algebra.Rel "E"));
  expect_schema_error "aggregate unknown src"
    (Algebra.Aggregate
       { group_by = []; agg = Algebra.Sum; src = Some "ghost"; out = "S"; arg = Algebra.Rel "E" });
  expect_schema_error "aggregate out clash"
    (Algebra.Aggregate
       { group_by = [ "I" ]; agg = Algebra.Count; src = None; out = "I"; arg = Algebra.Rel "E" })

let test_plan_rel_schema_guard () =
  (* Executing against a database whose relation columns drifted from the
     compile-time schema table is refused. *)
  let p = Plan.compile ~schema_of:(schema_of_db db) (Algebra.Rel "C") in
  let drifted = Database.add "C" (rel [ "X" ] [ [ v_str "a" ] ]) db in
  try
    ignore (Plan.run p drifted);
    Alcotest.fail "expected Schema_error on drifted schema"
  with Relation.Schema_error _ -> ()

(* --- Pred ------------------------------------------------------------- *)

let test_pred_compile () =
  let p = Pred.And (Pred.Cmp (Pred.Lt, Pred.Col "A", Pred.Col "B"), Pred.Not (Pred.Cmp (Pred.Eq, Pred.Col "A", Pred.Const (v_int 0)))) in
  let f = Pred.compile [ "A"; "B" ] p in
  Alcotest.(check bool) "1<2 && 1<>0" true (f (Tuple.of_list [ v_int 1; v_int 2 ]));
  Alcotest.(check bool) "0 fails" false (f (Tuple.of_list [ v_int 0; v_int 2 ]));
  Alcotest.(check bool) "3>2 fails" false (f (Tuple.of_list [ v_int 3; v_int 2 ]))

let test_pred_columns () =
  let p = Pred.Or (Pred.eq (Pred.col "B") (Pred.const (v_int 1)), Pred.eq (Pred.col "A") (Pred.col "B")) in
  Alcotest.(check (list string)) "columns" [ "A"; "B" ] (Pred.columns p)

(* --- property tests --------------------------------------------------- *)

let arb_small_rel =
  let gen =
    QCheck.Gen.(
      map
        (fun rows -> rel [ "A"; "B" ] (List.map (fun (a, b) -> [ v_int a; v_int b ]) rows))
        (list_size (int_bound 8) (pair (int_bound 4) (int_bound 4))))
  in
  QCheck.make ~print:(fun r -> Format.asprintf "%a" Relation.pp r) gen

let prop_plan_matches_eval =
  QCheck.Test.make ~name:"compiled plan = interpreted eval" ~count:100
    (QCheck.pair arb_small_rel arb_small_rel) (fun (r, s) ->
      let s = rel [ "B"; "C" ] (List.map Tuple.to_list (Relation.tuples s)) in
      let the_db = Database.of_list [ ("R", r); ("S", s) ] in
      let qs =
        [ Algebra.Join (Algebra.Rel "R", Algebra.Rel "S");
          Algebra.Union
            (Algebra.Rel "R", Algebra.Rename ([ ("B", "A"); ("C", "B") ], Algebra.Rel "S"));
          Algebra.Project ([ "B" ], Algebra.Join (Algebra.Rel "R", Algebra.Rel "S"));
          Algebra.Aggregate
            { group_by = [ "A" ]; agg = Algebra.Count; src = None; out = "N"; arg = Algebra.Rel "R" }
        ]
      in
      List.for_all
        (fun q ->
          Relation.equal (Algebra.eval q the_db)
            (Plan.run (Plan.compile ~schema_of:(schema_of_db the_db) q) the_db))
        qs)

let prop_union_commutative =
  QCheck.Test.make ~name:"relation union commutative" ~count:100 (QCheck.pair arb_small_rel arb_small_rel)
    (fun (a, b) -> Relation.equal (Relation.union a b) (Relation.union b a))

let prop_diff_union_disjoint =
  QCheck.Test.make ~name:"(a-b) ∪ (a∩b) = a" ~count:100 (QCheck.pair arb_small_rel arb_small_rel)
    (fun (a, b) -> Relation.equal a (Relation.union (Relation.diff a b) (Relation.inter a b)))

let prop_join_with_self =
  QCheck.Test.make ~name:"r ⋈ r = r" ~count:100 arb_small_rel (fun r ->
      let db = Database.of_list [ ("R", r) ] in
      Relation.equal r (Algebra.eval (Algebra.Join (Algebra.Rel "R", Algebra.Rel "R")) db))

let prop_select_true_identity =
  QCheck.Test.make ~name:"σ[true] = id, σ[false] = ∅" ~count:100 arb_small_rel (fun r ->
      let db = Database.of_list [ ("R", r) ] in
      Relation.equal r (Algebra.eval (Algebra.Select (Pred.True, Algebra.Rel "R")) db)
      && Relation.is_empty (Algebra.eval (Algebra.Select (Pred.False, Algebra.Rel "R")) db))

(* --- hash/equal agreement ---------------------------------------------- *)

let test_value_hash_agrees () =
  (* Rationals that normalise to the same canonical form must hash alike,
     whatever expression built them. *)
  let q = Bigq.Q.of_ints in
  let pairs =
    [ (Value.rat (q 2 4), Value.rat (q 1 2));
      (Value.rat (q (-6) 4), Value.rat (q 3 (-2)));
      (Value.rat (q 0 7), Value.rat (q 0 (-3)));
      (Value.rat (Bigq.Q.mul (q 12345678 1) (q 87654321 1)),
       Value.rat (Bigq.Q.mul (q 87654321 1) (q 12345678 1)));
      (v_int 42, v_int 42);
      (Value.str "abc", Value.str "abc")
    ]
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "equal" true (Value.equal a b);
      Alcotest.(check int) "same hash" (Value.hash a) (Value.hash b))
    pairs

let test_database_hash_agrees () =
  (* Same contents via different construction orders (and through the cached
     Relation.hash memo) hash identically. *)
  let db1 =
    Database.of_list
      [ ("R", rel [ "A" ] [ [ v_int 1 ]; [ v_int 2 ] ]); ("S", rel [ "B" ] [ [ v_int 3 ] ]) ]
  in
  let db2 =
    Database.add "R"
      (Relation.add (Tuple.of_list [ v_int 1 ]) (rel [ "A" ] [ [ v_int 2 ] ]))
      (Database.of_list [ ("S", rel [ "B" ] [ [ v_int 3 ] ]) ])
  in
  Alcotest.(check bool) "equal" true (Database.equal db1 db2);
  Alcotest.(check int) "same hash" (Database.hash db1) (Database.hash db2);
  Alcotest.(check bool) "distinct dbs differ (sanity)" false
    (Database.hash db1 = Database.hash (Database.remove "S" db1)
     && Database.equal db1 (Database.remove "S" db1))

let prop_tuple_hash_agrees =
  QCheck.Test.make ~name:"Tuple.hash agrees with Tuple.equal" ~count:200 arb_small_rel (fun r ->
      List.for_all
        (fun t ->
          let t' = Tuple.of_list (Tuple.to_list t) in
          Tuple.equal t t' && Tuple.hash t = Tuple.hash t')
        (Relation.tuples r))

let prop_relation_hash_agrees =
  QCheck.Test.make ~name:"Relation.hash agrees with Relation.equal" ~count:200
    (QCheck.pair arb_small_rel arb_small_rel) (fun (a, b) ->
      (* Rebuilding from the tuple list and commuting a union must not
         change the hash (exercises the memo-resetting constructors). *)
      let rebuilt = Relation.make (Relation.columns a) (List.rev (Relation.tuples a)) in
      Relation.equal a rebuilt
      && Relation.hash a = Relation.hash rebuilt
      && Relation.hash (Relation.union a b) = Relation.hash (Relation.union b a)
      && ((not (Relation.equal a b)) || Relation.hash a = Relation.hash b))

let prop_project_card_bound =
  QCheck.Test.make ~name:"projection never grows cardinality" ~count:100 arb_small_rel (fun r ->
      let db = Database.of_list [ ("R", r) ] in
      Relation.cardinal (Algebra.eval (Algebra.Project ([ "A" ], Algebra.Rel "R")) db)
      <= Relation.cardinal r)

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "relational"
    [ ( "value",
        [ Alcotest.test_case "ordering" `Quick test_value_order;
          Alcotest.test_case "of_string" `Quick test_value_of_string;
          Alcotest.test_case "to_q" `Quick test_value_to_q
        ] );
      ( "relation",
        [ Alcotest.test_case "set semantics" `Quick test_relation_set_semantics;
          Alcotest.test_case "schema checks" `Quick test_relation_schema_checks;
          Alcotest.test_case "set ops" `Quick test_relation_ops;
          Alcotest.test_case "schema mismatch" `Quick test_relation_schema_mismatch
        ] );
      ( "database",
        [ Alcotest.test_case "subsumes" `Quick test_database_subsumes;
          Alcotest.test_case "ordering" `Quick test_database_order
        ] );
      ( "hashing",
        [ Alcotest.test_case "value hash/equal" `Quick test_value_hash_agrees;
          Alcotest.test_case "database hash/equal" `Quick test_database_hash_agrees
        ] );
      ( "algebra",
        [ Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "project reorder" `Quick test_project_reorder;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "join without shared columns" `Quick test_join_no_shared_is_product;
          Alcotest.test_case "product clash" `Quick test_product_clash;
          Alcotest.test_case "union/diff" `Quick test_union_diff;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "schema_of consistent" `Quick test_schema_of_matches_eval;
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure_by_iteration
        ] );
      ( "aggregate",
        [ Alcotest.test_case "count group-by" `Quick test_aggregate_count_group;
          Alcotest.test_case "sum" `Quick test_aggregate_sum;
          Alcotest.test_case "min/max" `Quick test_aggregate_min_max;
          Alcotest.test_case "empty input" `Quick test_aggregate_empty_input;
          Alcotest.test_case "schema errors" `Quick test_aggregate_schema_errors;
          Alcotest.test_case "schema_of" `Quick test_aggregate_schema_of
        ] );
      ( "index",
        [ Alcotest.test_case "bucket order descending" `Quick test_index_by_bucket_order;
          Alcotest.test_case "join/aggregate output order" `Quick test_join_aggregate_output_order
        ] );
      ( "plan",
        [ Alcotest.test_case "matches eval" `Quick test_plan_matches_eval;
          Alcotest.test_case "delta contract" `Quick test_plan_delta_contract;
          Alcotest.test_case "delta incremental flags" `Quick test_plan_delta_incremental_flags;
          Alcotest.test_case "aggregates" `Quick test_plan_aggregates;
          Alcotest.test_case "compile-time schema errors" `Quick test_plan_compile_time_errors;
          Alcotest.test_case "relation schema guard" `Quick test_plan_rel_schema_guard
        ] );
      ( "pred",
        [ Alcotest.test_case "compile" `Quick test_pred_compile;
          Alcotest.test_case "columns" `Quick test_pred_columns
        ] );
      ( "props",
        qsuite
          [ prop_union_commutative; prop_diff_union_disjoint; prop_join_with_self;
            prop_select_true_identity; prop_project_card_bound; prop_tuple_hash_agrees;
            prop_relation_hash_agrees; prop_plan_matches_eval
          ] )
    ]
