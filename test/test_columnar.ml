(* Columnar data plane vs the set-based reference representation.

   [Relational.Relation] stores a canonical sorted flat tuple array;
   [Relational.Relation_ref] preserves the balanced-tree representation the
   data plane used before the refactor.  These tests pin the equivalence:
   identical tuple contents AND iteration order, identical compare sign,
   identical FNV hashes — op by op under qcheck, end-to-end over random
   Progen programs (both semantics, fixed-seed estimates at 1/2/4 domains),
   and under multi-domain concurrency for the hash memo's benign race. *)

module Q = Bigq.Q
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Ref = Relational.Relation_ref
module Database = Relational.Database
module Algebra = Relational.Algebra
module Plan = Relational.Plan

let tuple_list = Alcotest.(list (testable Tuple.pp Tuple.equal))

(* --- generators --------------------------------------------------------- *)

(* Mix interned and freshly-boxed payloads: physical sharing must stay an
   optimisation, never a semantic requirement. *)
let value_of_int n =
  match n mod 4 with
  | 0 -> Value.Int (n mod 7)
  | 1 ->
    let s = Printf.sprintf "s%d" (n mod 5) in
    if n mod 8 < 4 then Value.Str s else Value.Intern.str s
  | 2 -> Value.Bool (n mod 2 = 0)
  | _ ->
    let q = Q.of_ints (1 + (n mod 5)) (1 + (n mod 3)) in
    if n mod 8 < 4 then Value.Rat q else Value.Intern.rat q

let gen_tuple rng arity = Array.init arity (fun _ -> value_of_int (Random.State.int rng 64))
let gen_tuples rng arity = List.init (Random.State.int rng 24) (fun _ -> gen_tuple rng arity)
let cols_of_arity a = List.init a (fun i -> String.make 1 (Char.chr (Char.code 'A' + i)))
let pair_of cols ts = (Relation.make cols ts, Ref.make cols ts)

(* Columnar and reference values agree observably: same schema, same tuples
   in the same order, same cardinality, same hash. *)
let agree (r, s) =
  List.equal String.equal (Relation.columns r) (Ref.columns s)
  && List.equal Tuple.equal (Relation.tuples r) (Ref.tuples s)
  && Relation.cardinal r = Ref.cardinal s
  && Relation.hash r = Ref.hash s

let sign c = Stdlib.compare c 0
let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

(* --- op-by-op differential ---------------------------------------------- *)

let prop_ops_agree =
  QCheck.Test.make ~name:"relation ops ≡ set-based reference" ~count:500 arb_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let arity = 1 + Random.State.int rng 3 in
      let cols = cols_of_arity arity in
      let a, a' = pair_of cols (gen_tuples rng arity) in
      let b, b' = pair_of cols (gen_tuples rng arity) in
      let probe = gen_tuple rng arity in
      let p (t : Tuple.t) = match t.(0) with Value.Int n -> n mod 2 = 0 | _ -> true in
      agree (a, a') && agree (b, b')
      && agree (Relation.union a b, Ref.union a' b')
      && agree (Relation.inter a b, Ref.inter a' b')
      && agree (Relation.diff a b, Ref.diff a' b')
      && agree (Relation.add probe a, Ref.add probe a')
      && Relation.mem probe a = Ref.mem probe a'
      && Relation.subset a b = Ref.subset a' b'
      && sign (Relation.compare a b) = sign (Ref.compare a' b')
      && Relation.equal a b = Ref.equal a' b'
      && agree (Relation.filter p a, Ref.filter p a'))

let prop_builder_matches_make =
  QCheck.Test.make ~name:"Builder.build = make (sort + dedup once)" ~count:200 arb_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let arity = 1 + Random.State.int rng 3 in
      let cols = cols_of_arity arity in
      let ts = gen_tuples rng arity in
      let b = Relation.Builder.create ~hint:1 cols in
      List.iter (Relation.Builder.add b) ts;
      let built = Relation.Builder.build b in
      let made = Relation.make cols ts in
      Relation.equal built made
      && List.equal Tuple.equal (Relation.tuples built) (Relation.tuples made))

(* Reference nested-loop natural join over the reference representation,
   compared against the batched hash join the interpreter/plans run. *)
let ref_join ra' rb' =
  let ca = Ref.columns ra' and cb = Ref.columns rb' in
  let shared = List.filter (fun c -> List.mem c ca) cb in
  let out = ca @ List.filter (fun c -> not (List.mem c ca)) cb in
  let pos cols c =
    let rec go i = function
      | [] -> assert false
      | x :: rest -> if String.equal x c then i else go (i + 1) rest
    in
    go 0 cols
  in
  let ia = List.map (pos ca) shared and ib = List.map (pos cb) shared in
  let rest_b = List.map (pos cb) (List.filter (fun c -> not (List.mem c ca)) cb) in
  List.fold_left
    (fun acc (ta : Tuple.t) ->
      List.fold_left
        (fun acc (tb : Tuple.t) ->
          if List.for_all2 (fun i j -> Value.equal ta.(i) tb.(j)) ia ib then
            Ref.add (Array.append ta (Array.of_list (List.map (fun j -> tb.(j)) rest_b))) acc
          else acc)
        acc (Ref.tuples rb'))
    (Ref.empty out) (Ref.tuples ra')

let prop_join_matches_reference =
  QCheck.Test.make ~name:"hash join ≡ reference nested-loop join" ~count:200 arb_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let ra, ra' = pair_of [ "A"; "B" ] (gen_tuples rng 2) in
      let rb, rb' = pair_of [ "B"; "C" ] (gen_tuples rng 2) in
      let joined = Algebra.eval (Algebra.Join (Algebra.Const ra, Algebra.Const rb)) Database.empty in
      let plan =
        Plan.compile ~schema_of:(fun _ -> raise Not_found)
          (Algebra.Join (Algebra.Const ra, Algebra.Const rb))
      in
      agree (joined, ref_join ra' rb') && Relation.equal joined (Plan.run plan Database.empty))

(* --- hash memo benign race under domains -------------------------------- *)

(* Fresh (memo-cold) relations shared by several domains: every concurrent
   hash/equal must agree with a sequential oracle computed on equal twins.
   This is the contract that lets sampler domains share relations and the
   interning dictionaries without a lock. *)
let prop_hash_memo_race =
  QCheck.Test.make ~name:"concurrent hash/equal = sequential (multi-domain)" ~count:25 arb_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let arity = 1 + Random.State.int rng 3 in
      let cols = cols_of_arity arity in
      let mk () =
        Array.init 16 (fun _ -> Relation.make cols (gen_tuples rng arity))
      in
      let shared = mk () in
      (* Twins with equal contents, hashed sequentially: the oracle. *)
      let twins = Array.map (fun r -> Relation.make cols (Relation.tuples r)) shared in
      let expected = Array.map Relation.hash twins in
      let n = Array.length shared in
      let worker d () =
        Array.init n (fun i ->
            let r = shared.((i + d) mod n) in
            (Relation.hash r, Relation.equal r twins.((i + d) mod n)))
      in
      let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
      let results = List.map Domain.join domains in
      (* Every domain's (i+d)-rotated traversal saw the oracle hash and
         agreed on equality with the twin. *)
      List.for_all2
        (fun d res ->
          Array.for_all Fun.id
            (Array.init n (fun i ->
                 let h, eq = res.(i) in
                 h = expected.((i + d) mod n) && eq)))
        [ 0; 1; 2; 3 ] results)

(* --- canonical iteration order pins ------------------------------------- *)

let t vs = Tuple.of_list (List.map (fun n -> Value.Int n) vs)

let test_join_output_order () =
  let r = Relation.make [ "A"; "B" ] [ t [ 2; 1 ]; t [ 1; 1 ]; t [ 1; 2 ] ] in
  let s = Relation.make [ "B"; "C" ] [ t [ 1; 9 ]; t [ 1; 3 ]; t [ 2; 0 ] ] in
  let out = Algebra.eval (Algebra.Join (Algebra.Const r, Algebra.Const s)) Database.empty in
  Alcotest.check tuple_list "ascending canonical order"
    [ t [ 1; 1; 3 ]; t [ 1; 1; 9 ]; t [ 1; 2; 0 ]; t [ 2; 1; 3 ]; t [ 2; 1; 9 ] ]
    (Relation.tuples out)

let test_aggregate_output_order () =
  let r = Relation.make [ "G"; "X" ] [ t [ 3; 1 ]; t [ 1; 4 ]; t [ 1; 1 ]; t [ 2; 5 ] ] in
  let out =
    Algebra.eval
      (Algebra.Aggregate
         { group_by = [ "G" ]; agg = Algebra.Count; src = None; out = "n"; arg = Algebra.Const r })
      Database.empty
  in
  Alcotest.check tuple_list "groups ascending" [ t [ 1; 2 ]; t [ 2; 1 ]; t [ 3; 1 ] ]
    (Relation.tuples out)

let ascending ts =
  let rec go = function
    | a :: (b :: _ as rest) -> Tuple.compare a b < 0 && go rest
    | _ -> true
  in
  go ts

let test_delta_output_order () =
  let schema_of = function "R" -> [ "A"; "B" ] | _ -> [ "B"; "C" ] in
  let dp = Plan.Delta.compile ~schema_of (Algebra.Join (Algebra.Rel "R", Algebra.Rel "S")) in
  let s = Relation.make [ "B"; "C" ] [ t [ 1; 9 ]; t [ 2; 0 ]; t [ 1; 3 ] ] in
  let r_old = Relation.make [ "A"; "B" ] [ t [ 1; 1 ] ] in
  let r_new = Relation.union r_old (Relation.make [ "A"; "B" ] [ t [ 0; 2 ]; t [ 2; 1 ] ]) in
  let db_old = Database.of_list [ ("R", r_old); ("S", s) ] in
  let db_new = Database.of_list [ ("R", r_new); ("S", s) ] in
  let delta = Database.of_list [ ("R", Relation.diff r_new r_old) ] in
  let full_old = Plan.run (Plan.Delta.plan dp) db_old in
  let full_new = Plan.run (Plan.Delta.plan dp) db_new in
  let d_out = Plan.Delta.run_delta dp db_new delta in
  Alcotest.(check bool) "delta output in canonical ascending order" true
    (ascending (Relation.tuples d_out));
  Alcotest.(check bool) "delta contract: old ∪ delta = new" true
    (Relation.equal (Relation.union full_old d_out) full_new);
  Alcotest.check tuple_list "delta tuples" [ t [ 0; 2; 0 ]; t [ 2; 1; 3 ]; t [ 2; 1; 9 ] ]
    (Relation.tuples d_out)

(* --- Progen end-to-end -------------------------------------------------- *)

let case_of seed = Workload.Progen.random_case (Random.State.make [| seed |])

let arb_case =
  QCheck.make ~print:(fun seed -> (case_of seed).Workload.Progen.source)
    QCheck.Gen.(int_bound 100_000)

(* Every database an engine trajectory visits holds relations already in
   canonical reference form: converting to the set-based reference and back
   changes nothing — not the tuples, not their order, not the hash.  Checked
   along fixed-seed sampled trajectories of both compiled kernels. *)
let prop_progen_states_reference_canonical =
  QCheck.Test.make ~name:"Progen trajectories: states ≡ reference round-trip" ~count:15 arb_case
    (fun seed ->
      let case = case_of seed in
      let canonical db =
        List.for_all
          (fun (_, r) ->
            let s = Ref.of_relation r in
            agree (r, s) && Relation.equal (Ref.to_relation s) r)
          (Database.bindings db)
      in
      let run kernel_of =
        let kernel, init = kernel_of case.Workload.Progen.program case.Workload.Progen.database in
        let q = Lang.Forever.make ~kernel ~event:case.Workload.Progen.event in
        let rng = Random.State.make [| seed |] in
        let rec go db steps ok =
          if steps = 0 || not ok then ok
          else go (Lang.Forever.step_sampled rng q db) (steps - 1) (canonical db)
        in
        go init 12 true
      in
      run Lang.Compile.inflationary_kernel && run Lang.Compile.noninflationary_kernel)

(* Exact Q answers, both semantics, are invariant under rebuilding the EDB
   from the reference representation's enumeration. *)
let prop_progen_exact_invariant_under_reference =
  QCheck.Test.make ~name:"Progen exact Q answers invariant under reference rebuild" ~count:15
    arb_case (fun seed ->
      let case = case_of seed in
      let rebuild db = Database.map (fun _ r -> Ref.to_relation (Ref.of_relation r)) db in
      let inflationary db =
        let kernel, init = Lang.Compile.inflationary_kernel case.Workload.Progen.program db in
        Eval.Exact_inflationary.eval
          (Lang.Inflationary.of_forever_unchecked
             (Lang.Forever.make ~kernel ~event:case.Workload.Progen.event))
          init
      in
      let noninflationary db =
        let kernel, init = Lang.Compile.noninflationary_kernel case.Workload.Progen.program db in
        Eval.Exact_noninflationary.eval ~max_states:400
          (Lang.Forever.make ~kernel ~event:case.Workload.Progen.event)
          init
      in
      let db = case.Workload.Progen.database in
      Q.equal (inflationary db) (inflationary (rebuild db))
      &&
      match noninflationary db with
      | exception Markov.Chain.Chain_error _ -> true
      | direct -> Q.equal direct (noninflationary (rebuild db)))

(* Fixed-seed sampling estimates are bit-identical at 1, 2 and 4 domains on
   random programs — the sharding contract holds over the columnar plane. *)
let prop_progen_domains_bit_identical =
  QCheck.Test.make ~name:"Progen fixed-seed estimates identical at 1/2/4 domains" ~count:8
    arb_case (fun seed ->
      let case = case_of seed in
      let facts =
        List.concat_map
          (fun (name, r) ->
            List.rev
              (Relation.fold (fun tu acc -> (name, Tuple.to_list tu) :: acc) r []))
          (Database.bindings case.Workload.Progen.database)
      in
      let parsed =
        { Lang.Parser.program = case.Workload.Progen.program;
          facts;
          vars = [];
          cond_facts = [];
          event = Some case.Workload.Progen.event;
          events = [ case.Workload.Progen.event ]
        }
      in
      let run d =
        (Eval.Engine.run ~seed:(seed + 7) ~domains:d ~semantics:Eval.Engine.Inflationary
           ~method_:(Eval.Engine.Sampling { eps = 0.15; delta = 0.15; burn_in = 0 })
           parsed)
          .Eval.Engine.probability
      in
      let e1 = run 1 in
      e1 = run 2 && e1 = run 4)

let () =
  Alcotest.run "columnar"
    [ ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ops_agree; prop_builder_matches_make; prop_join_matches_reference ] );
      ( "order",
        [ Alcotest.test_case "join output order" `Quick test_join_output_order;
          Alcotest.test_case "aggregate output order" `Quick test_aggregate_output_order;
          Alcotest.test_case "delta output order" `Quick test_delta_output_order
        ] );
      ("race", List.map QCheck_alcotest.to_alcotest [ prop_hash_memo_race ]);
      ( "progen",
        List.map QCheck_alcotest.to_alcotest
          [ prop_progen_states_reference_canonical;
            prop_progen_exact_invariant_under_reference;
            prop_progen_domains_bit_identical
          ] )
    ]
