(* Examples 3.5 and 3.9: probabilistic reachability, in both the
   inflationary-algebra form (with the Cold frontier trick) and the
   probabilistic-datalog form (with the C2 auxiliary predicate), evaluated
   exactly and by Theorem 4.3 sampling.

   Run with: dune exec examples/reachability.exe *)

open Relational
module Q = Bigq.Q
module P = Prob.Palgebra

let graph =
  (* v -> w (weight 1), v -> u (weight 3), w -> t, u -> u. *)
  Table_io.relation_of_rows [ "I"; "J"; "P" ]
    [ [ "v"; "w"; "1" ]; [ "v"; "u"; "3" ]; [ "w"; "t"; "1" ]; [ "u"; "u"; "1" ] ]

(* --- Example 3.5: algebra form ------------------------------------------ *)

let algebra_query target =
  let fresh = P.Diff (P.Rel "C", P.Rel "Cold") in
  let choice =
    P.Rename
      ([ ("J", "I") ], P.Project ([ "J" ], P.repair_key ~weight:"P" [ "I" ] (P.Join (fresh, P.Rel "E"))))
  in
  let kernel =
    Prob.Interp.make
      [ ("Cold", P.Union (P.Rel "Cold", P.Rel "C"));
        ("C", P.Union (P.Rel "C", choice));
        Prob.Interp.unchanged "E"
      ]
  in
  let init =
    Database.of_list
      [ ("C", Relation.make [ "I" ] [ Tuple.of_list [ Value.Str "v" ] ]);
        ("Cold", Relation.empty [ "I" ]);
        ("E", graph)
      ]
  in
  (Lang.Inflationary.of_forever
     (Lang.Forever.make ~kernel ~event:(Lang.Event.make "C" [ Value.Str target ])),
   init)

(* --- Example 3.9: datalog form ------------------------------------------ *)

let datalog_query target =
  let src =
    Printf.sprintf
      "C(v) :- .\nC2(<X>, Y) @W :- C(X), e(X, Y, W).\nC(Y) :- C2(X, Y).\n?- C(%s)." target
  in
  let parsed = Lang.Parser.parse src in
  let db = Database.of_list [ ("e", Relation.make [ "x1"; "x2"; "x3" ] (Relation.tuples graph)) ] in
  let kernel, init = Lang.Compile.inflationary_kernel parsed.Lang.Parser.program db in
  (Lang.Inflationary.of_forever (Lang.Forever.make ~kernel ~event:(Option.get parsed.Lang.Parser.event)),
   init)

let () =
  Format.printf "Graph:@.%a@.@." Table_io.pp_table graph;
  Format.printf "Probability that each node is ever reached from v@.";
  Format.printf "(walker picks one outgoing edge per frontier node, weight-proportionally)@.@.";
  Format.printf "target   algebra form (Ex 3.5)   datalog form (Ex 3.9)   sampled (Thm 4.3)@.";
  List.iter
    (fun target ->
      let qa, ia = algebra_query target in
      let qd, id_ = datalog_query target in
      let pa = Eval.Exact_inflationary.eval qa ia in
      let pd = Eval.Exact_inflationary.eval qd id_ in
      let rng = Random.State.make [| 42 |] in
      let ps = Eval.Sample_inflationary.eval ~samples:20_000 rng qd id_ in
      Format.printf "%-8s %-23s %-23s %.4f@." target (Q.to_string pa) (Q.to_string pd) ps)
    [ "v"; "w"; "u"; "t" ];
  Format.printf "@.expected: w with 1/4 (weight 1 of 4), u with 3/4, t with 1/4 (via w).@.";

  (* Chernoff-style sample sizing (Thm 4.3). *)
  Format.printf "@.samples required for (eps, delta)-absolute approximation:@.";
  List.iter
    (fun (eps, delta) ->
      Format.printf "  eps=%-5g delta=%-5g -> m = %d@." eps delta
        (Eval.Sample_inflationary.samples_needed ~eps ~delta))
    [ (0.1, 0.05); (0.05, 0.05); (0.01, 0.05); (0.01, 0.001) ]
