(* The hardness constructions of Theorems 4.1 and 5.1 run end-to-end.

   Theorem 4.1 maps a 3-CNF formula to an inflationary linear datalog query
   whose probability is #SAT/2^n — so any relative approximation decides
   SAT.  Theorem 5.1 maps it to a non-inflationary query with probability
   exactly 1 (satisfiable) or 0 (unsatisfiable) — so even 0.5-absolute
   approximation decides SAT.

   Run with: dune exec examples/sat_reduction.exe *)

open Reductions
module Q = Bigq.Q

let show_inflationary f label =
  let ct, program, event = Encode_inflationary.encode_ctable f in
  let p = Eval.Exact_inflationary.eval_ctable ~program ~event ct in
  let expected = Encode_inflationary.expected_probability f in
  let models = Dpll.count_models f in
  Format.printf "  %-12s #SAT = %d/%d worlds; query prob = %-8s expected %-8s %s@." label models
    (1 lsl f.Cnf.num_vars) (Q.to_string p) (Q.to_string expected)
    (if Q.equal p expected then "(agree)" else "(MISMATCH)")

let show_noninflationary f label =
  let db, program, event = Encode_noninflationary.encode f in
  let kernel, init = Lang.Compile.noninflationary_kernel program db in
  let q = Lang.Forever.make ~kernel ~event in
  let rng = Random.State.make [| 1 |] in
  let estimate = Eval.Sample_noninflationary.eval rng ~burn_in:50 ~samples:400 q init in
  let satisfiable = Dpll.is_satisfiable f in
  Format.printf "  %-12s satisfiable = %-5b sampled Pr[Done] = %.3f (expected %s)@." label
    satisfiable estimate
    (Q.to_string (Encode_noninflationary.expected_probability f))

let () =
  (* (x1 v x2 v x3) and (~x1 v x2 v ~x3): satisfiable. *)
  let sat =
    Cnf.make ~num_vars:3
      [ [ Cnf.pos 1; Cnf.pos 2; Cnf.pos 3 ]; [ Cnf.neg 1; Cnf.pos 2; Cnf.neg 3 ] ]
  in
  let unsat = Cnf.unsatisfiable_core 3 in

  Format.printf "Satisfiable formula:@.%a@." Cnf.pp sat;
  Format.printf "Unsatisfiable formula: all 8 sign patterns over x1..x3.@.@.";

  let _, program, _ = Encode_inflationary.encode_ctable sat in
  Format.printf "Theorem 4.1 program (linear datalog over a pc-table):@.%a@."
    Lang.Datalog.pp_program program;
  Format.printf "Theorem 4.1 (relative approximation is NP-hard):@.";
  show_inflationary sat "satisfiable";
  show_inflationary unsat "unsat";
  Format.printf "  -> any relative approximation separates 0 from >= 1/2^n, deciding SAT.@.@.";

  let _, nprogram, _ = Encode_noninflationary.encode sat in
  Format.printf "Theorem 5.1 program (non-inflationary, assignment re-sampled each step):@.%a@."
    Lang.Datalog.pp_program nprogram;
  Format.printf "Theorem 5.1 (absolute approximation is NP-hard):@.";
  show_noninflationary sat "satisfiable";
  show_noninflationary unsat "unsat";
  Format.printf "  -> probabilities are exactly 1 vs 0: a 0.5-absolute approximation decides SAT.@.";

  (* The two sides of Lemma 4.2 as a sweep over random formulas. *)
  Format.printf "@.Random 3-CNF sweep (n = 4 vars, m = 2..8 clauses):@.";
  Format.printf "  m   #SAT   query prob (exact = #SAT/16)@.";
  let rng = Random.State.make [| 2010 |] in
  List.iter
    (fun m ->
      let f = Cnf.random3 rng ~num_vars:4 ~num_clauses:m in
      let ct, program, event = Encode_inflationary.encode_ctable f in
      let p = Eval.Exact_inflationary.eval_ctable ~program ~event ct in
      Format.printf "  %-3d %-6d %s@." m (Dpll.count_models f) (Q.to_string p))
    [ 2; 3; 4; 5; 6; 7; 8 ]
