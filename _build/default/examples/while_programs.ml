(* Structured while-programs over probabilistic kernels: the terminating
   fragment of the paper's while-languages.

   Two classics, written as database programs and evaluated exactly by
   unfolding (with fuel; the residual mass of still-running paths decays
   geometrically):

   - gambler's ruin on p0..p3 starting at p1: absorption probabilities and
     expected ruin time;
   - coupon collector with 3 coupons: expected number of draws.

   Run with: dune exec examples/while_programs.exe *)

open Relational
open Lang
module Q = Bigq.Q
module P = Prob.Palgebra

let v_str s = Value.Str s
let rel cols rows = Relation.make cols (List.map Tuple.of_list rows)
let unit_tuple = rel [] [ [] ]

(* --- gambler's ruin ------------------------------------------------------ *)

let ruin () =
  (* move(I, J): interior positions step left/right; boundaries self-loop. *)
  let moves =
    rel [ "I"; "J" ]
      [ [ v_str "p0"; v_str "p0" ];
        [ v_str "p1"; v_str "p0" ]; [ v_str "p1"; v_str "p2" ];
        [ v_str "p2"; v_str "p1" ]; [ v_str "p2"; v_str "p3" ];
        [ v_str "p3"; v_str "p3" ]
      ]
  in
  (* The kernel also maintains a 0-ary Interior marker so the loop guard is
     a single membership test. *)
  let interior_marker =
    P.Project
      ([],
       P.Union
         ( P.Select (Pred.eq (Pred.col "I") (Pred.const (v_str "p1")), P.Rel "Pos"),
           P.Select (Pred.eq (Pred.col "I") (Pred.const (v_str "p2")), P.Rel "Pos") ))
  in
  let kernel =
    Prob.Interp.make
      [ ( "Pos",
          P.Rename
            ([ ("J", "I") ], P.Project ([ "J" ], P.repair_key_all (P.Join (P.Rel "Pos", P.Rel "move")))) );
        ("Interior", interior_marker);
        Prob.Interp.unchanged "move"
      ]
  in
  let init =
    Database.of_list
      [ ("Pos", rel [ "I" ] [ [ v_str "p1" ] ]); ("move", moves); ("Interior", unit_tuple) ]
  in
  let interior = { While_lang.event = Event.make "Interior" []; negated = false } in
  let prog = While_lang.While (interior, While_lang.Step kernel) in
  Format.printf "Gambler's ruin on p0..p3 from p1 (fair steps):@.";
  let outcomes, residual = While_lang.eval_partial ~fuel:60 prog init in
  List.iter
    (fun (db, p) ->
      match Relation.tuples (Database.find "Pos" db) with
      | [ t ] ->
        Format.printf "  absorbed at %s with probability %s (~%.6f)@." (Value.to_string t.(0))
          (Q.to_string p) (Q.to_float p)
      | _ -> ())
    outcomes;
  Format.printf "  residual (still walking after 60 steps): ~%.2e@." (Q.to_float residual);
  Format.printf "  expected: p0 with 2/3, p3 with 1/3@.";
  let e, _ = While_lang.expected_steps ~fuel:60 prog init in
  Format.printf
    "  expected kernel applications: ~%.6f (ruin time 2 + 1 step for the guard@."
    (Q.to_float e);
  Format.printf "   marker, which observes the previous state)@.@."

(* --- coupon collector ----------------------------------------------------- *)

let coupons () =
  let coupons_rel = rel [ "C" ] [ [ v_str "c1" ]; [ v_str "c2" ]; [ v_str "c3" ] ] in
  (* All holds when no coupon is missing: unit − guard(coupons − Got). *)
  let missing = P.Diff (P.Rel "coupons", P.Rel "Got") in
  let all_marker = P.Diff (P.Const unit_tuple, P.Project ([], missing)) in
  let kernel =
    Prob.Interp.make
      [ ("Got", P.Union (P.Rel "Got", P.repair_key_all (P.Rel "coupons")));
        ("All", all_marker);
        Prob.Interp.unchanged "coupons"
      ]
  in
  let init =
    Database.of_list
      [ ("coupons", coupons_rel); ("Got", Relation.empty [ "C" ]); ("All", Relation.empty []) ]
  in
  let not_all = { While_lang.event = Event.make "All" []; negated = true } in
  let prog = While_lang.While (not_all, While_lang.Step kernel) in
  Format.printf "Coupon collector with 3 coupons:@.";
  let e, residual = While_lang.expected_steps ~fuel:80 prog init in
  Format.printf
    "  expected kernel applications (truncated at 80): ~%.6f (3*H3 = 5.5 draws@." (Q.to_float e);
  Format.printf "   + 1 guard-lag step)@.";
  Format.printf "  residual mass: ~%.2e@." (Q.to_float residual);
  (* Sanity: sampled runs terminate with all coupons. *)
  let rng = Random.State.make [| 7 |] in
  let complete = ref true in
  for _ = 1 to 5_000 do
    let out = While_lang.run_sampled rng prog init in
    if Relation.cardinal (Database.find "Got" out) <> 3 then complete := false
  done;
  Format.printf "  5000 sampled runs all collected 3 coupons: %b@." !complete

let () =
  ruin ();
  coupons ()
