(* Probabilistic datalog for information retrieval — the Fuhr [SIGIR'95]
   setting the paper cites as prior work (condition (2') of its theorems:
   probabilities only on ground facts, via a pc-table).

   Documents are probabilistically indexed with terms (indexing weights are
   interpreted as probabilities of aboutness); hyperlinks propagate
   relevance.  The probability that a document is "about" a query term —
   directly or through one link — is an inflationary query over the
   pc-table, evaluated exactly by world enumeration and approximately by
   Theorem 4.3 sampling.

   Run with: dune exec examples/retrieval.exe *)

module Q = Bigq.Q

(* indexed(Doc, Term) with independent aboutness probabilities;
   link(D1, D2) certain. *)
let corpus_source =
  "var i1 = { true: 4/5, false: 1/5 }.\n\
   var i2 = { true: 1/2, false: 1/2 }.\n\
   var i3 = { true: 7/10, false: 3/10 }.\n\
   var i4 = { true: 1/5, false: 4/5 }.\n\
   indexed(d1, databases) when i1 = true.\n\
   indexed(d1, logic) when i2 = true.\n\
   indexed(d2, databases) when i3 = true.\n\
   indexed(d3, retrieval) when i4 = true.\n\
   link(d2, d1).\n\
   link(d3, d2).\n\
   % A document is about a term if indexed with it, or if it links to a\n\
   % document about it (one-step citation propagation, then transitively).\n\
   about(D, T) :- indexed(D, T).\n\
   about(D, T) :- link(D, E), about(E, T).\n"

let query doc term =
  let src = corpus_source ^ Printf.sprintf "?- about(%s, %s)." doc term in
  let parsed = Lang.Parser.parse src in
  let r = Eval.Engine.run ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact parsed in
  Option.get r.Eval.Engine.exact

let sampled_query doc term =
  let src = corpus_source ^ Printf.sprintf "?- about(%s, %s)." doc term in
  let parsed = Lang.Parser.parse src in
  let r =
    Eval.Engine.run ~seed:1 ~semantics:Eval.Engine.Inflationary
      ~method_:(Eval.Engine.Sampling { eps = 0.02; delta = 0.05; burn_in = 0 })
      parsed
  in
  r.Eval.Engine.probability

let () =
  Format.printf "Probabilistic IR (Fuhr-style): Pr[doc is about term]@.@.";
  Format.printf "%-6s %-12s %-14s %-12s %s@." "doc" "term" "exact" "~float" "sampled";
  List.iter
    (fun (d, t) ->
      let p = query d t in
      Format.printf "%-6s %-12s %-14s %-12.4f %.4f@." d t (Q.to_string p) (Q.to_float p)
        (sampled_query d t))
    [ ("d1", "databases"); ("d2", "databases"); ("d3", "databases"); ("d1", "logic"); ("d3", "retrieval") ];
  Format.printf "@.checks:@.";
  Format.printf "  d2 about databases = 1 - (1 - 7/10)(1 - 4/5) = 47/50: %b@."
    (Q.equal (query "d2" "databases") (Q.of_ints 47 50));
  Format.printf "  d3 about databases = Pr[d2 about databases] (via link) = 47/50: %b@."
    (Q.equal (query "d3" "databases") (Q.of_ints 47 50));
  Format.printf "  d1 about logic = 1/2 (direct only): %b@."
    (Q.equal (query "d1" "logic") Q.half);
  (* Ranking documents for the query "databases". *)
  Format.printf "@.ranking for 'databases':@.";
  let ranked =
    List.sort
      (fun (_, p1) (_, p2) -> Q.compare p2 p1)
      (List.map (fun d -> (d, query d "databases")) [ "d1"; "d2"; "d3" ])
  in
  List.iteri
    (fun i (d, p) -> Format.printf "  %d. %s (%s)@." (i + 1) d (Q.to_string p))
    ranked
