(* MCMC as a declarative query: Glauber dynamics for graph colourings.

   The paper's introduction motivates the languages as a way to program
   Markov Chain Monte Carlo declaratively.  This example does exactly that:
   the single-site Glauber update for proper graph colourings is one
   transition kernel (repair-key picks the node and its new colour), and
   colouring statistics are forever-queries.

   With k >= Delta + 2 colours the chain is ergodic with uniform stationary
   distribution over proper colourings, so
     Pr[color(n, c)] = #(proper colourings with n = c) / #(proper colourings)
   — which we verify exactly on small graphs, then estimate by walking on a
   larger one, with convergence diagnostics.

   Run with: dune exec examples/mcmc_coloring.exe *)

module Q = Bigq.Q

let () =
  (* --- exact: triangle, 4 colours ------------------------------------- *)
  let edges = [ (0, 1); (1, 2); (0, 2) ] in
  let colors = [ "c1"; "c2"; "c3"; "c4" ] in
  let kernel, db =
    Workload.Coloring.glauber ~edges ~num_nodes:3 ~colors
      ~initial:[ (0, "c1"); (1, "c2"); (2, "c3") ]
  in
  Format.printf "Glauber kernel (one MCMC step as a probabilistic interpretation):@.%a@."
    Prob.Interp.pp kernel;
  let event = Workload.Coloring.color_event ~node:0 ~color:"c1" in
  let query = Lang.Forever.make ~kernel ~event in
  let a = Eval.Exact_noninflationary.analyse query db in
  let total = Workload.Coloring.proper_colorings ~edges ~num_nodes:3 ~colors in
  let matching = Workload.Coloring.colorings_with ~edges ~num_nodes:3 ~colors ~node:0 ~color:"c1" in
  Format.printf "triangle K3, 4 colours: %d proper colourings, %d with n0 = c1@." total matching;
  Format.printf "chain over database states: %d states, ergodic: %b@."
    a.Eval.Exact_noninflationary.num_states a.Eval.Exact_noninflationary.ergodic;
  Format.printf "exact Pr[color(n0) = c1] = %s (combinatorial: %d/%d)@.@."
    (Q.to_string a.Eval.Exact_noninflationary.result) matching total;

  (* --- exact: path, 3 colours ------------------------------------------ *)
  let p_edges = [ (0, 1); (1, 2) ] in
  let p_colors = [ "c1"; "c2"; "c3" ] in
  let p_kernel, p_db =
    Workload.Coloring.glauber ~edges:p_edges ~num_nodes:3 ~colors:p_colors
      ~initial:[ (0, "c1"); (1, "c2"); (2, "c1") ]
  in
  let p_event = Workload.Coloring.color_event ~node:1 ~color:"c2" in
  let p_query = Lang.Forever.make ~kernel:p_kernel ~event:p_event in
  let p = Eval.Exact_noninflationary.eval p_query p_db in
  Format.printf "path P3, 3 colours: exact Pr[color(mid) = c2] = %s (expected %d/%d)@.@."
    (Q.to_string p)
    (Workload.Coloring.colorings_with ~edges:p_edges ~num_nodes:3 ~colors:p_colors ~node:1 ~color:"c2")
    (Workload.Coloring.proper_colorings ~edges:p_edges ~num_nodes:3 ~colors:p_colors);

  (* --- sampled: 5-cycle, 4 colours, with diagnostics -------------------- *)
  let c_edges = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let c_colors = [ "c1"; "c2"; "c3"; "c4" ] in
  let c_kernel, c_db =
    Workload.Coloring.glauber ~edges:c_edges ~num_nodes:5 ~colors:c_colors
      ~initial:[ (0, "c1"); (1, "c2"); (2, "c1"); (3, "c2"); (4, "c3") ]
  in
  let c_event = Workload.Coloring.color_event ~node:0 ~color:"c1" in
  let c_query = Lang.Forever.make ~kernel:c_kernel ~event:c_event in
  let rng = Random.State.make [| 2010 |] in
  let steps = 30_000 in
  let est = Eval.Sample_noninflationary.eval_time_average rng ~steps c_query c_db in
  let truth =
    float_of_int (Workload.Coloring.colorings_with ~edges:c_edges ~num_nodes:5 ~colors:c_colors ~node:0 ~color:"c1")
    /. float_of_int (Workload.Coloring.proper_colorings ~edges:c_edges ~num_nodes:5 ~colors:c_colors)
  in
  Format.printf "5-cycle, 4 colours: time-average estimate over %d steps = %.4f@." steps est;
  Format.printf "combinatorial ground truth                         = %.4f@." truth;

  (* Convergence diagnostics on three independent walks. *)
  let trace seed =
    let rng = Random.State.make [| seed |] in
    let hits = Array.make 3000 0.0 in
    let db = ref c_db in
    for i = 0 to 2999 do
      if Lang.Event.holds c_event !db then hits.(i) <- 1.0;
      db := Lang.Forever.step_sampled rng c_query !db
    done;
    hits
  in
  let t1 = trace 1 and t2 = trace 2 and t3 = trace 3 in
  Format.printf "@.diagnostics over 3 chains of 3000 steps:@.";
  Format.printf "  means: %.3f %.3f %.3f@." (Markov.Diagnostics.mean t1) (Markov.Diagnostics.mean t2)
    (Markov.Diagnostics.mean t3);
  Format.printf "  effective sample size (chain 1): %.0f@." (Markov.Diagnostics.effective_sample_size t1);
  Format.printf "  Gelman-Rubin R-hat: %.4f (near 1 = mixed)@."
    (Markov.Diagnostics.gelman_rubin [ t1; t2; t3 ])
