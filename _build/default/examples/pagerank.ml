(* PageRank as a forever-query — the variant of Example 3.3.

   With probability 1 - alpha the walker follows a weighted edge from its
   current node; with probability alpha it jumps to a uniformly random
   node.  The paper expresses this with two repair-key applications whose
   results are combined by a weighted top-level choice:

     C := pi_I( repair-key_{@P}(
            rho_{J->I}(pi_J(repair-key_{I@P}(C |x| E))) x {P := 1-alpha}
            U  repair-key_{}(V) x {P := alpha} ) )

   We evaluate the stationary distribution of the induced chain exactly
   and compare with a classical power-iteration PageRank.

   Run with: dune exec examples/pagerank.exe *)

open Relational
module Q = Bigq.Q
module P = Prob.Palgebra

let alpha = Q.of_ints 3 20 (* 0.15, the usual damping factor *)

(* A small "web": n0 and n1 link to each other; n2 links into the pair;
   n3 only links to n2. *)
let edge_rows = [ (0, 1); (1, 0); (2, 0); (2, 1); (3, 2) ]
let num_nodes = 4

let node i = Value.Str (Printf.sprintf "n%d" i)

let edges =
  Relation.make [ "I"; "J"; "P" ]
    (List.map (fun (i, j) -> Tuple.of_list [ node i; node j; Value.Int 1 ]) edge_rows)

let nodes_relation =
  Relation.make [ "I" ] (List.init num_nodes (fun i -> Tuple.of_list [ node i ]))

let pagerank_kernel =
  (* One step of the walk proper. *)
  let follow =
    P.Rename
      ([ ("J", "I") ], P.Project ([ "J" ], P.repair_key ~weight:"P" [ "I" ] (P.Join (P.Rel "C", P.Rel "E"))))
  in
  (* A uniform jump: one node out of V. *)
  let jump = P.Project ([ "I" ], P.repair_key_all (P.Rel "V")) in
  let weighted e w = P.Extend ("P", Relational.Pred.Const (Value.Rat w), e) in
  let choice =
    P.Project
      ([ "I" ], P.repair_key_all ~weight:"P" (P.Union (weighted follow (Q.sub Q.one alpha), weighted jump alpha)))
  in
  Prob.Interp.make [ ("C", choice); Prob.Interp.unchanged "E"; Prob.Interp.unchanged "V" ]

let init =
  Database.of_list
    [ ("C", Relation.make [ "I" ] [ Tuple.of_list [ node 0 ] ]);
      ("E", edges);
      ("V", nodes_relation)
    ]

(* Classical baseline: power iteration on M = (1-a) W + a/n 1. *)
let baseline () =
  let n = num_nodes in
  let out = Array.make n [] in
  List.iter (fun (i, j) -> out.(i) <- j :: out.(i)) edge_rows;
  let a = Q.to_float alpha in
  let pr = Array.make n (1.0 /. float_of_int n) in
  for _ = 1 to 10_000 do
    let next = Array.make n (a /. float_of_int n) in
    Array.iteri
      (fun i mass ->
        let d = float_of_int (List.length out.(i)) in
        List.iter (fun j -> next.(j) <- next.(j) +. ((1.0 -. a) *. mass /. d)) out.(i))
      pr;
    Array.blit next 0 pr 0 n
  done;
  pr

let () =
  Format.printf "PageRank as a forever-query (alpha = %s)@.@." (Q.to_string alpha);
  let event = Lang.Event.make "C" [ node 0 ] in
  let query = Lang.Forever.make ~kernel:pagerank_kernel ~event in
  let analysis = Eval.Exact_noninflationary.analyse query init in
  let chain = analysis.Eval.Exact_noninflationary.chain in
  Format.printf "chain over database states: %d states, ergodic: %b@.@."
    analysis.Eval.Exact_noninflationary.num_states analysis.Eval.Exact_noninflationary.ergodic;
  let pi = Markov.Stationary.exact chain in
  let node_of db =
    match Relation.tuples (Database.find "C" db) with
    | [ t ] -> Value.to_string t.(0)
    | _ -> "?"
  in
  let base = baseline () in
  Format.printf "node   forever-query (exact)      power iteration   |diff|@.";
  Array.iteri
    (fun i p ->
      let name = node_of (Markov.Chain.label chain i) in
      let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
      Format.printf "%-6s %-12s (~%.6f)   %.6f          %.2e@." name (Q.to_string p) (Q.to_float p)
        base.(idx)
        (abs_float (Q.to_float p -. base.(idx))))
    pi
