(* Example 3.3: a random walk over a weighted graph as a forever-query.

   The transition kernel is written both ways the paper shows:
   - directly in relational algebra with repair-key:
       C := rho_I(pi_J(repair-key_{I@P}(C |x| E)))
   - and in probabilistic datalog:  ?C(Y) @W :- C(X), e(X, Y, W).

   Both induce the same Markov chain over database states; we evaluate the
   stationary query exactly (Prop 5.4) and by mixed sampling (Thm 5.6).

   Run with: dune exec examples/random_walk.exe *)

open Relational
module Q = Bigq.Q
module P = Prob.Palgebra

let edges =
  (* A 4-node weighted graph: n0 -> n1/n2, n1 -> n0, n2 -> n0/n2, ... *)
  Table_io.relation_of_rows [ "I"; "J"; "P" ]
    [ [ "n0"; "n1"; "2" ];
      [ "n0"; "n2"; "1" ];
      [ "n1"; "n0"; "1" ];
      [ "n2"; "n0"; "1" ];
      [ "n2"; "n2"; "3" ]
    ]

let () =
  Format.printf "Edges:@.%a@.@." Table_io.pp_table edges;

  (* --- algebra form ---------------------------------------------------- *)
  let kernel =
    Prob.Interp.make
      [ ( "C",
          P.Rename
            ( [ ("J", "I") ],
              P.Project ([ "J" ], P.repair_key ~weight:"P" [ "I" ] (P.Join (P.Rel "C", P.Rel "E"))) ) );
        Prob.Interp.unchanged "E"
      ]
  in
  let init =
    Database.of_list
      [ ("C", Relation.make [ "I" ] [ Tuple.of_list [ Value.Str "n0" ] ]); ("E", edges) ]
  in
  Format.printf "Transition kernel (Example 3.3):@.%a@." Prob.Interp.pp kernel;

  let node_of db =
    match Relation.tuples (Database.find "C" db) with
    | [ t ] -> Value.to_string t.(0)
    | _ -> "?"
  in
  let query = Lang.Forever.make ~kernel ~event:(Lang.Event.make "C" [ Value.Str "n2" ]) in
  let analysis = Eval.Exact_noninflationary.analyse query init in
  Format.printf "chain states: %d, irreducible: %b, ergodic: %b@."
    analysis.Eval.Exact_noninflationary.num_states analysis.Eval.Exact_noninflationary.irreducible
    analysis.Eval.Exact_noninflationary.ergodic;

  (* Full stationary distribution over nodes. *)
  let chain = analysis.Eval.Exact_noninflationary.chain in
  let pi = Markov.Stationary.exact chain in
  Format.printf "@.stationary distribution (exact, Prop 5.4):@.";
  Array.iteri
    (fun i p -> Format.printf "  %s : %s  (~%.4f)@." (node_of (Markov.Chain.label chain i)) (Q.to_string p) (Q.to_float p))
    pi;
  Format.printf "query Pr[C = n2] = %s@.@." (Q.to_string analysis.Eval.Exact_noninflationary.result);

  (* --- datalog form ------------------------------------------------------ *)
  let src = "?C(Y) @W :- C(X), e(X, Y, W).\n?- C(n2)." in
  let parsed = Lang.Parser.parse src in
  let db =
    Database.of_list
      [ ("C", Relation.make [ "x1" ] [ Tuple.of_list [ Value.Str "n0" ] ]);
        ("e", Relation.make [ "x1"; "x2"; "x3" ] (Relation.tuples edges))
      ]
  in
  let kernel_dl, init_dl = Lang.Compile.noninflationary_kernel parsed.Lang.Parser.program db in
  let query_dl = Lang.Forever.make ~kernel:kernel_dl ~event:(Option.get parsed.Lang.Parser.event) in
  let exact = Eval.Exact_noninflationary.eval query_dl init_dl in
  Format.printf "datalog form   ?C(Y) @W :- C(X), e(X, Y, W).@.";
  Format.printf "exact answer   : %s@." (Q.to_string exact);

  (* --- sampling (Thm 5.6) ------------------------------------------------ *)
  let rng = Random.State.make [| 2010 |] in
  let burn_in =
    match Eval.Sample_noninflationary.estimate_burn_in ~eps:0.01 query_dl init_dl with
    | Some t -> t
    | None -> 100
  in
  let sampled = Eval.Sample_noninflationary.eval rng ~burn_in ~samples:20_000 query_dl init_dl in
  Format.printf "mixing time    : %d steps (eps = 0.01)@." burn_in;
  Format.printf "sampled answer : %.4f (20000 restarts of %d steps, Thm 5.6)@." sampled burn_in;
  Format.printf "|exact - sampled| = %.4f@." (abs_float (Q.to_float exact -. sampled))
