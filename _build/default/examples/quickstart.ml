(* Quickstart: the basketball-players example of Section 2.2 (Table 2).

   A relation with conflicting facts about which team each player plays for
   is "repaired" probabilistically: repair-key samples one tuple per key
   value, weighted by the Belief column.  We enumerate the possible worlds
   exactly, then ask a first query.

   Run with: dune exec examples/quickstart.exe *)

open Relational
module Q = Bigq.Q

let () =
  (* Table 2 of the paper. *)
  let players =
    Table_io.relation_of_rows
      [ "Player"; "Team"; "Belief" ]
      [ [ "Bryant"; "LALakers"; "17" ];
        [ "Bryant"; "NYKnicks"; "3" ];
        [ "Iverson"; "Sixers"; "8" ];
        [ "Iverson"; "Grizzlies"; "7" ]
      ]
  in
  Format.printf "Input relation (Table 2):@.%a@.@." Table_io.pp_table players;

  (* repair-key_{Player@Belief}: one team per player, belief-weighted. *)
  let worlds = Prob.Repair_key.repair ~key:[ "Player" ] ~weight:"Belief" players in
  Format.printf "repair-key_(Player@Belief) yields %d possible worlds:@.@."
    (Prob.Dist.size worlds);
  List.iteri
    (fun i (world, p) ->
      Format.printf "world %d (probability %s):@.%a@.@." (i + 1) (Q.to_string p)
        Table_io.pp_table world)
    (Prob.Dist.support worlds);

  (* Query: probability that Bryant plays for the Lakers. *)
  let bryant_lakers world =
    Relation.exists
      (fun t -> Value.equal t.(0) (Value.Str "Bryant") && Value.equal t.(1) (Value.Str "LALakers"))
      world
  in
  Format.printf "Pr[Bryant -> LALakers] = %s (expected 17/20)@."
    (Q.to_string (Prob.Dist.prob bryant_lakers worlds));

  (* The same relation queried through the datalog front-end: probability
     that Bryant and Iverson end up in a world where both repairs kept
     their most-believed team. *)
  let src =
    "plays(<P>, T) @B :- belief(P, T, B).\n\
     q :- plays(\"Bryant\", \"LALakers\"), plays(\"Iverson\", \"Sixers\").\n\
     ?- q."
  in
  let parsed = Lang.Parser.parse src in
  let db = Database.of_list [ ("belief", players) ] in
  let kernel, init = Lang.Compile.inflationary_kernel parsed.Lang.Parser.program db in
  let query =
    Lang.Inflationary.of_forever
      (Lang.Forever.make ~kernel ~event:(Option.get parsed.Lang.Parser.event))
  in
  let p = Eval.Exact_inflationary.eval query init in
  Format.printf "Pr[Bryant->LALakers and Iverson->Sixers] = %s (expected 17/20 * 8/15 = 34/75)@."
    (Q.to_string p)
