(* Example 3.10: Bayesian inference in probabilistic datalog.

   The classical rain/sprinkler/grass network is encoded as structure
   relations s{k}, CPT relations t{k}, and one datalog rule per in-degree;
   the inflationary fixpoint of V samples the joint distribution, and
   marginal probabilities are query events.  All answers are cross-checked
   against exact enumeration.

   Run with: dune exec examples/bayes_net.exe *)

open Bayes
module Q = Bigq.Q

(* Pr(rain) = 1/5; sprinkler depends on rain; grass wet if either. *)
let sprinkler_net =
  Bn.make
    [ { Bn.name = "rain"; parents = []; cpt = [ ([], Q.of_ints 1 5) ] };
      { Bn.name = "sprinkler";
        parents = [ "rain" ];
        cpt = [ ([ true ], Q.of_ints 1 100); ([ false ], Q.of_ints 2 5) ]
      };
      { Bn.name = "grass_wet";
        parents = [ "sprinkler"; "rain" ];
        cpt =
          [ ([ true; true ], Q.of_ints 99 100);
            ([ true; false ], Q.of_ints 9 10);
            ([ false; true ], Q.of_ints 4 5);
            ([ false; false ], Q.zero)
          ]
      }
    ]

let datalog_marginal bn query =
  let db, program, event = Encode.marginal_query bn query in
  let kernel, init = Lang.Compile.inflationary_kernel program db in
  let q = Lang.Inflationary.of_forever (Lang.Forever.make ~kernel ~event) in
  Eval.Exact_inflationary.eval q init

let show bn query label =
  let enum = Infer.marginal bn query in
  let dl = datalog_marginal bn query in
  Format.printf "%-28s enumeration: %-10s datalog: %-10s %s@." label (Q.to_string enum)
    (Q.to_string dl)
    (if Q.equal enum dl then "(agree)" else "(MISMATCH)")

let () =
  Format.printf "Network:@.%a@." Bn.pp sprinkler_net;
  let db, program = Encode.encode sprinkler_net in
  Format.printf "Datalog encoding (Example 3.10), one rule per in-degree:@.%a@."
    Lang.Datalog.pp_program program;
  Format.printf "Input database relations: %s@.@."
    (String.concat ", " (Relational.Database.names db));

  show sprinkler_net [ ("rain", true) ] "Pr(rain)";
  show sprinkler_net [ ("sprinkler", true) ] "Pr(sprinkler)";
  show sprinkler_net [ ("grass_wet", true) ] "Pr(grass wet)";
  show sprinkler_net [ ("rain", true); ("grass_wet", true) ] "Pr(rain AND wet)";
  show sprinkler_net [ ("rain", false); ("sprinkler", false); ("grass_wet", true) ]
    "Pr(no rain, no sprk, wet)";

  (* Conditional probability from two marginals:
     Pr(rain | grass wet) = Pr(rain, wet) / Pr(wet). *)
  let joint = datalog_marginal sprinkler_net [ ("rain", true); ("grass_wet", true) ] in
  let wet = datalog_marginal sprinkler_net [ ("grass_wet", true) ] in
  Format.printf "@.Pr(rain | grass wet) = %s (~%.4f)@." (Q.to_string (Q.div joint wet))
    (Q.to_float (Q.div joint wet));

  (* A random larger network, sanity-checked against enumeration. *)
  let rng = Random.State.make [| 7 |] in
  let random_bn = Gen.random rng ~num_nodes:5 ~max_in_degree:2 in
  let names = Bn.node_names random_bn in
  Format.printf "@.Random 5-node network (max in-degree 2):@.";
  List.iter
    (fun x -> show random_bn [ (x, true) ] (Printf.sprintf "Pr(%s)" x))
    names
