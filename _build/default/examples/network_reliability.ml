(* Network reliability: the probability that an unreliable network keeps a
   source connected to a sink — the classic ♯P-complete two-terminal
   reliability problem, expressed directly as a reachability query over a
   probabilistic c-table (every link is up independently with its own
   probability).

   The exact engine enumerates the 2^m worlds (this IS the ♯P-hardness of
   Table 1's exact column); Theorem 4.3 sampling scales to networks far
   beyond exact reach.

   Run with: dune exec examples/network_reliability.exe *)

module Q = Bigq.Q

(* A small mesh:      s ─ a ─ t
                       \  |  /
                        \ b /            every link up w.p. 9/10.     *)
let mesh_links = [ ("s", "a"); ("s", "b"); ("a", "b"); ("a", "t"); ("b", "t") ]

let source_of links p_up =
  let vars =
    String.concat "\n"
      (List.mapi
         (fun i _ -> Printf.sprintf "var l%d = { true: %s, false: %s }." i (Q.to_string p_up)
              (Q.to_string (Q.sub Q.one p_up)))
         links)
  in
  let facts =
    String.concat "\n"
      (List.concat
         (List.mapi
            (fun i (a, b) ->
              (* links are bidirectional *)
              [ Printf.sprintf "link(%s, %s) when l%d = true." a b i;
                Printf.sprintf "link(%s, %s) when l%d = true." b a i
              ])
            links))
  in
  vars ^ "\n" ^ facts
  ^ "\nReach(s) :- .\nReach(Y) :- Reach(X), link(X, Y).\n?- Reach(t)."

let reliability links p_up =
  let parsed = Lang.Parser.parse (source_of links p_up) in
  let r = Eval.Engine.run ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact parsed in
  Option.get r.Eval.Engine.exact

let sampled_reliability ?(eps = 0.01) links p_up =
  let parsed = Lang.Parser.parse (source_of links p_up) in
  let r =
    Eval.Engine.run ~seed:13 ~semantics:Eval.Engine.Inflationary
      ~method_:(Eval.Engine.Sampling { eps; delta = 0.05; burn_in = 0 })
      parsed
  in
  r.Eval.Engine.probability

(* Brute-force baseline over link subsets, independent of the query
   machinery. *)
let brute_force links p_up =
  let m = List.length links in
  let rec reach up frontier seen =
    let next =
      List.concat_map
        (fun (a, b) ->
          List.concat_map
            (fun n ->
              if String.equal n a && not (List.mem b seen) then [ b ]
              else if String.equal n b && not (List.mem a seen) then [ a ]
              else [])
            frontier)
        up
    in
    let next = List.sort_uniq String.compare next in
    if next = [] then seen else reach up next (seen @ next)
  in
  let total = ref Q.zero in
  for mask = 0 to (1 lsl m) - 1 do
    let up = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) links in
    let bits = List.init m (fun i -> mask land (1 lsl i) <> 0) in
    let p =
      List.fold_left
        (fun acc b -> Q.mul acc (if b then p_up else Q.sub Q.one p_up))
        Q.one bits
    in
    if List.mem "t" (reach up [ "s" ] [ "s" ]) then total := Q.add !total p
  done;
  !total

let () =
  Format.printf "Two-terminal network reliability (s to t), 5-link mesh:@.@.";
  Format.printf "%-8s %-22s %-22s %-10s@." "p(up)" "query (exact)" "brute force" "agree";
  List.iter
    (fun p_up ->
      let via_query = reliability mesh_links p_up in
      let brute = brute_force mesh_links p_up in
      Format.printf "%-8s %-22s %-22s %-10b@." (Q.to_string p_up) (Q.to_string via_query)
        (Q.to_string brute) (Q.equal via_query brute))
    [ Q.of_ints 9 10; Q.of_ints 1 2; Q.of_ints 1 10 ];
  Format.printf "@.sampling (Thm 4.3) at p(up) = 9/10: %.4f (exact ~%.4f)@."
    (sampled_reliability mesh_links (Q.of_ints 9 10))
    (Q.to_float (reliability mesh_links (Q.of_ints 9 10)));
  (* A larger ladder network, out of comfortable exact range at 2^14 worlds
     but fine for sampling. *)
  let ladder =
    List.concat
      (List.init 4 (fun i ->
           let a = Printf.sprintf "a%d" i and b = Printf.sprintf "b%d" i in
           let a' = Printf.sprintf "a%d" (i + 1) and b' = Printf.sprintf "b%d" (i + 1) in
           [ (a, a'); (b, b'); (a, b) ]))
    @ [ ("a4", "b4") ]
  in
  let ladder = (("s", "a0") :: ("b4", "t") :: ladder) in
  Format.printf "@.15-link ladder (2^15 worlds): sampled reliability at 9/10 = %.4f@."
    (sampled_reliability ~eps:0.02 ladder (Q.of_ints 9 10))
