examples/bayes_net.mli:
