examples/reachability.mli:
