examples/quickstart.mli:
