examples/pagerank.mli:
