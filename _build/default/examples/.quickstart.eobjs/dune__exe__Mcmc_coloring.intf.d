examples/mcmc_coloring.mli:
