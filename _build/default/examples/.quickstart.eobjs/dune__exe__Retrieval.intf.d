examples/retrieval.mli:
