examples/bayes_net.ml: Bayes Bigq Bn Encode Eval Format Gen Infer Lang List Printf Random Relational String
