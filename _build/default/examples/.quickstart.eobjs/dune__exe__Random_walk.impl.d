examples/random_walk.ml: Array Bigq Database Eval Format Lang Markov Option Prob Random Relation Relational Table_io Tuple Value
