examples/sat_reduction.ml: Bigq Cnf Dpll Encode_inflationary Encode_noninflationary Eval Format Lang List Random Reductions
