examples/mcmc_coloring.ml: Array Bigq Eval Format Lang Markov Prob Random Workload
