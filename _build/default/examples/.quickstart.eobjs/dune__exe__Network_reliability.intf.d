examples/network_reliability.mli:
