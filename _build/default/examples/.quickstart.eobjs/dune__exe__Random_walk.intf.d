examples/random_walk.mli:
