examples/while_programs.ml: Array Bigq Database Event Format Lang List Pred Prob Random Relation Relational Tuple Value While_lang
