examples/retrieval.ml: Bigq Eval Format Lang List Option Printf
