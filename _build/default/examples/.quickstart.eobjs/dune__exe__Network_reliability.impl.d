examples/network_reliability.ml: Bigq Eval Format Lang List Option Printf String
