examples/quickstart.ml: Array Bigq Database Eval Format Lang List Option Prob Relation Relational Table_io Value
