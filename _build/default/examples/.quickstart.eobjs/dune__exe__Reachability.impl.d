examples/reachability.ml: Bigq Database Eval Format Lang List Option Printf Prob Random Relation Relational Table_io Tuple Value
