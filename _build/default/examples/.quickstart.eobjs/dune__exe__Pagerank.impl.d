examples/pagerank.ml: Array Bigq Database Eval Format Lang List Markov Printf Prob Relation Relational String Tuple Value
