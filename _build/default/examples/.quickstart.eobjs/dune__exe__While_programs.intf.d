examples/while_programs.mli:
