(* Corner cases across the language surface, plus robustness fuzzing. *)

open Relational
open Lang
module Q = Bigq.Q

let v_str s = Value.Str s
let rel cols rows = Relation.make cols (List.map Tuple.of_list rows)
let q_t = Alcotest.testable Q.pp Q.equal

let exact_inflationary src =
  let parsed = Parser.parse src in
  let db = Parser.database_of_facts parsed.Parser.facts in
  let kernel, init = Compile.inflationary_kernel parsed.Parser.program db in
  let q =
    Inflationary.of_forever_unchecked (Forever.make ~kernel ~event:(Option.get parsed.Parser.event))
  in
  Eval.Exact_inflationary.eval q init

(* --- zero-arity predicates ------------------------------------------------ *)

let test_zero_arity_event () =
  Alcotest.check q_t "propositional q" Q.one (exact_inflationary "f(a).\nq :- f(a).\n?- q.");
  Alcotest.check q_t "unreachable q" Q.zero (exact_inflationary "f(a).\nq :- f(b).\n?- q.")

let test_zero_arity_chain () =
  (* Propositional rules chaining through each other. *)
  Alcotest.check q_t "p -> q -> r" Q.one
    (exact_inflationary "f(a).\np :- f(a).\nq :- p.\nr :- q.\n?- r.")

(* --- weight variable corner cases ----------------------------------------- *)

let test_weight_also_head_var () =
  (* The weight variable appears as a head argument too. *)
  let p =
    exact_inflationary
      "e(a, 1). e(b, 3).\n?Pick(X, W) @W :- e(X, W).\n?- Pick(b, 3)."
  in
  Alcotest.check q_t "weighted 3/4" (Q.of_ints 3 4) p

let test_rational_weights () =
  let p =
    exact_inflationary
      "e(a, 1/3). e(b, 2/3).\n?Pick(X) @W :- e(X, W).\n?- Pick(b)."
  in
  Alcotest.check q_t "rational weights" (Q.of_ints 2 3) p

let test_duplicate_head_var_probabilistic () =
  (* H(<X>, X): key and payload share a variable. *)
  let p =
    exact_inflationary "e(a). e(b).\nH(<X>, X) :- e(X).\n?- H(a, a)."
  in
  Alcotest.check q_t "pairs deterministic per key" Q.one p

(* --- events ---------------------------------------------------------------- *)

let test_event_on_edb () =
  Alcotest.check q_t "event on EDB fact" Q.one (exact_inflationary "f(a).\ng(X) :- f(X).\n?- f(a).")

let test_event_arity_mismatch_is_false () =
  Alcotest.check q_t "wrong arity never holds" Q.zero
    (exact_inflationary "f(a).\ng(X) :- f(X).\n?- f(a, b).")

(* --- quoted strings and mixed constants ------------------------------------ *)

let test_quoted_strings () =
  Alcotest.check q_t "string constants" Q.one
    (exact_inflationary "f(\"hello world\").\ng(X) :- f(X).\n?- g(\"hello world\").")

let test_mixed_value_kinds () =
  Alcotest.check q_t "ints, rats, bools coexist" Q.one
    (exact_inflationary "f(1, 1/2, true).\ng(X, Y, Z) :- f(X, Y, Z).\n?- g(1, 1/2, true).")

(* --- engine guards ----------------------------------------------------------- *)

let test_unknown_event_relation () =
  (* Event on a relation neither IDB nor EDB: simply never holds. *)
  Alcotest.check q_t "ghost event" Q.zero (exact_inflationary "f(a).\ng(X) :- f(X).\n?- ghost(a).")

let test_empty_program_with_facts () =
  let parsed = Parser.parse "f(a).\n?- f(a)." in
  let r = Eval.Engine.run ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact parsed in
  Alcotest.check q_t "no rules" Q.one (Option.get r.Eval.Engine.exact)

let test_interp_missing_relation () =
  let kernel = Prob.Interp.make [ ("R", Prob.Palgebra.Rel "ghost") ] in
  try
    ignore (Prob.Interp.apply kernel (Database.of_list [ ("R", rel [ "A" ] [ [ v_str "x" ] ]) ]));
    Alcotest.fail "missing relation accepted"
  with Not_found -> ()

(* --- fuzzing ------------------------------------------------------------------ *)

let acceptable_parse_outcome src =
  match Parser.parse src with
  | _ -> true
  | exception Parser.Parse_error _ -> true
  | exception Datalog.Datalog_error _ -> true
  | exception Prob.Ctable.Ctable_error _ -> true

let printable_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 80))

let prop_parser_total_on_garbage =
  QCheck.Test.make ~name:"parser never crashes on printable garbage" ~count:500
    (QCheck.make ~print:(fun s -> s) printable_gen)
    acceptable_parse_outcome

let datalogish_gen =
  (* Strings built from language tokens: higher chance of nearly-valid
     inputs that stress deeper parser states. *)
  QCheck.Gen.(
    map (String.concat " ")
      (list_size (int_range 1 25)
         (oneofl
            [ "f(a)."; "f(X)"; ":-"; "?-"; "?"; "!"; "<X>"; "@W"; ","; "."; "("; ")"; "var";
              "when"; "x"; "="; "{"; "}"; "1/2"; "0.5"; "X"; "f"; "!="; "<="; ">="; "q"
            ])))

let prop_parser_total_on_tokens =
  QCheck.Test.make ~name:"parser never crashes on token soup" ~count:500
    (QCheck.make ~print:(fun s -> s) datalogish_gen)
    acceptable_parse_outcome

let chain_text_gen =
  QCheck.Gen.(
    map (String.concat "\n")
      (list_size (int_range 0 8)
         (map (String.concat " ")
            (list_size (int_range 0 4) (oneofl [ "a"; "b"; "1"; "1/2"; "#x"; "->"; "" ])))))

let prop_chain_parser_total =
  QCheck.Test.make ~name:"chain parser never crashes" ~count:300
    (QCheck.make ~print:(fun s -> s) chain_text_gen)
    (fun src ->
      match Markov.Chain_io.parse src with
      | _ -> true
      | exception Markov.Chain_io.Parse_error _ -> true)

let prop_value_of_string_total =
  QCheck.Test.make ~name:"Value.of_string total on printable strings" ~count:500
    (QCheck.make ~print:(fun s -> s) printable_gen)
    (fun s ->
      match Value.of_string s with
      | _ -> true)

let () =
  Alcotest.run "corners"
    [ ( "zero-arity",
        [ Alcotest.test_case "event" `Quick test_zero_arity_event;
          Alcotest.test_case "chain" `Quick test_zero_arity_chain
        ] );
      ( "weights",
        [ Alcotest.test_case "weight as head var" `Quick test_weight_also_head_var;
          Alcotest.test_case "rational weights" `Quick test_rational_weights;
          Alcotest.test_case "duplicate head var" `Quick test_duplicate_head_var_probabilistic
        ] );
      ( "events",
        [ Alcotest.test_case "edb event" `Quick test_event_on_edb;
          Alcotest.test_case "arity mismatch" `Quick test_event_arity_mismatch_is_false;
          Alcotest.test_case "unknown relation" `Quick test_unknown_event_relation
        ] );
      ( "values",
        [ Alcotest.test_case "quoted strings" `Quick test_quoted_strings;
          Alcotest.test_case "mixed kinds" `Quick test_mixed_value_kinds
        ] );
      ( "guards",
        [ Alcotest.test_case "empty program" `Quick test_empty_program_with_facts;
          Alcotest.test_case "missing relation" `Quick test_interp_missing_relation
        ] );
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [ prop_parser_total_on_garbage; prop_parser_total_on_tokens; prop_chain_parser_total;
            prop_value_of_string_total
          ] )
    ]
