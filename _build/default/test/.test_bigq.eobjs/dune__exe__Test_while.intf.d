test/test_while.mli:
