test/test_workload.ml: Alcotest Bigq Coloring Eval Graphs Lang List Option Printf Random Relational Uncertain Workload
