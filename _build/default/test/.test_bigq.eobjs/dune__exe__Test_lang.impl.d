test/test_lang.ml: Alcotest Algebra Bigq Compile Database Datalog Eval Event Forever Format Inflationary Lang Linearity List Option Parser Prob Relation Relational String Tuple Value
