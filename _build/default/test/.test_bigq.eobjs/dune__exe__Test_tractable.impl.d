test/test_tractable.ml: Alcotest Array Bigq Compile Eval Forever Lang Markov Option Parser Printf Reductions Relational Tractable
