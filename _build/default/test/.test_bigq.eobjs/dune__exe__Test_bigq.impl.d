test/test_bigq.ml: Alcotest Bigint Bigq Float List Nat Printf Q QCheck QCheck_alcotest Stdlib
