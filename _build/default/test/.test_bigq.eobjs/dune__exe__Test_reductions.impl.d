test/test_reductions.ml: Alcotest Array Bigq Cnf Dpll Encode_inflationary Encode_noninflationary Eval Int Lang List Option QCheck QCheck_alcotest Random Reductions
