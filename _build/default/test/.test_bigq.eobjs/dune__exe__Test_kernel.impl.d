test/test_kernel.ml: Alcotest Bigq Compile Database Eval Event Forever Inflationary Kernel Lang List Option Parser Prob QCheck QCheck_alcotest Random Relation Relational Tuple Value Workload
