test/test_optimize.ml: Alcotest Algebra Bigq Database Dist Eval Interp Lang List Optimize Option Palgebra Pred Prob QCheck QCheck_alcotest Random Relation Relational Tuple Value Workload
