test/test_relational.ml: Alcotest Algebra Bigq Database Format List Pred QCheck QCheck_alcotest Relation Relational Tuple Value
