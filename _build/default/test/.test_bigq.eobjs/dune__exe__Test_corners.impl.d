test/test_corners.ml: Alcotest Bigq Char Compile Database Datalog Eval Forever Inflationary Lang List Markov Option Parser Prob QCheck QCheck_alcotest Relation Relational String Tuple Value
