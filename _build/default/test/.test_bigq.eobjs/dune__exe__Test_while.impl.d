test/test_while.ml: Alcotest Bigq Database Event Lang List Printf Prob Random Relation Relational Tuple Value While_lang
