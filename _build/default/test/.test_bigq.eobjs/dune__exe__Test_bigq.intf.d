test/test_bigq.mli:
