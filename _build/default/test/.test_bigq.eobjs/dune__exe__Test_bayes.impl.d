test/test_bayes.ml: Alcotest Bayes Bigq Bn Encode Eval Gen Infer Lang List Printf QCheck QCheck_alcotest Random String
