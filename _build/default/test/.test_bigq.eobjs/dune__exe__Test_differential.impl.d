test/test_differential.ml: Alcotest Bigq Eval Lang List Markov Prob QCheck QCheck_alcotest Random Relational Workload
