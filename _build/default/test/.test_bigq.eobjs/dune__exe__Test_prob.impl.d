test/test_prob.ml: Alcotest Array Bigq Bool Confidence Ctable Database Dist Int Interp List Palgebra Prob QCheck QCheck_alcotest Random Relation Relational Repair_key String Tuple Value
