The shipped chain files analyse correctly.

  $ probmc absorb gambler.mc --start p1
  closed component (states)            Pr[absorbed]
  p3                                   1/3
  p0                                   2/3

  $ probmc hitting gambler.mc --target p0
  state              E[steps to p0]
  p0                 0
  p1                 infinity
  p2                 infinity
  p3                 infinity

  $ probmc classify barbell.mc | grep -E 'ergodic|reversible|conductance'
  ergodic                : true
  reversible             : true
  conductance            : 1/8

  $ probmc stationary barbell.mc | head -3
  state              pi (exact)        ~float
  a0                 1/4              0.250000
  a1                 1/4              0.250000
