  $ probmc absorb gambler.mc --start p1
  $ probmc hitting gambler.mc --target p0
  $ probmc classify barbell.mc | grep -E 'ergodic|reversible|conductance'
  $ probmc stationary barbell.mc | head -3
