(* Tests for the arbitrary-precision arithmetic substrate.  Small values are
   checked against the native-int oracle; large values via algebraic laws
   (a = qb + r, gcd divides, ring axioms). *)

open Bigq

let nat_of_string_t = Alcotest.testable Nat.pp Nat.equal
let bigint_t = Alcotest.testable Bigint.pp Bigint.equal
let q_t = Alcotest.testable Q.pp Q.equal

(* --- Nat unit tests ------------------------------------------------- *)

let test_nat_roundtrip_int () =
  List.iter
    (fun n -> Alcotest.(check (option int)) "roundtrip" (Some n) (Nat.to_int_opt (Nat.of_int n)))
    [ 0; 1; 2; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; (1 lsl 30) + 1; 123456789; max_int / 4 ]

let test_nat_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Nat.to_string (Nat.of_string s)))
    [ "0"; "1"; "999999999"; "1000000000"; "123456789012345678901234567890" ]

let test_nat_add_carry () =
  let big = Nat.of_string "999999999999999999999999" in
  Alcotest.check nat_of_string_t "add"
    (Nat.of_string "1000000000000000000000000")
    (Nat.add big Nat.one)

let test_nat_sub_borrow () =
  let big = Nat.of_string "1000000000000000000000000" in
  Alcotest.check nat_of_string_t "sub"
    (Nat.of_string "999999999999999999999999")
    (Nat.sub big Nat.one)

let test_nat_sub_negative () =
  Alcotest.check_raises "sub negative" (Invalid_argument "Nat.sub: negative result") (fun () ->
      ignore (Nat.sub Nat.one (Nat.of_int 2)))

let test_nat_mul_known () =
  Alcotest.check nat_of_string_t "mul"
    (Nat.of_string "121932631137021795226185032733622923332237463801111263526900")
    (Nat.mul
       (Nat.of_string "123456789012345678901234567890")
       (Nat.of_string "987654321098765432109876543210"))

let test_nat_divmod_known () =
  let a = Nat.of_string "121932631137021795226185032733622923332237463801111263526900" in
  let b = Nat.of_string "987654321098765432109876543210" in
  let q, r = Nat.divmod a b in
  Alcotest.check nat_of_string_t "quotient" (Nat.of_string "123456789012345678901234567890") q;
  Alcotest.check nat_of_string_t "remainder" Nat.zero r

let test_nat_divmod_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Nat.divmod Nat.one Nat.zero))

let test_nat_pow () =
  Alcotest.check nat_of_string_t "2^100"
    (Nat.of_string "1267650600228229401496703205376")
    (Nat.pow (Nat.of_int 2) 100)

let test_nat_gcd () =
  Alcotest.check nat_of_string_t "gcd" (Nat.of_int 6) (Nat.gcd (Nat.of_int 48) (Nat.of_int 18));
  Alcotest.check nat_of_string_t "gcd with zero" (Nat.of_int 7) (Nat.gcd (Nat.of_int 7) Nat.zero)

let test_nat_shift () =
  let n = Nat.of_string "123456789012345678901234567890" in
  Alcotest.check nat_of_string_t "shift roundtrip" n (Nat.shift_right (Nat.shift_left n 137) 137);
  Alcotest.check nat_of_string_t "shl as mul" (Nat.mul n (Nat.pow (Nat.of_int 2) 61)) (Nat.shift_left n 61)

let test_nat_num_bits () =
  Alcotest.(check int) "bits 0" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "bits 1" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "bits 2^100" 101 (Nat.num_bits (Nat.pow (Nat.of_int 2) 100))

(* --- Nat property tests ---------------------------------------------- *)

let small_nat_gen = QCheck.Gen.map Nat.of_int (QCheck.Gen.int_bound 1_000_000)

let big_nat_gen =
  QCheck.Gen.(
    map
      (fun parts -> List.fold_left (fun acc p -> Nat.add (Nat.mul acc (Nat.of_int 1_000_000_000)) (Nat.of_int p)) Nat.zero parts)
      (list_size (int_range 1 8) (int_bound 999_999_999)))

let arb_small_nat = QCheck.make ~print:Nat.to_string small_nat_gen
let arb_big_nat = QCheck.make ~print:Nat.to_string big_nat_gen

let prop_nat_add_oracle =
  QCheck.Test.make ~name:"nat add matches int oracle" ~count:500
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (a, b) -> Nat.equal (Nat.add (Nat.of_int a) (Nat.of_int b)) (Nat.of_int (a + b)))

let prop_nat_mul_oracle =
  QCheck.Test.make ~name:"nat mul matches int oracle" ~count:500
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) -> Nat.equal (Nat.mul (Nat.of_int a) (Nat.of_int b)) (Nat.of_int (a * b)))

let prop_nat_divmod_oracle =
  QCheck.Test.make ~name:"nat divmod matches int oracle" ~count:500
    QCheck.(pair (int_bound 1_000_000_000) (int_range 1 1_000_000))
    (fun (a, b) ->
      let q, r = Nat.divmod (Nat.of_int a) (Nat.of_int b) in
      Nat.equal q (Nat.of_int (a / b)) && Nat.equal r (Nat.of_int (a mod b)))

let prop_nat_divmod_law =
  QCheck.Test.make ~name:"big divmod: a = q*b + r, r < b" ~count:300
    (QCheck.pair arb_big_nat arb_big_nat) (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let prop_nat_mul_comm =
  QCheck.Test.make ~name:"big mul commutative" ~count:200 (QCheck.pair arb_big_nat arb_big_nat)
    (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_nat_add_assoc =
  QCheck.Test.make ~name:"big add associative" ~count:200
    (QCheck.triple arb_big_nat arb_big_nat arb_big_nat) (fun (a, b, c) ->
      Nat.equal (Nat.add (Nat.add a b) c) (Nat.add a (Nat.add b c)))

let prop_nat_distrib =
  QCheck.Test.make ~name:"big mul distributes over add" ~count:200
    (QCheck.triple arb_big_nat arb_big_nat arb_big_nat) (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_nat_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both arguments" ~count:200
    (QCheck.pair arb_big_nat arb_big_nat) (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero a) || not (Nat.is_zero b));
      let g = Nat.gcd a b in
      let divides n = Nat.is_zero n || Nat.is_zero (snd (Nat.divmod n g)) in
      divides a && divides b)

let prop_nat_string_roundtrip =
  QCheck.Test.make ~name:"nat to_string/of_string roundtrip" ~count:200 arb_big_nat (fun n ->
      Nat.equal n (Nat.of_string (Nat.to_string n)))

let prop_nat_compare_total =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:200 (QCheck.pair arb_big_nat arb_big_nat)
    (fun (a, b) -> Nat.compare a b = -Nat.compare b a)

let prop_nat_sub_inverse =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:200 (QCheck.pair arb_big_nat arb_small_nat)
    (fun (a, b) -> Nat.equal a (Nat.sub (Nat.add a b) b))

(* Structured stress for Knuth division: limbs at the base boundary make
   the qhat-overestimate and add-back paths likelier. *)
let prop_nat_divmod_boundary_stress =
  let gen =
    QCheck.Gen.(
      let limb = oneofl [ 0; 1; 2; (1 lsl 30) - 1; (1 lsl 30) - 2; 1 lsl 29; 12345 ] in
      let nat_of_limbs limbs =
        List.fold_left
          (fun acc l -> Nat.add (Nat.shift_left acc 30) (Nat.of_int l))
          Nat.zero limbs
      in
      map2
        (fun a_limbs b_limbs -> (nat_of_limbs a_limbs, nat_of_limbs b_limbs))
        (list_size (int_range 1 7) limb)
        (list_size (int_range 2 4) limb))
  in
  QCheck.Test.make ~name:"divmod stress at limb boundaries" ~count:2000
    (QCheck.make ~print:(fun (a, b) -> Nat.to_string a ^ " / " ^ Nat.to_string b) gen)
    (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let prop_nat_mul_then_div_exact =
  QCheck.Test.make ~name:"(a*b)/b = a with zero remainder" ~count:500
    (QCheck.pair arb_big_nat arb_big_nat) (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod (Nat.mul a b) b in
      Nat.equal q a && Nat.is_zero r)

(* --- Bigint ----------------------------------------------------------- *)

let test_bigint_signs () =
  Alcotest.(check int) "sign -5" (-1) (Bigint.sign (Bigint.of_int (-5)));
  Alcotest.(check int) "sign 0" 0 (Bigint.sign Bigint.zero);
  Alcotest.check bigint_t "neg neg" (Bigint.of_int 5) (Bigint.neg (Bigint.of_int (-5)));
  Alcotest.check bigint_t "abs" (Bigint.of_int 5) (Bigint.abs (Bigint.of_int (-5)))

let test_bigint_string () =
  Alcotest.(check string) "-123" "-123" (Bigint.to_string (Bigint.of_string "-123"));
  Alcotest.check bigint_t "+7" (Bigint.of_int 7) (Bigint.of_string "+7")

let test_bigint_divmod_signs () =
  (* Truncated division must match OCaml's native semantics. *)
  List.iter
    (fun (a, b) ->
      let q, r = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
      Alcotest.check bigint_t (Printf.sprintf "q %d/%d" a b) (Bigint.of_int (a / b)) q;
      Alcotest.check bigint_t (Printf.sprintf "r %d/%d" a b) (Bigint.of_int (a mod b)) r)
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3) ]

let arb_int_pair = QCheck.(pair (int_range (-1_000_000) 1_000_000) (int_range (-1_000_000) 1_000_000))

let prop_bigint_ring =
  QCheck.Test.make ~name:"bigint add/mul/sub match int oracle" ~count:500 arb_int_pair
    (fun (a, b) ->
      let ba = Bigint.of_int a and bb = Bigint.of_int b in
      Bigint.equal (Bigint.add ba bb) (Bigint.of_int (a + b))
      && Bigint.equal (Bigint.sub ba bb) (Bigint.of_int (a - b))
      && Bigint.equal (Bigint.mul ba bb) (Bigint.of_int (a * b)))

let prop_bigint_compare =
  QCheck.Test.make ~name:"bigint compare matches int oracle" ~count:500 arb_int_pair
    (fun (a, b) -> Bigint.compare (Bigint.of_int a) (Bigint.of_int b) = Stdlib.compare a b)

let prop_bigint_divmod =
  QCheck.Test.make ~name:"bigint divmod matches int oracle" ~count:500 arb_int_pair
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
      Bigint.equal q (Bigint.of_int (a / b)) && Bigint.equal r (Bigint.of_int (a mod b)))

(* --- Q ---------------------------------------------------------------- *)

let test_q_normalisation () =
  Alcotest.check q_t "6/8 = 3/4" (Q.of_ints 3 4) (Q.of_ints 6 8);
  Alcotest.check q_t "neg den" (Q.of_ints (-1) 2) (Q.of_ints 1 (-2));
  Alcotest.(check string) "0/5 prints 0" "0" (Q.to_string (Q.of_ints 0 5))

let test_q_arith () =
  Alcotest.check q_t "1/2 + 1/3" (Q.of_ints 5 6) (Q.add Q.half (Q.of_ints 1 3));
  Alcotest.check q_t "1/2 * 2/3" (Q.of_ints 1 3) (Q.mul Q.half (Q.of_ints 2 3));
  Alcotest.check q_t "(1/2) / (3/4)" (Q.of_ints 2 3) (Q.div Q.half (Q.of_ints 3 4));
  Alcotest.check q_t "1/2 - 1/2" Q.zero (Q.sub Q.half Q.half)

let test_q_pow () =
  Alcotest.check q_t "(1/2)^10" (Q.of_ints 1 1024) (Q.pow Q.half 10);
  Alcotest.check q_t "(1/2)^-2" (Q.of_int 4) (Q.pow Q.half (-2))

let test_q_of_string () =
  Alcotest.check q_t "3/4" (Q.of_ints 3 4) (Q.of_string "3/4");
  Alcotest.check q_t "0.25" (Q.of_ints 1 4) (Q.of_string "0.25");
  Alcotest.check q_t "-1.5" (Q.of_ints (-3) 2) (Q.of_string "-1.5");
  Alcotest.check q_t "17" (Q.of_int 17) (Q.of_string "17");
  Alcotest.check q_t ".5" Q.half (Q.of_string ".5")

let test_q_to_float () =
  Alcotest.(check (float 1e-12)) "3/4" 0.75 (Q.to_float (Q.of_ints 3 4));
  let tiny = Q.pow Q.half 2000 in
  Alcotest.(check bool) "huge-denominator to_float finite or zero"
    true
    (Float.is_finite (Q.to_float tiny))

let test_q_sum () =
  let thirds = List.init 3 (fun _ -> Q.of_ints 1 3) in
  Alcotest.check q_t "3 * 1/3 = 1" Q.one (Q.sum thirds)

let arb_q =
  let gen =
    QCheck.Gen.(
      map2 (fun n d -> Q.of_ints n d) (int_range (-10_000) 10_000) (int_range 1 10_000))
  in
  QCheck.make ~print:Q.to_string gen

let prop_q_pow_laws =
  QCheck.Test.make ~name:"q pow: q^a * q^b = q^(a+b)" ~count:200
    (QCheck.triple arb_q QCheck.(int_range 0 8) QCheck.(int_range 0 8)) (fun (q, a, b) ->
      QCheck.assume (not (Q.is_zero q));
      Q.equal (Q.mul (Q.pow q a) (Q.pow q b)) (Q.pow q (a + b)))

let prop_q_field_laws =
  QCheck.Test.make ~name:"q field laws: a+b-b=a, a*b/b=a" ~count:300 (QCheck.pair arb_q arb_q)
    (fun (a, b) ->
      Q.equal a (Q.sub (Q.add a b) b)
      && (Q.is_zero b || Q.equal a (Q.div (Q.mul a b) b)))

let prop_q_compare_consistent =
  QCheck.Test.make ~name:"q compare consistent with subtraction sign" ~count:300
    (QCheck.pair arb_q arb_q) (fun (a, b) -> Q.compare a b = Q.sign (Q.sub a b))

let prop_q_to_float_order =
  QCheck.Test.make ~name:"q to_float is monotone on distinct values" ~count:300
    (QCheck.pair arb_q arb_q) (fun (a, b) ->
      QCheck.assume (Q.compare a b < 0);
      Q.to_float a <= Q.to_float b)

let prop_q_string_roundtrip =
  QCheck.Test.make ~name:"q to_string/of_string roundtrip" ~count:300 arb_q (fun q ->
      Q.equal q (Q.of_string (Q.to_string q)))

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "bigq"
    [ ( "nat-unit",
        [ Alcotest.test_case "roundtrip int" `Quick test_nat_roundtrip_int;
          Alcotest.test_case "string roundtrip" `Quick test_nat_string_roundtrip;
          Alcotest.test_case "add carry" `Quick test_nat_add_carry;
          Alcotest.test_case "sub borrow" `Quick test_nat_sub_borrow;
          Alcotest.test_case "sub negative raises" `Quick test_nat_sub_negative;
          Alcotest.test_case "mul known" `Quick test_nat_mul_known;
          Alcotest.test_case "divmod known" `Quick test_nat_divmod_known;
          Alcotest.test_case "divmod zero raises" `Quick test_nat_divmod_zero;
          Alcotest.test_case "pow" `Quick test_nat_pow;
          Alcotest.test_case "gcd" `Quick test_nat_gcd;
          Alcotest.test_case "shift" `Quick test_nat_shift;
          Alcotest.test_case "num_bits" `Quick test_nat_num_bits
        ] );
      qsuite "nat-prop"
        [ prop_nat_add_oracle; prop_nat_mul_oracle; prop_nat_divmod_oracle; prop_nat_divmod_law;
          prop_nat_mul_comm; prop_nat_add_assoc; prop_nat_distrib; prop_nat_gcd_divides;
          prop_nat_string_roundtrip; prop_nat_compare_total; prop_nat_sub_inverse;
          prop_nat_divmod_boundary_stress; prop_nat_mul_then_div_exact
        ];
      ( "bigint-unit",
        [ Alcotest.test_case "signs" `Quick test_bigint_signs;
          Alcotest.test_case "strings" `Quick test_bigint_string;
          Alcotest.test_case "divmod signs" `Quick test_bigint_divmod_signs
        ] );
      qsuite "bigint-prop" [ prop_bigint_ring; prop_bigint_compare; prop_bigint_divmod ];
      ( "q-unit",
        [ Alcotest.test_case "normalisation" `Quick test_q_normalisation;
          Alcotest.test_case "arithmetic" `Quick test_q_arith;
          Alcotest.test_case "pow" `Quick test_q_pow;
          Alcotest.test_case "of_string" `Quick test_q_of_string;
          Alcotest.test_case "to_float" `Quick test_q_to_float;
          Alcotest.test_case "sum" `Quick test_q_sum
        ] );
      qsuite "q-prop"
        [ prop_q_field_laws; prop_q_compare_consistent; prop_q_to_float_order;
          prop_q_string_roundtrip; prop_q_pow_laws
        ]
    ]
