(* Tests for transition-kernel combinators and the generic engines. *)

open Relational
open Lang
module Q = Bigq.Q
module P = Prob.Palgebra
module Dist = Prob.Dist

let v_str s = Value.Str s
let rel cols rows = Relation.make cols (List.map Tuple.of_list rows)
let q_t = Alcotest.testable Q.pp Q.equal

(* Walker on a directed lazy 2-cycle. *)
let step_interp =
  Prob.Interp.make
    [ ( "C",
        P.Rename
          ([ ("J", "I") ],
           P.Project ([ "J" ], P.repair_key_all ~weight:"P" (P.Join (P.Rel "C", P.Rel "E")))) );
      Prob.Interp.unchanged "E"
    ]

let init =
  Database.of_list
    [ ("C", rel [ "I" ] [ [ v_str "a" ] ]);
      ( "E",
        rel [ "I"; "J"; "P" ]
          [ [ v_str "a"; v_str "b"; Value.Int 1 ];
            [ v_str "a"; v_str "a"; Value.Int 1 ];
            [ v_str "b"; v_str "a"; Value.Int 1 ];
            [ v_str "b"; v_str "b"; Value.Int 1 ]
          ] )
    ]

let at n db = Event.holds (Event.make "C" [ v_str n ]) db
let k = Kernel.of_interp step_interp

let test_of_interp_matches_interp () =
  let d1 = Kernel.apply k init in
  let d2 = Prob.Interp.apply step_interp init in
  Alcotest.(check int) "same support" (Dist.size d2) (Dist.size d1);
  Alcotest.check q_t "same prob" (Dist.prob (at "b") d2) (Dist.prob (at "b") d1)

let test_seq_is_two_steps () =
  let two = Kernel.seq k k in
  (* After two lazy steps from a: P(b) = 1/2 (symmetric chain mixes in one
     step: P(b after 1) = 1/2, stays 1/2). *)
  Alcotest.check q_t "P(b) after 2 steps" Q.half (Dist.prob (at "b") (Kernel.apply two init));
  (* iterate 2 = seq k k. *)
  Alcotest.check q_t "iterate agrees" (Dist.prob (at "b") (Kernel.apply two init))
    (Dist.prob (at "b") (Kernel.apply (Kernel.iterate 2 k) init))

let test_mixture_weights () =
  (* Mix the walk with the identity kernel: P(move) scales by the weight. *)
  let identity =
    Kernel.of_fn ~apply:(fun db -> Dist.return db) ~sample:(fun _ db -> db)
  in
  let m = Kernel.mixture [ (Q.of_ints 1 4, k); (Q.of_ints 3 4, identity) ] in
  (* From a: move to b only via the walk branch (prob 1/4 * 1/2). *)
  Alcotest.check q_t "P(b) = 1/8" (Q.of_ints 1 8) (Dist.prob (at "b") (Kernel.apply m init))

let test_mixture_validation () =
  (try
     ignore (Kernel.mixture []);
     Alcotest.fail "empty mixture accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Kernel.mixture [ (Q.half, k) ]);
    Alcotest.fail "non-normalised mixture accepted"
  with Invalid_argument _ -> ()

let test_eval_kernel_stationary () =
  (* The mixture is a lazy version of the same walk: same uniform
     stationary distribution. *)
  let identity = Kernel.of_fn ~apply:(fun db -> Dist.return db) ~sample:(fun _ db -> db) in
  let m = Kernel.mixture [ (Q.half, k); (Q.half, identity) ] in
  let event = Event.make "C" [ v_str "b" ] in
  Alcotest.check q_t "direct kernel" Q.half
    (Eval.Exact_noninflationary.eval_kernel ~kernel:k ~event init);
  Alcotest.check q_t "lazy mixture same stationary" Q.half
    (Eval.Exact_noninflationary.eval_kernel ~kernel:m ~event init)

let test_sample_kernel () =
  let event = Event.make "C" [ v_str "b" ] in
  let rng = Random.State.make [| 3 |] in
  let p = Eval.Sample_noninflationary.eval_kernel rng ~burn_in:20 ~samples:2000 ~kernel:k ~event init in
  Alcotest.(check bool) "sampled near 1/2" true (abs_float (p -. 0.5) < 0.05)

let test_mixture_mcmc_coloring () =
  (* MCMC idiom: mix Glauber steps with a no-op "rest" move; the stationary
     distribution (uniform over proper colourings) is unchanged. *)
  let kernel, db =
    Workload.Coloring.glauber
      ~edges:[ (0, 1); (1, 2) ]
      ~num_nodes:3 ~colors:[ "c1"; "c2"; "c3" ]
      ~initial:[ (0, "c1"); (1, "c2"); (2, "c1") ]
  in
  let glauber = Kernel.of_interp kernel in
  let identity = Kernel.of_fn ~apply:(fun db -> Dist.return db) ~sample:(fun _ db -> db) in
  let mixed = Kernel.mixture [ (Q.of_ints 2 3, glauber); (Q.of_ints 1 3, identity) ] in
  let event = Workload.Coloring.color_event ~node:1 ~color:"c2" in
  Alcotest.check q_t "mixture keeps uniform stationary" (Q.of_ints 1 3)
    (Eval.Exact_noninflationary.eval_kernel ~kernel:mixed ~event db)

(* --- PSPACE ablation ------------------------------------------------------ *)

let test_pspace_agrees_with_memoised () =
  let parsed =
    Parser.parse "C(v) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\n?- C(w)."
  in
  let db =
    Database.of_list
      [ ("e", rel [ "x1"; "x2" ]
           [ [ v_str "v"; v_str "w" ]; [ v_str "v"; v_str "u" ]; [ v_str "w"; v_str "t" ] ])
      ]
  in
  let kernel, init = Compile.inflationary_kernel parsed.Parser.program db in
  let q =
    Inflationary.of_forever_unchecked (Forever.make ~kernel ~event:(Option.get parsed.Parser.event))
  in
  Alcotest.check q_t "pspace = memoised" (Eval.Exact_inflationary.eval q init)
    (Eval.Exact_inflationary.eval_pspace q init)

let prop_pspace_agrees_random =
  QCheck.Test.make ~name:"Prop 4.4 traversal = memoised engine on random programs" ~count:20
    (QCheck.make ~print:(fun seed ->
         (Workload.Progen.random_case (Random.State.make [| seed |])).Workload.Progen.source)
       QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let case = Workload.Progen.random_case (Random.State.make [| seed |]) in
      let kernel, init =
        Compile.inflationary_kernel case.Workload.Progen.program case.Workload.Progen.database
      in
      let q =
        Inflationary.of_forever_unchecked
          (Forever.make ~kernel ~event:case.Workload.Progen.event)
      in
      Q.equal (Eval.Exact_inflationary.eval q init) (Eval.Exact_inflationary.eval_pspace q init))

let () =
  Alcotest.run "kernel"
    [ ( "combinators",
        [ Alcotest.test_case "of_interp" `Quick test_of_interp_matches_interp;
          Alcotest.test_case "seq / iterate" `Quick test_seq_is_two_steps;
          Alcotest.test_case "mixture weights" `Quick test_mixture_weights;
          Alcotest.test_case "mixture validation" `Quick test_mixture_validation;
          Alcotest.test_case "exact stationary" `Quick test_eval_kernel_stationary;
          Alcotest.test_case "sampled stationary" `Slow test_sample_kernel;
          Alcotest.test_case "MCMC mixture" `Slow test_mixture_mcmc_coloring
        ] );
      ( "pspace",
        [ Alcotest.test_case "agrees with memoised" `Quick test_pspace_agrees_with_memoised;
          QCheck_alcotest.to_alcotest prop_pspace_agrees_random
        ] )
    ]
