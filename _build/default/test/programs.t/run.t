Golden answers for every shipped example program.

  $ probdl run reachability.pdl | grep "^exact"
  exact     : 1/2

  $ probdl run uncertain_reach.pdl | grep "^exact"
  exact     : 1/8

  $ probdl run coin_flip.pdl | grep "^exact"
  exact     : 1/3

  $ probdl run coin_flip.pdl -s noninflationary | grep "^exact"
  exact     : 1/3

  $ probdl run sat_thm41.pdl | grep "^exact"
  exact     : 1/2

  $ probdl run bayes_rain.pdl | grep "^exact"
  exact     : 9/50

  $ probdl run guards.pdl | grep "^exact"
  exact     : 1/2

Optimised evaluation gives identical exact answers.

  $ probdl run reachability.pdl -O | grep "^exact"
  exact     : 1/2

  $ probdl run bayes_rain.pdl -O | grep "^exact"
  exact     : 9/50

Sampling methods stay within their absolute-error guarantee.

  $ probdl run reachability.pdl -m sample --eps 0.05 --seed 7 | grep method
  method    : sampling (eps=0.05 delta=0.05 burn-in=200)

The lumped exact method agrees on non-inflationary queries.

  $ probdl run coin_flip.pdl -s noninflationary -m lumped | grep "^exact"
  exact     : 1/3

Multiple events are answered over one chain construction.

  $ probdl run walk_distribution.pdl -s noninflationary
  event                          exact                ~float
  (n0) ∈ C                     1/3                  0.333333
  (n1) ∈ C                     2/9                  0.222222
  (n2) ∈ C                     4/9                  0.444444

Negation-based frontier reachability (Example 3.5 in pure datalog).

  $ probdl run frontier.pdl | grep "^exact"
  exact     : 1/2

  $ probdl check frontier.pdl | grep feed
  feed-forward: no (recursive dependencies)
