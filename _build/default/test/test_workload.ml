(* Tests for the workload generators, including their closed-form answers. *)

open Workload
module Q = Bigq.Q

let q_t = Alcotest.testable Q.pp Q.equal

let test_graph_shapes () =
  Alcotest.(check int) "cycle edges" 8 (List.length (Graphs.cycle 4));
  Alcotest.(check int) "complete edges" 16 (List.length (Graphs.complete 4));
  Alcotest.(check int) "line edges" 4 (List.length (Graphs.line 4));
  (* barbell: two k^2 cliques + 2 bridge edges. *)
  Alcotest.(check int) "barbell edges" ((2 * 9) + 2) (List.length (Graphs.barbell 3))

let test_random_graph () =
  let rng = Random.State.make [| 1 |] in
  let edges = Graphs.random rng ~nodes:5 ~out_degree:2 ~max_weight:4 in
  Alcotest.(check int) "5*2 edges" 10 (List.length edges);
  List.iter
    (fun (e : Graphs.edge) ->
      Alcotest.(check bool) "weight in range" true (e.Graphs.weight >= 1 && e.Graphs.weight <= 4))
    edges

let test_walk_database () =
  let db = Graphs.walk_database (Graphs.cycle 3) ~start:0 in
  Alcotest.(check bool) "C present" true (Relational.Database.mem "C" db);
  Alcotest.(check int) "edges" 6 (Relational.Relation.cardinal (Relational.Database.find "e" db))

let test_walk_source_parses () =
  let parsed = Lang.Parser.parse (Graphs.walk_source ~target:2) in
  Alcotest.(check int) "one rule" 1 (List.length parsed.Lang.Parser.program);
  Alcotest.(check bool) "has event" true (Option.is_some parsed.Lang.Parser.event)

let test_cycle_walk_uniform_stationary () =
  (* Lazy cycle: stationary uniform, so Pr[C(target)] = 1/k. *)
  let k = 4 in
  let parsed = Lang.Parser.parse (Graphs.walk_source ~target:1) in
  let db = Graphs.walk_database (Graphs.cycle k) ~start:0 in
  let kernel, init = Lang.Compile.noninflationary_kernel parsed.Lang.Parser.program db in
  let q = Lang.Forever.make ~kernel ~event:(Option.get parsed.Lang.Parser.event) in
  Alcotest.check q_t "1/k" (Q.of_ints 1 k) (Eval.Exact_noninflationary.eval q init)

let test_reach_source_line_certain () =
  let parsed = Lang.Parser.parse (Graphs.reach_source ~start:0 ~target:3) in
  let db =
    Relational.Database.of_list [ ("e", Graphs.to_relation (Graphs.line 4)) ]
  in
  let kernel, init = Lang.Compile.inflationary_kernel parsed.Lang.Parser.program db in
  let q =
    Lang.Inflationary.of_forever
      (Lang.Forever.make ~kernel ~event:(Option.get parsed.Lang.Parser.event))
  in
  Alcotest.check q_t "line reach certain" Q.one (Eval.Exact_inflationary.eval q init)

let test_uncertain_line_closed_form () =
  List.iter
    (fun n ->
      let ct, program, event = Uncertain.uncertain_line ~n in
      let p = Eval.Exact_inflationary.eval_ctable ~program ~event ct in
      Alcotest.check q_t (Printf.sprintf "1/2^%d" n) (Uncertain.expected_line ~n) p)
    [ 1; 2; 3; 4 ]

let test_uncertain_parallel_closed_form () =
  List.iter
    (fun n ->
      let ct, program, event = Uncertain.uncertain_parallel ~n in
      let p = Eval.Exact_inflationary.eval_ctable ~program ~event ct in
      Alcotest.check q_t (Printf.sprintf "1-(3/4)^%d" n) (Uncertain.expected_parallel ~n) p)
    [ 1; 2; 3 ]

let test_barbell_mixes_slower_than_complete () =
  (* Build the walk chains and compare mixing times: the barbell should be
     markedly slower at equal state count. *)
  let mixing edges start =
    let parsed = Lang.Parser.parse (Graphs.walk_source ~target:0) in
    let db = Graphs.walk_database edges ~start in
    let kernel, init = Lang.Compile.noninflationary_kernel parsed.Lang.Parser.program db in
    let q = Lang.Forever.make ~kernel ~event:(Option.get parsed.Lang.Parser.event) in
    match Eval.Sample_noninflationary.estimate_burn_in ~eps:0.05 q init with
    | Some t -> t
    | None -> Alcotest.fail "chain should mix"
  in
  let fast = mixing (Graphs.complete 6) 0 in
  let slow = mixing (Graphs.barbell 3) 0 in
  Alcotest.(check bool)
    (Printf.sprintf "barbell (%d) slower than complete (%d)" slow fast)
    true (slow > fast)

(* --- Glauber colouring kernel ------------------------------------------- *)

let triangle = [ (0, 1); (1, 2); (0, 2) ]
let four = [ "c1"; "c2"; "c3"; "c4" ]

let test_coloring_counts () =
  Alcotest.(check int) "K3 with 4 colours" 24
    (Coloring.proper_colorings ~edges:triangle ~num_nodes:3 ~colors:four);
  Alcotest.(check int) "P3 with 3 colours" 12
    (Coloring.proper_colorings ~edges:[ (0, 1); (1, 2) ] ~num_nodes:3 ~colors:[ "a"; "b"; "c" ]);
  Alcotest.(check int) "K3 needs 3 colours" 0
    (Coloring.proper_colorings ~edges:triangle ~num_nodes:3 ~colors:[ "a"; "b" ])

let test_coloring_improper_initial () =
  try
    ignore
      (Coloring.glauber ~edges:triangle ~num_nodes:3 ~colors:four
         ~initial:[ (0, "c1"); (1, "c1"); (2, "c2") ]);
    Alcotest.fail "improper initial accepted"
  with Invalid_argument _ -> ()

let test_glauber_uniform_triangle () =
  let kernel, db =
    Coloring.glauber ~edges:triangle ~num_nodes:3 ~colors:four
      ~initial:[ (0, "c1"); (1, "c2"); (2, "c3") ]
  in
  let event = Coloring.color_event ~node:0 ~color:"c1" in
  let a = Eval.Exact_noninflationary.analyse (Lang.Forever.make ~kernel ~event) db in
  Alcotest.(check bool) "ergodic" true a.Eval.Exact_noninflationary.ergodic;
  Alcotest.check q_t "uniform over colourings: 6/24" (Q.of_ints 1 4)
    a.Eval.Exact_noninflationary.result

let test_glauber_uniform_path () =
  let edges = [ (0, 1); (1, 2) ] in
  let colors = [ "c1"; "c2"; "c3" ] in
  let kernel, db =
    Coloring.glauber ~edges ~num_nodes:3 ~colors ~initial:[ (0, "c1"); (1, "c2"); (2, "c1") ]
  in
  let event = Coloring.color_event ~node:1 ~color:"c2" in
  let p = Eval.Exact_noninflationary.eval (Lang.Forever.make ~kernel ~event) db in
  Alcotest.check q_t "mid = c2 with 4/12" (Q.of_ints 1 3) p

let test_glauber_marginals_sum () =
  (* The chosen node's colour marginals over all colours sum to 1. *)
  let kernel, db =
    Coloring.glauber ~edges:triangle ~num_nodes:3 ~colors:four
      ~initial:[ (0, "c1"); (1, "c2"); (2, "c3") ]
  in
  let total =
    Q.sum
      (List.map
         (fun c ->
           let event = Coloring.color_event ~node:2 ~color:c in
           Eval.Exact_noninflationary.eval (Lang.Forever.make ~kernel ~event) db)
         four)
  in
  Alcotest.check q_t "marginals sum to 1" Q.one total

let () =
  Alcotest.run "workload"
    [ ( "graphs",
        [ Alcotest.test_case "shapes" `Quick test_graph_shapes;
          Alcotest.test_case "random" `Quick test_random_graph;
          Alcotest.test_case "walk database" `Quick test_walk_database;
          Alcotest.test_case "walk source parses" `Quick test_walk_source_parses;
          Alcotest.test_case "cycle stationary" `Quick test_cycle_walk_uniform_stationary;
          Alcotest.test_case "line reach" `Quick test_reach_source_line_certain
        ] );
      ( "uncertain",
        [ Alcotest.test_case "line closed form" `Quick test_uncertain_line_closed_form;
          Alcotest.test_case "parallel closed form" `Quick test_uncertain_parallel_closed_form
        ] );
      ("mixing", [ Alcotest.test_case "barbell vs complete" `Slow test_barbell_mixes_slower_than_complete ]);
      ( "coloring",
        [ Alcotest.test_case "counts" `Quick test_coloring_counts;
          Alcotest.test_case "improper initial" `Quick test_coloring_improper_initial;
          Alcotest.test_case "uniform on triangle" `Slow test_glauber_uniform_triangle;
          Alcotest.test_case "uniform on path" `Quick test_glauber_uniform_path;
          Alcotest.test_case "marginals sum to 1" `Slow test_glauber_marginals_sum
        ] )
    ]
