  $ probdl run reach.pdl | head -4
  $ probdl check reach.pdl
  $ probdl run coin.pdl | head -4
  $ probdl run coin.pdl -s noninflationary | head -4
  $ probdl worlds coin.pdl | head -3
  $ probdl hitting coin.pdl
  $ probmc stationary walk.mc
  $ probmc mixing walk.mc --eps 0.05
  $ probmc hitting walk.mc --target s0
  $ probmc classify walk.mc | head -5
  $ printf 'e(a, b).\ne(a, c).\nC(a) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\n?- C(b).\n:quit\n' | probdl repl | grep -o '1/2 (~0.500000)'
  $ printf 'f(X) :- .\ne(a).\n?- e(a).\n:quit\n' | probdl repl | grep -oE 'error: head variable|1 \(~1\.000000\)'
