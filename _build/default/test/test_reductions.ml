(* Tests for CNF, DPLL, and the Theorem 4.1 / 5.1 reductions. *)

open Reductions
module Q = Bigq.Q

let q_t = Alcotest.testable Q.pp Q.equal

(* (x1 ∨ x2) ∧ (¬x1 ∨ x2): satisfied iff x2; 2 models of 4. *)
let simple = Cnf.make ~num_vars:2 [ [ Cnf.pos 1; Cnf.pos 2 ]; [ Cnf.neg 1; Cnf.pos 2 ] ]

(* x1 ∧ ¬x1: unsatisfiable. *)
let contradiction = Cnf.make ~num_vars:1 [ [ Cnf.pos 1 ]; [ Cnf.neg 1 ] ]

(* --- Cnf ---------------------------------------------------------------- *)

let test_cnf_eval () =
  let a = [| false; false; true |] in
  (* x1=false, x2=true *)
  Alcotest.(check bool) "satisfied" true (Cnf.eval a simple);
  let a' = [| false; true; false |] in
  Alcotest.(check bool) "falsified" false (Cnf.eval a' simple)

let test_cnf_validation () =
  (try
     ignore (Cnf.make ~num_vars:1 [ [] ]);
     Alcotest.fail "empty clause accepted"
   with Cnf.Cnf_error _ -> ());
  try
    ignore (Cnf.make ~num_vars:1 [ [ Cnf.pos 2 ] ]);
    Alcotest.fail "out of range accepted"
  with Cnf.Cnf_error _ -> ()

let test_cnf_random3_shape () =
  let rng = Random.State.make [| 0 |] in
  let f = Cnf.random3 rng ~num_vars:6 ~num_clauses:10 in
  Alcotest.(check int) "10 clauses" 10 (List.length f.Cnf.clauses);
  List.iter
    (fun c ->
      Alcotest.(check int) "3 literals" 3 (List.length c);
      let vars = List.map (fun (l : Cnf.literal) -> l.Cnf.var) c in
      Alcotest.(check int) "distinct vars" 3 (List.length (List.sort_uniq Int.compare vars)))
    f.Cnf.clauses

let test_unsat_core () =
  Alcotest.(check bool) "unsat 3" false (Dpll.is_satisfiable (Cnf.unsatisfiable_core 3));
  Alcotest.(check bool) "unsat 1" false (Dpll.is_satisfiable (Cnf.unsatisfiable_core 1));
  Alcotest.(check bool) "unsat 5 vars padded" false (Dpll.is_satisfiable (Cnf.unsatisfiable_core 5))

(* --- Dpll ---------------------------------------------------------------- *)

let test_dpll_solve () =
  (match Dpll.solve simple with
   | Some model -> Alcotest.(check bool) "model satisfies" true (Cnf.eval model simple)
   | None -> Alcotest.fail "simple is satisfiable");
  Alcotest.(check bool) "contradiction unsat" true (Option.is_none (Dpll.solve contradiction))

let test_dpll_count () =
  Alcotest.(check int) "2 models" 2 (Dpll.count_models simple);
  Alcotest.(check int) "0 models" 0 (Dpll.count_models contradiction);
  (* A tautology-free formula with no clauses has all 2^n models. *)
  Alcotest.(check int) "free vars" 8 (Dpll.count_models (Cnf.make ~num_vars:3 []))

let brute_force_count f =
  let n = f.Cnf.num_vars in
  let count = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let a = Array.make (n + 1) false in
    for v = 1 to n do
      a.(v) <- mask land (1 lsl (v - 1)) <> 0
    done;
    if Cnf.eval a f then incr count
  done;
  !count

let prop_dpll_matches_brute_force =
  QCheck.Test.make ~name:"dpll count = brute force on random 3-CNF" ~count:50
    (QCheck.make ~print:(fun seed -> string_of_int seed) QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Cnf.random3 rng ~num_vars:5 ~num_clauses:6 in
      Dpll.count_models f = brute_force_count f
      && Dpll.is_satisfiable f = (brute_force_count f > 0))

(* --- Theorem 4.1 encoding ---------------------------------------------- *)

let eval_ctable_encoding f =
  let ct, program, event = Encode_inflationary.encode_ctable f in
  Eval.Exact_inflationary.eval_ctable ~program ~event ct

let eval_repair_key_encoding f =
  let db, program, event = Encode_inflationary.encode_repair_key f in
  let kernel, init = Lang.Compile.inflationary_kernel program db in
  let q = Lang.Inflationary.of_forever (Lang.Forever.make ~kernel ~event) in
  Eval.Exact_inflationary.eval q init

let test_encoding_ctable_simple () =
  (* 2 models / 4 assignments = 1/2. *)
  Alcotest.check q_t "1/2" Q.half (eval_ctable_encoding simple);
  Alcotest.check q_t "expected agrees" (Encode_inflationary.expected_probability simple)
    (eval_ctable_encoding simple)

let test_encoding_ctable_unsat () =
  Alcotest.check q_t "0 for unsat" Q.zero (eval_ctable_encoding contradiction)

let test_encoding_repair_key_simple () =
  Alcotest.check q_t "1/2 via repair-key" Q.half (eval_repair_key_encoding simple)

let test_encoding_repair_key_unsat () =
  Alcotest.check q_t "0 via repair-key" Q.zero (eval_repair_key_encoding contradiction)

let test_encoding_linear () =
  let _, program, _ = Encode_inflationary.encode_ctable simple in
  Alcotest.(check bool) "linear program (Thm 4.1 condition 1)" true (Lang.Linearity.is_linear program)

let prop_encoding_matches_sharp_sat =
  QCheck.Test.make ~name:"Lemma 4.2: query prob = #SAT/2^n" ~count:12
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Cnf.random3 rng ~num_vars:4 ~num_clauses:3 in
      Q.equal (eval_ctable_encoding f) (Encode_inflationary.expected_probability f))

(* --- Theorem 5.1 encoding ---------------------------------------------- *)

let noninf_query f =
  let db, program, event = Encode_noninflationary.encode f in
  let kernel, init = Lang.Compile.noninflationary_kernel program db in
  (Lang.Forever.make ~kernel ~event, init)

let test_noninf_sat_reaches_done () =
  (* Satisfiable: sampling the walk must hit Done quickly and latch. *)
  let q, init = noninf_query simple in
  let rng = Random.State.make [| 7 |] in
  let p = Eval.Sample_noninflationary.eval rng ~burn_in:40 ~samples:200 q init in
  Alcotest.(check bool) "p near 1" true (p > 0.95)

let test_noninf_unsat_never_done () =
  let q, init = noninf_query contradiction in
  let rng = Random.State.make [| 8 |] in
  let p = Eval.Sample_noninflationary.eval rng ~burn_in:40 ~samples:200 q init in
  Alcotest.(check (float 0.0)) "exactly 0" 0.0 p

let test_noninf_done_latches () =
  let q, init = noninf_query simple in
  let rng = Random.State.make [| 9 |] in
  (* Walk until Done first holds, then verify it persists. *)
  let rec walk db steps =
    if Lang.Event.holds q.Lang.Forever.event db then db
    else if steps > 500 then Alcotest.fail "Done never reached on satisfiable input"
    else walk (Lang.Forever.step_sampled rng q db) (steps + 1)
  in
  let db = walk init 0 in
  let rec persist db k =
    if k = 0 then ()
    else begin
      let db' = Lang.Forever.step_sampled rng q db in
      Alcotest.(check bool) "Done persists" true (Lang.Event.holds q.Lang.Forever.event db');
      persist db' (k - 1)
    end
  in
  persist db 20

let test_noninf_expected () =
  Alcotest.check q_t "sat -> 1" Q.one (Encode_noninflationary.expected_probability simple);
  Alcotest.check q_t "unsat -> 0" Q.zero (Encode_noninflationary.expected_probability contradiction)

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "reductions"
    [ ( "cnf",
        [ Alcotest.test_case "eval" `Quick test_cnf_eval;
          Alcotest.test_case "validation" `Quick test_cnf_validation;
          Alcotest.test_case "random3 shape" `Quick test_cnf_random3_shape;
          Alcotest.test_case "unsat core" `Quick test_unsat_core
        ] );
      ( "dpll",
        [ Alcotest.test_case "solve" `Quick test_dpll_solve;
          Alcotest.test_case "count" `Quick test_dpll_count
        ] );
      ("dpll-props", qsuite [ prop_dpll_matches_brute_force ]);
      ( "thm4.1",
        [ Alcotest.test_case "ctable encoding, satisfiable" `Quick test_encoding_ctable_simple;
          Alcotest.test_case "ctable encoding, unsat" `Quick test_encoding_ctable_unsat;
          Alcotest.test_case "repair-key encoding, satisfiable" `Quick test_encoding_repair_key_simple;
          Alcotest.test_case "repair-key encoding, unsat" `Quick test_encoding_repair_key_unsat;
          Alcotest.test_case "program is linear" `Quick test_encoding_linear
        ] );
      ("thm4.1-props", qsuite [ prop_encoding_matches_sharp_sat ]);
      ( "thm5.1",
        [ Alcotest.test_case "satisfiable reaches Done" `Slow test_noninf_sat_reaches_done;
          Alcotest.test_case "unsat never Done" `Slow test_noninf_unsat_never_done;
          Alcotest.test_case "Done latches" `Quick test_noninf_done_latches;
          Alcotest.test_case "expected values" `Quick test_noninf_expected
        ] )
    ]
