(* Tests for the feed-forward tractability analysis: the syntactic class
   answering the paper's closing open problem.  The headline claim — a
   feed-forward program's chain is EXACTLY stationary after its dependency
   depth — is checked with exact rational total-variation distances. *)

open Lang
module Q = Bigq.Q
module Chain = Markov.Chain
module Database = Relational.Database

let q_t = Alcotest.testable Q.pp Q.equal

let depth src = Tractable.dependency_depth (Parser.parse src).Parser.program

(* --- the analysis ---------------------------------------------------------- *)

let test_depth_basics () =
  Alcotest.(check (option int)) "no rules" (Some 0) (depth "f(a).");
  Alcotest.(check (option int)) "one stratum" (Some 1) (depth "A(X) :- e(X).");
  Alcotest.(check (option int)) "two strata" (Some 2) (depth "A(X) :- e(X). B(X) :- A(X).");
  Alcotest.(check (option int)) "diamond deps" (Some 3)
    (depth "A(X) :- e(X). B(X) :- A(X). C(X) :- A(X). D(X) :- B(X), C(X).")

let test_depth_recursive () =
  Alcotest.(check (option int)) "direct recursion" None (depth "R(Y) :- R(X), e(X, Y).");
  Alcotest.(check (option int)) "mutual recursion" None
    (depth "A(X) :- B(X). B(X) :- A(X). A(X) :- e(X).");
  Alcotest.(check (option int)) "latch is recursive" None (depth "Done(X) :- Done(X). Done(X) :- e(X).")

let test_depth_negation_counts () =
  Alcotest.(check (option int)) "negated dep counts" (Some 2)
    (depth "A(X) :- e(X). B(X) :- e(X), !A(X).");
  Alcotest.(check (option int)) "negated self-dep is recursive" None
    (depth "A(X) :- e(X), !A(X).")

let test_thm51_not_feedforward () =
  let f = Reductions.Cnf.make ~num_vars:2 [ [ Reductions.Cnf.pos 1; Reductions.Cnf.pos 2 ] ] in
  let _, program, _ = Reductions.Encode_noninflationary.encode f in
  Alcotest.(check bool) "Thm 5.1 program excluded" false (Tractable.is_feedforward program)

let test_mixing_bound () =
  let program = (Parser.parse "A(X) :- e(X). B(X) :- A(X).").Parser.program in
  Alcotest.(check (option int)) "certain input" (Some 2)
    (Tractable.mixing_bound program ~pc_table_depth:0);
  Alcotest.(check (option int)) "pc-table input" (Some 4)
    (Tractable.mixing_bound program ~pc_table_depth:2)

(* --- the theorem: exact stationarity at the bound --------------------------- *)

(* Exact check: distributions over the chain's states after [bound] steps
   from EVERY state coincide (rationals, no tolerance), hence the chain is
   exactly mixed at the bound. *)
let check_exact_mixing src bound_expected =
  let parsed = Parser.parse src in
  let program = parsed.Parser.program in
  let bound =
    match Parser.ctable_of parsed with
    | Some _ -> Option.get (Tractable.mixing_bound program ~pc_table_depth:2)
    | None -> Option.get (Tractable.mixing_bound program ~pc_table_depth:0)
  in
  Alcotest.(check int) "predicted bound" bound_expected bound;
  let kernel, init =
    match Parser.ctable_of parsed with
    | Some ct -> Compile.noninflationary_kernel_ctable program ct
    | None ->
      Compile.noninflationary_kernel program (Parser.database_of_facts parsed.Parser.facts)
  in
  let query = Forever.make ~kernel ~event:(Option.get parsed.Parser.event) in
  let chain = Eval.Exact_noninflationary.build_chain query init in
  let n = Chain.num_states chain in
  let point i = Array.init n (fun j -> if i = j then Q.one else Q.zero) in
  let reference = Markov.Mixing.evolve chain (point 0) bound in
  (* Exactly stationary: one more step changes nothing. *)
  let after = Markov.Mixing.evolve chain reference 1 in
  Array.iteri (fun i p -> Alcotest.check q_t (Printf.sprintf "stationary[%d]" i) p after.(i)) reference;
  (* And independent of the start state. *)
  for s = 1 to n - 1 do
    let d = Markov.Mixing.evolve chain (point s) bound in
    Array.iteri
      (fun i p -> Alcotest.check q_t (Printf.sprintf "start %d state %d" s i) reference.(i) p)
      d
  done

let test_exact_mixing_coin () =
  check_exact_mixing
    "var x = { true: 1/3, false: 2/3 }.\n\
     side(heads) when x = true.\n\
     side(tails) when x != true.\n\
     Seen(X) :- side(X).\n\
     ?- Seen(heads)."
    3

let test_exact_mixing_two_strata () =
  check_exact_mixing
    "var x = { true: 1/2, false: 1/2 }.\n\
     a(p) when x = true.\n\
     a(n) when x != true.\n\
     B(X) :- a(X).\n\
     C(X) :- B(X).\n\
     ?- C(p)."
    4

let test_exact_mixing_probabilistic_rule () =
  (* A probabilistic (repair-key) rule over a certain input: fresh choice
     per step, depth 1. *)
  check_exact_mixing "e(a). e(b). e(c).\n?Pick(X) :- e(X).\n?- Pick(a)." 1

let test_recursive_chain_not_instantly_mixed () =
  (* Sanity for the contrast: the latching program is NOT stationary after
     any constant number of steps. *)
  let parsed =
    Parser.parse
      "var x = { true: 1/2, false: 1/2 }.\nhit(a) when x = true.\nDone(X) :- hit(X).\nDone(X) :- Done(X).\n?- Done(a)."
  in
  Alcotest.(check bool) "recursive" false (Tractable.is_feedforward parsed.Parser.program)

let () =
  Alcotest.run "tractable"
    [ ( "analysis",
        [ Alcotest.test_case "depth basics" `Quick test_depth_basics;
          Alcotest.test_case "recursion detected" `Quick test_depth_recursive;
          Alcotest.test_case "negation counts" `Quick test_depth_negation_counts;
          Alcotest.test_case "Thm 5.1 excluded" `Quick test_thm51_not_feedforward;
          Alcotest.test_case "mixing bound" `Quick test_mixing_bound
        ] );
      ( "exact-mixing-theorem",
        [ Alcotest.test_case "coin pipeline (bound 3)" `Quick test_exact_mixing_coin;
          Alcotest.test_case "two strata (bound 4)" `Quick test_exact_mixing_two_strata;
          Alcotest.test_case "probabilistic rule (bound 1)" `Quick test_exact_mixing_probabilistic_rule;
          Alcotest.test_case "recursive contrast" `Quick test_recursive_chain_not_instantly_mixed
        ] )
    ]
