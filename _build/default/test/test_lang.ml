(* Tests for the language layer: datalog AST, compilation, parser,
   linearity, events. *)

open Relational
open Lang
module Q = Bigq.Q
module Dist = Prob.Dist

let v_int n = Value.Int n
let v_str s = Value.Str s
let rel cols rows = Relation.make cols (List.map Tuple.of_list rows)
let q_t = Alcotest.testable Q.pp Q.equal
let relation_t = Alcotest.testable Relation.pp Relation.equal

(* --- Event ------------------------------------------------------------ *)

let test_event () =
  let db = Database.of_list [ ("R", rel [ "A" ] [ [ v_int 1 ] ]) ] in
  Alcotest.(check bool) "holds" true (Event.holds (Event.make "R" [ v_int 1 ]) db);
  Alcotest.(check bool) "absent tuple" false (Event.holds (Event.make "R" [ v_int 2 ]) db);
  Alcotest.(check bool) "absent relation" false (Event.holds (Event.make "S" [ v_int 1 ]) db);
  Alcotest.(check bool) "arity mismatch" false (Event.holds (Event.make "R" [ v_int 1; v_int 2 ]) db)

(* --- Datalog AST validation ------------------------------------------- *)

let test_datalog_range_restriction () =
  let head = Datalog.deterministic_head "H" [ Datalog.Var "X" ] in
  try
    ignore (Datalog.rule head []);
    Alcotest.fail "expected Datalog_error"
  with Datalog.Datalog_error _ -> ()

let test_datalog_weight_in_body () =
  let head =
    { Datalog.hpred = "H";
      hargs = [ { Datalog.term = Datalog.Var "X"; is_key = true } ];
      weight = Some "W"
    }
  in
  let body = [ { Datalog.pred = "R"; args = [ Datalog.Var "X" ] } ] in
  try
    ignore (Datalog.rule head body);
    Alcotest.fail "expected Datalog_error"
  with Datalog.Datalog_error _ -> ()

let test_datalog_arity_check () =
  let mk args = { Datalog.pred = "R"; args } in
  let r1 = Datalog.rule (Datalog.deterministic_head "H" [ Datalog.Var "X" ]) [ mk [ Datalog.Var "X" ] ] in
  let r2 =
    Datalog.rule
      (Datalog.deterministic_head "H2" [ Datalog.Var "X" ])
      [ mk [ Datalog.Var "X"; Datalog.Var "Y" ] ]
  in
  try
    Datalog.validate [ r1; r2 ];
    Alcotest.fail "expected arity error"
  with Datalog.Datalog_error _ -> ()

let test_idb_edb () =
  let p = Parser.parse "C(Y) :- C2(X, Y). C2(X, Y) :- e(X, Y)." in
  Alcotest.(check (list string)) "idb" [ "C"; "C2" ] (Datalog.idb_predicates p.Parser.program);
  Alcotest.(check (list string)) "edb" [ "e" ] (Datalog.edb_predicates p.Parser.program)

(* --- Parser ------------------------------------------------------------ *)

let test_parser_facts () =
  let p = Parser.parse "edge(a, b, 1). edge(a, c, 3/2). n(-4). s(\"hello world\")." in
  Alcotest.(check int) "4 facts" 4 (List.length p.Parser.facts);
  let db = Parser.database_of_facts p.Parser.facts in
  Alcotest.(check bool) "edge fact" true
    (Relation.mem (Tuple.of_list [ v_str "a"; v_str "c"; Value.Rat (Q.of_ints 3 2) ]) (Database.find "edge" db));
  Alcotest.(check bool) "negative int" true
    (Relation.mem (Tuple.of_list [ v_int (-4) ]) (Database.find "n" db));
  Alcotest.(check bool) "string" true
    (Relation.mem (Tuple.of_list [ v_str "hello world" ]) (Database.find "s" db))

let test_parser_rules () =
  let p = Parser.parse "C2(<X>, Y) @W :- C(X), edge(X, Y, W).\nC(Y) :- C2(X, Y)." in
  Alcotest.(check int) "2 rules" 2 (List.length p.Parser.program);
  let r1 = List.hd p.Parser.program in
  Alcotest.(check bool) "probabilistic" true (Datalog.is_probabilistic_rule r1);
  Alcotest.(check (option string)) "weight" (Some "W") r1.Datalog.head.Datalog.weight;
  Alcotest.(check (list bool)) "keys" [ true; false ]
    (List.map (fun (ha : Datalog.head_arg) -> ha.Datalog.is_key) r1.Datalog.head.Datalog.hargs);
  let r2 = List.nth p.Parser.program 1 in
  Alcotest.(check bool) "deterministic" false (Datalog.is_probabilistic_rule r2);
  Alcotest.(check (list bool)) "all keys" [ true ]
    (List.map (fun (ha : Datalog.head_arg) -> ha.Datalog.is_key) r2.Datalog.head.Datalog.hargs)

let test_parser_event () =
  let p = Parser.parse "?- C(v)." in
  match p.Parser.event with
  | Some e -> Alcotest.(check string) "relation" "C" e.Event.relation
  | None -> Alcotest.fail "no event parsed"

let test_parser_empty_body_rule () =
  let p = Parser.parse "C(v) :- ." in
  Alcotest.(check int) "one rule" 1 (List.length p.Parser.program);
  Alcotest.(check int) "no facts" 0 (List.length p.Parser.facts)

let test_parser_comments () =
  let p = Parser.parse "% a comment\nedge(a, b). // another\n" in
  Alcotest.(check int) "fact parsed" 1 (List.length p.Parser.facts)

let test_parser_errors () =
  let bad = [ "edge(a,"; "C(X)."; "?- C(X)."; "C(X) :- "; "edge(a, b) x" ] in
  List.iter
    (fun src ->
      try
        ignore (Parser.parse src);
        Alcotest.fail ("accepted bad input: " ^ src)
      with Parser.Parse_error _ | Datalog.Datalog_error _ -> ())
    bad

let test_parser_pp_roundtrip () =
  let src = "C2(<X>, Y) @W :- C(X), edge(X, Y, W).\nC(Y) :- C2(X, Y).\nD(X, X, 5) :- C(X)." in
  let p1 = Parser.parse src in
  let printed = Format.asprintf "%a" Datalog.pp_program p1.Parser.program in
  let p2 = Parser.parse printed in
  Alcotest.(check int) "same rule count" (List.length p1.Parser.program) (List.length p2.Parser.program);
  let again = Format.asprintf "%a" Datalog.pp_program p2.Parser.program in
  Alcotest.(check string) "pp fixpoint" printed again

(* --- Linearity --------------------------------------------------------- *)

let test_linearity () =
  let linear = (Parser.parse "R(Y) :- R(X), e(X, Y).").Parser.program in
  Alcotest.(check bool) "linear" true (Linearity.is_linear linear);
  let nonlinear = (Parser.parse "R(Z) :- R(X), R(Y), e(X, Y, Z).").Parser.program in
  Alcotest.(check bool) "nonlinear" false (Linearity.is_linear nonlinear);
  Alcotest.(check int) "one offending rule" 1 (List.length (Linearity.nonlinear_rules nonlinear))

let test_repair_key_on_base () =
  let base_only = (Parser.parse "A(<V>, L) @P :- base(V, L, P). R(L) :- A(V, L).").Parser.program in
  Alcotest.(check bool) "base only" true (Linearity.repair_key_on_base_only base_only);
  let on_idb = (Parser.parse "B(X) :- e(X). ?A(X) :- B(X).").Parser.program in
  Alcotest.(check bool) "on idb" false (Linearity.repair_key_on_base_only on_idb)

(* --- Compile: body and rule queries ----------------------------------- *)

let graph_db =
  Database.of_list
    [ ("e", rel [ "x1"; "x2" ] [ [ v_str "a"; v_str "b" ]; [ v_str "b"; v_str "c" ]; [ v_str "a"; v_str "a" ] ]) ]

let schema_of name = Relation.columns (Database.find name graph_db)

let test_body_query_single_atom () =
  let body = [ { Datalog.pred = "e"; args = [ Datalog.Var "X"; Datalog.Var "Y" ] } ] in
  let e, vars = Compile.body_query ~schema_of body in
  Alcotest.(check (list string)) "vars" [ "X"; "Y" ] vars;
  match Prob.Palgebra.to_algebra e with
  | Some a ->
    let r = Algebra.eval a graph_db in
    Alcotest.(check int) "3 valuations" 3 (Relation.cardinal r);
    Alcotest.(check (list string)) "columns are vars" [ "X"; "Y" ] (Relation.columns r)
  | None -> Alcotest.fail "body must be deterministic"

let test_body_query_repeated_var () =
  (* e(X, X): only the self-loop matches. *)
  let body = [ { Datalog.pred = "e"; args = [ Datalog.Var "X"; Datalog.Var "X" ] } ] in
  let e, vars = Compile.body_query ~schema_of body in
  Alcotest.(check (list string)) "one var" [ "X" ] vars;
  match Prob.Palgebra.to_algebra e with
  | Some a ->
    Alcotest.check relation_t "self loop" (rel [ "X" ] [ [ v_str "a" ] ]) (Algebra.eval a graph_db)
  | None -> Alcotest.fail "deterministic"

let test_body_query_constant () =
  let body = [ { Datalog.pred = "e"; args = [ Datalog.Const (v_str "a"); Datalog.Var "Y" ] } ] in
  let e, vars = Compile.body_query ~schema_of body in
  Alcotest.(check (list string)) "one var" [ "Y" ] vars;
  match Prob.Palgebra.to_algebra e with
  | Some a ->
    Alcotest.check relation_t "successors of a" (rel [ "Y" ] [ [ v_str "a" ]; [ v_str "b" ] ])
      (Algebra.eval a graph_db)
  | None -> Alcotest.fail "deterministic"

let test_body_query_join () =
  (* Paths of length 2: e(X,Y), e(Y,Z). *)
  let body =
    [ { Datalog.pred = "e"; args = [ Datalog.Var "X"; Datalog.Var "Y" ] };
      { Datalog.pred = "e"; args = [ Datalog.Var "Y"; Datalog.Var "Z" ] }
    ]
  in
  let e, vars = Compile.body_query ~schema_of body in
  Alcotest.(check (list string)) "vars" [ "X"; "Y"; "Z" ] vars;
  match Prob.Palgebra.to_algebra e with
  | Some a ->
    let r = Algebra.eval a graph_db in
    (* a->b->c, a->a->b, a->a->a. *)
    Alcotest.(check int) "3 paths" 3 (Relation.cardinal r)
  | None -> Alcotest.fail "deterministic"

let test_body_query_empty () =
  let e, vars = Compile.body_query ~schema_of [] in
  Alcotest.(check (list string)) "no vars" [] vars;
  match Prob.Palgebra.to_algebra e with
  | Some a ->
    Alcotest.(check int) "unit relation" 1 (Relation.cardinal (Algebra.eval a graph_db))
  | None -> Alcotest.fail "deterministic"

let test_rule_query_head_constant () =
  (* H(X, done) :- e(X, Y): head mixes a variable and a constant. *)
  let schema_of = function
    | "e" -> [ "x1"; "x2" ]
    | "H" -> [ "x1"; "x2" ]
    | _ -> raise Not_found
  in
  let rule =
    Datalog.rule
      (Datalog.deterministic_head "H" [ Datalog.Var "X"; Datalog.Const (v_str "done") ])
      [ { Datalog.pred = "e"; args = [ Datalog.Var "X"; Datalog.Var "Y" ] } ]
  in
  let q = Compile.rule_query ~schema_of rule in
  match Prob.Palgebra.to_algebra q with
  | Some a ->
    Alcotest.check relation_t "heads"
      (rel [ "x1"; "x2" ] [ [ v_str "a"; v_str "done" ]; [ v_str "b"; v_str "done" ] ])
      (Algebra.eval a graph_db)
  | None -> Alcotest.fail "deterministic rule"

let test_rule_query_duplicate_head_var () =
  let schema_of = function
    | "e" -> [ "x1"; "x2" ]
    | "H" -> [ "x1"; "x2" ]
    | _ -> raise Not_found
  in
  let rule =
    Datalog.rule
      (Datalog.deterministic_head "H" [ Datalog.Var "X"; Datalog.Var "X" ])
      [ { Datalog.pred = "e"; args = [ Datalog.Var "X"; Datalog.Var "Y" ] } ]
  in
  let q = Compile.rule_query ~schema_of rule in
  match Prob.Palgebra.to_algebra q with
  | Some a ->
    Alcotest.check relation_t "pairs"
      (rel [ "x1"; "x2" ] [ [ v_str "a"; v_str "a" ]; [ v_str "b"; v_str "b" ] ])
      (Algebra.eval a graph_db)
  | None -> Alcotest.fail "deterministic rule"

let test_rule_query_probabilistic () =
  (* H(<X>, Y) :- e(X, Y): per source, choose one target uniformly. *)
  let schema_of = function
    | "e" -> [ "x1"; "x2" ]
    | "H" -> [ "x1"; "x2" ]
    | _ -> raise Not_found
  in
  let head =
    { Datalog.hpred = "H";
      hargs =
        [ { Datalog.term = Datalog.Var "X"; is_key = true };
          { Datalog.term = Datalog.Var "Y"; is_key = false }
        ];
      weight = None
    }
  in
  let rule = Datalog.rule head [ { Datalog.pred = "e"; args = [ Datalog.Var "X"; Datalog.Var "Y" ] } ] in
  let q = Compile.rule_query ~schema_of rule in
  let d = Prob.Palgebra.eval q graph_db in
  (* Source a has successors {a, b}; source b has {c}: two worlds. *)
  Alcotest.(check int) "2 worlds" 2 (Dist.size d);
  List.iter (fun (_, p) -> Alcotest.check q_t "uniform" Q.half p) (Dist.support d)

(* --- Inflationary wrapper ---------------------------------------------- *)

let test_inflationary_syntactic_check () =
  let ok =
    Prob.Interp.make
      [ ("R", Prob.Palgebra.Union (Prob.Palgebra.Rel "R", Prob.Palgebra.Rel "S"));
        Prob.Interp.unchanged "S"
      ]
  in
  let q = Forever.make ~kernel:ok ~event:(Event.make "R" [ v_int 1 ]) in
  ignore (Inflationary.of_forever q);
  let bad = Prob.Interp.make [ ("R", Prob.Palgebra.Rel "S"); Prob.Interp.unchanged "S" ] in
  let qb = Forever.make ~kernel:bad ~event:(Event.make "R" [ v_int 1 ]) in
  try
    ignore (Inflationary.of_forever qb);
    Alcotest.fail "expected Not_inflationary"
  with Inflationary.Not_inflationary _ -> ()

let test_forever_is_inflationary_at () =
  let db = Database.of_list [ ("R", rel [ "A" ] [ [ v_int 1 ] ]); ("S", rel [ "A" ] [ [ v_int 2 ] ]) ] in
  let grow =
    Prob.Interp.make
      [ ("R", Prob.Palgebra.Union (Prob.Palgebra.Rel "R", Prob.Palgebra.Rel "S"));
        Prob.Interp.unchanged "S"
      ]
  in
  let shrink = Prob.Interp.make [ ("R", Prob.Palgebra.Rel "S"); Prob.Interp.unchanged "S" ] in
  let ev = Event.make "R" [ v_int 1 ] in
  Alcotest.(check bool) "grow ok" true
    (Forever.is_inflationary_at (Forever.make ~kernel:grow ~event:ev) db);
  Alcotest.(check bool) "shrink not" false
    (Forever.is_inflationary_at (Forever.make ~kernel:shrink ~event:ev) db)

(* --- Compiled kernels: one-step behaviour ------------------------------ *)

let reach_src =
  "C(v) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\n?- C(w)."

let reach_db = Database.of_list [ ("e", rel [ "x1"; "x2" ] [ [ v_str "v"; v_str "w" ]; [ v_str "v"; v_str "u" ] ]) ]

let test_inflationary_kernel_steps () =
  let parsed = Parser.parse reach_src in
  let kernel, init = Compile.inflationary_kernel parsed.Parser.program reach_db in
  (* Step 1: deterministic — C gains v. *)
  let d1 = Prob.Interp.apply kernel init in
  (match Dist.is_point d1 with
   | Some db1 ->
     Alcotest.(check bool) "v in C" true (Relation.mem (Tuple.of_list [ v_str "v" ]) (Database.find "C" db1));
     (* Step 2: C2 chooses one of (v,w), (v,u). *)
     let d2 = Prob.Interp.apply kernel db1 in
     Alcotest.(check int) "two worlds" 2 (Dist.size d2);
     List.iter (fun (_, p) -> Alcotest.check q_t "half" Q.half p) (Dist.support d2)
   | None -> Alcotest.fail "first step should be deterministic")

let test_strip_auxiliary () =
  let parsed = Parser.parse reach_src in
  let _, init = Compile.inflationary_kernel parsed.Parser.program reach_db in
  let visible = Compile.strip_auxiliary init in
  Alcotest.(check (list string)) "no __vals left" [ "C"; "C2"; "e" ] (Database.names visible)

let test_noninflationary_kernel_resamples () =
  (* A(<X>) :- base(X): IDB recomputed each step, regardless of history. *)
  let parsed = Parser.parse "?A(X) :- base(X). ?- A(h)." in
  let db = Database.of_list [ ("base", rel [ "x1" ] [ [ v_str "h" ]; [ v_str "t" ] ]) ] in
  let kernel, init = Compile.noninflationary_kernel parsed.Parser.program db in
  let d1 = Prob.Interp.apply kernel init in
  Alcotest.(check int) "two worlds from empty" 2 (Dist.size d1);
  (* From a state where A = {h}, the next state is again a fresh choice. *)
  let with_h = Database.add "A" (rel [ "x1" ] [ [ v_str "h" ] ]) init in
  let d2 = Prob.Interp.apply kernel with_h in
  Alcotest.(check int) "still two worlds" 2 (Dist.size d2)

(* --- Negation ---------------------------------------------------------- *)

let test_parser_negation () =
  let p = Parser.parse "F(X) :- C(X), !Cold(X)." in
  let r = List.hd p.Parser.program in
  Alcotest.(check int) "one positive atom" 1 (List.length r.Datalog.body);
  Alcotest.(check int) "one negated atom" 1 (List.length r.Datalog.neg);
  Alcotest.(check string) "negated pred" "Cold" (List.hd r.Datalog.neg).Datalog.pred

let test_parser_negation_unsafe () =
  try
    ignore (Parser.parse "F(X) :- e(X), !g(Y).");
    Alcotest.fail "unsafe negation accepted"
  with Datalog.Datalog_error _ -> ()

let test_negation_pp_roundtrip () =
  let src = "F(X) :- C(X), !Cold(X).\nG(X) :- C(X), !h(X, X)." in
  let p1 = Parser.parse src in
  let printed = Format.asprintf "%a" Datalog.pp_program p1.Parser.program in
  let p2 = Parser.parse printed in
  let again = Format.asprintf "%a" Datalog.pp_program p2.Parser.program in
  Alcotest.(check string) "pp fixpoint with negation" printed again

let test_compile_negation_antijoin () =
  (* frontier(X) :- node(X), !seen(X) over concrete relations. *)
  let db =
    Database.of_list
      [ ("node", rel [ "x1" ] [ [ v_int 1 ]; [ v_int 2 ]; [ v_int 3 ] ]);
        ("seen", rel [ "x1" ] [ [ v_int 2 ] ])
      ]
  in
  let schema_of name = Relation.columns (Database.find name db) in
  let r =
    Datalog.rule_with_neg
      (Datalog.deterministic_head "frontier" [ Datalog.Var "X" ])
      [ { Datalog.pred = "node"; args = [ Datalog.Var "X" ] } ]
      [ { Datalog.pred = "seen"; args = [ Datalog.Var "X" ] } ]
  in
  let e, vars = Compile.rule_body_query ~schema_of r in
  Alcotest.(check (list string)) "vars" [ "X" ] vars;
  match Prob.Palgebra.to_algebra e with
  | Some a ->
    Alcotest.check relation_t "anti-join" (rel [ "X" ] [ [ v_int 1 ]; [ v_int 3 ] ])
      (Algebra.eval a db)
  | None -> Alcotest.fail "deterministic"

let test_compile_negation_ground_atom () =
  (* ok :- t(X), !blocked.  A ground negated 0-ary atom acts as a guard. *)
  let db0 =
    Database.of_list
      [ ("t", rel [ "x1" ] [ [ v_int 1 ] ]); ("blocked", Relation.empty []) ]
  in
  let db1 = Database.add "blocked" (rel [] [ [] ]) db0 in
  let schema_of name = Relation.columns (Database.find name db0) in
  let r =
    Datalog.rule_with_neg
      (Datalog.deterministic_head "ok" [ Datalog.Var "X" ])
      [ { Datalog.pred = "t"; args = [ Datalog.Var "X" ] } ]
      [ { Datalog.pred = "blocked"; args = [] } ]
  in
  let e, _ = Compile.rule_body_query ~schema_of r in
  match Prob.Palgebra.to_algebra e with
  | Some a ->
    Alcotest.(check int) "fires when unblocked" 1 (Relation.cardinal (Algebra.eval a db0));
    Alcotest.(check int) "blocked kills it" 0 (Relation.cardinal (Algebra.eval a db1))
  | None -> Alcotest.fail "deterministic"

(* --- pc-table syntax ----------------------------------------------------- *)

let test_parser_var_decl () =
  let p = Parser.parse "var x = { true: 1/2, false: 1/2 }.\nvar y = { 1: 1/4, 2: 3/4 }." in
  Alcotest.(check int) "two vars" 2 (List.length p.Parser.vars);
  let x = List.hd p.Parser.vars in
  Alcotest.(check string) "name" "x" x.Prob.Ctable.vname;
  Alcotest.(check int) "domain size" 2 (List.length x.Prob.Ctable.domain)

let test_parser_cond_fact () =
  let p = Parser.parse "var x = { true: 1/2, false: 1/2 }.\nA(p1) when x = true.\nA(n1) when x != true." in
  Alcotest.(check int) "two conditional facts" 2 (List.length p.Parser.cond_facts);
  let name, vs, _cond = List.hd p.Parser.cond_facts in
  Alcotest.(check string) "relation" "A" name;
  Alcotest.(check int) "arity" 1 (List.length vs)

let test_parser_var_bad_distribution () =
  try
    ignore (Parser.parse "var x = { true: 1/2, false: 1/4 }.");
    Alcotest.fail "distribution not summing to 1 accepted"
  with Prob.Ctable.Ctable_error _ | Parser.Parse_error _ -> ()

let test_parser_undeclared_condition_var () =
  try
    ignore (Parser.parse "A(p) when ghost = true.");
    Alcotest.fail "undeclared variable accepted"
  with Prob.Ctable.Ctable_error _ -> ()

let test_ctable_of () =
  let p =
    Parser.parse
      "var x = { true: 1/4, false: 3/4 }.\nplain(k).\nA(p1) when x = true.\n?- A(p1)."
  in
  match Parser.ctable_of p with
  | None -> Alcotest.fail "expected a c-table"
  | Some ct ->
    Alcotest.(check int) "2 worlds" 2 (Prob.Ctable.num_worlds ct);
    let worlds = Prob.Ctable.worlds ct in
    let has db = Relation.mem (Tuple.of_list [ v_str "p1" ]) (Database.find "A" db) in
    Alcotest.check q_t "Pr[A(p1)] = 1/4" (Q.of_ints 1 4) (Prob.Dist.prob has worlds);
    (* plain fact appears in every world *)
    let plain db = Relation.mem (Tuple.of_list [ v_str "k" ]) (Database.find "plain" db) in
    Alcotest.check q_t "plain fact certain" Q.one (Prob.Dist.prob plain worlds)

let test_ctable_of_none () =
  let p = Parser.parse "e(a, b). R(X) :- e(X, Y). ?- R(a)." in
  Alcotest.(check bool) "no ctable for certain input" true (Option.is_none (Parser.ctable_of p))

let test_bool_constants_in_facts () =
  let p = Parser.parse "flag(true). flag(false)." in
  let db = Parser.database_of_facts p.Parser.facts in
  Alcotest.(check bool) "bools parsed" true
    (Relation.mem (Tuple.of_list [ Value.Bool true ]) (Database.find "flag" db))

(* --- Comparison guards ---------------------------------------------------- *)

let test_parser_constraints () =
  let p = Parser.parse "bigger(X, Y) :- num(X), num(Y), X > Y, X != 3." in
  let r = List.hd p.Parser.program in
  Alcotest.(check int) "two constraints" 2 (List.length r.Datalog.constraints);
  Alcotest.(check int) "two atoms" 2 (List.length r.Datalog.body)

let test_parser_constraints_unsafe () =
  try
    ignore (Parser.parse "f(X) :- num(X), Y > 2.");
    Alcotest.fail "unsafe constraint accepted"
  with Datalog.Datalog_error _ -> ()

let test_constraints_pp_roundtrip () =
  let src = "bigger(X, Y) :- num(X), num(Y), X > Y, X <= 5." in
  let p1 = Parser.parse src in
  let printed = Format.asprintf "%a" Datalog.pp_program p1.Parser.program in
  let p2 = Parser.parse printed in
  let again = Format.asprintf "%a" Datalog.pp_program p2.Parser.program in
  Alcotest.(check string) "pp fixpoint" printed again

let test_constraints_compile () =
  let db = Database.of_list [ ("num", rel [ "x1" ] [ [ v_int 1 ]; [ v_int 2 ]; [ v_int 3 ] ]) ] in
  let schema_of name = Relation.columns (Database.find name db) in
  let p = Parser.parse "bigger(X, Y) :- num(X), num(Y), X > Y." in
  let e, _ = Compile.rule_body_query ~schema_of (List.hd p.Parser.program) in
  match Prob.Palgebra.to_algebra e with
  | Some a ->
    (* pairs (2,1), (3,1), (3,2) *)
    Alcotest.(check int) "3 valuations" 3 (Relation.cardinal (Algebra.eval a db))
  | None -> Alcotest.fail "deterministic"

let test_constraints_end_to_end () =
  let src = "num(1). num(2). num(3).\ntop(X) :- num(X), X >= 3.\n?- top(3)." in
  let parsed = Parser.parse src in
  let db = Parser.database_of_facts parsed.Parser.facts in
  let kernel, init = Compile.inflationary_kernel parsed.Parser.program db in
  let q =
    Inflationary.of_forever_unchecked
      (Forever.make ~kernel ~event:(Option.get parsed.Parser.event))
  in
  Alcotest.check q_t "certain" Q.one (Eval.Exact_inflationary.eval q init)

let test_constraints_prune_probabilistic_choice () =
  (* The guard restricts the repair-key candidate set: choose among edges
     with weight >= 2 only. *)
  let src =
    "e(a, b, 1). e(a, c, 2). e(a, d, 3).\n\
     ?Pick(Y) :- e(X, Y, W), W >= 2.\n?- Pick(b)."
  in
  let r = Eval.Engine.run ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact
      (Parser.parse src)
  in
  Alcotest.check q_t "b excluded by guard" Q.zero (Option.get r.Eval.Engine.exact);
  let src_c = String.concat "" [ "e(a, b, 1). e(a, c, 2). e(a, d, 3).\n";
                                 "?Pick(Y) :- e(X, Y, W), W >= 2.\n?- Pick(c)." ] in
  let rc = Eval.Engine.run ~semantics:Eval.Engine.Inflationary ~method_:Eval.Engine.Exact
      (Parser.parse src_c)
  in
  Alcotest.check q_t "c picked half the time" Q.half (Option.get rc.Eval.Engine.exact)

let () =
  Alcotest.run "lang"
    [ ("event", [ Alcotest.test_case "holds" `Quick test_event ]);
      ( "datalog",
        [ Alcotest.test_case "range restriction" `Quick test_datalog_range_restriction;
          Alcotest.test_case "weight in body" `Quick test_datalog_weight_in_body;
          Alcotest.test_case "arity check" `Quick test_datalog_arity_check;
          Alcotest.test_case "idb/edb split" `Quick test_idb_edb
        ] );
      ( "parser",
        [ Alcotest.test_case "facts" `Quick test_parser_facts;
          Alcotest.test_case "rules" `Quick test_parser_rules;
          Alcotest.test_case "event" `Quick test_parser_event;
          Alcotest.test_case "empty body rule" `Quick test_parser_empty_body_rule;
          Alcotest.test_case "comments" `Quick test_parser_comments;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "pp roundtrip" `Quick test_parser_pp_roundtrip
        ] );
      ( "linearity",
        [ Alcotest.test_case "linear check" `Quick test_linearity;
          Alcotest.test_case "repair-key on base" `Quick test_repair_key_on_base
        ] );
      ( "compile",
        [ Alcotest.test_case "single atom" `Quick test_body_query_single_atom;
          Alcotest.test_case "repeated var" `Quick test_body_query_repeated_var;
          Alcotest.test_case "constant arg" `Quick test_body_query_constant;
          Alcotest.test_case "join" `Quick test_body_query_join;
          Alcotest.test_case "empty body" `Quick test_body_query_empty;
          Alcotest.test_case "head constant" `Quick test_rule_query_head_constant;
          Alcotest.test_case "duplicate head var" `Quick test_rule_query_duplicate_head_var;
          Alcotest.test_case "probabilistic rule" `Quick test_rule_query_probabilistic
        ] );
      ( "inflationary",
        [ Alcotest.test_case "syntactic check" `Quick test_inflationary_syntactic_check;
          Alcotest.test_case "is_inflationary_at" `Quick test_forever_is_inflationary_at
        ] );
      ( "kernels",
        [ Alcotest.test_case "inflationary steps" `Quick test_inflationary_kernel_steps;
          Alcotest.test_case "strip auxiliary" `Quick test_strip_auxiliary;
          Alcotest.test_case "noninflationary resamples" `Quick test_noninflationary_kernel_resamples
        ] );
      ( "pc-table-syntax",
        [ Alcotest.test_case "var declarations" `Quick test_parser_var_decl;
          Alcotest.test_case "conditional facts" `Quick test_parser_cond_fact;
          Alcotest.test_case "bad distribution" `Quick test_parser_var_bad_distribution;
          Alcotest.test_case "undeclared condition var" `Quick test_parser_undeclared_condition_var;
          Alcotest.test_case "ctable_of" `Quick test_ctable_of;
          Alcotest.test_case "ctable_of none" `Quick test_ctable_of_none;
          Alcotest.test_case "bool constants" `Quick test_bool_constants_in_facts
        ] );
      ( "constraints",
        [ Alcotest.test_case "parse" `Quick test_parser_constraints;
          Alcotest.test_case "unsafe rejected" `Quick test_parser_constraints_unsafe;
          Alcotest.test_case "pp roundtrip" `Quick test_constraints_pp_roundtrip;
          Alcotest.test_case "compile" `Quick test_constraints_compile;
          Alcotest.test_case "end to end" `Quick test_constraints_end_to_end;
          Alcotest.test_case "prunes probabilistic choice" `Quick test_constraints_prune_probabilistic_choice
        ] );
      ( "negation",
        [ Alcotest.test_case "parse" `Quick test_parser_negation;
          Alcotest.test_case "unsafe rejected" `Quick test_parser_negation_unsafe;
          Alcotest.test_case "pp roundtrip" `Quick test_negation_pp_roundtrip;
          Alcotest.test_case "anti-join" `Quick test_compile_negation_antijoin;
          Alcotest.test_case "ground guard" `Quick test_compile_negation_ground_atom
        ] )
    ]
