  $ probdl run reachability.pdl | grep "^exact"
  $ probdl run uncertain_reach.pdl | grep "^exact"
  $ probdl run coin_flip.pdl | grep "^exact"
  $ probdl run coin_flip.pdl -s noninflationary | grep "^exact"
  $ probdl run sat_thm41.pdl | grep "^exact"
  $ probdl run bayes_rain.pdl | grep "^exact"
  $ probdl run guards.pdl | grep "^exact"
  $ probdl run reachability.pdl -O | grep "^exact"
  $ probdl run bayes_rain.pdl -O | grep "^exact"
  $ probdl run reachability.pdl -m sample --eps 0.05 --seed 7 | grep method
  $ probdl run coin_flip.pdl -s noninflationary -m lumped | grep "^exact"
  $ probdl run walk_distribution.pdl -s noninflationary
  $ probdl run frontier.pdl | grep "^exact"
  $ probdl check frontier.pdl | grep feed
