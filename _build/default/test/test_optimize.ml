(* Tests for the algebraic optimizer: every rewrite must preserve the
   *distribution* an expression evaluates to, including through
   repair-key. *)

open Relational
open Prob
module Q = Bigq.Q
module P = Palgebra

let v_int n = Value.Int n
let v_str s = Value.Str s
let rel cols rows = Relation.make cols (List.map Tuple.of_list rows)
let relation_t = Alcotest.testable Relation.pp Relation.equal

let db =
  Database.of_list
    [ ("R", rel [ "A"; "B" ] [ [ v_int 1; v_int 10 ]; [ v_int 2; v_int 20 ]; [ v_int 2; v_int 30 ] ]);
      ("S", rel [ "B"; "C" ] [ [ v_int 10; v_str "x" ]; [ v_int 20; v_str "y" ] ]);
      ("W", rel [ "A"; "P" ] [ [ v_int 1; v_int 1 ]; [ v_int 1; v_int 3 ]; [ v_int 2; v_int 1 ] ])
    ]

let schema_of name = Relation.columns (Database.find name db)
let optimize e = Optimize.expression ~schema_of e

let same_dist a b =
  let da = P.eval a db and db' = P.eval b db in
  List.length (Dist.support da) = List.length (Dist.support db')
  && List.for_all2
       (fun (r1, p1) (r2, p2) -> Relation.equal r1 r2 && Q.equal p1 p2)
       (Dist.support da) (Dist.support db')

let check_equiv name e =
  Alcotest.(check bool) name true (same_dist e (optimize e))

(* --- semantics preservation on targeted shapes -------------------------- *)

let sel col n e = P.Select (Pred.eq (Pred.col col) (Pred.const (v_int n)), e)

let test_preserves_select_join () =
  check_equiv "select over join" (sel "A" 2 (P.Join (P.Rel "R", P.Rel "S")));
  check_equiv "select on right side" (sel "C" 0 (P.Join (P.Rel "R", P.Rel "S")))

let test_preserves_select_union_diff () =
  check_equiv "select over union" (sel "A" 1 (P.Union (P.Rel "R", P.Rel "R")));
  check_equiv "select over diff" (sel "A" 1 (P.Diff (P.Rel "R", P.Rel "R")))

let test_preserves_rename_pushdown () =
  check_equiv "select through rename"
    (P.Select
       (Pred.eq (Pred.col "X") (Pred.const (v_int 1)),
        P.Rename ([ ("A", "X") ], P.Rel "R")))

let test_preserves_project_prune () =
  check_equiv "project over join" (P.Project ([ "A" ], P.Join (P.Rel "R", P.Rel "S")));
  check_equiv "project of project" (P.Project ([ "A" ], P.Project ([ "A"; "B" ], P.Rel "R")))

let test_preserves_repair_key () =
  let rk = P.repair_key ~weight:"P" [ "A" ] (P.Rel "W") in
  check_equiv "plain repair-key" rk;
  check_equiv "key-only select over repair-key" (sel "A" 1 rk);
  (* A selection on a NON-key column must not be pushed: check it is still
     equivalent (i.e. the optimizer left it above or handled it safely). *)
  check_equiv "non-key select over repair-key"
    (P.Select (Pred.eq (Pred.col "P") (Pred.const (v_int 3)), rk))

let test_preserves_extend () =
  check_equiv "select through extend"
    (sel "A" 2 (P.Extend ("D", Pred.Const (v_int 7), P.Rel "R")))

(* --- structural expectations -------------------------------------------- *)

let rec count_nodes = function
  | P.Rel _ | P.Const _ -> 1
  | P.Select (_, e) | P.Project (_, e) | P.Rename (_, e) | P.Extend (_, _, e) -> 1 + count_nodes e
  | P.Product (a, b) | P.Join (a, b) | P.Union (a, b) | P.Diff (a, b) ->
    1 + count_nodes a + count_nodes b
  | P.Aggregate { arg; _ } -> 1 + count_nodes arg
  | P.Repair_key { arg; _ } -> 1 + count_nodes arg

let test_select_true_removed () =
  let e = P.Select (Pred.True, P.Rel "R") in
  Alcotest.(check int) "true select gone" 1 (count_nodes (optimize e))

let test_select_false_folds () =
  let e = P.Select (Pred.False, P.Join (P.Rel "R", P.Rel "S")) in
  match optimize e with
  | P.Const r -> Alcotest.(check bool) "empty const" true (Relation.is_empty r)
  | _ -> Alcotest.fail "expected constant fold"

let test_union_empty_folds () =
  let empty = P.Const (Relation.empty [ "A"; "B" ]) in
  Alcotest.(check int) "union with empty" 1 (count_nodes (optimize (P.Union (P.Rel "R", empty))));
  Alcotest.(check int) "diff with empty" 1 (count_nodes (optimize (P.Diff (P.Rel "R", empty))))

let test_join_with_unit_folds () =
  let unit_rel = P.Const (Relation.make [] [ Tuple.of_list [] ]) in
  Alcotest.(check int) "join with unit" 1 (count_nodes (optimize (P.Join (unit_rel, P.Rel "R"))))

let test_identity_rename_removed () =
  let e = P.Rename ([ ("A", "A") ], P.Rel "R") in
  Alcotest.(check int) "identity rename gone" 1 (count_nodes (optimize e))

let test_selection_pushed_below_join () =
  let e = sel "A" 2 (P.Join (P.Rel "R", P.Rel "S")) in
  match optimize e with
  | P.Join (P.Select _, _) -> ()
  | other -> Alcotest.failf "selection not pushed: %a" P.pp other

let test_result_unchanged_deterministic () =
  (* Direct relation-level check on a deterministic expression. *)
  let e =
    P.Project
      ([ "C" ],
       P.Select (Pred.eq (Pred.col "A") (Pred.const (v_int 1)), P.Join (P.Rel "R", P.Rel "S")))
  in
  let before = Algebra.eval (Option.get (P.to_algebra e)) db in
  let after = Algebra.eval (Option.get (P.to_algebra (optimize e))) db in
  Alcotest.check relation_t "same result" before after

(* --- equivalence on compiled kernels (property test) -------------------- *)

let random_walk_db rng k =
  let edges = Workload.Graphs.random rng ~nodes:k ~out_degree:2 ~max_weight:3 in
  Workload.Graphs.walk_database edges ~start:0

let prop_kernel_equivalence =
  QCheck.Test.make ~name:"optimised kernels step to identical distributions" ~count:25
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_walk_db rng 4 in
      let parsed =
        Lang.Parser.parse "?C(Y) @W :- C(X), e(X, Y, W).\nD(Y) :- C(X), e(X, Y, W).\n?- C(n0)."
      in
      let kernel, init = Lang.Compile.noninflationary_kernel parsed.Lang.Parser.program db in
      let schema_of name = Relation.columns (Database.find name init) in
      let kernel' = Optimize.interp ~schema_of kernel in
      let d1 = Interp.apply kernel init in
      let d2 = Interp.apply kernel' init in
      List.length (Dist.support d1) = List.length (Dist.support d2)
      && List.for_all2
           (fun (a, p) (b, q) -> Database.equal a b && Q.equal p q)
           (Dist.support d1) (Dist.support d2))

let prop_end_to_end_equivalence =
  QCheck.Test.make ~name:"optimised kernels give identical query answers" ~count:10
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_walk_db rng 4 in
      let parsed = Lang.Parser.parse "?C(Y) @W :- C(X), e(X, Y, W).\n?- C(n0)." in
      let event = Option.get parsed.Lang.Parser.event in
      let kernel, init = Lang.Compile.noninflationary_kernel parsed.Lang.Parser.program db in
      let schema_of name = Relation.columns (Database.find name init) in
      let kernel' = Optimize.interp ~schema_of kernel in
      let p1 = Eval.Exact_noninflationary.eval (Lang.Forever.make ~kernel ~event) init in
      let p2 = Eval.Exact_noninflationary.eval (Lang.Forever.make ~kernel:kernel' ~event) init in
      Q.equal p1 p2)

let () =
  Alcotest.run "optimize"
    [ ( "semantics",
        [ Alcotest.test_case "select/join" `Quick test_preserves_select_join;
          Alcotest.test_case "select/union+diff" `Quick test_preserves_select_union_diff;
          Alcotest.test_case "rename pushdown" `Quick test_preserves_rename_pushdown;
          Alcotest.test_case "project pruning" `Quick test_preserves_project_prune;
          Alcotest.test_case "repair-key" `Quick test_preserves_repair_key;
          Alcotest.test_case "extend" `Quick test_preserves_extend
        ] );
      ( "structure",
        [ Alcotest.test_case "select true removed" `Quick test_select_true_removed;
          Alcotest.test_case "select false folds" `Quick test_select_false_folds;
          Alcotest.test_case "union empty folds" `Quick test_union_empty_folds;
          Alcotest.test_case "join with unit folds" `Quick test_join_with_unit_folds;
          Alcotest.test_case "identity rename removed" `Quick test_identity_rename_removed;
          Alcotest.test_case "selection pushed below join" `Quick test_selection_pushed_below_join;
          Alcotest.test_case "deterministic result unchanged" `Quick test_result_unchanged_deterministic
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_kernel_equivalence; prop_end_to_end_equivalence ] )
    ]
