(* Tests for the structured while-language over probabilistic kernels. *)

open Relational
open Lang
module Q = Bigq.Q
module P = Prob.Palgebra

let v_str s = Value.Str s
let rel cols rows = Relation.make cols (List.map Tuple.of_list rows)
let q_t = Alcotest.testable Q.pp Q.equal

(* A coin kernel: flips relation Coin to {h} or {t}, each 1/2. *)
let coin_kernel =
  Prob.Interp.make
    [ ( "Coin",
        P.Project
          ([ "x1" ], P.repair_key_all (P.Rel "sides")) );
      Prob.Interp.unchanged "sides";
      Prob.Interp.unchanged "Done"
    ]

(* A latch kernel: once Coin = {h}, add the marker to Done. *)
let latch_kernel =
  Prob.Interp.make
    [ Prob.Interp.unchanged "Coin";
      Prob.Interp.unchanged "sides";
      ( "Done",
        P.Union
          (P.Rel "Done", P.Rename ([ ("x1", "y1") ], P.Select (Relational.Pred.eq (Relational.Pred.col "x1") (Relational.Pred.const (v_str "h")), P.Rel "Coin"))) )
    ]

let init =
  Database.of_list
    [ ("sides", rel [ "x1" ] [ [ v_str "h" ]; [ v_str "t" ] ]);
      ("Coin", rel [ "x1" ] [ [ v_str "t" ] ]);
      ("Done", Relation.empty [ "y1" ])
    ]

let heads = { While_lang.event = Event.make "Coin" [ v_str "h" ]; negated = false }
let not_heads = { While_lang.event = Event.make "Coin" [ v_str "h" ]; negated = true }

let test_skip () =
  let d = While_lang.eval_dist ~fuel:0 While_lang.Skip init in
  match Prob.Dist.is_point d with
  | Some db -> Alcotest.(check bool) "identity" true (Database.equal db init)
  | None -> Alcotest.fail "skip must be deterministic"

let test_single_step () =
  let d = While_lang.eval_dist ~fuel:1 (While_lang.Step coin_kernel) init in
  Alcotest.(check int) "two outcomes" 2 (Prob.Dist.size d);
  let p_heads = Prob.Dist.prob (fun db -> Event.holds heads.While_lang.event db) d in
  Alcotest.check q_t "half heads" Q.half p_heads

let test_seq_matches_two_applications () =
  let two = While_lang.Seq (While_lang.Step coin_kernel, While_lang.Step coin_kernel) in
  let d = While_lang.eval_dist ~fuel:2 two in
  let d = d init in
  (* After two flips the first flip is forgotten: still uniform. *)
  Alcotest.check q_t "still half" Q.half
    (Prob.Dist.prob (fun db -> Event.holds heads.While_lang.event db) d)

let test_if_branches () =
  (* If heads then latch else skip. *)
  let prog =
    While_lang.Seq
      (While_lang.Step coin_kernel,
       While_lang.If (heads, While_lang.Step latch_kernel, While_lang.Skip))
  in
  let d = While_lang.eval_dist ~fuel:2 prog init in
  let done_mass = Prob.Dist.prob (fun db -> not (Relation.is_empty (Database.find "Done" db))) d in
  Alcotest.check q_t "latched half the time" Q.half done_mass

let test_geometric_loop_residual () =
  (* while not heads: flip.  Terminates with prob 1; after fuel f the
     residual is exactly 2^-f. *)
  let prog = While_lang.While (not_heads, While_lang.Step coin_kernel) in
  List.iter
    (fun fuel ->
      let outcomes, residual = While_lang.eval_partial ~fuel prog init in
      Alcotest.check q_t (Printf.sprintf "residual 2^-%d" fuel) (Q.pow Q.half fuel) residual;
      Alcotest.check q_t "completed mass" (Q.sub Q.one (Q.pow Q.half fuel))
        (Q.sum (List.map snd outcomes));
      (* All completed outcomes show heads. *)
      List.iter
        (fun (db, _) -> Alcotest.(check bool) "ends on heads" true (Event.holds heads.While_lang.event db))
        outcomes)
    [ 1; 3; 8 ]

let test_eval_dist_requires_completeness () =
  let prog = While_lang.While (not_heads, While_lang.Step coin_kernel) in
  try
    ignore (While_lang.eval_dist ~fuel:5 prog init);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_expected_steps_geometric () =
  (* E[steps] of the geometric loop is 2; with fuel f the truncated value
     is 2 - (f + 2) 2^-f... just check convergence from below to 2. *)
  let prog = While_lang.While (not_heads, While_lang.Step coin_kernel) in
  let e8, r8 = While_lang.expected_steps ~fuel:8 prog init in
  let e16, r16 = While_lang.expected_steps ~fuel:16 prog init in
  Alcotest.(check bool) "monotone" true (Q.compare e8 e16 <= 0);
  Alcotest.(check bool) "approaches 2" true (Q.to_float e16 > 1.95 && Q.to_float e16 <= 2.0);
  Alcotest.(check bool) "residuals shrink" true (Q.compare r16 r8 < 0)

let test_nonproductive_loop_detected () =
  let truthy = { While_lang.event = Event.make "sides" [ v_str "h" ]; negated = false } in
  try
    ignore (While_lang.eval_partial ~fuel:3 (While_lang.While (truthy, While_lang.Skip)) init);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_run_sampled_agrees () =
  let prog = While_lang.While (not_heads, While_lang.Step coin_kernel) in
  let rng = Random.State.make [| 4 |] in
  for _ = 1 to 200 do
    let out = While_lang.run_sampled rng prog init in
    if not (Event.holds heads.While_lang.event out) then Alcotest.fail "run ended without heads"
  done

let test_run_sampled_step_budget () =
  let truthy = { While_lang.event = Event.make "sides" [ v_str "h" ]; negated = false } in
  let spin = While_lang.While (truthy, While_lang.Step latch_kernel) in
  let rng = Random.State.make [| 5 |] in
  try
    ignore (While_lang.run_sampled ~max_steps:50 rng spin init);
    Alcotest.fail "expected budget exhaustion"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "while"
    [ ( "while-language",
        [ Alcotest.test_case "skip" `Quick test_skip;
          Alcotest.test_case "single step" `Quick test_single_step;
          Alcotest.test_case "seq" `Quick test_seq_matches_two_applications;
          Alcotest.test_case "if" `Quick test_if_branches;
          Alcotest.test_case "geometric residual" `Quick test_geometric_loop_residual;
          Alcotest.test_case "eval_dist completeness" `Quick test_eval_dist_requires_completeness;
          Alcotest.test_case "expected steps" `Quick test_expected_steps_geometric;
          Alcotest.test_case "non-productive loop" `Quick test_nonproductive_loop_detected;
          Alcotest.test_case "sampled runs" `Quick test_run_sampled_agrees;
          Alcotest.test_case "sampled budget" `Quick test_run_sampled_step_budget
        ] )
    ]
