The probdl CLI evaluates programs under both semantics.

  $ probdl run reach.pdl | head -4
  semantics : inflationary
  method    : exact
  answer    : 0.500000
  exact     : 1/2

  $ probdl check reach.pdl
  parsed 3 rules, 2 facts
  IDB: C, C2
  EDB: e
  linear: true
  repair-key on base relations only: false
  probabilistic rules: 1
  feed-forward: no (recursive dependencies)
  event: (w) ∈ C
  

pc-table inputs: once under inflationary, re-sampled under non-inflationary.

  $ probdl run coin.pdl | head -4
  semantics : inflationary
  method    : exact
  answer    : 0.333333
  exact     : 1/3

  $ probdl run coin.pdl -s noninflationary | head -4
  semantics : non-inflationary
  method    : exact
  answer    : 0.333333
  exact     : 1/3

  $ probdl worlds coin.pdl | head -3
  2 possible worlds:
  
  world 1, probability 1/3:

  $ probdl hitting coin.pdl
  expected steps until (heads) ∈ Seen first holds: 1 (~1.000000)

The probmc CLI analyses chain files.

  $ probmc stationary walk.mc
  state              pi (exact)        ~float
  s0                 1/3              0.333333
  s1                 2/3              0.666667

  $ probmc mixing walk.mc --eps 0.05
  mixing time T(0.05) = 4 steps

  $ probmc hitting walk.mc --target s0
  state              E[steps to s0]
  s0                 0
  s1                 2

  $ probmc classify walk.mc | head -5
  states                : 2
  strongly connected     : 1 components
  closed components      : 1
  irreducible            : true
  aperiodic              : true

The REPL accumulates clauses and answers queries inline.

  $ printf 'e(a, b).\ne(a, c).\nC(a) :- .\nC2(<X>, Y) :- C(X), e(X, Y).\nC(Y) :- C2(X, Y).\n?- C(b).\n:quit\n' | probdl repl | grep -o '1/2 (~0.500000)'
  1/2 (~0.500000)

Bad clauses are rejected with a message and do not poison the session.

  $ printf 'f(X) :- .\ne(a).\n?- e(a).\n:quit\n' | probdl repl | grep -oE 'error: head variable|1 \(~1\.000000\)'
  error: head variable
  1 (~1.000000)
