(* Tests for the Bayesian network library and the Example 3.10 encoding. *)

open Bayes
module Q = Bigq.Q

let q_t = Alcotest.testable Q.pp Q.equal

(* The classic two-node network: rain -> wet.
   Pr(rain) = 1/5; Pr(wet | rain) = 9/10; Pr(wet | ¬rain) = 1/10. *)
let rain_wet =
  Bn.make
    [ { Bn.name = "rain"; parents = []; cpt = [ ([], Q.of_ints 1 5) ] };
      { Bn.name = "wet";
        parents = [ "rain" ];
        cpt = [ ([ true ], Q.of_ints 9 10); ([ false ], Q.of_ints 1 10) ]
      }
    ]

(* A v-structure: a -> c <- b. *)
let v_structure =
  Bn.make
    [ { Bn.name = "a"; parents = []; cpt = [ ([], Q.half) ] };
      { Bn.name = "b"; parents = []; cpt = [ ([], Q.of_ints 1 4) ] };
      { Bn.name = "c";
        parents = [ "a"; "b" ];
        cpt =
          [ ([ true; true ], Q.of_ints 7 8 );
            ([ true; false ], Q.half);
            ([ false; true ], Q.half);
            ([ false; false ], Q.of_ints 1 8)
          ]
      }
    ]

let test_bn_validation () =
  (try
     ignore
       (Bn.make
          [ { Bn.name = "x"; parents = [ "ghost" ]; cpt = [ ([ true ], Q.half); ([ false ], Q.half) ] } ]);
     Alcotest.fail "undeclared parent accepted"
   with Bn.Bn_error _ -> ());
  (try
     ignore (Bn.make [ { Bn.name = "x"; parents = []; cpt = [] } ]);
     Alcotest.fail "missing CPT rows accepted"
   with Bn.Bn_error _ -> ());
  try
    ignore (Bn.make [ { Bn.name = "x"; parents = []; cpt = [ ([], Q.of_int 2) ] } ]);
    Alcotest.fail "probability out of range accepted"
  with Bn.Bn_error _ -> ()

let test_infer_joint_sums_to_one () =
  Alcotest.check q_t "sums to 1" Q.one (Q.sum (List.map snd (Infer.joint v_structure)))

let test_infer_marginals () =
  (* Pr(wet) = 1/5 * 9/10 + 4/5 * 1/10 = 9/50 + 4/50 = 13/50. *)
  Alcotest.check q_t "Pr(wet)" (Q.of_ints 13 50) (Infer.marginal rain_wet [ ("wet", true) ]);
  Alcotest.check q_t "Pr(rain ∧ wet)" (Q.of_ints 9 50)
    (Infer.marginal rain_wet [ ("rain", true); ("wet", true) ]);
  Alcotest.check q_t "Pr(rain)" (Q.of_ints 1 5) (Infer.marginal rain_wet [ ("rain", true) ])

let datalog_marginal bn query =
  let db, program, event = Encode.marginal_query bn query in
  let kernel, init = Lang.Compile.inflationary_kernel program db in
  let q = Lang.Inflationary.of_forever (Lang.Forever.make ~kernel ~event) in
  Eval.Exact_inflationary.eval q init

let test_encoding_rain_wet () =
  Alcotest.check q_t "datalog Pr(wet)" (Q.of_ints 13 50) (datalog_marginal rain_wet [ ("wet", true) ]);
  Alcotest.check q_t "datalog Pr(rain ∧ wet)" (Q.of_ints 9 50)
    (datalog_marginal rain_wet [ ("rain", true); ("wet", true) ]);
  Alcotest.check q_t "datalog Pr(¬rain ∧ wet)" (Q.of_ints 4 50)
    (datalog_marginal rain_wet [ ("rain", false); ("wet", true) ])

let test_encoding_v_structure () =
  List.iter
    (fun query ->
      Alcotest.check q_t
        (Printf.sprintf "marginal %s"
           (String.concat "," (List.map (fun (x, v) -> Printf.sprintf "%s=%b" x v) query)))
        (Infer.marginal v_structure query)
        (datalog_marginal v_structure query))
    [ [ ("c", true) ];
      [ ("a", true); ("c", true) ];
      [ ("a", true); ("b", false); ("c", true) ];
      [ ("b", true) ]
    ]

let test_encoding_extreme_probabilities () =
  (* CPT entries of 0 and 1 must compile (zero rows dropped). *)
  let deterministic =
    Bn.make
      [ { Bn.name = "x"; parents = []; cpt = [ ([], Q.one) ] };
        { Bn.name = "y"; parents = [ "x" ]; cpt = [ ([ true ], Q.zero); ([ false ], Q.one) ] }
      ]
  in
  Alcotest.check q_t "Pr(x)" Q.one (datalog_marginal deterministic [ ("x", true) ]);
  Alcotest.check q_t "Pr(y)" Q.zero (datalog_marginal deterministic [ ("y", true) ])

let prop_random_bn_agrees =
  QCheck.Test.make ~name:"Example 3.10: datalog = enumeration on random BNs" ~count:10
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let bn = Gen.random rng ~num_nodes:4 ~max_in_degree:2 in
      let names = Bn.node_names bn in
      let query = [ (List.hd names, true); (List.nth names (List.length names - 1), true) ] in
      Q.equal (Infer.marginal bn query) (datalog_marginal bn query))

let test_gen_shapes () =
  let rng = Random.State.make [| 42 |] in
  let bn = Gen.random rng ~num_nodes:6 ~max_in_degree:2 in
  Alcotest.(check int) "6 nodes" 6 (List.length (Bn.nodes bn));
  Alcotest.(check bool) "in-degree bound" true (Bn.max_in_degree bn <= 2)

let () =
  Alcotest.run "bayes"
    [ ( "bn",
        [ Alcotest.test_case "validation" `Quick test_bn_validation;
          Alcotest.test_case "generator shapes" `Quick test_gen_shapes
        ] );
      ( "infer",
        [ Alcotest.test_case "joint sums to 1" `Quick test_infer_joint_sums_to_one;
          Alcotest.test_case "marginals" `Quick test_infer_marginals
        ] );
      ( "encoding",
        [ Alcotest.test_case "rain-wet" `Quick test_encoding_rain_wet;
          Alcotest.test_case "v-structure" `Quick test_encoding_v_structure;
          Alcotest.test_case "extreme probabilities" `Quick test_encoding_extreme_probabilities
        ] );
      ("encoding-props", [ QCheck_alcotest.to_alcotest prop_random_bn_agrees ])
    ]
