module Q = Bigq.Q

type 'a t = ('a * Q.t) list
(* Invariant: outcomes strictly ascending in the compare used to build the
   value, probabilities positive, sum exactly 1. *)

exception Invalid_distribution of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_distribution s)) fmt

(* Sort by outcome and coalesce equal outcomes, dropping zero weights. *)
let merge ~compare pairs =
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) pairs in
  let rec go = function
    | [] -> []
    | (x, p) :: rest ->
      let rec take acc = function
        | (y, q) :: rest when compare x y = 0 -> take (Q.add acc q) rest
        | rest -> (acc, rest)
      in
      let total, rest = take p rest in
      if Q.is_zero total then go rest else (x, total) :: go rest
  in
  go sorted

let check_nonneg pairs =
  List.iter
    (fun (_, p) -> if Q.sign p < 0 then invalid "negative probability %s" (Q.to_string p))
    pairs

let return x = [ (x, Q.one) ]

let make ~compare pairs =
  check_nonneg pairs;
  let merged = merge ~compare pairs in
  let total = Q.sum (List.map snd merged) in
  if not (Q.is_one total) then invalid "probabilities sum to %s, not 1" (Q.to_string total);
  merged

let make_unnormalised ~compare pairs =
  check_nonneg pairs;
  let merged = merge ~compare pairs in
  let total = Q.sum (List.map snd merged) in
  if Q.is_zero total then invalid "empty or all-zero support";
  List.map (fun (x, p) -> (x, Q.div p total)) merged

let uniform ~compare xs =
  match xs with
  | [] -> invalid "uniform over empty list"
  | _ ->
    let w = Q.inv (Q.of_int (List.length xs)) in
    make_unnormalised ~compare (List.map (fun x -> (x, w)) xs)

let support d = d
let size = List.length
let outcomes d = List.map fst d

let prob pred d =
  Q.sum (List.filter_map (fun (x, p) -> if pred x then Some p else None) d)

let prob_of ~compare x d = prob (fun y -> compare x y = 0) d

let map ~compare f d = merge ~compare (List.map (fun (x, p) -> (f x, p)) d)

let bind ~compare d f =
  merge ~compare
    (List.concat_map (fun (x, p) -> List.map (fun (y, q) -> (y, Q.mul p q)) (f x)) d)

let product ~compare f da db =
  merge ~compare
    (List.concat_map
       (fun (a, p) -> List.map (fun (b, q) -> (f a b, Q.mul p q)) db)
       da)

let sequence ~compare ds =
  let raw =
    List.fold_right
      (fun d acc ->
        List.concat_map (fun (x, p) -> List.map (fun (xs, q) -> (x :: xs, Q.mul p q)) acc) d)
      ds
      [ ([], Q.one) ]
  in
  merge ~compare raw

let expectation f d = Q.sum (List.map (fun (x, p) -> Q.mul (f x) p) d)

let sample rng d =
  let u = Random.State.float rng 1.0 in
  let rec go acc = function
    | [] -> assert false
    | [ (x, _) ] -> x
    | (x, p) :: rest ->
      let acc = acc +. Q.to_float p in
      if u < acc then x else go acc rest
  in
  go 0.0 d

let is_point = function [ (x, _) ] -> Some x | _ -> None

let total_variation ~compare da db =
  (* Merge the two supports; each side's missing outcome has probability 0. *)
  let rec go acc da db =
    match (da, db) with
    | [], [] -> acc
    | (_, p) :: rest, [] -> go (Q.add acc p) rest []
    | [], (_, q) :: rest -> go (Q.add acc q) [] rest
    | (x, p) :: ra, (y, q) :: rb ->
      let c = compare x y in
      if c = 0 then go (Q.add acc (Q.abs (Q.sub p q))) ra rb
      else if c < 0 then go (Q.add acc p) ra db
      else go (Q.add acc q) da rb
  in
  Q.mul Q.half (go Q.zero da db)

let pp pp_elt fmt d =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (x, p) -> Format.fprintf fmt "%s : %a@," (Q.to_string p) pp_elt x) d;
  Format.fprintf fmt "@]"
