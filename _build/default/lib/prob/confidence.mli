(** World-aggregation operators over probabilistic relations and databases —
    the [possible] / [certain] / tuple-confidence operators of the
    probabilistic algebras the paper builds on (Koch, SIGMOD Record 2008). *)

val possible : Relational.Relation.t Dist.t -> Relational.Relation.t
(** Union of all worlds: tuples appearing with positive probability. *)

val certain : Relational.Relation.t Dist.t -> Relational.Relation.t
(** Intersection of all worlds: tuples appearing with probability 1. *)

val tuple_confidence :
  Relational.Relation.t Dist.t -> (Relational.Tuple.t * Bigq.Q.t) list
(** Marginal probability of each possible tuple, in tuple order. *)

val expected_cardinality : Relational.Relation.t Dist.t -> Bigq.Q.t

val relation_marginal :
  string -> Relational.Database.t Dist.t -> Relational.Relation.t Dist.t
(** Marginal distribution of one relation of a probabilistic database.
    Worlds lacking the relation contribute an empty relation with the
    schema of the first world that has it (raises [Not_found] when no world
    does). *)
