lib/prob/ctable.mli: Bigq Dist Random Relational Seq
