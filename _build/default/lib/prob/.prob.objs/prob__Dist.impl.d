lib/prob/dist.ml: Bigq Format List Random
