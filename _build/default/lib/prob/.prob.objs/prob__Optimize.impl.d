lib/prob/optimize.ml: Interp List Option Palgebra Relational Stdlib String
