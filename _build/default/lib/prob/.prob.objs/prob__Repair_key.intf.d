lib/prob/repair_key.mli: Dist Random Relational
