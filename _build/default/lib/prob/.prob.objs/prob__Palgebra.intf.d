lib/prob/palgebra.mli: Dist Format Random Relational
