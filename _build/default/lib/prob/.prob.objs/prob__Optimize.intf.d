lib/prob/optimize.mli: Interp Palgebra
