lib/prob/palgebra.ml: Dist Format List Option Relational Repair_key String
