lib/prob/confidence.mli: Bigq Dist Relational
