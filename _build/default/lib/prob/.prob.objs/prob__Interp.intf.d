lib/prob/interp.mli: Dist Format Palgebra Random Relational
