lib/prob/interp.ml: Dist Format List Palgebra Relational String
