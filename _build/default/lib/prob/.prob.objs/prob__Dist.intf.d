lib/prob/dist.mli: Bigq Format Random
