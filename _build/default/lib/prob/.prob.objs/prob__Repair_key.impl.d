lib/prob/repair_key.ml: Array Bigq Dist Format List Map Option Relational
