lib/prob/confidence.ml: Bigq Dist Fun List Relational
