lib/prob/ctable.ml: Bigq Dist Format List Relational Seq String
