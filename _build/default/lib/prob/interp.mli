(** Probabilistic first-order interpretations (Definition 3.1): one
    {!Palgebra} query per relation of the schema.  Applying an
    interpretation to a database yields a probabilistic database — the
    distribution over next states of the induced random walk. *)

type t

exception Interp_error of string

val make : (string * Palgebra.t) list -> t
(** One (relation name, query) pair per relation; the query's result schema
    becomes the relation's schema in the next state.  Raises
    {!Interp_error} on duplicate names. *)

val bindings : t -> (string * Palgebra.t) list

val unchanged : string -> string * Palgebra.t
(** [unchanged "E"] is the identity rule [E := E]. *)

val is_deterministic : t -> bool

val apply : t -> Relational.Database.t -> Relational.Database.t Dist.t
(** All right-hand sides are evaluated against the *old* state ("fire in
    parallel"), with independent probabilistic choices, and the results are
    assembled into the new state.  The new state contains exactly the
    relations the interpretation defines. *)

val apply_sampled : Random.State.t -> t -> Relational.Database.t -> Relational.Database.t
(** One next state drawn with the correct probability. *)

val pp : Format.formatter -> t -> unit
