(** Finite probability distributions with exact rational weights.

    A distribution is a finite list of (outcome, probability) pairs with
    positive probabilities.  Operations that could create duplicate outcomes
    take a [compare] so equal outcomes are merged; this keeps supports
    canonical, which matters when outcomes are whole database instances
    acting as Markov-chain states. *)

type 'a t

exception Invalid_distribution of string

val return : 'a -> 'a t
(** The point mass. *)

val make : compare:('a -> 'a -> int) -> ('a * Bigq.Q.t) list -> 'a t
(** Merges equal outcomes and drops zero-probability ones.  Raises
    {!Invalid_distribution} if any weight is negative, or the weights do not
    sum to 1. *)

val make_unnormalised : compare:('a -> 'a -> int) -> ('a * Bigq.Q.t) list -> 'a t
(** Like {!make} but rescales positive weights to sum to 1.  Raises
    {!Invalid_distribution} on an empty or all-zero support. *)

val uniform : compare:('a -> 'a -> int) -> 'a list -> 'a t

val support : 'a t -> ('a * Bigq.Q.t) list
(** In ascending outcome order; probabilities are positive and sum to 1. *)

val size : 'a t -> int
val outcomes : 'a t -> 'a list

val prob : ('a -> bool) -> 'a t -> Bigq.Q.t
(** Total mass of outcomes satisfying the predicate. *)

val prob_of : compare:('a -> 'a -> int) -> 'a -> 'a t -> Bigq.Q.t

val map : compare:('b -> 'b -> int) -> ('a -> 'b) -> 'a t -> 'b t

val bind : compare:('b -> 'b -> int) -> 'a t -> ('a -> 'b t) -> 'b t

val product : compare:('c -> 'c -> int) -> ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
(** Independent product, combined with the given function. *)

val sequence : compare:('a list -> 'a list -> int) -> 'a t list -> 'a list t
(** Independent product of a list of distributions. *)

val expectation : ('a -> Bigq.Q.t) -> 'a t -> Bigq.Q.t

val sample : Random.State.t -> 'a t -> 'a
(** Draws an outcome; uses float approximations of the rational weights,
    falling back to the last outcome on rounding shortfall. *)

val is_point : 'a t -> 'a option
(** [Some x] when the distribution is a point mass on [x]. *)

val total_variation : compare:('a -> 'a -> int) -> 'a t -> 'a t -> Bigq.Q.t
(** Total-variation distance [1/2 Σ |p(x) − q(x)|]. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
