(** Probabilistic c-tables (Definition 2.1 of the paper).

    A c-table attaches to every tuple a condition over random variables with
    finite domains; the variables are independent, each with its own
    distribution (the paper notes this loses no generality).  A valuation of
    the variables selects a possible world whose probability is the product
    of the individual variable probabilities. *)

module Q = Bigq.Q
module Value = Relational.Value

type var = {
  vname : string;
  domain : (Value.t * Q.t) list;  (** value/probability pairs, summing to 1 *)
}

(** Conditions: boolean combinations of (in)equalities between variables and
    constants. *)
type cond =
  | CTrue
  | CEq of term * term
  | CNeq of term * term
  | CAnd of cond * cond
  | COr of cond * cond
  | CNot of cond

and term =
  | TVar of string
  | TLit of Value.t

type row = {
  tuple : Relational.Tuple.t;
  cond : cond;
}

type t
(** A probabilistic c-table database: per-relation conditional rows plus the
    variable declarations. *)

exception Ctable_error of string

val make : vars:var list -> tables:(string * string list * row list) list -> t
(** [make ~vars ~tables] where each table is (name, columns, rows).  Raises
    {!Ctable_error} on duplicate variables, a condition mentioning an
    undeclared variable, or a variable distribution not summing to 1. *)

val vars : t -> var list
val tables : t -> (string * string list * row list) list
val flag : p:Q.t -> string -> var
(** [flag ~p x] is a boolean variable that is [true] with probability [p]. *)

type valuation = (string * Value.t) list

val valuations : t -> valuation Seq.t
(** All valuations, lazily (their count is the product of domain sizes). *)

val valuation_prob : t -> valuation -> Q.t
val sample_valuation : Random.State.t -> t -> valuation
val eval_cond : valuation -> cond -> bool

val instantiate : t -> valuation -> Relational.Database.t
(** The world selected by a valuation: tuples whose conditions hold. *)

val worlds : t -> Relational.Database.t Dist.t
(** The full possible-worlds distribution.  Exponential in the number of
    variables; meant for small inputs and for testing the samplers. *)

val certain : Relational.Database.t -> t
(** A c-table with no variables denoting the given database. *)

val num_worlds : t -> int
