module P = Palgebra
module Pred = Relational.Pred
module Relation = Relational.Relation

(* Schema computation mirroring Palgebra.schema_of, but driven by a lookup
   function instead of a concrete database. *)
let rec schema lookup = function
  | P.Rel n -> lookup n
  | P.Const r -> Relation.columns r
  | P.Select (_, e) -> schema lookup e
  | P.Project (cols, _) -> cols
  | P.Rename (pairs, e) ->
    List.map
      (fun c -> match List.assoc_opt c pairs with Some fresh -> fresh | None -> c)
      (schema lookup e)
  | P.Product (a, b) -> schema lookup a @ schema lookup b
  | P.Join (a, b) ->
    let ca = schema lookup a in
    ca @ List.filter (fun c -> not (List.mem c ca)) (schema lookup b)
  | P.Union (a, _) | P.Diff (a, _) -> schema lookup a
  | P.Extend (c, _, e) -> schema lookup e @ [ c ]
  | P.Aggregate { group_by; out; _ } -> group_by @ [ out ]
  | P.Repair_key { arg; _ } -> schema lookup arg

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* Rewrite a predicate's column references through the inverse of a rename
   (new name -> old name), to push a selection below the rename. *)
let rec unrename_pred pairs p =
  let unrename_term = function
    | Pred.Col c ->
      (match List.find_opt (fun (_, fresh) -> String.equal fresh c) pairs with
       | Some (old, _) -> Pred.Col old
       | None -> Pred.Col c)
    | Pred.Const v -> Pred.Const v
  in
  match p with
  | Pred.True -> Pred.True
  | Pred.False -> Pred.False
  | Pred.Cmp (op, a, b) -> Pred.Cmp (op, unrename_term a, unrename_term b)
  | Pred.And (a, b) -> Pred.And (unrename_pred pairs a, unrename_pred pairs b)
  | Pred.Or (a, b) -> Pred.Or (unrename_pred pairs a, unrename_pred pairs b)
  | Pred.Not a -> Pred.Not (unrename_pred pairs a)

let is_empty_const = function P.Const r -> Relation.is_empty r | _ -> false

let is_unit_const = function
  | P.Const r -> Relation.columns r = [] && Relation.cardinal r = 1
  | _ -> false

(* One local rewrite at the root of [e] (children assumed optimised).
   Returns [Some e'] on progress. *)
let step lookup e =
  match e with
  (* --- selection rules --- *)
  | P.Select (Pred.True, inner) -> Some inner
  | P.Select (Pred.False, inner) -> Some (P.Const (Relation.empty (schema lookup inner)))
  | P.Select (Pred.And (a, b), inner) -> Some (P.Select (a, P.Select (b, inner)))
  | P.Select (p, P.Select (q, inner)) when Stdlib.compare p q > 0 ->
    (* Canonical order for stacked selections so pushdown terminates. *)
    Some (P.Select (q, P.Select (p, inner)))
  | P.Select (p, P.Union (a, b)) -> Some (P.Union (P.Select (p, a), P.Select (p, b)))
  | P.Select (p, P.Diff (a, b)) -> Some (P.Diff (P.Select (p, a), P.Select (p, b)))
  | P.Select (p, P.Project (cols, inner)) -> Some (P.Project (cols, P.Select (p, inner)))
  | P.Select (p, P.Rename (pairs, inner)) ->
    Some (P.Rename (pairs, P.Select (unrename_pred pairs p, inner)))
  | P.Select (p, P.Extend (c, term, inner)) when not (List.mem c (Pred.columns p)) ->
    Some (P.Extend (c, term, P.Select (p, inner)))
  | P.Select (p, P.Join (a, b)) ->
    let cols = Pred.columns p in
    if subset cols (schema lookup a) then Some (P.Join (P.Select (p, a), b))
    else if subset cols (schema lookup b) then Some (P.Join (a, P.Select (p, b)))
    else None
  | P.Select (p, P.Product (a, b)) ->
    let cols = Pred.columns p in
    if subset cols (schema lookup a) then Some (P.Product (P.Select (p, a), b))
    else if subset cols (schema lookup b) then Some (P.Product (a, P.Select (p, b)))
    else None
  | P.Select (p, P.Repair_key { key; weight; arg }) when subset (Pred.columns p) key ->
    (* Key-only predicates drop whole groups; groups are independent, so
       selecting before or after the repair gives the same marginal. *)
    Some (P.Repair_key { key; weight; arg = P.Select (p, arg) })
  (* --- projection rules --- *)
  | P.Project (cols, P.Project (_, inner)) -> Some (P.Project (cols, inner))
  | P.Project (cols, inner) when List.equal String.equal cols (schema lookup inner) -> Some inner
  | P.Project (cols, P.Join (a, b)) ->
    let sa = schema lookup a and sb = schema lookup b in
    let shared = List.filter (fun c -> List.mem c sa) sb in
    let needed = List.sort_uniq String.compare (cols @ shared) in
    let prune side s =
      let keep = List.filter (fun c -> List.mem c needed) s in
      if List.length keep < List.length s then Some (P.Project (keep, side)) else None
    in
    (match (prune a sa, prune b sb) with
     | None, None -> None
     | a', b' ->
       Some
         (P.Project (cols, P.Join (Option.value ~default:a a', Option.value ~default:b b'))))
  (* --- rename rules --- *)
  | P.Rename (pairs, inner) ->
    let s = schema lookup inner in
    let live = List.filter (fun (old, fresh) -> (not (String.equal old fresh)) && List.mem old s) pairs in
    if live = [] then Some inner
    else if List.length live < List.length pairs then Some (P.Rename (live, inner))
    else None
  (* --- constant folding --- *)
  | P.Union (a, b) when is_empty_const b -> Some a
  | P.Union (a, b) when is_empty_const a -> Some b
  | P.Diff (a, b) when is_empty_const b -> Some a
  | P.Diff (a, _) when is_empty_const a -> Some a
  | P.Join (a, b) when is_unit_const a -> Some b
  | P.Join (a, b) when is_unit_const b -> Some a
  | P.Select (_, inner) when is_empty_const inner -> Some inner
  | P.Project (cols, inner) when is_empty_const inner ->
    Some (P.Const (Relation.empty cols))
  | _ -> None

let expression ~schema_of e =
  (* A global step budget guarantees termination even if a pair of rules
     were to cycle; in practice the rules strictly reduce a measure. *)
  let budget = ref 10_000 in
  let try_step e =
    if !budget <= 0 then None
    else
      match step schema_of e with
      | Some e' ->
        decr budget;
        Some e'
      | None -> None
  in
  let rec opt e =
    let e =
      match e with
      | P.Rel _ | P.Const _ -> e
      | P.Select (p, inner) -> P.Select (p, opt inner)
      | P.Project (cols, inner) -> P.Project (cols, opt inner)
      | P.Rename (pairs, inner) -> P.Rename (pairs, opt inner)
      | P.Product (a, b) -> P.Product (opt a, opt b)
      | P.Join (a, b) -> P.Join (opt a, opt b)
      | P.Union (a, b) -> P.Union (opt a, opt b)
      | P.Diff (a, b) -> P.Diff (opt a, opt b)
      | P.Extend (c, term, inner) -> P.Extend (c, term, opt inner)
      | P.Aggregate { group_by; agg; src; out; arg } ->
        P.Aggregate { group_by; agg; src; out; arg = opt arg }
      | P.Repair_key { key; weight; arg } -> P.Repair_key { key; weight; arg = opt arg }
    in
    match try_step e with
    | Some e' -> opt e'
    | None -> e
  in
  opt e

let interp ~schema_of i =
  Interp.make (List.map (fun (name, e) -> (name, expression ~schema_of e)) (Interp.bindings i))
