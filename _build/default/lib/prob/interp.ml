module Database = Relational.Database
module Relation = Relational.Relation

type t = (string * Palgebra.t) list

exception Interp_error of string

let make pairs =
  let names = List.map fst pairs in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    raise (Interp_error "duplicate relation in interpretation");
  pairs

let bindings t = t
let unchanged name = (name, Palgebra.Rel name)
let is_deterministic t = List.for_all (fun (_, q) -> Palgebra.is_deterministic q) t

let apply t db =
  (* Independent product of the per-relation result distributions, all
     evaluated against the old state. *)
  let dists = List.map (fun (name, q) -> (name, Palgebra.eval q db)) t in
  List.fold_left
    (fun acc (name, d) ->
      Dist.product ~compare:Database.compare
        (fun db r -> Database.add name r db)
        acc d)
    (Dist.return Database.empty) dists

let apply_sampled rng t db =
  List.fold_left
    (fun acc (name, q) -> Database.add name (Palgebra.eval_sampled rng q db) acc)
    Database.empty t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, q) -> Format.fprintf fmt "%s := %a@," name Palgebra.pp q) t;
  Format.fprintf fmt "@]"
