(** Algebraic rewriting for {!Palgebra} expressions — the "generic
    optimization techniques for query evaluation" the paper lists as future
    work.

    All rewrites are distribution-preserving: for every database with the
    declared schemas, the optimised expression evaluates to the same
    distribution over relations (property-tested in the suite).  The
    probabilistic operator is treated carefully: nothing is pushed through
    [Repair_key] except selections that mention only key columns, which
    commute because groups are chosen independently, so dropping whole
    groups before or after the choice yields the same marginal.

    Rewrites performed (to a fixpoint):
    - conjunctive selections split and pushed below [Union]/[Diff]/[Rename]/
      [Join]/[Product] operands whose schema covers them;
    - key-only selections pushed through [Repair_key];
    - cascading projections collapsed; identity projections/renames dropped;
    - [Select true] dropped, [Select false] replaced by the empty constant;
    - unions/differences with the empty constant simplified;
    - column pruning: joins under a projection only materialise the columns
      the projection or the join condition needs. *)

val expression :
  schema_of:(string -> string list) -> Palgebra.t -> Palgebra.t
(** Optimise one expression.  [schema_of] must give the schema of every
    relation the expression mentions (e.g. from the initial database plus
    {!Lang.Compile.canonical_columns} defaults — the kernel compiler's
    schema table). *)

val interp :
  schema_of:(string -> string list) -> Interp.t -> Interp.t
(** Optimise every rule of an interpretation. *)
