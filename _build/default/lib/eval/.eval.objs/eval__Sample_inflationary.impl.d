lib/eval/sample_inflationary.ml: Lang Prob Relational
