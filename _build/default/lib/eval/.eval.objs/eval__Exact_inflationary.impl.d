lib/eval/exact_inflationary.ml: Bigq Fun Lang List Map Prob Relational
