lib/eval/partition.ml: Array Bigq Exact_noninflationary Fun Hashtbl Int Lang List Map Option Relational Set String
