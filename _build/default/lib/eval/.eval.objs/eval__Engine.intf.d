lib/eval/engine.mli: Bigq Format Lang
