lib/eval/exact_noninflationary.mli: Bigq Lang Markov Prob Relational
