lib/eval/exact_inflationary.mli: Bigq Lang Prob Relational
