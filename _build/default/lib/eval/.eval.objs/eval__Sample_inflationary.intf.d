lib/eval/sample_inflationary.mli: Lang Prob Random Relational
