lib/eval/sample_noninflationary.mli: Lang Random Relational
