lib/eval/partition.mli: Bigq Lang Relational
