lib/eval/engine.ml: Bigq Exact_inflationary Exact_noninflationary Format Lang List Partition Prob Random Relational Sample_inflationary Sample_noninflationary
