lib/eval/exact_noninflationary.ml: Array Bigq Fun Lang List Markov Prob Relational
