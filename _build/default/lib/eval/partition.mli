(** The partitioning pre-process of Section 5.1.

    A provenance-annotated inflationary saturation of the program (ignoring
    the probabilistic choices, i.e. firing every valuation as in classical
    datalog) discovers which base tuples can ever interact in a derivation.
    Base tuples are then grouped into independence classes; each class
    induces a sub-database whose query can be evaluated separately, and the
    per-class results combine as
    [p = 1 − Π_classes (1 − p_class)]
    (the paper states the complementary product for the event failing). *)

val classes :
  Lang.Datalog.program -> Relational.Database.t -> (string * Relational.Tuple.t) list list
(** Partition of the base tuples (all tuples of the input database) into
    independence classes. *)

val restrict :
  Relational.Database.t -> (string * Relational.Tuple.t) list -> Relational.Database.t
(** The sub-database keeping only the given base tuples (every relation
    name survives, possibly empty). *)

val eval_noninflationary :
  ?max_states:int ->
  Lang.Datalog.program ->
  Relational.Database.t ->
  Lang.Event.t ->
  Bigq.Q.t
(** Partitioned exact evaluation of the non-inflationary datalog query:
    compile and evaluate per class, combine multiplicatively.  Sound when
    the classes are genuinely independent (which the provenance analysis
    guarantees for derivations; the caller must ensure the event is a
    per-class property, as in the paper). *)

val saturate :
  Lang.Datalog.program ->
  Relational.Database.t ->
  (string * Relational.Tuple.t * int list) list
(** The provenance saturation itself, exposed for inspection and tests:
    every derivable fact with the sorted list of base-tuple ids any of its
    derivations used.  Base ids number the database's tuples in
    [(relation, tuple)] order. *)
