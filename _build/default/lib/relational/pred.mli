(** Selection predicates: boolean combinations of comparisons between named
    columns and constants, as allowed in the conditions of c-tables and in
    the selection operator of the algebra. *)

type term =
  | Col of string
  | Const of Value.t

type t =
  | True
  | False
  | Cmp of cmp * term * term
  | And of t * t
  | Or of t * t
  | Not of t

and cmp = Eq | Neq | Lt | Le | Gt | Ge

val eq : term -> term -> t
val col : string -> term
val const : Value.t -> term

val columns : t -> string list
(** Column names mentioned, without duplicates. *)

val compile : string list -> t -> Tuple.t -> bool
(** [compile schema p] resolves column names to positions once and returns a
    fast evaluator.  Raises {!Relation.Schema_error} on unknown columns. *)

val pp : Format.formatter -> t -> unit
