(** Plain-text rendering and parsing of relations, used by the CLI and the
    examples. *)

val pp_table : Format.formatter -> Relation.t -> unit
(** Renders an aligned ASCII table with a header row. *)

val relation_of_rows : string list -> string list list -> Relation.t
(** [relation_of_rows cols rows] parses each cell with {!Value.of_string}. *)
