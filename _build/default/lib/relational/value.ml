type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Rat of Bigq.Q.t

let int n = Int n
let str s = Str s
let bool b = Bool b
let rat q = Rat q

let tag = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2 | Rat _ -> 3

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Rat x, Rat y -> Bigq.Q.compare x y
  | (Int _ | Str _ | Bool _ | Rat _), _ -> Stdlib.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash = function
  | Int n -> Hashtbl.hash (0, n)
  | Str s -> Hashtbl.hash (1, s)
  | Bool b -> Hashtbl.hash (2, b)
  | Rat q -> Hashtbl.hash (3, Bigq.Q.to_string q)

let to_q = function
  | Int n -> Bigq.Q.of_int n
  | Rat q -> q
  | Str _ -> invalid_arg "Value.to_q: string"
  | Bool _ -> invalid_arg "Value.to_q: bool"

let to_string = function
  | Int n -> string_of_int n
  | Str s -> s
  | Bool b -> string_of_bool b
  | Rat q -> Bigq.Q.to_string q

let pp fmt v = Format.pp_print_string fmt (to_string v)

let is_digit c = c >= '0' && c <= '9'

let of_string s =
  let len = String.length s in
  if len = 0 then Str ""
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else if len >= 2 && s.[0] = '"' && s.[len - 1] = '"' then Str (String.sub s 1 (len - 2))
  else begin
    let numericish =
      (is_digit s.[0] || ((s.[0] = '-' || s.[0] = '+') && len > 1 && (is_digit s.[1] || s.[1] = '.')))
      || (s.[0] = '.' && len > 1 && is_digit s.[1])
    in
    if not numericish then Str s
    else if String.contains s '/' || String.contains s '.' then
      (try Rat (Bigq.Q.of_string s) with _ -> Str s)
    else (try Int (int_of_string s) with _ -> (try Rat (Bigq.Q.of_string s) with _ -> Str s))
  end
