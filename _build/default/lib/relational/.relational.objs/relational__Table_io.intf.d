lib/relational/table_io.mli: Format Relation
