lib/relational/pred.ml: Array Format List Relation String Tuple Value
