lib/relational/table_io.ml: Format List Relation String Tuple Value
