lib/relational/value.ml: Bigq Format Hashtbl Stdlib String
