lib/relational/value.mli: Bigq Format
