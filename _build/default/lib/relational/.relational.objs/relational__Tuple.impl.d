lib/relational/tuple.ml: Array Format Stdlib Value
