lib/relational/algebra.mli: Database Format Pred Relation Value
