lib/relational/pred.mli: Format Tuple Value
