lib/relational/algebra.ml: Array Bigq Database Format List Map Option Pred Relation String Tuple Value
