lib/relational/relation.ml: Format List Printf Set String Tuple
