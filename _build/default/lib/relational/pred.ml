type term =
  | Col of string
  | Const of Value.t

type t =
  | True
  | False
  | Cmp of cmp * term * term
  | And of t * t
  | Or of t * t
  | Not of t

and cmp = Eq | Neq | Lt | Le | Gt | Ge

let eq a b = Cmp (Eq, a, b)
let col name = Col name
let const v = Const v

let columns p =
  let term acc = function Col c -> c :: acc | Const _ -> acc in
  let rec go acc = function
    | True | False -> acc
    | Cmp (_, a, b) -> term (term acc a) b
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Not a -> go acc a
  in
  List.sort_uniq String.compare (go [] p)

let index_of schema name =
  let rec go i = function
    | [] -> raise (Relation.Schema_error ("unknown column " ^ name))
    | c :: rest -> if String.equal c name then i else go (i + 1) rest
  in
  go 0 schema

let compile schema p =
  let term = function
    | Col name ->
      let i = index_of schema name in
      fun (t : Tuple.t) -> t.(i)
    | Const v -> fun _ -> v
  in
  let apply op c = match op with
    | Eq -> c = 0
    | Neq -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0
  in
  let rec go = function
    | True -> fun _ -> true
    | False -> fun _ -> false
    | Cmp (op, a, b) ->
      let fa = term a and fb = term b in
      fun t -> apply op (Value.compare (fa t) (fb t))
    | And (a, b) ->
      let fa = go a and fb = go b in
      fun t -> fa t && fb t
    | Or (a, b) ->
      let fa = go a and fb = go b in
      fun t -> fa t || fb t
    | Not a ->
      let fa = go a in
      fun t -> not (fa t)
  in
  go p

let pp_cmp fmt = function
  | Eq -> Format.pp_print_string fmt "="
  | Neq -> Format.pp_print_string fmt "!="
  | Lt -> Format.pp_print_string fmt "<"
  | Le -> Format.pp_print_string fmt "<="
  | Gt -> Format.pp_print_string fmt ">"
  | Ge -> Format.pp_print_string fmt ">="

let pp_term fmt = function
  | Col c -> Format.pp_print_string fmt c
  | Const v -> Value.pp fmt v

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Cmp (op, a, b) -> Format.fprintf fmt "%a %a %a" pp_term a pp_cmp op pp_term b
  | And (a, b) -> Format.fprintf fmt "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a || %a)" pp a pp b
  | Not a -> Format.fprintf fmt "!(%a)" pp a
