(** Weighted directed graphs for the walk/reachability workloads of the
    benchmark sweeps.  Nodes are integers, rendered as constants [n0],
    [n1], ... in relations. *)

type edge = {
  src : int;
  dst : int;
  weight : int;  (** positive; the repair-key weight column *)
}

val node_name : int -> string

val cycle : int -> edge list
(** Directed cycle [n0 → n1 → … → n0] with a self-loop on every node (the
    lazy cycle), so the induced walk is ergodic. *)

val complete : int -> edge list
(** All ordered pairs (including self-loops), unit weights: the fastest
    mixing family. *)

val line : int -> edge list
(** [n0 → n1 → … → n_{k-1}], the last node absorbing (self-loop). *)

val barbell : int -> edge list
(** Two [k]-cliques joined by a single bridge (lazy, symmetric): the
    classical slow-mixing family — mixing time grows steeply with [k]. *)

val random : Random.State.t -> nodes:int -> out_degree:int -> max_weight:int -> edge list
(** Each node gets [out_degree] random successors (distinct, possibly
    including itself) with weights in [1..max_weight]. *)

val to_relation : edge list -> Relational.Relation.t
(** Columns [x1] (source), [x2] (target), [x3] (weight). *)

val walk_database : edge list -> start:int -> Relational.Database.t
(** Relations [C] (the walker, at [start]) and [e] (the edges). *)

val walk_source : target:int -> string
(** The forever-query program of Example 3.3 in concrete syntax, asking for
    the long-run probability of sitting at [target]:
    [?C(Y) @W :- C(X), e(X, Y, W).  ?- C(n<target>).] *)

val reach_source : start:int -> target:int -> string
(** The Example 3.9 inflationary reachability program from [start] with
    event [target] reached. *)
