module Database = Relational.Database

type case = {
  program : Lang.Datalog.program;
  database : Relational.Database.t;
  event : Lang.Event.t;
  source : string;
}

let constants = [ "a"; "b"; "c"; "d" ]

let random_case rng =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  (* Random edge facts over the constants (allowing self-loops). *)
  let num_edges = 3 + Random.State.int rng 4 in
  let edges =
    List.sort_uniq Stdlib.compare
      (List.init num_edges (fun _ -> (pick constants, pick constants)))
  in
  let facts =
    String.concat "\n"
      (Printf.sprintf "s(%s)." (pick constants)
       :: List.map (fun (x, y) -> Printf.sprintf "e(%s, %s)." x y) edges)
  in
  (* Rule templates; the seed and chase are always present so every IDB
     predicate is inhabited and derivations terminate. *)
  let optional =
    List.filter
      (fun _ -> Random.State.bool rng)
      [ "R2(<X>, Y) :- R(X), e(X, Y).";
        "R(Y) :- R2(X, Y).";
        "?T(X) :- R(X).";
        "D(X) :- R(X), !T(X).";
        Printf.sprintf "G(X) :- R(X), X != %s." (pick constants);
        Printf.sprintf "R(%s) :- ." (pick constants)
      ]
  in
  let rules = [ "R(X) :- s(X)."; "R(Y) :- R(X), e(X, Y)." ] @ optional in
  (* The event targets a predicate that certainly exists. *)
  let event_pred =
    let mentioned p = List.exists (fun r -> String.length r >= String.length p && String.sub r 0 (String.length p) = p) rules in
    pick (List.filter mentioned [ "R"; "R2"; "T"; "D"; "G" ] @ [ "R" ])
  in
  let event_src =
    if String.equal event_pred "R2" then
      Printf.sprintf "?- R2(%s, %s)." (pick constants) (pick constants)
    else Printf.sprintf "?- %s(%s)." event_pred (pick constants)
  in
  let source = facts ^ "\n" ^ String.concat "\n" rules ^ "\n" ^ event_src in
  let parsed = Lang.Parser.parse source in
  {
    program = parsed.Lang.Parser.program;
    database = Lang.Parser.database_of_facts parsed.Lang.Parser.facts;
    event = Option.get parsed.Lang.Parser.event;
    source;
  }
