(** Glauber dynamics for graph colourings as a transition kernel — a real
    MCMC application written in the paper's query language (the intro's
    motivating use-case: declaratively specified Markov Chain Monte
    Carlo).

    State: a relation [color(N, C)] holding a proper colouring plus a
    relation [chosen(I)] holding the node to recolour this step.  One kernel
    application (all rules read the old state, Def 3.1):

    - [color] keeps every node except the chosen one and re-inserts the
      chosen node with a colour drawn uniformly from the colours not used by
      its neighbours (repair-key over an anti-joined "available" relation);
    - [chosen] is re-sampled uniformly from the nodes (repair-key with empty
      key over [v]).

    With [k ≥ Δ + 2] colours the induced chain is ergodic and its
    stationary distribution is uniform over proper colourings (Jerrum), so
    forever-queries compute colouring statistics exactly. *)

val glauber :
  edges:(int * int) list ->
  num_nodes:int ->
  colors:string list ->
  initial:(int * string) list ->
  Prob.Interp.t * Relational.Database.t
(** Raises [Invalid_argument] if [initial] is not a proper colouring of all
    nodes.  Edges are undirected (symmetrised internally). *)

val color_event : node:int -> color:string -> Lang.Event.t
(** The event [ (n<node>, <color>) ∈ color ]. *)

val proper_colorings : edges:(int * int) list -> num_nodes:int -> colors:string list -> int
(** Brute-force count of proper colourings (ground truth for tests). *)

val colorings_with : edges:(int * int) list -> num_nodes:int -> colors:string list -> node:int -> color:string -> int
(** Count of proper colourings assigning [color] to [node]. *)
