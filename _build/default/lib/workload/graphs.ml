module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Database = Relational.Database

type edge = {
  src : int;
  dst : int;
  weight : int;
}

let node_name i = Printf.sprintf "n%d" i

let cycle k =
  if k < 1 then invalid_arg "cycle";
  List.concat
    (List.init k (fun i ->
         [ { src = i; dst = (i + 1) mod k; weight = 1 }; { src = i; dst = i; weight = 1 } ]))

let complete k =
  if k < 1 then invalid_arg "complete";
  List.concat (List.init k (fun i -> List.init k (fun j -> { src = i; dst = j; weight = 1 })))

let line k =
  if k < 2 then invalid_arg "line";
  List.init (k - 1) (fun i -> { src = i; dst = i + 1; weight = 1 })
  @ [ { src = k - 1; dst = k - 1; weight = 1 } ]

let barbell k =
  if k < 2 then invalid_arg "barbell";
  let clique offset =
    List.concat
      (List.init k (fun i ->
           List.init k (fun j -> { src = offset + i; dst = offset + j; weight = 1 })))
  in
  (* Bridge between node k-1 of the left clique and node 0 of the right. *)
  clique 0 @ clique k
  @ [ { src = k - 1; dst = k; weight = 1 }; { src = k; dst = k - 1; weight = 1 } ]

let random rng ~nodes ~out_degree ~max_weight =
  if nodes < 1 || out_degree < 1 || out_degree > nodes then invalid_arg "random graph";
  List.concat
    (List.init nodes (fun i ->
         let rec pick acc pool k =
           if k = 0 then acc
           else begin
             let j = List.nth pool (Random.State.int rng (List.length pool)) in
             pick (j :: acc) (List.filter (fun x -> x <> j) pool) (k - 1)
           end
         in
         let targets = pick [] (List.init nodes Fun.id) out_degree in
         List.map
           (fun dst -> { src = i; dst; weight = 1 + Random.State.int rng max_weight })
           targets))

let to_relation edges =
  Relation.make [ "x1"; "x2"; "x3" ]
    (List.map
       (fun e ->
         Tuple.of_list [ Value.Str (node_name e.src); Value.Str (node_name e.dst); Value.Int e.weight ])
       edges)

let walk_database edges ~start =
  Database.of_list
    [ ("C", Relation.make [ "x1" ] [ Tuple.of_list [ Value.Str (node_name start) ] ]);
      ("e", to_relation edges)
    ]

let walk_source ~target =
  Printf.sprintf "?C(Y) @W :- C(X), e(X, Y, W).\n?- C(%s)." (node_name target)

let reach_source ~start ~target =
  Printf.sprintf
    "C(%s) :- .\nC2(<X>, Y) @W :- C(X), e(X, Y, W).\nC(Y) :- C2(X, Y).\n?- C(%s)."
    (node_name start) (node_name target)
