module Q = Bigq.Q
module Value = Relational.Value
module Tuple = Relational.Tuple
module D = Lang.Datalog

let node i = Value.Str (Printf.sprintf "v%d" i)

(* Deterministic transitive closure from v0: all randomness lives in the
   c-table, as in condition (2') of Theorems 4.1/5.1. *)
let reach_program () =
  [ D.rule (D.deterministic_head "R" [ D.Const (node 0) ]) [];
    D.rule
      (D.deterministic_head "R" [ D.Var "Y" ])
      [ { D.pred = "R"; args = [ D.Var "X" ] }; { D.pred = "e"; args = [ D.Var "X"; D.Var "Y" ] } ]
  ]

let guarded name = Prob.Ctable.CEq (Prob.Ctable.TVar name, Prob.Ctable.TLit (Value.Bool true))

let uncertain_line ~n =
  if n < 1 then invalid_arg "uncertain_line";
  let vars = List.init n (fun i -> Prob.Ctable.flag ~p:Q.half (Printf.sprintf "e%d" i)) in
  let rows =
    List.init n (fun i ->
        { Prob.Ctable.tuple = Tuple.of_list [ node i; node (i + 1) ];
          cond = guarded (Printf.sprintf "e%d" i)
        })
  in
  let ct = Prob.Ctable.make ~vars ~tables:[ ("e", [ "x1"; "x2" ], rows) ] in
  (ct, reach_program (), Lang.Event.make "R" [ node n ])

let uncertain_parallel ~n =
  if n < 1 then invalid_arg "uncertain_parallel";
  let target = Value.Str "t" in
  let mid i = Value.Str (Printf.sprintf "m%d" i) in
  let vars =
    List.concat
      (List.init n (fun i ->
           [ Prob.Ctable.flag ~p:Q.half (Printf.sprintf "a%d" i);
             Prob.Ctable.flag ~p:Q.half (Printf.sprintf "b%d" i)
           ]))
  in
  let rows =
    List.concat
      (List.init n (fun i ->
           [ { Prob.Ctable.tuple = Tuple.of_list [ node 0; mid i ];
               cond = guarded (Printf.sprintf "a%d" i)
             };
             { Prob.Ctable.tuple = Tuple.of_list [ mid i; target ];
               cond = guarded (Printf.sprintf "b%d" i)
             }
           ]))
  in
  let ct = Prob.Ctable.make ~vars ~tables:[ ("e", [ "x1"; "x2" ], rows) ] in
  (ct, reach_program (), Lang.Event.make "R" [ target ])

let expected_line ~n = Q.pow Q.half n
let expected_parallel ~n = Q.sub Q.one (Q.pow (Q.of_ints 3 4) n)
