(** Random probabilistic-datalog program generator for differential testing
    of the evaluation engines against each other. *)

type case = {
  program : Lang.Datalog.program;
  database : Relational.Database.t;
  event : Lang.Event.t;
  source : string;  (** concrete syntax, for shrink-free debugging *)
}

val random_case : Random.State.t -> case
(** A small program assembled from safe rule templates (seed rule, chase
    rules, probabilistic choice rules with and without keys, a negation
    rule) over a random 4-node graph, plus a random ground event.  Programs
    always validate and always reach fixpoints under inflationary
    semantics. *)
