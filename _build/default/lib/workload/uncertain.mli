(** Probabilistic-database workloads with known closed-form answers, used
    to calibrate the exact-vs-approximate experiments (E1/E2). *)

val uncertain_line : n:int -> Prob.Ctable.t * Lang.Datalog.program * Lang.Event.t
(** A path [v0 → v1 → … → vn] where every edge independently exists with
    probability 1/2 (a probabilistic c-table), plus the reachability
    program from [v0].  The event is "[vn] reached", whose probability is
    exactly [1/2ⁿ] — the c-table has [2ⁿ] worlds, so exact evaluation
    scales exponentially while sampling stays linear per run. *)

val uncertain_parallel : n:int -> Prob.Ctable.t * Lang.Datalog.program * Lang.Event.t
(** [n] disjoint two-edge paths from [v0] to [t]; each path exists fully
    with probability 1/4, independently, so
    [Pr(t reached) = 1 − (3/4)ⁿ]. *)

val expected_line : n:int -> Bigq.Q.t
val expected_parallel : n:int -> Bigq.Q.t
