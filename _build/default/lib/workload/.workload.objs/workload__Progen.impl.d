lib/workload/progen.ml: Lang List Option Printf Random Relational Stdlib String
