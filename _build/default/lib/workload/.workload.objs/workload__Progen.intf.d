lib/workload/progen.mli: Lang Random Relational
