lib/workload/uncertain.mli: Bigq Lang Prob
