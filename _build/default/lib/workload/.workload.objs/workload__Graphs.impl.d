lib/workload/graphs.ml: Fun List Printf Random Relational
