lib/workload/uncertain.ml: Bigq Lang List Printf Prob Relational
