lib/workload/coloring.mli: Lang Prob Relational
