lib/workload/graphs.mli: Random Relational
