lib/workload/coloring.ml: Bigq Lang List Printf Prob Relational Stdlib String
