module Q = Bigq.Q
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Database = Relational.Database
module P = Prob.Palgebra

let node_name i = Printf.sprintf "n%d" i
let node i = Value.Str (node_name i)

let symmetrise edges =
  List.sort_uniq Stdlib.compare (List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) edges)


let check_proper edges assignment =
  List.for_all
    (fun (a, b) ->
      match (List.assoc_opt a assignment, List.assoc_opt b assignment) with
      | Some ca, Some cb -> not (String.equal ca cb)
      | _ -> true)
    edges

let glauber ~edges ~num_nodes ~colors ~initial =
  if List.length initial <> num_nodes then invalid_arg "glauber: initial must colour every node";
  if not (check_proper edges initial) then invalid_arg "glauber: initial colouring not proper";
  let sym = symmetrise edges in
  let db =
    Database.of_list
      [ ("v", Relation.make [ "I" ] (List.init num_nodes (fun i -> Tuple.of_list [ node i ])));
        ( "adj",
          Relation.make [ "I"; "J" ]
            (List.map (fun (a, b) -> Tuple.of_list [ node a; node b ]) sym) );
        ("col", Relation.make [ "C" ] (List.map (fun c -> Tuple.of_list [ Value.Str c ]) colors));
        ( "color",
          Relation.make [ "N"; "C" ]
            (List.map (fun (i, c) -> Tuple.of_list [ node i; Value.Str c ]) initial) );
        ("chosen", Relation.make [ "I" ] [ Tuple.of_list [ node 0 ] ])
      ]
  in
  (* Colours used by neighbours of the (old) chosen node. *)
  let blocked =
    P.Project
      ([ "C" ],
       P.Join
         (P.Rename ([ ("J", "N") ], P.Join (P.Rel "chosen", P.Rel "adj")), P.Rel "color"))
  in
  (* (chosen, c) for each colour c free around the chosen node. *)
  let available = P.Product (P.Rel "chosen", P.Diff (P.Rel "col", blocked)) in
  let recolor = P.Rename ([ ("I", "N") ], P.repair_key_all available) in
  (* Rows of the old colouring for every node except the chosen one. *)
  let keep = P.Diff (P.Rel "color", P.Join (P.Rel "color", P.Rename ([ ("I", "N") ], P.Rel "chosen"))) in
  let kernel =
    Prob.Interp.make
      [ ("color", P.Union (keep, recolor));
        ("chosen", P.Project ([ "I" ], P.repair_key_all (P.Rel "v")));
        Prob.Interp.unchanged "v";
        Prob.Interp.unchanged "adj";
        Prob.Interp.unchanged "col"
      ]
  in
  (kernel, db)

let color_event ~node:i ~color = Lang.Event.make "color" [ node i; Value.Str color ]

let enumerate_colorings ~edges ~num_nodes ~colors =
  let rec go assignment i =
    if i = num_nodes then if check_proper edges assignment then [ assignment ] else []
    else
      List.concat_map
        (fun c ->
          let assignment = (i, c) :: assignment in
          (* prune early: check edges among assigned nodes *)
          if check_proper edges assignment then go assignment (i + 1) else [])
        colors
  in
  go [] 0

let proper_colorings ~edges ~num_nodes ~colors =
  List.length (enumerate_colorings ~edges ~num_nodes ~colors)

let colorings_with ~edges ~num_nodes ~colors ~node ~color =
  List.length
    (List.filter
       (fun assignment -> List.assoc_opt node assignment = Some color)
       (enumerate_colorings ~edges ~num_nodes ~colors))
