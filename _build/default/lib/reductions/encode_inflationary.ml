module Q = Bigq.Q
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Database = Relational.Database
module D = Lang.Datalog

let clause_const k = Value.Str (Printf.sprintf "c%d" k)
let lit_const l = Value.Str (Cnf.literal_name l)
let var_const v = Value.Str (Printf.sprintf "v%d" v)

(* O(c_{k-1}, c_k) for k = 1..m, and C(c_k, l) per clause literal. *)
let chain_tuples (f : Cnf.t) =
  let m = List.length f.Cnf.clauses in
  let o_rows = List.init m (fun i -> Tuple.of_list [ clause_const i; clause_const (i + 1) ]) in
  let c_rows =
    List.concat (List.mapi (fun i c -> List.map (fun l -> Tuple.of_list [ clause_const (i + 1); lit_const l ]) c) f.Cnf.clauses)
  in
  (o_rows, c_rows)

let var = fun v -> D.Var v
let atom pred args = { D.pred; args }

(* R(c0) :- . / R(Y) :- R(X), O(X,Y), C(Y,L), A(L). / Done(a) :- R(cm). *)
let core_program (f : Cnf.t) =
  let m = List.length f.Cnf.clauses in
  [ D.rule (D.deterministic_head "R" [ D.Const (clause_const 0) ]) [];
    D.rule
      (D.deterministic_head "R" [ var "Y" ])
      [ atom "R" [ var "X" ]; atom "O" [ var "X"; var "Y" ]; atom "C" [ var "Y"; var "L" ];
        atom "A" [ var "L" ]
      ];
    D.rule
      (D.deterministic_head "Done" [ D.Const (Value.Str "a") ])
      [ atom "R" [ D.Const (clause_const m) ] ]
  ]

let event = Lang.Event.make "Done" [ Value.Str "a" ]

let encode_ctable (f : Cnf.t) =
  let o_rows, c_rows = chain_tuples f in
  let vars = List.init f.Cnf.num_vars (fun i -> Prob.Ctable.flag ~p:Q.half (Printf.sprintf "x%d" (i + 1))) in
  let a_rows =
    List.concat
      (List.init f.Cnf.num_vars (fun i ->
           let v = i + 1 in
           let guard positive =
             Prob.Ctable.CEq
               (Prob.Ctable.TVar (Printf.sprintf "x%d" v), Prob.Ctable.TLit (Value.Bool positive))
           in
           [ { Prob.Ctable.tuple = Tuple.of_list [ lit_const (Cnf.pos v) ]; cond = guard true };
             { Prob.Ctable.tuple = Tuple.of_list [ lit_const (Cnf.neg v) ]; cond = guard false }
           ]))
  in
  let certain rows = List.map (fun tuple -> { Prob.Ctable.tuple; cond = Prob.Ctable.CTrue }) rows in
  let ctable =
    Prob.Ctable.make ~vars
      ~tables:
        [ ("A", [ "x1" ], a_rows);
          ("O", [ "x1"; "x2" ], certain o_rows);
          ("C", [ "x1"; "x2" ], certain c_rows)
        ]
  in
  (ctable, core_program f, event)

let encode_repair_key (f : Cnf.t) =
  let o_rows, c_rows = chain_tuples f in
  let abase =
    List.concat
      (List.init f.Cnf.num_vars (fun i ->
           let v = i + 1 in
           [ Tuple.of_list [ var_const v; lit_const (Cnf.pos v) ];
             Tuple.of_list [ var_const v; lit_const (Cnf.neg v) ]
           ]))
  in
  let db =
    Database.of_list
      [ ("Abase", Relation.make [ "x1"; "x2" ] abase);
        ("O", Relation.make [ "x1"; "x2" ] o_rows);
        ("C", Relation.make [ "x1"; "x2" ] c_rows)
      ]
  in
  (* A2(<V>, L) :- Abase(V, L): uniform choice of one literal per variable. *)
  let choose =
    D.rule
      { D.hpred = "A2";
        hargs =
          [ { D.term = var "V"; is_key = true }; { D.term = var "L"; is_key = false } ];
        weight = None
      }
      [ atom "Abase" [ var "V"; var "L" ] ]
  in
  let copy = D.rule (D.deterministic_head "A" [ var "L" ]) [ atom "A2" [ var "V"; var "L" ] ] in
  (db, (choose :: copy :: core_program f), event)

let expected_probability (f : Cnf.t) =
  Q.div (Q.of_int (Dpll.count_models f)) (Q.pow (Q.of_int 2) f.Cnf.num_vars)
