(** A complete DPLL SAT solver, the classical baseline the reductions are
    verified against: Lemma 4.2 and Lemma 5.2 relate the query probability
    to satisfiability, so the harness cross-checks every instance. *)

val solve : Cnf.t -> bool array option
(** A satisfying assignment (indexed 1..n, slot 0 unused), or [None]. *)

val is_satisfiable : Cnf.t -> bool

val count_models : Cnf.t -> int
(** Exact #SAT by branching with early clause-failure pruning; exponential
    worst case, intended for the small instances of the benchmarks (the
    query probability of the Theorem 4.1 encoding equals
    [count_models / 2{^n}]). *)
