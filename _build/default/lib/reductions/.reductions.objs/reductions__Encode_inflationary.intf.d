lib/reductions/encode_inflationary.mli: Bigq Cnf Lang Prob Relational
