lib/reductions/dpll.mli: Cnf
