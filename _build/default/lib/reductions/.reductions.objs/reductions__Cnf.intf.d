lib/reductions/cnf.mli: Format Random
