lib/reductions/encode_inflationary.ml: Bigq Cnf Dpll Lang List Printf Prob Relational
