lib/reductions/cnf.ml: Array Format List Printf Random
