lib/reductions/dpll.ml: Array Cnf List Option
