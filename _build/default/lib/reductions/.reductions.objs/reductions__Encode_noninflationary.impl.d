lib/reductions/encode_noninflationary.ml: Bigq Cnf Dpll Encode_inflationary Lang List Printf Relational
