lib/reductions/encode_noninflationary.mli: Bigq Cnf Lang Relational
