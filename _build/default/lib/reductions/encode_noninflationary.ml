module Q = Bigq.Q
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Database = Relational.Database
module D = Lang.Datalog

let var v = D.Var v
let atom pred args = { D.pred; args }

let encode (f : Cnf.t) =
  let m = List.length f.Cnf.clauses in
  let o_rows, c_rows = Encode_inflationary.chain_tuples f in
  let abase =
    List.concat
      (List.init f.Cnf.num_vars (fun i ->
           let v = i + 1 in
           [ Tuple.of_list
               [ Value.Str (Printf.sprintf "v%d" v); Value.Str (Cnf.literal_name (Cnf.pos v)) ];
             Tuple.of_list
               [ Value.Str (Printf.sprintf "v%d" v); Value.Str (Cnf.literal_name (Cnf.neg v)) ]
           ]))
  in
  let db =
    Database.of_list
      [ ("Abase", Relation.make [ "x1"; "x2" ] abase);
        ("O", Relation.make [ "x1"; "x2" ] o_rows);
        ("C", Relation.make [ "x1"; "x2" ] c_rows)
      ]
  in
  let clause_const k = Value.Str (Printf.sprintf "c%d" k) in
  let program =
    [ D.rule
        { D.hpred = "A2";
          hargs = [ { D.term = var "V"; is_key = true }; { D.term = var "L"; is_key = false } ];
          weight = None
        }
        [ atom "Abase" [ var "V"; var "L" ] ];
      D.rule (D.deterministic_head "A" [ var "L" ]) [ atom "A2" [ var "V"; var "L" ] ];
      D.rule
        (D.deterministic_head "R" [ D.Const (clause_const 0); var "L" ])
        [ atom "A" [ var "L" ] ];
      D.rule
        (D.deterministic_head "R" [ var "Y"; var "L" ])
        [ atom "R" [ var "X"; var "L" ];
          atom "R" [ var "X"; var "Lp" ];
          atom "O" [ var "X"; var "Y" ];
          atom "C" [ var "Y"; var "Lp" ]
        ];
      D.rule
        (D.deterministic_head "Done" [ D.Const (Value.Str "a") ])
        [ atom "R" [ D.Const (clause_const m); var "L" ] ];
      D.rule (D.deterministic_head "Done" [ var "X" ]) [ atom "Done" [ var "X" ] ]
    ]
  in
  (db, program, Lang.Event.make "Done" [ Value.Str "a" ])

let expected_probability f = if Dpll.is_satisfiable f then Q.one else Q.zero
