type literal = {
  var : int;
  positive : bool;
}

type clause = literal list

type t = {
  num_vars : int;
  clauses : clause list;
}

exception Cnf_error of string

let make ~num_vars clauses =
  if num_vars < 1 then raise (Cnf_error "need at least one variable");
  List.iter
    (fun c ->
      if c = [] then raise (Cnf_error "empty clause");
      List.iter
        (fun l ->
          if l.var < 1 || l.var > num_vars then
            raise (Cnf_error (Printf.sprintf "variable %d out of range" l.var)))
        c)
    clauses;
  { num_vars; clauses }

let pos var = { var; positive = true }
let neg var = { var; positive = false }

let eval_clause a c = List.exists (fun l -> a.(l.var) = l.positive) c
let eval a f = List.for_all (eval_clause a) f.clauses

let random3 rng ~num_vars ~num_clauses =
  if num_vars < 3 then raise (Cnf_error "random3 needs at least 3 variables");
  let clause () =
    let rec distinct3 () =
      let a = 1 + Random.State.int rng num_vars in
      let b = 1 + Random.State.int rng num_vars in
      let c = 1 + Random.State.int rng num_vars in
      if a = b || b = c || a = c then distinct3 () else (a, b, c)
    in
    let a, b, c = distinct3 () in
    List.map (fun v -> { var = v; positive = Random.State.bool rng }) [ a; b; c ]
  in
  make ~num_vars (List.init num_clauses (fun _ -> clause ()))

let unsatisfiable_core n =
  if n >= 3 then begin
    (* All eight sign patterns over variables 1, 2, 3. *)
    let clauses =
      List.concat_map
        (fun s1 ->
          List.concat_map
            (fun s2 ->
              List.map
                (fun s3 ->
                  [ { var = 1; positive = s1 }; { var = 2; positive = s2 }; { var = 3; positive = s3 } ])
                [ true; false ])
            [ true; false ])
        [ true; false ]
    in
    make ~num_vars:n clauses
  end
  else if n >= 1 then make ~num_vars:n [ [ pos 1 ]; [ neg 1 ] ]
  else raise (Cnf_error "need at least one variable")

let literal_name l = Printf.sprintf "%s%d" (if l.positive then "p" else "n") l.var

let pp fmt f =
  let lit fmt l = Format.fprintf fmt "%sx%d" (if l.positive then "" else "¬") l.var in
  Format.fprintf fmt "@[<v>%d vars:@," f.num_vars;
  List.iter
    (fun c ->
      Format.fprintf fmt "(%a)@,"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ∨ ") lit)
        c)
    f.clauses;
  Format.fprintf fmt "@]"
