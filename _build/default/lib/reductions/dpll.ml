(* DPLL with unit propagation and pure-literal elimination.  Assignments are
   partial: None = unassigned. *)

type partial = bool option array

let clause_status (a : partial) clause =
  (* `Sat if some literal true; `Unsat if all false; `Unit l if one literal
     unassigned and the rest false; `Open otherwise. *)
  let unassigned = ref [] in
  let satisfied = ref false in
  List.iter
    (fun (l : Cnf.literal) ->
      match a.(l.Cnf.var) with
      | Some v -> if v = l.Cnf.positive then satisfied := true
      | None -> unassigned := l :: !unassigned)
    clause;
  if !satisfied then `Sat
  else
    match !unassigned with
    | [] -> `Unsat
    | [ l ] -> `Unit l
    | _ -> `Open

exception Conflict

(* Propagate unit clauses to fixpoint; raises Conflict on an empty clause. *)
let rec propagate (f : Cnf.t) (a : partial) =
  let changed = ref false in
  List.iter
    (fun clause ->
      match clause_status a clause with
      | `Unsat -> raise Conflict
      | `Unit l ->
        a.(l.Cnf.var) <- Some l.Cnf.positive;
        changed := true
      | `Sat | `Open -> ())
    f.Cnf.clauses;
  if !changed then propagate f a

let pure_literals (f : Cnf.t) (a : partial) =
  let seen_pos = Array.make (f.Cnf.num_vars + 1) false in
  let seen_neg = Array.make (f.Cnf.num_vars + 1) false in
  List.iter
    (fun clause ->
      if clause_status a clause <> `Sat then
        List.iter
          (fun (l : Cnf.literal) ->
            if a.(l.Cnf.var) = None then
              if l.Cnf.positive then seen_pos.(l.Cnf.var) <- true else seen_neg.(l.Cnf.var) <- true)
          clause)
    f.Cnf.clauses;
  let assigned = ref false in
  for v = 1 to f.Cnf.num_vars do
    if a.(v) = None && (seen_pos.(v) <> seen_neg.(v)) then begin
      a.(v) <- Some seen_pos.(v);
      assigned := true
    end
  done;
  !assigned

let pick_branch_var (f : Cnf.t) (a : partial) =
  let rec go v = if v > f.Cnf.num_vars then None else if a.(v) = None then Some v else go (v + 1) in
  go 1

let solve f =
  let rec go (a : partial) =
    let a = Array.copy a in
    match
      (try
         propagate f a;
         while pure_literals f a do
           propagate f a
         done;
         `Ok
       with Conflict -> `Conflict)
    with
    | `Conflict -> None
    | `Ok -> (
      if List.for_all (fun c -> clause_status a c = `Sat) f.Cnf.clauses then begin
        (* Complete arbitrarily. *)
        Some (Array.map (function Some v -> v | None -> false) a)
      end
      else
        match pick_branch_var f a with
        | None -> None
        | Some v -> (
          let try_value value =
            let a' = Array.copy a in
            a'.(v) <- Some value;
            go a'
          in
          match try_value true with
          | Some model -> Some model
          | None -> try_value false))
  in
  go (Array.make (f.Cnf.num_vars + 1) None)

let is_satisfiable f = Option.is_some (solve f)

let count_models f =
  (* Plain branching with conflict pruning; no pure-literal rule, which is
     unsound for counting. *)
  let rec go (a : partial) v =
    match (try propagate_check a with Conflict -> `Conflict) with
    | `Conflict -> 0
    | `Ok ->
      if v > f.Cnf.num_vars then (if List.for_all (fun c -> Cnf.eval_clause (force a) c) f.Cnf.clauses then 1 else 0)
      else begin
        let branch value =
          let a' = Array.copy a in
          a'.(v) <- Some value;
          go a' (v + 1)
        in
        branch true + branch false
      end
  and propagate_check a =
    List.iter (fun c -> if clause_status a c = `Unsat then raise Conflict) f.Cnf.clauses;
    `Ok
  and force a = Array.map (function Some v -> v | None -> false) a in
  go (Array.make (f.Cnf.num_vars + 1) None) 1
