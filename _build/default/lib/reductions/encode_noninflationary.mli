(** The Theorem 5.1 reduction: 3-SAT → non-inflationary probabilistic
    datalog, showing even *absolute* approximation is NP-hard.

    Under non-inflationary semantics the assignment relation is re-sampled
    every iteration, so the walk keeps trying random assignments forever:

    {v
    A2(<V>, L) :- Abase(V, L).           % fresh assignment every step
    A(L)      :- A2(V, L).
    R(c0, L)  :- A(L).
    R(Y, L)   :- R(X, L), R(X, Lp), O(X, Y), C(Y, Lp).
    Done(a)   :- R(cm, L).
    Done(X)   :- Done(X).                % Done latches forever
    v}

    A sampled assignment survives stage [k] of the [R] pipeline iff it
    satisfies clauses [1..k]; once a satisfying assignment is drawn,
    [Done(a)] holds at every later step, so the query probability is [1]
    when the formula is satisfiable and [0] otherwise (Lemma 5.2) — a gap
    no 0.5-absolute approximation can blur. *)

val encode : Cnf.t -> Relational.Database.t * Lang.Datalog.program * Lang.Event.t
(** Condition (2): repair-key over the base relation [Abase]. *)

val expected_probability : Cnf.t -> Bigq.Q.t
(** [1] iff satisfiable (via {!Dpll.is_satisfiable}), else [0]. *)
