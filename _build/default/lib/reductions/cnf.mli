(** CNF formulas for the paper's 3-SAT reductions (Theorems 4.1 and 5.1). *)

type literal = {
  var : int;  (** 1-based variable index *)
  positive : bool;
}

type clause = literal list

type t = {
  num_vars : int;
  clauses : clause list;
}

exception Cnf_error of string

val make : num_vars:int -> clause list -> t
(** Raises {!Cnf_error} on an empty clause or a variable out of range. *)

val pos : int -> literal
val neg : int -> literal

val eval : bool array -> t -> bool
(** [eval a f]: does assignment [a] (indexed [1..num_vars]; index 0 unused)
    satisfy [f]? *)

val eval_clause : bool array -> clause -> bool

val random3 : Random.State.t -> num_vars:int -> num_clauses:int -> t
(** Random 3-CNF: three distinct variables per clause, random signs. *)

val unsatisfiable_core : int -> t
(** A small formula over [n ≥ 1] variables that is unsatisfiable: all eight
    sign patterns over variables 1..3 when [n ≥ 3], else the contradictory
    pair/quad over fewer variables. *)

val pp : Format.formatter -> t -> unit
val literal_name : literal -> string
(** ["p3"] / ["n3"] — the constants used by the datalog encodings. *)
