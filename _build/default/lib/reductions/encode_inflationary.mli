(** The Theorem 4.1 reduction: 3-SAT → inflationary (linear) probabilistic
    datalog.

    Clauses become constants [c1..cm] chained by [O]; [C] relates each
    clause to its literals; [A] holds one literal per variable, chosen
    uniformly (a random assignment).  The program

    {v
    R(c0) :- .
    R(Y)  :- R(X), O(X, Y), C(Y, L), A(L).
    Done(a) :- R(cm).
    v}

    derives [Done(a)] exactly when the sampled assignment satisfies every
    clause, so the query probability is [#SAT(F) / 2ⁿ] — at least [1/2ⁿ]
    when satisfiable and [0] otherwise (Lemma 4.2), which is what makes
    relative approximation NP-hard. *)

val encode_ctable : Cnf.t -> Prob.Ctable.t * Lang.Datalog.program * Lang.Event.t
(** Condition (2') of the theorem: the assignment relation [A] is a
    probabilistic c-table with one independent fair boolean variable per
    CNF variable; the program itself contains no repair-key. *)

val encode_repair_key : Cnf.t -> Relational.Database.t * Lang.Datalog.program * Lang.Event.t
(** Condition (2): a certain database with [Abase(V, L)] listing both
    literals of each variable; the program picks one per variable with a
    repair-key rule ([A2(<V>, L) :- Abase(V, L)]). *)

val expected_probability : Cnf.t -> Bigq.Q.t
(** Ground truth [#SAT(F) / 2ⁿ] via {!Dpll.count_models}. *)

val chain_tuples : Cnf.t -> Relational.Tuple.t list * Relational.Tuple.t list
(** The ([O], [C]) tuples of the clause chain, shared with the Theorem 5.1
    encoder. *)
