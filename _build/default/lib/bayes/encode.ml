module Q = Bigq.Q
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Database = Relational.Database
module D = Lang.Datalog

let node_const name = Value.Str name
let bool_const b = Value.Bool b

let s_name k = Printf.sprintf "s%d" k
let t_name k = Printf.sprintf "t%d" k

let degrees bn =
  List.sort_uniq Int.compare (List.map (fun n -> List.length n.Bn.parents) (Bn.nodes bn))

let encode bn =
  let ks = degrees bn in
  let db =
    List.fold_left
      (fun db k ->
        let members = List.filter (fun n -> List.length n.Bn.parents = k) (Bn.nodes bn) in
        let s_rows =
          List.map
            (fun n -> Tuple.of_list (node_const n.Bn.name :: List.map node_const n.Bn.parents))
            members
        in
        let t_rows =
          List.concat_map
            (fun n ->
              List.concat_map
                (fun (parent_vals, p_true) ->
                  let row v0 p =
                    if Q.is_zero p then []
                    else
                      [ Tuple.of_list
                          ((node_const n.Bn.name :: bool_const v0 :: List.map bool_const parent_vals)
                          @ [ Value.Rat p ])
                      ]
                  in
                  row true p_true @ row false (Q.sub Q.one p_true))
                n.Bn.cpt)
            members
        in
        let s_cols = Lang.Compile.canonical_columns (k + 1) in
        let t_cols = Lang.Compile.canonical_columns (k + 3) in
        Database.add (s_name k) (Relation.make s_cols s_rows)
          (Database.add (t_name k) (Relation.make t_cols t_rows) db))
      Database.empty ks
  in
  let rule_for_k k =
    let n_var i = Printf.sprintf "N%d" i in
    let v_var i = Printf.sprintf "V%d" i in
    let head =
      { D.hpred = "V";
        hargs =
          [ { D.term = D.Var (n_var 0); is_key = true };
            { D.term = D.Var (v_var 0); is_key = false }
          ];
        weight = Some "P"
      }
    in
    let t_atom =
      { D.pred = t_name k;
        args =
          (D.Var (n_var 0) :: D.Var (v_var 0) :: List.init k (fun i -> D.Var (v_var (i + 1))))
          @ [ D.Var "P" ]
      }
    in
    let s_atom = { D.pred = s_name k; args = List.init (k + 1) (fun i -> D.Var (n_var i)) } in
    let v_atoms =
      List.init k (fun i -> { D.pred = "V"; args = [ D.Var (n_var (i + 1)); D.Var (v_var (i + 1)) ] })
    in
    D.rule head (t_atom :: s_atom :: v_atoms)
  in
  (db, List.map rule_for_k ks)

let marginal_query bn query =
  let db, program = encode bn in
  let event_rule =
    D.rule
      (D.deterministic_head "q" [])
      (List.map (fun (x, v) -> { D.pred = "V"; args = [ D.Const (node_const x); D.Const (bool_const v) ] }) query)
  in
  (db, program @ [ event_rule ], Lang.Event.make "q" [])
