module Q = Bigq.Q

let joint bn =
  List.fold_left
    (fun partials node ->
      List.concat_map
        (fun (assignment, p) ->
          let p_true = Bn.prob_true bn node.Bn.name assignment in
          [ ((node.Bn.name, true) :: assignment, Q.mul p p_true);
            ((node.Bn.name, false) :: assignment, Q.mul p (Q.sub Q.one p_true))
          ])
        partials)
    [ ([], Q.one) ]
    (Bn.nodes bn)

let marginal bn query =
  Q.sum
    (List.filter_map
       (fun (assignment, p) ->
         if List.for_all (fun (x, v) -> List.assoc_opt x assignment = Some v) query then Some p
         else None)
       (joint bn))
