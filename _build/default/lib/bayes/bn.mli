(** Boolean Bayesian networks (Example 3.10).

    Each node carries a conditional probability table: for every assignment
    of its parents (in declaration order) the probability that the node is
    true. *)

type node = {
  name : string;
  parents : string list;
  cpt : (bool list * Bigq.Q.t) list;
      (** one row per parent assignment; probabilities in [0, 1] *)
}

type t

exception Bn_error of string

val make : node list -> t
(** Validates: unique names, parents declared, acyclic (nodes must be given
    in topological order), CPT covering all [2^k] parent assignments
    exactly once, probabilities in range. *)

val nodes : t -> node list
val node_names : t -> string list
val find : t -> string -> node

val prob_true : t -> string -> (string * bool) list -> Bigq.Q.t
(** [prob_true bn x parent_assignment]: the CPT entry. *)

val max_in_degree : t -> int
val pp : Format.formatter -> t -> unit
