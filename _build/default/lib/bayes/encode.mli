(** The Example 3.10 encoding of a Bayesian network into probabilistic
    datalog.

    The input database holds, per in-degree [k] occurring in the network, a
    structure relation [s{k}(N0, N1, ..., Nk)] and a CPT relation
    [t{k}(N0, V0, V1, ..., Vk, P)]; the program has one rule per [k]:

    {v
    V(<N0>, V0) @P :- t{k}(N0, V0, V1, ..., Vk, P),
                      s{k}(N0, N1, ..., Nk),
                      V(N1, V1), ..., V(Nk, Vk).
    v}

    Under inflationary semantics every node receives exactly one value (a
    repair-key choice weighted by the CPT column), so the fixpoint of [V]
    is a sample of the joint distribution. *)

val encode : Bn.t -> Relational.Database.t * Lang.Datalog.program
(** Zero-probability CPT rows are omitted (repair-key weights must be
    positive); a node whose group has a single row is chosen
    deterministically. *)

val marginal_query :
  Bn.t -> (string * bool) list -> Relational.Database.t * Lang.Datalog.program * Lang.Event.t
(** {!encode} extended with the event rule
    [q :- V(x, vx), V(y, vy), ...] and the 0-ary event [q] — evaluating the
    resulting inflationary query yields [Pr(X = vx ∧ Y = vy ∧ …)]. *)
