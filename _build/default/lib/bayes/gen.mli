(** Random Bayesian networks for tests and benchmark sweeps. *)

val random :
  Random.State.t -> num_nodes:int -> max_in_degree:int -> Bn.t
(** Nodes [b1..bn] in topological order; each picks up to [max_in_degree]
    parents uniformly among its predecessors; CPT entries are random
    rationals [i/8] with [i ∈ 1..7] (bounded away from 0 and 1). *)
