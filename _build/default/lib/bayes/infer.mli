(** Exact inference by joint enumeration — the classical baseline the
    datalog encoding is validated against. *)

val joint : Bn.t -> ((string * bool) list * Bigq.Q.t) list
(** All [2ⁿ] complete assignments with their joint probabilities (zero
    entries included); probabilities sum to 1. *)

val marginal : Bn.t -> (string * bool) list -> Bigq.Q.t
(** [marginal bn [(x, true); (y, false)]] is [Pr(X ∧ ¬Y)]. *)
