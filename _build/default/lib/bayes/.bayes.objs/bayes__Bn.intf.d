lib/bayes/bn.mli: Bigq Format
