lib/bayes/encode.mli: Bn Lang Relational
