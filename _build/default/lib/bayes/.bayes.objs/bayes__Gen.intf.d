lib/bayes/gen.mli: Bn Random
