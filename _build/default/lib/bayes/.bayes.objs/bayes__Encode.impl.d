lib/bayes/encode.ml: Bigq Bn Int Lang List Printf Relational
