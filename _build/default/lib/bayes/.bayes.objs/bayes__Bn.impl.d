lib/bayes/bn.ml: Bigq Format Hashtbl List String
