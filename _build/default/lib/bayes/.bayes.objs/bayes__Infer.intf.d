lib/bayes/infer.mli: Bigq Bn
