lib/bayes/infer.ml: Bigq Bn List
