lib/bayes/gen.ml: Bigq Bn List Printf Random String
