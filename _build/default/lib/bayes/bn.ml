module Q = Bigq.Q

type node = {
  name : string;
  parents : string list;
  cpt : (bool list * Q.t) list;
}

type t = node list

exception Bn_error of string

let err fmt = Format.kasprintf (fun s -> raise (Bn_error s)) fmt

let rec all_assignments k =
  if k = 0 then [ [] ]
  else begin
    let rest = all_assignments (k - 1) in
    List.concat_map (fun tail -> [ true :: tail; false :: tail ]) rest
  end

let make nodes =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n.name then err "duplicate node %s" n.name;
      List.iter
        (fun p ->
          if not (Hashtbl.mem seen p) then
            err "node %s lists parent %s not declared before it (need topological order)" n.name p)
        n.parents;
      let expected = all_assignments (List.length n.parents) in
      let keys = List.map fst n.cpt in
      if List.length keys <> List.length expected then
        err "node %s: CPT has %d rows, expected %d" n.name (List.length keys) (List.length expected);
      List.iter
        (fun a ->
          match List.assoc_opt a n.cpt with
          | None -> err "node %s: CPT missing a parent assignment" n.name
          | Some p ->
            if Q.sign p < 0 || Q.compare p Q.one > 0 then
              err "node %s: probability %s out of range" n.name (Q.to_string p))
        expected;
      Hashtbl.replace seen n.name ())
    nodes;
  nodes

let nodes t = t
let node_names t = List.map (fun n -> n.name) t

let find t name =
  match List.find_opt (fun n -> String.equal n.name name) t with
  | Some n -> n
  | None -> err "unknown node %s" name

let prob_true t x assignment =
  let n = find t x in
  let key =
    List.map
      (fun p ->
        match List.assoc_opt p assignment with
        | Some v -> v
        | None -> err "prob_true: parent %s unassigned" p)
      n.parents
  in
  List.assoc key n.cpt

let max_in_degree t = List.fold_left (fun acc n -> max acc (List.length n.parents)) 0 t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun n ->
      Format.fprintf fmt "%s <- [%s]:" n.name (String.concat "," n.parents);
      List.iter
        (fun (a, p) ->
          Format.fprintf fmt " (%s)->%s"
            (String.concat "" (List.map (fun b -> if b then "1" else "0") a))
            (Q.to_string p))
        n.cpt;
      Format.fprintf fmt "@,")
    t;
  Format.fprintf fmt "@]"
