module Q = Bigq.Q

let rec all_assignments k =
  if k = 0 then [ [] ]
  else List.concat_map (fun tail -> [ true :: tail; false :: tail ]) (all_assignments (k - 1))

let random rng ~num_nodes ~max_in_degree =
  if num_nodes < 1 then invalid_arg "random: need at least one node";
  let name i = Printf.sprintf "b%d" (i + 1) in
  let nodes =
    List.init num_nodes (fun i ->
        let available = List.init i name in
        let k = Random.State.int rng (1 + min max_in_degree (List.length available)) in
        (* Sample k distinct predecessors. *)
        let rec pick acc pool k =
          if k = 0 || pool = [] then acc
          else begin
            let j = Random.State.int rng (List.length pool) in
            let chosen = List.nth pool j in
            pick (chosen :: acc) (List.filter (fun x -> not (String.equal x chosen)) pool) (k - 1)
          end
        in
        let parents = pick [] available k in
        let cpt =
          List.map
            (fun a -> (a, Q.of_ints (1 + Random.State.int rng 7) 8))
            (all_assignments (List.length parents))
        in
        { Bn.name = name i; parents; cpt })
  in
  Bn.make nodes
