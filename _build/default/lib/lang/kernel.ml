module Q = Bigq.Q
module Dist = Prob.Dist
module Database = Relational.Database

type t = {
  apply : Database.t -> Database.t Dist.t;
  sample : Random.State.t -> Database.t -> Database.t;
}

let of_interp i =
  { apply = Prob.Interp.apply i; sample = (fun rng db -> Prob.Interp.apply_sampled rng i db) }

let of_fn ~apply ~sample = { apply; sample }
let apply k = k.apply
let sample k = k.sample

let seq k1 k2 =
  {
    apply = (fun db -> Dist.bind ~compare:Database.compare (k1.apply db) k2.apply);
    sample = (fun rng db -> k2.sample rng (k1.sample rng db));
  }

let mixture weighted =
  if weighted = [] then invalid_arg "Kernel.mixture: empty";
  List.iter (fun (q, _) -> if Q.sign q <= 0 then invalid_arg "Kernel.mixture: non-positive weight") weighted;
  if not (Q.is_one (Q.sum (List.map fst weighted))) then
    invalid_arg "Kernel.mixture: weights must sum to 1";
  let chooser = Dist.make ~compare:Int.compare (List.mapi (fun i (q, _) -> (i, q)) weighted) in
  let kernels = Array.of_list (List.map snd weighted) in
  {
    apply =
      (fun db ->
        Dist.make ~compare:Database.compare
          (List.concat_map
             (fun (q, k) ->
               List.map (fun (db', p) -> (db', Q.mul q p)) (Dist.support (k.apply db)))
             weighted));
    sample = (fun rng db -> kernels.(Dist.sample rng chooser).sample rng db);
  }

let iterate n k =
  if n < 1 then invalid_arg "Kernel.iterate: need n >= 1";
  let rec go acc i = if i = 1 then acc else go (seq acc k) (i - 1) in
  go k n
