type t = {
  kernel : Prob.Interp.t;
  event : Event.t;
}

let make ~kernel ~event = { kernel; event }

let step q db = Prob.Interp.apply q.kernel db
let step_sampled rng q db = Prob.Interp.apply_sampled rng q.kernel db

let is_inflationary_at q db =
  List.for_all
    (fun (db', _) -> Relational.Database.subsumes db' db)
    (Prob.Dist.support (step q db))

let pp fmt q =
  Format.fprintf fmt "@[<v>forever {@,%a}@,event: %a@]" Prob.Interp.pp q.kernel Event.pp q.event
