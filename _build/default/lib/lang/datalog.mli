(** Probabilistic datalog with probabilistic rules (Section 3.3).

    Syntax extends classical datalog by the repair-key construct: in a rule
    head the key arguments are marked (the paper underlines them) and the
    head may be postfixed [@P] where [P] is a body variable binding the
    weight.  A rule whose head arguments are all keys is an ordinary
    deterministic datalog rule. *)

type term =
  | Var of string
  | Const of Relational.Value.t

type atom = {
  pred : string;
  args : term list;
}

type head_arg = {
  term : term;
  is_key : bool;  (** marked (underlined) argument *)
}

type head = {
  hpred : string;
  hargs : head_arg list;
  weight : string option;  (** the [@P] weight variable *)
}

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type constraint_ = {
  lhs : term;
  cmp : cmp;
  rhs : term;
}

type rule = {
  head : head;
  body : atom list;  (** positive body atoms *)
  neg : atom list;
      (** negated body atoms ([!R(...)]) — tested against the same (old)
          state the positive atoms are; every variable they use must be
          bound by a positive atom (safety) *)
  constraints : constraint_ list;
      (** comparison guards ([X < Y], [X != c]) over positively bound
          variables and constants *)
}

type program = rule list

exception Datalog_error of string

val deterministic_head : string -> term list -> head
(** A head with every argument marked: a classical datalog rule. *)

val rule : head -> atom list -> rule
(** Smart constructor for a negation-free rule; validates with
    {!validate_rule}. *)

val rule_with_neg : head -> atom list -> atom list -> rule
(** [rule_with_neg head body neg]: a rule with negated body atoms. *)

val rule_full : head -> body:atom list -> neg:atom list -> constraints:constraint_ list -> rule

val validate_rule : rule -> unit
(** Checks range restriction (every head variable occurs in the body), that
    the weight variable occurs in the body and differs from head placement
    constraints, and that atoms are well-formed.  Raises
    {!Datalog_error}. *)

val validate : program -> unit

val idb_predicates : program -> string list
(** Predicates occurring in some head, sorted. *)

val edb_predicates : program -> string list
(** Predicates occurring only in bodies, sorted. *)

val rule_vars : rule -> string list
val is_probabilistic_rule : rule -> bool
(** True when some head argument is not a key: the rule makes a random
    choice per key group. *)

val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit
