module Palgebra = Prob.Palgebra

type t = Forever.t

exception Not_inflationary of string

(* R := R ∪ e, possibly nested unions with Rel R at a leaf, or R := R. *)
let syntactically_inflationary name q =
  let rec has_self = function
    | Palgebra.Rel n -> String.equal n name
    | Palgebra.Union (a, b) -> has_self a || has_self b
    | Palgebra.Const _ | Palgebra.Select _ | Palgebra.Project _ | Palgebra.Rename _
    | Palgebra.Product _ | Palgebra.Join _ | Palgebra.Diff _ | Palgebra.Extend _
    | Palgebra.Aggregate _ | Palgebra.Repair_key _ -> false
  in
  has_self q

let of_forever (q : Forever.t) =
  List.iter
    (fun (name, rule) ->
      if not (syntactically_inflationary name rule) then
        raise
          (Not_inflationary
             (Format.asprintf "rule for %s is not of the form %s := %s ∪ …" name name name)))
    (Prob.Interp.bindings q.Forever.kernel);
  q

let of_forever_unchecked (q : Forever.t) = q

let of_additions ~event rules =
  let kernel =
    Prob.Interp.make
      (List.map (fun (name, q) -> (name, Palgebra.Union (Palgebra.Rel name, q))) rules)
  in
  Forever.make ~kernel ~event

let forever q = q
let kernel (q : t) = q.Forever.kernel
let event (q : t) = q.Forever.event

let is_fixpoint q db =
  match Prob.Dist.is_point (Forever.step q db) with
  | Some db' -> Relational.Database.equal db db'
  | None -> false
