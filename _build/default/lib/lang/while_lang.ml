module Q = Bigq.Q
module Database = Relational.Database
module Dist = Prob.Dist
module Db_map = Map.Make (Relational.Database)

type test = {
  event : Event.t;
  negated : bool;
}

type t =
  | Skip
  | Step of Prob.Interp.t
  | Seq of t * t
  | If of test * t * t
  | While of test * t

let holds test db =
  let present = Event.holds test.event db in
  if test.negated then not present else present

let run_sampled ?(max_steps = 100_000) rng prog db =
  let steps = ref 0 in
  (* Continuation-passing over an explicit stack to keep loops iterative. *)
  let rec go konts db =
    match konts with
    | [] -> db
    | Skip :: k -> go k db
    | Step i :: k ->
      incr steps;
      if !steps > max_steps then invalid_arg "While_lang.run_sampled: step budget exceeded";
      go k (Prob.Interp.apply_sampled rng i db)
    | Seq (a, b) :: k -> go (a :: b :: k) db
    | If (t, a, b) :: k -> go ((if holds t db then a else b) :: k) db
    | While (t, body) :: k ->
      if holds t db then go (body :: While (t, body) :: k) db else go k db
  in
  go [ prog ] db

let eval_partial ~fuel prog db =
  if fuel < 0 then invalid_arg "eval_partial: negative fuel";
  let completed = ref Db_map.empty in
  let completed_steps = ref Q.zero in
  let residual = ref Q.zero in
  (* Bound on fuel-free control transitions, to catch non-productive loops
     such as while true do skip. *)
  let control_budget = (fuel + 1) * 10_000 in
  let rec go konts db prob steps control =
    if control > control_budget then
      invalid_arg "While_lang.eval_partial: non-productive loop (no Step inside While?)";
    match konts with
    | [] ->
      completed :=
        Db_map.update db
          (fun prev -> Some (Q.add (Option.value ~default:Q.zero prev) prob))
          !completed;
      completed_steps := Q.add !completed_steps (Q.mul prob (Q.of_int steps))
    | Skip :: k -> go k db prob steps (control + 1)
    | Step i :: k ->
      if steps >= fuel then residual := Q.add !residual prob
      else
        List.iter
          (fun (db', p) -> go k db' (Q.mul prob p) (steps + 1) 0)
          (Dist.support (Prob.Interp.apply i db))
    | Seq (a, b) :: k -> go (a :: b :: k) db prob steps (control + 1)
    | If (t, a, b) :: k -> go ((if holds t db then a else b) :: k) db prob steps (control + 1)
    | While (t, body) :: k ->
      if holds t db then go (body :: While (t, body) :: k) db prob steps (control + 1)
      else go k db prob steps (control + 1)
  in
  go [ prog ] db Q.one 0 0;
  (Db_map.bindings !completed, !residual)

let eval_dist ~fuel prog db =
  let outcomes, residual = eval_partial ~fuel prog db in
  if not (Q.is_zero residual) then
    invalid_arg
      (Printf.sprintf "While_lang.eval_dist: %s residual mass after fuel %d"
         (Q.to_string residual) fuel);
  Dist.make ~compare:Database.compare outcomes

let expected_steps ~fuel prog db =
  (* Re-run tracking only the step expectation. *)
  let expectation = ref Q.zero in
  let residual = ref Q.zero in
  let control_budget = (fuel + 1) * 10_000 in
  let rec go konts db prob steps control =
    if control > control_budget then
      invalid_arg "While_lang.expected_steps: non-productive loop";
    match konts with
    | [] -> expectation := Q.add !expectation (Q.mul prob (Q.of_int steps))
    | Skip :: k -> go k db prob steps (control + 1)
    | Step i :: k ->
      if steps >= fuel then begin
        residual := Q.add !residual prob;
        expectation := Q.add !expectation (Q.mul prob (Q.of_int fuel))
      end
      else
        List.iter
          (fun (db', p) -> go k db' (Q.mul prob p) (steps + 1) 0)
          (Dist.support (Prob.Interp.apply i db))
    | Seq (a, b) :: k -> go (a :: b :: k) db prob steps (control + 1)
    | If (t, a, b) :: k -> go ((if holds t db then a else b) :: k) db prob steps (control + 1)
    | While (t, body) :: k ->
      if holds t db then go (body :: While (t, body) :: k) db prob steps (control + 1)
      else go k db prob steps (control + 1)
  in
  go [ prog ] db Q.one 0 0;
  (!expectation, !residual)
