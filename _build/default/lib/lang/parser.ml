module Value = Relational.Value

type parsed = {
  program : Datalog.program;
  facts : (string * Value.t list) list;
  vars : Prob.Ctable.var list;
  cond_facts : (string * Value.t list * Prob.Ctable.cond) list;
  event : Event.t option;
  events : Event.t list;
}

exception Parse_error of string

(* --- Lexer ------------------------------------------------------------ *)

type token =
  | IDENT of string  (* starts lowercase: constant or predicate *)
  | UIDENT of string  (* starts uppercase or underscore: variable *)
  | NUMBER of Value.t
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | LANGLE
  | RANGLE
  | AT
  | TURNSTILE  (* :- *)
  | QUERY  (* ?- *)
  | QMARK  (* ? prefix: probabilistic head with empty default key *)
  | BANG  (* ! prefix: negated body atom *)
  | LBRACE
  | RBRACE
  | COLON
  | EQUALS
  | NEQ  (* != *)
  | LE  (* <= *)
  | GE  (* >= *)
  | EOF

let fail line fmt = Format.kasprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s))) fmt

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_alpha c || is_digit c || c = '_' || c = '\''

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = tokens := (tok, !line) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' || (c = '/' && !i + 1 < n && src.[!i + 1] = '/') then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '<' && !i + 1 < n && src.[!i + 1] = '=' then (push LE; i := !i + 2)
    else if c = '>' && !i + 1 < n && src.[!i + 1] = '=' then (push GE; i := !i + 2)
    else if c = '(' then (push LPAREN; incr i)
    else if c = ')' then (push RPAREN; incr i)
    else if c = ',' then (push COMMA; incr i)
    else if c = '<' then (push LANGLE; incr i)
    else if c = '>' then (push RANGLE; incr i)
    else if c = '@' then (push AT; incr i)
    else if c = ':' && !i + 1 < n && src.[!i + 1] = '-' then (push TURNSTILE; i := !i + 2)
    else if c = ':' then (push COLON; incr i)
    else if c = '{' then (push LBRACE; incr i)
    else if c = '}' then (push RBRACE; incr i)
    else if c = '=' then (push EQUALS; incr i)
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then (push NEQ; i := !i + 2)
    else if c = '?' && !i + 1 < n && src.[!i + 1] = '-' then (push QUERY; i := !i + 2)
    else if c = '?' then (push QMARK; incr i)
    else if c = '!' then (push BANG; incr i)
    else if c = '"' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && src.[!j] <> '"' do
        incr j
      done;
      if !j >= n then fail !line "unterminated string";
      push (STRING (String.sub src start (!j - start)));
      i := !j + 1
    end
    else if is_digit c || ((c = '-' || c = '+') && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      if c = '-' || c = '+' then incr i;
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      (* Decimal point only when followed by a digit (else it ends the clause). *)
      if !i + 1 < n && src.[!i] = '.' && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done
      end;
      if !i + 1 < n && src.[!i] = '/' && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done
      end;
      let text = String.sub src start (!i - start) in
      let v =
        match Value.of_string text with
        | Value.Int _ | Value.Rat _ -> Value.of_string text
        | _ -> fail !line "bad number %s" text
      in
      push (NUMBER v)
    end
    else if c = '.' then (push DOT; incr i)
    else if is_alpha c || c = '_' then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      if (c >= 'A' && c <= 'Z') || c = '_' then push (UIDENT text) else push (IDENT text)
    end
    else fail !line "unexpected character %c" c
  done;
  push EOF;
  List.rev !tokens

(* --- Parser ----------------------------------------------------------- *)

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> (EOF, 0) | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  let t, line = peek st in
  if t = tok then advance st else fail line "expected %s" what

(* A term inside parentheses; [allow_key] permits the <X> key marker. *)
let parse_term st ~allow_key =
  let t, line = peek st in
  match t with
  | LANGLE when allow_key ->
    advance st;
    let t, line = peek st in
    (match t with
     | UIDENT v ->
       advance st;
       expect st RANGLE "'>'";
       (Datalog.Var v, true)
     | IDENT c ->
       advance st;
       expect st RANGLE "'>'";
       (Datalog.Const (Value.of_string c), true)
     | NUMBER v ->
       advance st;
       expect st RANGLE "'>'";
       (Datalog.Const v, true)
     | _ -> fail line "expected a term after '<'")
  | UIDENT v ->
    advance st;
    (Datalog.Var v, false)
  | IDENT c ->
    advance st;
    (Datalog.Const (Value.of_string c), false)
  | NUMBER v ->
    advance st;
    (Datalog.Const v, false)
  | STRING s ->
    advance st;
    (Datalog.Const (Value.Str s), false)
  | _ -> fail line "expected a term"

let parse_pred_name st =
  let t, line = peek st in
  match t with
  | IDENT name | UIDENT name ->
    advance st;
    name
  | _ -> fail line "expected a predicate name"

(* pred(term, ...); zero-argument predicates are written without parens. *)
let parse_atomish st ~allow_key =
  let name = parse_pred_name st in
  let t, _ = peek st in
  if t <> LPAREN then (name, [])
  else begin
    advance st;
    let rec args acc =
      let term = parse_term st ~allow_key in
      let t, line = peek st in
      match t with
      | COMMA ->
        advance st;
        args (term :: acc)
      | RPAREN ->
        advance st;
        List.rev (term :: acc)
      | _ -> fail line "expected ',' or ')'"
    in
    let t, _ = peek st in
    if t = RPAREN then begin
      advance st;
      (name, [])
    end
    else (name, args [])
  end

(* A body item: a (possibly negated) atom, or a comparison constraint such
   as [X < Y] or [W != 0].  An identifier followed by a comparison operator
   is a constraint; otherwise it heads an atom. *)
type body_item =
  | Positive of Datalog.atom
  | Negative of Datalog.atom
  | Constraint of Datalog.constraint_

let comparison_op = function
  | EQUALS -> Some Datalog.Eq
  | NEQ -> Some Datalog.Ne
  | LANGLE -> Some Datalog.Lt
  | LE -> Some Datalog.Le
  | RANGLE -> Some Datalog.Gt
  | GE -> Some Datalog.Ge
  | _ -> None

let parse_body_item st =
  let t, _ = peek st in
  if t = BANG then begin
    advance st;
    let name, args = parse_atomish st ~allow_key:false in
    Negative { Datalog.pred = name; args = List.map fst args }
  end
  else begin
    (* Look ahead: <term> <cmp-op> means a constraint. *)
    let is_constraint =
      match st.toks with
      | (IDENT _, _) :: (op, _) :: _
      | (UIDENT _, _) :: (op, _) :: _
      | (NUMBER _, _) :: (op, _) :: _
      | (STRING _, _) :: (op, _) :: _ -> Option.is_some (comparison_op op)
      | _ -> false
    in
    if is_constraint then begin
      let lhs, _ = parse_term st ~allow_key:false in
      let op, line = peek st in
      match comparison_op op with
      | Some cmp ->
        advance st;
        let rhs, _ = parse_term st ~allow_key:false in
        Constraint { Datalog.lhs; cmp; rhs }
      | None -> fail line "expected a comparison operator"
    end
    else begin
      let name, args = parse_atomish st ~allow_key:false in
      Positive { Datalog.pred = name; args = List.map fst args }
    end
  end

(* Returns (positive atoms, negated atoms, constraints), in source order. *)
let rec parse_body st pos neg cs =
  let item = parse_body_item st in
  let pos, neg, cs =
    match item with
    | Positive a -> (a :: pos, neg, cs)
    | Negative a -> (pos, a :: neg, cs)
    | Constraint c -> (pos, neg, c :: cs)
  in
  let t, line = peek st in
  match t with
  | COMMA ->
    advance st;
    parse_body st pos neg cs
  | DOT ->
    advance st;
    (List.rev pos, List.rev neg, List.rev cs)
  | _ -> fail line "expected ',' or '.' in rule body"

let head_of ~line name args weight ~qmark =
  let any_marked = List.exists snd args in
  let probabilistic = any_marked || Option.is_some weight || qmark in
  ignore line;
  let hargs =
    List.map
      (fun (term, marked) ->
        { Datalog.term; is_key = (if probabilistic then marked else true) })
      args
  in
  { Datalog.hpred = name; hargs; weight }

(* A literal value in var-domain or condition position. *)
let parse_value st =
  let t, line = peek st in
  match t with
  | IDENT c ->
    advance st;
    Value.of_string c
  | NUMBER v ->
    advance st;
    v
  | STRING str ->
    advance st;
    Value.Str str
  | _ -> fail line "expected a constant value"

(* var x = { true : 1/2, false : 1/2 }. *)
let parse_var_decl st =
  let name =
    let t, line = peek st in
    match t with
    | IDENT n | UIDENT n ->
      advance st;
      n
    | _ -> fail line "expected a variable name after 'var'"
  in
  expect st EQUALS "'='";
  expect st LBRACE "'{'";
  let rec entries acc =
    let v = parse_value st in
    expect st COLON "':'";
    let p =
      let t, line = peek st in
      match t with
      | NUMBER n -> (
        advance st;
        try Value.to_q n with Invalid_argument _ -> fail line "expected a probability")
      | _ -> fail line "expected a probability"
    in
    let t, line = peek st in
    match t with
    | COMMA ->
      advance st;
      entries ((v, p) :: acc)
    | RBRACE ->
      advance st;
      List.rev ((v, p) :: acc)
    | _ -> fail line "expected ',' or '}'"
  in
  let domain = entries [] in
  expect st DOT "'.'";
  { Prob.Ctable.vname = name; domain }

(* x = true, y != false  (conjunction). *)
let parse_condition st =
  let comparison () =
    let name =
      let t, line = peek st in
      match t with
      | IDENT n | UIDENT n ->
        advance st;
        n
      | _ -> fail line "expected a variable name in condition"
    in
    let t, line = peek st in
    match t with
    | EQUALS ->
      advance st;
      Prob.Ctable.CEq (Prob.Ctable.TVar name, Prob.Ctable.TLit (parse_value st))
    | NEQ ->
      advance st;
      Prob.Ctable.CNeq (Prob.Ctable.TVar name, Prob.Ctable.TLit (parse_value st))
    | _ -> fail line "expected '=' or '!=' in condition"
  in
  let rec conj acc =
    let c = comparison () in
    let acc = Prob.Ctable.CAnd (acc, c) in
    let t, _ = peek st in
    if t = COMMA then begin
      advance st;
      conj acc
    end
    else acc
  in
  let first = comparison () in
  let t, _ = peek st in
  if t = COMMA then begin
    advance st;
    conj first
  end
  else first

let ground_values ~line args =
  List.map
    (fun (term, _) ->
      match term with
      | Datalog.Const v -> v
      | Datalog.Var v -> fail line "variable %s in a ground clause" v)
    args

let ctable_of parsed =
  if parsed.vars = [] && parsed.cond_facts = [] then None
  else begin
    let rows = Hashtbl.create 16 in
    let note name vs cond =
      let prev = Option.value ~default:[] (Hashtbl.find_opt rows name) in
      Hashtbl.replace rows name
        ({ Prob.Ctable.tuple = Relational.Tuple.of_list vs; cond } :: prev)
    in
    List.iter (fun (name, vs) -> note name vs Prob.Ctable.CTrue) parsed.facts;
    List.iter (fun (name, vs, cond) -> note name vs cond) parsed.cond_facts;
    let tables =
      Hashtbl.fold
        (fun name rs acc ->
          let arity =
            match rs with
            | r :: _ -> Relational.Tuple.arity r.Prob.Ctable.tuple
            | [] -> 0
          in
          (name, Compile.canonical_columns arity, List.rev rs) :: acc)
        rows []
    in
    Some (Prob.Ctable.make ~vars:parsed.vars ~tables)
  end

let parse src =
  let st = { toks = tokenize src } in
  let rules = ref [] in
  let facts = ref [] in
  let vars = ref [] in
  let cond_facts = ref [] in
  let events = ref [] in
  let rec loop () =
    let t, line = peek st in
    match t with
    | EOF -> ()
    | QUERY ->
      advance st;
      let name, args = parse_atomish st ~allow_key:false in
      expect st DOT "'.'";
      events := Event.make name (ground_values ~line args) :: !events;
      loop ()
    | IDENT "var" when (match st.toks with _ :: (IDENT _, _) :: (EQUALS, _) :: _ | _ :: (UIDENT _, _) :: (EQUALS, _) :: _ -> true | _ -> false) ->
      advance st;
      vars := parse_var_decl st :: !vars;
      loop ()
    | _ ->
      let qmark =
        let t, _ = peek st in
        if t = QMARK then begin
          advance st;
          true
        end
        else false
      in
      let name, args = parse_atomish st ~allow_key:true in
      (* optional @W *)
      let weight =
        let t, line = peek st in
        if t = AT then begin
          advance st;
          match peek st with
          | UIDENT v, _ ->
            advance st;
            Some v
          | _ -> fail line "expected a weight variable after '@'"
        end
        else None
      in
      let t, line = peek st in
      (match t with
       | IDENT "when" ->
         advance st;
         if Option.is_some weight || qmark || List.exists snd args then
           fail line "conditional facts cannot carry key markers or weights";
         let cond = parse_condition st in
         expect st DOT "'.'";
         cond_facts := (name, ground_values ~line args, cond) :: !cond_facts
       | DOT ->
         advance st;
         if Option.is_some weight || qmark || List.exists snd args then
           fail line "facts cannot carry key markers or weights";
         if List.exists (fun (term, _) -> match term with Datalog.Var _ -> true | _ -> false) args
         then
           (* Non-ground headless clause: treat as a rule with empty body is
              unsafe; reject. *)
           fail line "fact with variables (did you forget the body?)"
         else facts := (name, ground_values ~line args) :: !facts
       | TURNSTILE ->
         advance st;
         let body, neg, constraints =
           let t, _ = peek st in
           if t = DOT then begin
             advance st;
             ([], [], [])
           end
           else parse_body st [] [] []
         in
         let head = head_of ~line name args weight ~qmark in
         rules := Datalog.rule_full head ~body ~neg ~constraints :: !rules
       | _ -> fail line "expected '.' or ':-'");
      loop ()
  in
  loop ();
  let program = List.rev !rules in
  Datalog.validate program;
  let events = List.rev !events in
  let parsed_value = {
    program;
    facts = List.rev !facts;
    vars = List.rev !vars;
    cond_facts = List.rev !cond_facts;
    event = (match events with e :: _ -> Some e | [] -> None);
    events;
  }
  in
  (* Validate the probabilistic part eagerly (distributions sum to 1,
     conditions only use declared variables). *)
  ignore (ctable_of parsed_value);
  parsed_value

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

let database_of_facts facts =
  let module DB = Relational.Database in
  let module Rel = Relational.Relation in
  let by_pred = Hashtbl.create 16 in
  List.iter
    (fun (name, vs) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_pred name) in
      Hashtbl.replace by_pred name (vs :: prev))
    facts;
  Hashtbl.fold
    (fun name rows db ->
      let arities = List.sort_uniq Int.compare (List.map List.length rows) in
      (match arities with
       | [ _ ] | [] -> ()
       | _ -> raise (Parse_error (Printf.sprintf "facts for %s have inconsistent arities" name)));
      let k = match rows with [] -> 0 | r :: _ -> List.length r in
      let cols = Compile.canonical_columns k in
      DB.add name (Rel.make cols (List.map Relational.Tuple.of_list rows)) db)
    by_pred DB.empty

