module Q = Bigq.Q
module P = Prob.Palgebra
module Ctable = Prob.Ctable
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Database = Relational.Database
module Pred = Relational.Pred

let var_relation x = Printf.sprintf "__var_%s" x
let choice_relation x = Printf.sprintf "__choice_%s" x

let unit_rel = Relation.make [] [ Tuple.of_list [] ]
let unit_expr = P.Const unit_rel
let empty_expr = P.Const (Relation.empty [])

(* A zero-column expression that holds the empty tuple iff the condition is
   true under the *old-state* variable choices. *)
let rec guard cond =
  match cond with
  | Ctable.CTrue -> unit_expr
  | Ctable.CEq (a, b) -> eq_guard a b
  | Ctable.CNeq (a, b) -> P.Diff (unit_expr, eq_guard a b)
  | Ctable.CAnd (a, b) -> P.Product (guard a, guard b)
  | Ctable.COr (a, b) -> P.Union (guard a, guard b)
  | Ctable.CNot a -> P.Diff (unit_expr, guard a)

and eq_guard a b =
  let choice_val x = P.Project ([ "val" ], P.Rel (choice_relation x)) in
  match (a, b) with
  | Ctable.TLit u, Ctable.TLit v -> if Value.equal u v then unit_expr else empty_expr
  | Ctable.TVar x, Ctable.TLit v | Ctable.TLit v, Ctable.TVar x ->
    P.Project ([], P.Select (Pred.eq (Pred.col "val") (Pred.const v), choice_val x))
  | Ctable.TVar x, Ctable.TVar y ->
    (* Natural join on the shared "val" column: nonempty iff equal. *)
    P.Project ([], P.Join (choice_val x, choice_val y))

let kernel_rules ct =
  let vars = Ctable.vars ct in
  (* Auxiliary base tables and their initial choices. *)
  let db =
    List.fold_left
      (fun db (v : Ctable.var) ->
        let rows =
          List.map (fun (x, p) -> Tuple.of_list [ x; Value.Rat p ]) v.Ctable.domain
        in
        let first =
          match v.Ctable.domain with
          | (x, p) :: _ -> Tuple.of_list [ x; Value.Rat p ]
          | [] -> assert false
        in
        Database.add (var_relation v.Ctable.vname)
          (Relation.make [ "val"; "w" ] rows)
          (Database.add (choice_relation v.Ctable.vname)
             (Relation.make [ "val"; "w" ] [ first ])
             db))
      Database.empty vars
  in
  let choice_rules =
    List.map
      (fun (v : Ctable.var) ->
        (choice_relation v.Ctable.vname, P.repair_key_all ~weight:"w" (P.Rel (var_relation v.Ctable.vname))))
      vars
  in
  (* The conventional start state: the world of the first-domain-value
     valuation, so the initial state is itself a consistent possible world
     (long-run answers are independent of this choice; transients such as
     hitting times are measured from this designated world). *)
  let first_valuation =
    List.map
      (fun (v : Ctable.var) ->
        match v.Ctable.domain with
        | (x, _) :: _ -> (v.Ctable.vname, x)
        | [] -> assert false)
      vars
  in
  let first_world = Ctable.instantiate ct first_valuation in
  (* Each c-table relation is re-materialised from the old choices. *)
  let table_rules, db =
    List.fold_left
      (fun (rules, db) (name, cols, rows) ->
        let row_expr (r : Ctable.row) =
          P.Product (P.Const (Relation.make cols [ r.Ctable.tuple ]), guard r.Ctable.cond)
        in
        let expr =
          List.fold_left
            (fun acc r -> P.Union (acc, row_expr r))
            (P.Const (Relation.empty cols))
            rows
        in
        ((name, expr) :: rules, Database.add name (Database.find name first_world) db))
      ([], db)
      (Ctable.tables ct)
  in
  (choice_rules @ List.rev table_rules, db)
