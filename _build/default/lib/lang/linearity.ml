let idb_atoms_in_body program (r : Datalog.rule) =
  let idb = Datalog.idb_predicates program in
  List.filter
    (fun (a : Datalog.atom) -> List.mem a.Datalog.pred idb)
    (r.Datalog.body @ r.Datalog.neg)

let is_linear program =
  List.for_all (fun r -> List.length (idb_atoms_in_body program r) <= 1) program

let nonlinear_rules program =
  List.filter (fun r -> List.length (idb_atoms_in_body program r) > 1) program

let repair_key_on_base_only program =
  List.for_all
    (fun (r : Datalog.rule) ->
      (not (Datalog.is_probabilistic_rule r)) || idb_atoms_in_body program r = [])
    program
