(* Longest path in the IDB dependency DAG, by depth-first search with cycle
   detection (states: 0 unvisited, 1 on stack, 2 done). *)

let dependency_depth program =
  let idb = Datalog.idb_predicates program in
  let deps pred =
    List.concat_map
      (fun (r : Datalog.rule) ->
        if String.equal r.Datalog.head.Datalog.hpred pred then
          List.filter_map
            (fun (a : Datalog.atom) ->
              if List.mem a.Datalog.pred idb then Some a.Datalog.pred else None)
            (r.Datalog.body @ r.Datalog.neg)
        else [])
      program
    |> List.sort_uniq String.compare
  in
  let state = Hashtbl.create 16 in
  let depth = Hashtbl.create 16 in
  let exception Cycle in
  let rec visit pred =
    match Hashtbl.find_opt state pred with
    | Some 1 -> raise Cycle
    | Some 2 -> Hashtbl.find depth pred
    | _ ->
      Hashtbl.replace state pred 1;
      let d =
        1 + List.fold_left (fun acc dep -> max acc (visit dep)) 0 (deps pred)
      in
      Hashtbl.replace state pred 2;
      Hashtbl.replace depth pred d;
      d
  in
  match List.fold_left (fun acc pred -> max acc (visit pred)) 0 idb with
  | d -> if idb = [] then Some 0 else Some d
  | exception Cycle -> None

let mixing_bound program ~pc_table_depth =
  Option.map (fun d -> d + pc_table_depth) (dependency_depth program)

let is_feedforward program = Option.is_some (dependency_depth program)
