(** Syntactic restrictions studied in the paper: linear datalog (at most one
    IDB atom per rule body) and repair-key placement. *)

val is_linear : Datalog.program -> bool
(** Every rule body contains at most one IDB atom. *)

val nonlinear_rules : Datalog.program -> Datalog.rule list

val repair_key_on_base_only : Datalog.program -> bool
(** Every probabilistic rule's body mentions only EDB predicates — the
    "repair-key applied only on base relations" restriction of
    Theorems 4.1/5.1. *)
