lib/lang/datalog.ml: Format Hashtbl List Option Relational String
