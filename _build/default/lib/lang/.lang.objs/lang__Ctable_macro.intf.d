lib/lang/ctable_macro.mli: Prob Relational
