lib/lang/while_lang.ml: Bigq Event List Map Option Printf Prob Relational
