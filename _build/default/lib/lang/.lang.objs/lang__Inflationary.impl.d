lib/lang/inflationary.ml: Forever Format List Prob Relational String
