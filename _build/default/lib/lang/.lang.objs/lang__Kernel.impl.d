lib/lang/kernel.ml: Array Bigq Int List Prob Random Relational
