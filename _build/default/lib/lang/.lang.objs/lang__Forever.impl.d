lib/lang/forever.ml: Event Format List Prob Relational
