lib/lang/tractable.ml: Datalog Hashtbl List Option String
