lib/lang/parser.ml: Compile Datalog Event Format Hashtbl Int List Option Printf Prob Relational String
