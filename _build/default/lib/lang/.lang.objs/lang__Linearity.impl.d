lib/lang/linearity.ml: Datalog List
