lib/lang/forever.mli: Event Format Prob Random Relational
