lib/lang/event.ml: Format Relational
