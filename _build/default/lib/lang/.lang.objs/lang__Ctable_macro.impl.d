lib/lang/ctable_macro.ml: Bigq List Printf Prob Relational
