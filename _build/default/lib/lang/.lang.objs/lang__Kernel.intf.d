lib/lang/kernel.mli: Bigq Prob Random Relational
