lib/lang/while_lang.mli: Bigq Event Prob Random Relational
