lib/lang/compile.ml: Ctable_macro Datalog Format Hashtbl List Printf Prob Relational String
