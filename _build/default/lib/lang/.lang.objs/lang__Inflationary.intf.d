lib/lang/inflationary.mli: Event Forever Prob Relational
