lib/lang/linearity.mli: Datalog
