lib/lang/tractable.mli: Datalog
