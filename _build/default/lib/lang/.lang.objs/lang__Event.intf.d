lib/lang/event.mli: Format Relational
