lib/lang/parser.mli: Datalog Event Prob Relational
