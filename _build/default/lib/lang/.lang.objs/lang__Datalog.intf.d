lib/lang/datalog.mli: Format Relational
