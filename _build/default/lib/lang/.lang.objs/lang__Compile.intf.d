lib/lang/compile.mli: Datalog Prob Relational
