(** Transition-kernel combinators.

    A kernel is any stochastic map over database states.  Probabilistic
    first-order interpretations (Def 3.1) are the paper's syntax for
    kernels; these combinators compose them — sequencing, probabilistic
    mixtures and fixed iteration — while staying closed under the Markov
    property, so composite kernels still drive forever-queries.  Mixtures
    in particular are the standard MCMC idiom of alternating move types. *)

type t

val of_interp : Prob.Interp.t -> t
val of_fn :
  apply:(Relational.Database.t -> Relational.Database.t Prob.Dist.t) ->
  sample:(Random.State.t -> Relational.Database.t -> Relational.Database.t) ->
  t
(** Wrap an arbitrary stochastic map; [sample] must draw from the same
    distribution [apply] denotes. *)

val apply : t -> Relational.Database.t -> Relational.Database.t Prob.Dist.t
val sample : t -> Random.State.t -> Relational.Database.t -> Relational.Database.t

val seq : t -> t -> t
(** [seq k1 k2]: apply [k1], then [k2]. *)

val mixture : (Bigq.Q.t * t) list -> t
(** [mixture [(q1, k1); ...]]: with probability [qi] apply [ki].  Raises
    [Invalid_argument] unless the weights are positive and sum to 1. *)

val iterate : int -> t -> t
(** [iterate n k]: [n ≥ 1] successive applications. *)
