(** Inflationary queries — Definition 3.4: forever-queries whose kernels
    only ever add tuples, so every computation path reaches a fixpoint (with
    probability 1) and the query asks for the probability that the event
    holds at the fixpoint. *)

type t = private Forever.t

exception Not_inflationary of string

val of_forever : Forever.t -> t
(** Accepts the query if each kernel rule is syntactically inflationary,
    i.e. of the form [R := R ∪ …] (or [R := R]).  Raises
    {!Not_inflationary} otherwise.  Syntactic means sound but incomplete;
    use {!of_forever_unchecked} for kernels known inflationary by
    construction (e.g. compiled datalog). *)

val of_forever_unchecked : Forever.t -> t

val of_additions : event:Event.t -> (string * Prob.Palgebra.t) list -> t
(** [of_additions ~event rules] builds the kernel [R := R ∪ q] for each
    [(R, q)] in [rules]; relations of the schema not mentioned must be added
    with [q = Rel R] upstream — here every listed relation receives the
    union form, so pass [(R, Const empty)]-style no-ops if needed. *)

val forever : t -> Forever.t
val kernel : t -> Prob.Interp.t
val event : t -> Event.t

val is_fixpoint : t -> Relational.Database.t -> bool
(** True when the kernel maps the state to itself with probability 1. *)
