(** Query events (Definition 3.2): low-complexity boolean tests on the
    current database state.  Following the paper we use membership tests
    [~t ∈ R]. *)

type t = {
  relation : string;
  tuple : Relational.Tuple.t;
}

val make : string -> Relational.Value.t list -> t
(** [make "Done" [Str "a"]] is the event [ (a) ∈ Done ]. *)

val holds : t -> Relational.Database.t -> bool
(** True when the tuple is present; a missing relation counts as false. *)

val pp : Format.formatter -> t -> unit
