(** Concrete syntax for probabilistic datalog programs.

    {v
    % A comment (also //).  Variables start with an uppercase letter,
    % constants with lowercase; numbers are integer/rational constants.

    edge(a, b, 1).                 % ground fact (builds the EDB)
    edge(a, c, 3).

    C2(<X>, Y) @W :- C(X), edge(X, Y, W).   % probabilistic rule:
                                            %   <X> marks the repair-key key,
                                            %   @W binds the weight column
    C(Y) :- C2(X, Y).                       % deterministic rule
    C(a).                                   % fact for an IDB is fine too

    ?- C(b).                        % the query event
    v}

    A rule with no [<...>] marker and no [@] is classical datalog (all head
    arguments act as keys).  If [@W] or a marker is present, the key set is
    exactly the marked arguments (possibly empty: one global choice). *)

type parsed = {
  program : Datalog.program;
  facts : (string * Relational.Value.t list) list;
  vars : Prob.Ctable.var list;
      (** random variables declared with [var x = { true: 1/2, false: 1/2 }.] *)
  cond_facts : (string * Relational.Value.t list * Prob.Ctable.cond) list;
      (** conditional facts [A(p1) when x = true.] *)
  event : Event.t option;  (** the first [?-] event, if any *)
  events : Event.t list;  (** all [?-] events, in source order *)
}

exception Parse_error of string
(** Message includes the line number. *)

val parse : string -> parsed
val parse_file : string -> parsed

val database_of_facts : (string * Relational.Value.t list) list -> Relational.Database.t
(** Builds relations with canonical columns [x1..xk]. *)

val ctable_of : parsed -> Prob.Ctable.t option
(** [Some ct] when the input declares random variables or conditional
    facts: the probabilistic c-table holding ALL the input's facts
    (unconditional facts get condition true).  [None] for certain
    inputs. *)
