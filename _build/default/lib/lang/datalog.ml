type term =
  | Var of string
  | Const of Relational.Value.t

type atom = {
  pred : string;
  args : term list;
}

type head_arg = {
  term : term;
  is_key : bool;
}

type head = {
  hpred : string;
  hargs : head_arg list;
  weight : string option;
}

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type constraint_ = {
  lhs : term;
  cmp : cmp;
  rhs : term;
}

type rule = {
  head : head;
  body : atom list;
  neg : atom list;
  constraints : constraint_ list;
}

type program = rule list

exception Datalog_error of string

let err fmt = Format.kasprintf (fun s -> raise (Datalog_error s)) fmt

let deterministic_head pred args =
  { hpred = pred; hargs = List.map (fun term -> { term; is_key = true }) args; weight = None }

let atom_vars a = List.filter_map (function Var v -> Some v | Const _ -> None) a.args

let body_vars body = List.sort_uniq String.compare (List.concat_map atom_vars body)

let rule_vars r =
  let head_vars =
    List.filter_map (fun ha -> match ha.term with Var v -> Some v | Const _ -> None) r.head.hargs
  in
  List.sort_uniq String.compare
    (head_vars @ body_vars r.body @ body_vars r.neg @ Option.to_list r.head.weight)

let validate_rule r =
  (* Zero-argument heads are allowed: Example 3.10 uses a propositional
     event predicate [q]. *)
  let bvars = body_vars r.body in
  List.iter
    (fun a ->
      List.iter
        (fun v ->
          if not (List.mem v bvars) then
            err "variable %s occurs only under negation in a rule for %s (unsafe)" v r.head.hpred)
        (atom_vars a))
    r.neg;
  List.iter
    (fun c ->
      List.iter
        (fun t ->
          match t with
          | Var v ->
            if not (List.mem v bvars) then
              err "variable %s occurs only in a comparison in a rule for %s (unsafe)" v r.head.hpred
          | Const _ -> ())
        [ c.lhs; c.rhs ])
    r.constraints;
  List.iter
    (fun ha ->
      match ha.term with
      | Const _ -> ()
      | Var v ->
        if not (List.mem v bvars) then
          err "head variable %s of %s does not occur in the body (range restriction)" v r.head.hpred)
    r.head.hargs;
  (match r.head.weight with
   | None -> ()
   | Some w ->
     if not (List.mem w bvars) then err "weight variable %s does not occur in the body" w);
  (* Arity consistency per predicate is checked at program level. *)
  ()

let rule_full head ~body ~neg ~constraints =
  let r = { head; body; neg; constraints } in
  validate_rule r;
  r

let rule_with_neg head body neg = rule_full head ~body ~neg ~constraints:[]
let rule head body = rule_with_neg head body []

let arities program =
  let tbl = Hashtbl.create 16 in
  let note pred n =
    match Hashtbl.find_opt tbl pred with
    | None -> Hashtbl.replace tbl pred n
    | Some m -> if m <> n then err "predicate %s used with arities %d and %d" pred m n
  in
  List.iter
    (fun r ->
      note r.head.hpred (List.length r.head.hargs);
      List.iter (fun a -> note a.pred (List.length a.args)) (r.body @ r.neg))
    program;
  tbl

let validate program =
  List.iter validate_rule program;
  ignore (arities program)

let idb_predicates program =
  List.sort_uniq String.compare (List.map (fun r -> r.head.hpred) program)

let edb_predicates program =
  let idb = idb_predicates program in
  List.sort_uniq String.compare
    (List.concat_map
       (fun r ->
         List.filter_map
           (fun a -> if List.mem a.pred idb then None else Some a.pred)
           (r.body @ r.neg))
       program)

let is_probabilistic_rule r = List.exists (fun ha -> not ha.is_key) r.head.hargs

let pp_term fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Const c -> Relational.Value.pp fmt c

let pp_atom fmt a =
  Format.fprintf fmt "%s(%a)" a.pred
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_term)
    a.args

(* Concrete syntax: a rule where all head arguments are keys (a classical
   deterministic rule) prints unmarked; in probabilistic rules the key
   arguments are wrapped in <...> (the paper's underline). *)
let pp_rule fmt r =
  let probabilistic = is_probabilistic_rule r in
  let pp_head_arg fmt ha =
    if probabilistic && ha.is_key then Format.fprintf fmt "<%a>" pp_term ha.term
    else pp_term fmt ha.term
  in
  if probabilistic then Format.pp_print_string fmt "?";
  Format.fprintf fmt "%s(%a)%s" r.head.hpred
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_head_arg)
    r.head.hargs
    (match r.head.weight with Some w when probabilistic -> " @" ^ w | Some _ | None -> "");
  let pp_neg_atom fmt a = Format.fprintf fmt "!%a" pp_atom a in
  (match (r.body, r.neg) with
   | [], [] -> ()
   | body, neg ->
     Format.pp_print_string fmt " :- ";
     let parts =
       List.map (fun a -> Format.asprintf "%a" pp_atom a) body
       @ List.map (fun a -> Format.asprintf "%a" pp_neg_atom a) neg
     in
     Format.pp_print_string fmt (String.concat ", " parts));
  Format.pp_print_string fmt "."

let pp_program fmt program =
  Format.fprintf fmt "@[<v>";
  List.iter (fun r -> Format.fprintf fmt "%a@," pp_rule r) program;
  Format.fprintf fmt "@]"
