(** Structured probabilistic while-programs over database states.

    The paper's forever-query (Definition 3.2) is the non-terminating loop
    of the classical while-language [AHV95]; this module provides the rest
    of that language with probabilistic steps: sequencing, conditionals and
    condition-controlled loops whose atomic statement is a probabilistic
    first-order interpretation.  Terminating programs denote a distribution
    over output databases; the exact evaluator computes it by unfolding
    (with fuel, since a probabilistic loop may have unbounded but
    almost-surely-finite runtime — e.g. a geometric loop's residual mass
    decays like [q^fuel]). *)

type test = {
  event : Event.t;
  negated : bool;  (** test that the tuple is ABSENT *)
}

type t =
  | Skip
  | Step of Prob.Interp.t  (** one kernel application *)
  | Seq of t * t
  | If of test * t * t
  | While of test * t  (** repeat body while the test holds *)

val holds : test -> Relational.Database.t -> bool

val run_sampled :
  ?max_steps:int -> Random.State.t -> t -> Relational.Database.t -> Relational.Database.t
(** Execute one random run.  [max_steps] (default 100000) bounds the total
    number of [Step] applications; raises [Invalid_argument] past it. *)

val eval_partial :
  fuel:int -> t -> Relational.Database.t ->
  (Relational.Database.t * Bigq.Q.t) list * Bigq.Q.t
(** Exact output distribution, truncated: [(outcomes, residual)] where
    [outcomes] are the terminated paths (merged, probabilities exact) and
    [residual] is the mass of paths still running after [fuel] [Step]
    applications.  [residual = 0] means the distribution is complete. *)

val eval_dist : fuel:int -> t -> Relational.Database.t -> Relational.Database.t Prob.Dist.t
(** Like {!eval_partial} but requires completeness: raises
    [Invalid_argument] if any path exhausts the fuel. *)

val expected_steps :
  fuel:int -> t -> Relational.Database.t -> Bigq.Q.t * Bigq.Q.t
(** [(lower bound on E[steps], residual mass)]: the truncated expectation
    of the number of [Step] applications; exact when residual is 0. *)
