(** Non-inflationary ("forever") queries — Definition 3.2.

    A forever-query is a transition kernel [Q] (a probabilistic first-order
    interpretation) plus a query event [e].  Running [State := Q(State)]
    forever induces a random walk over database instances; the query result
    is the long-run average probability that [e] holds. *)

type t = {
  kernel : Prob.Interp.t;
  event : Event.t;
}

val make : kernel:Prob.Interp.t -> event:Event.t -> t

val step : t -> Relational.Database.t -> Relational.Database.t Prob.Dist.t
(** One application of the transition kernel. *)

val step_sampled : Random.State.t -> t -> Relational.Database.t -> Relational.Database.t

val is_inflationary_at : t -> Relational.Database.t -> bool
(** Whether every world of [Q(A)] contains [A] — Definition 3.4 checked at
    one state.  (The definition quantifies over all databases; engines use
    this dynamic check on the states they actually visit.) *)

val pp : Format.formatter -> t -> unit
