(** Probabilistic c-tables as "macros" (Sections 3.1 and 3.3).

    The paper treats a pc-table as an abbreviation for repair-key
    applications over ground facts.  Under *inflationary* semantics those
    rules fire once, so evaluating over a pc-table means averaging over its
    worlds (handled by {!Eval.Exact_inflationary.eval_ctable} /
    {!Eval.Sample_inflationary.ctable_sampler}).  Under *non-inflationary*
    semantics the macro rules fire at every step: the random variables are
    re-drawn and the conditional tuples re-materialised each iteration.
    This module performs that expansion: it turns a c-table into kernel
    rules that re-sample its relations every step. *)

val kernel_rules :
  Prob.Ctable.t ->
  (string * Prob.Palgebra.t) list * Relational.Database.t
(** [kernel_rules ct] returns one transition rule per c-table relation
    (a fresh sample of the relation, built from per-variable repair-key
    choices over auxiliary [__var_<x>] base tables) and the database
    fragment holding those auxiliary tables.  The auxiliary tables
    themselves must be carried unchanged by the enclosing kernel (they are
    returned in the database; add {!Prob.Interp.unchanged} rules for
    them).

    Convention: the returned database starts at the world of the
    first-domain-value valuation (choices and table contents consistent).
    Long-run (stationary / latched) answers do not depend on the start
    state; transient quantities such as hitting times are measured from
    this designated world. *)

val var_relation : string -> string
(** Name of the auxiliary table for variable [x]. *)
