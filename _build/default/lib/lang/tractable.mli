(** Syntactic tractability analysis — the paper's closing open problem asks
    for "syntactic counterparts" of chain families with small mixing time
    (Section 5.1 / Section 6).  This module identifies one such class:

    {b Feed-forward programs.}  If the IDB dependency graph of a
    non-inflationary program is acyclic, then under the per-step-resampled
    pc-table semantics every relation's content at time [t] is a function of
    the fresh random choices made in the last [depth] steps only, where
    [depth] is the longest dependency chain.  Consequently the induced
    Markov chain is {e exactly} stationary after [depth] steps from any
    start state: its mixing time is at most [depth], independent of the
    database size.  (Recursive programs — e.g. the Theorem 5.1 reduction,
    whose [Done] latches forever — are excluded, as they must be: latching
    is precisely unbounded memory.)

    The bound is verified empirically in the test-suite with exact rational
    total-variation distances: [max_tv_at chain π depth = 0]. *)

val dependency_depth : Datalog.program -> int option
(** [Some d] when the IDB dependency graph (edges from head predicates to
    the IDB predicates in their bodies, both positive and negated) is
    acyclic; [d ≥ 1] is the length of the longest chain, counting one step
    per stratum.  [None] when some IDB predicate depends (transitively) on
    itself. *)

val mixing_bound : Datalog.program -> pc_table_depth:int -> int option
(** The mixing-time bound for the non-inflationary kernel compiled from the
    program: [dependency_depth] plus the depth of the pc-table macro
    pipeline ([pc_table_depth] is 2 when the input declares random
    variables — one step for the choice relations, one for the conditional
    tables — and 0 otherwise). *)

val is_feedforward : Datalog.program -> bool
