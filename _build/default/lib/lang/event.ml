module Database = Relational.Database
module Relation = Relational.Relation
module Tuple = Relational.Tuple

type t = {
  relation : string;
  tuple : Tuple.t;
}

let make relation values = { relation; tuple = Tuple.of_list values }

let holds e db =
  match Database.find_opt e.relation db with
  | None -> false
  | Some r -> Tuple.arity e.tuple = Relation.arity r && Relation.mem e.tuple r

let pp fmt e = Format.fprintf fmt "%a ∈ %s" Tuple.pp e.tuple e.relation
