lib/bigq/nat.mli: Format
