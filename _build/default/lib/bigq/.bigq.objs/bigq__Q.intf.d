lib/bigq/q.mli: Bigint Format
