lib/bigq/nat.ml: Array Format List Printf Stdlib String
