lib/bigq/bigint.ml: Format Nat Stdlib String
