lib/bigq/bigint.mli: Format Nat
