lib/bigq/q.ml: Bigint Format List Nat Stdlib String
