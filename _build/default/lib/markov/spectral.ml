module Q = Bigq.Q

let slem ?(max_iter = 100_000) ?(tol = 1e-12) chain =
  if not (Conductance.is_reversible chain) then
    raise (Chain.Chain_error "slem: chain is not reversible");
  let n = Chain.num_states chain in
  if n = 1 then 0.0
  else begin
    let pi = Array.map Q.to_float (Stationary.exact chain) in
    let rows =
      Array.init n (fun i -> List.map (fun (j, p) -> (j, Q.to_float p)) (Chain.succ chain i))
    in
    let apply f =
      Array.init n (fun i -> List.fold_left (fun acc (j, p) -> acc +. (p *. f.(j))) 0.0 rows.(i))
    in
    let inner f g =
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (pi.(i) *. f.(i) *. g.(i))
      done;
      !acc
    in
    let ones = Array.make n 1.0 in
    let deflate f =
      let c = inner f ones in
      Array.mapi (fun i x -> x -. (c *. ones.(i))) f
    in
    let norm f = sqrt (inner f f) in
    (* A deterministic, generically non-degenerate start vector. *)
    let f = ref (deflate (Array.init n (fun i -> float_of_int ((i mod 7) + 1)))) in
    let lambda = ref 0.0 in
    (try
       for _ = 1 to max_iter do
         let nf = norm !f in
         if nf < 1e-300 then begin
           lambda := 0.0;
           raise Exit
         end;
         let g = Array.map (fun x -> x /. nf) !f in
         let pg = deflate (apply g) in
         let l = norm pg in
         if abs_float (l -. !lambda) < tol then begin
           lambda := l;
           raise Exit
         end;
         lambda := l;
         f := pg
       done
     with Exit -> ());
    Float.min 1.0 !lambda
  end

let relaxation_time ?max_iter ?tol chain =
  let l = slem ?max_iter ?tol chain in
  if l >= 1.0 then infinity else 1.0 /. (1.0 -. l)

let mixing_bounds ~eps chain =
  let t_rel = relaxation_time chain in
  let pi = Stationary.exact chain in
  let pi_min = Array.fold_left (fun acc p -> min acc (Q.to_float p)) infinity pi in
  ((t_rel -. 1.0) *. log (1.0 /. (2.0 *. eps)), t_rel *. log (1.0 /. (eps *. pi_min)))
