let indicator_trace walk event =
  Array.of_list (List.map (fun s -> if event s then 1.0 else 0.0) walk)

let mean t =
  if Array.length t = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 t /. float_of_int (Array.length t)

let variance t =
  let n = Array.length t in
  if n < 2 then 0.0
  else begin
    let m = mean t in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 t /. float_of_int (n - 1)
  end

let autocorrelation t lag =
  let n = Array.length t in
  if lag < 0 || lag >= n then invalid_arg "autocorrelation: bad lag";
  let m = mean t in
  let denom = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 t in
  if denom = 0.0 then 0.0
  else begin
    let num = ref 0.0 in
    for i = 0 to n - 1 - lag do
      num := !num +. ((t.(i) -. m) *. (t.(i + lag) -. m))
    done;
    !num /. denom
  end

let effective_sample_size ?max_lag t =
  let n = Array.length t in
  if n = 0 then 0.0
  else begin
    let cap = Option.value ~default:(n / 2) max_lag in
    let rec sum_rho acc lag =
      if lag > cap then acc
      else begin
        let rho = autocorrelation t lag in
        if rho <= 0.0 then acc else sum_rho (acc +. rho) (lag + 1)
      end
    in
    let s = sum_rho 0.0 1 in
    float_of_int n /. (1.0 +. (2.0 *. s))
  end

let gelman_rubin traces =
  let m = List.length traces in
  if m < 2 then invalid_arg "gelman_rubin: need at least two chains";
  let n =
    match traces with
    | t :: rest ->
      let n = Array.length t in
      if n < 2 then invalid_arg "gelman_rubin: traces too short";
      List.iter (fun t' -> if Array.length t' <> n then invalid_arg "gelman_rubin: lengths differ") rest;
      n
    | [] -> assert false
  in
  let means = List.map mean traces in
  let grand = List.fold_left ( +. ) 0.0 means /. float_of_int m in
  let b =
    float_of_int n /. float_of_int (m - 1)
    *. List.fold_left (fun acc mu -> acc +. ((mu -. grand) ** 2.0)) 0.0 means
  in
  let w = List.fold_left (fun acc t -> acc +. variance t) 0.0 traces /. float_of_int m in
  if w = 0.0 then 1.0
  else begin
    let nf = float_of_int n in
    let var_plus = ((nf -. 1.0) /. nf *. w) +. (b /. nf) in
    sqrt (var_plus /. w)
  end
