(** Expected hitting and return times, solved exactly over the rationals. *)

val expected_steps : 'a Chain.t -> targets:int list -> Bigq.Q.t option array
(** [expected_steps chain ~targets] gives, per state, the expected number of
    steps for a walk to first reach any target ([Some 0] on targets
    themselves), or [None] for states from which the targets are reached
    with probability < 1 (then the expectation is infinite).  Solves the
    first-step equations [h(s) = 1 + Σ P(s,u) h(u)] by Gaussian
    elimination. *)

val expected_return_time : 'a Chain.t -> int -> Bigq.Q.t
(** Expected first return time to a state of an irreducible chain.  By the
    positive-recurrence theorem this equals [1 / π(i)]; computed from the
    hitting times so tests can confirm the identity independently.  Raises
    {!Chain.Chain_error} when the chain is not irreducible. *)
