type t = {
  component_of : int array;
  members : int list array;
  dag_succ : int list array;
}

(* Iterative Tarjan to survive deep chains without stack overflow. *)
let tarjan n succ =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let n_components = ref 0 in
  let component_of = Array.make n (-1) in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      (* Each frame is (node, remaining successors). *)
      let call = ref [ (root, ref (succ root)) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !call <> [] do
        match !call with
        | [] -> ()
        | (v, rest) :: above -> (
          match !rest with
          | w :: tl ->
            rest := tl;
            if index.(w) = -1 then begin
              index.(w) <- !next_index;
              lowlink.(w) <- !next_index;
              incr next_index;
              stack := w :: !stack;
              on_stack.(w) <- true;
              call := (w, ref (succ w)) :: !call
            end
            else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
            if lowlink.(v) = index.(v) then begin
              let rec pop acc =
                match !stack with
                | [] -> acc
                | w :: rest ->
                  stack := rest;
                  on_stack.(w) <- false;
                  component_of.(w) <- !n_components;
                  if w = v then w :: acc else pop (w :: acc)
              in
              let comp = pop [] in
              components := comp :: !components;
              incr n_components
            end;
            call := above;
            (match above with
             | (u, _) :: _ -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
             | [] -> ()))
      done
    end
  done;
  (* Tarjan emits components in reverse topological order; renumber so that
     ids increase along edges (topological). *)
  let k = !n_components in
  let renumber i = k - 1 - i in
  Array.iteri (fun s c -> component_of.(s) <- renumber c) component_of;
  let members = Array.make k [] in
  List.iteri (fun i comp -> members.(renumber i) <- comp) (List.rev !components);
  (component_of, members)

let of_chain chain =
  let n = Chain.num_states chain in
  let succ v = List.map fst (Chain.succ chain v) in
  let component_of, members = tarjan n succ in
  let k = Array.length members in
  let dag = Array.make k [] in
  for v = 0 to n - 1 do
    List.iter
      (fun w ->
        let cv = component_of.(v) and cw = component_of.(w) in
        if cv <> cw && not (List.mem cw dag.(cv)) then dag.(cv) <- cw :: dag.(cv))
      (succ v)
  done;
  { component_of; members; dag_succ = dag }

let num_components t = Array.length t.members
let is_closed t c = t.dag_succ.(c) = []
let closed_components t =
  List.filter (is_closed t) (List.init (num_components t) Fun.id)

let topological_order t = List.init (num_components t) Fun.id
