module Q = Bigq.Q

let solve a b =
  let n = Array.length a in
  if n = 0 then Some [||]
  else begin
    let m = Array.map Array.copy a in
    let b = Array.copy b in
    let ok = ref true in
    (try
       for col = 0 to n - 1 do
         (* Find a pivot row with a non-zero entry in this column. *)
         let pivot = ref (-1) in
         for row = col to n - 1 do
           if !pivot = -1 && not (Q.is_zero m.(row).(col)) then pivot := row
         done;
         if !pivot = -1 then begin
           ok := false;
           raise Exit
         end;
         if !pivot <> col then begin
           let tmp = m.(col) in
           m.(col) <- m.(!pivot);
           m.(!pivot) <- tmp;
           let tb = b.(col) in
           b.(col) <- b.(!pivot);
           b.(!pivot) <- tb
         end;
         let inv_p = Q.inv m.(col).(col) in
         for j = col to n - 1 do
           m.(col).(j) <- Q.mul m.(col).(j) inv_p
         done;
         b.(col) <- Q.mul b.(col) inv_p;
         for row = 0 to n - 1 do
           if row <> col && not (Q.is_zero m.(row).(col)) then begin
             let f = m.(row).(col) in
             for j = col to n - 1 do
               m.(row).(j) <- Q.sub m.(row).(j) (Q.mul f m.(col).(j))
             done;
             b.(row) <- Q.sub b.(row) (Q.mul f b.(col))
           end
         done
       done
     with Exit -> ());
    if !ok then Some b else None
  end

let mat_vec a x =
  Array.map (fun row -> Q.sum (List.map2 Q.mul (Array.to_list row) (Array.to_list x))) a

let vec_mat x a =
  let n = Array.length a in
  let cols = if n = 0 then 0 else Array.length a.(0) in
  Array.init cols (fun j ->
      let acc = ref Q.zero in
      for i = 0 to n - 1 do
        acc := Q.add !acc (Q.mul x.(i) a.(i).(j))
      done;
      !acc)

let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then Q.one else Q.zero))
