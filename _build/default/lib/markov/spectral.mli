(** Spectral analysis of reversible chains: the second-largest eigenvalue
    modulus (SLEM) and the relaxation-time bounds on mixing, complementing
    the conductance bounds of {!Conductance}. *)

val slem : ?max_iter:int -> ?tol:float -> 'a Chain.t -> float
(** Second-largest eigenvalue modulus of an irreducible reversible chain,
    by power iteration on the orthogonal complement of the constant
    function in the π-weighted inner product (where the transition operator
    is self-adjoint).  Raises {!Chain.Chain_error} if the chain is not
    reversible. *)

val relaxation_time : ?max_iter:int -> ?tol:float -> 'a Chain.t -> float
(** [1 / (1 − λ⋆)] where [λ⋆] is the {!slem}. *)

val mixing_bounds : eps:float -> 'a Chain.t -> float * float
(** The classical relaxation-time bracket for reversible chains
    (Levin–Peres Thms 12.4/12.5):
    [(t_rel − 1)·ln(1/2ε)  ≤  t_mix(ε)  ≤  t_rel·ln(1/(ε·π_min))]. *)
