let is_irreducible chain = Scc.num_components (Scc.of_chain chain) = 1

(* Period via BFS levels: for edges (u, v) inside the component, the period
   is gcd over all of (level u + 1 - level v).  Freedman, ch. 1. *)
let period_of_component chain members =
  match members with
  | [] -> invalid_arg "period_of_component: empty component"
  | root :: _ ->
    let in_comp = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace in_comp s ()) members;
    let level = Hashtbl.create 16 in
    Hashtbl.replace level root 0;
    let queue = Queue.create () in
    Queue.add root queue;
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    let g = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let lu = Hashtbl.find level u in
      List.iter
        (fun (v, _) ->
          if Hashtbl.mem in_comp v then begin
            match Hashtbl.find_opt level v with
            | None ->
              Hashtbl.replace level v (lu + 1);
              Queue.add v queue
            | Some lv -> g := gcd !g (abs (lu + 1 - lv))
          end)
        (Chain.succ chain u)
    done;
    !g

let period chain =
  let scc = Scc.of_chain chain in
  if Scc.num_components scc <> 1 then
    raise (Chain.Chain_error "period: chain is not irreducible");
  period_of_component chain scc.Scc.members.(0)

let is_aperiodic chain =
  let scc = Scc.of_chain chain in
  List.for_all
    (fun c ->
      let members = scc.Scc.members.(c) in
      match members with
      | [ s ] when not (List.mem_assoc s (Chain.succ chain s)) ->
        true (* transient singleton: no cycle, period constraint vacuous *)
      | _ -> period_of_component chain members = 1)
    (List.init (Scc.num_components scc) Fun.id)

let is_positively_recurrent chain =
  let scc = Scc.of_chain chain in
  List.for_all (Scc.is_closed scc) (List.init (Scc.num_components scc) Fun.id)

let is_ergodic chain = is_aperiodic chain && is_positively_recurrent chain
