module Q = Bigq.Q

type result = {
  quotient : int Chain.t;
  class_of : int array;
  num_classes : int;
}

(* Probability vector of a state into the current classes, canonicalised as
   a sorted association list. *)
let signature chain class_of s =
  let module M = Map.Make (Int) in
  let m =
    List.fold_left
      (fun acc (t, p) ->
        M.update class_of.(t) (fun prev -> Some (Q.add (Option.value ~default:Q.zero prev) p)) acc)
      M.empty (Chain.succ chain s)
  in
  M.bindings m

let compare_signature = List.compare (fun (c1, p1) (c2, p2) ->
    match Int.compare c1 c2 with 0 -> Q.compare p1 p2 | c -> c)

let lump ~initial chain =
  let n = Chain.num_states chain in
  (* Normalise the initial labelling to dense class ids. *)
  let class_of = Array.make n 0 in
  let next_class = ref 0 in
  let seen = Hashtbl.create 16 in
  for s = 0 to n - 1 do
    let l = initial s in
    match Hashtbl.find_opt seen l with
    | Some c -> class_of.(s) <- c
    | None ->
      Hashtbl.replace seen l !next_class;
      class_of.(s) <- !next_class;
      incr next_class
  done;
  (* Refine until every class is signature-homogeneous. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let members = Hashtbl.create 16 in
    for s = n - 1 downto 0 do
      let prev = Option.value ~default:[] (Hashtbl.find_opt members class_of.(s)) in
      Hashtbl.replace members class_of.(s) (s :: prev)
    done;
    Hashtbl.iter
      (fun _ states ->
        match states with
        | [] | [ _ ] -> ()
        | first :: rest ->
          let ref_sig = signature chain class_of first in
          let splitters =
            List.filter (fun s -> compare_signature (signature chain class_of s) ref_sig <> 0) rest
          in
          if splitters <> [] then begin
            (* Move each distinct deviating signature into a fresh class. *)
            let fresh = Hashtbl.create 4 in
            List.iter
              (fun s ->
                let sg = signature chain class_of s in
                let key = Format.asprintf "%a"
                    (Format.pp_print_list (fun f (c, p) -> Format.fprintf f "%d:%s;" c (Q.to_string p)))
                    sg
                in
                let c =
                  match Hashtbl.find_opt fresh key with
                  | Some c -> c
                  | None ->
                    let c = !next_class in
                    incr next_class;
                    Hashtbl.replace fresh key c;
                    c
                in
                class_of.(s) <- c)
              splitters;
            changed := true
          end)
      members
  done;
  (* Re-densify class ids and build the quotient. *)
  let dense = Hashtbl.create 16 in
  let k = ref 0 in
  for s = 0 to n - 1 do
    if not (Hashtbl.mem dense class_of.(s)) then begin
      Hashtbl.replace dense class_of.(s) !k;
      incr k
    end
  done;
  let class_of = Array.map (Hashtbl.find dense) class_of in
  let k = !k in
  let representative = Array.make k (-1) in
  for s = n - 1 downto 0 do
    representative.(class_of.(s)) <- s
  done;
  let rows = Array.init k (fun c -> signature chain class_of representative.(c)) in
  { quotient = Chain.of_rows (Array.init k Fun.id) rows; class_of; num_classes = k }

let stationary_event_mass chain ~event =
  let { quotient; class_of; _ } = lump ~initial:(fun s -> if event s then 1 else 0) chain in
  let pi = Stationary.exact quotient in
  (* All members of a class share the event label; find one per class. *)
  let n = Chain.num_states chain in
  let event_class = Array.make (Chain.num_states quotient) false in
  for s = 0 to n - 1 do
    if event s then event_class.(class_of.(s)) <- true
  done;
  let acc = ref Q.zero in
  Array.iteri (fun c p -> if event_class.(c) then acc := Q.add !acc p) pi;
  !acc
