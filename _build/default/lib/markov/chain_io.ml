module Q = Bigq.Q

exception Parse_error of string

let parse text =
  let lines = String.split_on_char '\n' text in
  let triples =
    List.concat
      (List.mapi
         (fun lineno line ->
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           match String.split_on_char ' ' line |> List.filter (fun s -> s <> "" && s <> "\t" && s <> "\r") with
           | [] -> []
           | [ src; dst; prob ] -> (
             try [ (src, dst, Q.of_string prob) ]
             with _ -> raise (Parse_error (Printf.sprintf "line %d: bad probability %s" (lineno + 1) prob)))
           | _ -> raise (Parse_error (Printf.sprintf "line %d: expected 'src dst prob'" (lineno + 1))))
         lines)
  in
  if triples = [] then raise (Parse_error "no transitions");
  let names = ref [] in
  let intern name = if not (List.mem name !names) then names := name :: !names in
  List.iter
    (fun (s, d, _) ->
      intern s;
      intern d)
    triples;
  let labels = Array.of_list (List.rev !names) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace index l i) labels;
  let rows = Array.make (Array.length labels) [] in
  List.iter
    (fun (s, d, p) ->
      let i = Hashtbl.find index s in
      rows.(i) <- (Hashtbl.find index d, p) :: rows.(i))
    triples;
  try Chain.of_rows labels (Array.map List.rev rows)
  with Chain.Chain_error msg -> raise (Parse_error msg)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let print fmt chain =
  for i = 0 to Chain.num_states chain - 1 do
    List.iter
      (fun (j, p) ->
        Format.fprintf fmt "%s %s %s@." (Chain.label chain i) (Chain.label chain j) (Q.to_string p))
      (Chain.succ chain i)
  done

let to_dot fmt chain =
  Format.fprintf fmt "digraph chain {@.  rankdir=LR;@.  node [shape=circle];@.";
  for i = 0 to Chain.num_states chain - 1 do
    List.iter
      (fun (j, p) ->
        Format.fprintf fmt "  %S -> %S [label=%S];@." (Chain.label chain i)
          (Chain.label chain j) (Q.to_string p))
      (Chain.succ chain i)
  done;
  Format.fprintf fmt "}@."
