(** Strongly connected components and the condensation DAG, used by the
    general-case exact evaluation algorithm (Theorem 5.5). *)

type t = {
  component_of : int array;  (** state index -> component id *)
  members : int list array;  (** component id -> its states *)
  dag_succ : int list array;  (** condensation edges, no self-loops *)
}

val of_chain : 'a Chain.t -> t

val num_components : t -> int

val is_closed : t -> int -> bool
(** A component is closed (a condensation leaf) when no edge leaves it; a
    random walk entering it never leaves (the paper's "leaves of the DAG"). *)

val closed_components : t -> int list

val topological_order : t -> int list
(** Component ids ordered so every edge goes from earlier to later. *)
