(** Ordinary lumpability (Kemeny–Snell): quotienting a chain by the
    coarsest partition that refines an initial labelling and is consistent
    with the dynamics.

    A partition is ordinarily lumpable when all states of a class have the
    same total transition probability into every class; the quotient is
    then itself a Markov chain and, for irreducible chains, the stationary
    probability of a class is the sum over its members.  Starting from the
    event labelling, lumping can shrink the exponential database-state
    chains of non-inflationary evaluation dramatically before Gaussian
    elimination. *)

type result = {
  quotient : int Chain.t;  (** states labelled by class id *)
  class_of : int array;  (** original state -> class id *)
  num_classes : int;
}

val lump : initial:(int -> int) -> 'a Chain.t -> result
(** [lump ~initial chain] refines the partition induced by [initial] (any
    labelling function into integers) to the coarsest ordinarily-lumpable
    partition, by classical partition refinement.  Always succeeds; worst
    case every state is its own class. *)

val stationary_event_mass : 'a Chain.t -> event:(int -> bool) -> Bigq.Q.t
(** Stationary probability of the event states of an irreducible chain,
    computed on the lumped quotient (initial labels = event indicator).
    Exact; raises {!Chain.Chain_error} if the chain is not irreducible. *)
