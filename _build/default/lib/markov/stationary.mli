(** Stationary distributions: [π = π P] with [Σ π = 1].

    Exists uniquely iff the chain is irreducible and positively recurrent
    (Section 2.3); for finite chains irreducibility suffices. *)

val exact : 'a Chain.t -> Bigq.Q.t array
(** Exact stationary distribution by Gaussian elimination over Q — the
    computation inside Proposition 5.4.  Raises {!Chain.Chain_error} when
    the chain is not irreducible. *)

val exact_on_component : 'a Chain.t -> int list -> (int * Bigq.Q.t) list
(** Stationary distribution of a closed component, restricted to and indexed
    by the original state indices.  Raises {!Chain.Chain_error} if the
    component is not closed. *)

val power_iteration : ?max_iter:int -> ?tol:float -> 'a Chain.t -> float array
(** Float baseline: iterate [π := (π + πP)/2] (lazy smoothing makes periodic
    chains converge) until the L1 change is below [tol]. *)
