module Q = Bigq.Q

let is_reversible chain =
  Classify.is_irreducible chain
  &&
  let pi = Stationary.exact chain in
  let n = Chain.num_states chain in
  let ok = ref true in
  for i = 0 to n - 1 do
    List.iter
      (fun (j, p) ->
        if not (Q.equal (Q.mul pi.(i) p) (Q.mul pi.(j) (Chain.prob chain j i))) then ok := false)
      (Chain.succ chain i)
  done;
  !ok

let conductance ?(max_states = 16) chain =
  let n = Chain.num_states chain in
  if n > max_states then
    raise (Chain.Chain_error "conductance: too many states for subset enumeration");
  if not (Classify.is_irreducible chain) then
    raise (Chain.Chain_error "conductance: chain not irreducible");
  let pi = Stationary.exact chain in
  let best = ref None in
  (* Every non-empty proper subset encoded as a bitmask. *)
  for mask = 1 to (1 lsl n) - 2 do
    let in_s i = mask land (1 lsl i) <> 0 in
    let pi_s = ref Q.zero in
    for i = 0 to n - 1 do
      if in_s i then pi_s := Q.add !pi_s pi.(i)
    done;
    if Q.compare !pi_s Q.half <= 0 && Q.sign !pi_s > 0 then begin
      let flow = ref Q.zero in
      for i = 0 to n - 1 do
        if in_s i then
          List.iter
            (fun (j, p) -> if not (in_s j) then flow := Q.add !flow (Q.mul pi.(i) p))
            (Chain.succ chain i)
      done;
      let phi_s = Q.div !flow !pi_s in
      match !best with
      | None -> best := Some phi_s
      | Some b -> if Q.compare phi_s b < 0 then best := Some phi_s
    end
  done;
  match !best with
  | Some phi -> phi
  | None -> raise (Chain.Chain_error "conductance: no admissible subset")

let cheeger_mixing_upper_bound ~eps chain =
  let phi = Q.to_float (conductance chain) in
  let pi = Stationary.exact chain in
  let pi_min =
    Array.fold_left (fun acc p -> min acc (Q.to_float p)) infinity pi
  in
  2.0 /. (phi *. phi) *. log (1.0 /. (eps *. pi_min))

let conductance_lower_bound chain =
  let phi = Q.to_float (conductance chain) in
  1.0 /. (4.0 *. phi)
