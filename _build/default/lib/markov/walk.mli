(** Random walks over a chain, for simulation and MCMC-style estimation. *)

val step : Random.State.t -> 'a Chain.t -> int -> int
(** One transition from the given state. *)

val run : Random.State.t -> 'a Chain.t -> start:int -> steps:int -> int list
(** The visited states, including the start; length [steps + 1]. *)

val end_state : Random.State.t -> 'a Chain.t -> start:int -> steps:int -> int
(** Only the final state of a [steps]-step walk. *)

val occupation : Random.State.t -> 'a Chain.t -> start:int -> steps:int -> float array
(** Empirical occupation frequencies of a single long walk — the
    time-average whose limit defines the paper's query semantics. *)

val estimate_stationary :
  Random.State.t -> 'a Chain.t -> start:int -> burn_in:int -> samples:int -> thin:int -> float array
(** MCMC estimate: walk [burn_in] steps, then record every [thin]-th state
    [samples] times. *)
