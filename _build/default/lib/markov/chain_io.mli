(** Plain-text serialisation of chains, used by the [probmc] CLI.

    Format: one transition per line, [src dst probability], where states
    are arbitrary whitespace-free names and probabilities are rationals
    ([1/3], [0.25], [1]).  [#] starts a comment.  Rows must sum to 1. *)

exception Parse_error of string

val parse : string -> string Chain.t
val parse_file : string -> string Chain.t
val print : Format.formatter -> string Chain.t -> unit

val to_dot : Format.formatter -> string Chain.t -> unit
(** GraphViz rendering: one node per state, edges labelled with exact
    transition probabilities. *)
