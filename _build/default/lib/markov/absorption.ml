module Q = Bigq.Q

let scc = Scc.of_chain

let into_closed chain ~start =
  let scc = Scc.of_chain chain in
  let closed = Scc.closed_components scc in
  let n = Chain.num_states chain in
  let is_transient = Array.make n true in
  List.iter
    (fun c -> List.iter (fun s -> is_transient.(s) <- false) scc.Scc.members.(c))
    closed;
  let transient = List.filter (fun s -> is_transient.(s)) (List.init n Fun.id) in
  let k = List.length transient in
  let t_index = Hashtbl.create 16 in
  List.iteri (fun i s -> Hashtbl.replace t_index s i) transient;
  (* For each closed component L: h_L restricted to transient states solves
     (I - P_TT) h = P_T->L 1, where P_TT is the transient-to-transient block. *)
  let a =
    Array.init k (fun i ->
        let s = List.nth transient i in
        Array.init k (fun j ->
            let t = List.nth transient j in
            let p = Chain.prob chain s t in
            if i = j then Q.sub Q.one p else Q.neg p))
  in
  let absorb_prob target_component =
    if not is_transient.(start) then
      if scc.Scc.component_of.(start) = target_component then Q.one else Q.zero
    else begin
      let in_target s = scc.Scc.component_of.(s) = target_component in
      let b =
        Array.of_list
          (List.map
             (fun s ->
               Q.sum
                 (List.filter_map
                    (fun (t, p) -> if in_target t then Some p else None)
                    (Chain.succ chain s)))
             transient)
      in
      match Linalg.solve a b with
      | Some h -> h.(Hashtbl.find t_index start)
      | None -> raise (Chain.Chain_error "absorption: singular transient system")
    end
  in
  List.map (fun c -> (c, absorb_prob c)) closed
