(** MCMC convergence diagnostics for walk traces, supporting the paper's
    positioning of the language as a declarative MCMC substrate. *)

val indicator_trace : int list -> (int -> bool) -> float array
(** Map a walk (state indices) to a 0/1 trace of an event. *)

val mean : float array -> float

val autocorrelation : float array -> int -> float
(** Lag-k sample autocorrelation of a trace; 0 on degenerate traces. *)

val effective_sample_size : ?max_lag:int -> float array -> float
(** ESS with the standard initial-positive-sequence truncation: [n / (1 +
    2 Σ ρ_k)], summing lags while the autocorrelation stays positive. *)

val gelman_rubin : float array list -> float
(** Potential scale reduction factor (R̂) over ≥ 2 same-length traces; near
    1 when the chains have mixed.  Raises [Invalid_argument] otherwise. *)
