(** Structural classification of finite Markov chains (Section 2.3):
    irreducibility, periodicity, positive recurrence, ergodicity. *)

val is_irreducible : 'a Chain.t -> bool
(** Single strongly connected component. *)

val period_of_component : 'a Chain.t -> int list -> int
(** Period of the states of one strongly connected component: the gcd of
    cycle lengths through any of its states (all states of an SCC share it).
    Returns 0 for a singleton component without a self-loop (no cycle). *)

val period : 'a Chain.t -> int
(** Period of an irreducible chain.  Raises {!Chain.Chain_error} when the
    chain is not irreducible. *)

val is_aperiodic : 'a Chain.t -> bool
(** Every state's period is 1.  For finite chains this inspects each SCC. *)

val is_positively_recurrent : 'a Chain.t -> bool
(** Every state is positively recurrent.  In a finite chain a state is
    positively recurrent iff its SCC is closed, so this checks that every
    SCC is closed. *)

val is_ergodic : 'a Chain.t -> bool
(** Aperiodic and positively recurrent, as in the paper. *)
