(** Exact linear algebra over the rationals — the "Gaussian elimination"
    steps of Proposition 5.4 and Theorem 5.5. *)

val solve : Bigq.Q.t array array -> Bigq.Q.t array -> Bigq.Q.t array option
(** [solve a b] solves [a x = b] for square [a] by Gaussian elimination with
    exact pivoting.  [None] when [a] is singular.  Destroys neither input. *)

val mat_vec : Bigq.Q.t array array -> Bigq.Q.t array -> Bigq.Q.t array
val vec_mat : Bigq.Q.t array -> Bigq.Q.t array array -> Bigq.Q.t array
(** Row-vector times matrix: distribution evolution [π P]. *)

val identity : int -> Bigq.Q.t array array
