lib/markov/scc.mli: Chain
