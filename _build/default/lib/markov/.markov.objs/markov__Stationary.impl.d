lib/markov/stationary.ml: Array Bigq Chain Hashtbl Int Linalg List Scc
