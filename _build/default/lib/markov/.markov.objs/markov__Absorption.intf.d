lib/markov/absorption.mli: Bigq Chain Scc
