lib/markov/conductance.ml: Array Bigq Chain Classify List Stationary
