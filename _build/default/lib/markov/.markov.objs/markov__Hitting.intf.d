lib/markov/hitting.mli: Bigq Chain
