lib/markov/diagnostics.ml: Array List Option
