lib/markov/absorption.ml: Array Bigq Chain Fun Hashtbl Linalg List Scc
