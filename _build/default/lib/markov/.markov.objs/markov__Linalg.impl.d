lib/markov/linalg.ml: Array Bigq List
