lib/markov/conductance.mli: Bigq Chain
