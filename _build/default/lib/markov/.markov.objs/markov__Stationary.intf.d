lib/markov/stationary.mli: Bigq Chain
