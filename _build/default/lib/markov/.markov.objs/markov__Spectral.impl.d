lib/markov/spectral.ml: Array Bigq Chain Conductance Float List Stationary
