lib/markov/chain_io.mli: Chain Format
