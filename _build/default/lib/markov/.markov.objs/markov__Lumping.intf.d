lib/markov/lumping.mli: Bigq Chain
