lib/markov/mixing.mli: Bigq Chain
