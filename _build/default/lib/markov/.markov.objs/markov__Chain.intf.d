lib/markov/chain.mli: Bigq Format Prob
