lib/markov/classify.mli: Chain
