lib/markov/lumping.ml: Array Bigq Chain Format Fun Hashtbl Int List Map Option Stationary
