lib/markov/mixing.ml: Array Bigq Chain Classify Fun List Stationary
