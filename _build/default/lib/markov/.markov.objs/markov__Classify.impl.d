lib/markov/classify.ml: Array Chain Fun Hashtbl List Queue Scc
