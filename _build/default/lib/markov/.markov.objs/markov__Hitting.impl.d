lib/markov/hitting.ml: Array Bigq Chain Classify Fun Hashtbl Linalg List
