lib/markov/diagnostics.mli:
