lib/markov/walk.mli: Chain Random
