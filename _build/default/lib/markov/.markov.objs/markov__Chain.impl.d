lib/markov/chain.ml: Array Bigq Format Hashtbl Int List Map Prob Queue
