lib/markov/chain_io.ml: Array Bigq Chain Format Hashtbl List Printf String
