lib/markov/scc.ml: Array Chain Fun List
