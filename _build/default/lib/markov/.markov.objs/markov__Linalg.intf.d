lib/markov/linalg.mli: Bigq
