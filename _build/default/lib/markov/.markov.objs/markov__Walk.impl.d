lib/markov/walk.ml: Array Chain List Prob
