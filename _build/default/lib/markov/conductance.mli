(** Conductance and Cheeger-style mixing bounds — the techniques Section 5.1
    points to for characterising chains with small mixing time.

    For an irreducible chain with stationary distribution π, the conductance
    is [Φ = min_{S : 0 < π(S) ≤ 1/2} Q(S, S̄) / π(S)] where
    [Q(x,y) = π(x) P(x,y)].  Exact, by subset enumeration — exponential in
    the number of states, intended for the small chains of the analysis
    experiments. *)

val is_reversible : 'a Chain.t -> bool
(** Detailed balance [π(i) P(i,j) = π(j) P(j,i)] for an irreducible chain. *)

val conductance : ?max_states:int -> 'a Chain.t -> Bigq.Q.t
(** Raises {!Chain.Chain_error} if the chain is not irreducible or has more
    than [max_states] (default 16) states. *)

val cheeger_mixing_upper_bound : eps:float -> 'a Chain.t -> float
(** The classical bound for lazy reversible chains:
    [t_mix(ε) ≤ (2/Φ²) · ln(1/(ε · π_min))].  Meaningful when
    {!is_reversible} holds and every state has a self-loop of probability
    ≥ 1/2 (laziness); callers should check. *)

val conductance_lower_bound : 'a Chain.t -> float
(** The classical bottleneck lower bound [t_mix(1/4) ≥ 1/(4Φ)]
    (Levin–Peres Thm 7.4); ε-independent, stated at ε = 1/4. *)
