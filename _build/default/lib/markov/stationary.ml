module Q = Bigq.Q

(* Solve pi (P - I) = 0, sum pi = 1: transpose to (P^T - I) pi^T = 0 and
   replace the last equation by the normalisation row. *)
let solve_stationary_system n prob =
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let p_ji = prob j i in
            if i = j then Q.sub p_ji Q.one else p_ji))
  in
  let b = Array.make n Q.zero in
  for j = 0 to n - 1 do
    a.(n - 1).(j) <- Q.one
  done;
  b.(n - 1) <- Q.one;
  match Linalg.solve a b with
  | Some pi -> pi
  | None ->
    raise (Chain.Chain_error "stationary: singular system (chain not irreducible?)")

let exact chain =
  let scc = Scc.of_chain chain in
  if Scc.num_components scc <> 1 then
    raise (Chain.Chain_error "stationary: chain is not irreducible");
  solve_stationary_system (Chain.num_states chain) (Chain.prob chain)

let exact_on_component chain members =
  let members = List.sort Int.compare members in
  let local = Array.of_list members in
  let k = Array.length local in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace index_of s i) local;
  (* Closedness check: all probability mass must stay inside. *)
  List.iter
    (fun s ->
      List.iter
        (fun (t, _) ->
          if not (Hashtbl.mem index_of t) then
            raise (Chain.Chain_error "stationary: component is not closed"))
        (Chain.succ chain s))
    members;
  let prob i j = Chain.prob chain local.(i) local.(j) in
  let pi = solve_stationary_system k prob in
  List.mapi (fun i s -> (s, pi.(i))) members

let power_iteration ?(max_iter = 100_000) ?(tol = 1e-12) chain =
  let n = Chain.num_states chain in
  let rows = Array.init n (fun i -> List.map (fun (j, p) -> (j, Q.to_float p)) (Chain.succ chain i)) in
  let pi = Array.make n (1.0 /. float_of_int n) in
  let next = Array.make n 0.0 in
  let rec iterate k pi =
    Array.fill next 0 n 0.0;
    Array.iteri (fun i w -> List.iter (fun (j, p) -> next.(j) <- next.(j) +. (w *. p)) rows.(i)) pi;
    (* Lazy-chain smoothing to damp periodicity. *)
    let delta = ref 0.0 in
    for i = 0 to n - 1 do
      let v = 0.5 *. (pi.(i) +. next.(i)) in
      delta := !delta +. abs_float (v -. pi.(i));
      pi.(i) <- v
    done;
    if !delta > tol && k < max_iter then iterate (k + 1) pi else pi
  in
  iterate 0 pi
