module Q = Bigq.Q

(* States that reach the target set with probability 1: complement of the
   largest set closed under "some successor avoids the targets forever".
   Computed as a greatest fixpoint: start from all states, repeatedly drop
   states all of whose successors are (targets or already dropped) —
   equivalently, keep states that can avoid the target set with positive
   probability.  We instead compute reachability of an avoiding cycle. *)
let certain_states chain targets =
  let n = Chain.num_states chain in
  let is_target = Array.make n false in
  List.iter (fun t -> is_target.(t) <- true) targets;
  (* First: states that can reach a target at all (forward along edges,
     computed by reverse BFS). *)
  let reaches = Array.make n false in
  List.iter (fun t -> reaches.(t) <- true) targets;
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to n - 1 do
      if (not reaches.(s)) && List.exists (fun (u, _) -> reaches.(u)) (Chain.succ chain s) then begin
        reaches.(s) <- true;
        changed := true
      end
    done
  done;
  (* Second: states that reach a target with probability 1 — those that
     cannot reach a non-target state from which targets are unreachable. *)
  let doomed = Array.init n (fun s -> not reaches.(s)) in
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to n - 1 do
      if (not doomed.(s)) && not is_target.(s) then
        if List.exists (fun (u, _) -> doomed.(u)) (Chain.succ chain s) then begin
          doomed.(s) <- true;
          changed := true
        end
    done
  done;
  Array.init n (fun s -> is_target.(s) || not doomed.(s))

let expected_steps chain ~targets =
  let n = Chain.num_states chain in
  if targets = [] then invalid_arg "expected_steps: no targets";
  List.iter (fun t -> if t < 0 || t >= n then invalid_arg "expected_steps: bad target") targets;
  let is_target = Array.make n false in
  List.iter (fun t -> is_target.(t) <- true) targets;
  let certain = certain_states chain targets in
  (* Unknowns: non-target states with certain hitting. *)
  let unknowns = List.filter (fun s -> certain.(s) && not is_target.(s)) (List.init n Fun.id) in
  let k = List.length unknowns in
  let index = Hashtbl.create 16 in
  List.iteri (fun i s -> Hashtbl.replace index s i) unknowns;
  let a =
    Array.init k (fun i ->
        let s = List.nth unknowns i in
        Array.init k (fun j ->
            let u = List.nth unknowns j in
            let p = Chain.prob chain s u in
            if i = j then Q.sub Q.one p else Q.neg p))
  in
  let b = Array.make k Q.one in
  let h =
    if k = 0 then [||]
    else
      match Linalg.solve a b with
      | Some h -> h
      | None -> raise (Chain.Chain_error "hitting: singular system")
  in
  Array.init n (fun s ->
      if is_target.(s) then Some Q.zero
      else if not certain.(s) then None
      else Some h.(Hashtbl.find index s))

let expected_return_time chain i =
  if not (Classify.is_irreducible chain) then
    raise (Chain.Chain_error "expected_return_time: chain not irreducible");
  (* 1 + Σ_j P(i,j) h_j where h is the expected hitting time of i. *)
  let h = expected_steps chain ~targets:[ i ] in
  List.fold_left
    (fun acc (j, p) ->
      match h.(j) with
      | Some hj -> Q.add acc (Q.mul p hj)
      | None -> raise (Chain.Chain_error "expected_return_time: unreachable successor"))
    Q.one (Chain.succ chain i)
