(** Probabilities of eventually reaching each closed component.

    With probability 1 a random walk in a finite chain enters a closed SCC
    (a leaf of the condensation DAG) and stays there forever — the structure
    Theorem 5.5 exploits.  [into_closed chain ~start] gives, for each closed
    component, the probability that the walk starting at [start] is absorbed
    into it (the probabilities sum to 1). *)

val into_closed : 'a Chain.t -> start:int -> (int * Bigq.Q.t) list
(** Pairs (component id, absorption probability), over the closed components
    of the chain's SCC decomposition, computed exactly by solving the
    first-step linear system over the transient states. *)

val scc : 'a Chain.t -> Scc.t
(** The decomposition used by {!into_closed}, for callers that need to map
    component ids back to states. *)
