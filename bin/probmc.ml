(* probmc — analyse Markov chains from the command line.

     probmc classify chain.mc
     probmc stationary chain.mc
     probmc mixing chain.mc --eps 0.05
     probmc hitting chain.mc --target s3
     probmc absorb chain.mc --start s0
     probmc walk chain.mc --start s0 --steps 20 --seed 1

   Chain files: one "src dst probability" triple per line, '#' comments. *)

open Cmdliner
module Q = Bigq.Q

let load path =
  try Ok (Markov.Chain_io.parse_file path) with
  | Markov.Chain_io.Parse_error msg -> Error msg
  | Sys_error msg -> Error msg

let chain_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CHAIN" ~doc:"Chain file (src dst prob lines).")

let with_chain path f =
  match load path with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | Ok chain -> f chain

let state_index chain name =
  match Markov.Chain.index chain name with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "unknown state %s" name)

let classify_cmd =
  let run path =
    with_chain path (fun chain ->
        let scc = Markov.Scc.of_chain chain in
        Format.printf "@[<v>states                : %d@," (Markov.Chain.num_states chain);
        Format.printf "strongly connected     : %d components@," (Markov.Scc.num_components scc);
        Format.printf "closed components      : %d@," (List.length (Markov.Scc.closed_components scc));
        Format.printf "irreducible            : %b@," (Markov.Classify.is_irreducible chain);
        Format.printf "aperiodic              : %b@," (Markov.Classify.is_aperiodic chain);
        Format.printf "positively recurrent   : %b@," (Markov.Classify.is_positively_recurrent chain);
        Format.printf "ergodic                : %b@," (Markov.Classify.is_ergodic chain);
        (if Markov.Classify.is_irreducible chain then
           Format.printf "period                 : %d@," (Markov.Classify.period chain));
        (try
           let rev = Markov.Conductance.is_reversible chain in
           Format.printf "reversible             : %b@," rev;
           if rev then begin
             Format.printf "slem                   : %.6f@," (Markov.Spectral.slem chain);
             Format.printf "relaxation time        : %.3f@," (Markov.Spectral.relaxation_time chain)
           end
         with Markov.Chain.Chain_error _ -> ());
        (if Markov.Classify.is_irreducible chain && Markov.Chain.num_states chain <= 16 then
           Format.printf "conductance            : %s@,"
             (Q.to_string (Markov.Conductance.conductance chain)));
        Format.printf "@]@.";
        0)
  in
  Cmd.v (Cmd.info "classify" ~doc:"Structural classification (Section 2.3 properties).")
    Term.(const run $ chain_arg)

let stationary_cmd =
  let run path =
    with_chain path (fun chain ->
        if not (Markov.Classify.is_irreducible chain) then begin
          Format.eprintf "error: chain is not irreducible (no unique stationary distribution)@.";
          1
        end
        else begin
          let pi = Markov.Stationary.exact chain in
          Format.printf "state              pi (exact)        ~float@.";
          Array.iteri
            (fun i p ->
              Format.printf "%-18s %-16s %.6f@." (Markov.Chain.label chain i) (Q.to_string p)
                (Q.to_float p))
            pi;
          0
        end)
  in
  Cmd.v (Cmd.info "stationary" ~doc:"Exact stationary distribution by Gaussian elimination.")
    Term.(const run $ chain_arg)

let eps_arg = Arg.(value & opt float 0.05 & info [ "eps" ] ~doc:"Total-variation threshold.")

let mixing_cmd =
  let run path eps =
    with_chain path (fun chain ->
        match Markov.Mixing.mixing_time ~eps chain with
        | Some t ->
          Format.printf "mixing time T(%g) = %d steps@." eps t;
          0
        | None ->
          Format.eprintf "chain does not mix (not ergodic, or beyond the step bound)@.";
          1)
  in
  Cmd.v (Cmd.info "mixing" ~doc:"Mixing time from the worst start state.")
    Term.(const run $ chain_arg $ eps_arg)

let target_arg =
  Arg.(required & opt (some string) None & info [ "target" ] ~docv:"STATE" ~doc:"Target state.")

let hitting_cmd =
  let run path target =
    with_chain path (fun chain ->
        match state_index chain target with
        | Error msg ->
          Format.eprintf "error: %s@." msg;
          1
        | Ok t ->
          let h = Markov.Hitting.expected_steps chain ~targets:[ t ] in
          Format.printf "state              E[steps to %s]@." target;
          Array.iteri
            (fun i v ->
              Format.printf "%-18s %s@." (Markov.Chain.label chain i)
                (match v with Some q -> Q.to_string q | None -> "infinity"))
            h;
          0)
  in
  Cmd.v (Cmd.info "hitting" ~doc:"Exact expected hitting times.")
    Term.(const run $ chain_arg $ target_arg)

let start_arg =
  Arg.(required & opt (some string) None & info [ "start" ] ~docv:"STATE" ~doc:"Start state.")

let absorb_cmd =
  let run path start =
    with_chain path (fun chain ->
        match state_index chain start with
        | Error msg ->
          Format.eprintf "error: %s@." msg;
          1
        | Ok s ->
          let scc = Markov.Scc.of_chain chain in
          let probs = Markov.Absorption.into_closed chain ~start:s in
          Format.printf "closed component (states)            Pr[absorbed]@.";
          List.iter
            (fun (c, p) ->
              let members =
                String.concat "," (List.map (Markov.Chain.label chain) scc.Markov.Scc.members.(c))
              in
              Format.printf "%-36s %s@." members (Q.to_string p))
            probs;
          0)
  in
  Cmd.v (Cmd.info "absorb" ~doc:"Absorption probabilities into closed components (Thm 5.5 structure).")
    Term.(const run $ chain_arg $ start_arg)

let steps_arg = Arg.(value & opt int 20 & info [ "steps" ] ~doc:"Walk length.")
let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")

let samples_arg = Arg.(value & opt int 1000 & info [ "samples" ] ~doc:"Number of independent restarts.")
let burn_in_arg = Arg.(value & opt int 100 & info [ "burn-in" ] ~doc:"Walk length per restart.")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "domains" ] ~docv:"N"
        ~doc:
          "Shard the restarts across $(docv) OCaml domains (0 = all cores). Fixed-seed \
           estimates are identical for any N >= 1.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Collect run metrics and print them as a table after the estimate.")

let stats_json_arg =
  Arg.(
    value & flag
    & info [ "stats-json" ]
        ~doc:
          "Collect run metrics and emit the whole result as one machine-readable JSON document \
           (schema probdb.stats/3) on stdout.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans and per-shard convergence series and write them to $(docv) as Chrome \
           trace-event JSON (open in Perfetto or chrome://tracing; pid/tid = shard). \
           Implies series recording.")

let series_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "series-json" ] ~docv:"FILE"
        ~doc:
          "Record the per-shard running estimate with Wilson 95% bounds and write it to \
           $(docv) as JSON (schema probdb.series/1).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Live progress line on stderr: completed samples and running estimate ± its \
           confidence half-width.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Wall-clock budget; on expiry the run stops and reports the estimate so far.")

let sample_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample-budget" ] ~docv:"N"
        ~doc:"Stop after $(docv) completed restarts even if --samples asks for more.")

let on_budget_arg =
  let policies = [ ("fail", `Fail); ("partial", `Partial) ] in
  Arg.(
    value
    & opt (enum policies) `Partial
    & info [ "on-budget" ] ~docv:"POLICY"
        ~doc:
          "What to do when a budget runs out: $(b,fail) exits 1, $(b,partial) (default) \
           reports the best estimate so far with a Wilson 95% interval and exits 3.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Periodically save per-shard sampler state to $(docv) (schema probdb.ckpt/1); a \
           later --resume run continues from it with a bit-identical final estimate.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from a checkpoint written by --checkpoint (same chain, parameters and \
           seed required). Keeps checkpointing to $(docv) unless --checkpoint names \
           another file.")

let estimate_cmd =
  let run path target start burn_in samples seed domains deadline_ms sample_budget on_budget
      checkpoint resume stats stats_json trace_file series_file progress =
    let stats = stats || stats_json in
    let trace_on = trace_file <> None in
    let series_on = trace_on || series_file <> None || progress in
    with_chain path (fun chain ->
        match (state_index chain target, state_index chain start) with
        | Error msg, _ | _, Error msg ->
          Format.eprintf "error: %s@." msg;
          1
        | Ok t, Ok s when samples <= 0 || burn_in < 0 ->
          ignore (t, s);
          Format.eprintf "error: --samples must be positive and --burn-in non-negative@.";
          1
        | Ok t, Ok s ->
          let domains = if domains = 0 then Eval.Pool.available () else domains in
          let guard = Guard.make ?deadline_ms ?max_samples:sample_budget () in
          (* The checkpoint key ties a snapshot to the exact run it came
             from: chain file content + query parameters + seed.  Any
             mismatch makes resume fail loudly instead of silently mixing
             sampler states. *)
          let ckpt =
            match (checkpoint, resume) with
            | None, None -> None
            | _ -> (
              let key =
                Printf.sprintf "probmc|%s|%s|%s|%d|%d" (Digest.to_hex (Digest.file path))
                  target start burn_in seed
              in
              match Serve.Request.make_ckpt ~key ~checkpoint ~resume with
              | Ok ckpt -> ckpt
              | Error msg ->
                Format.eprintf "error: %s@." msg;
                exit 1)
          in
          if Guard.active guard || ckpt <> None then begin
            Guard.clear_interrupt ();
            Sys.set_signal Sys.sigint
              (Sys.Signal_handle (fun _ -> Guard.request_interrupt ()))
          end;
          let obs_was = Obs.enabled () in
          if stats then begin
            Obs.reset ();
            Obs.set_enabled true
          end;
          if trace_on then begin
            Obs.Trace.reset ();
            Obs.Trace.set_enabled true
          end;
          if series_on then begin
            Obs.Series.reset ();
            Obs.Series.set_enabled true
          end;
          let progress_printed =
            if progress then Serve.Request.install_progress ~label:"samples" () else ref false
          in
          let teardown () =
            if !progress_printed then prerr_newline ();
            Obs.Series.set_observer None;
            if trace_on then Obs.Trace.set_enabled false;
            if series_on then Obs.Series.set_enabled false
          in
          let t0 = Obs.now_ns () in
          let rng = Random.State.make [| seed |] in
          let result =
            try
              Obs.Trace.with_span "estimate" (fun () ->
                  Eval.Pool.run_samples ~guard ?ckpt ~domains ~samples rng (fun rng ->
                      Markov.Walk.end_state rng chain ~start:s ~steps:burn_in = t))
            with
            | Eval.Pool.Worker_error { shard; completed; exn; failures } ->
              teardown ();
              if stats && not obs_was then Obs.set_enabled false;
              Format.eprintf "error: worker on shard %d failed after %d samples: %s@." shard
                completed (Printexc.to_string exn);
              List.iter
                (fun f ->
                  if f.Eval.Pool.shard <> shard then
                    Format.eprintf "error: worker on shard %d failed after %d samples: %s@."
                      f.Eval.Pool.shard f.Eval.Pool.completed (Printexc.to_string f.Eval.Pool.exn))
                failures;
              exit 1
            | Guard.Checkpoint.Error msg ->
              teardown ();
              if stats && not obs_was then Obs.set_enabled false;
              Format.eprintf "error: checkpoint error: %s@." msg;
              exit 1
          in
          (match result.Eval.Pool.stopped with
           | Some reason when on_budget = `Fail ->
             teardown ();
             if stats && not obs_was then Obs.set_enabled false;
             Format.eprintf "error: run stopped before completion (--on-budget fail): %s@."
               (Guard.describe reason);
             exit 1
           | _ -> ());
          let hits = result.Eval.Pool.hits in
          let completed = result.Eval.Pool.completed in
          let elapsed_ms = Obs.ms_of_ns (Obs.now_ns () - t0) in
          teardown ();
          if stats && not obs_was then Obs.set_enabled false;
          (match trace_file with Some f -> Obs.Trace.write f | None -> ());
          (match series_file with Some f -> Obs.Series.write f | None -> ());
          let p =
            if completed = 0 then Float.nan else float_of_int hits /. float_of_int completed
          in
          let ci = Obs.wilson_interval ~hits ~total:completed in
          let walk_steps = Obs.count_of "walk.steps" in
          let shards = Obs.shards () in
          let series = Obs.Series.counts () in
          if stats_json then begin
            let open Obs.Json in
            let outcome =
              match result.Eval.Pool.stopped with
              | None -> Obj [ ("status", Str "complete") ]
              | Some reason ->
                let lo, hi = ci in
                Obj
                  [ ("status", Str "partial");
                    ("reason", Str (Guard.reason_slug reason));
                    ("detail", Str (Guard.describe reason));
                    ("completed", Int completed);
                    ("requested", Int result.Eval.Pool.requested);
                    ("ci_low", Float lo);
                    ("ci_high", Float hi)
                  ]
            in
            print_endline
              (to_string
                 (Obj
                    [ ("schema", Str "probdb.stats/3");
                      ("tool", Str "probmc");
                      ("engine", Str "mc-estimate");
                      ("probability", Float p);
                      ("hits", Int hits);
                      ("samples", Int samples);
                      ("completed", Int completed);
                      ("outcome", outcome);
                      ("downgrade", Null);
                      ("steps", Int walk_steps);
                      ("states", Int (Markov.Chain.num_states chain));
                      ("draws", Int walk_steps);
                      ("elapsed_ms", Float elapsed_ms);
                      ("domains", Int domains);
                      ( "shards",
                        List
                          (List.map
                             (fun { Obs.shard; samples; hits; ms } ->
                               Obj
                                 [ ("shard", Int shard);
                                   ("samples", Int samples);
                                   ("hits", Int hits);
                                   ("ms", Float ms)
                                 ])
                             shards) );
                      ("series", Obj (List.map (fun (name, points) -> (name, Int points)) series))
                    ]))
          end
          else begin
            Format.printf "Pr[%s after %d steps from %s] ~ %.6f  (%d/%d hits, %d domain%s)@."
              target burn_in start p hits completed domains
              (if domains = 1 then "" else "s");
            (match result.Eval.Pool.stopped with
             | None -> ()
             | Some reason ->
               let lo, hi = ci in
               Format.printf "outcome   : partial — %s (%d/%d completed)@."
                 (Guard.describe reason) completed result.Eval.Pool.requested;
               Format.printf "ci95      : [%.6f, %.6f]@." lo hi);
            if stats then begin
              Format.printf "engine    : mc-estimate@.";
              Format.printf "steps     : %d@." walk_steps;
              Format.printf "states    : %d@." (Markov.Chain.num_states chain);
              Format.printf "draws     : %d@." walk_steps;
              Format.printf "elapsed   : %.3f ms@." elapsed_ms;
              if shards <> [] then begin
                Format.printf "shards    :@.";
                List.iter
                  (fun { Obs.shard; samples; hits; ms } ->
                    Format.printf "  %4d %8d samples %8d hits %10.3f ms@." shard samples hits ms)
                  shards
              end;
              if series <> [] then begin
                Format.printf "series    :@.";
                List.iter
                  (fun (name, points) -> Format.printf "  %-22s %8d points@." name points)
                  series
              end
            end
          end;
          if result.Eval.Pool.stopped = None then 0 else 3)
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:
         "Monte-Carlo estimate of the end-state probability after a burn-in walk (Thm 5.6 \
          shape), with restarts sharded across OCaml domains. Budgets (--deadline-ms, \
          --sample-budget) stop the run gracefully; --checkpoint/--resume persist and \
          restore per-shard sampler state with bit-identical results.")
    Term.(
      const run $ chain_arg $ target_arg $ start_arg $ burn_in_arg $ samples_arg $ seed_arg
      $ domains_arg $ deadline_arg $ sample_budget_arg $ on_budget_arg $ checkpoint_arg
      $ resume_arg $ stats_arg $ stats_json_arg $ trace_arg $ series_json_arg $ progress_arg)

let walk_cmd =
  let run path start steps seed =
    with_chain path (fun chain ->
        match state_index chain start with
        | Error msg ->
          Format.eprintf "error: %s@." msg;
          1
        | Ok s ->
          let rng = Random.State.make [| seed |] in
          let visited = Markov.Walk.run rng chain ~start:s ~steps in
          Format.printf "%s@."
            (String.concat " -> " (List.map (Markov.Chain.label chain) visited));
          0)
  in
  Cmd.v (Cmd.info "walk" ~doc:"Simulate a random walk.")
    Term.(const run $ chain_arg $ start_arg $ steps_arg $ seed_arg)

let dot_cmd =
  let run path =
    with_chain path (fun chain ->
        Format.printf "%a" Markov.Chain_io.to_dot chain;
        0)
  in
  Cmd.v (Cmd.info "dot" ~doc:"Emit a GraphViz rendering of the chain.") Term.(const run $ chain_arg)

let main =
  Cmd.group
    (Cmd.info "probmc" ~version:"1.0.0" ~doc:"Markov chain analysis toolkit")
    [ classify_cmd; stationary_cmd; mixing_cmd; hitting_cmd; absorb_cmd; estimate_cmd; walk_cmd;
      dot_cmd
    ]

(* Exit codes: 0 complete, 1 engine/input error, 2 usage error, 3 partial
   result.  Cmdliner reports usage errors as 124; remap to the documented
   contract. *)
let () = exit (match Cmd.eval' main with 124 -> 2 | c -> c)
