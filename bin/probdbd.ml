(* probdbd — resident multi-tenant query server speaking probdb.proto/1
   (newline-delimited JSON) over a unix or TCP socket.

     probdbd serve --socket /tmp/probdbd.sock
     probdbd serve --tcp 7411 --deadline-ms 500 --tenant 'ops,max_inflight=2'
     echo '{"op":"query","id":"1","source":"e(a). ?- e(a)."}' \
       | probdbd client --socket /tmp/probdbd.sock *)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string "probdbd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path to listen on (or connect to).")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Listen on (or connect to) 127.0.0.1:$(docv) instead of a unix socket.")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Host for --tcp.")

let addr_of socket tcp host =
  match tcp with
  | Some port -> Serve.Server.Tcp (host, port)
  | None -> Serve.Server.Unix_sock socket

let serve_cmd =
  let max_sessions_arg =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Concurrent connections; further clients are refused with an error response.")
  in
  let cache_arg =
    Arg.(
      value & opt int 64
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Shared compiled-plan cache entries (FIFO eviction).")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-tenant deadline for interactive-class requests.")
  in
  let batch_deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "batch-deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-tenant deadline for batch-class requests.")
  in
  let state_budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "state-budget" ] ~docv:"N" ~doc:"Default per-tenant explored-state budget.")
  in
  let sample_budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "sample-budget" ] ~docv:"N" ~doc:"Default per-tenant sample budget.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 8
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Admission control: concurrent queries per tenant; excess refused.")
  in
  let no_fallback_arg =
    Arg.(
      value & flag
      & info [ "no-fallback" ]
          ~doc:
            "Disable the default degradation for interactive requests (re-running a \
             budget-blown exact evaluation under the sampler); they return partial \
             reports like batch requests.")
  in
  let tenant_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "tenant" ] ~docv:"SPEC"
          ~doc:
            "Per-tenant profile overriding the defaults, e.g. \
             $(b,ops,deadline_ms=500,state_budget=10000,max_inflight=2,fallback=false). \
             Repeatable.")
  in
  let serve socket tcp host max_sessions cache_capacity deadline_ms batch_deadline_ms
      state_budget sample_budget max_inflight no_fallback tenant_specs =
    let default_tenant =
      { Serve.Server.default_profile with
        tp_deadline_ms = deadline_ms;
        tp_batch_deadline_ms = batch_deadline_ms;
        tp_state_budget = state_budget;
        tp_sample_budget = sample_budget;
        tp_max_inflight = max_inflight;
        tp_fallback = not no_fallback
      }
    in
    match
      List.map (Serve.Server.profile_of_spec ~default:default_tenant) tenant_specs
    with
    | exception Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      1
    | tenants -> (
      let cfg =
        { Serve.Server.socket = addr_of socket tcp host;
          max_sessions;
          cache_capacity;
          default_tenant;
          tenants
        }
      in
      match Serve.Server.create cfg with
      | exception Failure msg ->
        Format.eprintf "error: %s@." msg;
        1
      | exception Unix.Unix_error (e, fn, arg) ->
        Format.eprintf "error: %s: %s %s@." fn (Unix.error_message e) arg;
        1
      | t ->
        let stop _ = Serve.Server.shutdown t in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        (match cfg.socket with
         | Serve.Server.Unix_sock path -> Format.eprintf "probdbd: listening on %s@." path
         | Serve.Server.Tcp (h, p) -> Format.eprintf "probdbd: listening on %s:%d@." h p);
        Serve.Server.serve_forever t;
        Format.eprintf "probdbd: shut down@.";
        0)
  in
  let doc = "Run the resident query server (probdb.proto/1)." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket_arg $ tcp_arg $ host_arg $ max_sessions_arg $ cache_arg
      $ deadline_arg $ batch_deadline_arg $ state_budget_arg $ sample_budget_arg
      $ max_inflight_arg $ no_fallback_arg $ tenant_arg)

let client_cmd =
  let wait_arg =
    Arg.(
      value & opt int 0
      & info [ "wait-ms" ] ~docv:"MS"
          ~doc:"Retry a refused/absent socket for up to $(docv) before giving up.")
  in
  let client socket tcp host wait_ms =
    let sockaddr =
      match addr_of socket tcp host with
      | Serve.Server.Unix_sock path -> Unix.ADDR_UNIX path
      | Serve.Server.Tcp (h, p) -> Unix.ADDR_INET (Unix.inet_addr_of_string h, p)
    in
    match Serve.Client.connect ~retry_ms:wait_ms sockaddr with
    | exception Unix.Unix_error (e, _, _) ->
      Format.eprintf "error: cannot connect: %s@." (Unix.error_message e);
      1
    | c ->
      let rc = ref 0 in
      (try
         let continue = ref true in
         while !continue do
           match input_line stdin with
           | "" -> ()
           | line -> print_endline (Serve.Client.rpc c line)
           | exception End_of_file -> continue := false
         done
       with End_of_file ->
         Format.eprintf "error: server closed the connection@.";
         rc := 1);
      Serve.Client.close c;
      !rc
  in
  let doc = "Send request lines from stdin to a running server, print responses." in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const client $ socket_arg $ tcp_arg $ host_arg $ wait_arg)

let main =
  let doc = "resident probabilistic query server" in
  Cmd.group (Cmd.info "probdbd" ~version:"1.0.0" ~doc) [ serve_cmd; client_cmd ]

let () = exit (match Cmd.eval' main with 124 -> 2 | c -> c)
