(* probdbd — resident multi-tenant query server speaking probdb.proto/3
   (newline-delimited JSON) over a unix or TCP socket.

     probdbd serve --socket /tmp/probdbd.sock
     probdbd serve --state-dir /var/lib/probdbd   # durable loads + replay
     probdbd serve --tcp 7411 --deadline-ms 500 --tenant 'ops,max_inflight=2'
     probdbd serve --log-json 2>requests.jsonl
     echo '{"op":"query","id":"1","source":"e(a). ?- e(a)."}' \
       | probdbd client --socket /tmp/probdbd.sock
     probdbd client --socket /tmp/probdbd.sock --retry --deadline-ms 2000
     probdbd top --socket /tmp/probdbd.sock --interval 2 *)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string "probdbd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path to listen on (or connect to).")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Listen on (or connect to) 127.0.0.1:$(docv) instead of a unix socket.")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Host for --tcp.")

let addr_of socket tcp host =
  match tcp with
  | Some port -> Serve.Server.Tcp (host, port)
  | None -> Serve.Server.Unix_sock socket

let serve_cmd =
  let max_sessions_arg =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Concurrent connections; further clients are refused with an error response.")
  in
  let cache_arg =
    Arg.(
      value & opt int 64
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Shared compiled-plan cache entries (FIFO eviction).")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-tenant deadline for interactive-class requests.")
  in
  let batch_deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "batch-deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-tenant deadline for batch-class requests.")
  in
  let state_budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "state-budget" ] ~docv:"N" ~doc:"Default per-tenant explored-state budget.")
  in
  let sample_budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "sample-budget" ] ~docv:"N" ~doc:"Default per-tenant sample budget.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 8
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Admission control: concurrent queries per tenant; excess refused.")
  in
  let no_fallback_arg =
    Arg.(
      value & flag
      & info [ "no-fallback" ]
          ~doc:
            "Disable the default degradation for interactive requests (re-running a \
             budget-blown exact evaluation under the sampler); they return partial \
             reports like batch requests.")
  in
  let tenant_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "tenant" ] ~docv:"SPEC"
          ~doc:
            "Per-tenant profile overriding the defaults, e.g. \
             $(b,ops,deadline_ms=500,state_budget=10000,max_inflight=2,fallback=false). \
             Repeatable.")
  in
  let no_telemetry_arg =
    Arg.(
      value & flag
      & info [ "no-telemetry" ]
          ~doc:
            "Disable the telemetry plane: no per-request metrics are recorded and the \
             $(b,metrics) op returns an error.  The request path is the plain \
             uninstrumented one.")
  in
  let log_json_arg =
    Arg.(
      value & flag
      & info [ "log-json" ]
          ~doc:
            "Emit one structured JSON log line per request to stderr, carrying the \
             request's correlation id (the response's $(b,corr) field).")
  in
  let log_level_arg =
    Arg.(
      value
      & opt (enum [ ("debug", Obs.Log.Debug); ("info", Obs.Log.Info);
                    ("warn", Obs.Log.Warn); ("error", Obs.Log.Error) ])
          Obs.Log.Info
      & info [ "log-level" ] ~docv:"LEVEL" ~doc:"Minimum level for --log-json lines.")
  in
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Durable state directory: every $(b,load) is journaled (CRC-framed, \
             fsynced before the ack) and replayed on restart, so recovered \
             databases answer queries identically to the pre-crash server.")
  in
  let read_deadline_arg =
    Arg.(
      value & opt float 10_000.
      & info [ "read-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-frame read deadline, measured from a request's first byte; a \
             connection that stalls mid-frame is answered with a $(b,timeout) \
             error and closed.  Idle connections are unaffected.")
  in
  let max_frame_arg =
    Arg.(
      value & opt int (1 lsl 20)
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:
            "Largest accepted request line; longer frames get a \
             $(b,frame_too_large) error and the connection is closed.")
  in
  let serve socket tcp host max_sessions cache_capacity deadline_ms batch_deadline_ms
      state_budget sample_budget max_inflight no_fallback tenant_specs no_telemetry
      log_json log_level state_dir read_deadline_ms max_frame =
    let default_tenant =
      { Serve.Server.default_profile with
        tp_deadline_ms = deadline_ms;
        tp_batch_deadline_ms = batch_deadline_ms;
        tp_state_budget = state_budget;
        tp_sample_budget = sample_budget;
        tp_max_inflight = max_inflight;
        tp_fallback = not no_fallback
      }
    in
    match
      List.map (Serve.Server.profile_of_spec ~default:default_tenant) tenant_specs
    with
    | exception Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      1
    | tenants -> (
      let cfg =
        { Serve.Server.socket = addr_of socket tcp host;
          max_sessions;
          cache_capacity;
          default_tenant;
          tenants;
          telemetry = not no_telemetry;
          state_dir;
          journal_compact_every = 64;
          read_deadline_ms;
          max_frame
        }
      in
      if log_json then
        Obs.Log.set_sink ~level:log_level (Some (fun line -> prerr_endline line));
      match Serve.Server.create cfg with
      | exception Failure msg ->
        Format.eprintf "error: %s@." msg;
        1
      | exception Serve.Journal.Error msg ->
        Format.eprintf "error: state dir: %s@." msg;
        1
      | exception Unix.Unix_error (e, fn, arg) ->
        Format.eprintf "error: %s: %s %s@." fn (Unix.error_message e) arg;
        1
      | t ->
        let stop _ = Serve.Server.shutdown t in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        (match cfg.socket with
         | Serve.Server.Unix_sock path -> Format.eprintf "probdbd: listening on %s@." path
         | Serve.Server.Tcp (h, p) -> Format.eprintf "probdbd: listening on %s:%d@." h p);
        Obs.Log.log Obs.Log.Info "serve.start"
          [ ( "socket",
              Obs.Json.Str
                (match cfg.socket with
                 | Serve.Server.Unix_sock path -> path
                 | Serve.Server.Tcp (h, p) -> Printf.sprintf "%s:%d" h p) );
            ("telemetry", Obs.Json.Bool cfg.telemetry)
          ];
        Serve.Server.serve_forever t;
        Obs.Log.log Obs.Log.Info "serve.stop" [];
        Format.eprintf "probdbd: shut down@.";
        0)
  in
  let doc = "Run the resident query server (probdb.proto/3)." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket_arg $ tcp_arg $ host_arg $ max_sessions_arg $ cache_arg
      $ deadline_arg $ batch_deadline_arg $ state_budget_arg $ sample_budget_arg
      $ max_inflight_arg $ no_fallback_arg $ tenant_arg $ no_telemetry_arg
      $ log_json_arg $ log_level_arg $ state_dir_arg $ read_deadline_arg
      $ max_frame_arg)

let client_cmd =
  let wait_arg =
    Arg.(
      value & opt int 0
      & info [ "wait-ms" ] ~docv:"MS"
          ~doc:"Retry a refused/absent socket for up to $(docv) before giving up.")
  in
  let retry_arg =
    Arg.(
      value & flag
      & info [ "retry" ]
          ~doc:
            "Resilient mode: reconnect with jittered exponential backoff when the \
             server drops the connection, and re-issue idempotent ops \
             (query/estimate/stats/metrics/ping) automatically.  Every request \
             carries an idempotency key so a retry the server already answered is \
             deduplicated instead of re-executed.")
  in
  let retry_budget_arg =
    Arg.(
      value & opt float 5_000.
      & info [ "retry-budget-ms" ] ~docv:"MS"
          ~doc:"Total reconnect/re-issue budget per request in --retry mode.")
  in
  let client_deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request response deadline in --retry mode; expiry fails the \
                request with a timeout.")
  in
  let client socket tcp host wait_ms retry retry_budget_ms deadline_ms =
    let sockaddr =
      match addr_of socket tcp host with
      | Serve.Server.Unix_sock path -> Unix.ADDR_UNIX path
      | Serve.Server.Tcp (h, p) -> Unix.ADDR_INET (Unix.inet_addr_of_string h, p)
    in
    if retry then begin
      match
        Serve.Client.resilient_connect ?deadline_ms
          ~retry_budget_ms:(Float.max retry_budget_ms (float_of_int wait_ms))
          sockaddr
      with
      | exception Serve.Client.Unavailable m ->
        Format.eprintf "error: cannot connect: %s@." m;
        1
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "error: cannot connect: %s@." (Unix.error_message e);
        1
      | r ->
        let rc = ref 0 in
        let continue = ref true in
        while !continue do
          match input_line stdin with
          | "" -> ()
          | line -> (
            match Serve.Jsonr.parse_result line with
            | Error m ->
              Format.eprintf "error: request is not JSON: %s@." m;
              rc := 1
            | Ok j -> (
              match Serve.Client.resilient_rpc r j with
              | resp -> print_endline (Obs.Json.to_string resp)
              | exception Serve.Client.Timeout m
              | exception Serve.Client.Unavailable m ->
                Format.eprintf "error: %s@." m;
                rc := 1))
          | exception End_of_file -> continue := false
        done;
        Serve.Client.resilient_close r;
        !rc
    end
    else
      match Serve.Client.connect ~retry_ms:wait_ms sockaddr with
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "error: cannot connect: %s@." (Unix.error_message e);
        1
      | c ->
        let rc = ref 0 in
        (try
           let continue = ref true in
           while !continue do
             match input_line stdin with
             | "" -> ()
             | line -> print_endline (Serve.Client.rpc c line)
             | exception End_of_file -> continue := false
           done
         with End_of_file ->
           Format.eprintf "error: server closed the connection@.";
           rc := 1);
        Serve.Client.close c;
        !rc
  in
  let doc = "Send request lines from stdin to a running server, print responses." in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const client $ socket_arg $ tcp_arg $ host_arg $ wait_arg $ retry_arg
      $ retry_budget_arg $ client_deadline_arg)

(* --- top: live per-tenant metrics table ------------------------------------ *)

let jfield o k = match o with Obs.Json.Obj fs -> List.assoc_opt k fs | _ -> None

let jfloat = function
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int i) -> float_of_int i
  | _ -> 0.0

let jint = function
  | Some (Obs.Json.Int i) -> i
  | Some (Obs.Json.Float f) -> int_of_float f
  | _ -> 0

let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period between metrics polls.")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Print a single snapshot without clearing the screen and exit.")
  in
  let wait_arg =
    Arg.(
      value & opt int 0
      & info [ "wait-ms" ] ~docv:"MS"
          ~doc:"Retry a refused/absent socket for up to $(docv) before giving up.")
  in
  let render ~once ~prev ~now_s doc =
    let server = jfield doc "server" in
    let uptime_s = jfloat (Option.bind server (fun s -> jfield s "uptime_ms")) /. 1e3 in
    let sessions = jint (Option.bind server (fun s -> jfield s "sessions")) in
    let served = jint (Option.bind server (fun s -> jfield s "served")) in
    let tenants = match jfield doc "tenants" with Some (Obs.Json.Obj fs) -> fs | _ -> [] in
    let b = Buffer.create 1024 in
    if not once then Buffer.add_string b "\027[2J\027[H";
    Buffer.add_string b
      (Printf.sprintf "probdbd top — uptime %.1fs  sessions %d  served %d\n\n" uptime_s
         sessions served);
    Buffer.add_string b
      (Printf.sprintf "%-12s %8s %8s %9s %9s %9s %7s %6s %8s\n" "TENANT" "Q/S" "INFLIGHT"
         "P50(MS)" "P95(MS)" "P99(MS)" "CACHE%" "DEGR" "REFUSED");
    List.iter
      (fun (name, row) ->
        let f k = jfield row k in
        let requests = jint (f "requests") in
        let qps =
          match Hashtbl.find_opt prev name with
          | Some (r0, t0) when now_s > t0 -> float_of_int (requests - r0) /. (now_s -. t0)
          | _ -> 0.0
        in
        Hashtbl.replace prev name (requests, now_s);
        let hits = jint (f "cache_hits") and misses = jint (f "cache_misses") in
        let cache_pct =
          if hits + misses = 0 then 0.0
          else 100.0 *. float_of_int hits /. float_of_int (hits + misses)
        in
        Buffer.add_string b
          (Printf.sprintf "%-12s %8.1f %8d %9.2f %9.2f %9.2f %6.1f%% %6d %8d\n" name qps
             (jint (f "inflight")) (jfloat (f "p50_ms")) (jfloat (f "p95_ms"))
             (jfloat (f "p99_ms")) cache_pct (jint (f "degraded")) (jint (f "refused"))))
      tenants;
    if tenants = [] then Buffer.add_string b "(no requests recorded yet)\n";
    print_string (Buffer.contents b);
    flush stdout
  in
  let top socket tcp host wait_ms interval once =
    let sockaddr =
      match addr_of socket tcp host with
      | Serve.Server.Unix_sock path -> Unix.ADDR_UNIX path
      | Serve.Server.Tcp (h, p) -> Unix.ADDR_INET (Unix.inet_addr_of_string h, p)
    in
    match Serve.Client.connect ~retry_ms:wait_ms sockaddr with
    | exception Unix.Unix_error (e, _, _) ->
      Format.eprintf "error: cannot connect: %s@." (Unix.error_message e);
      1
    | c -> (
      let prev = Hashtbl.create 8 in
      let poll n =
        let fields =
          Serve.Client.rpc_fields c
            (Obs.Json.Obj
               [ ("op", Obs.Json.Str "metrics");
                 ("id", Obs.Json.Str (Printf.sprintf "top-%d" n))
               ])
        in
        match List.assoc_opt "metrics" fields with
        | Some doc -> render ~once ~prev ~now_s:(Unix.gettimeofday ()) doc
        | None -> failwith "response carries no \"metrics\" document"
      in
      try
        let rc =
          if once then (
            poll 0;
            0)
          else begin
            let n = ref 0 in
            while true do
              poll !n;
              Stdlib.incr n;
              Unix.sleepf (Float.max 0.1 interval)
            done;
            0
          end
        in
        Serve.Client.close c;
        rc
      with
      | Failure m ->
        Serve.Client.close c;
        Format.eprintf "error: %s@." m;
        1
      | End_of_file ->
        Serve.Client.close c;
        Format.eprintf "error: server closed the connection@.";
        1)
  in
  let doc = "Poll the metrics op and render a live per-tenant table." in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const top $ socket_arg $ tcp_arg $ host_arg $ wait_arg $ interval_arg $ once_arg)

let main =
  let doc = "resident probabilistic query server" in
  Cmd.group (Cmd.info "probdbd" ~version:"1.0.0" ~doc) [ serve_cmd; client_cmd; top_cmd ]

let () = exit (match Cmd.eval' main with 124 -> 2 | c -> c)
