(* probdl — evaluate probabilistic datalog programs (Deutch, Koch & Milo,
   PODS 2010) from the command line.

     probdl run program.pdl --semantics inflationary --method exact
     probdl run program.pdl --semantics noninflationary --method sample \
            --burn-in 200 --eps 0.05 --delta 0.05
     probdl check program.pdl      # parse, classify, report diagnostics *)

open Cmdliner

let read_parsed path =
  try Ok (Lang.Parser.parse_file path) with
  | Lang.Parser.Parse_error msg -> Error msg
  | Lang.Datalog.Datalog_error msg -> Error msg
  | Sys_error msg -> Error msg

let semantics_conv =
  let parse = function
    | "inflationary" | "inf" -> Ok Eval.Engine.Inflationary
    | "noninflationary" | "noninf" -> Ok Eval.Engine.Noninflationary
    | s -> Error (`Msg (Printf.sprintf "unknown semantics %S (inflationary|noninflationary)" s))
  in
  let print fmt = function
    | Eval.Engine.Inflationary -> Format.pp_print_string fmt "inflationary"
    | Eval.Engine.Noninflationary -> Format.pp_print_string fmt "noninflationary"
  in
  Arg.conv (parse, print)

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Datalog program file.")

let semantics_arg =
  Arg.(
    value
    & opt semantics_conv Eval.Engine.Inflationary
    & info [ "s"; "semantics" ] ~docv:"SEM" ~doc:"inflationary or noninflationary.")

let method_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("exact", `Exact); ("sample", `Sample); ("partitioned", `Partitioned);
             ("lumped", `Lumped); ("time-average", `Time_average)
           ])
        `Exact
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"exact, sample, partitioned, lumped or time-average.")

let eps_arg = Arg.(value & opt float 0.05 & info [ "eps" ] ~doc:"Absolute error bound (sampling).")
let delta_arg = Arg.(value & opt float 0.05 & info [ "delta" ] ~doc:"Failure probability (sampling).")
let burn_in_arg =
  Arg.(value & opt int 200 & info [ "burn-in" ] ~doc:"Walk length per sample (non-inflationary sampling).")
let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")
let optimize_arg =
  Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Apply algebraic kernel optimisation.")

let interpreted_arg =
  Arg.(
    value
    & flag
    & info [ "interpreted" ]
        ~doc:
          "Interpret the kernel AST every step instead of executing compiled physical plans \
           (ablation baseline; answers are identical either way).")

let naive_arg =
  Arg.(
    value
    & flag
    & info [ "naive" ]
        ~doc:
          "Step exact inflationary fixpoints naively — re-evaluate every rule body against \
           the whole state each step — instead of through semi-naive delta plans (ablation \
           baseline; answers and visited states are identical either way).")

let magic_arg =
  Arg.(
    value
    & vflag false
        [ ( true,
            info [ "magic" ]
              ~doc:
                "Apply the magic-sets demand rewrite: specialise the program to the query \
                 event's ground tuple before evaluation (inflationary semantics only; the \
                 answer is unchanged, irrelevant derivations are pruned)." );
          (false, info [ "no-magic" ] ~doc:"Disable the magic-sets rewrite (the default).")
        ])

let max_states_arg =
  Arg.(value & opt int 100_000 & info [ "max-states" ] ~doc:"State-space cap for exact non-inflationary evaluation.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "domains" ]
        ~docv:"N"
        ~doc:
          "Shard sampling across $(docv) OCaml domains (0 = all cores). Fixed-seed estimates \
           are identical for any N >= 1; omit for the legacy sequential sampler.")

let steps_arg =
  Arg.(
    value
    & opt int 10_000
    & info [ "steps" ] ~doc:"Counted window length (time-average method).")

let max_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ]
        ~doc:"Per-sample step cap for the inflationary sampler (default 100000).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Wall-clock budget; on expiry the run stops and reports what it has (see --on-budget).")

let state_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "state-budget" ] ~docv:"N"
        ~doc:
          "Graceful state budget for exact evaluation: stop after interning $(docv) chain \
           states and degrade per --on-budget, instead of the hard --max-states failure.")

let sample_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample-budget" ] ~docv:"N"
        ~doc:"Stop sampling after $(docv) completed samples even if (eps, delta) ask for more.")

let on_budget_arg =
  let policies = [ ("fail", `Fail); ("partial", `Partial); ("fallback", `Fallback) ] in
  Arg.(
    value
    & opt (enum policies) `Partial
    & info [ "on-budget" ] ~docv:"POLICY"
        ~doc:
          "Reaction when a budget runs out: $(b,fail) exits 1; $(b,partial) (default) reports \
           the best answer so far (sampling: estimate + Wilson 95% interval; exact: progress \
           only) and exits 3; $(b,fallback) additionally re-runs an exact method that blew \
           its state budget under the sampler with the given --eps/--delta/--burn-in, \
           recording the downgrade in the report.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Periodically save per-shard sampler state to $(docv) (schema probdb.ckpt/1); a \
           later --resume run continues from it with a bit-identical final estimate. \
           Sampling methods only; forces the sharded sampler (--domains 1) when --domains \
           is not given.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from a checkpoint written by --checkpoint (same program, parameters and \
           seed required). Keeps checkpointing to $(docv) unless --checkpoint names another \
           file.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Collect run metrics and print them as a table after the report.")

let stats_json_arg =
  Arg.(
    value & flag
    & info [ "stats-json" ]
        ~doc:
          "Collect run metrics and emit the whole report as one machine-readable JSON document \
           (schema probdb.stats/3) on stdout instead of the table.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans and per-iteration series and write them to $(docv) as Chrome \
           trace-event JSON (open in Perfetto or chrome://tracing; pid/tid = shard). \
           Implies series recording.")

let series_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "series-json" ] ~docv:"FILE"
        ~doc:
          "Record per-iteration convergence series (fixpoint growth, chain frontier, running \
           estimate with Wilson 95% bounds) and write them to $(docv) as JSON (schema \
           probdb.series/1).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Live progress line on stderr, updated from the recorded series: current step, \
           states, running estimate ± its confidence half-width.")

let run_cmd =
  let run path semantics method_ eps delta burn_in steps seed max_states max_steps optimize
      interpreted naive magic domains deadline_ms state_budget sample_budget on_budget
      checkpoint resume stats stats_json trace_file series_file progress =
    let plan = not interpreted in
    let strategy = if naive then Eval.Engine.Naive else Eval.Engine.Semi_naive in
    let stats = stats || stats_json in
    let trace_on = trace_file <> None in
    let series_on = trace_on || series_file <> None || progress in
    match read_parsed path with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok parsed -> (
      let method_ =
        match method_ with
        | `Exact -> Eval.Engine.Exact
        | `Partitioned -> Eval.Engine.Exact_partitioned
        | `Lumped -> Eval.Engine.Exact_lumped
        | `Sample -> Eval.Engine.Sampling { eps; delta; burn_in }
        | `Time_average -> Eval.Engine.Time_average { steps; burn_in }
      in
      let domains =
        match domains with Some 0 -> Some (Eval.Pool.available ()) | d -> d
      in
      let governed =
        deadline_ms <> None || state_budget <> None || sample_budget <> None
        || checkpoint <> None || resume <> None
      in
      (* A budgetless guard still watches the interrupt flag, so SIGINT on a
         checkpointing run stops it gracefully (final checkpoint + partial
         report) instead of killing the process mid-save. *)
      let guard =
        if governed then
          Guard.make ?deadline_ms ?max_states:state_budget ?max_samples:sample_budget ()
        else Guard.unlimited
      in
      let on_budget =
        match on_budget with
        | `Fail -> Eval.Engine.Fail
        | `Partial -> Eval.Engine.Degrade
        | `Fallback -> Eval.Engine.Fallback { eps; delta; burn_in }
      in
      (* The checkpoint key ties a snapshot to the run that wrote it:
         program text + seed + semantics + sampling parameters.  A mismatch
         makes resume fail loudly instead of mixing sampler states. *)
      let ckpt =
        match (checkpoint, resume) with
        | None, None -> None
        | _ -> (
          let key =
            Printf.sprintf "probdl|%s|%d|%s|%g|%g|%d"
              (Digest.to_hex (Digest.file path))
              seed
              (Serve.Request.semantics_slug semantics)
              eps delta burn_in
          in
          match Serve.Request.make_ckpt ~key ~checkpoint ~resume with
          | Ok ckpt -> ckpt
          | Error msg ->
            Format.eprintf "error: %s@." msg;
            exit 1)
      in
      if governed then begin
        Guard.clear_interrupt ();
        Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> Guard.request_interrupt ()))
      end;
      (* Tracing is enabled here, around the whole run, rather than letting
         [Engine.run] manage it: multi-event programs call the engine once
         per event and the trace/series must accumulate across all of them
         into one artifact. *)
      if trace_on then begin
        Obs.Trace.reset ();
        Obs.Trace.set_enabled true
      end;
      if series_on then begin
        Obs.Series.reset ();
        Obs.Series.set_enabled true
      end;
      let progress_printed =
        if progress then Serve.Request.install_progress ~label:"step" () else ref false
      in
      let finish code =
        if !progress_printed then prerr_newline ();
        if progress then Obs.Series.set_observer None;
        if trace_on then Obs.Trace.set_enabled false;
        if series_on then Obs.Series.set_enabled false;
        (* Partial runs (exit 3) flush artifacts too: the recorded trace and
           series are exactly what a budget post-mortem wants. *)
        if code = 0 || code = 3 then begin
          (match trace_file with Some f -> Obs.Trace.write f | None -> ());
          (match series_file with Some f -> Obs.Series.write f | None -> ())
        end;
        code
      in
      let run_one parsed =
        Eval.Engine.run ~seed ~max_states ?max_steps ~optimize ~plan ~strategy ~magic ?domains
          ~guard ~on_budget ?ckpt ~stats ~trace:trace_on ~series:series_on ~semantics ~method_
          parsed
      in
      let is_partial r =
        match r.Eval.Engine.outcome with
        | Eval.Engine.Complete -> false
        | Eval.Engine.Partial _ -> true
      in
      finish
      @@ try
        match parsed.Lang.Parser.events with
        | [] ->
          Format.eprintf "error: program has no ?- event@.";
          1
        | [ _ ] ->
          let report = run_one parsed in
          if stats_json then
            print_endline (Obs.Json.to_string (Eval.Engine.json_of_report ~tool:"probdl" report))
          else Format.printf "%a@." Eval.Engine.pp_report report;
          if is_partial report then 3 else 0
        | events when stats_json ->
          (* Per-event reports as one JSON array, so the document stays
             machine-readable for multi-event programs too. *)
          let reports =
            List.map
              (fun e -> run_one { parsed with Lang.Parser.event = Some e; events = [ e ] })
              events
          in
          print_endline
            (Obs.Json.to_string
               (Obs.Json.List (List.map (Eval.Engine.json_of_report ~tool:"probdl") reports)));
          if List.exists is_partial reports then 3 else 0
        | events -> (
          (* Several ?- events: answer them all.  Under non-inflationary
             exact evaluation the chain is built and decomposed once. *)
          match (semantics, method_) with
          | Eval.Engine.Noninflationary, Eval.Engine.Exact ->
            let program = parsed.Lang.Parser.program in
            let kernel, init =
              match Lang.Parser.ctable_of parsed with
              | Some ct -> Lang.Compile.noninflationary_kernel_ctable program ct
              | None ->
                Lang.Compile.noninflationary_kernel program
                  (Lang.Parser.database_of_facts parsed.Lang.Parser.facts)
            in
            let results =
              Eval.Exact_noninflationary.eval_events ~max_states ~guard ~plan ~kernel ~events
                init
            in
            Format.printf "%-30s %-20s %s@." "event" "exact" "~float";
            List.iter
              (fun (e, p) ->
                Format.printf "%-30s %-20s %.6f@."
                  (Format.asprintf "%a" Lang.Event.pp e)
                  (Bigq.Q.to_string p) (Bigq.Q.to_float p))
              results;
            0
          | _ ->
            Format.printf "%-30s %-14s %s@." "event" "answer" "exact";
            let partial = ref false in
            List.iter
              (fun e ->
                let report =
                  run_one { parsed with Lang.Parser.event = Some e; events = [ e ] }
                in
                if is_partial report then partial := true;
                Format.printf "%-30s %-14.6f %s@."
                  (Format.asprintf "%a" Lang.Event.pp e)
                  report.Eval.Engine.probability
                  (match report.Eval.Engine.exact with
                   | Some q -> Bigq.Q.to_string q
                   | None -> "-"))
              events;
            if !partial then 3 else 0)
      with
      | Eval.Engine.Engine_error msg | Lang.Compile.Compile_error msg ->
        Format.eprintf "error: %s@." msg;
        1
      | Guard.Exhausted reason ->
        (* Only the multi-event exact fast path lets this escape (single-event
           runs turn it into a report inside the engine). *)
        Format.eprintf "partial: %s@." (Guard.describe reason);
        if on_budget = Eval.Engine.Fail then 1 else 3
      | Markov.Chain.Chain_error msg ->
        Format.eprintf "error: %s (try --method sample or a larger --max-states)@." msg;
        1)
  in
  let doc = "Evaluate the program's ?- event probability." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ program_arg $ semantics_arg $ method_arg $ eps_arg $ delta_arg $ burn_in_arg
      $ steps_arg $ seed_arg $ max_states_arg $ max_steps_arg $ optimize_arg $ interpreted_arg
      $ naive_arg $ magic_arg $ domains_arg $ deadline_arg $ state_budget_arg $ sample_budget_arg $ on_budget_arg
      $ checkpoint_arg $ resume_arg $ stats_arg $ stats_json_arg $ trace_arg $ series_json_arg
      $ progress_arg)

let check_cmd =
  let check path =
    match read_parsed path with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok parsed ->
      let program = parsed.Lang.Parser.program in
      Format.printf "@[<v>parsed %d rules, %d facts@," (List.length program)
        (List.length parsed.Lang.Parser.facts);
      Format.printf "IDB: %s@," (String.concat ", " (Lang.Datalog.idb_predicates program));
      Format.printf "EDB: %s@," (String.concat ", " (Lang.Datalog.edb_predicates program));
      Format.printf "linear: %b@," (Lang.Linearity.is_linear program);
      Format.printf "repair-key on base relations only: %b@,"
        (Lang.Linearity.repair_key_on_base_only program);
      Format.printf "probabilistic rules: %d@,"
        (List.length (List.filter Lang.Datalog.is_probabilistic_rule program));
      (let pc_depth = if Option.is_some (Lang.Parser.ctable_of parsed) then 2 else 0 in
       match Lang.Tractable.mixing_bound program ~pc_table_depth:pc_depth with
       | Some d ->
         Format.printf "feed-forward: yes — non-inflationary chain mixes exactly within %d steps@," d
       | None -> Format.printf "feed-forward: no (recursive dependencies)@,");
      (match parsed.Lang.Parser.event with
       | Some e -> Format.printf "event: %a@," Lang.Event.pp e
       | None -> Format.printf "event: (none)@,");
      Format.printf "@]@.";
      0
  in
  let doc = "Parse and classify a program without evaluating it." in
  Cmd.v (Cmd.info "check" ~doc) Term.(const check $ program_arg)

let print_cmd =
  let print path =
    match read_parsed path with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok parsed ->
      Format.printf "%a@." Lang.Datalog.pp_program parsed.Lang.Parser.program;
      0
  in
  let doc = "Pretty-print the parsed program (normalised syntax)." in
  Cmd.v (Cmd.info "print" ~doc) Term.(const print $ program_arg)

let explain_cmd =
  let explain path =
    match read_parsed path with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok parsed ->
      let program = parsed.Lang.Parser.program in
      let db = Lang.Parser.database_of_facts parsed.Lang.Parser.facts in
      (* Base-tuple legend. *)
      let base =
        List.concat_map
          (fun (name, r) ->
            List.rev (Relational.Relation.fold (fun t acc -> (name, t) :: acc) r []))
          (Relational.Database.bindings db)
      in
      Format.printf "base tuples:@.";
      List.iteri
        (fun i (name, t) ->
          Format.printf "  [%d] %s%s@." i name (Relational.Tuple.to_string t))
        base;
      Format.printf "@.derivable facts (all rule firings, provenance in brackets):@.";
      let facts = Eval.Partition.saturate program db in
      let sorted =
        List.sort
          (fun (p1, t1, _) (p2, t2, _) ->
            match String.compare p1 p2 with 0 -> Relational.Tuple.compare t1 t2 | c -> c)
          facts
      in
      List.iter
        (fun (pred, t, prov) ->
          Format.printf "  %s%s  [%s]@." pred (Relational.Tuple.to_string t)
            (String.concat "," (List.map string_of_int prov)))
        sorted;
      let parts = Eval.Partition.classes program db in
      Format.printf "@.independence classes (Section 5.1): %d@." (List.length parts);
      List.iteri
        (fun i part ->
          Format.printf "  class %d: %s@." i
            (String.concat ", "
               (List.map (fun (n, t) -> n ^ Relational.Tuple.to_string t) part)))
        parts;
      0
  in
  let doc = "Show derivable facts with provenance and the independence classes." in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const explain $ program_arg)

let worlds_cmd =
  let worlds path =
    match read_parsed path with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok parsed -> (
      match Lang.Parser.ctable_of parsed with
      | None ->
        Format.printf "certain input: a single world (no var declarations).@.";
        0
      | Some ct ->
        let worlds = Prob.Ctable.worlds ct in
        Format.printf "%d possible worlds:@.@." (Prob.Dist.size worlds);
        List.iteri
          (fun i (db, p) ->
            Format.printf "world %d, probability %s:@." (i + 1) (Bigq.Q.to_string p);
            List.iter
              (fun (name, r) ->
                Relational.Relation.iter
                  (fun t -> Format.printf "  %s%s@." name (Relational.Tuple.to_string t))
                  r)
              (Relational.Database.bindings db);
            Format.printf "@.")
          (Prob.Dist.support worlds);
        0)
  in
  let doc = "Enumerate the possible worlds of a pc-table input." in
  Cmd.v (Cmd.info "worlds" ~doc) Term.(const worlds $ program_arg)

let hitting_cmd =
  let hitting path max_states =
    match read_parsed path with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok parsed -> (
      match parsed.Lang.Parser.event with
      | None ->
        Format.eprintf "error: program has no ?- event@.";
        1
      | Some event -> (
        let program = parsed.Lang.Parser.program in
        let db = Lang.Parser.database_of_facts parsed.Lang.Parser.facts in
        let kernel, init =
          match Lang.Parser.ctable_of parsed with
          | Some ct -> Lang.Compile.noninflationary_kernel_ctable program ct
          | None -> Lang.Compile.noninflationary_kernel program db
        in
        let query = Lang.Forever.make ~kernel ~event in
        try
          (match Eval.Exact_noninflationary.expected_hitting_time ~max_states query init with
           | Some t ->
             Format.printf "expected steps until %a first holds: %s (~%.6f)@." Lang.Event.pp event
               (Bigq.Q.to_string t) (Bigq.Q.to_float t)
           | None ->
             Format.printf "the event is reached with probability < 1: expectation is infinite@.");
          0
        with Markov.Chain.Chain_error msg ->
          Format.eprintf "error: %s@." msg;
          1))
  in
  let doc = "Exact expected time until the event first holds (non-inflationary semantics)." in
  Cmd.v (Cmd.info "hitting" ~doc) Term.(const hitting $ program_arg $ max_states_arg)

(* --- interactive REPL ---------------------------------------------------- *)

type repl_state = {
  mutable clauses : string list;  (* accumulated program text, reversed *)
  mutable semantics : Eval.Engine.semantics;
  mutable sampling : bool;
  mutable eps : float;
  mutable burn_in : int;
}

let repl_help () =
  print_string
    "Enter clauses (facts, rules, var declarations) to accumulate a program.\n\
     A query  ?- R(a).  evaluates immediately. Commands:\n\
     \  :show              print the accumulated program\n\
     \  :clear             start over\n\
     \  :load FILE         append a file's clauses\n\
     \  :set semantics inflationary|noninflationary\n\
     \  :set method exact|sample\n\
     \  :set eps FLOAT     sampling accuracy (default 0.05)\n\
     \  :set burn-in INT   walk length for non-inflationary sampling\n\
     \  :help              this message\n\
     \  :quit              leave\n"

let repl_eval st query_line =
  let src = String.concat "\n" (List.rev st.clauses) ^ "\n" ^ query_line in
  match (try Ok (Lang.Parser.parse src) with
         | Lang.Parser.Parse_error m | Lang.Datalog.Datalog_error m -> Error m
         | Prob.Ctable.Ctable_error m -> Error m)
  with
  | Error msg -> Format.printf "error: %s@." msg
  | Ok parsed -> (
    let method_ =
      if st.sampling then Eval.Engine.Sampling { eps = st.eps; delta = 0.05; burn_in = st.burn_in }
      else Eval.Engine.Exact
    in
    try
      let report = Eval.Engine.run ~semantics:st.semantics ~method_ parsed in
      (match report.Eval.Engine.exact with
       | Some q -> Format.printf "%s (~%.6f)@." (Bigq.Q.to_string q) report.Eval.Engine.probability
       | None -> Format.printf "~%.6f (sampled)@." report.Eval.Engine.probability)
    with
    | Eval.Engine.Engine_error msg | Lang.Compile.Compile_error msg ->
      Format.printf "error: %s@." msg
    | Markov.Chain.Chain_error msg -> Format.printf "error: %s@." msg)

let repl_add st line =
  (* Validate the program with the new clause before accepting it. *)
  let candidate = String.concat "\n" (List.rev (line :: st.clauses)) in
  match (try Ok (Lang.Parser.parse candidate) with
         | Lang.Parser.Parse_error m | Lang.Datalog.Datalog_error m -> Error m
         | Prob.Ctable.Ctable_error m -> Error m)
  with
  | Ok _ -> st.clauses <- line :: st.clauses
  | Error msg -> Format.printf "error: %s@." msg

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let repl_cmd =
  let repl () =
    let st =
      { clauses = []; semantics = Eval.Engine.Inflationary; sampling = false; eps = 0.05; burn_in = 200 }
    in
    Format.printf "probdl repl — :help for commands, :quit to leave@.";
    (try
       while true do
         print_string "probdl> ";
         let line = String.trim (input_line stdin) in
         if line = "" then ()
         else if line = ":quit" || line = ":q" then raise Exit
         else if line = ":help" then repl_help ()
         else if line = ":show" then
           List.iter print_endline (List.rev st.clauses)
         else if line = ":clear" then st.clauses <- []
         else if starts_with ":load " line then begin
           let path = String.trim (String.sub line 6 (String.length line - 6)) in
           match (try Ok (In_channel.with_open_text path In_channel.input_all) with Sys_error m -> Error m) with
           | Ok text -> repl_add st text
           | Error msg -> Format.printf "error: %s@." msg
         end
         else if line = ":set semantics inflationary" || line = ":set semantics inf" then
           st.semantics <- Eval.Engine.Inflationary
         else if line = ":set semantics noninflationary" || line = ":set semantics noninf" then
           st.semantics <- Eval.Engine.Noninflationary
         else if line = ":set method exact" then st.sampling <- false
         else if line = ":set method sample" then st.sampling <- true
         else if starts_with ":set eps " line then
           (match float_of_string_opt (String.trim (String.sub line 9 (String.length line - 9))) with
            | Some e when e > 0.0 -> st.eps <- e
            | _ -> Format.printf "error: bad eps@.")
         else if starts_with ":set burn-in " line then
           (match int_of_string_opt (String.trim (String.sub line 13 (String.length line - 13))) with
            | Some b when b >= 0 -> st.burn_in <- b
            | _ -> Format.printf "error: bad burn-in@.")
         else if starts_with ":" line then Format.printf "unknown command %s (:help)@." line
         else if starts_with "?-" line then repl_eval st line
         else repl_add st line
       done
     with Exit | End_of_file -> ());
    0
  in
  let doc = "Interactive session: accumulate clauses, evaluate ?- queries." in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const repl $ const ())

let main =
  let doc = "probabilistic fixpoint and Markov chain query languages" in
  Cmd.group (Cmd.info "probdl" ~version:"1.0.0" ~doc)
    [ run_cmd; check_cmd; print_cmd; explain_cmd; worlds_cmd; hitting_cmd; repl_cmd ]

(* Exit codes: 0 complete, 1 engine/input error, 2 usage error, 3 partial
   result.  Cmdliner reports usage errors as 124; remap to the documented
   contract. *)
let () = exit (match Cmd.eval' main with 124 -> 2 | c -> c)
