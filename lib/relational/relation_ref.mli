(** Test-only reference relations.

    The balanced-tree ([Set.Make (Tuple)]) representation the data plane
    used before the columnar refactor, kept verbatim as the differential
    oracle: {!Relation} must agree with this module on tuple contents and
    iteration order, on the sign of {!compare}, on {!hash}, and on
    {!Schema_error} behaviour.  Used only by tests and benchmarks — no
    engine code depends on it. *)

type t

exception Schema_error of string

val make : string list -> Tuple.t list -> t
val empty : string list -> t
val columns : t -> string list
val arity : t -> int

val tuples : t -> Tuple.t list
(** Ascending {!Tuple.compare} order, like [Relation.tuples]. *)

val cardinal : t -> int
val is_empty : t -> bool
val mem : Tuple.t -> t -> bool
val add : Tuple.t -> t -> t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val filter : (Tuple.t -> bool) -> t -> t
val exists : (Tuple.t -> bool) -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val of_relation : Relation.t -> t
(** Reference copy of a columnar relation. *)

val to_relation : t -> Relation.t
(** Columnar copy of a reference relation. *)
