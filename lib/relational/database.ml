module Name_map = Map.Make (String)

type t = Relation.t Name_map.t

let empty = Name_map.empty
let add = Name_map.add
let find name db = Name_map.find name db
let find_opt = Name_map.find_opt
let mem = Name_map.mem
let remove = Name_map.remove
let names db = List.map fst (Name_map.bindings db)
let bindings = Name_map.bindings
let of_list l = List.fold_left (fun db (name, r) -> add name r db) empty l
let fold = Name_map.fold
let map f db = Name_map.mapi f db
let compare = Name_map.compare Relation.compare

(* [Name_map.equal] rather than [compare _ _ = 0]: per-relation [equal]
   rejects on physical identity, cached hashes and cardinality before
   scanning tuples, which is what the chain-interning probe wants. *)
let equal a b = a == b || Name_map.equal Relation.equal a b

(* Name_map folds in ascending name order, so the hash is a function of the
   bindings that {!equal} compares.  Per-relation hashes are cached, leaving
   one string hash and one mix per relation here. *)
let hash db =
  Name_map.fold
    (fun name r h ->
      let h = (h lxor Hashtbl.hash name) * 0x01000193 land max_int in
      (h lxor Relation.hash r) * 0x01000193 land max_int)
    db 0x811c9dc5

let subsumes bigger smaller =
  Name_map.for_all
    (fun name small ->
      match find_opt name bigger with
      | None -> false
      | Some big -> (try Relation.subset small big with Relation.Schema_error _ -> false))
    smaller

let total_tuples db = fold (fun _ r acc -> acc + Relation.cardinal r) db 0

let pp fmt db =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, r) -> Format.fprintf fmt "%s %a@," name Relation.pp r) (bindings db);
  Format.fprintf fmt "@]"
