type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Rat of Bigq.Q.t

let int n = Int n
let str s = Str s
let bool b = Bool b
let rat q = Rat q

let tag = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2 | Rat _ -> 3

(* Physical equality first: interned values ({!Intern}) share one box per
   distinct payload, so on hot comparison paths [a == b] settles most calls
   without touching the payload. *)
let compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Int x, Int y -> Int.compare x y
    | Str x, Str y -> String.compare x y
    | Bool x, Bool y -> Bool.compare x y
    | Rat x, Rat y -> Bigq.Q.compare x y
    | (Int _ | Str _ | Bool _ | Rat _), _ -> Int.compare (tag a) (tag b)

let equal a b = a == b || compare a b = 0

(* FNV-1a-style mixing; [Rat] hashes its canonical representation directly
   rather than going through a string rendering. *)
let fnv_mix h x = (h lxor x) * 0x01000193 land max_int

let hash = function
  | Int n -> fnv_mix 0x811c9dc5 n
  | Str s -> fnv_mix (Hashtbl.hash s) 1
  | Bool b -> fnv_mix (if b then 3 else 5) 2
  | Rat q -> fnv_mix (Bigq.Q.hash q) 3

let to_q = function
  | Int n -> Bigq.Q.of_int n
  | Rat q -> q
  | Str _ -> invalid_arg "Value.to_q: string"
  | Bool _ -> invalid_arg "Value.to_q: bool"

let to_string = function
  | Int n -> string_of_int n
  | Str s -> s
  | Bool b -> string_of_bool b
  | Rat q -> Bigq.Q.to_string q

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* Interning: one canonical box per distinct [Str]/[Rat] payload, with dense
   ids.  [Int]/[Bool] are immediate-ish and index themselves.  The tables are
   the domain-safe dictionaries of {!Dict} — shared by sampler domains with
   lock-free reads — and are populated at the data-entry boundary
   ({!of_string}, hence the datalog parser and {!Table_io}), so every EDB
   weight rational is hash-consed once per run and derived tuples that copy
   values by position keep sharing the same boxes. *)
module Intern = struct
  module Str_dict = Dict.Make (String)
  module Rat_dict = Dict.Make (Bigq.Q)

  let strs : t Str_dict.t = Str_dict.create ()
  let rats : t Rat_dict.t = Rat_dict.create ()
  let str s = Str_dict.intern strs s (fun _ -> Str s)
  let rat q = Rat_dict.intern rats q (fun _ -> Rat q)

  let value = function
    | Str s -> str s
    | Rat q -> rat q
    | (Int _ | Bool _) as v -> v

  let id = function
    | Int n -> n
    | Bool b -> Bool.to_int b
    | Str s -> Str_dict.id strs s (fun _ -> Str s)
    | Rat q -> Rat_dict.id rats q (fun _ -> Rat q)

  let stats () = (Str_dict.cardinal strs, Rat_dict.cardinal rats)
end

let is_digit c = c >= '0' && c <= '9'

let of_string s =
  let len = String.length s in
  if len = 0 then Str ""
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else if len >= 2 && s.[0] = '"' && s.[len - 1] = '"' then Str (String.sub s 1 (len - 2))
  else begin
    let numericish =
      (is_digit s.[0] || ((s.[0] = '-' || s.[0] = '+') && len > 1 && (is_digit s.[1] || s.[1] = '.')))
      || (s.[0] = '.' && len > 1 && is_digit s.[1])
    in
    if not numericish then Str s
    else if String.contains s '/' || String.contains s '.' then
      (try Rat (Bigq.Q.of_string s) with _ -> Str s)
    else (try Int (int_of_string s) with _ -> (try Rat (Bigq.Q.of_string s) with _ -> Str s))
  end

let of_string s = Intern.value (of_string s)
