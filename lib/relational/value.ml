type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Rat of Bigq.Q.t

let int n = Int n
let str s = Str s
let bool b = Bool b
let rat q = Rat q

let tag = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2 | Rat _ -> 3

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Rat x, Rat y -> Bigq.Q.compare x y
  | (Int _ | Str _ | Bool _ | Rat _), _ -> Stdlib.compare (tag a) (tag b)

let equal a b = compare a b = 0

(* FNV-1a-style mixing; [Rat] hashes its canonical representation directly
   rather than going through a string rendering. *)
let fnv_mix h x = (h lxor x) * 0x01000193 land max_int

let hash = function
  | Int n -> fnv_mix 0x811c9dc5 n
  | Str s -> fnv_mix (Hashtbl.hash s) 1
  | Bool b -> fnv_mix (if b then 3 else 5) 2
  | Rat q -> fnv_mix (Bigq.Q.hash q) 3

let to_q = function
  | Int n -> Bigq.Q.of_int n
  | Rat q -> q
  | Str _ -> invalid_arg "Value.to_q: string"
  | Bool _ -> invalid_arg "Value.to_q: bool"

let to_string = function
  | Int n -> string_of_int n
  | Str s -> s
  | Bool b -> string_of_bool b
  | Rat q -> Bigq.Q.to_string q

let pp fmt v = Format.pp_print_string fmt (to_string v)

let is_digit c = c >= '0' && c <= '9'

let of_string s =
  let len = String.length s in
  if len = 0 then Str ""
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else if len >= 2 && s.[0] = '"' && s.[len - 1] = '"' then Str (String.sub s 1 (len - 2))
  else begin
    let numericish =
      (is_digit s.[0] || ((s.[0] = '-' || s.[0] = '+') && len > 1 && (is_digit s.[1] || s.[1] = '.')))
      || (s.[0] = '.' && len > 1 && is_digit s.[1])
    in
    if not numericish then Str s
    else if String.contains s '/' || String.contains s '.' then
      (try Rat (Bigq.Q.of_string s) with _ -> Str s)
    else (try Int (int_of_string s) with _ -> (try Rat (Bigq.Q.of_string s) with _ -> Str s))
  end
