(** Atomic values stored in relations.

    The paper's databases range over an uninterpreted active domain plus the
    numeric weight columns consumed by [repair-key]; we support integers,
    strings, booleans and exact rationals. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Rat of Bigq.Q.t

val int : int -> t
val str : string -> t
val bool : bool -> t
val rat : Bigq.Q.t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Agrees with {!equal}: equal values hash equal (rationals are canonical,
    so this includes [Rat]). *)

val to_q : t -> Bigq.Q.t
(** Numeric reading of a value, for weight columns.  [Int n] is [n], [Rat q]
    is [q].  Raises [Invalid_argument] on strings and booleans. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Inverse of {!to_string} on the concrete syntax used by the datalog
    parser: quoted strings, [true]/[false], rationals with [/] or [.], and
    integers; bare identifiers parse as strings. *)
