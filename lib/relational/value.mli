(** Atomic values stored in relations.

    The paper's databases range over an uninterpreted active domain plus the
    numeric weight columns consumed by [repair-key]; we support integers,
    strings, booleans and exact rationals. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Rat of Bigq.Q.t

val int : int -> t
val str : string -> t
val bool : bool -> t
val rat : Bigq.Q.t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Agrees with {!equal}: equal values hash equal (rationals are canonical,
    so this includes [Rat]). *)

val to_q : t -> Bigq.Q.t
(** Numeric reading of a value, for weight columns.  [Int n] is [n], [Rat q]
    is [q].  Raises [Invalid_argument] on strings and booleans. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Inverse of {!to_string} on the concrete syntax used by the datalog
    parser: quoted strings, [true]/[false], rationals with [/] or [.], and
    integers; bare identifiers parse as strings.  [Str] and [Rat] results are
    interned ({!Intern.value}), so values entering through the parser or
    {!Table_io} share one box per distinct payload. *)

(** Value interning: a domain-safe dictionary mapping [Str]/[Rat] payloads
    to dense ids and one canonical box per distinct payload, so equality on
    interned values is settled by physical comparison and [Rat] weights are
    hash-consed once per run.  Reads are lock-free ({!Dict}); sampler
    domains share the tables safely. *)
module Intern : sig
  val value : t -> t
  (** Canonical representative of a value; identity on [Int]/[Bool]. *)

  val str : string -> t
  (** Interned [Str s]. *)

  val rat : Bigq.Q.t -> t
  (** Interned (hash-consed) [Rat q]. *)

  val id : t -> int
  (** Dense id of an interned payload ([Str]/[Rat] intern on demand);
      [Int n] is [n] and [Bool b] is [0]/[1]. *)

  val stats : unit -> int * int
  (** [(distinct strings, distinct rationals)] interned so far. *)
end
