(* Test-only reference relations: the balanced-tree representation the data
   plane used before the columnar refactor, preserved verbatim so
   differential tests and benchmarks can compare the flat-array
   {!Relation} against the original semantics (same ascending iteration
   order, same [Set.compare]-derived total order, same FNV hash).  Nothing
   under [lib/] uses this module at run time. *)

module Tuple_set = Set.Make (Tuple)

type t = { cols : string list; tuples : Tuple_set.t; mutable hash_memo : int }

let mk cols tuples = { cols; tuples; hash_memo = -1 }

exception Schema_error of string

let check_distinct cols =
  let sorted = List.sort_uniq String.compare cols in
  if List.length sorted <> List.length cols then
    raise (Schema_error ("duplicate column in schema: " ^ String.concat "," cols))

let check_arity cols tuple =
  if Tuple.arity tuple <> List.length cols then
    raise
      (Schema_error
         (Printf.sprintf "tuple %s has arity %d, schema (%s) expects %d" (Tuple.to_string tuple)
            (Tuple.arity tuple) (String.concat "," cols) (List.length cols)))

let make cols tuple_list =
  check_distinct cols;
  List.iter (check_arity cols) tuple_list;
  mk cols (Tuple_set.of_list tuple_list)

let empty cols =
  check_distinct cols;
  mk cols Tuple_set.empty

let columns r = r.cols
let arity r = List.length r.cols
let tuples r = Tuple_set.elements r.tuples
let cardinal r = Tuple_set.cardinal r.tuples
let is_empty r = Tuple_set.is_empty r.tuples
let mem t r = Tuple_set.mem t r.tuples

let add t r =
  check_arity r.cols t;
  mk r.cols (Tuple_set.add t r.tuples)

let fold f r acc = Tuple_set.fold f r.tuples acc
let iter f r = Tuple_set.iter f r.tuples
let filter p r = mk r.cols (Tuple_set.filter p r.tuples)
let exists p r = Tuple_set.exists p r.tuples

let same_schema a b =
  if not (List.equal String.equal a.cols b.cols) then
    raise
      (Schema_error
         (Printf.sprintf "schema mismatch: (%s) vs (%s)" (String.concat "," a.cols)
            (String.concat "," b.cols)))

let union a b =
  same_schema a b;
  mk a.cols (Tuple_set.union a.tuples b.tuples)

let inter a b =
  same_schema a b;
  mk a.cols (Tuple_set.inter a.tuples b.tuples)

let diff a b =
  same_schema a b;
  mk a.cols (Tuple_set.diff a.tuples b.tuples)

let subset a b =
  same_schema a b;
  Tuple_set.subset a.tuples b.tuples

let compare a b =
  if a == b then 0
  else
    let c = List.compare String.compare a.cols b.cols in
    if c <> 0 then c else Tuple_set.compare a.tuples b.tuples

let equal a b =
  a == b
  || ((a.hash_memo < 0 || b.hash_memo < 0 || a.hash_memo = b.hash_memo) && compare a b = 0)

let hash r =
  if r.hash_memo >= 0 then r.hash_memo
  else begin
    let h = ref 0x811c9dc5 in
    let mix x = h := (!h lxor x) * 0x01000193 land max_int in
    List.iter (fun c -> mix (Hashtbl.hash c)) r.cols;
    Tuple_set.iter (fun t -> mix (Tuple.hash t)) r.tuples;
    r.hash_memo <- !h;
    !h
  end

let of_relation r = mk (Relation.columns r) (Tuple_set.of_list (Relation.tuples r))
let to_relation r = Relation.make r.cols (tuples r)
