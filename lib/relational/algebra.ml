type t =
  | Rel of string
  | Const of Relation.t
  | Select of Pred.t * t
  | Project of string list * t
  | Rename of (string * string) list * t
  | Product of t * t
  | Join of t * t
  | Union of t * t
  | Diff of t * t
  | Extend of string * Pred.term * t
  | Aggregate of {
      group_by : string list;
      agg : agg;
      src : string option;
      out : string;
      arg : t;
    }

and agg =
  | Count
  | Sum
  | Min
  | Max

let schema_err fmt = Format.kasprintf (fun s -> raise (Relation.Schema_error s)) fmt

(* Hashed key index for joins and grouping: maps a key tuple to the list of
   source tuples carrying it.  Buckets accumulate by consing, so each lists
   its tuples in DESCENDING source ([Tuple.compare]) order; consumers must
   treat buckets as unordered sets — results built from them are
   [Relation.t] values, whose tuple sets are canonically sorted, so bucket
   order never leaks into operator output (pinned by tests). *)
module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let index_by key_of r =
  let tbl = Tuple_tbl.create (max 16 (Relation.cardinal r)) in
  Relation.iter
    (fun t ->
      let key = key_of t in
      let prev = Option.value ~default:[] (Tuple_tbl.find_opt tbl key) in
      Tuple_tbl.replace tbl key (t :: prev))
    r;
  tbl

let rename_schema pairs cols =
  let renamed =
    List.map
      (fun c -> match List.assoc_opt c pairs with Some fresh -> fresh | None -> c)
      cols
  in
  let sorted = List.sort_uniq String.compare renamed in
  if List.length sorted <> List.length renamed then
    schema_err "rename yields duplicate columns (%s)" (String.concat "," renamed);
  renamed

let product_schema ca cb =
  let clash = List.filter (fun c -> List.mem c cb) ca in
  if clash <> [] then schema_err "product columns clash: %s" (String.concat "," clash);
  ca @ cb

let join_schema ca cb = ca @ List.filter (fun c -> not (List.mem c ca)) cb

let project_schema cols cs =
  List.iter (fun c -> if not (List.mem c cs) then schema_err "project: unknown column %s" c) cols;
  let sorted = List.sort_uniq String.compare cols in
  if List.length sorted <> List.length cols then
    schema_err "project: duplicate columns (%s)" (String.concat "," cols);
  cols

let rec schema_of expr db =
  match expr with
  | Rel name -> Relation.columns (Database.find name db)
  | Const r -> Relation.columns r
  | Select (_, e) -> schema_of e db
  | Project (cols, e) -> project_schema cols (schema_of e db)
  | Rename (pairs, e) -> rename_schema pairs (schema_of e db)
  | Product (a, b) -> product_schema (schema_of a db) (schema_of b db)
  | Join (a, b) -> join_schema (schema_of a db) (schema_of b db)
  | Union (a, _) | Diff (a, _) -> schema_of a db
  | Extend (c, term, e) ->
    let cols = schema_of e db in
    if List.mem c cols then schema_err "extend: column %s already exists" c;
    (match term with
     | Pred.Col src when not (List.mem src cols) -> schema_err "extend: unknown source column %s" src
     | Pred.Col _ | Pred.Const _ -> ());
    cols @ [ c ]
  | Aggregate { group_by; agg; src; out; arg } ->
    let cols = schema_of arg db in
    List.iter
      (fun c -> if not (List.mem c cols) then schema_err "aggregate: unknown group column %s" c)
      group_by;
    (match (agg, src) with
     | Count, _ -> ()
     | (Sum | Min | Max), Some c ->
       if not (List.mem c cols) then schema_err "aggregate: unknown source column %s" c
     | (Sum | Min | Max), None -> schema_err "aggregate: %s needs a source column" "sum/min/max");
    if List.mem out group_by then schema_err "aggregate: output column %s clashes" out;
    group_by @ [ out ]

let indices_of schema cols = List.map (fun c ->
    let rec go i = function
      | [] -> schema_err "unknown column %s" c
      | x :: rest -> if String.equal x c then i else go (i + 1) rest
    in
    go 0 schema)
    cols

let rec eval expr db =
  match expr with
  | Rel name -> Database.find name db
  | Const r -> r
  | Select (p, e) ->
    let r = eval e db in
    let keep = Pred.compile (Relation.columns r) p in
    Relation.filter keep r
  | Project (cols, e) ->
    let r = eval e db in
    let out_cols = project_schema cols (Relation.columns r) in
    let idx = Array.of_list (indices_of (Relation.columns r) cols) in
    let b = Relation.Builder.create ~hint:(Relation.cardinal r) out_cols in
    Relation.iter (fun t -> Relation.Builder.add b (Array.map (fun i -> t.(i)) idx)) r;
    Relation.Builder.build b
  | Rename (pairs, e) ->
    let r = eval e db in
    Relation.rename_columns (rename_schema pairs (Relation.columns r)) r
  | Product (a, b) ->
    let ra = eval a db and rb = eval b db in
    let cols = product_schema (Relation.columns ra) (Relation.columns rb) in
    (* Left-major enumeration of two ascending relations is already in
       canonical order, duplicate-free. *)
    let buf = Array.make (Relation.cardinal ra * Relation.cardinal rb) [||] in
    let w = ref 0 in
    Relation.iter
      (fun ta ->
        Relation.iter
          (fun tb ->
            buf.(!w) <- Array.append ta tb;
            incr w)
          rb)
      ra;
    Relation.unsafe_of_sorted_array cols buf
  | Join (a, b) ->
    let ra = eval a db and rb = eval b db in
    natural_join ra rb
  | Union (a, b) -> Relation.union (eval a db) (eval b db)
  | Diff (a, b) -> Relation.diff (eval a db) (eval b db)
  | Aggregate { group_by; agg; src; out; arg } ->
    let r = eval arg db in
    ignore (schema_of (Aggregate { group_by; agg; src; out; arg = Const r }) Database.empty);
    let gi = Array.of_list (indices_of (Relation.columns r) group_by) in
    let si =
      match src with
      | Some c -> Some (Relation.column_index r c)
      | None -> None
    in
    let groups = index_by (fun t -> Array.map (fun i -> t.(i)) gi) r in
    let aggregate tuples =
      match agg with
      | Count -> Some (Value.Int (List.length tuples))
      | Sum ->
        let i = Option.get si in
        Some
          (Value.Rat
             (List.fold_left
                (fun acc (t : Tuple.t) -> Bigq.Q.add acc (Value.to_q t.(i)))
                Bigq.Q.zero tuples))
      | Min | Max ->
        let i = Option.get si in
        let better a b =
          let c = Value.compare a b in
          if agg = Min then (if c <= 0 then a else b) else if c >= 0 then a else b
        in
        (match tuples with
         | [] -> None
         | (first : Tuple.t) :: rest ->
           Some (List.fold_left (fun acc (t : Tuple.t) -> better acc t.(i)) first.(i) rest))
    in
    let out_cols = group_by @ [ out ] in
    let b = Relation.Builder.create ~hint:(Tuple_tbl.length groups) out_cols in
    Tuple_tbl.iter
      (fun key tuples ->
        match aggregate tuples with
        | Some v -> Relation.Builder.add b (Array.append key [| v |])
        | None -> ())
      groups;
    let base = Relation.Builder.build b in
    (* Empty input, no grouping: Count/Sum still produce their zero row. *)
    if Tuple_tbl.length groups = 0 && group_by = [] then begin
      match agg with
      | Count -> Relation.add [| Value.Int 0 |] base
      | Sum -> Relation.add [| Value.Rat Bigq.Q.zero |] base
      | Min | Max -> base
    end
    else base
  | Extend (c, term, e) ->
    let r = eval e db in
    let cols = Relation.columns r in
    if List.mem c cols then schema_err "extend: column %s already exists" c;
    let value =
      match term with
      | Pred.Const v -> fun _ -> v
      | Pred.Col src ->
        let i = Relation.column_index r src in
        fun (t : Tuple.t) -> t.(i)
    in
    (* Appending a column to every tuple of a sorted duplicate-free relation
       preserves canonical order. *)
    let buf = Array.make (Relation.cardinal r) [||] in
    let w = ref 0 in
    Relation.iter
      (fun t ->
        buf.(!w) <- Array.append t [| value t |];
        incr w)
      r;
    Relation.unsafe_of_sorted_array (cols @ [ c ]) buf

(* Hash join on the shared columns.  The result keeps all columns of the
   left operand followed by the non-shared columns of the right. *)
and natural_join ra rb =
  let ca = Relation.columns ra and cb = Relation.columns rb in
  let shared = List.filter (fun c -> List.mem c ca) cb in
  let out_cols = join_schema ca cb in
  let ia = Array.of_list (indices_of ca shared) in
  let ib = Array.of_list (indices_of cb shared) in
  let rest_b =
    Array.of_list (indices_of cb (List.filter (fun c -> not (List.mem c ca)) cb))
  in
  let index = index_by (fun tb -> Array.map (fun i -> tb.(i)) ib) rb in
  (* Batched probe: distinct probe tuples prefix distinct output rows, so
     the builder only re-sorts the unordered bucket matches. *)
  let b = Relation.Builder.create ~hint:(Relation.cardinal ra) out_cols in
  Relation.iter
    (fun ta ->
      let key = Array.map (fun i -> ta.(i)) ia in
      match Tuple_tbl.find_opt index key with
      | None -> ()
      | Some matches ->
        List.iter
          (fun tb -> Relation.Builder.add b (Array.append ta (Array.map (fun i -> tb.(i)) rest_b)))
          matches)
    ra;
  Relation.Builder.build b

let singleton cols vs = Const (Relation.make cols [ Tuple.of_list vs ])

let rec pp fmt = function
  | Rel name -> Format.pp_print_string fmt name
  | Const r ->
    if Relation.is_empty r then Format.fprintf fmt "{}(%s)" (String.concat "," (Relation.columns r))
    else Format.fprintf fmt "{%d tuples}" (Relation.cardinal r)
  | Select (p, e) -> Format.fprintf fmt "σ[%a](%a)" Pred.pp p pp e
  | Project (cols, e) -> Format.fprintf fmt "π[%s](%a)" (String.concat "," cols) pp e
  | Rename (pairs, e) ->
    let pair fmt (o, n) = Format.fprintf fmt "%s→%s" o n in
    Format.fprintf fmt "ρ[%a](%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") pair)
      pairs pp e
  | Product (a, b) -> Format.fprintf fmt "(%a × %a)" pp a pp b
  | Join (a, b) -> Format.fprintf fmt "(%a ⋈ %a)" pp a pp b
  | Union (a, b) -> Format.fprintf fmt "(%a ∪ %a)" pp a pp b
  | Diff (a, b) -> Format.fprintf fmt "(%a − %a)" pp a pp b
  | Extend (c, term, e) ->
    let pp_term fmt = function
      | Pred.Col src -> Format.pp_print_string fmt src
      | Pred.Const v -> Value.pp fmt v
    in
    Format.fprintf fmt "ε[%s:=%a](%a)" c pp_term term pp e
  | Aggregate { group_by; agg; src; out; arg } ->
    let agg_name = match agg with Count -> "count" | Sum -> "sum" | Min -> "min" | Max -> "max" in
    Format.fprintf fmt "γ[%s; %s:=%s(%s)](%a)" (String.concat "," group_by) out agg_name
      (Option.value ~default:"*" src) pp arg
