(** Relations with set semantics and named columns.

    A relation carries its schema (an ordered list of distinct column names)
    and a set of tuples, each of matching arity.  All mutating operations
    are persistent.

    Representation contract: tuples are stored in one immutable flat array
    in strictly ascending {!Tuple.compare} order with no duplicates — the
    same canonical order the pre-columnar balanced-tree representation
    (preserved as {!Relation_ref}) enumerated.  Iteration order, the sign of
    {!compare}, {!hash} and {!Schema_error} behaviour are identical to that
    reference; only the cost model changes (linear merges, binary-search
    membership, sequential scans, batch construction via {!Builder}). *)

type t

exception Schema_error of string
(** Raised on arity mismatches, duplicate or unknown column names. *)

val make : string list -> Tuple.t list -> t
(** [make columns tuples].  Raises {!Schema_error} on duplicate columns or a
    tuple of wrong arity. *)

val empty : string list -> t
val columns : t -> string list
val arity : t -> int
val tuples : t -> Tuple.t list
(** Tuples in ascending {!Tuple.compare} order.  Materialises a fresh list
    on every call — consumers that immediately iterate should use {!iter} or
    {!fold} instead. *)

val cardinal : t -> int
val is_empty : t -> bool

val mem : Tuple.t -> t -> bool
(** Binary search: O(log n) tuple comparisons. *)

val add : Tuple.t -> t -> t
(** Persistent insert (O(n) copy; batch construction should use
    {!Builder}).  Returns [r] itself when the tuple is already present. *)

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending order, like [Set.fold]. *)

val iter : (Tuple.t -> unit) -> t -> unit
val filter : (Tuple.t -> bool) -> t -> t
val exists : (Tuple.t -> bool) -> t -> bool

val column_index : t -> string -> int
(** Raises {!Schema_error} if the column is absent. *)

val union : t -> t -> t
(** Linear merge.  Raises {!Schema_error} unless both sides have identical
    schemas.  Returns an input physically when it already equals the result
    (e.g. [a] when [b ⊆ a]), preserving [==] fast paths across fixpoint
    steps. *)

val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool

val compare : t -> t -> int
(** Total order on (schema, tuple set); usable as a map key.  Agrees in
    sign with [Relation_ref.compare] (lexicographic over the ascending
    tuple sequences), so map and distribution orderings are unchanged from
    the reference representation. *)

val equal : t -> t -> bool

val hash : t -> int
(** Agrees with {!equal}.  Computed once per relation value and cached, so
    repeated hashing (e.g. while interning chain states) is O(1) after the
    first call.  The memo is benignly racy: concurrent callers recompute
    the same pure value and word-sized writes are atomic, so cross-domain
    sharing needs no lock (documented in [relation.ml], tested in
    [test_columnar.ml]). *)

val rename_columns : string list -> t -> t
(** [rename_columns cols r] reuses [r]'s tuple array under a new schema of
    the same arity (tuple order does not depend on column names).  Raises
    {!Schema_error} on duplicates or arity mismatch. *)

val unsafe_of_sorted_array : string list -> Tuple.t array -> t
(** Wrap an array the caller guarantees to be strictly ascending in
    {!Tuple.compare} order (hence duplicate-free), taking ownership of it.
    For compiled operators whose output provably preserves input order
    (e.g. extending every tuple of a sorted relation by one column);
    checks only the schema.  Anything else should use {!make} or
    {!Builder}. *)

(** Batch construction: accumulate raw tuples, then sort and dedup once in
    {!Builder.build}.  This is how operators build outputs — O(n log n)
    total instead of a per-tuple persistent insert. *)
module Builder : sig
  type builder

  val create : ?hint:int -> string list -> builder
  (** Raises {!Schema_error} on duplicate columns.  [hint] sizes the
      initial buffer. *)

  val add : builder -> Tuple.t -> unit
  (** Raises {!Schema_error} on an arity mismatch. *)

  val build : builder -> t
end

val pp : Format.formatter -> t -> unit
