(** Relations with set semantics and named columns.

    A relation carries its schema (an ordered list of distinct column names)
    and a set of tuples, each of matching arity.  All mutating operations are
    persistent. *)

type t

exception Schema_error of string
(** Raised on arity mismatches, duplicate or unknown column names. *)

val make : string list -> Tuple.t list -> t
(** [make columns tuples].  Raises {!Schema_error} on duplicate columns or a
    tuple of wrong arity. *)

val empty : string list -> t
val columns : t -> string list
val arity : t -> int
val tuples : t -> Tuple.t list
(** Tuples in ascending {!Tuple.compare} order. *)

val cardinal : t -> int
val is_empty : t -> bool
val mem : Tuple.t -> t -> bool
val add : Tuple.t -> t -> t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val filter : (Tuple.t -> bool) -> t -> t
val exists : (Tuple.t -> bool) -> t -> bool

val column_index : t -> string -> int
(** Raises {!Schema_error} if the column is absent. *)

val union : t -> t -> t
(** Raises {!Schema_error} unless both sides have identical schemas. *)

val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool

val compare : t -> t -> int
(** Total order on (schema, tuple set); usable as a map key. *)

val equal : t -> t -> bool

val hash : t -> int
(** Agrees with {!equal}.  Computed once per relation value and cached, so
    repeated hashing (e.g. while interning chain states) is O(1) after the
    first call. *)

val pp : Format.formatter -> t -> unit
