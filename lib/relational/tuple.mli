(** Tuples are immutable arrays of {!Value.t}, ordered lexicographically. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Agrees with {!equal}; suitable for hashed join/aggregate indexes. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
