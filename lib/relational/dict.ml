(* Domain-safe interning dictionaries.

   A dictionary maps payload keys (strings, rationals) to dense ids and a
   canonical boxed representative allocated once per distinct payload.  The
   whole table lives in a single [Atomic.t] holding a persistent map plus the
   next free id; inserts are lock-free compare-and-set retries, lookups are a
   plain [Atomic.get] followed by a pure map search.  Sampler domains
   therefore share one dictionary with no mutex on the read path — exactly
   the access pattern of parallel estimation, where the dictionary is
   populated while the EDB is parsed and only read afterwards.

   Under a racing insert the [mk] callback may run more than once for the
   same key; only the CAS winner's representative is published, so canonical
   representatives are still unique per key. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : KEY) = struct
  module M = Map.Make (Key)

  type 'v entry = { id : int; canon : 'v }
  type 'v state = { next : int; map : 'v entry M.t }
  type 'v t = 'v state Atomic.t

  let create () = Atomic.make { next = 0; map = M.empty }

  let rec entry d k mk =
    let s = Atomic.get d in
    match M.find_opt k s.map with
    | Some e -> e
    | None ->
      let e = { id = s.next; canon = mk s.next } in
      let s' = { next = s.next + 1; map = M.add k e s.map } in
      if Atomic.compare_and_set d s s' then e else entry d k mk

  let intern d k mk = (entry d k mk).canon
  let id d k mk = (entry d k mk).id
  let find_opt d k = Option.map (fun e -> e.canon) (M.find_opt k (Atomic.get d).map)
  let cardinal d = (Atomic.get d).next
end
