(* Compiled physical plans for the deterministic algebra.

   [compile] walks the AST exactly once: every schema is derived, every
   column name resolved to an integer position, and every predicate
   compiled, so all [Schema_error]s surface at plan-build time.  What
   remains is a tree of closures over index arrays — no AST, no name
   lookups, no per-call schema recomputation — which the fixpoint engines
   execute thousands of times per query.  Semantics (including error
   behaviour and the Aggregate zero-row rule) match [Algebra.eval]
   operator for operator. *)

type t = {
  schema : string list;
  run : Database.t -> Relation.t;
}

let schema p = p.schema
let run p db = p.run db

let schema_err fmt = Format.kasprintf (fun s -> raise (Relation.Schema_error s)) fmt

(* Operator executors are batched: each builds its whole output as a flat
   tuple array in one pass.  Order-preserving operators (select, rename,
   extend, product) emit directly in canonical ascending order — filtering
   a sorted array, re-labelling columns, appending a column to every tuple
   of a sorted duplicate-free relation, or enumerating a product in
   (left-major, right-minor) order all keep the input order — so they wrap
   the array without re-sorting.  Join and aggregate outputs are not
   emitted in order; they accumulate through [Relation.Builder], which
   sorts and dedups once per execution. *)
module Ops = struct
  let select schema p =
    let keep = Pred.compile schema p in
    fun r -> Relation.filter keep r

  let project schema cols =
    let out = Algebra.project_schema cols schema in
    let idx = Array.of_list (Algebra.indices_of schema cols) in
    let empty = Relation.empty out in
    ( out,
      fun r ->
        if Relation.is_empty r then empty
        else begin
          let b = Relation.Builder.create ~hint:(Relation.cardinal r) out in
          Relation.iter (fun t -> Relation.Builder.add b (Array.map (fun i -> t.(i)) idx)) r;
          Relation.Builder.build b
        end )

  let rename schema pairs =
    let out = Algebra.rename_schema pairs schema in
    (out, fun r -> Relation.rename_columns out r)

  let extend schema c term =
    if List.mem c schema then schema_err "extend: column %s already exists" c;
    let value =
      match term with
      | Pred.Const v -> fun (_ : Tuple.t) -> v
      | Pred.Col src ->
        if not (List.mem src schema) then schema_err "extend: unknown source column %s" src;
        let i = List.hd (Algebra.indices_of schema [ src ]) in
        fun (t : Tuple.t) -> t.(i)
    in
    let out = schema @ [ c ] in
    ( out,
      fun r ->
        (* Input tuples are distinct and ascending; appending a column keeps
           both, so the mapped array is already canonical. *)
        let buf = Array.make (Relation.cardinal r) [||] in
        let w = ref 0 in
        Relation.iter
          (fun t ->
            buf.(!w) <- Array.append t [| value t |];
            incr w)
          r;
        Relation.unsafe_of_sorted_array out buf )

  let product ca cb =
    let out = Algebra.product_schema ca cb in
    ( out,
      fun ra rb ->
        (* Left-major enumeration of two ascending relations emits the
           concatenated tuples in ascending order, duplicate-free. *)
        let buf = Array.make (Relation.cardinal ra * Relation.cardinal rb) [||] in
        let w = ref 0 in
        Relation.iter
          (fun ta ->
            Relation.iter
              (fun tb ->
                buf.(!w) <- Array.append ta tb;
                incr w)
              rb)
          ra;
        Relation.unsafe_of_sorted_array out buf )

  (* Hash join: probe-side key positions, build-side key positions and the
     build side's non-shared positions are all fixed at compile time; only
     the build/probe over [Tuple_tbl] happens per execution. *)
  let join_parts ca cb =
    let shared = List.filter (fun c -> List.mem c ca) cb in
    let out = Algebra.join_schema ca cb in
    let ia = Array.of_list (Algebra.indices_of ca shared) in
    let ib = Array.of_list (Algebra.indices_of cb shared) in
    let rest_b =
      Array.of_list (Algebra.indices_of cb (List.filter (fun c -> not (List.mem c ca)) cb))
    in
    (out, ia, ib, rest_b)

  (* Shared probe loop for the hash joins: probe [ra] against an index of
     [rb] keyed on the shared columns, batching output rows through a
     builder.  Distinct probe tuples yield distinct output rows (the probe
     tuple is a prefix of the output), so the builder's dedup is a no-op —
     it is there for the sort to canonical order, since bucket lists are
     unordered. *)
  let probe_join out ia rest_b ra index =
    let b = Relation.Builder.create ~hint:(Relation.cardinal ra) out in
    Relation.iter
      (fun ta ->
        let key = Array.map (fun i -> ta.(i)) ia in
        match Algebra.Tuple_tbl.find_opt index key with
        | None -> ()
        | Some matches ->
          List.iter
            (fun tb ->
              Relation.Builder.add b (Array.append ta (Array.map (fun i -> tb.(i)) rest_b)))
            matches)
      ra;
    Relation.Builder.build b

  let join ca cb =
    let out, ia, ib, rest_b = join_parts ca cb in
    ( out,
      fun ra rb ->
        let index = Algebra.index_by (fun tb -> Array.map (fun i -> tb.(i)) ib) rb in
        probe_join out ia rest_b ra index )

  (* Delta-join executors: the semi-naive path re-joins a small delta
     against the same full relation on every fixpoint step, so the hash
     index on the full (build) side is memoised across calls, keyed by
     physical equality — always a hit for EDB relations, whose values are
     never rebuilt between steps.  One variant per probe side, since the
     output tuple layout fixes which operand is "left". *)
  let join_build_right ca cb =
    let out, ia, ib, rest_b = join_parts ca cb in
    let empty = Relation.empty out in
    let cache = ref None in
    let index_of rb =
      match !cache with
      | Some (rb', idx) when rb' == rb -> idx
      | _ ->
        let idx = Algebra.index_by (fun tb -> Array.map (fun i -> tb.(i)) ib) rb in
        cache := Some (rb, idx);
        idx
    in
    ( out,
      fun ra rb ->
        if Relation.is_empty ra then empty else probe_join out ia rest_b ra (index_of rb) )

  let join_build_left ca cb =
    let out, ia, ib, rest_b = join_parts ca cb in
    let empty = Relation.empty out in
    let cache = ref None in
    let index_of ra =
      match !cache with
      | Some (ra', idx) when ra' == ra -> idx
      | _ ->
        let idx = Algebra.index_by (fun ta -> Array.map (fun i -> ta.(i)) ia) ra in
        cache := Some (ra, idx);
        idx
    in
    ( out,
      fun ra rb ->
        if Relation.is_empty rb then empty
        else begin
          let index = index_of ra in
          let b = Relation.Builder.create ~hint:(Relation.cardinal rb) out in
          Relation.iter
            (fun tb ->
              let key = Array.map (fun i -> tb.(i)) ib in
              match Algebra.Tuple_tbl.find_opt index key with
              | None -> ()
              | Some matches ->
                List.iter
                  (fun ta ->
                    Relation.Builder.add b
                      (Array.append ta (Array.map (fun i -> tb.(i)) rest_b)))
                  matches)
            rb;
          Relation.Builder.build b
        end )

  let same_schema opname ca cb =
    if not (List.equal String.equal ca cb) then
      schema_err "%s: schemas differ (%s vs %s)" opname (String.concat "," ca)
        (String.concat "," cb)

  let union ca cb =
    same_schema "union" ca cb;
    (ca, Relation.union)

  let diff ca cb =
    same_schema "diff" ca cb;
    (ca, Relation.diff)

  let aggregate schema ~group_by ~agg ~src ~out =
    List.iter
      (fun c -> if not (List.mem c schema) then schema_err "aggregate: unknown group column %s" c)
      group_by;
    (match (agg, src) with
     | Algebra.Count, _ -> ()
     | (Algebra.Sum | Algebra.Min | Algebra.Max), Some c ->
       if not (List.mem c schema) then schema_err "aggregate: unknown source column %s" c
     | (Algebra.Sum | Algebra.Min | Algebra.Max), None ->
       schema_err "aggregate: %s needs a source column" "sum/min/max");
    if List.mem out group_by then schema_err "aggregate: output column %s clashes" out;
    let gi = Array.of_list (Algebra.indices_of schema group_by) in
    let si =
      match src with
      | Some c -> Some (List.hd (Algebra.indices_of schema [ c ]))
      | None -> None
    in
    let out_cols = group_by @ [ out ] in
    let aggregate_bucket tuples =
      match agg with
      | Algebra.Count -> Some (Value.Int (List.length tuples))
      | Algebra.Sum ->
        let i = Option.get si in
        Some
          (Value.Rat
             (List.fold_left
                (fun acc (t : Tuple.t) -> Bigq.Q.add acc (Value.to_q t.(i)))
                Bigq.Q.zero tuples))
      | Algebra.Min | Algebra.Max ->
        let i = Option.get si in
        let better a b =
          let c = Value.compare a b in
          match agg with
          | Algebra.Min -> if c <= 0 then a else b
          | _ -> if c >= 0 then a else b
        in
        (match tuples with
         | [] -> None
         | (first : Tuple.t) :: rest ->
           Some (List.fold_left (fun acc (t : Tuple.t) -> better acc t.(i)) first.(i) rest))
    in
    ( out_cols,
      fun r ->
        let groups = Algebra.index_by (fun t -> Array.map (fun i -> t.(i)) gi) r in
        (* One output row per group: the builder re-sorts the hash-order
           fold into canonical ascending order. *)
        let b = Relation.Builder.create ~hint:(Algebra.Tuple_tbl.length groups) out_cols in
        Algebra.Tuple_tbl.iter
          (fun key tuples ->
            match aggregate_bucket tuples with
            | Some v -> Relation.Builder.add b (Array.append key [| v |])
            | None -> ())
          groups;
        let base = Relation.Builder.build b in
        (* Empty input, no grouping: Count/Sum still produce their zero row. *)
        if Algebra.Tuple_tbl.length groups = 0 && group_by = [] then begin
          match agg with
          | Algebra.Count -> Relation.add [| Value.Int 0 |] base
          | Algebra.Sum -> Relation.add [| Value.Rat Bigq.Q.zero |] base
          | Algebra.Min | Algebra.Max -> base
        end
        else base )
end

(* Instrumentation happens here, at plan-build time: [Obs.wrap1]/[wrap2]
   return [f] itself when stats are off, so the executed closure tree is
   byte-for-byte the uninstrumented one. *)
let unary ~op out f c =
  let f = Obs.wrap1 ("plan." ^ op) f in
  { schema = out; run = (fun db -> f (c.run db)) }

let binary ~op out f a b =
  let f = Obs.wrap2 ("plan." ^ op) f in
  { schema = out; run = (fun db -> f (a.run db) (b.run db)) }

let check_leaf name cols r =
  if not (List.equal String.equal (Relation.columns r) cols) then
    schema_err "plan: relation %s has columns %s, was compiled against %s" name
      (String.concat "," (Relation.columns r))
      (String.concat "," cols);
  r

let rel_leaf ~schema_of name =
  let cols = schema_of name in
  { schema = cols; run = (fun db -> check_leaf name cols (Database.find name db)) }

let rec compile ~schema_of expr =
  match expr with
  | Algebra.Rel name -> rel_leaf ~schema_of name
  | Algebra.Const r -> { schema = Relation.columns r; run = (fun _ -> r) }
  | Algebra.Select (p, e) ->
    let c = compile ~schema_of e in
    unary ~op:"select" c.schema (Ops.select c.schema p) c
  | Algebra.Project (cols, e) ->
    let c = compile ~schema_of e in
    let out, f = Ops.project c.schema cols in
    unary ~op:"project" out f c
  | Algebra.Rename (pairs, e) ->
    let c = compile ~schema_of e in
    let out, f = Ops.rename c.schema pairs in
    unary ~op:"rename" out f c
  | Algebra.Product (a, b) ->
    let ca = compile ~schema_of a and cb = compile ~schema_of b in
    let out, f = Ops.product ca.schema cb.schema in
    binary ~op:"product" out f ca cb
  | Algebra.Join (a, b) ->
    let ca = compile ~schema_of a and cb = compile ~schema_of b in
    let out, f = Ops.join ca.schema cb.schema in
    binary ~op:"join" out f ca cb
  | Algebra.Union (a, b) ->
    let ca = compile ~schema_of a and cb = compile ~schema_of b in
    let out, f = Ops.union ca.schema cb.schema in
    binary ~op:"union" out f ca cb
  | Algebra.Diff (a, b) ->
    let ca = compile ~schema_of a and cb = compile ~schema_of b in
    let out, f = Ops.diff ca.schema cb.schema in
    binary ~op:"diff" out f ca cb
  | Algebra.Extend (c, term, e) ->
    let ce = compile ~schema_of e in
    let out, f = Ops.extend ce.schema c term in
    unary ~op:"extend" out f ce
  | Algebra.Aggregate { group_by; agg; src; out; arg } ->
    let c = compile ~schema_of arg in
    let out_cols, f = Ops.aggregate c.schema ~group_by ~agg ~src ~out in
    unary ~op:"aggregate" out_cols f c

(* Delta-compiled plans for semi-naive fixpoint evaluation.

   A delta plan carries the full plan plus an incremental evaluator.  The
   contract, for an inflationary step from [old_db] to [db] (every relation
   only grew) and a delta database [d] with
   [db(R) − old_db(R) ⊆ d(R) ⊆ db(R)] for every relation [R] the plan
   mentions (a relation absent from [d] counts as empty):

     run plan old_db ∪ run_delta db d  =  run plan db
     run_delta db d                    ⊆  run plan db

   i.e. [run_delta] returns every tuple that is new at [db] — possibly with
   some already-present tuples, which the consumer subtracts — without
   re-deriving the whole result.  Monotone operators propagate deltas
   structurally (delta-join as ΔA⋈B ∪ A⋈ΔB); [Diff] and [Aggregate] are not
   monotone, so their subtrees are invalidated: [incremental] is false and
   [run_delta] re-evaluates the full plan. *)
module Delta = struct
  type plan = t

  type t = {
    plan : plan;
    incremental : bool;
    run_delta : Database.t -> Database.t -> Relation.t;
  }

  let plan d = d.plan
  let schema d = d.plan.schema
  let incremental d = d.incremental
  let run_delta d db delta = d.run_delta db delta

  let reevaluate full = { plan = full; incremental = false; run_delta = (fun db _ -> full.run db) }

  let unary_delta ~op f c full =
    if not c.incremental then reevaluate full
    else begin
      let f = Obs.wrap1 ("plan.delta_" ^ op) f in
      { plan = full; incremental = true; run_delta = (fun db d -> f (c.run_delta db d)) }
    end

  (* A plan's output is a pure function of the leaf relations it reads, so
     a full-side re-run can be memoised on their physical identities — the
     inflationary step only rebuilds relations it changes, leaving EDB
     leaves physically stable across steps. *)
  let rec leaf_names expr =
    match expr with
    | Algebra.Rel n -> [ n ]
    | Algebra.Const _ -> []
    | Algebra.Select (_, e)
    | Algebra.Project (_, e)
    | Algebra.Rename (_, e)
    | Algebra.Extend (_, _, e) ->
      leaf_names e
    | Algebra.Product (a, b) | Algebra.Join (a, b) | Algebra.Union (a, b) | Algebra.Diff (a, b)
      ->
      leaf_names a @ leaf_names b
    | Algebra.Aggregate { arg; _ } -> leaf_names arg

  let same_dep a b =
    match (a, b) with None, None -> true | Some x, Some y -> x == y | _ -> false

  let cached_run names run =
    let names = List.sort_uniq String.compare names in
    let cache = ref None in
    fun db ->
      let ds = List.map (fun n -> Database.find_opt n db) names in
      match !cache with
      | Some (ds', r) when List.for_all2 same_dep ds' ds -> r
      | _ ->
        let r = run db in
        cache := Some (ds, r);
        r

  (* ΔA⋈B ∪ A⋈ΔB, each side skipped when its delta is empty — after the
     first step EDB deltas are always empty, so a linear rule's step touches
     only the new tuples joined against the (indexed) full other side. *)
  let binary_delta ~op out f a b full =
    if not (a.incremental && b.incremental) then reevaluate full
    else begin
      let f = Obs.wrap2 ("plan.delta_" ^ op) f in
      let empty = Relation.empty out in
      {
        plan = full;
        incremental = true;
        run_delta =
          (fun db d ->
            let da = a.run_delta db d and db_ = b.run_delta db d in
            let left = if Relation.is_empty da then empty else f da (b.plan.run db) in
            let right = if Relation.is_empty db_ then empty else f (a.plan.run db) db_ in
            Relation.union left right);
      }
    end

  let rec compile ~schema_of expr =
    match expr with
    | Algebra.Rel name ->
      let full = rel_leaf ~schema_of name in
      let cols = full.schema in
      let empty = Relation.empty cols in
      {
        plan = full;
        incremental = true;
        run_delta =
          (fun _db d ->
            match Database.find_opt name d with
            | Some r -> check_leaf name cols r
            | None -> empty);
      }
    | Algebra.Const r ->
      (* Constants never change between steps: the delta is empty.  (The
         first fixpoint step is a full evaluation, so constant seeds — empty
         rule bodies — are still picked up.) *)
      let empty = Relation.empty (Relation.columns r) in
      let full = { schema = Relation.columns r; run = (fun _ -> r) } in
      { plan = full; incremental = true; run_delta = (fun _ _ -> empty) }
    | Algebra.Select (p, e) ->
      let c = compile ~schema_of e in
      let f = Ops.select c.plan.schema p in
      unary_delta ~op:"select" f c (unary ~op:"select" c.plan.schema f c.plan)
    | Algebra.Project (cols, e) ->
      let c = compile ~schema_of e in
      let out, f = Ops.project c.plan.schema cols in
      unary_delta ~op:"project" f c (unary ~op:"project" out f c.plan)
    | Algebra.Rename (pairs, e) ->
      let c = compile ~schema_of e in
      let out, f = Ops.rename c.plan.schema pairs in
      unary_delta ~op:"rename" f c (unary ~op:"rename" out f c.plan)
    | Algebra.Extend (col, term, e) ->
      let c = compile ~schema_of e in
      let out, f = Ops.extend c.plan.schema col term in
      unary_delta ~op:"extend" f c (unary ~op:"extend" out f c.plan)
    | Algebra.Product (a, b) ->
      let ca = compile ~schema_of a and cb = compile ~schema_of b in
      let out, f = Ops.product ca.plan.schema cb.plan.schema in
      binary_delta ~op:"product" out f ca cb (binary ~op:"product" out f ca.plan cb.plan)
    | Algebra.Join (a, b) ->
      let ca = compile ~schema_of a and cb = compile ~schema_of b in
      let out, f = Ops.join ca.plan.schema cb.plan.schema in
      let full = binary ~op:"join" out f ca.plan cb.plan in
      if not (ca.incremental && cb.incremental) then reevaluate full
      else begin
        (* Index-caching executors on the delta path: each side probes with
           its delta and builds (once, memoised) on the other operand's full
           relation.  The full-side sub-plan runs are memoised on the leaf
           relations they read, so a stable full side also keeps a stable
           physical identity and the build-side index cache can hit. *)
        let _, fl = Ops.join_build_right ca.plan.schema cb.plan.schema in
        let _, fr = Ops.join_build_left ca.plan.schema cb.plan.schema in
        let fl = Obs.wrap2 "plan.delta_join" fl in
        let fr = Obs.wrap2 "plan.delta_join" fr in
        let a_full = cached_run (leaf_names a) ca.plan.run in
        let b_full = cached_run (leaf_names b) cb.plan.run in
        let empty = Relation.empty out in
        {
          plan = full;
          incremental = true;
          run_delta =
            (fun db d ->
              let da = ca.run_delta db d and db_ = cb.run_delta db d in
              let left = if Relation.is_empty da then empty else fl da (b_full db) in
              let right = if Relation.is_empty db_ then empty else fr (a_full db) db_ in
              Relation.union left right);
        }
      end
    | Algebra.Union (a, b) ->
      let ca = compile ~schema_of a and cb = compile ~schema_of b in
      let out, f = Ops.union ca.plan.schema cb.plan.schema in
      let full = binary ~op:"union" out f ca.plan cb.plan in
      if not (ca.incremental && cb.incremental) then reevaluate full
      else
        {
          plan = full;
          incremental = true;
          run_delta = (fun db d -> Relation.union (ca.run_delta db d) (cb.run_delta db d));
        }
    | Algebra.Diff (a, b) ->
      (* Not monotone in [b]: a tuple can become derivable because the
         subtrahend, frozen earlier in the step, no longer blocks it only
         under re-evaluation.  Invalidate. *)
      let ca = compile ~schema_of a and cb = compile ~schema_of b in
      let out, f = Ops.diff ca.plan.schema cb.plan.schema in
      reevaluate (binary ~op:"diff" out f ca.plan cb.plan)
    | Algebra.Aggregate { group_by; agg; src; out; arg } ->
      (* Delta-aggregate invalidation: a group's aggregate changes when any
         member arrives, so the whole operator re-evaluates. *)
      let c = compile ~schema_of arg in
      let out_cols, f = Ops.aggregate c.plan.schema ~group_by ~agg ~src ~out in
      reevaluate (unary ~op:"aggregate" out_cols f c.plan)
end
