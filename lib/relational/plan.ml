(* Compiled physical plans for the deterministic algebra.

   [compile] walks the AST exactly once: every schema is derived, every
   column name resolved to an integer position, and every predicate
   compiled, so all [Schema_error]s surface at plan-build time.  What
   remains is a tree of closures over index arrays — no AST, no name
   lookups, no per-call schema recomputation — which the fixpoint engines
   execute thousands of times per query.  Semantics (including error
   behaviour and the Aggregate zero-row rule) match [Algebra.eval]
   operator for operator. *)

type t = {
  schema : string list;
  run : Database.t -> Relation.t;
}

let schema p = p.schema
let run p db = p.run db

let schema_err fmt = Format.kasprintf (fun s -> raise (Relation.Schema_error s)) fmt

module Ops = struct
  let select schema p =
    let keep = Pred.compile schema p in
    fun r -> Relation.filter keep r

  let project schema cols =
    let out = Algebra.project_schema cols schema in
    let idx = Array.of_list (Algebra.indices_of schema cols) in
    let empty = Relation.empty out in
    ( out,
      fun r ->
        Relation.fold (fun t acc -> Relation.add (Array.map (fun i -> t.(i)) idx) acc) r empty )

  let rename schema pairs =
    let out = Algebra.rename_schema pairs schema in
    (out, fun r -> Relation.make out (Relation.tuples r))

  let extend schema c term =
    if List.mem c schema then schema_err "extend: column %s already exists" c;
    let value =
      match term with
      | Pred.Const v -> fun (_ : Tuple.t) -> v
      | Pred.Col src ->
        if not (List.mem src schema) then schema_err "extend: unknown source column %s" src;
        let i = List.hd (Algebra.indices_of schema [ src ]) in
        fun (t : Tuple.t) -> t.(i)
    in
    let out = schema @ [ c ] in
    let empty = Relation.empty out in
    ( out,
      fun r ->
        Relation.fold (fun t acc -> Relation.add (Array.append t [| value t |]) acc) r empty )

  let product ca cb =
    let out = Algebra.product_schema ca cb in
    let empty = Relation.empty out in
    ( out,
      fun ra rb ->
        Relation.fold
          (fun ta acc ->
            Relation.fold (fun tb acc -> Relation.add (Array.append ta tb) acc) rb acc)
          ra empty )

  (* Hash join: probe-side key positions, build-side key positions and the
     build side's non-shared positions are all fixed at compile time; only
     the build/probe over [Tuple_tbl] happens per execution. *)
  let join ca cb =
    let shared = List.filter (fun c -> List.mem c ca) cb in
    let out = Algebra.join_schema ca cb in
    let ia = Array.of_list (Algebra.indices_of ca shared) in
    let ib = Array.of_list (Algebra.indices_of cb shared) in
    let rest_b =
      Array.of_list (Algebra.indices_of cb (List.filter (fun c -> not (List.mem c ca)) cb))
    in
    let empty = Relation.empty out in
    ( out,
      fun ra rb ->
        let index = Algebra.index_by (fun tb -> Array.map (fun i -> tb.(i)) ib) rb in
        Relation.fold
          (fun ta acc ->
            let key = Array.map (fun i -> ta.(i)) ia in
            match Algebra.Tuple_tbl.find_opt index key with
            | None -> acc
            | Some matches ->
              List.fold_left
                (fun acc tb ->
                  Relation.add (Array.append ta (Array.map (fun i -> tb.(i)) rest_b)) acc)
                acc matches)
          ra empty )

  let same_schema opname ca cb =
    if not (List.equal String.equal ca cb) then
      schema_err "%s: schemas differ (%s vs %s)" opname (String.concat "," ca)
        (String.concat "," cb)

  let union ca cb =
    same_schema "union" ca cb;
    (ca, Relation.union)

  let diff ca cb =
    same_schema "diff" ca cb;
    (ca, Relation.diff)

  let aggregate schema ~group_by ~agg ~src ~out =
    List.iter
      (fun c -> if not (List.mem c schema) then schema_err "aggregate: unknown group column %s" c)
      group_by;
    (match (agg, src) with
     | Algebra.Count, _ -> ()
     | (Algebra.Sum | Algebra.Min | Algebra.Max), Some c ->
       if not (List.mem c schema) then schema_err "aggregate: unknown source column %s" c
     | (Algebra.Sum | Algebra.Min | Algebra.Max), None ->
       schema_err "aggregate: %s needs a source column" "sum/min/max");
    if List.mem out group_by then schema_err "aggregate: output column %s clashes" out;
    let gi = Array.of_list (Algebra.indices_of schema group_by) in
    let si =
      match src with
      | Some c -> Some (List.hd (Algebra.indices_of schema [ c ]))
      | None -> None
    in
    let out_cols = group_by @ [ out ] in
    let empty = Relation.empty out_cols in
    let aggregate_bucket tuples =
      match agg with
      | Algebra.Count -> Some (Value.Int (List.length tuples))
      | Algebra.Sum ->
        let i = Option.get si in
        Some
          (Value.Rat
             (List.fold_left
                (fun acc (t : Tuple.t) -> Bigq.Q.add acc (Value.to_q t.(i)))
                Bigq.Q.zero tuples))
      | Algebra.Min | Algebra.Max ->
        let i = Option.get si in
        let better a b =
          let c = Value.compare a b in
          match agg with
          | Algebra.Min -> if c <= 0 then a else b
          | _ -> if c >= 0 then a else b
        in
        (match tuples with
         | [] -> None
         | (first : Tuple.t) :: rest ->
           Some (List.fold_left (fun acc (t : Tuple.t) -> better acc t.(i)) first.(i) rest))
    in
    ( out_cols,
      fun r ->
        let groups = Algebra.index_by (fun t -> Array.map (fun i -> t.(i)) gi) r in
        let base =
          Algebra.Tuple_tbl.fold
            (fun key tuples acc ->
              match aggregate_bucket tuples with
              | Some v -> Relation.add (Array.append key [| v |]) acc
              | None -> acc)
            groups empty
        in
        (* Empty input, no grouping: Count/Sum still produce their zero row. *)
        if Algebra.Tuple_tbl.length groups = 0 && group_by = [] then begin
          match agg with
          | Algebra.Count -> Relation.add [| Value.Int 0 |] base
          | Algebra.Sum -> Relation.add [| Value.Rat Bigq.Q.zero |] base
          | Algebra.Min | Algebra.Max -> base
        end
        else base )
end

(* Instrumentation happens here, at plan-build time: [Obs.wrap1]/[wrap2]
   return [f] itself when stats are off, so the executed closure tree is
   byte-for-byte the uninstrumented one. *)
let unary ~op out f c =
  let f = Obs.wrap1 ("plan." ^ op) f in
  { schema = out; run = (fun db -> f (c.run db)) }

let binary ~op out f a b =
  let f = Obs.wrap2 ("plan." ^ op) f in
  { schema = out; run = (fun db -> f (a.run db) (b.run db)) }

let rec compile ~schema_of expr =
  match expr with
  | Algebra.Rel name ->
    let cols = schema_of name in
    {
      schema = cols;
      run =
        (fun db ->
          let r = Database.find name db in
          if not (List.equal String.equal (Relation.columns r) cols) then
            schema_err "plan: relation %s has columns %s, was compiled against %s" name
              (String.concat "," (Relation.columns r))
              (String.concat "," cols);
          r);
    }
  | Algebra.Const r -> { schema = Relation.columns r; run = (fun _ -> r) }
  | Algebra.Select (p, e) ->
    let c = compile ~schema_of e in
    unary ~op:"select" c.schema (Ops.select c.schema p) c
  | Algebra.Project (cols, e) ->
    let c = compile ~schema_of e in
    let out, f = Ops.project c.schema cols in
    unary ~op:"project" out f c
  | Algebra.Rename (pairs, e) ->
    let c = compile ~schema_of e in
    let out, f = Ops.rename c.schema pairs in
    unary ~op:"rename" out f c
  | Algebra.Product (a, b) ->
    let ca = compile ~schema_of a and cb = compile ~schema_of b in
    let out, f = Ops.product ca.schema cb.schema in
    binary ~op:"product" out f ca cb
  | Algebra.Join (a, b) ->
    let ca = compile ~schema_of a and cb = compile ~schema_of b in
    let out, f = Ops.join ca.schema cb.schema in
    binary ~op:"join" out f ca cb
  | Algebra.Union (a, b) ->
    let ca = compile ~schema_of a and cb = compile ~schema_of b in
    let out, f = Ops.union ca.schema cb.schema in
    binary ~op:"union" out f ca cb
  | Algebra.Diff (a, b) ->
    let ca = compile ~schema_of a and cb = compile ~schema_of b in
    let out, f = Ops.diff ca.schema cb.schema in
    binary ~op:"diff" out f ca cb
  | Algebra.Extend (c, term, e) ->
    let ce = compile ~schema_of e in
    let out, f = Ops.extend ce.schema c term in
    unary ~op:"extend" out f ce
  | Algebra.Aggregate { group_by; agg; src; out; arg } ->
    let c = compile ~schema_of arg in
    let out_cols, f = Ops.aggregate c.schema ~group_by ~agg ~src ~out in
    unary ~op:"aggregate" out_cols f c
