type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let arity = Array.length

let compare a b =
  if a == b then 0
  else begin
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else begin
      let rec go i =
        if i = la then 0
        else begin
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    end
  end

let equal a b = a == b || compare a b = 0

let hash (t : t) =
  let h = ref (0x811c9dc5 + Array.length t) in
  for i = 0 to Array.length t - 1 do
    h := (!h lxor Value.hash t.(i)) * 0x01000193 land max_int
  done;
  !h

let pp fmt t =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Value.pp)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
