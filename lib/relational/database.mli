(** A database instance: a finite map from relation names to relations.

    Database instances are the *states* of the paper's Markov chains
    (Section 3.1), so they carry a total order and can key maps and sets. *)

type t

val empty : t
val add : string -> Relation.t -> t -> t
val find : string -> t -> Relation.t
(** Raises [Not_found] if the relation is absent. *)

val find_opt : string -> t -> Relation.t option
val mem : string -> t -> bool
val remove : string -> t -> t
val names : t -> string list
val bindings : t -> (string * Relation.t) list
val of_list : (string * Relation.t) list -> t
val fold : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a
val map : (string -> Relation.t -> Relation.t) -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Agrees with {!equal}.  Database instances are the states of the paper's
    Markov chains, so this is the key ingredient of hashed state interning
    during chain exploration. *)

val subsumes : t -> t -> bool
(** [subsumes bigger smaller] holds when every relation of [smaller] exists
    in [bigger] with the same schema and a superset of tuples — the
    containment test behind the inflationary-query check (Def 3.4). *)

val total_tuples : t -> int
val pp : Format.formatter -> t -> unit
