let pp_table fmt r =
  let cols = Relation.columns r in
  let rows =
    List.rev (Relation.fold (fun t acc -> List.map Value.to_string (Tuple.to_list t) :: acc) r [])
  in
  let widths =
    List.mapi
      (fun i c -> List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length c) rows)
    cols
  in
  let rule = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render cells = String.concat " | " (List.map2 pad cells widths) in
  Format.fprintf fmt "@[<v>%s@,%s" (render cols) rule;
  List.iter (fun row -> Format.fprintf fmt "@,%s" (render row)) rows;
  Format.fprintf fmt "@]"

let relation_of_rows cols rows =
  Relation.make cols
    (List.map (fun row -> Tuple.of_list (List.map Value.of_string row)) rows)
