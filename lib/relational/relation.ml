(* Flat columnar relations.

   Tuples live in one immutable array in strictly ascending {!Tuple.compare}
   order with no duplicates — the same canonical order the previous
   [Set.Make (Tuple)] representation enumerated, so iteration order, the
   sign of {!compare}, {!hash} and everything downstream of them
   (distribution supports, repair-key RNG draw order, printed output) are
   bit-identical to the reference representation ({!Relation_ref}).  What
   changes is the cost model: [union]/[inter]/[diff]/[subset] are linear
   merges of sorted arrays, [mem] is a binary search, iteration and hashing
   are cache-friendly sequential scans, and operators build outputs in bulk
   through {!Builder} instead of one balanced-tree insert per tuple.

   The arrays are never mutated after construction; every operation is
   persistent, sharing the tuple boxes (and, via {!Value.Intern}, the value
   boxes) of its inputs.  Operations additionally return an *input* relation
   physically whenever the result is equal to it (e.g. [union a b = a] when
   [b ⊆ a]), which keeps the [==] fast paths of {!equal} and the delta-plan
   memos hitting across fixpoint steps.

   [hash_memo] caches {!hash} (-1 = not yet computed; hashes are masked
   non-negative).  Every constructor that changes the tuple array goes
   through {!mk} so the memo is reset.  See {!hash} for the benign-race
   contract under parallel sampling. *)

type t = { cols : string list; tuples : Tuple.t array; mutable hash_memo : int }

let mk cols tuples = { cols; tuples; hash_memo = -1 }

exception Schema_error of string

let check_distinct cols =
  let sorted = List.sort_uniq String.compare cols in
  if List.length sorted <> List.length cols then
    raise (Schema_error ("duplicate column in schema: " ^ String.concat "," cols))

let check_arity cols tuple =
  if Tuple.arity tuple <> List.length cols then
    raise
      (Schema_error
         (Printf.sprintf "tuple %s has arity %d, schema (%s) expects %d" (Tuple.to_string tuple)
            (Tuple.arity tuple) (String.concat "," cols) (List.length cols)))

(* Sort and dedup in place; returns [arr] itself when already duplicate-free
   after sorting.  A strictly-ascending input (the common case for operator
   outputs probed in relation order — joins over singleton buckets,
   selections, deltas) is detected with one linear scan and skipped past the
   non-adaptive [Array.sort]. *)
let canonicalise arr =
  let n = Array.length arr in
  if n <= 1 then arr
  else begin
    let rec ascending i = i >= n || (Tuple.compare arr.(i - 1) arr.(i) < 0 && ascending (i + 1)) in
    if ascending 1 then arr
    else begin
    Array.sort Tuple.compare arr;
    let w = ref 1 in
    for i = 1 to n - 1 do
      if Tuple.compare arr.(i) arr.(!w - 1) <> 0 then begin
        arr.(!w) <- arr.(i);
        incr w
      end
    done;
    if !w = n then arr else Array.sub arr 0 !w
    end
  end

let make cols tuple_list =
  check_distinct cols;
  List.iter (check_arity cols) tuple_list;
  mk cols (canonicalise (Array.of_list tuple_list))

let empty cols =
  check_distinct cols;
  mk cols [||]

let unsafe_of_sorted_array cols arr =
  check_distinct cols;
  mk cols arr

let columns r = r.cols
let arity r = List.length r.cols
let tuples r = Array.to_list r.tuples
let cardinal r = Array.length r.tuples
let is_empty r = Array.length r.tuples = 0

(* Index of the first element >= t, in [0, n]. *)
let lower_bound (a : Tuple.t array) t =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Tuple.compare a.(mid) t < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let mem t r =
  let a = r.tuples in
  let i = lower_bound a t in
  i < Array.length a && Tuple.compare a.(i) t = 0

let add t r =
  check_arity r.cols t;
  let a = r.tuples in
  let n = Array.length a in
  let i = lower_bound a t in
  if i < n && Tuple.compare a.(i) t = 0 then r
  else begin
    let b = Array.make (n + 1) t in
    Array.blit a 0 b 0 i;
    Array.blit a i b (i + 1) (n - i);
    mk r.cols b
  end

let fold f r acc =
  let a = r.tuples in
  let acc = ref acc in
  for i = 0 to Array.length a - 1 do
    acc := f a.(i) !acc
  done;
  !acc

let iter f r = Array.iter f r.tuples
let exists p r = Array.exists p r.tuples

let filter p r =
  let a = r.tuples in
  let n = Array.length a in
  if n = 0 then r
  else begin
    let buf = Array.make n a.(0) in
    let w = ref 0 in
    for i = 0 to n - 1 do
      let t = a.(i) in
      if p t then begin
        buf.(!w) <- t;
        incr w
      end
    done;
    if !w = n then r else mk r.cols (Array.sub buf 0 !w)
  end

let column_index r name =
  let rec go i = function
    | [] -> raise (Schema_error ("unknown column " ^ name ^ " in (" ^ String.concat "," r.cols ^ ")"))
    | c :: rest -> if String.equal c name then i else go (i + 1) rest
  in
  go 0 r.cols

let same_schema a b =
  if not (List.equal String.equal a.cols b.cols) then
    raise
      (Schema_error
         (Printf.sprintf "schema mismatch: (%s) vs (%s)" (String.concat "," a.cols)
            (String.concat "," b.cols)))

let union a b =
  same_schema a b;
  let xa = a.tuples and xb = b.tuples in
  let na = Array.length xa and nb = Array.length xb in
  if na = 0 then b
  else if nb = 0 then a
  else if Tuple.compare xa.(na - 1) xb.(0) < 0 then begin
    (* Disjoint ranges: the union is a concatenation, no merging needed. *)
    let buf = Array.make (na + nb) xa.(0) in
    Array.blit xa 0 buf 0 na;
    Array.blit xb 0 buf na nb;
    mk a.cols buf
  end
  else if Tuple.compare xb.(nb - 1) xa.(0) < 0 then begin
    let buf = Array.make (na + nb) xb.(0) in
    Array.blit xb 0 buf 0 nb;
    Array.blit xa 0 buf nb na;
    mk a.cols buf
  end
  else begin
    let buf = Array.make (na + nb) xa.(0) in
    let rec go i j w =
      if i = na then begin
        Array.blit xb j buf w (nb - j);
        w + nb - j
      end
      else if j = nb then begin
        Array.blit xa i buf w (na - i);
        w + na - i
      end
      else begin
        let c = Tuple.compare xa.(i) xb.(j) in
        if c < 0 then begin
          buf.(w) <- xa.(i);
          go (i + 1) j (w + 1)
        end
        else if c > 0 then begin
          buf.(w) <- xb.(j);
          go i (j + 1) (w + 1)
        end
        else begin
          buf.(w) <- xa.(i);
          go (i + 1) (j + 1) (w + 1)
        end
      end
    in
    let w = go 0 0 0 in
    (* [w = na] means every b tuple was matched (b ⊆ a), and symmetrically:
       return the operand itself, preserving physical identity (hash memos,
       the delta plans' [==]-keyed caches). *)
    if w = na then a
    else if w = nb then b
    else mk a.cols (if w = na + nb then buf else Array.sub buf 0 w)
  end

let inter a b =
  same_schema a b;
  let xa = a.tuples and xb = b.tuples in
  let na = Array.length xa and nb = Array.length xb in
  if na = 0 then a
  else if nb = 0 then b
  else begin
    let buf = Array.make (min na nb) xa.(0) in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < na && !j < nb do
      let c = Tuple.compare xa.(!i) xb.(!j) in
      if c = 0 then begin
        buf.(!w) <- xa.(!i);
        incr i;
        incr j;
        incr w
      end
      else if c < 0 then incr i
      else incr j
    done;
    if !w = na then a else if !w = nb then b else mk a.cols (Array.sub buf 0 !w)
  end

let diff a b =
  same_schema a b;
  let xa = a.tuples and xb = b.tuples in
  let na = Array.length xa and nb = Array.length xb in
  if na = 0 || nb = 0 then a
  else begin
    let buf = Array.make na xa.(0) in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < na && !j < nb do
      let c = Tuple.compare xa.(!i) xb.(!j) in
      if c = 0 then begin
        incr i;
        incr j
      end
      else if c < 0 then begin
        buf.(!w) <- xa.(!i);
        incr i;
        incr w
      end
      else incr j
    done;
    if !i < na then begin
      let rest = na - !i in
      Array.blit xa !i buf !w rest;
      w := !w + rest
    end;
    if !w = na then a else mk a.cols (Array.sub buf 0 !w)
  end

let subset a b =
  same_schema a b;
  let xa = a.tuples and xb = b.tuples in
  let na = Array.length xa and nb = Array.length xb in
  na <= nb
  && begin
       let i = ref 0 and j = ref 0 in
       let ok = ref true in
       while !ok && !i < na do
         if !j >= nb then ok := false
         else begin
           let c = Tuple.compare xa.(!i) xb.(!j) in
           if c = 0 then begin
             incr i;
             incr j
           end
           else if c > 0 then incr j
           else ok := false
         end
       done;
       !ok
     end

(* Physical equality first: the fixpoint engines compare successor states
   that share every unchanged relation value, so the common case is [a == b].
   The tuple-array comparison is the lexicographic order [Set.compare] gave
   the reference representation (common prefix, then the shorter operand
   first), so map and distribution orderings are unchanged. *)
let compare a b =
  if a == b then 0
  else
    let c = List.compare String.compare a.cols b.cols in
    if c <> 0 then c
    else begin
      let xa = a.tuples and xb = b.tuples in
      let na = Array.length xa and nb = Array.length xb in
      let n = if na < nb then na else nb in
      let rec go i =
        if i = n then Stdlib.compare na nb
        else begin
          let c = Tuple.compare xa.(i) xb.(i) in
          if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    end

(* [equal] rejects on cached hashes when both are available — the memo
   tables probe far more misses than hits — and on cardinality, which is
   O(1) for flat arrays. *)
let equal a b =
  a == b
  || ((a.hash_memo < 0 || b.hash_memo < 0 || a.hash_memo = b.hash_memo)
      && Array.length a.tuples = Array.length b.tuples
      && compare a b = 0)

(* FNV-1a over the schema then the tuples in ascending order, so the hash is
   a function of the (schema, tuple set) pair that {!equal} compares.
   Cached: relations are persistent, and chain exploration re-hashes the
   same relations once per database state they appear in.

   Benign-race contract: sampler domains share relation values (and now also
   the interning dictionaries), so [hash_memo] can be written concurrently.
   The function is pure, every domain computes the identical masked
   non-negative value, and the memo is a single immediate-int field whose
   loads and stores are atomic in OCaml's memory model — a racing read sees
   either -1 (and recomputes the same value) or the final hash, never a torn
   or wrong one.  Pinned by the multi-domain test in [test_columnar.ml]. *)
let hash r =
  if r.hash_memo >= 0 then r.hash_memo
  else begin
    let h = ref 0x811c9dc5 in
    let mix x = h := (!h lxor x) * 0x01000193 land max_int in
    List.iter (fun c -> mix (Hashtbl.hash c)) r.cols;
    Array.iter (fun t -> mix (Tuple.hash t)) r.tuples;
    r.hash_memo <- !h;
    !h
  end

let rename_columns cols r =
  check_distinct cols;
  if List.length cols <> List.length r.cols then
    raise
      (Schema_error
         (Printf.sprintf "rename_columns: %d columns for arity-%d relation" (List.length cols)
            (List.length r.cols)));
  mk cols r.tuples

(* Batch construction: operators accumulate raw output tuples and sort +
   dedup once, instead of paying a tree insert (or, with flat arrays, an
   O(n) copy) per tuple. *)
module Builder = struct
  type builder = {
    cols : string list;
    arity : int;
    mutable buf : Tuple.t array;
    mutable len : int;
  }

  let create ?(hint = 16) cols =
    check_distinct cols;
    { cols; arity = List.length cols; buf = Array.make (max hint 1) [||]; len = 0 }

  let add b t =
    if Array.length t <> b.arity then check_arity b.cols t;
    if b.len = Array.length b.buf then begin
      let bigger = Array.make (2 * b.len) [||] in
      Array.blit b.buf 0 bigger 0 b.len;
      b.buf <- bigger
    end;
    b.buf.(b.len) <- t;
    b.len <- b.len + 1

  let build b = mk b.cols (canonicalise (Array.sub b.buf 0 b.len))
end

let pp fmt r =
  Format.fprintf fmt "@[<v>%s(%s):" (if is_empty r then "empty " else "") (String.concat ", " r.cols);
  iter (fun t -> Format.fprintf fmt "@,  %a" Tuple.pp t) r;
  Format.fprintf fmt "@]"
