(** Compiled physical plans for the deterministic algebra.

    The fixpoint engines evaluate one fixed query against thousands of
    database states, so the query is compiled once: {!compile} resolves
    every schema and column reference to integer positions against a schema
    table and selects physical operators — hash-join build/probe over
    {!Algebra.Tuple_tbl}, positional select/project/extend, grouped
    aggregation — emitted as closures over index arrays.  Executing the
    plan performs no name resolution and no schema derivation.

    Contract with the interpreter: for every database whose relations match
    the compiled schemas, [run (compile ~schema_of e) db = Algebra.eval e db]
    — and every {!Relation.Schema_error} the interpreter would raise
    mid-run is raised by {!compile} instead.  Plans are immutable and safe
    to execute concurrently from several domains. *)

type t

val compile : schema_of:(string -> string list) -> Algebra.t -> t
(** [compile ~schema_of e] builds the physical plan for [e], where
    [schema_of name] gives the column list of each named relation (raise
    [Not_found] for unknown names, mirroring {!Database.find}).  Raises
    {!Relation.Schema_error} for any schema violation anywhere in [e]. *)

val schema : t -> string list
(** Result schema, fixed at compile time. *)

val run : t -> Database.t -> Relation.t
(** Execute the plan.  Relations named by the plan must carry the same
    columns as at compile time; a cheap per-leaf check raises
    {!Relation.Schema_error} otherwise. *)

(** Positional operator builders, shared with [Prob.Pplan] so the
    [repair-key] extension compiles its deterministic operators the same
    way.  Each takes the child schema(s), performs all schema checking
    immediately, and returns the output schema paired with the executable
    closure. *)
module Ops : sig
  val select : string list -> Pred.t -> Relation.t -> Relation.t
  val project : string list -> string list -> string list * (Relation.t -> Relation.t)
  val rename : string list -> (string * string) list -> string list * (Relation.t -> Relation.t)
  val extend : string list -> string -> Pred.term -> string list * (Relation.t -> Relation.t)

  val product :
    string list -> string list -> string list * (Relation.t -> Relation.t -> Relation.t)

  val join : string list -> string list -> string list * (Relation.t -> Relation.t -> Relation.t)

  val union : string list -> string list -> string list * (Relation.t -> Relation.t -> Relation.t)

  val diff : string list -> string list -> string list * (Relation.t -> Relation.t -> Relation.t)

  val aggregate :
    string list ->
    group_by:string list ->
    agg:Algebra.agg ->
    src:string option ->
    out:string ->
    string list * (Relation.t -> Relation.t)
end

(** Delta-compiled plans — the incremental evaluators behind semi-naive
    fixpoint stepping.

    Contract, for an inflationary step from [old_db] to [db] (every
    relation only grew) and a delta database [d] satisfying
    [db(R) − old_db(R) ⊆ d(R) ⊆ db(R)] for every relation the plan
    mentions (a name absent from [d] counts as an empty delta):

    - [run (plan p) old_db ∪ run_delta p db d = run (plan p) db], and
    - [run_delta p db d ⊆ run (plan p) db].

    So [run_delta] covers every newly derivable tuple, possibly repeating
    tuples that were already derivable (consumers subtract what they have
    seen).  Monotone operators propagate deltas structurally — delta-join
    is ΔA⋈B ∪ A⋈ΔB with empty-delta short-circuits — while [Diff] and
    [Aggregate] subtrees are invalidated: [incremental] is [false] and
    [run_delta] re-evaluates the full plan. *)
module Delta : sig
  type plan = t
  type t

  val compile : schema_of:(string -> string list) -> Algebra.t -> t
  (** Schema errors are raised here, exactly as {!val-compile} does. *)

  val plan : t -> plan
  (** The full (non-incremental) plan over the same expression. *)

  val schema : t -> string list
  val incremental : t -> bool

  val run_delta : t -> Database.t -> Database.t -> Relation.t
  (** [run_delta p db d] — [db] is the current (post-step) database, [d]
      the per-relation delta since the previous state.  See the contract
      above; when [incremental p] is [false] this is [run (plan p) db]. *)
end
