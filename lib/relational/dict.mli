(** Domain-safe interning dictionaries: payload keys to dense ids plus a
    canonical representative, shared across domains without locks on the
    read path (a single [Atomic.t] over a persistent map; inserts are CAS
    retries).  {!Value.Intern} instantiates this for string and rational
    payloads. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : KEY) : sig
  type 'v t

  val create : unit -> 'v t

  val intern : 'v t -> Key.t -> (int -> 'v) -> 'v
  (** [intern d k mk] returns the canonical representative for [k],
      allocating it with [mk id] (where [id] is the key's dense id) on first
      sight.  Under a racing first insert [mk] may run more than once, but
      exactly one result is ever published. *)

  val id : 'v t -> Key.t -> (int -> 'v) -> int
  (** Dense id of [k] (interning it first if needed): the [i]-th distinct
      key interned receives id [i]. *)

  val find_opt : 'v t -> Key.t -> 'v option
  (** Canonical representative if [k] has been interned, without inserting. *)

  val cardinal : 'v t -> int
  (** Number of distinct keys interned so far. *)
end
