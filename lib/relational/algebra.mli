(** Classical relational algebra over named columns.

    This is the deterministic fragment of the paper's query language;
    {!Prob.Palgebra} extends it with [repair-key].  Expressions are evaluated
    against a {!Database.t} and yield a {!Relation.t}. *)

type t =
  | Rel of string  (** a named relation of the database *)
  | Const of Relation.t  (** a literal relation *)
  | Select of Pred.t * t
  | Project of string list * t
  | Rename of (string * string) list * t  (** [(old, new)] pairs *)
  | Product of t * t  (** cartesian product; column sets must be disjoint *)
  | Join of t * t  (** natural join on shared column names *)
  | Union of t * t
  | Diff of t * t
  | Extend of string * Pred.term * t
      (** [Extend (c, term, e)]: appends a column [c] holding, per tuple, a
          constant or a copy of another column — the generalised projection
          needed to build datalog head tuples. *)
  | Aggregate of {
      group_by : string list;
      agg : agg;
      src : string option;  (** aggregated column; ignored by [Count] *)
      out : string;  (** name of the result column *)
      arg : t;
    }
      (** Grouping aggregation; the result schema is [group_by @ [out]].
          With an empty [group_by], [Count] and [Sum] yield a single row
          (0 on empty input) while [Min]/[Max] yield no row on empty
          input. *)

and agg =
  | Count
  | Sum
  | Min
  | Max

val schema_of : t -> Database.t -> string list
(** Result schema without materialising the result.  Raises
    {!Relation.Schema_error} (or [Not_found] for a missing relation) exactly
    when {!eval} would. *)

(** {2 Operator internals shared with the physical-plan layer}

    {!Plan} (and [Prob.Pplan]) resolve these once at plan-build time;
    {!eval} re-derives them on every call. *)

val project_schema : string list -> string list -> string list
(** [project_schema cols schema] checks [cols ⊆ schema] and distinctness;
    raises {!Relation.Schema_error} otherwise. *)

val rename_schema : (string * string) list -> string list -> string list
val product_schema : string list -> string list -> string list
val join_schema : string list -> string list -> string list

val indices_of : string list -> string list -> int list
(** [indices_of schema cols] resolves each column to its position; raises
    {!Relation.Schema_error} on an unknown column. *)

module Tuple_tbl : Hashtbl.S with type key = Tuple.t
(** Hash table over tuples reusing {!Tuple.hash}/{!Tuple.equal} — the
    build side of hash joins and grouped aggregation. *)

val index_by : (Tuple.t -> Tuple.t) -> Relation.t -> Tuple.t list Tuple_tbl.t
(** Buckets the relation's tuples by key.  Each bucket lists its tuples in
    descending {!Tuple.compare} order (iteration is ascending, buckets
    accumulate by consing); treat buckets as unordered sets. *)

val eval : t -> Database.t -> Relation.t

val singleton : string list -> Value.t list -> t
(** [singleton cols vs] is a constant one-tuple relation, e.g. the
    [ρ_P({1})] idiom from the paper. *)

val pp : Format.formatter -> t -> unit
