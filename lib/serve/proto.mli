(** probdb.proto/3 — the daemon's wire protocol.  Newline-delimited JSON:
    each request is one JSON object on one line, each response one JSON
    object on one line, answered in order per connection.

    Requests carry ["op"] ∈ load|query|estimate|stats|metrics|cancel|ping,
    a caller request ["id"] (echoed back), and an optional ["tenant"]
    (default ["default"]).  [estimate] is [query] with the method
    defaulted to ["sample"].  Responses always carry ["schema"], ["id"]
    and ["ok"]; failures set ["ok"]: false with an ["error"] string and a
    machine-readable ["code"] slug.

    Rev 2 over rev 1: the ["metrics"] op (a [probdb.metrics/1] JSON
    document plus a Prometheus-text rendering of the same families), a
    server-generated correlation id echoed as ["corr"] in every response
    (and stamped into the server's log lines and trace span args), and an
    optional per-query ["trace"]: true flag that enables {!Obs.Trace} in
    the request's scope and returns the Chrome trace document inline
    under ["trace"].

    Rev 3 over rev 2: the ["ping"] op (a liveness probe answered without
    touching any tenant state), an optional client idempotency key
    ["idem"] on any request — the server remembers the response it sent
    for a given (tenant, idem) and answers a retried request with the
    stored response verbatim instead of re-executing it — and the
    ["code"] error slug.  Rev-2 requests decode unchanged. *)

val schema : string

(** Request class: [Interactive] requests run under the tenant's
    interactive deadline and (when the tenant allows it) degrade by
    sampler fallback on budget exhaustion; [Batch] requests get the batch
    deadline and plain partial degradation. *)
type clazz =
  | Interactive
  | Batch

val clazz_slug : clazz -> string

(** A decoded query/estimate request.  Field defaults mirror the probdl
    CLI flags ([q_stats] defaults true: responses carry per-request Obs
    stats unless the client opts out). *)
type query = {
  q_class : clazz;
  q_name : string option;  (** evaluate a program [load]ed under this name *)
  q_source : string option;  (** …or inline program text *)
  q_semantics : Eval.Engine.semantics;
  q_method : string;  (** method slug, resolved by {!method_of_query} *)
  q_eps : float;
  q_delta : float;
  q_burn_in : int;
  q_steps : int;
  q_seed : int;
  q_domains : int option;
  q_max_states : int;
  q_max_steps : int option;
  q_optimize : bool;
  q_interpreted : bool;
  q_naive : bool;
  q_magic : bool;
  q_stats : bool;
  q_trace : bool;  (** per-request trace export, returned inline *)
}

type request =
  | Load of {
      name : string;
      source : string;
    }  (** validate [source] and store it under [(tenant, name)] *)
  | Query of query
  | Stats  (** server-wide counters: cache, intern store, tenants *)
  | Metrics
      (** the telemetry plane: [probdb.metrics/1] JSON + Prometheus text *)
  | Cancel of { target : string }
      (** cancel the tenant's in-flight request whose id is [target] *)
  | Ping  (** liveness probe: answered immediately, never journaled *)

type envelope = {
  id : string;
  tenant : string;
  idem : string option;
      (** client idempotency key; the server dedups retried requests on
          [(tenant, idem)] *)
  req : request;
}

(** {2 Error codes}

    The ["code"] slug attached to error responses — stable, machine
    readable, orthogonal to the human-readable ["error"] text. *)

val code_bad_request : string
(** malformed JSON, unknown op, missing/ill-typed field *)

val code_not_found : string
(** [query] by [name] that was never [load]ed for this tenant *)

val code_capacity : string
(** admission control refused the request ([max_inflight]) *)

val code_frame_too_large : string
(** request line exceeded the server's max frame size *)

val code_timeout : string
(** the connection's read deadline expired mid-frame *)

val code_eval : string
(** parse/compile/evaluation failure of a well-formed request *)

val code_journal : string
(** the durable journal could not persist a [load] (nothing was applied) *)

val code_internal : string
(** unexpected server-side exception; the session survives *)

val request_of_json : Obs.Json.t -> (envelope, string) result
val parse_request : string -> (envelope, string) result

val method_of_query : query -> (Eval.Engine.method_, string) result
(** Resolves the method slug against the query's sampling parameters. *)

val response : id:string -> ?corr:string -> (string * Obs.Json.t) list -> Obs.Json.t
(** An [ok]: true response envelope around [fields], carrying the
    server's correlation id when one was assigned. *)

val error_response :
  id:string -> ?corr:string -> ?code:string -> string -> Obs.Json.t
(** An [ok]: false envelope with the ["error"] text and, when given, the
    machine-readable ["code"] slug. *)
