(** Blocking probdb.proto/3 client: newline-delimited JSON request in,
    one-line response out.  Raises [End_of_file] on a closed connection
    and [Unix.Unix_error] on connect failures.

    The {!resilient} variant survives the daemon: automatic reconnect
    with jittered exponential backoff under a retry budget, per-request
    deadlines, and safe automatic re-issue of idempotent ops only (their
    answers are deterministic — exact [Q] values, fixed-seed estimates —
    or read-only).  Every request carries an idempotency key
    (client time-tag + sequence, the PR 9 correlation-id shape), so the
    server dedups a retried request whose first attempt already completed
    and answers with the stored response verbatim. *)

exception Timeout of string
(** The per-request deadline expired before a response line arrived. *)

exception Unavailable of string
(** The reconnect/retry budget was exhausted without an answer. *)

type t

val connect : ?retry_ms:int -> Unix.sockaddr -> t
(** Retries refused/absent sockets for up to [retry_ms] (default 0: one
    attempt) — lets scripts race a just-started daemon.  The retry window
    is measured on the monotone [Obs.now_ns] clock, so a wall-clock step
    during the wait neither stretches nor collapses it. *)

val connect_unix : ?retry_ms:int -> string -> t

val send : t -> string -> unit
val recv : t -> string

val rpc : t -> string -> string
(** [send] then [recv]: the protocol answers in order per connection. *)

val rpc_json : t -> Obs.Json.t -> Obs.Json.t

val rpc_fields : t -> Obs.Json.t -> (string * Obs.Json.t) list
(** {!rpc_json} plus the envelope check: the response's top-level fields
    when ["ok"] is true, [Failure] carrying the server's ["error"]
    message otherwise. *)

val close : t -> unit

(** Jittered exponential backoff under a total retry budget.  Pure
    policy: the caller feeds it clock readings and performs the sleeps,
    which is what makes the monotonicity property testable.  Internally
    the policy latches a high-water mark over the readings it is fed —
    elapsed time is a difference of two non-decreasing values, so a
    backwards wall-clock step cannot stretch the retry window and
    remaining budget never reads negative. *)
module Backoff : sig
  type decision =
    | Sleep_ms of float  (** sleep this long, then retry *)
    | Give_up  (** the budget is spent *)

  type t

  val make :
    ?base_ms:float ->
    ?cap_ms:float ->
    ?budget_ms:float ->
    ?seed:int ->
    unit ->
    t
  (** Defaults: 20 ms base doubling per attempt, 1 s cap per sleep, 2 s
      total budget, deterministic jitter from [seed] (factor in
      [0.5, 1.5)). *)

  val next : t -> now_ns:int -> decision
  (** One retry decision at clock reading [now_ns] (readings below the
      high-water mark are clamped).  Sleeps are clamped to the remaining
      budget. *)

  val attempts : t -> int
end

val idempotent_op : string -> bool
(** Ops the resilient client may re-issue blind:
    [query]/[estimate]/[stats]/[metrics]/[ping].  [load] and [cancel] are
    excluded (server-side idem dedup still protects application-level
    retries of those). *)

type resilient

val resilient_connect :
  ?deadline_ms:float ->
  ?retry_budget_ms:float ->
  ?base_backoff_ms:float ->
  ?seed:int ->
  Unix.sockaddr ->
  resilient
(** Connects eagerly, retrying refused/absent sockets under
    [retry_budget_ms] (default 2000) with [base_backoff_ms] (default 20)
    jittered exponential backoff; raises {!Unavailable} when the budget
    is spent.  [deadline_ms] bounds every subsequent request end-to-end;
    [seed] fixes the jitter and the idempotency-key tag (defaults to a
    per-process unique value). *)

val resilient_rpc : resilient -> Obs.Json.t -> Obs.Json.t
(** One request.  Adds an ["idem"] key (unless the caller set one),
    sends, and awaits the response line under the deadline.  On a dropped
    connection: reconnects and re-issues — with the same key — when the
    op is {!idempotent_op} and budget remains; raises the underlying
    error immediately for non-idempotent ops.  Raises {!Timeout} when the
    deadline expires and {!Unavailable} when retries are exhausted. *)

val resilient_fields : resilient -> Obs.Json.t -> (string * Obs.Json.t) list
(** {!resilient_rpc} plus the ["ok"] envelope check (like {!rpc_fields}). *)

val resilient_close : resilient -> unit
