(** Blocking probdb.proto/2 client: newline-delimited JSON request in,
    one-line response out.  Raises [End_of_file] on a closed connection
    and [Unix.Unix_error] on connect failures. *)

type t

val connect : ?retry_ms:int -> Unix.sockaddr -> t
(** Retries refused/absent sockets for up to [retry_ms] (default 0: one
    attempt) — lets scripts race a just-started daemon. *)

val connect_unix : ?retry_ms:int -> string -> t

val send : t -> string -> unit
val recv : t -> string

val rpc : t -> string -> string
(** [send] then [recv]: the protocol answers in order per connection. *)

val rpc_json : t -> Obs.Json.t -> Obs.Json.t

val rpc_fields : t -> Obs.Json.t -> (string * Obs.Json.t) list
(** {!rpc_json} plus the envelope check: the response's top-level fields
    when ["ok"] is true, [Failure] carrying the server's ["error"]
    message otherwise. *)

val close : t -> unit
