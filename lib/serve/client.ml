(* Minimal blocking client for probdb.proto/2: one line out, one line
   back.  Used by the probdbd client subcommand, the CI smoke and the
   bench load generator. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let rec connect_with_retry addr deadline =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> fd
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
    when Unix.gettimeofday () < deadline ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Unix.sleepf 0.02;
    connect_with_retry addr deadline
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?(retry_ms = 0) addr =
  let fd = connect_with_retry addr (Unix.gettimeofday () +. (float_of_int retry_ms /. 1000.)) in
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_unix ?retry_ms path = connect ?retry_ms (Unix.ADDR_UNIX path)

let send t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv t = input_line t.ic

let rpc t line =
  send t line;
  recv t

let rpc_json t j = Jsonr.parse (rpc t (Obs.Json.to_string j))

(* One ok-checked request: the response's top-level fields, or [Failure]
   with the server's error message — what pollers (probdbd top, smokes)
   want instead of re-implementing the envelope check. *)
let rpc_fields t j =
  match rpc_json t j with
  | Obs.Json.Obj fields -> (
    match List.assoc_opt "ok" fields with
    | Some (Obs.Json.Bool true) -> fields
    | _ ->
      failwith
        (match List.assoc_opt "error" fields with
         | Some (Obs.Json.Str m) -> m
         | _ -> "request failed"))
  | _ -> failwith "malformed response: not a JSON object"

let close t =
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
