(* Blocking client for probdb.proto/3: one line out, one line back.  Used
   by the probdbd client subcommand, the CI smokes and the bench load
   generator.  The resilient variant survives the daemon: reconnect with
   jittered exponential backoff under a retry budget, per-request
   deadlines, and automatic re-issue of idempotent ops only — each request
   carrying an idempotency key so the server dedups a retry whose first
   attempt already completed. *)

exception Timeout of string
exception Unavailable of string

let () =
  Printexc.register_printer (function
    | Timeout m -> Some (Printf.sprintf "Serve.Client.Timeout(%s)" m)
    | Unavailable m -> Some (Printf.sprintf "Serve.Client.Unavailable(%s)" m)
    | _ -> None)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

(* All retry/deadline arithmetic reads the monotone [Obs.now_ns]
   high-water clock, never [gettimeofday]: a wall-clock step (NTP, manual
   set) during a retry loop can neither stretch the window (step back)
   nor collapse it (step forward) — the same fix [Guard] deadlines got. *)
let rec connect_with_retry addr deadline_ns =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> fd
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
    when Obs.now_ns () < deadline_ns ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Unix.sleepf 0.02;
    connect_with_retry addr deadline_ns
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?(retry_ms = 0) addr =
  let fd = connect_with_retry addr (Obs.now_ns () + (retry_ms * 1_000_000)) in
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_unix ?retry_ms path = connect ?retry_ms (Unix.ADDR_UNIX path)

let send t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv t = input_line t.ic

let rpc t line =
  send t line;
  recv t

let rpc_json t j = Jsonr.parse (rpc t (Obs.Json.to_string j))

(* One ok-checked request: the response's top-level fields, or [Failure]
   with the server's error message — what pollers (probdbd top, smokes)
   want instead of re-implementing the envelope check. *)
let check_fields = function
  | Obs.Json.Obj fields -> (
    match List.assoc_opt "ok" fields with
    | Some (Obs.Json.Bool true) -> fields
    | _ ->
      failwith
        (match List.assoc_opt "error" fields with
         | Some (Obs.Json.Str m) -> m
         | _ -> "request failed"))
  | _ -> failwith "malformed response: not a JSON object"

let rpc_fields t j = check_fields (rpc_json t j)

let close t =
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- backoff --------------------------------------------------------------- *)

module Backoff = struct
  type decision =
    | Sleep_ms of float
    | Give_up

  type t = {
    base_ms : float;
    cap_ms : float;
    budget_ms : float;
    rng : Random.State.t;
    mutable attempts : int;
    mutable start_ns : int option;
    (* High-water latch over the clock readings this policy was fed: a
       reading below the latch is clamped, so elapsed time is a
       difference of two non-decreasing values — a backwards wall step
       observed by the caller cannot stretch the retry window, and the
       window never collapses to negative remaining budget. *)
    mutable high_ns : int;
  }

  let make ?(base_ms = 20.) ?(cap_ms = 1_000.) ?(budget_ms = 2_000.)
      ?(seed = 0) () =
    if base_ms <= 0. then invalid_arg "Backoff.make: base_ms <= 0";
    { base_ms;
      cap_ms;
      budget_ms;
      rng = Random.State.make [| seed; 0x6a0c |];
      attempts = 0;
      start_ns = None;
      high_ns = min_int
    }

  let attempts t = t.attempts

  let next t ~now_ns =
    if now_ns > t.high_ns then t.high_ns <- now_ns;
    let start =
      match t.start_ns with
      | Some s -> s
      | None ->
        t.start_ns <- Some t.high_ns;
        t.high_ns
    in
    let elapsed_ms = float_of_int (t.high_ns - start) /. 1e6 in
    if elapsed_ms >= t.budget_ms then Give_up
    else begin
      let expo = t.base_ms *. (2. ** float_of_int t.attempts) in
      t.attempts <- t.attempts + 1;
      (* full jitter in [0.5x, 1.5x), clamped to the remaining budget *)
      let jittered =
        Float.min t.cap_ms expo *. (0.5 +. Random.State.float t.rng 1.0)
      in
      Sleep_ms (Float.min jittered (t.budget_ms -. elapsed_ms))
    end
end

(* --- resilient client ------------------------------------------------------ *)

(* Safe to re-issue blind: answers are deterministic (exact Q answers;
   fixed-seed estimates are draw-identical) or read-only.  [load] and
   [cancel] are excluded — the server's idem dedup still protects an
   application-level retry of those, but this client never re-issues them
   on its own. *)
let idempotent_op = function
  | "query" | "estimate" | "stats" | "metrics" | "ping" -> true
  | _ -> false

type conn = {
  cfd : Unix.file_descr;
  rbuf : Buffer.t;  (* bytes received past the last returned line *)
}

type resilient = {
  addr : Unix.sockaddr;
  deadline_ms : float option;
  retry_budget_ms : float;
  base_backoff_ms : float;
  idem_tag : string;
  seq : int Atomic.t;
  rng_seed : int;
  mutable conn : conn option;
}

let backoff_of r =
  Backoff.make ~base_ms:r.base_backoff_ms
    ~cap_ms:(Float.min 1_000. r.retry_budget_ms)
    ~budget_ms:r.retry_budget_ms ~seed:r.rng_seed ()

let drop_conn r =
  match r.conn with
  | None -> ()
  | Some c ->
    r.conn <- None;
    (try Unix.close c.cfd with Unix.Unix_error _ -> ())

let rec ensure_conn r b =
  match r.conn with
  | Some c -> c
  | None -> (
    let fd = Unix.socket (Unix.domain_of_sockaddr r.addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd r.addr with
    | () ->
      let c = { cfd = fd; rbuf = Buffer.create 256 } in
      r.conn <- Some c;
      c
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET), _, _) -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match Backoff.next b ~now_ns:(Obs.now_ns ()) with
      | Backoff.Sleep_ms ms ->
        Unix.sleepf (ms /. 1_000.);
        ensure_conn r b
      | Backoff.Give_up ->
        raise
          (Unavailable
             (Printf.sprintf "server unreachable after %d attempts (%.0f ms budget)"
                (Backoff.attempts b) r.retry_budget_ms)))
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e)

let send_line c line =
  let s = line ^ "\n" in
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring c.cfd s !off (n - !off)
  done

(* Select-based line read honouring the per-request deadline. *)
let recv_line c ~deadline_ns =
  let chunk = Bytes.create 8192 in
  let rec loop () =
    let s = Buffer.contents c.rbuf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear c.rbuf;
      Buffer.add_substring c.rbuf s (i + 1) (String.length s - i - 1);
      String.sub s 0 i
    | None ->
      let timeout =
        match deadline_ns with
        | None -> -1.0
        | Some d ->
          let rem = float_of_int (d - Obs.now_ns ()) /. 1e9 in
          if rem <= 0. then raise (Timeout "request deadline expired");
          rem
      in
      (match Unix.select [ c.cfd ] [] [] timeout with
       | [], _, _ -> raise (Timeout "request deadline expired")
       | _ -> (
         match Unix.read c.cfd chunk 0 (Bytes.length chunk) with
         | 0 -> raise End_of_file
         | n -> Buffer.add_subbytes c.rbuf chunk 0 n)
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
  in
  loop ()

let idem_seed = Atomic.make 0

let resilient_connect ?deadline_ms ?(retry_budget_ms = 2_000.)
    ?(base_backoff_ms = 20.) ?seed addr =
  let seed =
    match seed with
    | Some s -> s
    | None -> Obs.now_ns () lxor (Atomic.fetch_and_add idem_seed 1 * 0x9e3779b9)
  in
  let r =
    { addr;
      deadline_ms;
      retry_budget_ms;
      base_backoff_ms;
      (* PR 9-style correlation keys: a per-client time tag plus a dense
         sequence — two clients (or two generations of one) never collide
         in the server's dedup table. *)
      idem_tag = Printf.sprintf "%08x" (seed land 0xffffffff);
      seq = Atomic.make 0;
      rng_seed = seed;
      conn = None
    }
  in
  (* Eager first connect: fail fast (within the budget) when the server
     never comes up. *)
  ignore (ensure_conn r (backoff_of r));
  r

let next_idem r =
  Printf.sprintf "%s-%d" r.idem_tag (Atomic.fetch_and_add r.seq 1)

let resilient_rpc r j =
  let fields =
    match j with
    | Obs.Json.Obj fs -> fs
    | _ -> invalid_arg "resilient_rpc: request must be a JSON object"
  in
  let op =
    match List.assoc_opt "op" fields with Some (Obs.Json.Str s) -> s | _ -> ""
  in
  let fields =
    if List.mem_assoc "idem" fields then fields
    else fields @ [ ("idem", Obs.Json.Str (next_idem r)) ]
  in
  let line = Obs.Json.to_string (Obs.Json.Obj fields) in
  let deadline_ns =
    Option.map
      (fun ms -> Obs.now_ns () + int_of_float (ms *. 1e6))
      r.deadline_ms
  in
  let retryable = idempotent_op op in
  let b = backoff_of r in
  let rec attempt () =
    let c = ensure_conn r b in
    match
      send_line c line;
      recv_line c ~deadline_ns
    with
    | resp -> Jsonr.parse resp
    | exception Timeout m ->
      (* The connection may still deliver the stale response later; it is
         useless for framing now. *)
      drop_conn r;
      raise (Timeout m)
    | exception
        (( End_of_file
         | Unix.Unix_error
             ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED
               | Unix.ENOENT | Unix.ECONNABORTED ),
               _,
               _ ) ) as e) ->
      drop_conn r;
      if not retryable then raise e
      else (
        match Backoff.next b ~now_ns:(Obs.now_ns ()) with
        | Backoff.Sleep_ms ms ->
          Unix.sleepf (ms /. 1_000.);
          attempt ()
        | Backoff.Give_up ->
          raise
            (Unavailable
               (Printf.sprintf
                  "retries exhausted for %s after %d attempts (%.0f ms budget)"
                  op (Backoff.attempts b) r.retry_budget_ms)))
  in
  attempt ()

let resilient_fields r j = check_fields (resilient_rpc r j)
let resilient_close r = drop_conn r
