(** Durable write-ahead journal + snapshot for the daemon's only
    state-mutating op: [load].  One journal serves all tenants of a server
    instance; entries are keyed (tenant, name) exactly like the in-memory
    program table they mirror.

    On-disk layout under [dir]:
    - [journal.wal] — magic line ["probdb.journal/1\n"], then framed
      records: 4-byte LE payload length, 4-byte LE CRC-32 (IEEE) of the
      payload, then the payload — one JSON object
      [{"op":"load","tenant":..,"name":..,"source":..}].
    - [snapshot.bin] — magic line ["probdb.snap/1\n"], then one framed
      record whose payload is the JSON array of all live entries.

    Durability contract (fsync-before-ack): {!append} returns only after
    the framed record has been written *and fsynced*; the server applies
    the op to its in-memory table and acks the client strictly after that,
    so an acked [load] is always recoverable.  Snapshots are written with
    the checkpoint discipline from [Guard.Checkpoint]: unique temp name
    (pid + counter), flush + fsync, atomic [rename], directory fsync — a
    snapshot is always absent, the previous one, or a complete new one.
    After a successful snapshot the journal is truncated back to its magic
    line; a crash between rename and truncation merely replays journal
    records already contained in the snapshot, which is harmless because
    [load] is idempotent (last write wins per (tenant, name)).

    Replay ({!open_}) tolerates a torn tail: the first record whose frame
    is incomplete or whose CRC mismatches marks the end of the valid
    prefix; the file is truncated there and the dropped byte count
    reported.  Everything before the tear replays exactly, so a recovered
    database is bit-for-bit the pre- or post-op state of the interrupted
    append — never a third state.

    Fault points for the crash matrix, driven by the [Guard.Fault] spec
    passed to {!open_} ([journal-crash:point=P] in [PROBDB_FAULT]):
    [pre-write] raises before any byte is written (recovers pre-op),
    [mid-record] durably writes a torn prefix of the frame then raises
    (recovers pre-op via tail truncation), [pre-rename] completes the
    snapshot temp file then raises before the rename (recovers post-op via
    the journal), [post-rename] renames the snapshot then raises before
    the journal truncation (recovers post-op via snapshot + idempotent
    replay).

    Thread-safe: all operations serialise on an internal mutex. *)

exception Error of string

type t

type entry = { tenant : string; name : string; source : string }

type replay = {
  snapshot_entries : int;  (** entries restored from [snapshot.bin] *)
  journal_records : int;  (** records replayed from [journal.wal] *)
  truncated_bytes : int;  (** torn-tail bytes dropped during replay *)
}

val magic : string
(** ["probdb.journal/1"]. *)

val snap_magic : string
(** ["probdb.snap/1"]. *)

val open_ :
  ?fault:Guard.Fault.spec -> ?compact_every:int -> dir:string -> unit ->
  t * entry list * replay
(** Opens (creating [dir] and the journal as needed), replays snapshot
    then journal, truncates any torn tail, and returns the journal handle,
    the recovered entries in application order (snapshot entries first,
    then journal records — later entries for the same (tenant, name)
    supersede earlier ones), and the replay counters.  [compact_every]
    (default 64) is the journal record count that triggers snapshot
    compaction inside {!append}.  Raises {!Error} on an unreadable
    directory or corrupt magic. *)

val append : t -> entry -> unit
(** Frames, writes and fsyncs one record, then compacts if the journal has
    reached [compact_every] records.  Returns only once the record is
    durable — callers apply the op and ack strictly after.  Raises
    {!Error} on I/O failure and [Guard.Fault.Injected] at an armed crash
    point (the handle must then be treated as crashed: discard it and
    {!open_} again). *)

val stats : t -> (string * int) list
(** Monotone counters since {!open_}:
    [appended], [fsyncs], [compactions], [live_records] (journal records
    not yet compacted), plus the replay counters [replayed_snapshot],
    [replayed_records], [truncated_bytes] from this handle's open. *)

val close : t -> unit
(** Closes the file descriptors.  Idempotent. *)
