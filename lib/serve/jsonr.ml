(* Strict JSON reader producing {!Obs.Json.t}.  The repo's [Obs.Json] only
   emits; the wire protocol needs the other direction.  Numbers without a
   fraction or exponent become [Int], everything else [Float]; strings
   decode the standard escapes including [\uXXXX] (surrogate pairs are
   combined) into UTF-8. *)

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type st = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
    st.pos <- st.pos + 1;
    c
  | None -> error "unexpected end of input at %d" st.pos

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  let g = next st in
  if g <> c then error "expected %C at %d, got %C" c (st.pos - 1) g

let literal st word v =
  String.iter (fun c -> expect st c) word;
  v

(* Encode one Unicode scalar value as UTF-8 (BMP + supplementary planes —
   [u] comes from one or a combined pair of \uXXXX escapes). *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  let digit () =
    match next st with
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | c -> error "bad hex digit %C at %d" c (st.pos - 1)
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

(* Called after the opening quote has been consumed. *)
let parse_string st =
  let b = Buffer.create 16 in
  let rec loop () =
    match next st with
    | '"' -> Buffer.contents b
    | '\\' ->
      (match next st with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | 't' -> Buffer.add_char b '\t'
       | 'u' ->
         let u = hex4 st in
         if u >= 0xD800 && u <= 0xDBFF then begin
           (* High surrogate: must be followed by \uDC00..\uDFFF. *)
           expect st '\\';
           expect st 'u';
           let lo = hex4 st in
           if lo < 0xDC00 || lo > 0xDFFF then
             error "lone high surrogate at %d" (st.pos - 4);
           add_utf8 b (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
         end
         else if u >= 0xDC00 && u <= 0xDFFF then
           error "lone low surrogate at %d" (st.pos - 4)
         else add_utf8 b u
       | c -> error "bad escape \\%C at %d" c (st.pos - 1));
      loop ()
    | c when Char.code c < 0x20 -> error "raw control character in string at %d" (st.pos - 1)
    | c ->
      Buffer.add_char b c;
      loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Obs.Json.Float f
    | None -> error "bad number %S at %d" text start
  else
    match int_of_string_opt text with
    | Some i -> Obs.Json.Int i
    | None -> (
      (* Integer literal too wide for [int]: degrade to float. *)
      match float_of_string_opt text with
      | Some f -> Obs.Json.Float f
      | None -> error "bad number %S at %d" text start)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error "unexpected end of input at %d" st.pos
  | Some '"' ->
    ignore (next st);
    Obs.Json.Str (parse_string st)
  | Some '{' ->
    ignore (next st);
    skip_ws st;
    if peek st = Some '}' then begin
      ignore (next st);
      Obs.Json.Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        expect st '"';
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match next st with
        | ',' -> members ()
        | '}' -> ()
        | c -> error "expected ',' or '}' at %d, got %C" (st.pos - 1) c
      in
      members ();
      Obs.Json.Obj (List.rev !fields)
    end
  | Some '[' ->
    ignore (next st);
    skip_ws st;
    if peek st = Some ']' then begin
      ignore (next st);
      Obs.Json.List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match next st with
        | ',' -> elements ()
        | ']' -> ()
        | c -> error "expected ',' or ']' at %d, got %C" (st.pos - 1) c
      in
      elements ();
      Obs.Json.List (List.rev !items)
    end
  | Some 't' -> literal st "true" (Obs.Json.Bool true)
  | Some 'f' -> literal st "false" (Obs.Json.Bool false)
  | Some 'n' -> literal st "null" Obs.Json.Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error "unexpected character %C at %d" c st.pos

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error "trailing garbage at %d" st.pos;
  v

let parse_result s = try Ok (parse s) with Error m -> Result.Error m
