exception Error of string

let () =
  Printexc.register_printer (function
    | Error m -> Some (Printf.sprintf "Serve.Journal.Error(%s)" m)
    | _ -> None)

type entry = { tenant : string; name : string; source : string }

type replay = {
  snapshot_entries : int;
  journal_records : int;
  truncated_bytes : int;
}

let magic = "probdb.journal/1"
let snap_magic = "probdb.snap/1"

module J = Obs.Json

(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.  The frame
   check that turns a torn tail into a clean truncation instead of a
   garbage replay — no external zlib dependency. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* Frame = 4-byte LE payload length, 4-byte LE CRC-32, payload. *)
let frame_header_len = 8

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (frame_header_len + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int32_le b 4 (Int32.of_int (crc32 payload));
  Bytes.blit_string payload 0 b frame_header_len n;
  Bytes.unsafe_to_string b

(* Parses the framed record at [off]; [Some (payload, next_off)] when the
   frame is complete and the CRC matches, [None] on a torn or corrupt
   tail (replay truncates there). *)
let read_frame s off =
  let len = String.length s in
  if off + frame_header_len > len then None
  else
    let n = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF in
    let crc = Int32.to_int (String.get_int32_le s (off + 4)) land 0xFFFFFFFF in
    if n < 0 || off + frame_header_len + n > len then None
    else
      let payload = String.sub s (off + frame_header_len) n in
      if crc32 payload <> crc then None
      else Some (payload, off + frame_header_len + n)

let entry_json { tenant; name; source } =
  J.Obj
    [
      ("op", J.Str "load");
      ("tenant", J.Str tenant);
      ("name", J.Str name);
      ("source", J.Str source);
    ]

let entry_of_json what j =
  let str fields k =
    match List.assoc_opt k fields with
    | Some (J.Str s) -> s
    | _ -> raise (Error (Printf.sprintf "%s: record missing field %S" what k))
  in
  match j with
  | J.Obj fields ->
      {
        tenant = str fields "tenant";
        name = str fields "name";
        source = str fields "source";
      }
  | _ -> raise (Error (Printf.sprintf "%s: record is not an object" what))

type t = {
  wal_path : string;
  snap_path : string;
  dir : string;
  fd : Unix.file_descr;
  fault : Guard.Fault.spec;
  compact_every : int;
  mu : Mutex.t;
  (* Live mirror of the server's program table, so compaction can write a
     complete snapshot without asking the server for its state. *)
  live : (string * string, string) Hashtbl.t;
  mutable live_records : int;  (* journal records since the last snapshot *)
  mutable appended : int;
  mutable fsyncs : int;
  mutable compactions : int;
  replayed_snapshot : int;
  replayed_records : int;
  replay_truncated : int;
  mutable closed : bool;
}

let injected point =
  Guard.Fault.Injected
    (Printf.sprintf "injected journal crash at %s" point)

let crash_point t point =
  if Guard.Fault.journal_crash t.fault ~point then raise (injected point)

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let fsync_dir dir =
  (* Persists the rename itself; best-effort where directory fsync is
     unsupported. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
      (try Unix.fsync dfd with Unix.Unix_error _ -> ());
      Unix.close dfd

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Magic line + framed records; returns the payloads of the valid prefix
   and the byte offset where the valid prefix ends. *)
let scan_frames what expected_magic contents =
  let header = expected_magic ^ "\n" in
  let hlen = String.length header in
  if String.length contents < hlen || String.sub contents 0 hlen <> header then
    raise
      (Error
         (Printf.sprintf "%s: bad magic (expected %S)" what expected_magic));
  let rec loop off acc =
    match read_frame contents off with
    | None -> (List.rev acc, off)
    | Some (payload, next) -> loop next (payload :: acc)
  in
  loop hlen []

let snap_tmp_counter = Atomic.make 0

let write_snapshot_file t =
  (* Guard.Checkpoint discipline: unique temp (pid + counter), flush +
     fsync, atomic rename, then directory fsync. *)
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.live [] |> List.sort compare
  in
  let entries =
    List.map
      (fun (tenant, name) ->
        entry_json { tenant; name; source = Hashtbl.find t.live (tenant, name) })
      keys
  in
  let payload = J.to_string (J.List entries) in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" t.snap_path (Unix.getpid ())
      (Atomic.fetch_and_add snap_tmp_counter 1)
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     write_all fd (snap_magic ^ "\n");
     write_all fd (frame payload);
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  t.fsyncs <- t.fsyncs + 1;
  (* A crash here leaves the orphan temp for open_ to sweep. *)
  crash_point t "pre-rename";
  Sys.rename tmp t.snap_path;
  fsync_dir t.dir;
  crash_point t "post-rename"

let header_len = String.length magic + 1

let truncate_wal t =
  Unix.ftruncate t.fd header_len;
  ignore (Unix.lseek t.fd header_len Unix.SEEK_SET);
  Unix.fsync t.fd;
  t.fsyncs <- t.fsyncs + 1

let compact_locked t =
  write_snapshot_file t;
  truncate_wal t;
  t.live_records <- 0;
  t.compactions <- t.compactions + 1

let open_ ?(fault = Guard.Fault.none) ?(compact_every = 64) ~dir () =
  if compact_every < 1 then invalid_arg "Journal.open_: compact_every < 1";
  mkdir_p dir;
  let wal_path = Filename.concat dir "journal.wal" in
  let snap_path = Filename.concat dir "snapshot.bin" in
  (* Sweep snapshot temps orphaned by a crash between write and rename. *)
  (try
     Array.iter
       (fun f ->
         if
           String.length f > String.length "snapshot.bin.tmp."
           && String.sub f 0 (String.length "snapshot.bin.tmp.")
              = "snapshot.bin.tmp."
         then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  (* Snapshot first: renames are atomic, so any snapshot present is
     complete — a frame/CRC failure here is corruption, not a crash. *)
  let snapshot_entries =
    if Sys.file_exists snap_path then (
      let contents = read_file snap_path in
      match scan_frames "snapshot" snap_magic contents with
      | [ payload ], _ -> (
          match Jsonr.parse_result payload with
          | Ok (J.List items) -> List.map (entry_of_json "snapshot") items
          | Ok _ -> raise (Error "snapshot: payload is not an array")
          | Error m -> raise (Error (Printf.sprintf "snapshot: %s" m)))
      | _ -> raise (Error "snapshot: expected exactly one framed record"))
    else []
  in
  (* Journal: replay the valid prefix, truncate the torn tail. *)
  let wal_exists = Sys.file_exists wal_path in
  let records, valid_end, truncated =
    if not wal_exists then ([], header_len, 0)
    else
      let contents = read_file wal_path in
      let payloads, valid_end = scan_frames "journal" magic contents in
      let records =
        List.map
          (fun payload ->
            match Jsonr.parse_result payload with
            | Ok j -> entry_of_json "journal" j
            | Error m -> raise (Error (Printf.sprintf "journal: %s" m)))
          payloads
      in
      (records, valid_end, String.length contents - valid_end)
  in
  let fd = Unix.openfile wal_path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  if not wal_exists then (
    write_all fd (magic ^ "\n");
    Unix.fsync fd)
  else (
    if truncated > 0 then Unix.ftruncate fd valid_end;
    ignore (Unix.lseek fd valid_end Unix.SEEK_SET);
    if truncated > 0 then Unix.fsync fd);
  let t =
    {
      wal_path;
      snap_path;
      dir;
      fd;
      fault;
      compact_every;
      mu = Mutex.create ();
      live = Hashtbl.create 64;
      live_records = List.length records;
      appended = 0;
      fsyncs = 0;
      compactions = 0;
      replayed_snapshot = List.length snapshot_entries;
      replayed_records = List.length records;
      replay_truncated = truncated;
      closed = false;
    }
  in
  let all = snapshot_entries @ records in
  List.iter
    (fun e -> Hashtbl.replace t.live (e.tenant, e.name) e.source)
    all;
  ( t,
    all,
    {
      snapshot_entries = t.replayed_snapshot;
      journal_records = t.replayed_records;
      truncated_bytes = truncated;
    } )

let append t e =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if t.closed then raise (Error "journal is closed");
      crash_point t "pre-write";
      let payload = J.to_string (entry_json e) in
      let framed = frame payload in
      if Guard.Fault.journal_crash t.fault ~point:"mid-record" then (
        (* Durably write a torn prefix — header plus half the payload —
           exactly what a crash mid-write leaves behind. *)
        let torn =
          String.sub framed 0 (frame_header_len + (String.length payload / 2))
        in
        write_all t.fd torn;
        Unix.fsync t.fd;
        raise (injected "mid-record"));
      (try
         write_all t.fd framed;
         Unix.fsync t.fd
       with Unix.Unix_error (err, fn, _) ->
         raise
           (Error (Printf.sprintf "append: %s: %s" fn (Unix.error_message err))));
      t.appended <- t.appended + 1;
      t.fsyncs <- t.fsyncs + 1;
      t.live_records <- t.live_records + 1;
      Hashtbl.replace t.live (e.tenant, e.name) e.source;
      if t.live_records >= t.compact_every then compact_locked t)

let stats t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      [
        ("appended", t.appended);
        ("fsyncs", t.fsyncs);
        ("compactions", t.compactions);
        ("live_records", t.live_records);
        ("replayed_snapshot", t.replayed_snapshot);
        ("replayed_records", t.replayed_records);
        ("truncated_bytes", t.replay_truncated);
      ])

let close t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if not t.closed then (
        t.closed <- true;
        try Unix.close t.fd with Unix.Unix_error _ -> ()))
