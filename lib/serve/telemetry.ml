(* The daemon's metrics registry.  One mutex over all of it: recording
   happens once per request at the session boundary — never inside
   evaluation loops — so contention is bounded by request rate, not tuple
   rate.  The zero-cost-when-off contract is kept one level up: the server
   holds a [Telemetry.t option] latched once per request, and a disabled
   daemon never constructs the registry at all.

   Latencies are recorded in integer nanoseconds into [Obs.Hist] — the
   shared fixed bucket grid makes every merge (per-tenant rollups, and any
   downstream aggregation across scrapes or servers) exact — and rendered
   in base-unit seconds for the Prometheus text, exact ns for the JSON
   document. *)

type key = {
  k_tenant : string;
  k_class : string;
  k_outcome : string;
}

type t = {
  mu : Mutex.t;
  requests : (key, Obs.Hist.t) Hashtbl.t;
  waits : (string, Obs.Hist.t) Hashtbl.t;
  compiles : (string, Obs.Hist.t) Hashtbl.t;
  evals : (string, Obs.Hist.t) Hashtbl.t;
  refusals : (string * string, int ref) Hashtbl.t; (* (tenant, class) *)
  degradations : (string, int ref) Hashtbl.t;
  cache_events : (string * string, int ref) Hashtbl.t; (* (tenant, hit|miss) *)
  mutable gc_ticks : int;
  mutable gc_minor : float;
  mutable gc_major : float;
  mutable gc_heap : int;
  mutable gc_top_heap : int;
}

let create () =
  { mu = Mutex.create ();
    requests = Hashtbl.create 16;
    waits = Hashtbl.create 8;
    compiles = Hashtbl.create 8;
    evals = Hashtbl.create 8;
    refusals = Hashtbl.create 8;
    degradations = Hashtbl.create 8;
    cache_events = Hashtbl.create 8;
    gc_ticks = 0;
    gc_minor = 0.0;
    gc_major = 0.0;
    gc_heap = 0;
    gc_top_heap = 0
  }

type outcome =
  | Complete
  | Partial
  | Errored
  | Refused

let outcome_slug = function
  | Complete -> "complete"
  | Partial -> "partial"
  | Errored -> "errored"
  | Refused -> "refused"

let hist_in tbl k =
  match Hashtbl.find_opt tbl k with
  | Some h -> h
  | None ->
    let h = Obs.Hist.make () in
    Hashtbl.add tbl k h;
    h

let bump tbl k =
  match Hashtbl.find_opt tbl k with
  | Some r -> incr r
  | None -> Hashtbl.add tbl k (ref 1)

let record t ~tenant ~clazz ~outcome ~total_ns ~wait_ns ~compile_ns ~eval_ns ~cache_hit
    ~degraded =
  (* Allocation gauges come from [Gc.counters] (a few ns) on every request;
     the heap-size gauges need [Gc.quick_stat], which walks per-domain
     state (~1us — a measurable slice of a cache-hit request), so those
     are refreshed every 32nd request instead. *)
  let minor, _, major = Gc.counters () in
  Mutex.protect t.mu (fun () ->
      Obs.Hist.observe
        (hist_in t.requests { k_tenant = tenant; k_class = clazz; k_outcome = outcome_slug outcome })
        total_ns;
      (match outcome with
       | Refused -> bump t.refusals (tenant, clazz)
       | Complete | Partial | Errored ->
         Obs.Hist.observe (hist_in t.waits tenant) wait_ns;
         Obs.Hist.observe (hist_in t.compiles tenant) compile_ns;
         Obs.Hist.observe (hist_in t.evals tenant) eval_ns);
      (match cache_hit with
       | None -> ()
       | Some hit -> bump t.cache_events (tenant, if hit then "hit" else "miss"));
      if degraded then bump t.degradations tenant;
      t.gc_minor <- minor;
      t.gc_major <- major;
      t.gc_ticks <- t.gc_ticks + 1;
      if t.gc_ticks land 31 = 1 then begin
        let gc = Gc.quick_stat () in
        t.gc_heap <- gc.Gc.heap_words;
        t.gc_top_heap <- gc.Gc.top_heap_words
      end)

(* --- rendering -------------------------------------------------------------

   One internal family list drives both exposition forms, so the JSON
   document and the Prometheus text can never disagree about a value. *)

type row = {
  labels : (string * string) list;
  value : float;
}

type fam =
  | Scalar of {
      name : string;
      kind : string; (* "counter" | "gauge" *)
      help : string;
      rows : row list;
    }
  | Histo of {
      name : string;
      help : string;
      rows : ((string * string) list * Obs.Hist.t) list;
    }

let by_labels a b = compare a b

let sorted_rows rows = List.sort (fun a b -> by_labels a.labels b.labels) rows
let sorted_hrows rows = List.sort (fun (a, _) (b, _) -> by_labels a b) rows

(* Journal counters arrive as the assoc list [Serve.Journal.stats]
   produces; each key gets a stable family name so the replay counters a
   restarted daemon exports are scrapeable (and pinned by the CI chaos
   smoke). *)
let journal_families counters =
  let fam key name kind help =
    match List.assoc_opt key counters with
    | None -> []
    | Some v ->
      [ Scalar
          { name; kind; help; rows = [ { labels = []; value = float_of_int v } ] }
      ]
  in
  fam "appended" "probdb_journal_appends_total" "counter"
    "Journal records appended (and fsynced) since open."
  @ fam "fsyncs" "probdb_journal_fsyncs_total" "counter"
      "fsync calls issued by the journal."
  @ fam "compactions" "probdb_journal_compactions_total" "counter"
      "Snapshot compactions completed."
  @ fam "live_records" "probdb_journal_live_records" "gauge"
      "Journal records not yet folded into a snapshot."
  @ fam "replayed_snapshot" "probdb_journal_replayed_snapshot_entries" "gauge"
      "Entries restored from the snapshot at the last open."
  @ fam "replayed_records" "probdb_journal_replayed_records" "gauge"
      "Journal records replayed at the last open."
  @ fam "truncated_bytes" "probdb_journal_truncated_bytes" "gauge"
      "Torn-tail bytes dropped at the last open."

let families t ~uptime_ms ~sessions ~served ~inflight ~cache ~journal =
  let hits, misses, entries = cache in
  let scalar name kind help rows = Scalar { name; kind; help; rows = sorted_rows rows } in
  let requests_rows =
    Hashtbl.fold
      (fun k h acc ->
        { labels =
            [ ("tenant", k.k_tenant); ("class", k.k_class); ("outcome", k.k_outcome) ];
          value = float_of_int (Obs.Hist.total h)
        }
        :: acc)
      t.requests []
  in
  let hist_rows tbl mk = Hashtbl.fold (fun k h acc -> (mk k, h) :: acc) tbl [] in
  let tenant_labels tenant = [ ("tenant", tenant) ] in
  [ scalar "probdb_uptime_seconds" "gauge" "Seconds since the server started."
      [ { labels = []; value = uptime_ms /. 1e3 } ];
    scalar "probdb_sessions" "gauge" "Open client sessions."
      [ { labels = []; value = float_of_int sessions } ];
    scalar "probdb_served_total" "counter" "Query requests answered successfully."
      [ { labels = []; value = float_of_int served } ];
    scalar "probdb_inflight" "gauge" "Queries currently executing, per tenant."
      (List.map
         (fun (tenant, n) -> { labels = tenant_labels tenant; value = float_of_int n })
         inflight);
    scalar "probdb_requests_total" "counter"
      "Query requests by tenant, request class and outcome." requests_rows;
    Histo
      { name = "probdb_request_seconds";
        help = "End-to-end request latency by tenant, request class and outcome.";
        rows =
          sorted_hrows
            (hist_rows t.requests (fun k ->
                 [ ("tenant", k.k_tenant); ("class", k.k_class); ("outcome", k.k_outcome) ]))
      };
    Histo
      { name = "probdb_request_wait_seconds";
        help = "Admission wait (receipt to admission), per tenant.";
        rows = sorted_hrows (hist_rows t.waits tenant_labels)
      };
    Histo
      { name = "probdb_request_compile_seconds";
        help = "Plan compile / cache lookup phase, per tenant.";
        rows = sorted_hrows (hist_rows t.compiles tenant_labels)
      };
    Histo
      { name = "probdb_request_eval_seconds";
        help = "Evaluation phase, per tenant.";
        rows = sorted_hrows (hist_rows t.evals tenant_labels)
      };
    scalar "probdb_admission_refusals_total" "counter"
      "Requests refused by per-tenant admission control."
      (Hashtbl.fold
         (fun (tenant, clazz) r acc ->
           { labels = [ ("tenant", tenant); ("class", clazz) ]; value = float_of_int !r }
           :: acc)
         t.refusals []);
    scalar "probdb_degradations_total" "counter"
      "Answers degraded by budget exhaustion (fallback or partial)."
      (Hashtbl.fold
         (fun tenant r acc ->
           { labels = tenant_labels tenant; value = float_of_int !r } :: acc)
         t.degradations []);
    scalar "probdb_plan_cache_requests_total" "counter"
      "Plan-cache lookups by tenant and result."
      (Hashtbl.fold
         (fun (tenant, result) r acc ->
           { labels = [ ("tenant", tenant); ("result", result) ]; value = float_of_int !r }
           :: acc)
         t.cache_events []);
    scalar "probdb_plan_cache_hits_total" "counter" "Shared plan-cache hits."
      [ { labels = []; value = float_of_int hits } ];
    scalar "probdb_plan_cache_misses_total" "counter" "Shared plan-cache misses."
      [ { labels = []; value = float_of_int misses } ];
    scalar "probdb_plan_cache_entries" "gauge" "Shared plan-cache resident entries."
      [ { labels = []; value = float_of_int entries } ];
    scalar "probdb_gc_minor_words" "gauge" "GC minor words at the last sampled request."
      [ { labels = []; value = t.gc_minor } ];
    scalar "probdb_gc_major_words" "gauge" "GC major words at the last sampled request."
      [ { labels = []; value = t.gc_major } ];
    scalar "probdb_gc_heap_words" "gauge" "Major heap size in words."
      [ { labels = []; value = float_of_int t.gc_heap } ];
    scalar "probdb_gc_top_heap_words" "gauge" "Largest major heap size reached, in words."
      [ { labels = []; value = float_of_int t.gc_top_heap } ]
  ]
  @ journal_families journal

(* --- Prometheus text -------------------------------------------------------- *)

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
    ^ "}"

(* Counts render as integers, everything else as shortest-faithful float. *)
let prom_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let seconds_of_ns ns = float_of_int ns /. 1e9

let prom_text fams =
  let b = Buffer.create 4096 in
  List.iter
    (fun fam ->
      match fam with
      | Scalar { rows = []; _ } | Histo { rows = []; _ } -> ()
      | Scalar { name; kind; help; rows } ->
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind);
        List.iter
          (fun { labels; value } ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" name (prom_labels labels) (prom_value value)))
          rows
      | Histo { name; help; rows } ->
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
        List.iter
          (fun (labels, h) ->
            List.iter
              (fun (bound, cum) ->
                let le =
                  match bound with
                  | Some ns -> Printf.sprintf "%.9g" (seconds_of_ns ns)
                  | None -> "+Inf"
                in
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" name
                     (prom_labels (labels @ [ ("le", le) ]))
                     cum))
              (Obs.Hist.cumulative h);
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %s\n" name (prom_labels labels)
                 (prom_value (seconds_of_ns (Obs.Hist.sum h))));
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" name (prom_labels labels) (Obs.Hist.total h)))
          rows)
    fams;
  Buffer.contents b

(* --- probdb.metrics/1 JSON -------------------------------------------------- *)

let json_labels labels = Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Str v)) labels)

let json_of_fam fam =
  match fam with
  | Scalar { name; kind; help; rows } ->
    Obs.Json.Obj
      [ ("name", Obs.Json.Str name);
        ("kind", Obs.Json.Str kind);
        ("help", Obs.Json.Str help);
        ( "rows",
          Obs.Json.List
            (List.map
               (fun { labels; value } ->
                 Obs.Json.Obj
                   [ ("labels", json_labels labels);
                     ( "value",
                       if Float.is_integer value && Float.abs value < 1e15 then
                         Obs.Json.Int (int_of_float value)
                       else Obs.Json.Float value )
                   ])
               rows) )
      ]
  | Histo { name; help; rows } ->
    Obs.Json.Obj
      [ ("name", Obs.Json.Str name);
        ("kind", Obs.Json.Str "histogram");
        ("help", Obs.Json.Str help);
        ( "rows",
          Obs.Json.List
            (List.map
               (fun (labels, h) ->
                 Obs.Json.Obj
                   [ ("labels", json_labels labels);
                     ("count", Obs.Json.Int (Obs.Hist.total h));
                     ("sum_ns", Obs.Json.Int (Obs.Hist.sum h));
                     ( "buckets",
                       Obs.Json.List
                         (List.map
                            (fun (bound, cum) ->
                              Obs.Json.List
                                [ (match bound with
                                   | Some ns -> Obs.Json.Int ns
                                   | None -> Obs.Json.Null);
                                  Obs.Json.Int cum
                                ])
                            (Obs.Hist.cumulative h)) )
                   ])
               rows) )
      ]

(* Per-tenant rollup for the live [top] client: quantiles come from an
   exact server-side merge of that tenant's request histograms across
   class and outcome. *)
let tenant_rollup t ~inflight =
  let module M = Map.Make (String) in
  let tenants = ref M.empty in
  let touch tenant =
    if not (M.mem tenant !tenants) then tenants := M.add tenant () !tenants
  in
  Hashtbl.iter (fun k _ -> touch k.k_tenant) t.requests;
  Hashtbl.iter (fun (tenant, _) _ -> touch tenant) t.refusals;
  List.iter (fun (tenant, _) -> touch tenant) inflight;
  M.fold
    (fun tenant () acc ->
      let merged =
        Hashtbl.fold
          (fun k h acc -> if k.k_tenant = tenant then Obs.Hist.merge acc h else acc)
          t.requests (Obs.Hist.make ())
      in
      let refused =
        Hashtbl.fold
          (fun (tn, _) r acc -> if tn = tenant then acc + !r else acc)
          t.refusals 0
      in
      let counted tbl k = match Hashtbl.find_opt tbl k with Some r -> !r | None -> 0 in
      let q p = Obs.ms_of_ns (Obs.Hist.quantile merged p) in
      ( tenant,
        Obs.Json.Obj
          [ ("requests", Obs.Json.Int (Obs.Hist.total merged));
            ("refused", Obs.Json.Int refused);
            ("degraded", Obs.Json.Int (counted t.degradations tenant));
            ("cache_hits", Obs.Json.Int (counted t.cache_events (tenant, "hit")));
            ("cache_misses", Obs.Json.Int (counted t.cache_events (tenant, "miss")));
            ( "inflight",
              Obs.Json.Int (match List.assoc_opt tenant inflight with Some n -> n | None -> 0)
            );
            ("p50_ms", Obs.Json.Float (q 0.50));
            ("p95_ms", Obs.Json.Float (q 0.95));
            ("p99_ms", Obs.Json.Float (q 0.99))
          ] )
      :: acc)
    !tenants []
  |> List.rev

let render t ?(journal = []) ~uptime_ms ~sessions ~served ~inflight ~cache () =
  Mutex.protect t.mu (fun () ->
      let fams = families t ~uptime_ms ~sessions ~served ~inflight ~cache ~journal in
      let doc =
        Obs.Json.Obj
          [ ("schema", Obs.Json.Str "probdb.metrics/1");
            ( "server",
              Obs.Json.Obj
                [ ("uptime_ms", Obs.Json.Float uptime_ms);
                  ("sessions", Obs.Json.Int sessions);
                  ("served", Obs.Json.Int served)
                ] );
            ("families", Obs.Json.List (List.map json_of_fam fams));
            ("tenants", Obs.Json.Obj (tenant_rollup t ~inflight))
          ]
      in
      (doc, prom_text fams))
