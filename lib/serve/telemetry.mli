(** The daemon's metrics registry: per-(tenant, class, outcome) request
    latency histograms, per-tenant admission-wait / plan-compile /
    eval-phase sub-histograms, refusal / degradation / plan-cache counters
    and GC gauges sampled per request — rendered as one [probdb.metrics/1]
    JSON document and as Prometheus exposition text over the same
    families.

    All state sits behind one mutex: recording happens once per request
    (never inside evaluation loops), so the lock is uncontended next to
    the work it measures, and the zero-cost-when-off contract is kept one
    level up — the server holds [Telemetry.t option] and latches it once
    per request.

    Histogram bucket counts are exact ({!Obs.Hist} merges are exact by
    construction), so [probdb_request_seconds_count] summed over outcomes
    equals the number of query requests the tenant issued — the invariant
    the CI smoke pins. *)

type t

val create : unit -> t

type outcome =
  | Complete  (** full-fidelity answer *)
  | Partial  (** budget-degraded partial report *)
  | Errored  (** parse/compile/eval error response *)
  | Refused  (** admission control turned the request away *)

val outcome_slug : outcome -> string
(** ["complete"] | ["partial"] | ["errored"] | ["refused"]. *)

val record :
  t ->
  tenant:string ->
  clazz:string ->
  outcome:outcome ->
  total_ns:int ->
  wait_ns:int ->
  compile_ns:int ->
  eval_ns:int ->
  cache_hit:bool option ->
  degraded:bool ->
  unit
(** One query request: [total_ns] always lands in the request histogram
    under (tenant, clazz, outcome); the wait/compile/eval sub-histograms
    are recorded for admitted requests ([Refused] ticks the refusal
    counter instead); [cache_hit] ticks the plan-cache counters when the
    request reached the cache; [degraded] ticks the degradation counter.
    Samples the allocation gauges (minor/major words) on every request and
    the heap-size gauges (heap and top-heap words, via [Gc.quick_stat])
    every 32nd — the cheap/accurate split that keeps the recorded path
    inside the telemetry overhead bar. *)

val render :
  t ->
  ?journal:(string * int) list ->
  uptime_ms:float ->
  sessions:int ->
  served:int ->
  inflight:(string * int) list ->
  cache:int * int * int ->
  unit ->
  Obs.Json.t * string
(** The two exposition forms over one family set, plus server-level
    gauges passed in by the caller ([cache] is (hits, misses, entries)).
    [journal] is the durable journal's counter list ([Journal.stats]) when
    the daemon runs with [--state-dir]; each known key becomes a
    [probdb_journal_*] family (appends/fsyncs/compactions as counters,
    live/replayed/truncated as gauges), so a restarted daemon's replay
    counters are scrapeable.

    The JSON document ([probdb.metrics/1]) carries every family under
    ["families"] (histogram buckets as exact cumulative ns counts, [null]
    bound = +Inf) and a per-tenant rollup under ["tenants"] (served /
    refused / degraded / cache hits+misses / inflight / p50+p95+p99 ms) —
    what [probdbd top] renders.

    The Prometheus text renders the same families in base units
    (seconds): histograms as [_bucket{...,le="s"}] cumulative rows with a
    terminal [+Inf], then [_sum] and [_count]; counters as [_total];
    gauges plain — each family preceded by [# HELP] and [# TYPE]. *)
